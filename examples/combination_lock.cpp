// Cracking a combination lock with preimage computation.
//
//   $ example_combination_lock
//
// The lock FSM advances only when the input symbol matches the next secret
// digit and resets on any mistake. Backward reachability from the "open"
// state — powered by the success-driven all-solutions solver — walks the
// secret back to the locked state, and the extracted counterexample trace IS
// the opening sequence. Bounded model checking (forward unrolling) confirms
// it and the two independent engines must agree on the minimal length.
#include <cstdio>
#include <vector>

#include "gen/generators.hpp"
#include "preimage/bmc.hpp"
#include "preimage/safety.hpp"

using namespace presat;

namespace {

int symbolValue(const std::vector<bool>& inputBits) {
  int v = 0;
  for (size_t b = 0; b < inputBits.size(); ++b) {
    if (inputBits[b]) v |= 1 << b;
  }
  return v;
}

}  // namespace

int main() {
  const std::vector<int> secret{5, 1, 7, 2, 6};
  const int bitsPerSymbol = 3;
  Netlist lock = makeCombinationLock(secret, bitsPerSymbol);
  TransitionSystem system(lock);
  const int n = system.numStateBits();
  std::printf("combination lock: %zu-digit code over %d-bit symbols — %d state bits, %zu gates\n",
              secret.size(), bitsPerSymbol, n, lock.numGates());

  // Locked = progress 0; open = progress len (the absorbing accept state).
  StateSet locked = StateSet::fromMinterm(n, 0);
  StateSet open = StateSet::fromMinterm(n, static_cast<uint64_t>(secret.size()));

  // "The lock never opens" is the safety property; its counterexample is the
  // combination.
  SafetyOptions options;
  options.method = PreimageMethod::kSuccessDriven;
  SafetyResult verdict = checkSafety(system, locked, open, options);
  std::printf("\nsafety check ('lock never opens'): %s at depth %d (%.3f ms)\n",
              safetyStatusName(verdict.status), verdict.depth, verdict.seconds * 1e3);
  if (verdict.status != SafetyStatus::kUnsafe) {
    std::printf("unexpected verdict — the lock must be openable!\n");
    return 1;
  }
  std::printf("recovered combination (from the backward trace): ");
  for (const std::vector<bool>& inputs : verdict.traceInputs) {
    std::printf("%d ", symbolValue(inputs));
  }
  std::printf("\nactual secret                                  : ");
  for (int d : secret) std::printf("%d ", d);
  std::printf("\n");

  // Independent confirmation by forward BMC.
  BmcResult bmc = boundedReach(system, locked, open, static_cast<int>(secret.size()) + 2);
  std::printf("\nBMC: open reachable at depth %d with inputs: ", bmc.depth);
  for (const std::vector<bool>& inputs : bmc.traceInputs) {
    std::printf("%d ", symbolValue(inputs));
  }
  std::printf("(%llu SAT calls, %.3f ms)\n", static_cast<unsigned long long>(bmc.satCalls),
              bmc.seconds * 1e3);

  bool lengthsAgree =
      bmc.reachable && bmc.depth == verdict.depth && bmc.depth == static_cast<int>(secret.size());
  bool sequencesMatch = true;
  for (size_t i = 0; i < verdict.traceInputs.size(); ++i) {
    sequencesMatch = sequencesMatch && symbolValue(verdict.traceInputs[i]) == secret[i];
  }
  std::printf("\nbackward and forward engines agree on the minimal length: %s\n",
              lengthsAgree ? "yes" : "NO (bug!)");
  std::printf("backward trace reproduces the secret exactly: %s\n",
              sequencesMatch ? "yes" : "NO (bug!)");
  return lengthsAgree && sequencesMatch ? 0 : 1;
}
