// Side-by-side comparison of every preimage engine on a small benchmark
// suite — a miniature of the paper's evaluation, runnable in seconds.
//
//   $ example_engine_shootout
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/preimage.hpp"

using namespace presat;

namespace {

struct Case {
  std::string name;
  Netlist netlist;
  StateSet target;
};

// Target: fix the lowest `fixed` state bits to alternating values.
StateSet alternatingCube(int stateBits, int fixed) {
  LitVec cube;
  for (int i = 0; i < fixed && i < stateBits; ++i) {
    cube.push_back(mkLit(static_cast<Var>(i), i % 2 == 1));
  }
  return StateSet::fromCube(stateBits, cube);
}

}  // namespace

int main() {
  std::vector<Case> cases;
  {
    Netlist nl = makeS27();
    cases.push_back({"s27", std::move(nl), alternatingCube(3, 2)});
  }
  {
    Netlist nl = makeCounter(10);
    cases.push_back({"counter10", std::move(nl), alternatingCube(10, 5)});
  }
  {
    Netlist nl = makeGrayCounter(8);
    cases.push_back({"gray8", std::move(nl), alternatingCube(8, 4)});
  }
  {
    Netlist nl = makeLfsr(10);
    cases.push_back({"lfsr10", std::move(nl), alternatingCube(10, 5)});
  }
  {
    RandomCircuitParams params;
    params.numInputs = 4;
    params.numDffs = 10;
    params.numGates = 120;
    params.seed = 2024;
    Netlist nl = makeRandomSequential(params);
    cases.push_back({"rand10x120", std::move(nl), alternatingCube(10, 5)});
  }

  std::printf("%-12s %-22s %12s %9s %11s\n", "circuit", "method", "pre-states", "cubes",
              "time(ms)");
  for (Case& c : cases) {
    TransitionSystem system(c.netlist);
    BigUint reference;
    bool first = true;
    for (PreimageMethod method : kAllPreimageMethods) {
      PreimageResult r = computePreimage(system, c.target, method);
      std::printf("%-12s %-22s %12s %9zu %11.3f\n", first ? c.name.c_str() : "",
                  preimageMethodName(method), r.stateCount.toDecimal().c_str(),
                  r.states.cubes.size(), r.seconds * 1e3);
      if (first) {
        reference = r.stateCount;
      } else if (r.stateCount != reference) {
        std::printf("ENGINE DISAGREEMENT on %s — bug!\n", c.name.c_str());
        return 1;
      }
      first = false;
    }
    std::printf("\n");
  }
  std::printf("all engines agree on every circuit\n");
  return 0;
}
