// Backward reachability on the traffic-light controller: from which states
// can the farm road ever get a green light, and how fast do the SAT and BDD
// preimage engines close the fixpoint?
//
//   $ example_backward_reachability
//
// Demonstrates multi-step use of the preimage engines (the unbounded model
// checking loop the paper targets), with per-depth statistics.
#include <cstdio>

#include "gen/generators.hpp"
#include "preimage/reachability.hpp"

using namespace presat;

namespace {

void report(const char* name, const ReachabilityResult& r) {
  std::printf("%s:\n", name);
  std::printf("  %5s %12s %12s %10s\n", "depth", "new states", "total", "time(ms)");
  for (const ReachabilityStep& step : r.steps) {
    std::printf("  %5d %12s %12s %10.3f\n", step.depth, step.newStates.toDecimal().c_str(),
                step.totalStates.toDecimal().c_str(), step.seconds * 1e3);
  }
  std::printf("  fixpoint: %s, total %.3f ms\n\n", r.fixpoint ? "yes" : "no",
              r.totalSeconds * 1e3);
}

}  // namespace

int main() {
  Netlist light = makeTrafficLight();
  TransitionSystem system(light);
  std::printf("traffic-light controller: %d state bits (phase s1 s0, timer t1 t0), %d input\n\n",
              system.numStateBits(), system.numInputs());

  // Target: the farm-green phase (s1=1, s0=0), any timer value.
  StateSet farmGreen = StateSet::fromCube(4, {mkLit(0), ~mkLit(1)});
  std::printf("target: farm road green — %s states\n\n",
              farmGreen.countStates().toDecimal().c_str());

  ReachabilityResult viaSat =
      backwardReach(system, farmGreen, 16, PreimageMethod::kSuccessDriven);
  report("success-driven SAT engine", viaSat);

  ReachabilityResult viaCubes =
      backwardReach(system, farmGreen, 16, PreimageMethod::kCubeBlockingLifted);
  report("lifted cube-blocking engine", viaCubes);

  ReachabilityResult viaBdd = backwardReach(system, farmGreen, 16, PreimageMethod::kBdd);
  report("BDD engine", viaBdd);

  bool agree = sameStates(viaSat.reached, viaBdd.reached) &&
               sameStates(viaCubes.reached, viaBdd.reached);
  std::printf("engines agree on the backward-reachable set: %s\n", agree ? "yes" : "NO (bug!)");
  std::printf("states that can reach farm-green: %s of 16\n",
              viaSat.reached.countStates().toDecimal().c_str());
  return agree ? 0 : 1;
}
