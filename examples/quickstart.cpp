// Quickstart: compute the one-step preimage of a target state set with the
// success-driven all-solutions solver, and cross-check it with the BDD
// engine.
//
//   $ example_quickstart
//
// Walks through the full public API surface: build (or parse) a sequential
// netlist, wrap it as a TransitionSystem, describe a target StateSet, and
// call computePreimage.
#include <cstdio>

#include "gen/generators.hpp"
#include "preimage/preimage.hpp"

using namespace presat;

int main() {
  // An 8-bit binary up-counter with an enable input: 8 state bits, 1 input.
  Netlist counter = makeCounter(8);
  TransitionSystem system(counter);
  std::printf("circuit: 8-bit counter — %d state bits, %d inputs, %zu gates\n",
              system.numStateBits(), system.numInputs(), counter.numGates());

  // Target: all states with the top two bits set (s6 & s7), i.e. 192..255.
  StateSet target = StateSet::fromCube(8, {mkLit(6), mkLit(7)});
  std::printf("target:  %s  (%s states)\n\n", target.toString().c_str(),
              target.countStates().toDecimal().c_str());

  // The paper's engine: justification search + success-driven learning,
  // emitting a compact solution graph.
  PreimageResult sd = computePreimage(system, target, PreimageMethod::kSuccessDriven);
  std::printf("success-driven solver:\n");
  std::printf("  preimage states : %s\n", sd.stateCount.toDecimal().c_str());
  std::printf("  solution cubes  : %zu\n", sd.states.cubes.size());
  std::printf("  graph nodes     : %llu (edges %llu)\n",
              static_cast<unsigned long long>(sd.stats.graphNodes),
              static_cast<unsigned long long>(sd.stats.graphEdges));
  std::printf("  decisions       : %llu, memo hits: %llu\n",
              static_cast<unsigned long long>(sd.stats.decisions),
              static_cast<unsigned long long>(sd.stats.memoHits));
  std::printf("  time            : %.3f ms\n\n", sd.seconds * 1e3);

  // A few of the cubes, in state-variable notation.
  std::printf("  first cubes:\n");
  for (size_t i = 0; i < sd.states.cubes.size() && i < 5; ++i) {
    StateSet one = StateSet::fromCube(8, sd.states.cubes[i]);
    std::printf("    %s\n", one.toString().c_str());
  }
  if (sd.states.cubes.size() > 5) {
    std::printf("    ... %zu more\n", sd.states.cubes.size() - 5);
  }

  // Cross-check with the symbolic baseline.
  PreimageResult bdd = computePreimage(system, target, PreimageMethod::kBdd);
  bool agree = sameStates(sd.states, bdd.states);
  std::printf("\nBDD baseline: %s states in %.3f ms — %s\n",
              bdd.stateCount.toDecimal().c_str(), bdd.seconds * 1e3,
              agree ? "sets agree" : "MISMATCH (bug!)");
  return agree ? 0 : 1;
}
