// All-solutions enumeration on DIMACS CNF input.
//
//   $ example_allsat_dimacs [file.cnf]
//
// Reads a CNF (with an optional `c proj v1 v2 ...` projection-scope line) and
// enumerates its projected solutions with three engines:
//   * minterm blocking clauses,
//   * cube blocking clauses with implicant lifting (full projections only),
//   * the success-driven circuit solver (via CNF -> circuit conversion).
// Without an argument, a built-in example formula is used.
#include <cstdio>
#include <string>

#include "allsat/cube_blocking.hpp"
#include "allsat/lifting.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/success_driven.hpp"
#include "circuit/from_cnf.hpp"
#include "cnf/dimacs.hpp"

using namespace presat;

namespace {

const char* kExample =
    "c example: a 6-variable formula with structured solutions\n"
    "c proj 1 2 3 4 5 6\n"
    "p cnf 6 4\n"
    "1 2 3 0\n"
    "-1 4 0\n"
    "-2 5 0\n"
    "-3 6 0\n";

void printCubes(const AllSatResult& r, size_t limit) {
  for (size_t i = 0; i < r.cubes.size() && i < limit; ++i) {
    std::printf("    %s\n", toString(r.cubes[i]).c_str());
  }
  if (r.cubes.size() > limit) std::printf("    ... %zu more\n", r.cubes.size() - limit);
}

}  // namespace

int main(int argc, char** argv) {
  DimacsFile file = argc > 1 ? parseDimacsFile(argv[1]) : parseDimacsString(kExample);
  const Cnf& cnf = file.cnf;

  std::vector<Var> projection;
  if (file.projection) {
    projection = *file.projection;
  } else {
    for (Var v = 0; v < cnf.numVars(); ++v) projection.push_back(v);
  }
  std::printf("formula: %d vars, %zu clauses; projection scope: %zu vars\n\n", cnf.numVars(),
              cnf.numClauses(), projection.size());

  AllSatResult minterm = mintermBlockingAllSat(cnf, projection);
  std::printf("minterm blocking   : %s solutions, %zu blocking clauses, %.3f ms\n",
              minterm.mintermCount.toDecimal().c_str(), minterm.cubes.size(),
              minterm.stats.seconds * 1e3);

  if (projection.size() == static_cast<size_t>(cnf.numVars())) {
    ModelLifter lifter = [&cnf](const std::vector<lbool>& model) {
      return shrinkModelToImplicant(cnf, model);
    };
    AllSatResult cube = cubeBlockingAllSat(cnf, projection, lifter);
    std::printf("cube blocking      : %s solutions in %zu cubes, %.3f ms\n",
                cube.mintermCount.toDecimal().c_str(), cube.cubes.size(),
                cube.stats.seconds * 1e3);
    std::printf("  cubes:\n");
    printCubes(cube, 8);
  } else {
    std::printf("cube blocking      : skipped (implicant lifting needs a full projection)\n");
  }

  // Success-driven engine: convert the CNF to a circuit, require root = 1,
  // and project onto the input nodes corresponding to the projection scope.
  CnfCircuit circuit = cnfToCircuit(cnf);
  CircuitAllSatProblem problem;
  problem.netlist = &circuit.netlist;
  problem.objectives = {{circuit.root, true}};
  for (Var v : projection) problem.projectionSources.push_back(circuit.varNode[static_cast<size_t>(v)]);
  SuccessDrivenResult sd = successDrivenAllSat(problem);
  std::printf("success-driven     : %s solutions in %zu cubes, graph %llu nodes, %.3f ms\n",
              sd.summary.mintermCount.toDecimal().c_str(), sd.summary.cubes.size(),
              static_cast<unsigned long long>(sd.summary.stats.graphNodes),
              sd.summary.stats.seconds * 1e3);
  std::printf("  cubes:\n");
  printCubes(sd.summary, 8);

  bool agree = sd.summary.mintermCount == minterm.mintermCount;
  std::printf("\nengines agree on the solution count: %s\n", agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
