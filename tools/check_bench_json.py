#!/usr/bin/env python3
"""Shape- and sanity-check the bench trajectory JSONL (BENCH_*.json).

The bench binaries append one compact-JSON metrics line per engine run
(`bench/bench_util.hpp:appendMetricsJsonl`). CI runs the suite with a fixed
seed and feeds the file through this checker, which validates:

  * every line is a JSON object with `labels` (string -> string) containing
    `bench`, `case`, and `engine`
  * `counters` is a non-empty object of string -> non-negative integer
  * `gauges.time.seconds` is present and strictly positive (a zero or
    negative timing means the timer was never read)
  * every `table1` record carries a `pre.cubes` counter, and for each
    `<circuit>/<engine>-par1` case the matching `-par8` case exists with an
    IDENTICAL `pre.cubes` count — the determinism contract (worker count
    must not change the result) asserted straight off the trajectory file
  * `table1` covers all four SAT enumeration engines (minterm-blocking,
    cube-blocking, success-driven, chrono)
  * every `table1` `<circuit>/chrono` case has a `<circuit>/chrono-proj`
    projected series whose record carries a `proj.cubes` counter equal to
    its `pre.cubes`, with `pre.cubes` no larger than the uncompressed
    chrono enumeration's — wildcard compression must never grow the cover
  * every `table1` `<circuit>/chrono` case has a `<circuit>/chrono-cert`
    certificate-emitting sibling with an IDENTICAL `pre.cubes` count and a
    positive `cert.bytes` counter; the per-circuit emission overhead
    (cert median / plain median) is reported as its own series line. The
    plain `chrono` series is the proof-logging-OFF control, so the
    `--compare` regression gate below failing on it means logging stopped
    being zero-cost when disabled.

`--google-benchmark FILE` additionally validates a google-benchmark
`--benchmark_format=json` report (bench_micro): non-empty `benchmarks`
array, each entry named with a positive `real_time`.

`--compare BASELINE` additionally diffs the trajectory against a checked-in
baseline trajectory (bench/BENCH_baseline.json): per series — a
(bench, case) pair — the median `time.seconds` of the current file is
compared against the baseline's. A series whose median regressed by more
than --max-regression (default 25%) fails the check; speedups are reported
but never fail. Series faster than --noise-floor seconds in BOTH files are
skipped (sub-50ms runs are scheduler noise, not signal), and every baseline
series must still exist in the current file — silently dropping a slow case
is not a speedup.

Usage: check_bench_json.py BENCH_ci.json [--google-benchmark MICRO.json]
                                         [--compare BENCH_baseline.json]
Exit status: 0 when everything is well-shaped, 1 otherwise (reason on
stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_TABLE1_ENGINES = {
    "minterm-blocking",
    "cube-blocking",
    "success-driven",
    "chrono",
}


def fail(reason: str) -> None:
    print(f"check_bench_json.py: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def check_record(lineno: int, record: object) -> dict:
    where = f"line {lineno}"
    if not isinstance(record, dict):
        fail(f"{where}: top level is not an object")
    labels = record.get("labels")
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in labels.items()):
        fail(f"{where}: labels must be an object of string -> string")
    for key in ("bench", "case", "engine"):
        if key not in labels:
            fail(f"{where}: labels.{key} is missing")
    counters = record.get("counters")
    if not isinstance(counters, dict) or not counters:
        fail(f"{where}: counters must be a non-empty object")
    for key, value in counters.items():
        if not isinstance(key, str) or not isinstance(value, int) \
                or isinstance(value, bool) or value < 0:
            fail(f"{where}: counter {key!r} must map to a non-negative integer")
    gauges = record.get("gauges")
    if not isinstance(gauges, dict):
        fail(f"{where}: gauges object is missing")
    seconds = gauges.get("time.seconds")
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or seconds <= 0:
        fail(f"{where}: gauges['time.seconds'] must be a positive number, got {seconds!r}")
    return record


def check_table1(records: list) -> None:
    table1 = [r for r in records if r["labels"]["bench"] == "table1"]
    if not table1:
        fail("no table1 records in the trajectory file")
    engines = {r["labels"]["engine"] for r in table1}
    missing = REQUIRED_TABLE1_ENGINES - engines
    if missing:
        fail(f"table1 is missing engine series: {sorted(missing)}")

    cubes_by_case = {}
    counters_by_case = {}
    for r in table1:
        case = r["labels"]["case"]
        if "pre.cubes" not in r["counters"]:
            fail(f"table1 case {case!r} has no pre.cubes counter")
        cubes_by_case[case] = r["counters"]["pre.cubes"]
        counters_by_case[case] = r["counters"]

    # Projected series: every plain chrono case must have a chrono-proj
    # sibling, the projected record must expose proj.cubes (== its final
    # pre.cubes), and compression must not have grown the cover.
    proj_cases = 0
    for case, cubes in sorted(cubes_by_case.items()):
        if not case.endswith("/chrono"):
            continue
        proj = case + "-proj"
        if proj not in cubes_by_case:
            fail(f"table1 case {case!r} has no projected series {proj!r}")
        proj_counters = counters_by_case[proj]
        if "proj.cubes" not in proj_counters:
            fail(f"table1 case {proj!r} has no proj.cubes counter")
        if proj_counters["proj.cubes"] != cubes_by_case[proj]:
            fail(f"table1 case {proj!r}: proj.cubes "
                 f"{proj_counters['proj.cubes']} != pre.cubes {cubes_by_case[proj]}")
        if cubes_by_case[proj] > cubes:
            fail(f"compression regression: {proj!r} produced "
                 f"{cubes_by_case[proj]} cubes but {case!r} produced {cubes}")
        proj_cases += 1
    if proj_cases == 0:
        fail("table1 contains no chrono/chrono-proj pairs to compare")

    # Certificate series: the cover must be unchanged by emission (emitting
    # a certificate is observation, not search), and the record must carry
    # the cert.* counters the emitter stamps.
    cert_cases = 0
    for case, cubes in sorted(cubes_by_case.items()):
        if not case.endswith("/chrono"):
            continue
        cert = case + "-cert"
        if cert not in cubes_by_case:
            fail(f"table1 case {case!r} has no certificate series {cert!r}")
        if cubes_by_case[cert] != cubes:
            fail(f"certificate emission changed the cover: {cert!r} produced "
                 f"{cubes_by_case[cert]} cubes but {case!r} produced {cubes}")
        if counters_by_case[cert].get("cert.bytes", 0) <= 0:
            fail(f"table1 case {cert!r} has no positive cert.bytes counter")
        cert_cases += 1
    if cert_cases == 0:
        fail("table1 contains no chrono/chrono-cert pairs to compare")

    par_pairs = 0
    for case, cubes in sorted(cubes_by_case.items()):
        if not case.endswith("-par1"):
            continue
        partner = case[:-len("-par1")] + "-par8"
        if partner not in cubes_by_case:
            fail(f"table1 case {case!r} has no matching {partner!r} record")
        if cubes != cubes_by_case[partner]:
            fail(f"determinism violation: {case!r} produced {cubes} cubes but "
                 f"{partner!r} produced {cubes_by_case[partner]}")
        par_pairs += 1
    if par_pairs == 0:
        fail("table1 contains no par1/par8 pairs to compare")


def load_trajectory(path: str) -> list:
    records = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path} line {lineno}: not valid JSON: {e}")
                records.append(check_record(lineno, record))
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not records:
        fail(f"{path} is empty")
    return records


def median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def series_medians(records: list) -> dict:
    """(bench, case) -> median time.seconds across that series' records."""
    times: dict = {}
    for r in records:
        key = (r["labels"]["bench"], r["labels"]["case"])
        times.setdefault(key, []).append(r["gauges"]["time.seconds"])
    return {key: median(values) for key, values in times.items()}


def check_compare(records: list, baseline_path: str, max_regression: float,
                  noise_floor: float) -> None:
    baseline = series_medians(load_trajectory(baseline_path))
    current = series_medians(records)

    missing = sorted(set(baseline) - set(current))
    if missing:
        fail(f"series present in baseline {baseline_path} but absent from "
             f"the current trajectory: {[f'{b}/{c}' for b, c in missing]}")

    regressions = []
    speedups = []
    skipped = 0
    for key in sorted(baseline):
        base, cur = baseline[key], current[key]
        if base < noise_floor and cur < noise_floor:
            skipped += 1
            continue
        ratio = cur / base
        label = f"{key[0]}/{key[1]}"
        if ratio > 1 + max_regression:
            regressions.append(f"  {label}: {base:.3f}s -> {cur:.3f}s "
                               f"({ratio:.2f}x slower)")
        elif ratio < 1:
            speedups.append(f"  {label}: {base:.3f}s -> {cur:.3f}s "
                            f"({base / cur:.2f}x faster)")
    if speedups:
        print(f"check_bench_json.py: {len(speedups)} series faster than "
              f"baseline {baseline_path}:")
        for line in speedups:
            print(line)
    print(f"check_bench_json.py: compared {len(baseline)} series against "
          f"{baseline_path} ({skipped} under the {noise_floor}s noise floor)")
    if regressions:
        print(f"check_bench_json.py: {len(regressions)} series regressed "
              f"beyond {max_regression:.0%}:", file=sys.stderr)
        for line in regressions:
            print(line, file=sys.stderr)
        fail(f"median regression beyond {max_regression:.0%} vs {baseline_path}")


def report_cert_overhead(records: list) -> None:
    """Prints the certificate-emission overhead of every chrono/chrono-cert
    series pair (median cert time / median plain time). Informational: the
    plain series stays under the --compare regression gate, which is what
    enforces zero-cost-when-disabled; this line makes the cost-when-ENABLED
    visible in the same log."""
    medians = series_medians(records)
    for (bench, case) in sorted(medians):
        if not case.endswith("/chrono-cert"):
            continue
        plain = (bench, case[:-len("-cert")])
        if plain not in medians or medians[plain] <= 0:
            continue
        ratio = medians[(bench, case)] / medians[plain]
        print(f"check_bench_json.py: cert-overhead {bench}/{case}: "
              f"{medians[plain]:.4f}s -> {medians[(bench, case)]:.4f}s "
              f"({ratio:.2f}x)")


def check_google_benchmark(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot read google-benchmark report: {e}")
    benchmarks = report.get("benchmarks") if isinstance(report, dict) else None
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(f"{path}: 'benchmarks' must be a non-empty array")
    for entry in benchmarks:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            fail(f"{path}: benchmark entry without a name")
        real_time = entry.get("real_time")
        if not isinstance(real_time, (int, float)) or real_time <= 0:
            fail(f"{path}: benchmark {entry.get('name')!r} has non-positive "
                 f"real_time {real_time!r}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("jsonl", help="bench trajectory file (JSONL)")
    parser.add_argument("--google-benchmark", metavar="FILE",
                        help="also validate a --benchmark_format=json report")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline trajectory to diff series medians against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail when a series median regresses beyond this "
                             "fraction (default 0.25)")
    parser.add_argument("--noise-floor", type=float, default=0.05,
                        help="skip series faster than this many seconds in "
                             "both files (default 0.05)")
    args = parser.parse_args()

    records = load_trajectory(args.jsonl)

    check_table1(records)
    report_cert_overhead(records)
    if args.google_benchmark:
        check_google_benchmark(args.google_benchmark)
    if args.compare:
        check_compare(records, args.compare, args.max_regression,
                      args.noise_floor)

    print(f"check_bench_json.py: OK: {len(records)} records "
          f"({args.jsonl}{' + ' + args.google_benchmark if args.google_benchmark else ''})")


if __name__ == "__main__":
    main()
