#!/usr/bin/env python3
"""presat_analyze — semantic repo analyzer, tier 3 of the static-analysis
stack (tier 1: tools/lint.py regex rules, tier 2: clang-tidy, tier 3: clang
-Wthread-safety + this tool; see DESIGN.md "Static analysis").

The analyzer is driven by the build's compile_commands.json (so it sees
exactly the translation units the build graph compiles, plus the headers
under src/) and enforces the repo's concurrency and resource-discipline
protocol — rules that need scope and type context a regex tier cannot
express. It is deliberately dependency-free: a comment/string-aware C++
tokenizer with namespace/class/function scope tracking, rather than a
libclang binding whose wheel would be one more drifting toolchain input.

Rules (stable ids):

  sync-unguarded-member   a class that owns a Mutex must say, member by
                          member, what that mutex protects: every other data
                          member carries GUARDED_BY(...) or a waiver
  sync-unwaived-atomic    every std::atomic member or global carries
                          GUARDED_BY(...) or a `lockfree` waiver naming the
                          protocol that makes lock-freedom sound
  sync-raw-mutex          no raw std::mutex members in src/ — use the
                          CAPABILITY-annotated presat::Mutex (base/sync.hpp)
                          so clang's thread-safety analysis can see the lock
  raw-alloc               no naked new/delete/malloc/free in src/:
                          allocations must flow through governor-charged
                          paths (solver clause arena, BDD node pool, standard
                          containers) so MemoryLedger accounting stays sound
  raw-thread              no std::thread construction outside the WorkerPool
                          (src/parallel/worker_pool.cpp) — every thread must
                          sit behind the pool's join barrier and its
                          governor-stop drain
  metrics-key-grammar     metrics key literals match the dotted-name grammar
                          [a-z][a-z0-9_]*(.[a-z0-9_]+)*
  metrics-kind-collision  a key keeps one kind (counter/gauge/histogram/
                          label) across the whole repo
  metrics-duplicate-key   the same key+kind registered twice inside one
                          function silently clobbers itself
  metrics-registry-drift  tools/metrics_registry.json no longer matches the
                          registration sites in the source (re-run with
                          --update-registry)

Waivers: `// presat-analyze: <rule-keyword>(<why>)` on the declaration line
or on the comment block immediately above it. Keywords: lockfree (sync
rules), raw-alloc, raw-thread. The <why> is mandatory prose — a waiver is a
documented invariant, not a suppression.

Usage:
  tools/presat_analyze.py --compile-commands build/compile_commands.json \
      [--registry tools/metrics_registry.json] [--format text|json]
  tools/presat_analyze.py --files f1.cpp f2.cpp ...   (all rules, any path —
      the fixture tests under tests/analyze/ use this mode)
  tools/presat_analyze.py --compile-commands ... --update-registry PATH

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint import Finding, emit, strip_comments_and_strings  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

# The one place allowed to construct std::thread: the pool behind which every
# other thread in the repo must sit.
THREAD_SPAWN_SITE = "src/parallel/worker_pool.cpp"

KEY_GRAMMAR = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
WAIVER = re.compile(r"//\s*presat-analyze:\s*([a-z-]+)\(")

METRIC_METHODS = {
    "inc": "counter",
    "setCounter": "counter",
    "setGauge": "gauge",
    "setLabel": "label",
    "histogram": "histogram",
}

ALLOC_CALLS = {"malloc", "calloc", "realloc", "free", "aligned_alloc",
               "posix_memalign", "strdup"}

# Annotation macros from base/thread_annotations.hpp whose trailing calls must
# be peeled off a declaration before deciding member-vs-function.
ANNOT_MACROS = {
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER", "REQUIRES", "REQUIRES_SHARED",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE",
    "EXCLUDES", "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS",
}

GUARD_MACROS = {"GUARDED_BY", "PT_GUARDED_BY"}

SKIP_STATEMENT_STARTERS = {
    "public", "private", "protected", "friend", "using", "typedef",
    "template", "static_assert", "operator", "virtual", "enum", "class",
    "struct", "union", "extern", "goto", "return", "if", "for", "while",
    "switch", "case", "default", "do", "else", "break", "continue",
}


# ---------------------------------------------------------------------------
# Tokenizer


@dataclass
class Token:
    text: str
    line: int
    kind: str  # 'id' | 'num' | 'str' | 'punct'


TOKEN_RE = re.compile(
    r'''(?P<str>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')'''
    r"|(?P<id>[A-Za-z_]\w*)"
    r"|(?P<num>\.?\d[\w.]*(?:[eEpP][+-][\w.]*)*)"
    r"|(?P<punct>::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^!~=<>?:;,.(){}\[\]\\])"
)


def blank_preprocessor(text: str) -> str:
    """Blanks out preprocessor directives (with continuation lines),
    preserving line structure, so directive bodies don't confuse the
    statement walker."""
    out_lines = []
    cont = False
    for line in text.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out_lines.append("")
        else:
            cont = False
            out_lines.append(line)
    return "\n".join(out_lines)


def tokenize(code: str) -> list[Token]:
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup or "punct"
        tokens.append(Token(m.group(), line, kind))
    return tokens


# ---------------------------------------------------------------------------
# Waiver extraction (runs on the RAW text — waivers are comments)


def extract_waivers(raw: str) -> dict[int, set[str]]:
    """Maps line number -> waiver keywords covering a declaration on that
    line. A waiver in a trailing comment covers its own line; a waiver in a
    standalone comment covers the first code line after the comment block."""
    lines = raw.split("\n")
    waivers: dict[int, set[str]] = {}

    def is_pure_comment_or_blank(s: str) -> bool:
        t = s.strip()
        return t == "" or t.startswith("//") or t.startswith("*") or t.startswith("/*")

    for i, text in enumerate(lines, 1):
        m = WAIVER.search(text)
        if not m:
            continue
        keyword = m.group(1)
        before = text[: m.start()]
        if before.strip() and not before.strip().startswith(("//", "*", "/*")):
            target = i  # trailing comment on a code line
        else:
            target = i + 1
            while target <= len(lines) and is_pure_comment_or_blank(lines[target - 1]):
                target += 1
        waivers.setdefault(target, set()).add(keyword)
    return waivers


# ---------------------------------------------------------------------------
# Scope walker


@dataclass
class Scope:
    kind: str  # 'file' | 'namespace' | 'class' | 'block' | 'enum'
    name: str
    sid: int
    statements: list[list[Token]] = field(default_factory=list)


@dataclass
class MetricSite:
    kind: str
    key: str  # None for dynamic keys
    file: str
    line: int
    func: int  # scope id of the innermost enclosing block, -1 at file scope


@dataclass
class FileReport:
    findings: list[Finding] = field(default_factory=list)
    metric_sites: list[MetricSite] = field(default_factory=list)
    dynamic_metric_sites: int = 0


def seq(tokens: list[Token], i: int, *texts: str) -> bool:
    if i + len(texts) > len(tokens):
        return False
    return all(tokens[i + k].text == t for k, t in enumerate(texts))


def class_name_from_header(stmt: list[Token]) -> str:
    """Extracts the class name from the statement tokens of a class header
    (`class CAPABILITY("mutex") Mutex final : public Base`)."""
    i = 0
    while i < len(stmt) and stmt[i].text not in ("class", "struct", "union"):
        i += 1
    i += 1
    while i < len(stmt):
        t = stmt[i]
        if t.kind == "id":
            if t.text in ANNOT_MACROS or (i + 1 < len(stmt) and stmt[i + 1].text == "(")\
                    or t.text == "alignas":
                # macro/attribute call: skip its balanced parens
                i += 1
                if i < len(stmt) and stmt[i].text == "(":
                    depth = 0
                    while i < len(stmt):
                        if stmt[i].text == "(":
                            depth += 1
                        elif stmt[i].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        i += 1
                    i += 1
                continue
            if t.text == "final":
                i += 1
                continue
            return t.text
        if t.text == ":":
            break
        i += 1
    return "<anon>"


def strip_trailing_annotations(stmt: list[Token]) -> list[Token]:
    """Peels trailing annotation-macro calls and init braces markers so the
    member-vs-function test can look at the real declarator tail."""
    out = list(stmt)
    while out:
        last = out[-1]
        if last.text == ")":
            # find the matching open paren and the identifier before it
            depth = 0
            j = len(out) - 1
            while j >= 0:
                if out[j].text == ")":
                    depth += 1
                elif out[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j > 0 and out[j - 1].text in ANNOT_MACROS:
                out = out[: j - 1]
                continue
        break
    return out


class Analyzer:
    def __init__(self, path: Path, rel: str, rules: set[str]):
        self.path = path
        self.rel = rel
        self.rules = rules
        self.report = FileReport()
        raw = path.read_text(encoding="utf-8")
        self.waivers = extract_waivers(raw)
        code = strip_comments_and_strings(raw, keep_strings=True)
        code = blank_preprocessor(code)
        self.tokens = tokenize(code)
        self.next_sid = 0

    # -- helpers

    def waived(self, line: int, keyword: str) -> bool:
        return keyword in self.waivers.get(line, set())

    def finding(self, rule: str, line: int, message: str) -> None:
        if rule.split("-")[0] in ("metrics",) and "metrics" not in self.rules:
            return
        self.report.findings.append(Finding(rule, self.rel, line, message))

    # -- main walk

    def run(self) -> FileReport:
        toks = self.tokens
        stack: list[Scope] = [Scope("file", "<file>", self._sid())]
        stmt: list[Token] = []
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            text = t.text

            # Point rules that don't need statement structure:
            if "alloc" in self.rules:
                i_advance = self._check_alloc(i)
                if i_advance:
                    i = i_advance
                    continue
            if "thread" in self.rules:
                self._check_thread(i)
            if "metrics" in self.rules or True:
                # metric sites always collected (registry); findings gated in
                # finding() by the rule set.
                self._check_metrics(i, stack)

            if text == ";":
                self._finish_statement(stack, stmt)
                stmt = []
            elif text == ":" and len(stmt) == 1 and stmt[0].text in (
                    "public", "private", "protected"):
                stmt = []
            elif text == "{":
                kind = self._classify_brace(stmt)
                if kind == "init":
                    # skip the balanced braces, keep the statement going
                    depth = 0
                    while i < n:
                        if toks[i].text == "{":
                            depth += 1
                        elif toks[i].text == "}":
                            depth -= 1
                            if depth == 0:
                                break
                        i += 1
                    stmt.append(Token("{}", t.line, "punct"))
                else:
                    name = class_name_from_header(stmt) if kind == "class" else ""
                    scope = Scope(kind, name, self._sid())
                    if kind == "class":
                        scope.statements = []
                        scope.header = list(stmt)  # type: ignore[attr-defined]
                    stack.append(scope)
                    stmt = []
            elif text == "}":
                if len(stack) > 1:
                    closed = stack.pop()
                    if closed.kind == "class":
                        self._eval_class(closed)
                stmt = []
            else:
                stmt.append(t)
            i += 1
        return self.report

    def _sid(self) -> int:
        self.next_sid += 1
        return self.next_sid

    def _classify_brace(self, stmt: list[Token]) -> str:
        if not stmt:
            return "block"
        first = stmt[0].text
        texts = [t.text for t in stmt]
        if first == "namespace":
            return "namespace"
        if "enum" in texts[:2]:
            return "enum"
        if first in ("if", "for", "while", "switch", "do", "else", "try"):
            return "block"
        if ("class" in texts or "struct" in texts or "union" in texts) \
                and texts[-1] != "=":
            return "class"
        last = stmt[-1].text
        if last in (")", "try", "const", "noexcept", "override", "mutable") \
                or last in ANNOT_MACROS:
            return "block"
        if last in ("=", ",", "(", "[", "return"):
            return "init"
        if stmt[-1].kind in ("id", "num") or last in (">", "]", "{}"):
            # `ident{...}` is brace-init unless the statement already looks
            # like a function signature (has a call-ish paren).
            return "init" if "(" not in texts else "block"
        return "block"

    # -- point rules

    def _check_alloc(self, i: int) -> int:
        """Returns the index to resume from if tokens were consumed, else 0."""
        toks = self.tokens
        t = toks[i]
        if t.text == "new":
            if not self.waived(t.line, "raw-alloc"):
                self.finding("raw-alloc", t.line,
                             "naked `new` bypasses governor-charged allocation "
                             "(use std containers / make_unique inside charged "
                             "arenas, or waive with raw-alloc(<why>))")
            return 0
        if t.text == "delete":
            prev = toks[i - 1].text if i > 0 else ""
            if prev in ("=", "operator"):
                return 0
            if not self.waived(t.line, "raw-alloc"):
                self.finding("raw-alloc", t.line,
                             "naked `delete` — paired raw allocation is "
                             "invisible to the MemoryLedger")
            return 0
        if t.kind == "id" and t.text in ALLOC_CALLS:
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if nxt == "(" and prev not in (".", "->"):
                if not self.waived(t.line, "raw-alloc"):
                    self.finding("raw-alloc", t.line,
                                 f"raw {t.text}() bypasses governor-charged "
                                 "allocation paths")
        return 0

    def _check_thread(self, i: int) -> None:
        toks = self.tokens
        if not (seq(toks, i, "std", "::", "thread") or seq(toks, i, "std", "::", "jthread")):
            return
        if self.rel == THREAD_SPAWN_SITE:
            return
        line = toks[i].line
        if not self.waived(line, "raw-thread"):
            self.finding("raw-thread", line,
                         "std::thread outside WorkerPool — every thread must "
                         "sit behind the pool's join barrier and governor-stop "
                         "drain (src/parallel/worker_pool.cpp)")

    def _check_metrics(self, i: int, stack: list[Scope]) -> None:
        toks = self.tokens
        t = toks[i]
        if t.kind != "id" or t.text not in METRIC_METHODS:
            return
        if i == 0 or toks[i - 1].text not in (".", "->"):
            return
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            return
        kind = METRIC_METHODS[t.text]
        # Attribute the site to the INNERMOST block: registrations in sibling
        # branches (switch cases, if/else arms) are mutually exclusive and
        # must not count as duplicates — only same-straight-line repeats do.
        func = -1
        for scope in reversed(stack):
            if scope.kind == "block":
                func = scope.sid
                break
        arg = toks[i + 2] if i + 2 < len(toks) else None
        if arg is not None and arg.kind == "str" and arg.text.startswith('"'):
            key = arg.text[1:-1]
            self.report.metric_sites.append(
                MetricSite(kind, key, self.rel, arg.line, func))
            if not KEY_GRAMMAR.match(key):
                self.finding("metrics-key-grammar", arg.line,
                             f'metrics key "{key}" must match '
                             "[a-z][a-z0-9_]*(.[a-z0-9_]+)*")
        else:
            self.report.dynamic_metric_sites += 1

    # -- class evaluation

    def _finish_statement(self, stack: list[Scope], stmt: list[Token]) -> None:
        if not stmt:
            return
        top = stack[-1]
        if top.kind == "class":
            top.statements.append(stmt)
        elif top.kind in ("file", "namespace") and "sync" in self.rules:
            self._eval_scope_statement(stmt, in_mutex_class=False,
                                       class_name=None)

    def _eval_class(self, scope: Scope) -> None:
        if "sync" not in self.rules:
            return
        # First pass: does this class own a mutex capability?
        has_mutex = False
        for stmt in scope.statements:
            if self._member_shape(stmt) and self._is_mutex_decl(stmt):
                has_mutex = True
                break
        for stmt in scope.statements:
            self._eval_scope_statement(stmt, in_mutex_class=has_mutex,
                                       class_name=scope.name)

    def _member_shape(self, stmt: list[Token]) -> bool:
        """True when the class/namespace-scope statement is a data
        declaration (not a function, label, using, etc.)."""
        if not stmt:
            return False
        first = stmt[0].text
        if first in SKIP_STATEMENT_STARTERS:
            return False
        texts = [t.text for t in stmt]
        if "constexpr" in texts or "operator" in texts:
            return False
        tail = strip_trailing_annotations(stmt)
        if not tail:
            return False
        last = tail[-1]
        if last.text in ("delete", "default"):
            return False
        # `...(...) const noexcept` etc. is a function declaration's
        # qualifier tail, not a data member named `const` — out-of-line const
        # methods of mutex-owning classes would otherwise all need bogus
        # waivers.
        k = len(tail)
        while k > 0 and tail[k - 1].text in ("const", "noexcept", "override", "final"):
            k -= 1
        if k < len(tail) and k > 0 and tail[k - 1].text == ")":
            return False
        if last.kind in ("id", "num") or last.text in ("]", "{}", ">"):
            return True
        return False

    def _is_mutex_decl(self, stmt: list[Token]) -> bool:
        texts = [t.text for t in stmt]
        for j in range(len(texts)):
            if seq(stmt, j, "std", "::", "mutex"):
                return True
            if texts[j] == "Mutex" and (j == 0 or texts[j - 1] != "class"):
                return True
        return False

    def _eval_scope_statement(self, stmt: list[Token], in_mutex_class: bool,
                              class_name: str | None) -> None:
        if not self._member_shape(stmt):
            return
        texts = [t.text for t in stmt]
        line = stmt[0].line
        has_guard = any(t in GUARD_MACROS for t in texts)
        member = next((t.text for t in reversed(strip_trailing_annotations(stmt))
                       if t.kind == "id"), "<member>")
        where = f"in class {class_name}" if class_name else "at namespace scope"

        is_std_mutex = any(seq(stmt, j, "std", "::", "mutex") for j in range(len(stmt)))
        is_atomic = any(seq(stmt, j, "std", "::", "atomic") or
                        (seq(stmt, j, "std", "::") and j + 2 < len(stmt) and
                         stmt[j + 2].text.startswith("atomic_"))
                        for j in range(len(stmt)))

        if is_std_mutex:
            if not self.waived(line, "lockfree"):
                self.finding("sync-raw-mutex", line,
                             f"raw std::mutex member `{member}` {where}: use "
                             "presat::Mutex (base/sync.hpp) so clang's "
                             "thread-safety analysis can see the lock")
            return
        if self._is_mutex_decl(stmt):
            return  # the annotated capability itself
        if is_atomic:
            if not has_guard and not self.waived(line, "lockfree"):
                self.finding("sync-unwaived-atomic", line,
                             f"std::atomic `{member}` {where} needs "
                             "GUARDED_BY(...) or a `// presat-analyze: "
                             "lockfree(<why>)` waiver documenting its "
                             "protocol")
            return
        if in_mutex_class and not has_guard and not self.waived(line, "lockfree"):
            self.finding("sync-unguarded-member", line,
                         f"member `{member}` {where} — the class owns a "
                         "mutex, so every member must say GUARDED_BY(...) "
                         "or carry a lockfree(<why>) waiver")


# ---------------------------------------------------------------------------
# Rule scoping and drivers


def rules_for(rel: str, explicit: bool) -> set[str]:
    rules: set[str] = set()
    if explicit or rel.startswith("src/"):
        rules |= {"sync", "alloc", "thread"}
    if explicit or rel.startswith(("src/", "tools/", "bench/")):
        rules.add("metrics")
    return rules


def relpath(p: Path) -> str:
    try:
        return p.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return p.as_posix()


def files_from_compile_commands(cc_path: Path) -> list[Path] | None:
    try:
        entries = json.loads(cc_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"presat_analyze: cannot read {cc_path}: {e}", file=sys.stderr)
        return None
    files = set()
    for entry in entries:
        f = Path(entry.get("directory", ".")) / entry["file"] \
            if not Path(entry["file"]).is_absolute() else Path(entry["file"])
        rel = relpath(f)
        if rel.startswith(("src/", "tools/", "bench/")) and f.suffix in SOURCE_SUFFIXES:
            files.add(f.resolve())
    # The compile database only lists TUs the build graph compiles; union in
    # every source under the governed trees so headers — and any file parked
    # outside the build — still face the rules.
    for tree in ("src", "tools", "bench"):
        for p in (REPO_ROOT / tree).rglob("*"):
            if p.suffix in SOURCE_SUFFIXES:
                files.add(p.resolve())
    return sorted(files)


def build_registry(sites: list[MetricSite], dynamic_sites: int) -> dict:
    keys: dict[str, dict] = {}
    for s in sites:
        if s.key is None:
            continue
        entry = keys.setdefault(s.key, {"kind": s.kind, "sites": []})
        loc = f"{s.file}:{s.line}"
        if loc not in entry["sites"]:
            entry["sites"].append(loc)
    for entry in keys.values():
        entry["sites"].sort()
    return {
        "schema": "presat-metrics-registry-v1",
        "dynamic_sites": dynamic_sites,
        "keys": {k: keys[k] for k in sorted(keys)},
    }


def check_metrics_cross_file(sites: list[MetricSite], findings: list[Finding]) -> None:
    by_key: dict[str, list[MetricSite]] = {}
    for s in sites:
        if s.key is not None:
            by_key.setdefault(s.key, []).append(s)
    for key, ss in sorted(by_key.items()):
        kinds = sorted({s.kind for s in ss})
        if len(kinds) > 1:
            for s in ss:
                findings.append(Finding(
                    "metrics-kind-collision", s.file, s.line,
                    f'key "{key}" is registered as {" and ".join(kinds)} — '
                    "one key, one kind, or the JSON schema splits it across "
                    "sections"))
        # duplicate registration inside one function
        per_func: dict[tuple, list[MetricSite]] = {}
        for s in ss:
            if s.func >= 0:
                per_func.setdefault((s.file, s.func, s.kind), []).append(s)
        for (file, _func, kind), group in sorted(per_func.items()):
            lines = sorted({s.line for s in group})
            if len(lines) > 1:
                findings.append(Finding(
                    "metrics-duplicate-key", file, lines[1],
                    f'key "{key}" ({kind}) registered {len(lines)} times in '
                    f"one function (lines {', '.join(map(str, lines))}) — "
                    "later registrations clobber earlier ones"))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="presat_analyze.py")
    parser.add_argument("--compile-commands", type=Path,
                        help="compile_commands.json driving the file set")
    parser.add_argument("--files", nargs="+", type=Path,
                        help="explicit files (all rules enabled regardless of path)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--registry", type=Path,
                        help="checked-in metrics registry to verify against")
    parser.add_argument("--update-registry", type=Path,
                        help="write the computed metrics registry here and exit")
    args = parser.parse_args(argv)

    explicit = args.files is not None
    if explicit:
        files = [f.resolve() for f in args.files]
    elif args.compile_commands is not None:
        maybe = files_from_compile_commands(args.compile_commands)
        if maybe is None:
            return 2
        files = maybe
    else:
        parser.print_usage(sys.stderr)
        print("presat_analyze: need --compile-commands or --files", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    sites: list[MetricSite] = []
    dynamic_sites = 0
    for f in files:
        if not f.is_file():
            print(f"presat_analyze: no such file: {f}", file=sys.stderr)
            return 2
        rel = relpath(f)
        rules = rules_for(rel, explicit)
        if not rules:
            continue
        report = Analyzer(f, rel, rules).run()
        findings.extend(report.findings)
        if "metrics" in rules:
            sites.extend(report.metric_sites)
            dynamic_sites += report.dynamic_metric_sites

    check_metrics_cross_file(sites, findings)

    registry = build_registry(sites, dynamic_sites)
    if args.update_registry is not None:
        args.update_registry.write_text(json.dumps(registry, indent=2) + "\n",
                                        encoding="utf-8")
        print(f"presat_analyze: wrote {args.update_registry} "
              f"({len(registry['keys'])} keys)")
        return 0
    if args.registry is not None and not explicit:
        try:
            checked_in = json.loads(args.registry.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            checked_in = None
        if checked_in != registry:
            findings.append(Finding(
                "metrics-registry-drift", relpath(args.registry), 1,
                "metrics registry no longer matches the source — run "
                "tools/presat_analyze.py --compile-commands <db> "
                f"--update-registry {relpath(args.registry)}"))

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return emit("presat-analyze", len(files), findings, args.format)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
