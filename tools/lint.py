#!/usr/bin/env python3
"""Repo-rule linter for presat — the cheap regex tier of the static-analysis
stack (tier 1 of three; see DESIGN.md "Static analysis"). Rules that need
scope or type context live in tools/presat_analyze.py, which reports through
the same finding schema (shared via this module's Finding/render helpers).

Rules (each has a stable id used in the report):

  naked-assert      no `assert(...)` outside src/base/check.hpp; use
                    PRESAT_CHECK / PRESAT_DCHECK so failures report through
                    the common abort path (and stay on in release builds
                    where intended)
  iostream-in-src   no `#include <iostream>` under src/ — the library must
                    not touch global streams (tools/ and tests/ may)
  pragma-once       every header starts its preprocessor life with
                    `#pragma once`
  using-namespace   no top-level `using namespace` in headers (injects into
                    every includer)
  narrowing-size    no `int x = expr.size()`-style narrowing in headers
                    without an explicit static_cast
  detached-thread   no `.detach()` anywhere — a detached thread outlives the
                    WorkerPool join barrier, so it can touch shard slots and
                    stack-local task state after run() returned; governed
                    cancellation (CancelToken + Governor::tripped) is the
                    supported way to abandon work

Usage: tools/lint.py [--format text|json] [paths...]
       (paths default to src tools tests; tests/analyze/fixtures is skipped
        unless named explicitly — the fixtures are intentionally bad inputs
        for the analyzer tests)
Exit status: 0 clean, 1 findings, 2 usage/IO error.

JSON format (shared with presat_analyze.py):
  { "tool": "lint", "schema": "presat-analysis-v1", "files": N,
    "findings": [ { "rule": ..., "file": ..., "line": N, "message": ... } ] }
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

# Intentionally-bad analyzer test inputs; only linted when named explicitly.
FIXTURE_DIR = "tests/analyze/fixtures"

# assert( not preceded by an identifier character (excludes static_assert,
# PRESAT_CHECK's own mention in comments is filtered by the string/comment
# stripper below).
NAKED_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
IOSTREAM = re.compile(r'#\s*include\s*<iostream>')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+\w")
# `int x = <expr>.size()` (or .count()) with no cast in between.
NARROWING_SIZE = re.compile(
    r"\bint\s+\w+\s*=\s*[^;=]*\.\s*(?:size|count)\s*\(\s*\)\s*;")
STATIC_CAST = re.compile(r"static_cast\s*<")
DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")


@dataclass
class Finding:
    """One analyzer/linter diagnostic — the schema both tiers report through."""
    rule: str
    file: str   # repo-relative posix path
    line: int   # 1-based
    message: str

    def text(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "message": self.message}


def render_text(tool: str, files: int, findings: list[Finding]) -> str:
    lines = [f.text() for f in findings]
    lines.append(f"{tool}: {files} files, {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(tool: str, files: int, findings: list[Finding]) -> str:
    return json.dumps(
        {"tool": tool, "schema": "presat-analysis-v1", "files": files,
         "findings": [f.as_dict() for f in findings]},
        indent=2)


def emit(tool: str, files: int, findings: list[Finding], fmt: str) -> int:
    """Prints the report in `fmt` and returns the process exit status."""
    render = render_json if fmt == "json" else render_text
    print(render(tool, files, findings))
    return 1 if findings else 0


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments (and, unless keep_strings, string/char literals),
    preserving line structure. presat_analyze.py uses keep_strings=True so it
    can read metrics key literals from the same sanitized view."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j] if keep_strings else " " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path: Path, findings: list[Finding]) -> None:
    rel = path.relative_to(REPO_ROOT).as_posix()
    raw = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()
    is_header = path.suffix in HEADER_SUFFIXES
    in_src = rel.startswith("src/")

    def report(rule: str, lineno: int, message: str) -> None:
        findings.append(Finding(rule, rel, lineno, message))

    if rel != "src/base/check.hpp":
        for lineno, line in enumerate(lines, 1):
            if NAKED_ASSERT.search(line):
                report("naked-assert", lineno,
                       "use PRESAT_CHECK / PRESAT_DCHECK instead of assert()")

    for lineno, line in enumerate(lines, 1):
        if DETACH.search(line):
            report("detached-thread", lineno,
                   "no .detach(): detached threads outlive the join barrier; "
                   "use CancelToken/Governor for cooperative abandonment")

    if in_src:
        for lineno, line in enumerate(lines, 1):
            if IOSTREAM.search(line):
                report("iostream-in-src", lineno,
                       "the library must not include <iostream>")

    if is_header:
        first_directive = next(
            (line.strip() for line in lines if line.strip().startswith("#")), "")
        if first_directive != "#pragma once":
            report("pragma-once", 1,
                   "header's first preprocessor directive must be #pragma once")

        for lineno, line in enumerate(lines, 1):
            if USING_NAMESPACE.search(line):
                report("using-namespace", lineno,
                       "no top-level `using namespace` in headers")
            if NARROWING_SIZE.search(line) and not STATIC_CAST.search(line):
                report("narrowing-size", lineno,
                       "narrowing size_t -> int in a header needs an explicit static_cast")


def collect_files(roots: list[Path], skip_fixtures: bool) -> list[Path] | None:
    files: list[Path] = []
    for root in roots:
        # A root pointed INTO the fixture dir is an explicit request to lint
        # fixtures (the analyzer's own tests do this).
        root_in_fixtures = FIXTURE_DIR in root.resolve().as_posix()
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            for p in sorted(root.rglob("*")):
                if p.suffix not in SOURCE_SUFFIXES:
                    continue
                rel = p.relative_to(REPO_ROOT).as_posix()
                if skip_fixtures and not root_in_fixtures and rel.startswith(FIXTURE_DIR):
                    continue
                files.append(p)
        else:
            print(f"lint.py: no such path: {root}", file=sys.stderr)
            return None
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="lint.py", add_help=True)
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("paths", nargs="*", default=["src", "tools", "tests"])
    args = parser.parse_args(argv)

    roots = [REPO_ROOT / p if not Path(p).is_absolute() else Path(p)
             for p in args.paths]
    # Fixtures are skipped only during directory walks; naming one directly
    # (the analyzer's own tests do) still lints it.
    files = collect_files(roots, skip_fixtures=True)
    if files is None:
        return 2

    findings: list[Finding] = []
    for path in files:
        lint_file(path, findings)
    return emit("lint", len(files), findings, args.format)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
