#!/usr/bin/env python3
"""Repo-rule linter for presat — the rules clang-tidy cannot express.

Rules (each has a stable id used in the report):

  naked-assert      no `assert(...)` outside src/base/check.hpp; use
                    PRESAT_CHECK / PRESAT_DCHECK so failures report through
                    the common abort path (and stay on in release builds
                    where intended)
  iostream-in-src   no `#include <iostream>` under src/ — the library must
                    not touch global streams (tools/ and tests/ may)
  pragma-once       every header starts its preprocessor life with
                    `#pragma once`
  using-namespace   no top-level `using namespace` in headers (injects into
                    every includer)
  narrowing-size    no `int x = expr.size()`-style narrowing in headers
                    without an explicit static_cast

Usage: tools/lint.py [paths...]   (defaults to src tools tests)
Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

# assert( not preceded by an identifier character (excludes static_assert,
# PRESAT_CHECK's own mention in comments is filtered by the string/comment
# stripper below).
NAKED_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
IOSTREAM = re.compile(r'#\s*include\s*<iostream>')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s+\w")
# `int x = <expr>.size()` (or .count()) with no cast in between.
NARROWING_SIZE = re.compile(
    r"\bint\s+\w+\s*=\s*[^;=]*\.\s*(?:size|count)\s*\(\s*\)\s*;")
STATIC_CAST = re.compile(r"static_cast\s*<")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path: Path, findings: list[str]) -> None:
    rel = path.relative_to(REPO_ROOT).as_posix()
    raw = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()
    is_header = path.suffix in HEADER_SUFFIXES
    in_src = rel.startswith("src/")

    def report(rule: str, lineno: int, message: str) -> None:
        findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    if rel != "src/base/check.hpp":
        for lineno, line in enumerate(lines, 1):
            if NAKED_ASSERT.search(line):
                report("naked-assert", lineno,
                       "use PRESAT_CHECK / PRESAT_DCHECK instead of assert()")

    if in_src:
        for lineno, line in enumerate(lines, 1):
            if IOSTREAM.search(line):
                report("iostream-in-src", lineno,
                       "the library must not include <iostream>")

    if is_header:
        first_directive = next(
            (line.strip() for line in lines if line.strip().startswith("#")), "")
        if first_directive != "#pragma once":
            report("pragma-once", 1,
                   "header's first preprocessor directive must be #pragma once")

        for lineno, line in enumerate(lines, 1):
            if USING_NAMESPACE.search(line):
                report("using-namespace", lineno,
                       "no top-level `using namespace` in headers")
            if NARROWING_SIZE.search(line) and not STATIC_CAST.search(line):
                report("narrowing-size", lineno,
                       "narrowing size_t -> int in a header needs an explicit static_cast")


def main(argv: list[str]) -> int:
    roots = [REPO_ROOT / a for a in (argv or ["src", "tools", "tests"])]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(p for p in sorted(root.rglob("*")) if p.suffix in SOURCE_SUFFIXES)
        else:
            print(f"lint.py: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[str] = []
    for path in files:
        lint_file(path, findings)

    for f in findings:
        print(f)
    print(f"lint.py: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
