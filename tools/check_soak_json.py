#!/usr/bin/env python3
"""Shape- and acceptance-check a presat_client.py soak report.

Validates the "presat-soak-v1" JSON that tools/presat_client.py --report
emits, instead of grepping for a single number:

  * `requests` >= --min-requests (default 100) and `clients` >= --min-clients
    (default 8), so the soak actually exercised concurrency;
  * `repeat_fraction` >= --min-repeat (default 0.3), so the cross-query cache
    saw repeated (circuit, target) pairs;
  * `protocol_errors` == 0 and `unsound` == 0 and `clean` is true — every
    response parsed, matched its request, and was complete or a sound partial
    against the BDD oracle;
  * every `outcomes` key is a known engine outcome and the counts sum to
    `requests` minus retried/errored ones (<= requests);
  * when `cache_compare` is present (--compare-cache runs), it recorded at
    least one hit and `speedup` >= --min-speedup (default 2.0) — the
    cache-hit acceptance bar.

Usage: check_soak_json.py SOAK.json [--min-speedup 2.0] [--no-compare]
Exit status: 0 on a clean report, 1 otherwise (with a reason on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_OUTCOMES = {"complete", "deadline", "memory", "conflicts", "cancelled",
                  "cube-cap"}


def fail(reason: str) -> None:
    print(f"check_soak_json.py: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("report", help="soak report JSON from presat_client.py")
    parser.add_argument("--min-requests", type=int, default=100)
    parser.add_argument("--min-clients", type=int, default=8)
    parser.add_argument("--min-repeat", type=float, default=0.3)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--no-compare", action="store_true",
                        help="do not require a cache_compare section")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read report: {e}")

    if report.get("schema") != "presat-soak-v1":
        fail(f"unknown schema {report.get('schema')!r}")

    for key in ("requests", "clients", "unique_pairs", "protocol_errors",
                "unsound", "overload_retries", "retries"):
        v = report.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{key} must be a non-negative integer, got {v!r}")

    # `retries` counts backoff-and-retry attempts after "overloaded"
    # rejections (presat_client.py's capped-exponential-with-jitter loop).
    # Each request retries at most 4 times, and today every retry is an
    # overload retry, so the two counters must agree.
    if report["retries"] != report["overload_retries"]:
        fail(f"retries {report['retries']} != overload_retries "
             f"{report['overload_retries']}")
    if report["retries"] > report["requests"] * 4:
        fail(f"retries {report['retries']} exceeds the retry cap "
             f"(4 per request x {report['requests']} requests)")

    if report["requests"] < args.min_requests:
        fail(f"only {report['requests']} requests (need >= {args.min_requests})")
    if report["clients"] < args.min_clients:
        fail(f"only {report['clients']} clients (need >= {args.min_clients})")

    repeat = report.get("repeat_fraction")
    if not isinstance(repeat, (int, float)) or isinstance(repeat, bool):
        fail("repeat_fraction must be a number")
    if repeat < args.min_repeat:
        fail(f"repeat_fraction {repeat} < {args.min_repeat}")

    if report["protocol_errors"] != 0:
        fail(f"{report['protocol_errors']} protocol errors "
             f"(detail: {report.get('protocol_error_detail')})")
    if report["unsound"] != 0:
        fail(f"{report['unsound']} unsound responses "
             f"(detail: {report.get('unsound_detail')})")
    if report.get("clean") is not True:
        fail("report is not marked clean")

    outcomes = report.get("outcomes")
    if not isinstance(outcomes, dict) or not outcomes:
        fail("outcomes must be a non-empty object")
    for name, n in outcomes.items():
        if name not in KNOWN_OUTCOMES:
            fail(f"unknown outcome {name!r}")
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            fail(f"outcome {name!r} count must be a non-negative integer")
    if sum(outcomes.values()) > report["requests"]:
        fail("outcome counts exceed the request count")

    cache = report.get("cache")
    if not isinstance(cache, dict):
        fail("cache must be an object")
    for key in ("hit", "miss", "dedup", "off"):
        if key not in cache:
            fail(f"cache.{key} is missing")

    compare = report.get("cache_compare")
    if compare is None:
        if not args.no_compare:
            fail("cache_compare section is missing (run with --compare-cache, "
                 "or pass --no-compare)")
    else:
        if not isinstance(compare, dict):
            fail("cache_compare must be an object")
        if not isinstance(compare.get("hits"), int) or compare["hits"] < 1:
            fail("cache_compare.hits must be >= 1")
        speedup = compare.get("speedup")
        if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
            fail("cache_compare.speedup must be a number")
        if speedup < args.min_speedup:
            fail(f"cache-hit speedup {speedup} < {args.min_speedup} "
                 f"(hit {compare.get('median_hit_ms')}ms vs cold "
                 f"{compare.get('median_cold_ms')}ms)")

    summary = (f"{report['requests']} requests / {report['clients']} clients, "
               f"repeat {repeat:.2f}, outcomes {outcomes}")
    if compare is not None:
        summary += f", cache-hit speedup {compare['speedup']}x"
    print(f"check_soak_json.py: OK ({summary})")


if __name__ == "__main__":
    main()
