// presat command-line driver.
//
// Usage:
//   presat_cli info    <file.bench>
//   presat_cli allsat  <file.cnf>  [--method minterm|cube|sd|chrono] [--max N]
//                                  [--stats json]
//   presat_cli preimage <file.bench>|--gen SPEC --target CUBE [--method NAME] [--stats json]
//   presat_cli image    <file.bench> --from CUBE [--method minterm|bdd]
//   presat_cli reach    <file.bench>|--gen SPEC --target CUBE [--depth N] [--method NAME]
//                                    [--stats json]
//   presat_cli safety   <file.bench>|--gen SPEC --init CUBE --bad CUBE [--depth N]
//                                    [--method NAME]
//                                    [--stats json]
//   presat_cli bmc      <file.bench> --init CUBE --target CUBE [--depth N]
//   presat_cli audit    <file.cnf> | --gen SPEC [--target CUBE]
//
// The SAT-based enumeration commands (allsat, preimage, reach, safety, audit)
// also accept:
//   --jobs N    cube-and-conquer parallel enumeration on N workers
//               (src/parallel/; results are bit-identical for every N >= 1)
//   --split K   split-cube depth (2^K subcubes; default auto)
//   --seed S    CDCL decision seed (Solver::setRandomSeed; reproducible
//               diversification, results unchanged)
//   --project   projected enumeration: chrono stops at existential witnesses
//               and emits cubes natively over the projection scope; the
//               other engines dedup their projected covers (same state set,
//               fewer cubes)
//   --compress  wildcard cube compression ((x & A) | (~x & A) = A) over the
//               final cover and over each parallel shard's cover
// and the resource-budget flags (src/govern/; any of them attaches a
// Governor; a budgeted run that stops early prints the stop reason and exits
// with code 2, its printed cubes being a sound under-approximation):
//   --timeout-ms N      wall-clock deadline
//   --mem-limit-mb N    tracked-byte memory ceiling (clause arena +
//                       solution graph + BDD pool)
//   --conflict-limit N  global CDCL conflict cap
// The deterministic fault-injection hooks (PRESAT_FAULTS builds) arm from
// the PRESAT_FAULT_SITE / PRESAT_FAULT_AFTER / PRESAT_FAULT_SEED environment
// variables at startup.
//
// CUBE is a string over the state bits, LSB (state bit 0) first, using
// '0', '1', and 'x'/'-' for don't-care, e.g. --target 1x0x. Preimage METHOD
// names are those printed by the tool (minterm-blocking, cube-blocking,
// cube-blocking-lifted, success-driven, chrono, bdd, bdd-relational).
//
// `audit` is the enumeration cross-checker: it runs every engine on the same
// instance, validates the per-engine invariants (disjoint minterms, sound
// cubes, well-formed solution graphs), and checks that all engines agree on
// the solution set. Exit 0 = all invariants hold; exit 1 prints each violated
// invariant by name. SPEC is one of counter:N, gray:N, lfsr:N, shift:N,
// arbiter:N, accum:N, traffic, lock.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "allsat/chrono_blocking.hpp"
#include "allsat/cube_blocking.hpp"
#include "allsat/lifting.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/success_driven.hpp"
#include "bdd/bdd.hpp"
#include "check/audit.hpp"
#include "check/audit_bdd.hpp"
#include "check/audit_chrono.hpp"
#include "check/audit_netlist.hpp"
#include "check/audit_solution_graph.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/from_cnf.hpp"
#include "cnf/dimacs.hpp"
#include "gen/generators.hpp"
#include "govern/faults.hpp"
#include "govern/governor.hpp"
#include "parallel/parallel_allsat.hpp"
#include "preimage/bmc.hpp"
#include "preimage/image.hpp"
#include "preimage/reachability.hpp"
#include "preimage/safety.hpp"
#include "sat/solver.hpp"
#include "serve/version.hpp"

using namespace presat;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  presat_cli info     <file.bench>\n"
               "  presat_cli allsat   <file.cnf>   [--method minterm|cube|sd|chrono] [--max N]\n"
               "                                   [--stats json]\n"
               "  presat_cli preimage <file.bench>|--gen SPEC --target CUBE [--method NAME]\n"
               "                                   [--stats json] [--cert FILE] [--drat FILE]\n"
               "                                   [--drat-binary FILE]\n"
               "  presat_cli image    <file.bench> --from CUBE [--method minterm|bdd]\n"
               "  presat_cli reach    <file.bench>|--gen SPEC --target CUBE [--depth N]\n"
               "                                   [--method NAME] [--stats json]\n"
               "  presat_cli safety   <file.bench>|--gen SPEC --init CUBE --bad CUBE\n"
               "                                   [--depth N] [--method NAME] [--stats json]\n"
               "  presat_cli version\n"
               "  presat_cli bmc      <file.bench> --init CUBE --target CUBE [--depth N]\n"
               "  presat_cli audit    <file.cnf> | --gen SPEC [--target CUBE]\n"
               "\nSAT enumeration commands also take --jobs N (parallel cube-and-conquer),\n"
               "--split K (2^K subcubes), --seed S (CDCL decision seed), --project\n"
               "(projected enumeration over the scope), and --compress (wildcard cube\n"
               "compression of the enumerated cover).\n"
               "Budgets: --timeout-ms N, --mem-limit-mb N, --conflict-limit N; a run that\n"
               "stops on a budget prints the reason and exits 2 with a sound partial result.\n"
               "CUBE: one char per state bit (bit 0 first): 0, 1, x/- for don't-care.\n"
               "SPEC: counter:N gray:N lfsr:N shift:N arbiter:N accum:N traffic lock\n");
  std::exit(2);
}

// Parses remaining argv into a flag map; positional args returned separately.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& name, const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  int intFlag(const std::string& name, int fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atoi(it->second.c_str());
  }
  uint64_t u64Flag(const std::string& name, uint64_t fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool boolFlag(const std::string& name) const { return flags.count(name) != 0; }
};

// Valueless switches: presence alone turns the mode on.
bool isBooleanFlag(const std::string& name) { return name == "project" || name == "compress"; }

// Shared --seed/--jobs/--split/--project/--compress handling for the SAT
// enumeration commands.
void applyEngineFlags(const Args& args, AllSatOptions& options) {
  options.randomSeed = args.u64Flag("seed", options.randomSeed);
  options.parallel.jobs = args.intFlag("jobs", options.parallel.jobs);
  options.parallel.splitDepth = args.intFlag("split", options.parallel.splitDepth);
  if (args.boolFlag("project")) options.project = true;
  if (args.boolFlag("compress")) options.compress = true;
}

// Shared --timeout-ms/--mem-limit-mb/--conflict-limit handling: builds the
// Governor for a budgeted command, or null when no budget flag is given so
// unbudgeted runs keep the ungoverned hot path (and bit-identical output).
std::unique_ptr<Governor> makeGovernor(const Args& args) {
  Budget budget;
  budget.deadlineSeconds = static_cast<double>(args.u64Flag("timeout-ms", 0)) / 1000.0;
  budget.memLimitBytes = args.u64Flag("mem-limit-mb", 0) * 1024 * 1024;
  budget.conflictLimit = args.u64Flag("conflict-limit", 0);
  if (budget.unlimited()) return nullptr;
  return std::make_unique<Governor>(budget);
}

// Prints the partial-result notice and maps the outcome onto the documented
// exit codes: 0 = complete, 2 = stopped early with a sound partial result.
int finishOutcome(Outcome outcome) {
  if (outcome == Outcome::kComplete) return 0;
  // stderr, so `--stats json | check_stats_json.py` keeps a clean JSON stream.
  std::fprintf(stderr, "partial result: stopped on %s (sound under-approximation)\n",
               outcomeName(outcome));
  return 2;
}

void writeFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) usage(("cannot write " + path).c_str());
  if (!content.empty() && std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    std::fclose(f);
    usage(("short write to " + path).c_str());
  }
  std::fclose(f);
}

Args parseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      std::string name = a.substr(2);
      if (isBooleanFlag(name)) {
        args.flags[name] = "1";
        continue;
      }
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      args.flags[name] = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

StateSet parseCube(const std::string& text, int numStateBits) {
  if (static_cast<int>(text.size()) != numStateBits) {
    usage(("cube '" + text + "' must have one character per state bit (" +
           std::to_string(numStateBits) + ")")
              .c_str());
  }
  LitVec cube;
  for (int i = 0; i < numStateBits; ++i) {
    char c = text[static_cast<size_t>(i)];
    if (c == '1') {
      cube.push_back(mkLit(static_cast<Var>(i), false));
    } else if (c == '0') {
      cube.push_back(mkLit(static_cast<Var>(i), true));
    } else if (c != 'x' && c != 'X' && c != '-') {
      usage(("bad cube character '" + std::string(1, c) + "'").c_str());
    }
  }
  return StateSet::fromCube(numStateBits, std::move(cube));
}

PreimageMethod parsePreimageMethod(const std::string& name) {
  for (PreimageMethod m : kAllPreimageMethods) {
    if (name == preimageMethodName(m)) return m;
  }
  usage(("unknown preimage method: " + name).c_str());
}

std::string cubeToString(const LitVec& cube, int width) {
  std::string s(static_cast<size_t>(width), 'x');
  for (Lit l : cube) s[static_cast<size_t>(l.var())] = l.sign() ? '0' : '1';
  return s;
}

std::string stateToString(const std::vector<bool>& state) {
  std::string s;
  for (bool b : state) s += b ? '1' : '0';
  return s;
}

Netlist makeGeneratorCircuit(const std::string& spec) {
  std::string name = spec;
  int n = 0;
  if (size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    n = std::atoi(spec.c_str() + colon + 1);
  }
  if (name == "counter") return makeCounter(n);
  if (name == "gray") return makeGrayCounter(n);
  if (name == "lfsr") return makeLfsr(n);
  if (name == "shift") return makeShiftRegister(n);
  if (name == "arbiter") return makeRoundRobinArbiter(n);
  if (name == "accum") return makeAccumulator(n);
  if (name == "traffic") return makeTrafficLight();
  if (name == "lock") return makeCombinationLock({1, 2, 3}, 2);
  usage(("unknown generator spec: " + spec).c_str());
}

// The sequential commands take either a .bench file or a --gen SPEC circuit
// (the latter keeps CI loops free of fixture files).
Netlist loadNetlist(const Args& args) {
  if (!args.flag("gen").empty()) return makeGeneratorCircuit(args.flag("gen"));
  if (args.positional.empty()) usage("missing input file (or --gen SPEC)");
  return parseBenchFile(args.positional[0]);
}

int cmdInfo(const Args& args) {
  Netlist nl = parseBenchFile(args.positional[0]);
  std::printf("nodes: %zu, gates: %zu, inputs: %zu, dffs: %zu, outputs: %zu\n", nl.numNodes(),
              nl.numGates(), nl.inputs().size(), nl.dffs().size(), nl.outputs().size());
  std::vector<int> levels = nl.levels();
  int depth = 0;
  for (int l : levels) depth = std::max(depth, l);
  std::printf("logic depth: %d\n", depth);
  std::printf("state bits (preimage order):");
  for (NodeId d : nl.dffs()) std::printf(" %s", nl.name(d).c_str());
  std::printf("\n");
  return 0;
}

int cmdAllsat(const Args& args) {
  DimacsFile file = parseDimacsFile(args.positional[0]);
  std::vector<Var> projection;
  if (file.projection) {
    projection = *file.projection;
  } else {
    for (Var v = 0; v < file.cnf.numVars(); ++v) projection.push_back(v);
  }
  AllSatOptions options;
  options.maxCubes = static_cast<uint64_t>(args.intFlag("max", 0));
  applyEngineFlags(args, options);
  std::unique_ptr<Governor> governor = makeGovernor(args);
  options.governor = governor.get();
  std::string method = args.flag("method", "sd");

  AllSatResult result;
  if (method == "minterm") {
    result = options.parallel.enabled()
                 ? parallelCnfAllSat(file.cnf, projection, ParallelCnfEngine::kMintermBlocking,
                                     {}, options)
                 : mintermBlockingAllSat(file.cnf, projection, options);
  } else if (method == "cube") {
    const Cnf& cnf = file.cnf;
    if (projection.size() != static_cast<size_t>(cnf.numVars())) {
      usage("--method cube needs a full projection (implicant lifting)");
    }
    ModelLifter lifter = [&cnf](const std::vector<lbool>& m) {
      return shrinkModelToImplicant(cnf, m);
    };
    result = options.parallel.enabled()
                 ? parallelCnfAllSat(file.cnf, projection, ParallelCnfEngine::kCubeBlocking,
                                     lifter, options)
                 : cubeBlockingAllSat(file.cnf, projection, lifter, options);
  } else if (method == "chrono") {
    result = options.parallel.enabled()
                 ? parallelCnfAllSat(file.cnf, projection, ParallelCnfEngine::kChrono, {},
                                     options)
                 : chronoAllSat(file.cnf, projection, options);
  } else if (method == "sd") {
    CnfCircuit circuit = cnfToCircuit(file.cnf);
    CircuitAllSatProblem problem;
    problem.netlist = &circuit.netlist;
    problem.objectives = {{circuit.root, true}};
    for (Var v : projection) problem.projectionSources.push_back(circuit.varNode[static_cast<size_t>(v)]);
    SuccessDrivenResult sd = options.parallel.enabled()
                                 ? parallelSuccessDrivenAllSat(problem, options)
                                 : successDrivenAllSat(problem, options);
    result = std::move(sd.summary);
    std::printf("solution graph: %llu nodes, %llu edges, %llu memo hits\n",
                static_cast<unsigned long long>(result.stats.graphNodes),
                static_cast<unsigned long long>(result.stats.graphEdges),
                static_cast<unsigned long long>(result.stats.memoHits));
  } else {
    usage(("unknown allsat method: " + method).c_str());
  }
  std::printf("%s solutions in %zu cubes%s (%.3f ms)\n", result.mintermCount.toDecimal().c_str(),
              result.cubes.size(), result.complete ? "" : " [truncated]",
              result.stats.seconds * 1e3);
  for (const LitVec& cube : result.cubes) {
    std::printf("  %s\n", cubeToString(cube, static_cast<int>(projection.size())).c_str());
  }
  if (args.flag("stats") == "json") {
    std::printf("%s\n", result.metrics.toJson().c_str());
  }
  return finishOutcome(result.outcome);
}

int cmdPreimage(const Args& args) {
  Netlist nl = loadNetlist(args);
  TransitionSystem system(nl);
  StateSet target = parseCube(args.flag("target"), system.numStateBits());
  PreimageMethod method = parsePreimageMethod(args.flag("method", "success-driven"));
  PreimageOptions options;
  applyEngineFlags(args, options.allsat);
  std::unique_ptr<Governor> governor = makeGovernor(args);
  options.allsat.governor = governor.get();
  std::string certPath = args.flag("cert");
  std::string dratPath = args.flag("drat");
  std::string dratBinaryPath = args.flag("drat-binary");
  options.emitCertificate = !certPath.empty() || !dratPath.empty() || !dratBinaryPath.empty();
  PreimageResult r = computePreimage(system, target, method, options);
  if (!certPath.empty()) writeFileOrDie(certPath, r.certificate);
  if (!dratPath.empty()) writeFileOrDie(dratPath, r.dratText);
  if (!dratBinaryPath.empty()) writeFileOrDie(dratBinaryPath, r.dratBinary);
  std::printf("preimage: %s states in %zu cubes (%s, %.3f ms)\n",
              r.stateCount.toDecimal().c_str(), r.states.cubes.size(), preimageMethodName(method),
              r.seconds * 1e3);
  for (const LitVec& cube : r.states.cubes) {
    std::printf("  %s\n", cubeToString(cube, system.numStateBits()).c_str());
  }
  if (args.flag("stats") == "json") {
    std::printf("%s\n", r.metrics.toJson().c_str());
  }
  return finishOutcome(r.outcome);
}

int cmdImage(const Args& args) {
  Netlist nl = parseBenchFile(args.positional[0]);
  TransitionSystem system(nl);
  StateSet from = parseCube(args.flag("from"), system.numStateBits());
  std::string name = args.flag("method", "bdd");
  ImageMethod method = name == "minterm" ? ImageMethod::kMintermBlocking : ImageMethod::kBdd;
  ImageResult r = computeImage(system, from, method);
  std::printf("image: %s states in %zu cubes (%s, %.3f ms)\n", r.stateCount.toDecimal().c_str(),
              r.states.cubes.size(), imageMethodName(method), r.seconds * 1e3);
  for (const LitVec& cube : r.states.cubes) {
    std::printf("  %s\n", cubeToString(cube, system.numStateBits()).c_str());
  }
  return 0;
}

int cmdReach(const Args& args) {
  Netlist nl = loadNetlist(args);
  TransitionSystem system(nl);
  StateSet target = parseCube(args.flag("target"), system.numStateBits());
  PreimageMethod method = parsePreimageMethod(args.flag("method", "success-driven"));
  int depth = args.intFlag("depth", 1000);
  PreimageOptions options;
  applyEngineFlags(args, options.allsat);
  std::unique_ptr<Governor> governor = makeGovernor(args);
  options.allsat.governor = governor.get();
  ReachabilityResult r = backwardReach(system, target, depth, method, options);
  std::printf("%5s %14s %14s %10s %10s\n", "depth", "new", "total", "pre-ms", "alg-ms");
  for (const ReachabilityStep& step : r.steps) {
    std::printf("%5d %14s %14s %10.3f %10.3f\n", step.depth, step.newStates.toDecimal().c_str(),
                step.totalStates.toDecimal().c_str(), step.seconds * 1e3,
                step.algebraSeconds * 1e3);
  }
  std::printf("fixpoint: %s, reached %s states, total %.3f ms (preimage %.3f, algebra %.3f)\n",
              r.fixpoint ? "yes" : "no", r.reached.countStates().toDecimal().c_str(),
              r.totalSeconds * 1e3, r.preimageSeconds * 1e3, r.algebraSeconds * 1e3);
  if (args.flag("stats") == "json") {
    std::printf("%s\n", r.metrics.toJson().c_str());
  }
  return finishOutcome(r.outcome);
}

int cmdSafety(const Args& args) {
  Netlist nl = loadNetlist(args);
  TransitionSystem system(nl);
  StateSet init = parseCube(args.flag("init"), system.numStateBits());
  StateSet bad = parseCube(args.flag("bad"), system.numStateBits());
  SafetyOptions options;
  options.method = parsePreimageMethod(args.flag("method", "success-driven"));
  options.maxDepth = args.intFlag("depth", options.maxDepth);
  applyEngineFlags(args, options.preimage.allsat);
  std::unique_ptr<Governor> governor = makeGovernor(args);
  options.preimage.allsat.governor = governor.get();
  SafetyResult r = checkSafety(system, init, bad, options);
  std::printf("%s (depth %d, %.3f ms)\n", safetyStatusName(r.status), r.depth, r.seconds * 1e3);
  if (r.outcome != Outcome::kComplete) {
    std::printf("stopped on %s: backward sets are a sound under-approximation\n",
                outcomeName(r.outcome));
  }
  if (r.status == SafetyStatus::kUnsafe) {
    std::printf("counterexample (state / input):\n");
    for (size_t t = 0; t < r.traceStates.size(); ++t) {
      std::printf("  %s", stateToString(r.traceStates[t]).c_str());
      if (t < r.traceInputs.size()) std::printf("  in=%s", stateToString(r.traceInputs[t]).c_str());
      std::printf("\n");
    }
  }
  if (args.flag("stats") == "json") {
    std::printf("%s\n", r.metrics.toJson().c_str());
  }
  // Exit codes: 0 = SAFE, 1 = UNSAFE (a counterexample is a finding, not a
  // failure), 2 = could not decide (depth bound hit) — CI scripts tell the
  // verdicts apart from genuine errors.
  if (r.status == SafetyStatus::kSafe) return 0;
  if (r.status == SafetyStatus::kUnsafe) return 1;
  return 2;
}

int cmdBmc(const Args& args) {
  Netlist nl = parseBenchFile(args.positional[0]);
  TransitionSystem system(nl);
  StateSet init = parseCube(args.flag("init"), system.numStateBits());
  StateSet target = parseCube(args.flag("target"), system.numStateBits());
  int depth = args.intFlag("depth", 20);
  BmcResult r = boundedReachIncremental(system, init, target, depth);
  if (!r.reachable) {
    std::printf("unreachable within %d steps (%llu SAT calls, %.3f ms)\n", depth,
                static_cast<unsigned long long>(r.satCalls), r.seconds * 1e3);
    return 1;
  }
  std::printf("reachable at depth %d (%.3f ms); trace:\n", r.depth, r.seconds * 1e3);
  for (size_t t = 0; t < r.traceStates.size(); ++t) {
    std::printf("  %s", stateToString(r.traceStates[t]).c_str());
    if (t < r.traceInputs.size()) std::printf("  in=%s", stateToString(r.traceInputs[t]).c_str());
    std::printf("\n");
  }
  return 0;
}

// --- audit: enumeration cross-checker ---------------------------------------

struct EngineRun {
  std::string name;
  std::vector<LitVec> cubes;
  BigUint count;
  bool complete = true;
};

// Engine-agreement checks over runs of the same instance: every engine must
// produce the same solution-set union (compared canonically as BDDs in one
// shared manager) and the same exact count as the first run.
void crossCheckRuns(AuditResult& audit, const std::vector<EngineRun>& runs, int width) {
  BddManager mgr(width);
  std::vector<BddRef> unions;
  for (const EngineRun& run : runs) unions.push_back(cubesToBdd(mgr, run.cubes));
  // Reference = the first COMPLETE run. Capped or budget-degraded runs are
  // lower bounds, so instead of equality they are held to the degradation
  // contract: their union must be a subset of the reference set and their
  // count must not exceed the exact one. This is what the fault-injection
  // lane leans on — an injected trip must never let an engine fabricate
  // solutions.
  size_t ref = runs.size();
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].complete) {
      ref = i;
      break;
    }
  }
  for (size_t i = 0; i < runs.size() && ref < runs.size(); ++i) {
    if (i == ref) continue;
    if (!runs[i].complete) {
      if (mgr.bddAnd(unions[i], mgr.bddNot(unions[ref])) != BddManager::kFalse) {
        audit.fail("audit.partial.sound", runs[i].name +
                                              " (partial) enumerated solutions outside the " +
                                              runs[ref].name + " solution set");
      }
      if (runs[i].count > runs[ref].count) {
        audit.fail("audit.partial.bound", runs[i].name + " (partial) counted " +
                                              runs[i].count.toDecimal() + " solutions, above " +
                                              runs[ref].name + "'s exact " +
                                              runs[ref].count.toDecimal());
      }
      continue;
    }
    if (runs[i].count != runs[ref].count) {
      audit.fail("audit.count.agree", runs[i].name + " counted " + runs[i].count.toDecimal() +
                                          " solutions but " + runs[ref].name + " counted " +
                                          runs[ref].count.toDecimal());
    }
    if (!BddManager::equal(unions[i], unions[ref])) {
      audit.fail("audit.union.agree",
                 runs[i].name + " and " + runs[ref].name + " enumerate different solution sets");
    }
  }
  audit.merge(auditBdd(mgr));
}

int finishAudit(const AuditResult& audit, const std::string& what) {
  if (!audit.ok()) {
    std::fprintf(stderr, "audit FAILED on %s:\n%s\n", what.c_str(), audit.toString().c_str());
    return 1;
  }
  std::printf("audit OK: %s\n", what.c_str());
  return 0;
}

// CNF mode: the four CNF-capable engines, plus per-cube SAT soundness.
int cmdAuditCnf(AuditResult& audit, const Args& args) {
  DimacsFile file = parseDimacsFile(args.positional[0]);
  std::vector<Var> projection;
  if (file.projection) {
    projection = *file.projection;
  } else {
    for (Var v = 0; v < file.cnf.numVars(); ++v) projection.push_back(v);
  }
  const bool fullProjection = projection.size() == static_cast<size_t>(file.cnf.numVars());
  const int width = static_cast<int>(projection.size());

  std::vector<EngineRun> runs;
  {
    AllSatResult r = mintermBlockingAllSat(file.cnf, projection, {});
    if (!cubesPairwiseDisjoint(r.cubes)) {
      audit.fail("audit.minterm.disjoint",
                 "minterm-blocking produced overlapping cubes on " + args.positional[0]);
    }
    runs.push_back({"minterm-blocking", std::move(r.cubes), std::move(r.mintermCount), r.complete});
  }
  {
    const Cnf& cnf = file.cnf;
    AllSatOptions options;
    ModelLifter lifter;
    if (fullProjection) {
      lifter = [&cnf](const std::vector<lbool>& m) { return shrinkModelToImplicant(cnf, m); };
    } else {
      options.liftModels = false;  // implicant lifting needs the full scope
    }
    AllSatResult r = cubeBlockingAllSat(cnf, projection, lifter, options);
    runs.push_back({"cube-blocking", std::move(r.cubes), std::move(r.mintermCount), r.complete});
  }
  {
    // Chronological enumeration honors --jobs like the circuit-mode audit, so
    // the shard merge is cross-checked against the serial engines here too.
    AllSatOptions chronoOptions;
    applyEngineFlags(args, chronoOptions);
    AllSatResult r =
        chronoOptions.parallel.enabled()
            ? parallelCnfAllSat(file.cnf, projection, ParallelCnfEngine::kChrono, {},
                                chronoOptions)
            : chronoAllSat(file.cnf, projection, chronoOptions);
    // Proves chrono.disjoint and chrono.cover against the BDD oracle.
    audit.merge(auditChronoCubes(file.cnf, projection, r.cubes, r.complete));
    runs.push_back({"chrono", std::move(r.cubes), std::move(r.mintermCount), r.complete});
  }
  {
    // Projected-native chrono with compression: the same state set through
    // the witness early-stop, projected shrinking, and wildcard merging —
    // audited under the proj.* names and cross-checked below like any other
    // engine (the fault-injection lane rides this run too).
    AllSatOptions projOptions;
    applyEngineFlags(args, projOptions);
    projOptions.project = true;
    projOptions.compress = true;
    AllSatResult r =
        projOptions.parallel.enabled()
            ? parallelCnfAllSat(file.cnf, projection, ParallelCnfEngine::kChrono, {},
                                projOptions)
            : chronoAllSat(file.cnf, projection, projOptions);
    ChronoAuditOptions projAudit;
    projAudit.diagPrefix = "proj";
    audit.merge(auditChronoCubes(file.cnf, projection, r.cubes, r.complete, projAudit));
    runs.push_back(
        {"chrono-projected", std::move(r.cubes), std::move(r.mintermCount), r.complete});
  }
  {
    CnfCircuit circuit = cnfToCircuit(file.cnf);
    audit.merge(auditNetlist(circuit.netlist));
    CircuitAllSatProblem problem;
    problem.netlist = &circuit.netlist;
    problem.objectives = {{circuit.root, true}};
    for (Var v : projection) {
      problem.projectionSources.push_back(circuit.varNode[static_cast<size_t>(v)]);
    }
    SuccessDrivenResult sd = successDrivenAllSat(problem, {});
    SolutionGraphAuditOptions graphOptions;
    graphOptions.problem = &problem;
    audit.merge(auditSolutionGraph(sd.graph, graphOptions));
    runs.push_back({"success-driven", std::move(sd.summary.cubes),
                    std::move(sd.summary.mintermCount), sd.summary.complete});
  }

  // Every enumerated cube must itself be satisfiable in the original CNF
  // (capped per engine; the union check above covers exactness).
  constexpr size_t kMaxCubeChecks = 256;
  for (const EngineRun& run : runs) {
    Solver solver;
    solver.addCnf(file.cnf);
    for (size_t i = 0; i < run.cubes.size() && i < kMaxCubeChecks; ++i) {
      LitVec assumptions;
      for (Lit l : run.cubes[i]) {
        assumptions.push_back(mkLit(projection[static_cast<size_t>(l.var())], l.sign()));
      }
      if (!solver.solve(assumptions).isTrue()) {
        audit.fail("audit.cube.sat", run.name + " cube " + cubeToString(run.cubes[i], width) +
                                         " is unsatisfiable in the original CNF");
      }
    }
  }

  crossCheckRuns(audit, runs, width);
  return finishAudit(audit, args.positional[0] + " (" + std::to_string(runs.size()) + " engines)");
}

// Circuit mode: all seven preimage engines on a generated benchmark, with the
// BDD baselines serving as the semantic oracle for the SAT-based ones.
int cmdAuditCircuit(AuditResult& audit, const Args& args) {
  const std::string spec = args.flag("gen");
  Netlist nl = makeGeneratorCircuit(spec);
  audit.merge(auditNetlist(nl));
  TransitionSystem system(nl);
  const int width = system.numStateBits();

  std::string targetText = args.flag("target");
  if (targetText.empty()) {
    targetText = "1" + std::string(static_cast<size_t>(width > 0 ? width - 1 : 0), 'x');
  }
  StateSet target = parseCube(targetText, width);

  // --jobs routes every SAT engine through the cube-and-conquer path while
  // the BDD baselines stay serial — the cross-check then doubles as a
  // parallel-vs-oracle equivalence test.
  PreimageOptions options;
  applyEngineFlags(args, options.allsat);

  std::vector<EngineRun> runs;
  for (PreimageMethod method : kAllPreimageMethods) {
    // Fresh per-engine governor: each engine gets the full budget, and a
    // one-shot injected fault degrades only the engine it fired in — the
    // others then serve as the oracle for the partial-soundness cross-check.
    std::unique_ptr<Governor> governor = makeGovernor(args);
    options.allsat.governor = governor.get();
    PreimageResult r = computePreimage(system, target, method, options);
    if (method == PreimageMethod::kMintermBlocking && !cubesPairwiseDisjoint(r.states.cubes)) {
      audit.fail("audit.minterm.disjoint",
                 "minterm-blocking produced overlapping preimage cubes on " + spec);
    }
    if (method == PreimageMethod::kChrono && !cubesPairwiseDisjoint(r.states.cubes)) {
      audit.fail("chrono.disjoint",
                 "chrono produced overlapping preimage cubes on " + spec);
    }
    if (method == PreimageMethod::kSuccessDriven) {
      for (const SolutionGraph& graph : r.graphs) {
        SolutionGraphAuditOptions graphOptions;
        graphOptions.numProjectionVars = width;
        audit.merge(auditSolutionGraph(graph, graphOptions));
      }
    }
    runs.push_back({preimageMethodName(method), std::move(r.states.cubes),
                    std::move(r.stateCount), r.complete});
  }
  {
    // Projected-native chrono with wildcard compression, cross-checked
    // against the seven baselines above: a compressed cover must describe
    // exactly the same state set, and must itself stay pairwise disjoint.
    std::unique_ptr<Governor> governor = makeGovernor(args);
    PreimageOptions projOptions = options;
    projOptions.allsat.governor = governor.get();
    projOptions.allsat.project = true;
    projOptions.allsat.compress = true;
    PreimageResult r = computePreimage(system, target, PreimageMethod::kChrono, projOptions);
    if (!cubesPairwiseDisjoint(r.states.cubes)) {
      audit.fail("proj.disjoint",
                 "projected chrono produced overlapping preimage cubes on " + spec);
    }
    runs.push_back(
        {"chrono-projected", std::move(r.states.cubes), std::move(r.stateCount), r.complete});
  }

  crossCheckRuns(audit, runs, width);
  return finishAudit(audit, spec + " target=" + targetText + " (" +
                                std::to_string(runs.size()) + " engines)");
}

int cmdAudit(const Args& args) {
  AuditResult audit;
  if (!args.flag("gen").empty()) return cmdAuditCircuit(audit, args);
  if (args.positional.empty()) usage("audit needs a .cnf file or --gen SPEC");
  return cmdAuditCnf(audit, args);
}

}  // namespace

int main(int argc, char** argv) {
  // No-op unless built with PRESAT_FAULTS and PRESAT_FAULT_SITE is set.
  faults::armFaultsFromEnv();
  if (argc >= 2 && std::strcmp(argv[1], "version") == 0) {
    // Build-info JSON: the same payload presat_serve sends as its handshake
    // banner, so scripts interrogate one source of truth either way.
    std::printf("%s\n", serve::buildInfoJson().c_str());
    return 0;
  }
  if (argc < 3) usage();
  std::string command = argv[1];
  Args args = parseArgs(argc, argv, 2);
  if (command == "audit") return cmdAudit(args);
  const bool genOk = command == "preimage" || command == "reach" || command == "safety";
  if (args.positional.empty() && !(genOk && !args.flag("gen").empty())) {
    usage("missing input file");
  }
  if (command == "info") return cmdInfo(args);
  if (command == "allsat") return cmdAllsat(args);
  if (command == "preimage") return cmdPreimage(args);
  if (command == "image") return cmdImage(args);
  if (command == "reach") return cmdReach(args);
  if (command == "safety") return cmdSafety(args);
  if (command == "bmc") return cmdBmc(args);
  usage(("unknown command: " + command).c_str());
}
