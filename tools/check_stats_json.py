#!/usr/bin/env python3
"""Shape-check the JSON stats block emitted by `presat_cli ... --stats json`.

Reads the CLI's full stdout on stdin (human-readable lines followed by one
JSON object), extracts the JSON, and validates its shape instead of grepping
for a single key:

  * `labels` is an object of string -> string and contains "engine"
    (== --engine when given)
  * `counters` is a non-empty object of string -> non-negative integer and
    contains every --counter KEY
  * `gauges`, when present, is an object of string -> number
  * `histograms`, when present: each entry has integer count/sum/max, a
    numeric mean, and monotone `buckets` of {le, n}

Usage: presat_cli allsat x.cnf --stats json | check_stats_json.py \
           --engine success-driven --counter memo.hits --counter sat.conflicts
Exit status: 0 on a well-shaped block, 1 otherwise (with a reason on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(reason: str) -> "None":
    print(f"check_stats_json.py: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--engine", help="expected labels.engine value")
    parser.add_argument("--counter", action="append", default=[],
                        help="counter key that must be present (repeatable)")
    args = parser.parse_args()

    text = sys.stdin.read()
    start = text.find("\n{")
    if start == -1 and text.startswith("{"):
        start = -1  # JSON-only stdout
    if start == -1 and not text.startswith("{"):
        fail("no JSON object found on stdin")
    payload = text if text.startswith("{") else text[start + 1:]

    try:
        stats = json.loads(payload)
    except json.JSONDecodeError as e:
        fail(f"stats block is not valid JSON: {e}")

    if not isinstance(stats, dict):
        fail("top level is not an object")

    labels = stats.get("labels")
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in labels.items()):
        fail("labels must be an object of string -> string")
    if "engine" not in labels:
        fail("labels.engine is missing")
    if args.engine is not None and labels["engine"] != args.engine:
        fail(f"labels.engine is {labels['engine']!r}, expected {args.engine!r}")

    counters = stats.get("counters")
    if not isinstance(counters, dict) or not counters:
        fail("counters must be a non-empty object")
    for key, value in counters.items():
        if not isinstance(key, str) or not isinstance(value, int) or isinstance(value, bool):
            fail(f"counter {key!r} must map a string to an integer")
        if value < 0:
            fail(f"counter {key!r} is negative ({value})")
    for key in args.counter:
        if key not in counters:
            fail(f"required counter {key!r} is missing")

    gauges = stats.get("gauges", {})
    if not isinstance(gauges, dict) or not all(
            isinstance(k, str) and isinstance(v, (int, float)) and not isinstance(v, bool)
            for k, v in gauges.items()):
        fail("gauges must be an object of string -> number")

    histograms = stats.get("histograms", {})
    if not isinstance(histograms, dict):
        fail("histograms must be an object")
    for name, h in histograms.items():
        if not isinstance(h, dict):
            fail(f"histogram {name!r} must be an object")
        for field in ("count", "sum", "max"):
            if not isinstance(h.get(field), int) or isinstance(h.get(field), bool):
                fail(f"histogram {name!r}.{field} must be an integer")
        if not isinstance(h.get("mean"), (int, float)):
            fail(f"histogram {name!r}.mean must be a number")
        buckets = h.get("buckets")
        if not isinstance(buckets, list):
            fail(f"histogram {name!r}.buckets must be a list")
        last_le = None
        for b in buckets:
            if not isinstance(b, dict) or "le" not in b or "n" not in b:
                fail(f"histogram {name!r} bucket must be {{le, n}}")
            if last_le is not None and b["le"] <= last_le:
                fail(f"histogram {name!r} bucket thresholds must increase")
            last_le = b["le"]

    print(f"check_stats_json.py: OK ({len(counters)} counters, "
          f"{len(gauges)} gauges, {len(histograms)} histograms)")


if __name__ == "__main__":
    main()
