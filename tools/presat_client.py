#!/usr/bin/env python3
"""Reference client + load driver for presat_serve (DESIGN.md "Service layer").

presat_serve speaks newline-delimited JSON over stdin/stdout with client-chosen
request ids and out-of-order responses; this module is both the canonical
client implementation (class ServeClient) and the soak harness the CI serve
lane runs:

  * spawns one daemon and multiplexes N concurrent client threads over its
    single pipe (mixed interactive/batch budget classes);
  * drives a deterministic, seeded workload across the generator suite with a
    guaranteed fraction of repeated (circuit, target) pairs so the cross-query
    cache is actually exercised;
  * validates EVERY response against a BDD oracle computed by a second,
    clean, cache-disabled daemon: complete answers must match the oracle
    exactly (set equality + count), partial answers must be a sound subset;
  * optionally (--compare-cache) replays the same schedule against a
    cache-disabled daemon and reports the median-latency ratio between
    cache-hit answers and their cold equivalents;
  * emits a machine-checkable soak report (tools/check_soak_json.py).

Fault-injection soak: --fault-site/--fault-after/--fault-seed arm the
system-under-test daemon via the PRESAT_FAULT_* environment (PRESAT_FAULTS
builds only); the oracle daemon always runs clean, so a fault-degraded partial
is still validated against the true answer.

Usage (from a build tree):
  python3 tools/presat_client.py --server build/src/presat_serve \\
      --requests 100 --clients 8 --compare-cache --report SOAK.json
Exit status: 0 when the soak is clean, 1 otherwise (reasons on stderr).
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import re
import statistics
import subprocess
import sys
import threading
import time


class ServeClient:
    """One presat_serve process plus the id-multiplexing machinery.

    Thread-safe: any number of threads may call request() concurrently; a
    single reader thread routes response lines to waiters by id. The daemon
    answers out of order, which is the whole point.
    """

    def __init__(self, argv, env=None, banner=True):
        self.proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=env, text=True, bufsize=1)
        self._write_lock = threading.Lock()
        self._route_lock = threading.Lock()
        self._waiters = {}      # id -> [event, response]
        self._seq = itertools.count()
        self.banner = None
        self.bad_lines = []     # responses that were not valid JSON
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()
        if banner:
            self._banner_event = threading.Event()
            if not self._banner_event.wait(timeout=10):
                raise RuntimeError("presat_serve emitted no banner within 10s")

    def _read_loop(self):
        for line in self.proc.stdout:
            line = line.strip()
            if not line:
                continue
            try:
                msg = json.loads(line)
            except json.JSONDecodeError:
                self.bad_lines.append(line)
                continue
            if msg.get("status") == "hello" and "id" not in msg:
                self.banner = msg
                if hasattr(self, "_banner_event"):
                    self._banner_event.set()
                continue
            rid = msg.get("id", "")
            with self._route_lock:
                waiter = self._waiters.pop(rid, None)
            if waiter is not None:
                waiter[1] = msg
                waiter[0].set()

    def request(self, fields, timeout=120.0):
        """Sends one request object, blocks for its response. Returns the
        parsed response dict, or raises on timeout / dead server."""
        req = dict(fields)
        req.setdefault("id", "q%d" % next(self._seq))
        waiter = [threading.Event(), None]
        with self._route_lock:
            self._waiters[req["id"]] = waiter
        with self._write_lock:
            self.proc.stdin.write(json.dumps(req) + "\n")
            self.proc.stdin.flush()
        if not waiter[0].wait(timeout=timeout):
            with self._route_lock:
                self._waiters.pop(req["id"], None)
            raise RuntimeError("timeout waiting for response to %r" % req["id"])
        return waiter[1]

    def close(self):
        """Clean shutdown: drain via the shutdown op, then reap."""
        try:
            self.request({"op": "shutdown"}, timeout=120.0)
        except (RuntimeError, BrokenPipeError, ValueError):
            pass
        try:
            self.proc.stdin.close()
        except (BrokenPipeError, ValueError):
            pass
        return self.proc.wait(timeout=60)


# --- oracle ------------------------------------------------------------------

# Cube text is LSB-first over the state bits; expansion is tractable for the
# soak widths (<= 12 state bits).
MAX_ORACLE_WIDTH = 14


def expand_cubes(cubes):
    """Expands a list of 0/1/x cube strings to the set of covered minterms."""
    out = set()
    for cube in cubes:
        free = [i for i, c in enumerate(cube) if c in "xX-"]
        if len(free) > 20:
            raise ValueError("cube with %d free bits is too wide to expand" % len(free))
        base = list(cube)
        for bits in range(1 << len(free)):
            for j, pos in enumerate(free):
                base[pos] = "1" if (bits >> j) & 1 else "0"
            out.add("".join(base))
    return out


class Oracle:
    """Lazily computes the exact preimage (as a minterm set) per unique
    (spec, target) pair through a clean, cache-disabled daemon's BDD engine."""

    def __init__(self, client):
        self.client = client
        self._lock = threading.Lock()
        self._memo = {}

    def states(self, spec, target):
        key = (spec, target)
        with self._lock:
            if key in self._memo:
                return self._memo[key]
        resp = self.client.request(
            {"op": "preimage", "gen": spec, "target": target, "method": "bdd",
             "cache": False, "class": "batch"})
        if resp.get("status") != "ok" or not resp.get("complete"):
            raise RuntimeError("oracle run failed for %s %s: %s" % (spec, target, resp))
        states = frozenset(expand_cubes(resp["cubes"]))
        if int(resp["count"]) != len(states):
            raise RuntimeError("oracle count mismatch for %s %s" % (spec, target))
        with self._lock:
            self._memo[key] = states
        return states


def check_sound(resp, oracle_states):
    """Returns (ok, reason). Complete answers must equal the oracle exactly;
    partial answers must be a sound subset with an exact count."""
    got = expand_cubes(resp["cubes"])
    if int(resp["count"]) != len(got):
        return False, "count %s != %d expanded minterms" % (resp["count"], len(got))
    if resp.get("complete"):
        if got != oracle_states:
            return False, ("complete answer has %d states, oracle has %d"
                           % (len(got), len(oracle_states)))
    elif not got <= oracle_states:
        return False, "%d states outside the oracle set" % len(got - oracle_states)
    return True, ""


# --- workload ----------------------------------------------------------------

# Widths the client can derive from the spec itself; the remaining generators
# (arbiter/traffic/lock) are probed (see probe_width).
SPEC_WIDTH_RE = re.compile(r"^(counter|gray|lfsr|shift|accum):(\d+)$")
PROBE_WIDTH_RE = re.compile(r"circuit has (\d+) state bits")

LIGHT_METHODS = ["success-driven", "cube-blocking", "cube-blocking-lifted",
                 "chrono", "bdd", "bdd-relational"]

# The heavy pairs anchor the cache-latency comparison: cold minterm
# enumeration over ~2-4k states costs real engine time, a cache hit does not.
HEAVY_PAIRS = [
    ("gray:12", "x" * 12, "minterm-blocking"),
    ("counter:12", "x" * 12, "minterm-blocking"),
    ("gray:11", "x" * 11, "minterm-blocking"),
]


def probe_width(client, spec, widths):
    """State-bit count for `spec`, learned from the daemon itself."""
    if spec in widths:
        return widths[spec]
    m = SPEC_WIDTH_RE.match(spec)
    if m:
        widths[spec] = int(m.group(2))
        return widths[spec]
    resp = client.request({"op": "preimage", "gen": spec, "target": "x",
                           "cache": False})
    if resp.get("status") == "ok":
        width = int(resp["width"])
    else:
        m = PROBE_WIDTH_RE.search(resp.get("error", {}).get("message", ""))
        if not m:
            raise RuntimeError("cannot learn width of %r: %s" % (spec, resp))
        width = int(m.group(1))
    widths[spec] = width
    return width


def random_target(rng, width):
    if rng.random() < 0.3:
        return "x" * width
    return "".join(rng.choice("01xx") for _ in range(width))


def build_schedule(rng, n, client, widths):
    """Deterministic soak schedule: ~40% heavy requests over the (few) heavy
    pairs — guaranteeing the >= 30% repeated-pair floor — and ~60% light
    requests across the full generator suite with mixed engines/budgets."""
    light_specs = ["counter:4", "counter:6", "gray:4", "gray:5", "lfsr:4",
                   "lfsr:5", "shift:4", "shift:5", "accum:3", "accum:4",
                   "arbiter:3", "traffic", "lock"]
    light_pool = []
    for spec in light_specs:
        width = probe_width(client, spec, widths)
        for _ in range(2):
            light_pool.append((spec, random_target(rng, width),
                               rng.choice(LIGHT_METHODS)))
    schedule = []
    for i in range(n):
        if rng.random() < 0.4:
            spec, target, method = HEAVY_PAIRS[rng.randrange(len(HEAVY_PAIRS))]
            req = {"op": "preimage", "gen": spec, "target": target,
                   "method": method, "class": "batch",
                   "timeout_ms": 60000}
        else:
            spec, target, method = light_pool[rng.randrange(len(light_pool))]
            req = {"op": "preimage", "gen": spec, "target": target,
                   "method": method, "class": "interactive",
                   "timeout_ms": 2000}
        req["id"] = "s%04d" % i
        schedule.append(req)
    return schedule


# --- soak --------------------------------------------------------------------

class SoakState:
    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms = []          # (schedule index, ms, cache disposition)
        self.outcomes = {}
        self.cache = {"hit": 0, "miss": 0, "dedup": 0, "off": 0}
        self.protocol_errors = []
        self.unsound = []
        self.overload_retries = 0


# Overload backoff: capped exponential with full jitter. "overloaded" means
# the daemon's admission queue (or memory gate) is full RIGHT NOW — a fixed
# linear pause makes every rejected client retry in lockstep and re-collide;
# doubling the window and sampling uniformly inside it spreads the retry wave.
RETRY_BASE_S = 0.05
RETRY_CAP_S = 1.0
RETRY_LIMIT = 5


def backoff_delay(retry, rng=random):
    """Uniform sample from (0, min(cap, base * 2^retry)]."""
    window = min(RETRY_CAP_S, RETRY_BASE_S * (1 << retry))
    return rng.uniform(window * 0.1, window)


def run_one(client, oracle, req, index, state):
    attempt = dict(req)
    for retry in range(RETRY_LIMIT):
        start = time.monotonic()
        resp = client.request(attempt)
        ms = (time.monotonic() - start) * 1e3
        if resp.get("status") == "error" and resp["error"].get("code") == "overloaded":
            with state.lock:
                state.overload_retries += 1
            time.sleep(backoff_delay(retry))
            attempt = dict(attempt, id=attempt["id"] + ".r%d" % retry)
            continue
        break
    if resp.get("status") != "ok":
        with state.lock:
            state.protocol_errors.append({"request": req["id"], "response": resp})
        return
    oracle_states = oracle.states(req["gen"], req["target"])
    ok, reason = check_sound(resp, oracle_states)
    with state.lock:
        state.latencies_ms.append((index, ms, resp.get("cache", "off")))
        state.outcomes[resp["outcome"]] = state.outcomes.get(resp["outcome"], 0) + 1
        state.cache[resp.get("cache", "off")] = state.cache.get(resp.get("cache", "off"), 0) + 1
        if not ok:
            state.unsound.append({"request": req["id"], "reason": reason})


def run_schedule(client, oracle, schedule, clients):
    state = SoakState()
    queue = list(enumerate(schedule))
    qlock = threading.Lock()

    def worker():
        while True:
            with qlock:
                if not queue:
                    return
                index, req = queue.pop(0)
            try:
                run_one(client, oracle, req, index, state)
            except (RuntimeError, KeyError, ValueError) as e:
                with state.lock:
                    state.protocol_errors.append(
                        {"request": req.get("id", "?"), "response": str(e)})

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return state


def median_or_none(values):
    return statistics.median(values) if values else None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server", required=True, help="path to presat_serve")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=4,
                        help="daemon engine workers (--workers)")
    parser.add_argument("--compare-cache", action="store_true",
                        help="replay the schedule against a cache-disabled "
                             "daemon and report the hit/cold latency ratio")
    parser.add_argument("--fault-site", help="PRESAT_FAULT_SITE for the "
                        "system-under-test daemon (PRESAT_FAULTS builds)")
    parser.add_argument("--fault-after", help="PRESAT_FAULT_AFTER")
    parser.add_argument("--fault-seed", help="PRESAT_FAULT_SEED")
    parser.add_argument("--report", help="write the soak report JSON here")
    args = parser.parse_args()

    sut_env = dict(os.environ)
    for key in ("PRESAT_FAULT_SITE", "PRESAT_FAULT_AFTER", "PRESAT_FAULT_SEED"):
        sut_env.pop(key, None)
    faulted = False
    if args.fault_site:
        sut_env["PRESAT_FAULT_SITE"] = args.fault_site
        faulted = True
        if args.fault_after:
            sut_env["PRESAT_FAULT_AFTER"] = args.fault_after
        if args.fault_seed:
            sut_env["PRESAT_FAULT_SEED"] = args.fault_seed
    clean_env = dict(os.environ)
    for key in ("PRESAT_FAULT_SITE", "PRESAT_FAULT_AFTER", "PRESAT_FAULT_SEED"):
        clean_env.pop(key, None)

    server_argv = [args.server, "--workers", str(args.workers)]
    sut = ServeClient(server_argv, env=sut_env)
    oracle_client = ServeClient([args.server, "--no-cache", "--workers", "2"],
                                env=clean_env)
    oracle = Oracle(oracle_client)

    rng = random.Random(args.seed)
    widths = {}
    schedule = build_schedule(rng, args.requests, oracle_client, widths)
    unique_pairs = len({(r["gen"], r["target"]) for r in schedule})
    repeat_fraction = 1.0 - unique_pairs / len(schedule)

    print("presat_client: soak of %d requests over %d clients (%d unique "
          "circuit/target pairs, repeat fraction %.2f)%s"
          % (len(schedule), args.clients, unique_pairs, repeat_fraction,
             " [faults: %s]" % args.fault_site if faulted else ""))
    t0 = time.monotonic()
    state = run_schedule(sut, oracle, schedule, args.clients)
    soak_seconds = time.monotonic() - t0

    stats_resp = sut.request({"op": "stats"})
    report = {
        "schema": "presat-soak-v1",
        "seed": args.seed,
        "requests": len(schedule),
        "clients": args.clients,
        "unique_pairs": unique_pairs,
        "repeat_fraction": round(repeat_fraction, 4),
        "fault_site": args.fault_site or None,
        "soak_seconds": round(soak_seconds, 3),
        "protocol_errors": len(state.protocol_errors) + len(sut.bad_lines),
        "unsound": len(state.unsound),
        "overload_retries": state.overload_retries,
        "retries": state.overload_retries,
        "outcomes": state.outcomes,
        "cache": state.cache,
        "latency_ms": {
            "median": round(median_or_none([ms for _, ms, _ in state.latencies_ms]) or 0, 3),
            "median_hit": median_or_none(
                [ms for _, ms, d in state.latencies_ms if d == "hit"]),
            "median_miss": median_or_none(
                [ms for _, ms, d in state.latencies_ms if d == "miss"]),
        },
        "server_metrics": stats_resp.get("metrics", {}).get("counters", {}),
    }
    for detail, key in ((state.protocol_errors, "protocol_error_detail"),
                        (state.unsound, "unsound_detail")):
        if detail:
            report[key] = detail[:10]

    failures = []
    if report["protocol_errors"]:
        failures.append("%d protocol errors" % report["protocol_errors"])
    if report["unsound"]:
        failures.append("%d unsound responses" % report["unsound"])

    if args.compare_cache:
        # Replay the identical schedule — same client concurrency, same
        # request order — against a cache-disabled daemon, then compare the
        # positions that HIT in the cached run against their cold equivalents.
        cold = ServeClient([args.server, "--no-cache", "--workers",
                            str(args.workers)], env=clean_env)
        cold_state = run_schedule(cold, oracle, schedule, args.clients)
        cold.close()
        hit_positions = {i for i, _, d in state.latencies_ms if d == "hit"}
        hit_ms = [ms for i, ms, d in state.latencies_ms if d == "hit"]
        cold_ms = [ms for i, ms, _ in cold_state.latencies_ms if i in hit_positions]
        compare = {
            "hits": len(hit_ms),
            "median_hit_ms": round(median_or_none(hit_ms) or 0, 3),
            "median_cold_ms": round(median_or_none(cold_ms) or 0, 3),
        }
        if hit_ms and cold_ms and median_or_none(hit_ms) > 0:
            compare["speedup"] = round(
                median_or_none(cold_ms) / median_or_none(hit_ms), 2)
        report["cache_compare"] = compare
        if cold_state.protocol_errors or cold_state.unsound or cold.bad_lines:
            failures.append("cache-disabled replay was not clean")
        if not hit_ms:
            failures.append("no cache hits to compare")

    code = sut.close()
    oracle_client.close()
    if code != 0:
        failures.append("presat_serve exited %d" % code)
    report["clean"] = not failures

    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("presat_client: FAIL: " + "; ".join(failures), file=sys.stderr)
        sys.exit(1)
    print("presat_client: OK")


if __name__ == "__main__":
    main()
