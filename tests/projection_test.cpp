// Projection-layer tests: the hardened cube primitives (src/allsat/
// projection), the wildcard compression pass (src/allsat/compress), and the
// projected-native chrono enumeration mode — each checked against brute-force
// or reference-implementation oracles.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "allsat/chrono_blocking.hpp"
#include "allsat/compress.hpp"
#include "allsat/projection.hpp"
#include "base/rng.hpp"
#include "check/audit_chrono.hpp"
#include "gen/generators.hpp"
#include "govern/governor.hpp"
#include "preimage/preimage.hpp"
#include "preimage/transition_system.hpp"
#include "sat/dpll.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

// Random well-formed cube over `vars` variables: each variable independently
// absent, positive, or negative. `biasDisjoint` pins variable 0 so the set
// splits into two guaranteed-disjoint halves about half the time — without it
// nearly every random pair overlaps and the disjoint verdict is never fuzzed.
LitVec randomCube(Rng& rng, int vars, bool pinFirst, bool firstSign) {
  LitVec cube;
  for (Var v = 0; v < vars; ++v) {
    if (v == 0 && pinFirst) {
      cube.push_back(mkLit(v, firstSign));
      continue;
    }
    uint64_t roll = rng.range(0, 3);
    if (roll == 1) cube.push_back(mkLit(v, false));
    if (roll == 2) cube.push_back(mkLit(v, true));
  }
  return cube;
}

std::set<uint64_t> unionMinterms(const std::vector<LitVec>& cubes, int vars) {
  std::set<uint64_t> out;
  for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
    for (const LitVec& cube : cubes) {
      if (cubeCoversMinterm(cube, bits)) {
        out.insert(bits);
        break;
      }
    }
  }
  return out;
}

// --- hardened primitives ------------------------------------------------------

TEST(ProjectionDeath, CubeCoversMintermRejectsVarBeyondMintermSpace) {
  // A 64-bit minterm cannot represent variable 64: before the fix the shift
  // 1ull << 64 was UB and returned an arbitrary verdict.
  LitVec cube = {mkLit(static_cast<Var>(64), false)};
  EXPECT_DEATH(cubeCoversMinterm(cube, 0), "outside the 64-bit minterm space");
}

TEST(ProjectionDeath, CountDisjointRejectsOutOfRangeVariable) {
  // Cube mentions variable 3 but the projected space has only 3 variables
  // (0..2): before the hardening the count silently went negative-width.
  std::vector<LitVec> cubes = {{mkLit(3, false)}};
  EXPECT_DEATH(countDisjointCubeMinterms(cubes, 3), "");
}

TEST(ProjectionDeath, CountDisjointRejectsDuplicatedVariable) {
  // x1 & x1 is not a well-formed cube; counting it as width-2 would halve
  // the contribution it actually denotes.
  std::vector<LitVec> cubes = {{mkLit(1, false), mkLit(1, false)}};
  EXPECT_DEATH(countDisjointCubeMinterms(cubes, 3), "");
}

TEST(Projection, CountDisjointAcceptsFullRangeCubes) {
  std::vector<LitVec> cubes = {{mkLit(0, false)}, {mkLit(0, true), mkLit(2, false)}};
  EXPECT_EQ(countDisjointCubeMinterms(cubes, 3).toU64(), 4u + 2u);
}

// Verdict-equality fuzz: the cofactor divide-and-conquer disjointness check
// must agree with the quadratic reference scan on every random cube set,
// including sets engineered to be disjoint.
TEST(ProjectionProperty, DisjointnessCheckMatchesNaiveReference) {
  Rng rng(2024);
  int sawDisjoint = 0;
  int sawOverlap = 0;
  for (int iter = 0; iter < 400; ++iter) {
    int vars = static_cast<int>(rng.range(1, 10));
    size_t count = rng.range(0, 12);
    bool biasDisjoint = rng.flip();
    std::vector<LitVec> cubes;
    for (size_t i = 0; i < count; ++i) {
      cubes.push_back(randomCube(rng, vars, biasDisjoint, rng.flip()));
    }
    bool fast = cubesPairwiseDisjoint(cubes);
    bool naive = cubesPairwiseDisjointNaive(cubes);
    EXPECT_EQ(fast, naive) << "iter " << iter;
    (fast ? sawDisjoint : sawOverlap) += 1;
  }
  // Both verdicts must actually be exercised for the fuzz to mean anything.
  EXPECT_GT(sawDisjoint, 20);
  EXPECT_GT(sawOverlap, 20);
}

// --- wildcard compression -----------------------------------------------------

TEST(Compress, MergesComplementaryPair) {
  // (x0 & x1) | (x0 & ~x1) = x0.
  std::vector<LitVec> cubes = {{mkLit(0, false), mkLit(1, false)},
                               {mkLit(0, false), mkLit(1, true)}};
  CompressStats stats = compressCubes(cubes);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], LitVec{mkLit(0, false)});
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.cubesIn, 2u);
  EXPECT_EQ(stats.cubesOut, 1u);
}

TEST(Compress, CollapsesFullSpaceToEmptyCube) {
  // All 8 minterms over 3 variables merge down to the single empty cube.
  std::vector<LitVec> cubes;
  for (uint64_t bits = 0; bits < 8; ++bits) {
    LitVec cube;
    for (Var v = 0; v < 3; ++v) cube.push_back(mkLit(v, ((bits >> v) & 1) == 0));
    cubes.push_back(cube);
  }
  compressCubes(cubes);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_TRUE(cubes[0].empty());
}

// The compression contract: union preserved exactly, disjointness preserved
// for disjoint inputs, never more cubes out than in, and byte-identical
// output on a repeated run (the parallel determinism contract leans on this).
TEST(CompressProperty, PreservesUnionAndDisjointness) {
  Rng rng(4711);
  for (int iter = 0; iter < 200; ++iter) {
    int vars = static_cast<int>(rng.range(1, 9));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(0, 14)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) projection.push_back(v);
    // Chrono's disjoint cover of a random formula is the natural input
    // distribution: real covers, not arbitrary cube soup.
    AllSatResult r = chronoAllSat(cnf, projection, {});
    ASSERT_TRUE(r.complete);

    std::vector<LitVec> compressed = r.cubes;
    CompressStats stats = compressCubes(compressed);
    EXPECT_LE(compressed.size(), r.cubes.size()) << "iter " << iter;
    EXPECT_EQ(stats.cubesOut, compressed.size()) << "iter " << iter;
    EXPECT_TRUE(cubesPairwiseDisjoint(compressed)) << "iter " << iter;
    EXPECT_EQ(unionMinterms(compressed, vars), unionMinterms(r.cubes, vars))
        << "iter " << iter;
    EXPECT_EQ(countDisjointCubeMinterms(compressed, vars), r.mintermCount) << "iter " << iter;

    std::vector<LitVec> again = r.cubes;
    compressCubes(again);
    EXPECT_EQ(again, compressed) << "iter " << iter;
  }
}

TEST(CompressProperty, DedupDropsDuplicatesAndSubsumedCubes) {
  Rng rng(1299);
  for (int iter = 0; iter < 120; ++iter) {
    int vars = static_cast<int>(rng.range(1, 8));
    std::vector<LitVec> cubes;
    size_t count = rng.range(1, 10);
    for (size_t i = 0; i < count; ++i) {
      cubes.push_back(randomCube(rng, vars, false, false));
    }
    // Salt with guaranteed duplicates and a subsumed copy-with-extra-literal.
    cubes.push_back(cubes[0]);
    LitVec narrowed = cubes[0];
    if (narrowed.size() < static_cast<size_t>(vars)) {
      for (Var v = 0; v < vars; ++v) {
        bool used = false;
        for (Lit l : narrowed) used |= l.var() == v;
        if (!used) {
          narrowed.push_back(mkLit(v, rng.flip()));
          break;
        }
      }
    }
    cubes.push_back(narrowed);

    std::set<uint64_t> before = unionMinterms(cubes, vars);
    CompressStats stats = dedupCubes(cubes);
    EXPECT_EQ(unionMinterms(cubes, vars), before) << "iter " << iter;
    EXPECT_GE(stats.duplicates, 1u) << "iter " << iter;
    // No exact duplicates can survive.
    for (size_t i = 0; i < cubes.size(); ++i) {
      for (size_t j = i + 1; j < cubes.size(); ++j) {
        EXPECT_NE(cubes[i], cubes[j]) << "iter " << iter;
      }
    }
  }
}

TEST(Compress, GovernorTripStopsEarlyButStaysSound) {
  // A zero-byte memory ceiling trips on the first round's table charge; the
  // partially-compressed cover must still denote the same set.
  std::vector<LitVec> cubes;
  for (uint64_t bits = 0; bits < 8; ++bits) {
    LitVec cube;
    for (Var v = 0; v < 3; ++v) cube.push_back(mkLit(v, ((bits >> v) & 1) == 0));
    cubes.push_back(cube);
  }
  Budget budget;
  budget.memLimitBytes = 1;
  Governor governor(budget);
  std::vector<LitVec> governed = cubes;
  compressCubes(governed, &governor);
  EXPECT_TRUE(governor.tripped());
  EXPECT_EQ(unionMinterms(governed, 3), unionMinterms(cubes, 3));
  EXPECT_TRUE(cubesPairwiseDisjoint(governed));
}

// --- projected-native chrono --------------------------------------------------

// The tentpole contract on random CNFs: projected chrono emits disjoint
// cubes covering exactly the brute-force projected solution set, with a
// cover never larger than the plain (lift-after-enumeration) baseline.
TEST(ProjectedChronoProperty, MatchesBruteForceWithSmallerCover) {
  Rng rng(613);
  for (int iter = 0; iter < 150; ++iter) {
    int vars = static_cast<int>(rng.range(2, 9));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 16)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(1, 2)) projection.push_back(v);
    }
    std::set<uint64_t> expected = bruteForceProjectedSolutions(cnf, projection);

    AllSatOptions projOpts;
    projOpts.project = true;
    projOpts.compress = true;
    AllSatResult proj = chronoAllSat(cnf, projection, projOpts);
    ASSERT_TRUE(proj.complete);
    EXPECT_TRUE(cubesPairwiseDisjoint(proj.cubes)) << "iter " << iter;
    EXPECT_EQ(unionMinterms(proj.cubes, static_cast<int>(projection.size())), expected)
        << "iter " << iter;
    EXPECT_EQ(proj.mintermCount.toU64(), expected.size()) << "iter " << iter;

    AllSatResult plain = chronoAllSat(cnf, projection, {});
    ASSERT_TRUE(plain.complete);
    EXPECT_EQ(plain.mintermCount, proj.mintermCount) << "iter " << iter;
    EXPECT_LE(proj.cubes.size(), plain.cubes.size()) << "iter " << iter;

    ChronoAuditOptions auditOptions;
    auditOptions.diagPrefix = "proj";
    AuditResult audit =
        auditChronoCubes(cnf, projection, proj.cubes, proj.complete, auditOptions);
    EXPECT_TRUE(audit.ok()) << "iter " << iter << "\n" << audit.toString();
  }
}

std::vector<std::string> canonicalCubes(const std::vector<LitVec>& cubes, int width) {
  std::vector<std::string> out;
  out.reserve(cubes.size());
  for (const LitVec& cube : cubes) {
    std::string s(static_cast<size_t>(width), 'x');
    for (Lit l : cube) s[static_cast<size_t>(l.var())] = l.sign() ? '0' : '1';
    out.push_back(std::move(s));
  }
  return out;
}

// Generator-suite equivalence: projected+compressed chrono preimages match
// the BDD oracle's state set on every circuit, use no more cubes than the
// plain chrono enumeration, and are bit-identical at jobs=1 vs jobs=8.
TEST(ProjectedChronoPreimage, MatchesBddOracleOnGeneratorSuite) {
  struct Fixture {
    const char* name;
    Netlist nl;
  };
  std::vector<Fixture> suite;
  suite.push_back({"counter:4", makeCounter(4)});
  suite.push_back({"gray:3", makeGrayCounter(3)});
  suite.push_back({"lfsr:4", makeLfsr(4)});
  suite.push_back({"arbiter:3", makeRoundRobinArbiter(3)});
  suite.push_back({"traffic", makeTrafficLight()});
  suite.push_back({"lock", makeCombinationLock({1, 2, 3}, 2)});

  for (const Fixture& fixture : suite) {
    TransitionSystem ts(fixture.nl);
    const int n = ts.numStateBits();
    StateSet target = StateSet::fromCube(n, {mkLit(0)});

    PreimageResult bdd = computePreimage(ts, target, PreimageMethod::kBdd, {});
    PreimageResult plain = computePreimage(ts, target, PreimageMethod::kChrono, {});

    PreimageOptions projOpts;
    projOpts.allsat.project = true;
    projOpts.allsat.compress = true;
    PreimageResult proj = computePreimage(ts, target, PreimageMethod::kChrono, projOpts);

    EXPECT_TRUE(proj.complete) << fixture.name;
    EXPECT_EQ(proj.stateCount, bdd.stateCount) << fixture.name;
    EXPECT_TRUE(cubesPairwiseDisjoint(proj.states.cubes)) << fixture.name;
    EXPECT_TRUE(sameStates(proj.states, bdd.states)) << fixture.name;
    EXPECT_LE(proj.states.cubes.size(), plain.states.cubes.size()) << fixture.name;

    PreimageOptions one = projOpts;
    one.allsat.parallel.jobs = 1;
    PreimageOptions eight = projOpts;
    eight.allsat.parallel.jobs = 8;
    PreimageResult r1 = computePreimage(ts, target, PreimageMethod::kChrono, one);
    PreimageResult r8 = computePreimage(ts, target, PreimageMethod::kChrono, eight);
    EXPECT_EQ(canonicalCubes(r1.states.cubes, n), canonicalCubes(r8.states.cubes, n))
        << fixture.name;
    EXPECT_EQ(r1.stateCount, bdd.stateCount) << fixture.name;
    EXPECT_TRUE(cubesPairwiseDisjoint(r1.states.cubes)) << fixture.name;
    EXPECT_TRUE(sameStates(r1.states, bdd.states)) << fixture.name;
  }
}

TEST(ProjectedChronoDeath, CorruptedCoverFailsProjDisjoint) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection = {0, 1, 2};
  AllSatOptions projOpts;
  projOpts.project = true;
  AllSatResult r = chronoAllSat(cnf, projection, projOpts);
  ChronoAuditOptions auditOptions;
  auditOptions.diagPrefix = "proj";
  ASSERT_TRUE(auditChronoCubes(cnf, projection, r.cubes, r.complete, auditOptions).ok());
  corruptChronoCubesForTest(r.cubes, ChronoCorruption::kDuplicateCube);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(
                   auditChronoCubes(cnf, projection, r.cubes, r.complete, auditOptions)),
               "proj\\.disjoint");
}

}  // namespace
}  // namespace presat
