// ROBDD package tests: canonicity, boolean algebra, quantification,
// composition, counting, enumeration — differentially against truth tables.
#include <gtest/gtest.h>

#include <functional>

#include "base/rng.hpp"
#include "bdd/bdd.hpp"

namespace presat {
namespace {

// Evaluates a BDD under an assignment (bit i of `bits` = var i).
bool evalBdd(const BddManager& mgr, BddRef f, uint64_t bits) {
  BddManager& m = const_cast<BddManager&>(mgr);
  while (!m.isConstant(f)) {
    f = ((bits >> m.topVar(f)) & 1) ? m.high(f) : m.low(f);
  }
  return f == BddManager::kTrue;
}

TEST(Bdd, Terminals) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.constant(true), BddManager::kTrue);
  EXPECT_EQ(mgr.constant(false), BddManager::kFalse);
  EXPECT_TRUE(mgr.isConstant(BddManager::kTrue));
}

TEST(Bdd, VariableAndLiteral) {
  BddManager mgr(3);
  BddRef x = mgr.variable(1);
  EXPECT_EQ(mgr.topVar(x), 1);
  EXPECT_EQ(mgr.low(x), BddManager::kFalse);
  EXPECT_EQ(mgr.high(x), BddManager::kTrue);
  BddRef nx = mgr.literal(1, false);
  EXPECT_EQ(nx, mgr.bddNot(x));
}

TEST(Bdd, HashConsingCanonicity) {
  BddManager mgr(4);
  BddRef a = mgr.variable(0);
  BddRef b = mgr.variable(1);
  // (a & b) built two different ways must be the same node.
  BddRef ab1 = mgr.bddAnd(a, b);
  BddRef ab2 = mgr.bddNot(mgr.bddOr(mgr.bddNot(a), mgr.bddNot(b)));
  EXPECT_EQ(ab1, ab2);
  // Double negation is the identity.
  EXPECT_EQ(mgr.bddNot(mgr.bddNot(ab1)), ab1);
  // XOR of equal operands is false.
  EXPECT_EQ(mgr.bddXor(ab1, ab2), BddManager::kFalse);
}

TEST(Bdd, CubeConstruction) {
  BddManager mgr(4);
  BddRef c = mgr.cube({mkLit(0), ~mkLit(2)});
  EXPECT_EQ(mgr.satCount(c).toU64(), 4u);  // 2 free vars
  EXPECT_TRUE(evalBdd(mgr, c, 0b0001));
  EXPECT_FALSE(evalBdd(mgr, c, 0b0101));
  EXPECT_FALSE(evalBdd(mgr, c, 0b0000));
  EXPECT_EQ(mgr.cube({}), BddManager::kTrue);
}

TEST(Bdd, RestrictCofactor) {
  BddManager mgr(3);
  BddRef f = mgr.bddXor(mgr.variable(0), mgr.variable(1));
  EXPECT_EQ(mgr.restrict1(f, 0, false), mgr.variable(1));
  EXPECT_EQ(mgr.restrict1(f, 0, true), mgr.bddNot(mgr.variable(1)));
  EXPECT_EQ(mgr.restrict1(f, 2, true), f);  // var not in support
}

TEST(Bdd, ExistsForall) {
  BddManager mgr(3);
  BddRef a = mgr.variable(0);
  BddRef b = mgr.variable(1);
  BddRef f = mgr.bddAnd(a, b);
  EXPECT_EQ(mgr.exists(f, {0}), b);
  EXPECT_EQ(mgr.forall(f, {0}), BddManager::kFalse);
  BddRef g = mgr.bddOr(a, b);
  EXPECT_EQ(mgr.forall(g, {0}), b);
  EXPECT_EQ(mgr.exists(g, {0, 1}), BddManager::kTrue);
}

TEST(Bdd, SupportComputation) {
  BddManager mgr(5);
  BddRef f = mgr.bddAnd(mgr.variable(1), mgr.bddXor(mgr.variable(3), mgr.variable(4)));
  EXPECT_EQ(mgr.support(f), (std::vector<Var>{1, 3, 4}));
  EXPECT_TRUE(mgr.support(BddManager::kTrue).empty());
}

TEST(Bdd, SatCountMatchesTruthTable) {
  Rng rng(41);
  const int vars = 6;
  BddManager mgr(vars);
  for (int iter = 0; iter < 60; ++iter) {
    // Random function as OR of random cubes.
    BddRef f = BddManager::kFalse;
    int terms = static_cast<int>(rng.range(1, 5));
    for (int t = 0; t < terms; ++t) {
      LitVec cube;
      for (Var v = 0; v < vars; ++v) {
        if (rng.chance(1, 2)) cube.push_back(mkLit(v, rng.flip()));
      }
      f = mgr.bddOr(f, mgr.cube(cube));
    }
    uint64_t expected = 0;
    for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
      if (evalBdd(mgr, f, bits)) ++expected;
    }
    EXPECT_EQ(mgr.satCount(f).toU64(), expected) << "iter " << iter;
  }
}

TEST(Bdd, EnumerateCubesCoversExactlyTheOnSet) {
  Rng rng(43);
  const int vars = 5;
  BddManager mgr(vars);
  for (int iter = 0; iter < 40; ++iter) {
    BddRef f = BddManager::kFalse;
    for (int t = 0; t < 3; ++t) {
      LitVec cube;
      for (Var v = 0; v < vars; ++v) {
        if (rng.chance(2, 3)) cube.push_back(mkLit(v, rng.flip()));
      }
      f = mgr.bddOr(f, mgr.cube(cube));
    }
    std::vector<LitVec> cubes = mgr.enumerateCubes(f);
    // Rebuild and compare: must be the identical BDD.
    BddRef rebuilt = BddManager::kFalse;
    for (const LitVec& c : cubes) rebuilt = mgr.bddOr(rebuilt, mgr.cube(c));
    EXPECT_EQ(rebuilt, f);
    // Path cubes of a BDD are disjoint by construction.
    for (size_t i = 0; i < cubes.size(); ++i) {
      for (size_t j = i + 1; j < cubes.size(); ++j) {
        bool clash = false;
        for (Lit x : cubes[i]) {
          for (Lit y : cubes[j]) clash = clash || (x.var() == y.var() && x.sign() != y.sign());
        }
        EXPECT_TRUE(clash);
      }
    }
  }
}

TEST(Bdd, ComposeVectorSubstitutes) {
  BddManager mgr(4);
  BddRef a = mgr.variable(0);
  BddRef b = mgr.variable(1);
  BddRef c = mgr.variable(2);
  BddRef f = mgr.bddXor(a, b);  // f(a,b) = a ^ b
  // Substitute a <- b & c, b <- identity.
  std::vector<BddRef> subst(4, BddManager::kNoSubstitution);
  subst[0] = mgr.bddAnd(b, c);
  BddRef g = mgr.composeVector(f, subst);
  // g = (b & c) ^ b = b & ~c.
  EXPECT_EQ(g, mgr.bddAnd(b, mgr.bddNot(c)));
}

TEST(Bdd, IteMatchesTruthTableRandomly) {
  Rng rng(47);
  const int vars = 4;
  BddManager mgr(vars);
  std::vector<BddRef> pool;
  for (Var v = 0; v < vars; ++v) pool.push_back(mgr.variable(v));
  pool.push_back(BddManager::kTrue);
  pool.push_back(BddManager::kFalse);
  for (int iter = 0; iter < 200; ++iter) {
    BddRef f = pool[rng.below(pool.size())];
    BddRef g = pool[rng.below(pool.size())];
    BddRef h = pool[rng.below(pool.size())];
    BddRef r = mgr.ite(f, g, h);
    pool.push_back(r);
    for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
      bool expected = evalBdd(mgr, f, bits) ? evalBdd(mgr, g, bits) : evalBdd(mgr, h, bits);
      ASSERT_EQ(evalBdd(mgr, r, bits), expected);
    }
  }
}

TEST(Bdd, DagSizeAndDot) {
  BddManager mgr(3);
  BddRef f = mgr.bddXor(mgr.variable(0), mgr.bddXor(mgr.variable(1), mgr.variable(2)));
  EXPECT_EQ(mgr.dagSize(f), 3u + 2u + 2u);  // xor chain: 3 levels of 1,2,2 + terminals... structural
  std::string dot = mgr.toDot(f, "parity");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
}

// Property: andExists(f, g, V) == exists(f & g, V), on random functions.
TEST(BddProperty, AndExistsMatchesComposition) {
  Rng rng(59);
  const int vars = 6;
  BddManager mgr(vars);
  auto randomFn = [&]() {
    BddRef f = BddManager::kFalse;
    for (int t = 0; t < 3; ++t) {
      LitVec cube;
      for (Var v = 0; v < vars; ++v) {
        if (rng.chance(1, 2)) cube.push_back(mkLit(v, rng.flip()));
      }
      f = mgr.bddOr(f, mgr.cube(cube));
    }
    return f;
  };
  for (int iter = 0; iter < 80; ++iter) {
    BddRef f = randomFn();
    BddRef g = randomFn();
    std::vector<Var> quantified;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(1, 3)) quantified.push_back(v);
    }
    EXPECT_EQ(mgr.andExists(f, g, quantified), mgr.exists(mgr.bddAnd(f, g), quantified))
        << "iter " << iter;
  }
}

// Property: exists really is disjunction of cofactors, on random functions.
TEST(BddProperty, ExistsEqualsCofactorDisjunction) {
  Rng rng(53);
  const int vars = 5;
  BddManager mgr(vars);
  for (int iter = 0; iter < 60; ++iter) {
    BddRef f = BddManager::kFalse;
    for (int t = 0; t < 3; ++t) {
      LitVec cube;
      for (Var v = 0; v < vars; ++v) {
        if (rng.chance(1, 2)) cube.push_back(mkLit(v, rng.flip()));
      }
      f = mgr.bddOr(f, mgr.cube(cube));
    }
    Var q = static_cast<Var>(rng.below(vars));
    BddRef viaQuant = mgr.exists(f, {q});
    BddRef viaCof = mgr.bddOr(mgr.restrict1(f, q, false), mgr.restrict1(f, q, true));
    EXPECT_EQ(viaQuant, viaCof);
  }
}

}  // namespace
}  // namespace presat
