// Forward image / forward reachability tests, differentially against
// explicit transition enumeration and against the preimage engines (Galois
// connection: s' ∈ Img(F) iff Pre({s'}) ∩ F ≠ ∅).
#include <gtest/gtest.h>

#include <set>

#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/image.hpp"
#include "preimage/preimage.hpp"

namespace presat {
namespace {

std::set<uint64_t> bruteForceImage(const TransitionSystem& ts, const StateSet& from) {
  int n = ts.numStateBits();
  int m = ts.numInputs();
  EXPECT_LE(n + m, 18);
  std::set<uint64_t> result;
  for (uint64_t s = 0; s < (1ull << n); ++s) {
    std::vector<bool> state(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    if (!from.contains(state)) continue;
    for (uint64_t x = 0; x < (1ull << m); ++x) {
      std::vector<bool> inputs(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) inputs[static_cast<size_t>(i)] = (x >> i) & 1;
      std::vector<bool> next = ts.step(state, inputs);
      uint64_t t = 0;
      for (int i = 0; i < n; ++i) {
        if (next[static_cast<size_t>(i)]) t |= 1ull << i;
      }
      result.insert(t);
    }
  }
  return result;
}

std::set<uint64_t> toMinterms(const StateSet& set) {
  std::set<uint64_t> result;
  for (uint64_t s = 0; s < (1ull << set.numStateBits); ++s) {
    std::vector<bool> state(static_cast<size_t>(set.numStateBits));
    for (int i = 0; i < set.numStateBits; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    if (set.contains(state)) result.insert(s);
  }
  return result;
}

TEST(Image, CounterStepsForward) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  StateSet from = StateSet::fromMinterm(4, 6);
  for (ImageMethod method : kAllImageMethods) {
    ImageResult r = computeImage(ts, from, method);
    EXPECT_EQ(toMinterms(r.states), (std::set<uint64_t>{6, 7})) << imageMethodName(method);
    EXPECT_EQ(r.stateCount.toU64(), 2u);
  }
}

TEST(Image, EmptyFromGivesEmptyImage) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  for (ImageMethod method : kAllImageMethods) {
    ImageResult r = computeImage(ts, StateSet::none(3), method);
    EXPECT_TRUE(r.states.empty()) << imageMethodName(method);
  }
}

TEST(Image, AccumulatorCoversEverythingFromAnyState) {
  // With a free addend input, one accumulator step reaches every state.
  Netlist nl = makeAccumulator(4);
  TransitionSystem ts(nl);
  ImageResult r = computeImage(ts, StateSet::fromMinterm(4, 9), ImageMethod::kBdd);
  EXPECT_EQ(r.stateCount.toU64(), 16u);
}

class ImageFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ImageFuzz, AllMethodsMatchBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 409 + 31);
  for (int iter = 0; iter < 8; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = static_cast<int>(rng.range(1, 3));
    params.numDffs = static_cast<int>(rng.range(2, 5));
    params.numGates = static_cast<int>(rng.range(10, 35));
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);
    LitVec cube;
    for (int i = 0; i < ts.numStateBits(); ++i) {
      if (rng.chance(1, 2)) cube.push_back(mkLit(static_cast<Var>(i), rng.flip()));
    }
    StateSet from = StateSet::fromCube(ts.numStateBits(), cube);
    std::set<uint64_t> expected = bruteForceImage(ts, from);
    for (ImageMethod method : kAllImageMethods) {
      ImageResult r = computeImage(ts, from, method);
      ASSERT_TRUE(r.complete);
      ASSERT_EQ(toMinterms(r.states), expected)
          << imageMethodName(method) << " group " << GetParam() << " iter " << iter;
      EXPECT_EQ(r.stateCount.toU64(), expected.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageFuzz, ::testing::Range(0, 6));

// Galois connection between image and preimage: t ∈ Img(F) iff F ∩ Pre({t}) ≠ ∅.
TEST(Image, GaloisConnectionWithPreimage) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  Rng rng(139);
  for (int trial = 0; trial < 8; ++trial) {
    StateSet from = StateSet::fromMinterm(3, rng.below(8));
    ImageResult img = computeImage(ts, from, ImageMethod::kMintermBlocking);
    for (uint64_t t = 0; t < 8; ++t) {
      StateSet single = StateSet::fromMinterm(3, t);
      PreimageResult pre = computePreimage(ts, single, PreimageMethod::kSuccessDriven);
      bool inImage = img.states.contains(
          {(t & 1) != 0, (t & 2) != 0, (t & 4) != 0});
      BddManager mgr(3);
      bool preMeetsFrom =
          mgr.bddAnd(pre.states.toBdd(mgr), from.toBdd(mgr)) != BddManager::kFalse;
      EXPECT_EQ(inImage, preMeetsFrom) << "trial " << trial << " state " << t;
    }
  }
}

TEST(ForwardReach, CounterFromZeroWithEnable) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  ForwardReachResult r = forwardReach(ts, StateSet::fromMinterm(3, 0), 20, ImageMethod::kBdd);
  EXPECT_TRUE(r.fixpoint);
  EXPECT_EQ(toMinterms(r.reached).size(), 8u);  // counter cycles through all
}

TEST(ForwardReach, LockedCombinationLockReachesOpen) {
  Netlist nl = makeCombinationLock({1, 2, 3}, 2);
  TransitionSystem ts(nl);
  int n = ts.numStateBits();
  ForwardReachResult r =
      forwardReach(ts, StateSet::fromMinterm(n, 0), 10, ImageMethod::kMintermBlocking);
  EXPECT_TRUE(r.fixpoint);
  std::vector<bool> open(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) open[static_cast<size_t>(i)] = (3 >> i) & 1;
  EXPECT_TRUE(r.reached.contains(open));
}

TEST(ForwardReach, MatchesExplicitBfsOnS27) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  ForwardReachResult fwd =
      forwardReach(ts, StateSet::fromMinterm(3, 0), 20, ImageMethod::kMintermBlocking);
  EXPECT_TRUE(fwd.fixpoint);

  // Explicit BFS over the concrete state graph.
  std::set<uint64_t> explicitReach{0};
  std::set<uint64_t> frontier{0};
  while (!frontier.empty()) {
    std::set<uint64_t> next;
    for (uint64_t s : frontier) {
      std::vector<bool> state{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
      for (uint64_t x = 0; x < 16; ++x) {
        std::vector<bool> inputs{(x & 1) != 0, (x & 2) != 0, (x & 4) != 0, (x & 8) != 0};
        std::vector<bool> nxt = ts.step(state, inputs);
        uint64_t t = (nxt[0] ? 1u : 0u) | (nxt[1] ? 2u : 0u) | (nxt[2] ? 4u : 0u);
        if (explicitReach.insert(t).second) next.insert(t);
      }
    }
    frontier = std::move(next);
  }
  EXPECT_EQ(toMinterms(fwd.reached), explicitReach);
}

}  // namespace
}  // namespace presat
