// SolutionGraph tests: counting, measure, enumeration, BDD conversion, and
// sharing behaviour on hand-built DAGs.
#include <gtest/gtest.h>

#include "allsat/solution_graph.hpp"
#include "bdd/bdd.hpp"

namespace presat {
namespace {

// Graph with a single decision on projection var 0: both branches succeed.
SolutionGraph bothBranchesSucceed() {
  SolutionGraph g;
  SolutionGraph::Node n;
  n.decisionId = 0;
  n.branch[0] = {SolutionGraph::kSuccess, {mkLit(0)}};
  n.branch[1] = {SolutionGraph::kSuccess, {~mkLit(0)}};
  g.setRoot(g.addNode(n), {});
  return g;
}

TEST(SolutionGraph, EmptyFailGraph) {
  SolutionGraph g;
  g.setRoot(SolutionGraph::kFail, {});
  EXPECT_EQ(g.countPaths(), BigUint(0));
  EXPECT_TRUE(g.enumerateCubes().empty());
  EXPECT_TRUE(g.pathMeasure().isZero());
  BddManager mgr(2);
  EXPECT_EQ(g.toBdd(mgr), BddManager::kFalse);
}

TEST(SolutionGraph, TrivialSuccess) {
  SolutionGraph g;
  g.setRoot(SolutionGraph::kSuccess, {mkLit(1)});
  EXPECT_EQ(g.countPaths(), BigUint(1));
  auto cubes = g.enumerateCubes();
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], LitVec{mkLit(1)});
  BddManager mgr(3);
  EXPECT_EQ(mgr.satCount(g.toBdd(mgr)).toU64(), 4u);  // 1 fixed of 3 vars
  EXPECT_EQ(g.pathMeasure(), Dyadic::half(1));
}

TEST(SolutionGraph, TwoBranchFullCover) {
  SolutionGraph g = bothBranchesSucceed();
  EXPECT_EQ(g.countPaths(), BigUint(2));
  EXPECT_EQ(g.numLiveEdges(), 3u);  // root edge + 2 branches
  EXPECT_EQ(g.numStoredLiterals(), 2u);
  EXPECT_EQ(g.pathMeasure(), Dyadic::one());
  BddManager mgr(1);
  EXPECT_EQ(g.toBdd(mgr), BddManager::kTrue);
  auto cubes = g.enumerateCubes();
  ASSERT_EQ(cubes.size(), 2u);
}

TEST(SolutionGraph, SharedChildCountsTwice) {
  SolutionGraph g;
  // Child: decision on var 1, only the positive branch succeeds.
  SolutionGraph::Node child;
  child.decisionId = 1;
  child.branch[0] = {SolutionGraph::kSuccess, {mkLit(1)}};
  child.branch[1] = {SolutionGraph::kFail, {}};
  int c = g.addNode(child);
  // Parent decision on var 0; both branches share the child (success-driven
  // learning hit).
  SolutionGraph::Node parent;
  parent.decisionId = 0;
  parent.branch[0] = {c, {mkLit(0)}};
  parent.branch[1] = {c, {~mkLit(0)}};
  g.setRoot(g.addNode(parent), {});

  EXPECT_EQ(g.countPaths(), BigUint(2));
  EXPECT_EQ(g.numNodes(), 2u);  // sharing: child stored once
  auto cubes = g.enumerateCubes();
  ASSERT_EQ(cubes.size(), 2u);
  // Union = (x0 & x1) | (~x0 & x1) = x1.
  BddManager mgr(2);
  EXPECT_EQ(g.toBdd(mgr), mgr.variable(1));
  EXPECT_EQ(mgr.satCount(g.toBdd(mgr)).toU64(), 2u);
  // Measure: 2 paths, each fixing 2 of 2 vars -> 2 * 1/4 = 1/2.
  EXPECT_EQ(g.pathMeasure(), Dyadic::half(1));
}

TEST(SolutionGraph, OverlappingPathsMeasureExceedsUnion) {
  SolutionGraph g;
  // Decision on a NON-projection quantity: both branches yield the SAME
  // projected cube {p0}.
  SolutionGraph::Node n;
  n.decisionId = 42;
  n.branch[0] = {SolutionGraph::kSuccess, {mkLit(0)}};
  n.branch[1] = {SolutionGraph::kSuccess, {mkLit(0)}};
  g.setRoot(g.addNode(n), {});
  EXPECT_EQ(g.countPaths(), BigUint(2));
  BddManager mgr(1);
  // Union is just p0: 1 minterm out of 2.
  EXPECT_EQ(mgr.satCount(g.toBdd(mgr)).toU64(), 1u);
  // Measure counts multiplicity: 2 * 1/2 = 1 > true density 1/2.
  EXPECT_EQ(g.pathMeasure(), Dyadic::one());
}

TEST(SolutionGraph, EnumerationLimit) {
  SolutionGraph g = bothBranchesSucceed();
  auto cubes = g.enumerateCubes(1);
  EXPECT_EQ(cubes.size(), 1u);
}

TEST(SolutionGraph, RootLitsPrefixAllCubes) {
  SolutionGraph g;
  SolutionGraph::Node n;
  n.decisionId = 2;
  n.branch[0] = {SolutionGraph::kSuccess, {mkLit(2)}};
  n.branch[1] = {SolutionGraph::kSuccess, {~mkLit(2)}};
  g.setRoot(g.addNode(n), {mkLit(0), ~mkLit(1)});
  for (const LitVec& cube : g.enumerateCubes()) {
    ASSERT_GE(cube.size(), 3u);
    EXPECT_EQ(cube[0], mkLit(0));
    EXPECT_EQ(cube[1], ~mkLit(1));
  }
}

TEST(SolutionGraph, DotExportMentionsNodes) {
  SolutionGraph g = bothBranchesSucceed();
  std::string dot = g.toDot();
  EXPECT_NE(dot.find("SUCCESS"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
}

}  // namespace
}  // namespace presat
