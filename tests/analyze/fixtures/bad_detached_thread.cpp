// Fixture: a detached thread — outlives every join barrier, so it can touch
// shard slots after run() returned. Expect (lint.py): detached-thread.
// presat_analyze also reports raw-thread for the construction site.
#include <thread>

namespace presat {

void fireAndForget() {
  std::thread worker([] {});  // raw-thread
  worker.detach();            // detached-thread (lint tier)
}

}  // namespace presat
