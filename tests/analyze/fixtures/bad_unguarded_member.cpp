// Fixture: a class that owns a presat::Mutex but leaves a member without
// GUARDED_BY or a waiver. Expect: sync-unguarded-member.
#include <cstddef>
#include <deque>

#include "base/sync.hpp"
#include "base/thread_annotations.hpp"

namespace presat {

class LeakyQueue {
 public:
  void push(size_t task) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    tasks_.push_back(task);
    pushes_++;
  }

 private:
  Mutex mutex_;
  std::deque<size_t> tasks_ GUARDED_BY(mutex_);
  size_t pushes_ = 0;  // BAD: no GUARDED_BY, no waiver
};

}  // namespace presat
