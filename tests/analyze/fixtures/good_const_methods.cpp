// Fixture: a mutex-owning class whose const METHODS are declared
// out-of-line (`size_t entries() const;` — the serve-layer shape). The
// `) const` qualifier tail is a function declarator, not a data member named
// `const`; immutable config members carry lockfree waivers. Expect: clean
// under both lint.py and presat_analyze.
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "base/sync.hpp"
#include "base/thread_annotations.hpp"

namespace presat {

class GuardedTable {
 public:
  explicit GuardedTable(uint64_t maxBytes);

  void insert(uint64_t key, uint64_t value) EXCLUDES(mu_);

  uint64_t bytes() const EXCLUDES(mu_);
  size_t entries() const;
  bool empty() const noexcept;

 private:
  // presat-analyze: lockfree(immutable after construction)
  const uint64_t maxBytes_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, uint64_t> table_ GUARDED_BY(mu_);
};

GuardedTable::GuardedTable(uint64_t maxBytes) : maxBytes_(maxBytes) {}

void GuardedTable::insert(uint64_t key, uint64_t value) {
  MutexLock lock(mu_);
  if (table_.size() * sizeof(uint64_t) * 2 < maxBytes_) table_[key] = value;
}

uint64_t GuardedTable::bytes() const {
  MutexLock lock(mu_);
  return table_.size() * sizeof(uint64_t) * 2;
}

size_t GuardedTable::entries() const {
  MutexLock lock(mu_);
  return table_.size();
}

bool GuardedTable::empty() const noexcept { return entries() == 0; }

}  // namespace presat
