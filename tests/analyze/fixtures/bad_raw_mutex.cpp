// Fixture: a raw std::mutex member instead of the CAPABILITY-annotated
// presat::Mutex. Expect: sync-raw-mutex, and — because the class still owns
// a mutex — sync-unguarded-member for the member the mutex protects.
#include <mutex>
#include <vector>

namespace presat {

class HiddenLock {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.push_back(v);
  }

 private:
  std::mutex mutex_;  // BAD: invisible to clang thread-safety analysis
  std::vector<int> values_;
};

}  // namespace presat
