// Fixture: a std::atomic member with neither GUARDED_BY nor a lockfree
// waiver documenting its protocol. Expect: sync-unwaived-atomic.
#include <atomic>
#include <cstdint>

namespace presat {

class SilentCounter {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> hits_{0};  // BAD: undocumented lock-free protocol
};

}  // namespace presat
