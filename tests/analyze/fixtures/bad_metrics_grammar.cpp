// Fixture: metrics key literals violating the dotted-name grammar
// [a-z][a-z0-9_]*(.[a-z0-9_]+)*. Expect: metrics-key-grammar (three sites).
#include "base/metrics.hpp"

namespace presat {

void fillBadKeys(Metrics& metrics) {
  metrics.inc("PreCubes");          // BAD: uppercase
  metrics.setGauge("time-seconds", 1.0);  // BAD: dash, not dot
  metrics.inc("pre..cubes");        // BAD: empty segment
}

}  // namespace presat
