// Fixture: the arena free() pattern WITHOUT its waivers. The analyzer
// cannot distinguish declaring a member named free from calling libc free,
// so both the declaration and the out-of-line definition must fire
// raw-alloc — pinning that good_arena_free.cpp stays clean because of its
// per-line waivers, not because the rule went soft on declarations.
// Expect: raw-alloc x2 from presat_analyze, clean under lint.py.
#include <cstdint>

namespace presat {

class UnwaivedArena {
 public:
  uint32_t alloc(uint32_t words) { return top_ += words; }

  void free(uint32_t ref);

 private:
  uint32_t top_ = 0;
  uint32_t wasted_ = 0;
};

void UnwaivedArena::free(uint32_t ref) { wasted_ += ref; }

}  // namespace presat
