// Fixture: every waiver form the analyzer accepts — trailing comment,
// standalone comment line, and a multi-line comment block above the
// declaration. Expect: clean under both lint.py and presat_analyze.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>

namespace presat {

class WaivedFlags {
 public:
  void trip() { tripped_.store(true, std::memory_order_release); }
  bool tripped() const { return tripped_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> tripped_{false};  // presat-analyze: lockfree(release store published by one writer, acquire load by readers)

  // presat-analyze: lockfree(relaxed monotonic counter; readers only ever
  // see it after the join barrier, so no ordering is required)
  std::atomic<uint64_t> polls_{0};
};

// presat-analyze: raw-alloc(fixture exercising the waiver path for an
// allocation the governor deliberately does not charge)
void* waivedScratch(std::size_t bytes) { return std::malloc(bytes); }

void waivedSpawn() {
  // presat-analyze: raw-thread(fixture exercising the waiver path)
  std::thread t([] {});
  t.join();
}

}  // namespace presat
