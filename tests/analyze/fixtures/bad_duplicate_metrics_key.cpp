// Fixture: the same key+kind registered twice in one straight-line block
// (the second clobbers the first), plus one key used under two kinds.
// Expect: metrics-duplicate-key, metrics-kind-collision.
#include "base/metrics.hpp"

namespace presat {

void fillStats(Metrics& metrics, int cubes, double seconds) {
  metrics.setCounter("pre.cubes", cubes);
  metrics.setGauge("time.seconds", seconds);
  metrics.setCounter("pre.cubes", cubes + 1);  // BAD: clobbers line above
}

void fillMore(Metrics& metrics, double cubes) {
  metrics.setGauge("pre.cubes", cubes);  // BAD: "pre.cubes" is a counter above
}

}  // namespace presat
