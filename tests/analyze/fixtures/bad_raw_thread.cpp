// Fixture: std::thread constructed outside the WorkerPool. Expect:
// raw-thread.
#include <thread>

namespace presat {

void fireAndJoin() {
  std::thread worker([] {});  // BAD: not behind the pool's join barrier
  worker.join();
}

}  // namespace presat
