// Fixture: the arena-allocator waiver pattern from src/sat/clause_arena —
// a class whose OWN member is named free(). The declaration and the
// out-of-line definition each carry a per-line raw-alloc waiver (the real
// arena documents why: dead-bit marking inside a governor-charged buffer,
// no libc call). Member-call sites (`arena.free(r)`) never fire the rule
// because the identifier is preceded by `.`/`->`. Expect: clean under both
// tools — pins down that the arena's waivers are per-line, not a blanket
// exemption of the rule.
#include <cstdint>

namespace presat {

class FixtureArena {
 public:
  uint32_t alloc(uint32_t words) { return top_ += words; }

  // presat-analyze: raw-alloc(fixture mirror of ClauseArena::free — marks a
  // span dead inside the charged word buffer, not a libc deallocation)
  void free(uint32_t ref);

 private:
  uint32_t top_ = 0;
  uint32_t wasted_ = 0;
};

// presat-analyze: raw-alloc(out-of-line definition of the member above)
void FixtureArena::free(uint32_t ref) { wasted_ += ref; }

void sweep(FixtureArena& arena, uint32_t ref) {
  arena.free(ref);  // member call: `.` prefix, never a raw-alloc finding
}

}  // namespace presat
