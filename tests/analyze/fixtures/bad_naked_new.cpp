// Fixture: raw new/delete and malloc outside the governor-charged
// allocation paths. Expect: raw-alloc (three sites).
#include <cstdlib>

namespace presat {

struct Node {
  int value = 0;
  Node* next = nullptr;
};

Node* makeNode(int v) {
  Node* n = new Node;  // BAD: invisible to the MemoryLedger
  n->value = v;
  return n;
}

void freeNode(Node* n) {
  delete n;  // BAD
}

void* scratch(std::size_t bytes) {
  return std::malloc(bytes);  // BAD
}

}  // namespace presat
