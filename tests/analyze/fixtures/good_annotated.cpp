// Fixture: the approved shapes — annotated presat::Mutex with every member
// GUARDED_BY, metrics keys on-grammar and kind-consistent. Expect: clean
// under both lint.py and presat_analyze.
#include <cstddef>
#include <deque>

#include "base/metrics.hpp"
#include "base/sync.hpp"
#include "base/thread_annotations.hpp"

namespace presat {

class GuardedQueue {
 public:
  void push(size_t task) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    tasks_.push_back(task);
    pushes_++;
  }

  size_t pushes() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return pushes_;
  }

 private:
  Mutex mutex_;
  std::deque<size_t> tasks_ GUARDED_BY(mutex_);
  size_t pushes_ GUARDED_BY(mutex_) = 0;
};

void fillGoodKeys(Metrics& metrics, size_t cubes, double seconds) {
  metrics.setCounter("fixture.cubes", cubes);
  metrics.setGauge("fixture.time.seconds", seconds);
  metrics.setLabel("fixture.engine", "good");
}

}  // namespace presat
