#!/usr/bin/env python3
"""Fixture tests for the static-analysis stack (tools/lint.py and
tools/presat_analyze.py).

Each fixture under tests/analyze/fixtures/ is a deliberately-bad (bad_*.cpp)
or deliberately-clean (good_*.cpp) translation unit. The test asserts, per
fixture, exactly which rule ids each tool reports — so a rule that silently
stops firing fails here before a real regression can slip past the CI
analyze lane. Both tools run in --format json; the shared
presat-analysis-v1 schema is validated on every invocation.

Run directly (python3 tests/analyze_test.py) or via ctest (analyze_fixtures).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analyze" / "fixtures"
LINT = REPO_ROOT / "tools" / "lint.py"
ANALYZE = REPO_ROOT / "tools" / "presat_analyze.py"

# fixture -> set of rule ids presat_analyze must report (exactly).
ANALYZE_EXPECT = {
    "bad_unguarded_member.cpp": {"sync-unguarded-member"},
    "bad_unwaived_atomic.cpp": {"sync-unwaived-atomic"},
    # a raw mutex still makes its class a mutex-owning class, so the member
    # it protects is reported unguarded as well
    "bad_raw_mutex.cpp": {"sync-raw-mutex", "sync-unguarded-member"},
    "bad_naked_new.cpp": {"raw-alloc"},
    # declaring a member named free() is indistinguishable from calling libc
    # free at token level — it must fire unless per-line waived, which is
    # exactly how src/sat/clause_arena earns its pass
    "bad_arena_free.cpp": {"raw-alloc"},
    "good_arena_free.cpp": set(),
    "bad_duplicate_metrics_key.cpp": {"metrics-duplicate-key",
                                      "metrics-kind-collision"},
    "bad_metrics_grammar.cpp": {"metrics-key-grammar"},
    "bad_raw_thread.cpp": {"raw-thread"},
    "bad_detached_thread.cpp": {"raw-thread"},
    "good_annotated.cpp": set(),
    "good_waivers.cpp": set(),
    "good_const_methods.cpp": set(),
}

# fixture -> set of rule ids lint.py must report (exactly).
LINT_EXPECT = {
    "bad_unguarded_member.cpp": set(),
    "bad_unwaived_atomic.cpp": set(),
    "bad_raw_mutex.cpp": set(),
    "bad_naked_new.cpp": set(),
    "bad_arena_free.cpp": set(),
    "good_arena_free.cpp": set(),
    "bad_duplicate_metrics_key.cpp": set(),
    "bad_metrics_grammar.cpp": set(),
    "bad_raw_thread.cpp": set(),
    "bad_detached_thread.cpp": {"detached-thread"},
    "good_annotated.cpp": set(),
    "good_waivers.cpp": set(),
    "good_const_methods.cpp": set(),
}

# Per-rule finding counts presat_analyze must hit where a fixture plants a
# known number of sites.
ANALYZE_COUNTS = {
    ("bad_naked_new.cpp", "raw-alloc"): 3,
    ("bad_arena_free.cpp", "raw-alloc"): 2,
    ("bad_metrics_grammar.cpp", "metrics-key-grammar"): 3,
}

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(f"FAIL: {msg}")


def run_tool(argv: list[str], expect_findings: bool) -> dict | None:
    proc = subprocess.run([sys.executable, *argv], capture_output=True,
                          text=True, cwd=REPO_ROOT)
    if proc.returncode not in (0, 1):
        fail(f"{argv}: exit {proc.returncode}\n{proc.stderr}")
        return None
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        fail(f"{argv}: output is not JSON:\n{proc.stdout[:500]}")
        return None
    for field in ("tool", "schema", "files", "findings"):
        if field not in report:
            fail(f"{argv}: report missing field {field!r}")
            return None
    if report["schema"] != "presat-analysis-v1":
        fail(f"{argv}: unexpected schema {report['schema']!r}")
    for f in report["findings"]:
        for field in ("rule", "file", "line", "message"):
            if field not in f:
                fail(f"{argv}: finding missing field {field!r}: {f}")
    want_exit = 1 if expect_findings else 0
    if proc.returncode != want_exit:
        fail(f"{argv}: exit {proc.returncode}, want {want_exit} "
             f"({len(report['findings'])} findings)")
    return report


def check_fixture(name: str) -> None:
    path = FIXTURES / name
    if not path.is_file():
        fail(f"missing fixture {name}")
        return

    expect = ANALYZE_EXPECT[name]
    report = run_tool([str(ANALYZE), "--files", str(path), "--format", "json"],
                      expect_findings=bool(expect))
    if report is not None:
        got = {f["rule"] for f in report["findings"]}
        if got != expect:
            fail(f"presat_analyze({name}): rules {sorted(got)}, "
                 f"want {sorted(expect)}")
        for (fname, rule), want_n in ANALYZE_COUNTS.items():
            if fname == name:
                n = sum(1 for f in report["findings"] if f["rule"] == rule)
                if n != want_n:
                    fail(f"presat_analyze({name}): {n} {rule} findings, "
                         f"want {want_n}")

    expect = LINT_EXPECT[name]
    report = run_tool([str(LINT), "--format", "json", str(path)],
                      expect_findings=bool(expect))
    if report is not None:
        got = {f["rule"] for f in report["findings"]}
        if got != expect:
            fail(f"lint({name}): rules {sorted(got)}, want {sorted(expect)}")


def check_fixture_walk_skip() -> None:
    """lint.py must NOT trip over the fixtures when walking tests/ — the
    intentionally-bad inputs are exempt from directory scans."""
    report = run_tool([str(LINT), "--format", "json", "tests"],
                      expect_findings=False)
    if report is not None:
        fixture_hits = [f for f in report["findings"]
                        if f["file"].startswith("tests/analyze/fixtures/")]
        if fixture_hits:
            fail(f"lint(tests/) walked into fixtures: {fixture_hits}")


def main() -> int:
    on_disk = {p.name for p in FIXTURES.glob("*.cpp")}
    expected = set(ANALYZE_EXPECT)
    if on_disk != expected:
        fail(f"fixture set drift: on disk {sorted(on_disk ^ expected)} "
             "not matched by expectations")
    for name in sorted(ANALYZE_EXPECT):
        check_fixture(name)
    check_fixture_walk_skip()
    if failures:
        print(f"\nanalyze_test: {len(failures)} failure(s)")
        return 1
    print(f"analyze_test: {len(ANALYZE_EXPECT)} fixtures x 2 tools OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
