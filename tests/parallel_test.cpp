// Cube-and-conquer parallel enumeration tests (src/parallel/): the split
// plan partitions the projected space, the pool runs every task exactly
// once, and — the load-bearing contract — the merged result is bit-identical
// for every worker count and semantically equal to the serial engines.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "allsat/success_driven.hpp"
#include "bdd/bdd.hpp"
#include "gen/generators.hpp"
#include "parallel/cube_splitter.hpp"
#include "parallel/merge.hpp"
#include "parallel/parallel_allsat.hpp"
#include "parallel/worker_pool.hpp"
#include "preimage/preimage.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"

namespace presat {
namespace {

// --- worker pool --------------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.numThreads(), 4);
  std::vector<std::atomic<int>> hits(101);
  pool.run(hits.size(), [&hits](size_t task, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.stats().tasksRun, hits.size());
}

TEST(WorkerPool, ClampsThreadCountAndRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.numThreads(), 1);
  int sum = 0;
  // workers == 1 runs on the calling thread, so unsynchronized state is fine.
  pool.run(10, [&sum](size_t task, int) { sum += static_cast<int>(task); });
  EXPECT_EQ(sum, 45);
  EXPECT_EQ(pool.stats().steals, 0u);
}

TEST(StealQueue, OwnerPopsFrontThiefStealsBack) {
  StealQueue q;
  q.push(1);
  q.push(2);
  q.push(3);
  size_t task = 0, depth = 0;
  ASSERT_TRUE(q.popOwn(task, depth));
  EXPECT_EQ(task, 1u);  // owner drains FIFO from the front
  EXPECT_EQ(depth, 3u); // depth includes the popped task
  ASSERT_TRUE(q.steal(task));
  EXPECT_EQ(task, 3u);  // thief takes the back (largest remaining chunk)
  ASSERT_TRUE(q.popOwn(task, depth));
  EXPECT_EQ(task, 2u);
  EXPECT_EQ(depth, 1u);
  EXPECT_FALSE(q.popOwn(task, depth));
  EXPECT_EQ(depth, 0u); // depth is reported even on a miss
  EXPECT_FALSE(q.steal(task));
}

TEST(StealQueue, DrainReportsAbandonedTasks) {
  StealQueue q;
  q.push(7);
  q.push(8);
  EXPECT_EQ(q.drain(), 2u);
  EXPECT_EQ(q.drain(), 0u);
  size_t task = 0, depth = 0;
  EXPECT_FALSE(q.popOwn(task, depth));
}

TEST(WorkerPool, ExportsMetrics) {
  WorkerPool pool(2);
  pool.run(8, [](size_t, int) {});
  Metrics m;
  pool.exportMetrics(m);
  EXPECT_EQ(m.counter("parallel.jobs"), 2u);
  EXPECT_EQ(m.counter("parallel.tasks"), 8u);
  ASSERT_NE(m.findHistogram("parallel.task_us"), nullptr);
  EXPECT_EQ(m.findHistogram("parallel.task_us")->count(), 8u);
}

// --- splitter -----------------------------------------------------------------

TEST(CubeSplitter, GuideCubesPartitionTheSpace) {
  std::vector<Var> splitVars = {0, 2, 3};
  std::vector<LitVec> cubes = enumerateGuideCubes(splitVars);
  ASSERT_EQ(cubes.size(), 8u);
  // Over a 4-variable projected space, every minterm lands in exactly one
  // guiding cube — disjointness and coverage in one sweep.
  for (uint64_t minterm = 0; minterm < 16; ++minterm) {
    int covers = 0;
    for (const LitVec& cube : cubes) {
      if (cubeCoversMinterm(cube, minterm)) ++covers;
    }
    EXPECT_EQ(covers, 1) << "minterm " << minterm;
  }
}

TEST(CubeSplitter, ResolvesAndClampsDepth) {
  EXPECT_EQ(resolveSplitDepth(-1, 100), ParallelOptions::kDefaultSplitDepth);
  EXPECT_EQ(resolveSplitDepth(-1, 2), 2);
  EXPECT_EQ(resolveSplitDepth(6, 3), 3);
  EXPECT_EQ(resolveSplitDepth(0, 8), 0);
}

TEST(CubeSplitter, CircuitPlanIsDeterministic) {
  Netlist nl = makeGrayCounter(3);
  TransitionSystem ts(nl);
  CircuitAllSatProblem problem;
  problem.netlist = &nl;
  problem.projectionSources = ts.stateNodes();
  problem.objectives = {{ts.nextStateRoot(0), true}};
  SplitPlan a = planCircuitSplit(problem, -1);
  SplitPlan b = planCircuitSplit(problem, -1);
  EXPECT_EQ(a.splitVars, b.splitVars);
  EXPECT_EQ(a.cubes, b.cubes);
  // Auto depth clamps to the 3-bit projection: 8 subcubes.
  EXPECT_EQ(a.splitVars.size(), 3u);
  EXPECT_EQ(a.cubes.size(), 8u);
}

// --- end-to-end determinism and equivalence -----------------------------------

std::vector<std::string> canonicalCubes(const std::vector<LitVec>& cubes, int width) {
  std::vector<std::string> out;
  out.reserve(cubes.size());
  for (const LitVec& cube : cubes) {
    std::string s(static_cast<size_t>(width), 'x');
    for (Lit l : cube) s[static_cast<size_t>(l.var())] = l.sign() ? '0' : '1';
    out.push_back(std::move(s));
  }
  return out;
}

// The determinism contract: --jobs N is bit-identical for every N >= 1, and
// semantically equal to the serial engine, across the generator suite.
TEST(ParallelPreimage, ResultIndependentOfWorkerCount) {
  struct Fixture {
    const char* name;
    Netlist nl;
  };
  std::vector<Fixture> suite;
  suite.push_back({"counter:4", makeCounter(4)});
  suite.push_back({"gray:3", makeGrayCounter(3)});
  suite.push_back({"lfsr:4", makeLfsr(4)});
  suite.push_back({"arbiter:3", makeRoundRobinArbiter(3)});
  suite.push_back({"traffic", makeTrafficLight()});
  suite.push_back({"lock", makeCombinationLock({1, 2, 3}, 2)});

  const PreimageMethod methods[] = {PreimageMethod::kSuccessDriven,
                                    PreimageMethod::kMintermBlocking,
                                    PreimageMethod::kCubeBlocking,
                                    PreimageMethod::kCubeBlockingLifted};
  for (const Fixture& fixture : suite) {
    TransitionSystem ts(fixture.nl);
    const int n = ts.numStateBits();
    StateSet target = StateSet::fromCube(n, {mkLit(0)});
    for (PreimageMethod method : methods) {
      PreimageOptions serial;
      PreimageOptions one;
      one.allsat.parallel.jobs = 1;
      PreimageOptions eight;
      eight.allsat.parallel.jobs = 8;

      PreimageResult rs = computePreimage(ts, target, method, serial);
      PreimageResult r1 = computePreimage(ts, target, method, one);
      PreimageResult r8 = computePreimage(ts, target, method, eight);

      // jobs=1 vs jobs=8: bit-identical cube lists and counts.
      EXPECT_EQ(canonicalCubes(r1.states.cubes, n), canonicalCubes(r8.states.cubes, n))
          << fixture.name << " " << preimageMethodName(method);
      EXPECT_EQ(r1.stateCount, r8.stateCount)
          << fixture.name << " " << preimageMethodName(method);
      EXPECT_EQ(r1.complete, r8.complete);

      // parallel vs serial: same solution set and exact count.
      EXPECT_TRUE(sameStates(r1.states, rs.states))
          << fixture.name << " " << preimageMethodName(method);
      EXPECT_EQ(r1.stateCount, rs.stateCount)
          << fixture.name << " " << preimageMethodName(method);
    }
  }
}

TEST(ParallelSuccessDriven, MergedGraphMatchesSerialSemantics) {
  Netlist nl = makeLfsr(4);
  TransitionSystem ts(nl);
  CircuitAllSatProblem problem;
  problem.netlist = &nl;
  problem.projectionSources = ts.stateNodes();
  problem.objectives = {{ts.nextStateRoot(0), true}};

  AllSatOptions options;
  options.parallel.jobs = 3;
  SuccessDrivenResult par = parallelSuccessDrivenAllSat(problem, options);
  SuccessDrivenResult ser = successDrivenAllSat(problem, {});

  BddManager mgr(4);
  EXPECT_TRUE(BddManager::equal(par.graph.toBdd(mgr), ser.graph.toBdd(mgr)));
  EXPECT_EQ(par.summary.mintermCount, ser.summary.mintermCount);
  EXPECT_EQ(par.summary.cubes.size(), par.graph.countPaths().toU64());

  // The parallel engine reports its pool alongside the engine stats.
  EXPECT_EQ(par.summary.metrics.label("engine"), "success-driven");
  EXPECT_EQ(par.summary.metrics.counter("parallel.shards"),
            par.summary.metrics.counter("parallel.tasks"));
  EXPECT_GT(par.summary.metrics.counter("parallel.shards"), 1u);
}

TEST(ParallelCnf, GlobalMaxCubesCapHolds) {
  // 3 free variables, no constraints: 8 solutions. Each shard respects the
  // cap locally, so only the post-merge trim enforces the global cap.
  Cnf cnf;
  for (int i = 0; i < 3; ++i) cnf.newVar();
  std::vector<Var> projection = {0, 1, 2};
  AllSatOptions options;
  options.maxCubes = 3;
  options.parallel.jobs = 2;
  AllSatResult r = parallelCnfAllSat(cnf, projection, ParallelCnfEngine::kMintermBlocking, {},
                                     options);
  EXPECT_LE(r.cubes.size(), 3u);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.mintermCount, countCubeUnionMinterms(r.cubes, 3));
}

TEST(ParallelOptionsStruct, SerialByDefault) {
  ParallelOptions options;
  EXPECT_FALSE(options.enabled());
  options.jobs = 1;
  EXPECT_TRUE(options.enabled());
}

// Seeded runs must not change the answer, only the decision stream.
TEST(ParallelPreimage, RandomSeedDoesNotChangeTheAnswer) {
  Netlist nl = makeGrayCounter(4);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromCube(4, {mkLit(0), ~mkLit(2)});
  PreimageOptions base;
  PreimageOptions seeded;
  seeded.allsat.randomSeed = 12345;
  for (PreimageMethod method :
       {PreimageMethod::kMintermBlocking, PreimageMethod::kCubeBlockingLifted}) {
    PreimageResult a = computePreimage(ts, target, method, base);
    PreimageResult b = computePreimage(ts, target, method, seeded);
    EXPECT_TRUE(sameStates(a.states, b.states)) << preimageMethodName(method);
    EXPECT_EQ(a.stateCount, b.stateCount) << preimageMethodName(method);
  }
}

}  // namespace
}  // namespace presat
