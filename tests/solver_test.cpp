// CDCL solver tests: unit behaviour, assumptions, incrementality, and
// large-scale differential fuzzing against the reference DPLL solver.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "check/audit_solver.hpp"
#include "cnf/cnf.hpp"
#include "cnf/dimacs.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_TRUE(s.solve().isTrue());
}

TEST(Solver, SingleUnit) {
  Solver s;
  Var v = s.newVar();
  s.addClause({mkLit(v)});
  ASSERT_TRUE(s.solve().isTrue());
  EXPECT_TRUE(s.modelValue(v));
}

TEST(Solver, ContradictoryUnitsAreUnsat) {
  Solver s;
  Var v = s.newVar();
  EXPECT_TRUE(s.addClause({mkLit(v)}));
  EXPECT_FALSE(s.addClause({~mkLit(v)}));
  EXPECT_FALSE(s.okay());
  EXPECT_TRUE(s.solve().isFalse());
}

TEST(Solver, SimpleImplicationChain) {
  Solver s;
  const int n = 50;
  for (int i = 0; i < n; ++i) s.newVar();
  s.addClause({mkLit(0)});
  for (int i = 0; i + 1 < n; ++i) s.addClause({~mkLit(i), mkLit(i + 1)});
  ASSERT_TRUE(s.solve().isTrue());
  for (int i = 0; i < n; ++i) EXPECT_TRUE(s.modelValue(static_cast<Var>(i)));
}

TEST(Solver, TautologyIsIgnored) {
  Solver s;
  Var v = s.newVar();
  s.newVar();
  EXPECT_TRUE(s.addClause({mkLit(v), ~mkLit(v)}));
  EXPECT_TRUE(s.solve().isTrue());
}

TEST(Solver, PigeonholeUnsat) {
  for (int holes : {2, 3, 4, 5}) {
    Solver s;
    Cnf php = testutil::pigeonhole(holes);
    s.addCnf(php);
    EXPECT_TRUE(s.solve().isFalse()) << "PHP(" << holes + 1 << "," << holes << ")";
  }
}

TEST(Solver, PigeonholeExactFitSat) {
  // n pigeons in n holes is satisfiable; encode by dropping one pigeon.
  int holes = 4;
  Cnf php = testutil::pigeonhole(holes);
  // Remove pigeon 0's clauses by forcing it out of every hole is wrong; build
  // a fresh exact-fit instance instead.
  Cnf cnf(holes * holes);
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < holes; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(mkLit(var(p, h)));
    cnf.addClause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < holes; ++p) {
      for (int q = p + 1; q < holes; ++q) cnf.addBinary(~mkLit(var(p, h)), ~mkLit(var(q, h)));
    }
  }
  Solver s;
  s.addCnf(cnf);
  ASSERT_TRUE(s.solve().isTrue());
  (void)php;
}

TEST(Solver, ModelSatisfiesFormula) {
  Rng rng(23);
  for (int iter = 0; iter < 100; ++iter) {
    Cnf cnf = testutil::randomCnf(rng, 20, 60);
    Solver s;
    if (!s.addCnf(cnf)) continue;
    if (!s.solve().isTrue()) continue;
    std::vector<bool> model(static_cast<size_t>(cnf.numVars()));
    for (Var v = 0; v < cnf.numVars(); ++v) model[static_cast<size_t>(v)] = s.modelValue(v);
    EXPECT_TRUE(cnf.evaluate(model)) << "iter " << iter;
  }
}

TEST(Solver, AssumptionsBasic) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  s.addClause({~mkLit(a), mkLit(b)});
  ASSERT_TRUE(s.solve({mkLit(a)}).isTrue());
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
  ASSERT_TRUE(s.solve({mkLit(a), ~mkLit(b)}).isFalse());
  // The solver must stay reusable after an assumption failure.
  ASSERT_TRUE(s.solve({~mkLit(a)}).isTrue());
  EXPECT_FALSE(s.modelValue(a));
}

TEST(Solver, ConflictCoreContainsCulprit) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  Var c = s.newVar();
  s.addClause({~mkLit(a), ~mkLit(b)});
  lbool r = s.solve({mkLit(c), mkLit(a), mkLit(b)});
  ASSERT_TRUE(r.isFalse());
  // The core is a subset of the assumptions sufficient for UNSAT; c is
  // irrelevant, so the core must be within {a, b}.
  for (Lit l : s.conflictCore()) {
    EXPECT_TRUE(l.var() == a || l.var() == b) << toString(l);
  }
  EXPECT_FALSE(s.conflictCore().empty());
}

TEST(Solver, IncrementalAddAfterSolve) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  s.addClause({mkLit(a), mkLit(b)});
  ASSERT_TRUE(s.solve().isTrue());
  // Block both variables' current values repeatedly: enumerates all 3 models.
  int models = 0;
  Solver s2;
  s2.newVar();
  s2.newVar();
  s2.addClause({mkLit(0), mkLit(1)});
  while (s2.solve().isTrue()) {
    ++models;
    LitVec block;
    for (Var v : {Var(0), Var(1)}) block.push_back(mkLit(v, s2.modelValue(v)));
    if (!s2.addClause(block)) break;
    ASSERT_LE(models, 3);
  }
  EXPECT_EQ(models, 3);
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  Solver s;
  Cnf php = testutil::pigeonhole(7);  // hard enough to exceed a tiny budget
  s.addCnf(php);
  s.setConflictBudget(5);
  EXPECT_TRUE(s.solve().isUndef());
  // Removing the budget solves it.
  s.setConflictBudget(0);
  EXPECT_TRUE(s.solve().isFalse());
}

TEST(Solver, PolarityHintIsRespectedOnFreeVariables) {
  Solver s;
  Var v = s.newVar();
  s.setPolarity(v, true);
  ASSERT_TRUE(s.solve().isTrue());
  EXPECT_TRUE(s.modelValue(v));
  Solver s2;
  Var w = s2.newVar();
  s2.setPolarity(w, false);
  ASSERT_TRUE(s2.solve().isTrue());
  EXPECT_FALSE(s2.modelValue(w));
}

TEST(Solver, NonDecisionVarStaysUnassignedWhenIrrelevant) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  s.addClause({mkLit(a)});
  s.setDecisionVar(b, false);
  ASSERT_TRUE(s.solve().isTrue());
  EXPECT_TRUE(s.model()[static_cast<size_t>(b)].isUndef());
}

// modelValue() must refuse to fabricate a value: reading before any model
// exists, or reading an entry the search never assigned, is a caller bug.
TEST(SolverDeathTest, ModelValueBeforeSolveAborts) {
  Solver s;
  Var v = s.newVar();
  EXPECT_DEATH((void)s.modelValue(v), "without a model");
}

TEST(SolverDeathTest, ModelValueOnUnassignedEntryAborts) {
  Solver s;
  Var a = s.newVar();
  Var b = s.newVar();
  s.addClause({mkLit(a)});
  s.setDecisionVar(b, false);
  ASSERT_TRUE(s.solve().isTrue());
  EXPECT_DEATH((void)s.modelValue(b), "unassigned model entry");
}

// The central correctness test: the CDCL solver and the reference DPLL agree
// on SAT/UNSAT across thousands of random instances around the phase
// transition.
class SolverFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolverFuzz, AgreesWithDpll) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  for (int iter = 0; iter < 300; ++iter) {
    int vars = static_cast<int>(rng.range(1, 14));
    int clauses = static_cast<int>(rng.range(1, vars * 5));
    Cnf cnf = testutil::randomCnf(rng, vars, clauses);
    bool expected = dpllIsSat(cnf);
    Solver s;
    bool loaded = s.addCnf(cnf);
    bool actual = loaded && s.solve().isTrue();
    {
      // Deep structural audit of the solver state after every solve.
      AuditResult audit = auditSolver(s);
      ASSERT_TRUE(audit.ok()) << audit.toString();
    }
    ASSERT_EQ(actual, expected) << "seed-group " << GetParam() << " iter " << iter << "\n"
                                << toDimacsString(cnf);
    if (actual) {
      std::vector<bool> model(static_cast<size_t>(vars));
      for (Var v = 0; v < vars; ++v) model[static_cast<size_t>(v)] = s.modelValue(v);
      EXPECT_TRUE(cnf.evaluate(model));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz, ::testing::Range(0, 10));

// Stress: hard instances near the 3-SAT phase transition exercise restarts,
// clause deletion, and activity rescaling; results must be stable across
// polarity/seed perturbations and models must check out.
TEST(SolverStress, PhaseTransitionStability) {
  Rng rng(701);
  for (int inst = 0; inst < 8; ++inst) {
    const int vars = 120;
    Cnf cnf(vars);
    for (int i = 0; i < static_cast<int>(vars * 4.2); ++i) {
      Clause c;
      while (c.size() < 3) {
        Lit l = mkLit(static_cast<Var>(rng.below(vars)), rng.flip());
        bool dup = false;
        for (Lit e : c) dup = dup || e.var() == l.var();
        if (!dup) c.push_back(l);
      }
      cnf.addClause(c);
    }
    Solver first;
    first.addCnf(cnf);
    lbool a = first.solve();
    Solver second;
    second.setRandomSeed(0xdeadbeef + static_cast<uint64_t>(inst));
    second.setRandomDecisionFreq(0.05);
    for (Var v = 0; v < vars; ++v) {
      second.newVar();
      second.setPolarity(v, true);  // opposite default phase
    }
    second.addCnf(cnf);
    lbool b = second.solve();
    ASSERT_FALSE(a.isUndef());
    ASSERT_FALSE(b.isUndef());
    EXPECT_EQ(a.isTrue(), b.isTrue()) << "instance " << inst;
    for (Solver* s : {&first, &second}) {
      if (!s->solve().isTrue()) continue;
      std::vector<bool> model(static_cast<size_t>(vars));
      for (Var v = 0; v < vars; ++v) model[static_cast<size_t>(v)] = s->modelValue(v);
      EXPECT_TRUE(cnf.evaluate(model));
    }
  }
}

TEST(SolverStress, ManyIncrementalBlocksStayConsistent) {
  // Enumerate a few hundred models with blocking clauses and confirm the
  // final UNSAT is genuine by re-solving the accumulated formula fresh.
  Rng rng(703);
  Cnf cnf = testutil::randomCnf(rng, 9, 12);
  Solver incremental;
  incremental.addCnf(cnf);
  Cnf accumulated = cnf;
  int models = 0;
  while (incremental.solve().isTrue()) {
    LitVec block;
    for (Var v = 0; v < 9; ++v) block.push_back(mkLit(v, incremental.modelValue(v)));
    accumulated.addClause(block);
    ASSERT_LE(++models, 512);
    // addClause may detect UNSAT immediately once the last model is blocked.
    if (!incremental.addClause(block)) break;
    // The enumeration loop is exactly where watch/trail corruption would
    // accumulate — deep-audit the solver after every blocking clause.
    AuditResult audit = auditSolver(incremental);
    ASSERT_TRUE(audit.ok()) << "after model " << models << ":\n" << audit.toString();
  }
  Solver fresh;
  fresh.addCnf(accumulated);
  EXPECT_TRUE(fresh.solve().isFalse());
  EXPECT_EQ(models, static_cast<int>(bruteForceModelCount(cnf)));
}

// Repeated solving with assumptions agrees with solving a copy with the
// assumptions added as units.
TEST(SolverProperty, AssumptionsMatchUnitCopies) {
  Rng rng(101);
  for (int iter = 0; iter < 150; ++iter) {
    int vars = static_cast<int>(rng.range(2, 10));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 25)));
    Solver incremental;
    if (!incremental.addCnf(cnf)) {
      // Root-level UNSAT: any assumption set must also be UNSAT.
      EXPECT_TRUE(incremental.solve({mkLit(0)}).isFalse());
      continue;
    }
    for (int q = 0; q < 5; ++q) {
      LitVec assumptions;
      for (Var v = 0; v < vars; ++v) {
        if (rng.chance(1, 3)) assumptions.push_back(mkLit(v, rng.flip()));
      }
      Cnf withUnits = cnf;
      for (Lit l : assumptions) withUnits.addUnit(l);
      bool expected = dpllIsSat(withUnits);
      lbool got = incremental.solve(assumptions);
      ASSERT_FALSE(got.isUndef());
      EXPECT_EQ(got.isTrue(), expected) << "iter " << iter << " query " << q;
    }
  }
}

// Regression: the learnt-DB limit used to be initialized once and then grown
// on every restart of every incremental call, so after a few dozen calls the
// limit outran the database and reduceDB never fired again — learnt clauses
// accumulated without bound across a long enumeration run. The limit is now
// recomputed per solve() call. The workload is a hard satisfiable 3-SAT
// instance queried under many random assumption sets: its learnts are never
// satisfied at level 0, so only reduceDB can keep the database bounded.
TEST(SolverRegression, ReduceDbKeepsFiringAcrossIncrementalSolves) {
  Rng rng(404);
  const int vars = 150;
  Solver s;
  for (int i = 0; i < vars; ++i) s.newVar();
  int added = 0;
  while (added < static_cast<int>(vars * 4.0)) {
    Clause c;
    while (c.size() < 3) {
      Lit l = mkLit(static_cast<Var>(rng.below(vars)), rng.flip());
      bool dup = false;
      for (Lit e : c) dup = dup || e.var() == l.var();
      if (!dup) c.push_back(l);
    }
    ASSERT_TRUE(s.addClause(c));
    ++added;
  }
  for (int q = 0; q < 100; ++q) {
    LitVec assumptions;
    for (int k = 0; k < 12; ++k) {
      assumptions.push_back(mkLit(static_cast<Var>(rng.below(vars)), rng.flip()));
    }
    ASSERT_FALSE(s.solve(assumptions).isUndef());
  }
  EXPECT_GT(s.stats().conflicts, 1000u);  // the workload must actually be hard
  EXPECT_GE(s.stats().reduceDBs, 1u);
  EXPECT_GT(s.stats().deletedClauses, 0u);
  // The per-call limit is max(numOriginal/3, 1000) = 1000 here (plus modest
  // in-call growth). Without the fix the database holds every conflict's
  // clause — far above this bound.
  EXPECT_LT(s.numLearnts(), 1500u);
}

}  // namespace
}  // namespace presat
