// Netlist, .bench I/O, simulators, Tseitin encoding, CNF->circuit.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/from_cnf.hpp"
#include "circuit/netlist.hpp"
#include "circuit/simulator.hpp"
#include "circuit/ternary.hpp"
#include "circuit/tseitin.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/transition_system.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

Netlist buildSmallCombinational() {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId c = nl.addInput("c");
  NodeId ab = nl.mkAnd(a, b, "ab");
  NodeId abc = nl.mkOr(ab, c, "abc");
  nl.markOutput(abc, "y");
  return nl;
}

TEST(Netlist, BasicConstruction) {
  Netlist nl = buildSmallCombinational();
  EXPECT_EQ(nl.numNodes(), 5u);
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.numGates(), 2u);
  EXPECT_EQ(nl.findByName("ab"), 3u);
  EXPECT_EQ(nl.findByName("missing"), kNoNode);
  nl.validate();
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
  Netlist nl = makeS27();
  std::vector<NodeId> order = nl.topologicalOrder();
  std::vector<size_t> pos(nl.numNodes());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    if (!isCombinational(nl.type(id))) continue;
    for (NodeId f : nl.fanins(id)) EXPECT_LT(pos[f], pos[id]);
  }
}

TEST(Netlist, LevelsAreMonotone) {
  Netlist nl = makeS27();
  std::vector<int> level = nl.levels();
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    if (!isCombinational(nl.type(id))) {
      EXPECT_EQ(level[id], 0);
      continue;
    }
    for (NodeId f : nl.fanins(id)) EXPECT_GT(level[id], level[f]);
  }
}

TEST(Netlist, ConeAndSupport) {
  Netlist nl = buildSmallCombinational();
  NodeId ab = nl.findByName("ab");
  std::vector<NodeId> support = nl.supportOf({ab});
  EXPECT_EQ(support.size(), 2u);  // a, b
  std::vector<NodeId> cone = nl.coneOf({nl.findByName("abc")});
  EXPECT_EQ(cone.size(), 5u);
}

TEST(Netlist, FanoutsMatchFanins) {
  Netlist nl = makeS27();
  auto outs = nl.fanouts();
  size_t edges = 0, redges = 0;
  for (NodeId id = 0; id < nl.numNodes(); ++id) edges += nl.fanins(id).size();
  for (const auto& v : outs) redges += v.size();
  EXPECT_EQ(edges, redges);
}

TEST(BenchIo, ParsesS27Structure) {
  Netlist nl = makeS27();
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.numGates(), 10u);  // 8 2-input gates + 2 inverters
  // Spot-check connectivity: G11 = NOR(G5, G9).
  NodeId g11 = nl.findByName("G11");
  ASSERT_NE(g11, kNoNode);
  EXPECT_EQ(nl.type(g11), GateType::kNor);
  EXPECT_EQ(nl.fanins(g11).size(), 2u);
  EXPECT_EQ(nl.name(nl.fanins(g11)[0]), "G5");
  EXPECT_EQ(nl.name(nl.fanins(g11)[1]), "G9");
}

TEST(BenchIo, RoundTripPreservesBehaviour) {
  Rng rng(5);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RandomCircuitParams params;
    params.seed = seed;
    Netlist original = makeRandomSequential(params);
    Netlist back = parseBenchString(toBenchString(original));
    ASSERT_EQ(back.inputs().size(), original.inputs().size());
    ASSERT_EQ(back.dffs().size(), original.dffs().size());
    // Compare behaviour on random patterns: same sources by name.
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> src1(original.numNodes(), false);
      std::vector<bool> src2(back.numNodes(), false);
      for (NodeId id = 0; id < original.numNodes(); ++id) {
        if (isCombinational(original.type(id))) continue;
        bool v = rng.flip();
        src1[id] = v;
        NodeId other = back.findByName(original.name(id).empty() ? "n" + std::to_string(id)
                                                                 : original.name(id));
        ASSERT_NE(other, kNoNode);
        src2[other] = v;
      }
      auto val1 = Simulator::evaluateOnce(original, src1);
      auto val2 = Simulator::evaluateOnce(back, src2);
      for (size_t i = 0; i < original.dffs().size(); ++i) {
        EXPECT_EQ(val1[original.dffData(original.dffs()[i])],
                  val2[back.dffData(back.dffs()[i])]);
      }
    }
  }
}

TEST(BenchIo, MuxAndConstDialectRoundTrip) {
  // Traffic light (MUX + const) and combination lock survive the writer's
  // dialect extension.
  for (Netlist original : {makeTrafficLight(), makeCombinationLock({1, 2}, 2)}) {
    Netlist back = parseBenchString(toBenchString(original));
    TransitionSystem a(original);
    TransitionSystem b(back);
    Rng rng(99);
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<bool> state(static_cast<size_t>(a.numStateBits()));
      std::vector<bool> inputs(static_cast<size_t>(a.numInputs()));
      for (auto&& v : state) v = rng.flip();
      for (auto&& v : inputs) v = rng.flip();
      EXPECT_EQ(a.step(state, inputs), b.step(state, inputs));
    }
  }
}

TEST(BenchIo, RejectsMalformedInput) {
  EXPECT_DEATH((void)parseBenchString("G1 = FROB(G0)\nINPUT(G0)\n"), "unknown gate type");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = AND(G0, G9)\n"), "undefined signal");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = NOT(G0)\nG1 = NOT(G0)\n"), "redefinition");
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  // The offending construct sits on line 3 in each fixture; the message must
  // say so (the PR-1 DIMACS hardening contract, mirrored for .bench).
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\n\nG1 = FROB(G0)\n"), "\\.bench line 3");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\n\nG1 = NOT(G0\n"), "\\.bench line 3");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\n\nWIDGET(G0)\n"), "\\.bench line 3");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = NOT(G0)\nG1 = BUF(G0)\n"),
               "\\.bench line 3: redefinition of 'G1' \\(first defined at line 2\\)");
}

TEST(BenchIo, RejectsTruncatedConstructs) {
  // Truncated or structurally empty lines die with a parse error, never a
  // crash or a silently mis-built netlist.
  EXPECT_DEATH((void)parseBenchString("INPUT(G0\n"), "expected INPUT");
  EXPECT_DEATH((void)parseBenchString("INPUT()\n"), "empty signal name");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\n = NOT(G0)\n"), "missing signal name");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = \n"), "expected name = GATE");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = NOT G0\n"), "expected name = GATE");
}

TEST(BenchIo, RejectsBadArity) {
  // Arity violations are caught at scan time; unchecked, a 0-fanin NOT or a
  // 2-fanin MUX indexes past the fanin array inside the engines.
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = NOT(G0, G0)\n"), "has 2 fanins");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = NOT()\n"), "has 0 fanins");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = MUX(G0, G0)\n"), "has 2 fanins");
  EXPECT_DEATH((void)parseBenchString("G1 = CONST0(G1)\n"), "has 1 fanins");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = AND()\n"), "has 0 fanins");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nG1 = DFF(G0, G0)\n"), "has 2 fanins");
  EXPECT_DEATH((void)parseBenchString("INPUT(G0)\nOUTPUT(G0)\nG1 = INPUT(G0)\n"),
               "unknown gate type");
}

TEST(BenchIo, RejectsCombinationalCycle) {
  // A purely combinational loop used to recurse until the stack overflowed;
  // it must die with the cycle diagnostic instead.
  EXPECT_DEATH((void)parseBenchString("OUTPUT(a)\na = BUF(b)\nb = BUF(a)\n"),
               "combinational cycle");
  EXPECT_DEATH((void)parseBenchString("OUTPUT(a)\na = AND(a, a)\n"), "combinational cycle");
  EXPECT_DEATH(
      (void)parseBenchString("INPUT(x)\nOUTPUT(a)\na = OR(x, b)\nb = NOT(c)\nc = BUF(a)\n"),
      "combinational cycle");
}

TEST(BenchIo, DffFeedbackIsNotACycle) {
  // State feedback through a DFF is legal and must keep parsing.
  Netlist nl = parseBenchString("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n");
  EXPECT_EQ(nl.dffs().size(), 1u);
  TransitionSystem sys(nl);
  EXPECT_EQ(sys.step({false}, {}), std::vector<bool>{true});
  EXPECT_EQ(sys.step({true}, {}), std::vector<bool>{false});
}

TEST(Simulator, GateSemantics) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId s = nl.addInput("s");
  NodeId gAnd = nl.addGate(GateType::kAnd, {a, b});
  NodeId gNand = nl.addGate(GateType::kNand, {a, b});
  NodeId gOr = nl.addGate(GateType::kOr, {a, b});
  NodeId gNor = nl.addGate(GateType::kNor, {a, b});
  NodeId gXor = nl.addGate(GateType::kXor, {a, b});
  NodeId gXnor = nl.addGate(GateType::kXnor, {a, b});
  NodeId gNot = nl.mkNot(a);
  NodeId gBuf = nl.addGate(GateType::kBuf, {a});
  NodeId gMux = nl.mkMux(s, a, b);

  Simulator sim(nl);
  // Pattern k in {0..7}: bit0 of k = a, bit1 = b, bit2 = s.
  uint64_t wa = 0, wb = 0, ws = 0;
  for (int k = 0; k < 8; ++k) {
    if (k & 1) wa |= 1ull << k;
    if (k & 2) wb |= 1ull << k;
    if (k & 4) ws |= 1ull << k;
  }
  sim.setSource(a, wa);
  sim.setSource(b, wb);
  sim.setSource(s, ws);
  sim.run();
  uint64_t mask = 0xff;
  EXPECT_EQ(sim.value(gAnd) & mask, wa & wb & mask);
  EXPECT_EQ(sim.value(gNand) & mask, ~(wa & wb) & mask);
  EXPECT_EQ(sim.value(gOr) & mask, (wa | wb) & mask);
  EXPECT_EQ(sim.value(gNor) & mask, ~(wa | wb) & mask);
  EXPECT_EQ(sim.value(gXor) & mask, (wa ^ wb) & mask);
  EXPECT_EQ(sim.value(gXnor) & mask, ~(wa ^ wb) & mask);
  EXPECT_EQ(sim.value(gNot) & mask, ~wa & mask);
  EXPECT_EQ(sim.value(gBuf) & mask, wa & mask);
  EXPECT_EQ(sim.value(gMux) & mask, ((ws & wb) | (~ws & wa)) & mask);
}

TEST(Ternary, AgreesWithBinaryOnFullAssignments) {
  Rng rng(9);
  RandomCircuitParams params;
  params.seed = 4;
  params.numGates = 60;
  Netlist nl = makeRandomSequential(params);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> sources(nl.numNodes(), false);
    std::vector<lbool> tern(nl.numNodes(), l_Undef);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
      if (isCombinational(nl.type(id))) continue;
      bool v = rng.flip();
      sources[id] = v;
      tern[id] = lbool(v);
    }
    auto binary = Simulator::evaluateOnce(nl, sources);
    auto ternary = ternarySimulate(nl, tern);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
      ASSERT_FALSE(ternary[id].isUndef()) << "node " << id;
      EXPECT_EQ(ternary[id].isTrue(), binary[id]) << "node " << id;
    }
  }
}

TEST(Ternary, PartialAssignmentsNeverContradictCompletions) {
  Rng rng(33);
  RandomCircuitParams params;
  params.seed = 8;
  params.numGates = 30;
  params.numInputs = 3;
  params.numDffs = 3;
  Netlist nl = makeRandomSequential(params);
  std::vector<NodeId> sources;
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    if (nl.type(id) == GateType::kInput || nl.type(id) == GateType::kDff) sources.push_back(id);
  }
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<lbool> partial(nl.numNodes(), l_Undef);
    for (NodeId s : sources) {
      if (rng.chance(1, 2)) partial[s] = lbool(rng.flip());
    }
    auto tern = ternarySimulate(nl, partial);
    // Every completion must agree with the determined ternary values.
    size_t free = 0;
    for (NodeId s : sources) free += partial[s].isUndef() ? 1 : 0;
    ASSERT_LE(free, 6u);
    for (uint64_t bits = 0; bits < (1ull << free); ++bits) {
      std::vector<bool> full(nl.numNodes(), false);
      size_t k = 0;
      for (NodeId s : sources) {
        full[s] = partial[s].isUndef() ? ((bits >> k++) & 1) : partial[s].isTrue();
      }
      auto values = Simulator::evaluateOnce(nl, full);
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (!tern[id].isUndef()) {
          EXPECT_EQ(tern[id].isTrue(), values[id]);
        }
      }
    }
  }
}

TEST(Tseitin, EncodingMatchesSimulation) {
  Rng rng(17);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomCircuitParams params;
    params.seed = seed;
    params.numGates = 40;
    Netlist nl = makeRandomSequential(params);
    CircuitEncoding enc = encodeCircuit(nl);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<bool> sources(nl.numNodes(), false);
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (!isCombinational(nl.type(id))) sources[id] = rng.flip();
      }
      auto values = Simulator::evaluateOnce(nl, sources);
      // Constrain the CNF to the source values and solve; every node variable
      // must take the simulated value.
      Solver s;
      s.addCnf(enc.cnf);
      LitVec assumptions;
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        GateType t = nl.type(id);
        if (t == GateType::kInput || t == GateType::kDff) {
          assumptions.push_back(enc.litOf(id, sources[id]));
        }
      }
      ASSERT_TRUE(s.solve(assumptions).isTrue());
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        EXPECT_EQ(s.modelValue(enc.varOf(id)), values[id]) << "node " << id << " seed " << seed;
      }
    }
  }
}

TEST(Tseitin, ConeEncodingOnlyCoversCone) {
  Netlist nl = buildSmallCombinational();
  NodeId ab = nl.findByName("ab");
  CircuitEncoding enc = encodeCircuit(nl, {ab});
  EXPECT_TRUE(enc.isEncoded(ab));
  EXPECT_TRUE(enc.isEncoded(nl.findByName("a")));
  EXPECT_FALSE(enc.isEncoded(nl.findByName("c")));
  EXPECT_FALSE(enc.isEncoded(nl.findByName("abc")));
}

TEST(FromCnf, SatisfiabilityPreserved) {
  Rng rng(77);
  for (int iter = 0; iter < 100; ++iter) {
    Cnf cnf = testutil::randomCnf(rng, static_cast<int>(rng.range(1, 8)),
                                  static_cast<int>(rng.range(1, 18)));
    CnfCircuit circuit = cnfToCircuit(cnf);
    bool expected = dpllIsSat(cnf);
    // SAT check through the circuit: encode and require root = 1.
    CircuitEncoding enc = encodeCircuit(circuit.netlist);
    Solver s;
    s.addCnf(enc.cnf);
    s.addClause({enc.litOf(circuit.root, true)});
    EXPECT_EQ(s.solve().isTrue(), expected) << "iter " << iter;
  }
}

TEST(FromCnf, RootSimulatesFormula) {
  Rng rng(78);
  Cnf cnf = testutil::randomCnf(rng, 6, 12);
  CnfCircuit circuit = cnfToCircuit(cnf);
  std::vector<bool> assignment(6);
  for (uint64_t bits = 0; bits < 64; ++bits) {
    std::vector<bool> sources(circuit.netlist.numNodes(), false);
    for (Var v = 0; v < 6; ++v) {
      assignment[static_cast<size_t>(v)] = (bits >> v) & 1;
      sources[circuit.varNode[static_cast<size_t>(v)]] = (bits >> v) & 1;
    }
    auto values = Simulator::evaluateOnce(circuit.netlist, sources);
    EXPECT_EQ(values[circuit.root], cnf.evaluate(assignment));
  }
}

}  // namespace
}  // namespace presat
