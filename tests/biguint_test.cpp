// Unit and property tests for BigUint and Dyadic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "base/biguint.hpp"
#include "base/dyadic.hpp"
#include "base/rng.hpp"

namespace presat {
namespace {

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.bitLength(), 0u);
  EXPECT_EQ(z.toU64(), 0u);
  EXPECT_EQ(z.toDecimal(), "0");
  EXPECT_EQ(z, BigUint(0));
}

TEST(BigUint, SmallValues) {
  BigUint a(42);
  EXPECT_FALSE(a.isZero());
  EXPECT_EQ(a.toU64(), 42u);
  EXPECT_EQ(a.toDecimal(), "42");
  EXPECT_EQ(a.bitLength(), 6u);
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  BigUint a(~0ull);
  BigUint b(1);
  BigUint sum = a + b;
  EXPECT_EQ(sum, BigUint::powerOfTwo(64));
  EXPECT_EQ(sum.bitLength(), 65u);
  EXPECT_FALSE(sum.fitsU64());
}

TEST(BigUint, SubtractionInverse) {
  BigUint a = BigUint::powerOfTwo(100);
  BigUint b(12345);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a - a, BigUint(0));
}

TEST(BigUint, PowerOfTwoDecimal) {
  EXPECT_EQ(BigUint::powerOfTwo(0).toDecimal(), "1");
  EXPECT_EQ(BigUint::powerOfTwo(10).toDecimal(), "1024");
  EXPECT_EQ(BigUint::powerOfTwo(64).toDecimal(), "18446744073709551616");
  EXPECT_EQ(BigUint::powerOfTwo(100).toDecimal(), "1267650600228229401496703205376");
}

TEST(BigUint, FromDecimalRoundTrip) {
  const char* cases[] = {"0", "1", "999999999999999999999999", "18446744073709551616",
                         "340282366920938463463374607431768211456"};
  for (const char* c : cases) {
    EXPECT_EQ(BigUint::fromDecimal(c).toDecimal(), c);
  }
}

TEST(BigUint, ShiftLeftRightInverse) {
  BigUint a = BigUint::fromDecimal("123456789123456789123456789");
  for (uint32_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
    BigUint b = a;
    b <<= s;
    b >>= s;
    EXPECT_EQ(b, a) << "shift " << s;
  }
}

TEST(BigUint, ShiftRightDropsBits) {
  BigUint a(0b1011);
  a >>= 2;
  EXPECT_EQ(a.toU64(), 0b10u);
  BigUint b(7);
  b >>= 10;
  EXPECT_TRUE(b.isZero());
}

TEST(BigUint, MulSmall) {
  BigUint a(1);
  for (int i = 0; i < 25; ++i) a.mulSmall(10);
  EXPECT_EQ(a.toDecimal(), "10000000000000000000000000");
  BigUint z(77);
  z.mulSmall(0);
  EXPECT_TRUE(z.isZero());
}

TEST(BigUint, Ordering) {
  EXPECT_LT(BigUint(3), BigUint(4));
  EXPECT_LT(BigUint(~0ull), BigUint::powerOfTwo(64));
  EXPECT_GT(BigUint::powerOfTwo(65), BigUint::powerOfTwo(64));
  EXPECT_LE(BigUint(5), BigUint(5));
}

TEST(BigUint, ToDouble) {
  EXPECT_DOUBLE_EQ(BigUint(1000).toDouble(), 1000.0);
  EXPECT_NEAR(BigUint::powerOfTwo(100).toDouble(), 1.2676506002282294e30, 1e15);
}

// Property: BigUint arithmetic agrees with native 64-bit arithmetic wherever
// the latter is exact.
TEST(BigUintProperty, MatchesNativeArithmetic) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    uint64_t x = rng.next() >> 33;  // keep sums/products in range
    uint64_t y = rng.next() >> 33;
    EXPECT_EQ((BigUint(x) + BigUint(y)).toU64(), x + y);
    uint64_t lo = std::min(x, y), hi = std::max(x, y);
    EXPECT_EQ((BigUint(hi) - BigUint(lo)).toU64(), hi - lo);
    EXPECT_EQ(BigUint(x).mulSmall(y).toU64(), x * y);
    uint32_t s = static_cast<uint32_t>(rng.below(32));
    EXPECT_EQ((BigUint(x) << s).toU64(), x << s);
    EXPECT_EQ((BigUint(x) >> s).toU64(), x >> s);
    EXPECT_EQ(BigUint(x).compare(BigUint(y)), x < y ? -1 : (x > y ? 1 : 0));
    EXPECT_EQ(BigUint(x).toDecimal(), std::to_string(x));
  }
}

TEST(Dyadic, Basics) {
  EXPECT_TRUE(Dyadic::zero().isZero());
  EXPECT_EQ(Dyadic::one().toDouble(), 1.0);
  EXPECT_EQ(Dyadic::half(1).toDouble(), 0.5);
  EXPECT_EQ(Dyadic::half(3).toDouble(), 0.125);
}

TEST(Dyadic, NormalizationMakesEqualityStructural) {
  Dyadic a(BigUint(4), 3);  // 4/8 == 1/2
  EXPECT_EQ(a, Dyadic::half(1));
  EXPECT_EQ(a.exponent(), 1u);
  EXPECT_EQ(a.numerator(), BigUint(1));
}

TEST(Dyadic, Addition) {
  Dyadic sum = Dyadic::half(1) + Dyadic::half(2) + Dyadic::half(2);
  EXPECT_EQ(sum, Dyadic::one());
  Dyadic q = Dyadic::half(2) + Dyadic::half(3);  // 1/4 + 1/8 = 3/8
  EXPECT_EQ(q.numerator(), BigUint(3));
  EXPECT_EQ(q.exponent(), 3u);
}

TEST(Dyadic, ScaleByPow2) {
  Dyadic q(BigUint(3), 3);  // 3/8
  EXPECT_EQ(q.scaleByPow2(5).toU64(), 12u);  // 3/8 * 32
  EXPECT_EQ(Dyadic::zero().scaleByPow2(0), BigUint(0));
}

TEST(Dyadic, AdditionIsCommutativeAndAssociative) {
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    Dyadic a(BigUint(rng.below(1000)), static_cast<uint32_t>(rng.below(20)));
    Dyadic b(BigUint(rng.below(1000)), static_cast<uint32_t>(rng.below(20)));
    Dyadic c(BigUint(rng.below(1000)), static_cast<uint32_t>(rng.below(20)));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(Dyadic, DivPow2) {
  Dyadic q = Dyadic::one();
  q.divPow2(4);
  EXPECT_EQ(q, Dyadic::half(4));
  Dyadic z = Dyadic::zero();
  z.divPow2(10);
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.exponent(), 0u);
}

TEST(Dyadic, ToStringFormat) {
  EXPECT_EQ(Dyadic::half(2).toString(), "1/2^2");
  EXPECT_EQ((Dyadic::half(3) + Dyadic::half(3)).toString(), "1/2^2");
}

}  // namespace
}  // namespace presat
