// Safety checking, BMC, and time-frame unrolling: three independent
// reachability engines that must agree with each other and with explicit
// state-graph search.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "base/rng.hpp"
#include "circuit/simulator.hpp"
#include "circuit/tseitin.hpp"
#include "circuit/unroll.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/bmc.hpp"
#include "preimage/safety.hpp"
#include "sat/solver.hpp"

namespace presat {
namespace {

uint64_t toBits(const std::vector<bool>& v) {
  uint64_t bits = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) bits |= 1ull << i;
  }
  return bits;
}

// Explicit forward BFS distance from any init state to any target state;
// -1 if unreachable.
int bfsDistance(const TransitionSystem& ts, const StateSet& init, const StateSet& target) {
  int n = ts.numStateBits();
  int m = ts.numInputs();
  EXPECT_LE(n + m, 18);
  std::queue<std::pair<uint64_t, int>> queue;
  std::set<uint64_t> seen;
  for (uint64_t s = 0; s < (1ull << n); ++s) {
    std::vector<bool> state(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    if (init.contains(state)) {
      queue.push({s, 0});
      seen.insert(s);
    }
  }
  while (!queue.empty()) {
    auto [s, d] = queue.front();
    queue.pop();
    std::vector<bool> state(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    if (target.contains(state)) return d;
    for (uint64_t x = 0; x < (1ull << m); ++x) {
      std::vector<bool> inputs(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) inputs[static_cast<size_t>(i)] = (x >> i) & 1;
      uint64_t t = toBits(ts.step(state, inputs));
      if (seen.insert(t).second) queue.push({t, d + 1});
    }
  }
  return -1;
}

void expectValidTrace(const TransitionSystem& ts, const StateSet& init, const StateSet& target,
                      const std::vector<std::vector<bool>>& states,
                      const std::vector<std::vector<bool>>& inputs) {
  ASSERT_FALSE(states.empty());
  ASSERT_EQ(states.size(), inputs.size() + 1);
  EXPECT_TRUE(init.contains(states.front()));
  EXPECT_TRUE(target.contains(states.back()));
  for (size_t t = 0; t < inputs.size(); ++t) {
    EXPECT_EQ(ts.step(states[t], inputs[t]), states[t + 1]) << "transition " << t;
  }
}

// --- unroll ------------------------------------------------------------------

TEST(Unroll, ZeroFramesIsJustInitialState) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  UnrolledCircuit u = unroll(ts, 0);
  EXPECT_EQ(u.stateAt.size(), 1u);
  EXPECT_EQ(u.initialState.size(), 3u);
  EXPECT_TRUE(u.frameInputs.empty());
  EXPECT_EQ(u.netlist.numGates(), 0u);
}

TEST(Unroll, MatchesIteratedSimulation) {
  Rng rng(121);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomCircuitParams params;
    params.seed = seed;
    params.numInputs = 3;
    params.numDffs = 4;
    params.numGates = 30;
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);
    const int frames = 5;
    UnrolledCircuit u = unroll(ts, frames);
    EXPECT_EQ(u.stateAt.size(), static_cast<size_t>(frames) + 1);

    for (int trial = 0; trial < 10; ++trial) {
      // Random initial state and per-frame inputs.
      std::vector<bool> state(4);
      for (auto&& b : state) b = rng.flip();
      std::vector<std::vector<bool>> frameIn(frames, std::vector<bool>(3));
      for (auto& f : frameIn) {
        for (auto&& b : f) b = rng.flip();
      }
      // Reference: iterate the sequential circuit.
      std::vector<bool> expected = state;
      for (int t = 0; t < frames; ++t) expected = ts.step(expected, frameIn[static_cast<size_t>(t)]);
      // Unrolled: single combinational evaluation.
      std::vector<bool> sources(u.netlist.numNodes(), false);
      for (int i = 0; i < 4; ++i) sources[u.initialState[static_cast<size_t>(i)]] = state[static_cast<size_t>(i)];
      for (int t = 0; t < frames; ++t) {
        for (int j = 0; j < 3; ++j) {
          sources[u.frameInputs[static_cast<size_t>(t)][static_cast<size_t>(j)]] =
              frameIn[static_cast<size_t>(t)][static_cast<size_t>(j)];
        }
      }
      auto values = Simulator::evaluateOnce(u.netlist, sources);
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(values[u.stateAt.back()[static_cast<size_t>(i)]], expected[static_cast<size_t>(i)])
            << "seed " << seed << " trial " << trial << " bit " << i;
      }
    }
  }
}

// --- BMC ----------------------------------------------------------------------

TEST(Bmc, CounterMinimalDepth) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  BmcResult r = boundedReach(ts, StateSet::fromMinterm(4, 3), StateSet::fromMinterm(4, 7), 10);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.depth, 4);  // 3 -> 4 -> 5 -> 6 -> 7
  expectValidTrace(ts, StateSet::fromMinterm(4, 3), StateSet::fromMinterm(4, 7), r.traceStates,
                   r.traceInputs);
}

TEST(Bmc, TargetEqualsInitIsDepthZero) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  BmcResult r = boundedReach(ts, StateSet::fromMinterm(3, 5), StateSet::fromMinterm(3, 5), 4);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.depth, 0);
  EXPECT_EQ(r.traceStates.size(), 1u);
}

TEST(Bmc, UnreachableWithinBound) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  // Counting from 0 to 12 needs 12 steps; bound of 5 must fail.
  BmcResult r = boundedReach(ts, StateSet::fromMinterm(4, 0), StateSet::fromMinterm(4, 12), 5);
  EXPECT_FALSE(r.reachable);
  EXPECT_EQ(r.satCalls, 6u);
}

class BmcFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BmcFuzz, DepthMatchesExplicitBfs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 307 + 17);
  for (int iter = 0; iter < 6; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = 2;
    params.numDffs = static_cast<int>(rng.range(2, 4));
    params.numGates = static_cast<int>(rng.range(10, 30));
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);
    int n = ts.numStateBits();
    StateSet init = StateSet::fromMinterm(n, rng.below(1ull << n));
    StateSet target = StateSet::fromMinterm(n, rng.below(1ull << n));
    int expected = bfsDistance(ts, init, target);
    const int bound = 8;
    BmcResult r = boundedReach(ts, init, target, bound);
    if (expected >= 0 && expected <= bound) {
      ASSERT_TRUE(r.reachable) << "group " << GetParam() << " iter " << iter;
      EXPECT_EQ(r.depth, expected);
      expectValidTrace(ts, init, target, r.traceStates, r.traceInputs);
    } else {
      EXPECT_FALSE(r.reachable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmcFuzz, ::testing::Range(0, 6));

TEST(BmcIncremental, MatchesSimpleVariant) {
  Rng rng(401);
  for (int iter = 0; iter < 12; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = 2;
    params.numDffs = 3;
    params.numGates = static_cast<int>(rng.range(10, 25));
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);
    StateSet init = StateSet::fromMinterm(3, rng.below(8));
    StateSet target = StateSet::fromMinterm(3, rng.below(8));
    const int bound = 6;
    BmcResult simple = boundedReach(ts, init, target, bound);
    BmcResult incremental = boundedReachIncremental(ts, init, target, bound);
    ASSERT_EQ(incremental.reachable, simple.reachable) << "iter " << iter;
    if (simple.reachable) {
      EXPECT_EQ(incremental.depth, simple.depth);
      expectValidTrace(ts, init, target, incremental.traceStates, incremental.traceInputs);
    }
  }
}

TEST(BmcIncremental, CounterTrace) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  BmcResult r =
      boundedReachIncremental(ts, StateSet::fromMinterm(4, 2), StateSet::fromMinterm(4, 6), 8);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.depth, 4);
  expectValidTrace(ts, StateSet::fromMinterm(4, 2), StateSet::fromMinterm(4, 6), r.traceStates,
                   r.traceInputs);
}

// --- safety -------------------------------------------------------------------

TEST(Safety, CounterCanOverflow) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  // "The counter never wraps to 0 from 15" — false, with a 15-step cex from 1.
  SafetyResult r = checkSafety(ts, StateSet::fromMinterm(4, 1), StateSet::fromMinterm(4, 0));
  EXPECT_EQ(r.status, SafetyStatus::kUnsafe);
  EXPECT_EQ(r.depth, 15);
  expectValidTrace(ts, StateSet::fromMinterm(4, 1), StateSet::fromMinterm(4, 0), r.traceStates,
                   r.traceInputs);
}

TEST(Safety, ShiftRegisterSafeProperty) {
  // A shift register never reaches 1111 from 0000 without feeding ones; with
  // input free it's reachable, so pick a truly safe property: the arbiter's
  // one-hot pointer never becomes all-zero.
  Netlist nl = makeRoundRobinArbiter(3);
  TransitionSystem ts(nl);
  StateSet init = StateSet::fromMinterm(3, 0b001);
  StateSet bad = StateSet::fromMinterm(3, 0b000);
  SafetyResult r = checkSafety(ts, init, bad);
  EXPECT_EQ(r.status, SafetyStatus::kSafe);
  EXPECT_TRUE(r.traceStates.empty());
}

TEST(Safety, DepthBoundYieldsUnknown) {
  Netlist nl = makeCounter(6);
  TransitionSystem ts(nl);
  SafetyOptions options;
  options.maxDepth = 3;
  SafetyResult r = checkSafety(ts, StateSet::fromMinterm(6, 0), StateSet::fromMinterm(6, 32),
                               options);
  EXPECT_EQ(r.status, SafetyStatus::kUnknown);
}

TEST(Safety, AgreesWithBmcOnS27) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  Rng rng(131);
  for (int trial = 0; trial < 10; ++trial) {
    StateSet init = StateSet::fromMinterm(3, rng.below(8));
    StateSet bad = StateSet::fromMinterm(3, rng.below(8));
    SafetyResult safety = checkSafety(ts, init, bad);
    BmcResult bmc = boundedReach(ts, init, bad, 10);
    if (safety.status == SafetyStatus::kUnsafe) {
      ASSERT_TRUE(bmc.reachable) << "trial " << trial;
      EXPECT_EQ(bmc.depth, safety.depth) << "trial " << trial;
      expectValidTrace(ts, init, bad, safety.traceStates, safety.traceInputs);
    } else {
      EXPECT_EQ(safety.status, SafetyStatus::kSafe);
      EXPECT_FALSE(bmc.reachable);
    }
  }
}

class SafetyMethodSweep : public ::testing::TestWithParam<PreimageMethod> {};

TEST_P(SafetyMethodSweep, SameVerdictEveryEngine) {
  Netlist nl = makeTrafficLight();
  TransitionSystem ts(nl);
  StateSet init = StateSet::fromMinterm(4, 0);  // highway green, timer 0
  StateSet farmGreen = StateSet::fromCube(4, {mkLit(0), ~mkLit(1)});
  SafetyOptions options;
  options.method = GetParam();
  SafetyResult r = checkSafety(ts, init, farmGreen, options);
  // The farm light eventually turns green when cars arrive: UNSAFE, and the
  // minimal trace passes HG -> HY -> FG with full timer waits.
  EXPECT_EQ(r.status, SafetyStatus::kUnsafe);
  EXPECT_EQ(r.depth, 8);
  expectValidTrace(ts, init, farmGreen, r.traceStates, r.traceInputs);
}

INSTANTIATE_TEST_SUITE_P(Methods, SafetyMethodSweep,
                         ::testing::ValuesIn(kAllPreimageMethods),
                         [](const ::testing::TestParamInfo<PreimageMethod>& info) {
                           std::string name = preimageMethodName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Safety, FindTransitionIntoWitness) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  std::vector<bool> inputs, next;
  ASSERT_TRUE(findTransitionInto(ts, {true, false, false, false}, StateSet::fromMinterm(4, 2),
                                 &inputs, &next));
  EXPECT_EQ(inputs, std::vector<bool>{true});
  EXPECT_EQ(toBits(next), 2u);
  EXPECT_FALSE(findTransitionInto(ts, {false, false, false, false}, StateSet::fromMinterm(4, 9),
                                  &inputs, &next));
}

// --- combination lock (generator + end-to-end) ---------------------------------

TEST(CombinationLock, StepSemantics) {
  Netlist nl = makeCombinationLock({2, 1, 3}, 2);
  TransitionSystem ts(nl);
  ASSERT_EQ(ts.numStateBits(), 2);
  ASSERT_EQ(ts.numInputs(), 2);
  auto sym = [](int v) { return std::vector<bool>{(v & 1) != 0, (v & 2) != 0}; };
  std::vector<bool> s(2, false);  // progress 0
  s = ts.step(s, sym(2));
  EXPECT_EQ(toBits(s), 1u);  // correct first digit
  s = ts.step(s, sym(3));
  EXPECT_EQ(toBits(s), 0u);  // wrong digit resets
  s = ts.step(s, sym(2));
  s = ts.step(s, sym(1));
  s = ts.step(s, sym(3));
  EXPECT_EQ(toBits(s), 3u);  // open
  s = ts.step(s, sym(0));
  EXPECT_EQ(toBits(s), 3u);  // absorbing
}

TEST(CombinationLock, BackwardTraceRecoversSecret) {
  const std::vector<int> secret{1, 3, 0, 2};
  Netlist nl = makeCombinationLock(secret, 2);
  TransitionSystem ts(nl);
  int n = ts.numStateBits();
  StateSet locked = StateSet::fromMinterm(n, 0);
  StateSet open = StateSet::fromMinterm(n, secret.size());
  SafetyResult r = checkSafety(ts, locked, open);
  ASSERT_EQ(r.status, SafetyStatus::kUnsafe);
  ASSERT_EQ(r.depth, static_cast<int>(secret.size()));
  for (size_t i = 0; i < secret.size(); ++i) {
    int symbol = 0;
    for (size_t b = 0; b < r.traceInputs[i].size(); ++b) {
      if (r.traceInputs[i][b]) symbol |= 1 << b;
    }
    EXPECT_EQ(symbol, secret[i]) << "digit " << i;
  }
}

}  // namespace
}  // namespace presat
