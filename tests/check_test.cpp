// Tests for the src/check/ audit subsystem: clean structures audit clean, and
// each deliberate corruption fires exactly the named diagnostic it targets.
// The death tests additionally prove the PRESAT_CHECK_AUDIT wiring aborts
// with the invariant name in the message.
#include <gtest/gtest.h>

#include "allsat/success_driven.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "check/audit_bdd.hpp"
#include "check/audit_netlist.hpp"
#include "check/audit_solution_graph.hpp"
#include "check/audit_solver.hpp"
#include "circuit/strash.hpp"
#include "gen/generators.hpp"
#include "parallel/merge.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

// --- solver -------------------------------------------------------------------

// Builds a solver with learnt clauses, a populated trail, and live watch
// lists: pigeonhole forces conflicts, the trailing unit keeps the trail
// non-empty at level 0 after the final solve.
void setupBusySolver(Solver& s) {
  s.addCnf(testutil::pigeonhole(3));
  Var extra = s.newVar();
  s.addClause({mkLit(extra)});
  EXPECT_TRUE(s.solve({mkLit(extra)}).isFalse());
}

TEST(AuditSolver, CleanSolverPasses) {
  Solver s;
  setupBusySolver(s);
  AuditResult r = auditSolver(s);
  EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(AuditSolver, CleanRandomInstancesPass) {
  Rng rng(71);
  for (int iter = 0; iter < 20; ++iter) {
    Solver s;
    if (!s.addCnf(testutil::randomCnf(rng, 12, 40))) continue;
    (void)s.solve();
    AuditResult r = auditSolver(s);
    EXPECT_TRUE(r.ok()) << r.toString();
  }
}

TEST(AuditSolver, DetectsSwappedWatchedLiteral) {
  Solver s;
  setupBusySolver(s);
  corruptSolverForTest(s, SolverCorruption::kSwapWatchedLiteral);
  EXPECT_TRUE(auditSolver(s).has("solver.watch.pair"));
}

TEST(AuditSolver, DetectsDroppedWatcher) {
  Solver s;
  setupBusySolver(s);
  corruptSolverForTest(s, SolverCorruption::kDropWatcher);
  EXPECT_TRUE(auditSolver(s).has("solver.watch.pair"));
}

TEST(AuditSolver, DetectsLearntCountDrift) {
  Solver s;
  setupBusySolver(s);
  corruptSolverForTest(s, SolverCorruption::kLearntCountDrift);
  EXPECT_TRUE(auditSolver(s).has("solver.learnt.count"));
}

TEST(AuditSolver, DetectsTrailLevelSkew) {
  Solver s;
  setupBusySolver(s);
  corruptSolverForTest(s, SolverCorruption::kTrailLevelSkew);
  EXPECT_TRUE(auditSolver(s).has("solver.trail.level"));
}

TEST(AuditSolver, DetectsReasonFirstLiteral) {
  // {x, y} then the unit {~x}: propagation implies y with reason {x, y},
  // stored with lits[0] == y. The corruption swaps the watched pair in
  // place, so only the reason invariant can fire.
  Solver s;
  Var x = s.newVar();
  Var y = s.newVar();
  s.addClause({mkLit(x), mkLit(y)});
  s.addClause({~mkLit(x)});
  ASSERT_TRUE(s.solve().isTrue());
  ASSERT_TRUE(auditSolver(s).ok());
  corruptSolverForTest(s, SolverCorruption::kReasonFirstLiteral);
  AuditResult r = auditSolver(s);
  EXPECT_TRUE(r.has("solver.reason.implied")) << r.toString();
  EXPECT_FALSE(r.has("solver.watch.pair")) << r.toString();
}

TEST(AuditSolverDeathTest, CheckAuditAbortsWithInvariantName) {
  Solver s;
  setupBusySolver(s);
  corruptSolverForTest(s, SolverCorruption::kDropWatcher);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditSolver(s)), "solver\\.watch\\.pair");
}

// --- netlist ------------------------------------------------------------------

TEST(AuditNetlist, CleanGeneratorsPass) {
  for (const Netlist& nl :
       {makeCounter(4), makeGrayCounter(3), makeTrafficLight(), makeRoundRobinArbiter(3)}) {
    AuditResult r = auditNetlist(nl);
    EXPECT_TRUE(r.ok()) << r.toString();
  }
}

TEST(AuditNetlist, StrashedOutputMeetsCanonicityInvariants) {
  Netlist swept = strashSweep(makeGrayCounter(4)).netlist;
  AuditResult r = auditNetlist(swept, {.expectStrashed = true});
  EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(AuditNetlist, DetectsSelfLoop) {
  Netlist nl = makeCounter(4);
  corruptNetlistForTest(nl, NetlistCorruption::kSelfLoop);
  EXPECT_TRUE(auditNetlist(nl).has("netlist.acyclic"));
}

TEST(AuditNetlist, DetectsArityViolation) {
  Netlist nl = makeCounter(4);
  corruptNetlistForTest(nl, NetlistCorruption::kArity);
  EXPECT_TRUE(auditNetlist(nl).has("netlist.arity"));
}

TEST(AuditNetlist, DetectsDisconnectedDffData) {
  Netlist nl = makeCounter(4);
  corruptNetlistForTest(nl, NetlistCorruption::kDffData);
  EXPECT_TRUE(auditNetlist(nl).has("netlist.dff.data"));
}

TEST(AuditNetlist, DetectsStructuralDuplicateUnderStrash) {
  Netlist nl = strashSweep(makeCounter(4)).netlist;
  ASSERT_TRUE(auditNetlist(nl, {.expectStrashed = true}).ok());
  corruptNetlistForTest(nl, NetlistCorruption::kDuplicateGate);
  EXPECT_TRUE(auditNetlist(nl, {.expectStrashed = true}).has("netlist.strash.duplicate"));
}

TEST(AuditNetlist, DetectsNameMapSkew) {
  Netlist nl = makeCounter(4);
  corruptNetlistForTest(nl, NetlistCorruption::kNameMapSkew);
  EXPECT_TRUE(auditNetlist(nl).has("netlist.name.map"));
}

TEST(AuditNetlistDeathTest, CheckAuditAbortsWithInvariantName) {
  Netlist nl = makeCounter(4);
  corruptNetlistForTest(nl, NetlistCorruption::kSelfLoop);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditNetlist(nl)), "netlist\\.acyclic");
}

// --- BDD ----------------------------------------------------------------------

// A manager with interior nodes on every variable and a warm ITE cache.
void setupBusyBdd(BddManager& mgr) {
  BddRef f = mgr.constant(false);
  for (Var v = 0; v < 4; ++v) f = mgr.bddXor(f, mgr.variable(v));
  BddRef g = mgr.bddAnd(mgr.variable(0), mgr.bddOr(mgr.variable(2), mgr.bddNot(mgr.variable(3))));
  (void)mgr.ite(f, g, mgr.bddNot(g));
}

TEST(AuditBdd, CleanManagerPasses) {
  BddManager mgr(4);
  setupBusyBdd(mgr);
  AuditResult r = auditBdd(mgr);
  EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(AuditBdd, DetectsOrderViolation) {
  BddManager mgr(4);
  setupBusyBdd(mgr);
  corruptBddForTest(mgr, BddCorruption::kOrderViolation);
  EXPECT_TRUE(auditBdd(mgr).has("bdd.ordering"));
}

TEST(AuditBdd, DetectsRedundantNode) {
  BddManager mgr(4);
  setupBusyBdd(mgr);
  corruptBddForTest(mgr, BddCorruption::kRedundantNode);
  EXPECT_TRUE(auditBdd(mgr).has("bdd.reduced"));
}

TEST(AuditBdd, DetectsUniqueTableDrift) {
  BddManager mgr(4);
  setupBusyBdd(mgr);
  corruptBddForTest(mgr, BddCorruption::kUniqueTableDrift);
  AuditResult r = auditBdd(mgr);
  EXPECT_TRUE(r.has("bdd.unique.balance") || r.has("bdd.unique.canonical")) << r.toString();
}

TEST(AuditBddDeathTest, CheckAuditAbortsWithInvariantName) {
  BddManager mgr(4);
  setupBusyBdd(mgr);
  corruptBddForTest(mgr, BddCorruption::kRedundantNode);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditBdd(mgr)), "bdd\\.reduced");
}

// --- solution graph -----------------------------------------------------------

TEST(AuditSolutionGraph, CleanEngineOutputPasses) {
  Netlist nl = makeCounter(3);
  CircuitAllSatProblem p;
  p.netlist = &nl;
  p.objectives = {{nl.dffData(nl.dffs()[0]), true}};
  for (NodeId d : nl.dffs()) p.projectionSources.push_back(d);
  SuccessDrivenResult result = successDrivenAllSat(p);
  SolutionGraphAuditOptions options;
  options.problem = &p;
  AuditResult r = auditSolutionGraph(result.graph, options);
  EXPECT_TRUE(r.ok()) << r.toString();
}

// The graph corruptions are built directly through the public SolutionGraph
// API: there is no corruption hook because every invariant is reachable from
// the outside.
TEST(AuditSolutionGraph, DetectsChildOutOfRange) {
  SolutionGraph g;
  g.setRoot(5, {});  // only terminals and indices < numNodes() are valid
  EXPECT_TRUE(auditSolutionGraph(g).has("graph.child-range"));
}

TEST(AuditSolutionGraph, DetectsCycle) {
  SolutionGraph g;
  SolutionGraph::Node n;
  n.branch[0] = {0, {mkLit(0)}};  // points back at itself
  n.branch[1] = {SolutionGraph::kSuccess, {~mkLit(0)}};
  int id = g.addNode(n);
  g.setRoot(id, {});
  EXPECT_TRUE(auditSolutionGraph(g).has("graph.acyclic"));
}

TEST(AuditSolutionGraph, DetectsDeadNode) {
  SolutionGraph g;
  SolutionGraph::Node n;
  n.branch[0] = {SolutionGraph::kFail, {mkLit(0)}};
  n.branch[1] = {SolutionGraph::kFail, {~mkLit(0)}};
  int id = g.addNode(n);
  g.setRoot(id, {});
  EXPECT_TRUE(auditSolutionGraph(g).has("graph.dead-node"));
}

TEST(AuditSolutionGraph, DetectsDuplicateVarOnBranch) {
  SolutionGraph g;
  SolutionGraph::Node n;
  n.branch[0] = {SolutionGraph::kSuccess, {mkLit(0), ~mkLit(0)}};
  n.branch[1] = {SolutionGraph::kSuccess, {mkLit(1)}};
  int id = g.addNode(n);
  g.setRoot(id, {});
  EXPECT_TRUE(auditSolutionGraph(g).has("graph.branch.lits"));
}

TEST(AuditSolutionGraph, DetectsVarRepeatAlongPath) {
  // Root fixes x0, then a SUCCESS branch fixes x0 again: legal per branch,
  // illegal along the root-to-SUCCESS path.
  SolutionGraph g;
  SolutionGraph::Node n;
  n.branch[0] = {SolutionGraph::kSuccess, {mkLit(0)}};
  n.branch[1] = {SolutionGraph::kSuccess, {mkLit(1)}};
  int id = g.addNode(n);
  g.setRoot(id, {mkLit(0)});
  SolutionGraphAuditOptions options;
  options.numProjectionVars = 2;
  EXPECT_TRUE(auditSolutionGraph(g, options).has("graph.path.repeat"));
}

TEST(AuditSolutionGraph, CrossChecksCubesAgainstBdd) {
  // A structurally fine graph whose repeat-free paths must round-trip
  // through enumerateCubes and toBdd to the same union.
  SolutionGraph g;
  SolutionGraph::Node inner;
  inner.branch[0] = {SolutionGraph::kSuccess, {mkLit(1)}};
  inner.branch[1] = {SolutionGraph::kSuccess, {~mkLit(1), mkLit(2)}};
  int id = g.addNode(inner);
  g.setRoot(id, {mkLit(0)});
  SolutionGraphAuditOptions options;
  options.numProjectionVars = 3;
  AuditResult r = auditSolutionGraph(g, options);
  EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(AuditSolutionGraphDeathTest, CheckAuditAbortsWithInvariantName) {
  SolutionGraph g;
  g.setRoot(7, {});
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditSolutionGraph(g)), "graph\\.child-range");
}

// --- parallel shard partition -------------------------------------------------

// Two shards splitting a 2-variable projected space on variable 0: shard 0
// owns the x0=0 half, shard 1 the x0=1 half.
std::vector<ShardOutcome> makeCleanShards() {
  std::vector<ShardOutcome> shards(2);
  shards[0].guide = {~mkLit(0)};
  shards[0].result.cubes = {{~mkLit(0), mkLit(1)}};
  shards[1].guide = {mkLit(0)};
  shards[1].result.cubes = {{mkLit(0)}};
  return shards;
}

TEST(AuditShardPartition, CleanShardsPass) {
  std::vector<ShardOutcome> shards = makeCleanShards();
  AuditResult r = auditShardPartition(shards, 2);
  EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(AuditShardPartition, DetectsForeignCube) {
  std::vector<ShardOutcome> shards = makeCleanShards();
  corruptShardsForTest(shards, ShardCorruption::kForeignCube);
  AuditResult r = auditShardPartition(shards, 2);
  EXPECT_TRUE(r.has("parallel.shard.disjoint")) << r.toString();
}

TEST(AuditShardPartition, DetectsGuideEscape) {
  std::vector<ShardOutcome> shards = makeCleanShards();
  corruptShardsForTest(shards, ShardCorruption::kGuideEscape);
  AuditResult r = auditShardPartition(shards, 2);
  EXPECT_TRUE(r.has("parallel.shard.guide")) << r.toString();
}

TEST(AuditShardPartition, DetectsOverlappingGuides) {
  std::vector<ShardOutcome> shards = makeCleanShards();
  shards[1].guide = shards[0].guide;  // both claim the x0=0 half
  AuditResult r = auditShardPartition(shards, 2);
  EXPECT_TRUE(r.has("parallel.guide.disjoint")) << r.toString();
}

TEST(AuditShardPartitionDeathTest, CheckAuditAbortsWithInvariantName) {
  std::vector<ShardOutcome> shards = makeCleanShards();
  corruptShardsForTest(shards, ShardCorruption::kForeignCube);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditShardPartition(shards, 2)),
               "parallel\\.shard\\.disjoint");
}

}  // namespace
}  // namespace presat
