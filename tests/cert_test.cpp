// Certificate pipeline tests: every engine's presat-cert-v1 output must be
// accepted by the standalone checker (src/checktool/presat_check.cpp), a
// governor-degraded partial must verify sound (checker exit 2), and a suite
// of deliberately corrupted certificates must each be REJECTED with the
// expected dotted diagnostic code — the checker's whole value is that it
// does not believe broken covers.
//
// The checker binary is located through the PRESAT_CHECK_BIN compile
// definition (tests/CMakeLists.txt points it at the presat_check target) and
// exercised exactly the way CI does: as a separate process over a file.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cert/certificate.hpp"
#include "circuit/netlist.hpp"
#include "gen/generators.hpp"
#include "govern/budget.hpp"
#include "govern/faults.hpp"
#include "govern/governor.hpp"
#include "preimage/preimage.hpp"
#include "preimage/transition_system.hpp"
#include "sat/proof.hpp"

namespace presat {
namespace {

struct CheckRun {
  int exitCode = -1;    // presat_check's exit status (0 ok, 2 partial, 1 fail)
  std::string output;   // combined stdout+stderr
};

// Writes `cert` to a temp file and runs the standalone checker on it.
CheckRun runChecker(const std::string& cert, const std::string& extraArgs = "") {
  static int serial = 0;
  std::string base = ::testing::TempDir() + "presat_cert_" + std::to_string(serial++);
  std::string certPath = base + ".cert";
  std::string outPath = base + ".out";
  std::FILE* f = std::fopen(certPath.c_str(), "wb");
  EXPECT_NE(f, nullptr) << certPath;
  if (f == nullptr) return {};
  std::fwrite(cert.data(), 1, cert.size(), f);
  std::fclose(f);

  std::string cmd = std::string(PRESAT_CHECK_BIN) + " " + extraArgs +
                    (extraArgs.empty() ? "" : " ") + certPath + " >" + outPath + " 2>&1";
  int raw = std::system(cmd.c_str());
  CheckRun run;
  run.exitCode = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  f = std::fopen(outPath.c_str(), "rb");
  if (f != nullptr) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) run.output.append(buf, n);
    std::fclose(f);
  }
  std::remove(certPath.c_str());
  std::remove(outPath.c_str());
  return run;
}

// Computes a preimage with certificate emission on and returns the result.
PreimageResult certifiedPreimage(const Netlist& nl, const LitVec& targetCube,
                                 PreimageMethod method, PreimageOptions options = {}) {
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromCube(ts.numStateBits(), targetCube);
  options.emitCertificate = true;
  return computePreimage(ts, target, method, options);
}

// --- acceptance: every engine, every mode ----------------------------------

TEST(CertAccept, AllEnginesSerial) {
  Netlist nl = makeLfsr(5);
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = certifiedPreimage(nl, {mkLit(0), ~mkLit(2)}, method);
    ASSERT_TRUE(r.complete) << preimageMethodName(method);
    ASSERT_FALSE(r.certificate.empty()) << preimageMethodName(method);
    EXPECT_NE(r.certificate.find(std::string("h engine ") + preimageMethodName(method)),
              std::string::npos);
    CheckRun run = runChecker(r.certificate);
    EXPECT_EQ(run.exitCode, 0) << preimageMethodName(method) << "\n" << run.output;
    EXPECT_NE(run.output.find("complete cover verified"), std::string::npos)
        << preimageMethodName(method) << "\n" << run.output;
    // A complete cover's embedded proof ends with the empty clause, and the
    // DRAT serializations of that proof ride along with the result.
    EXPECT_NE(r.dratText.find("0\n"), std::string::npos) << preimageMethodName(method);
    EXPECT_FALSE(r.dratBinary.empty()) << preimageMethodName(method);
  }
}

TEST(CertAccept, ParallelJobsOneAndEight) {
  Netlist nl = makeLfsr(5);
  const PreimageMethod cnfMethods[] = {PreimageMethod::kMintermBlocking,
                                       PreimageMethod::kCubeBlocking,
                                       PreimageMethod::kChrono};
  for (int jobs : {1, 8}) {
    for (PreimageMethod method : cnfMethods) {
      PreimageOptions options;
      options.allsat.parallel.jobs = jobs;
      PreimageResult r = certifiedPreimage(nl, {mkLit(0), ~mkLit(2)}, method, options);
      ASSERT_TRUE(r.complete) << preimageMethodName(method) << " jobs=" << jobs;
      EXPECT_NE(r.certificate.find("jobs=" + std::to_string(jobs)), std::string::npos);
      CheckRun run = runChecker(r.certificate);
      EXPECT_EQ(run.exitCode, 0)
          << preimageMethodName(method) << " jobs=" << jobs << "\n" << run.output;
    }
  }
}

TEST(CertAccept, ProjectedAndCompressedCovers) {
  Netlist nl = makeLfsr(5);
  const PreimageMethod methods[] = {PreimageMethod::kMintermBlocking,
                                    PreimageMethod::kCubeBlocking, PreimageMethod::kChrono,
                                    PreimageMethod::kSuccessDriven};
  for (PreimageMethod method : methods) {
    PreimageOptions options;
    options.allsat.project = true;
    options.allsat.compress = true;
    PreimageResult r = certifiedPreimage(nl, {mkLit(0), ~mkLit(2)}, method, options);
    ASSERT_TRUE(r.complete) << preimageMethodName(method);
    EXPECT_NE(r.certificate.find("project=1 compress=1"), std::string::npos);
    CheckRun run = runChecker(r.certificate);
    EXPECT_EQ(run.exitCode, 0) << preimageMethodName(method) << "\n" << run.output;
  }
}

TEST(CertAccept, MatchingCircuitHashFlag) {
  Netlist nl = makeCounter(4);
  PreimageResult r = certifiedPreimage(nl, {mkLit(0), ~mkLit(2)},
                                       PreimageMethod::kMintermBlocking);
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(netlistStructuralHash(nl)));
  CheckRun run = runChecker(r.certificate, std::string("--circuit-hash ") + hash);
  EXPECT_EQ(run.exitCode, 0) << run.output;
}

// --- honesty: governor-degraded partials ------------------------------------

TEST(CertPartial, ConflictLimitedPartialVerifiesSound) {
  Netlist nl = makeAccumulator(8);
  Budget budget;
  budget.conflictLimit = 3;
  Governor governor(budget);
  PreimageOptions options;
  options.allsat.governor = &governor;
  PreimageResult r = certifiedPreimage(nl, {mkLit(0)}, PreimageMethod::kMintermBlocking,
                                       options);
  ASSERT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kConflicts);
  EXPECT_NE(r.certificate.find("h outcome conflicts"), std::string::npos);
  CheckRun run = runChecker(r.certificate);
  EXPECT_EQ(run.exitCode, 2) << run.output;
  EXPECT_NE(run.output.find("partial cover verified sound"), std::string::npos)
      << run.output;
}

// --- zero-cost default ------------------------------------------------------

TEST(CertZeroCost, NoCertificateUnlessAsked) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(4, 6);
  PreimageResult r = computePreimage(ts, target, PreimageMethod::kChrono);
  EXPECT_TRUE(r.certificate.empty());
  EXPECT_TRUE(r.dratText.empty());
  EXPECT_TRUE(r.dratBinary.empty());
}

// --- rejection: corrupted certificates --------------------------------------

// Fixture: a real complete minterm cover whose preimage is a large slab of
// the state space, so widening a cube is guaranteed to collide with a
// sibling minterm.
class CertCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Netlist nl = makeCounter(4);
    PreimageResult r = certifiedPreimage(nl, {mkLit(3), ~mkLit(1)},
                                         PreimageMethod::kMintermBlocking);
    ASSERT_TRUE(r.complete);
    cert_ = new std::string(r.certificate);
    ASSERT_EQ(runChecker(*cert_).exitCode, 0);
  }
  static void TearDownTestSuite() {
    delete cert_;
    cert_ = nullptr;
  }

  // The pristine certificate accepted in SetUpTestSuite.
  static const std::string& cert() { return *cert_; }

  // Returns the first line starting with `prefix` (without the newline).
  static std::string firstLine(const std::string& text, const std::string& prefix) {
    size_t pos = text.find("\n" + prefix);
    EXPECT_NE(pos, std::string::npos) << prefix;
    size_t begin = pos + 1;
    size_t end = text.find('\n', begin);
    return text.substr(begin, end - begin);
  }

  // Replaces the first occurrence of `from` with `to`; fails if absent.
  static std::string replaced(const std::string& text, const std::string& from,
                              const std::string& to) {
    size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    std::string out = text;
    out.replace(pos, from.size(), to);
    return out;
  }

  static void expectReject(const std::string& corrupted, const std::string& code) {
    CheckRun run = runChecker(corrupted);
    EXPECT_EQ(run.exitCode, 1) << code << "\n" << run.output;
    EXPECT_NE(run.output.find(code), std::string::npos) << code << "\n" << run.output;
  }

 private:
  static const std::string* cert_;
};

const std::string* CertCorruption::cert_ = nullptr;

TEST_F(CertCorruption, TruncatedCertificateRejected) {
  std::string corrupted = replaced(cert(), "h end\n", "");
  expectReject(corrupted, "cert.parse.truncated");
}

TEST_F(CertCorruption, DuplicateCubeRejected) {
  // Duplicate the first cube AND its witness so the section counts still
  // match — only the exact-duplicate check may fire.
  std::string cLine = firstLine(cert(), "c ");
  std::string jLine = firstLine(cert(), "j ");
  std::string corrupted = replaced(cert(), cLine + "\n", cLine + "\n" + cLine + "\n");
  corrupted = replaced(corrupted, jLine + "\n", jLine + "\n" + jLine + "\n");
  expectReject(corrupted, "cert.cube.dup");
}

TEST_F(CertCorruption, FlippedCubeLiteralRejected) {
  // Negating a cube literal makes its own witness disagree with it.
  std::string cLine = firstLine(cert(), "c ");
  ASSERT_GE(cLine.size(), 3u);
  std::string flipped = cLine[2] == '-' ? "c " + cLine.substr(3)
                                        : "c -" + cLine.substr(2);
  expectReject(replaced(cert(), cLine + "\n", flipped + "\n"), "cert.witness.");
}

TEST_F(CertCorruption, WidenedCubeOverlapRejected) {
  // Dropping a literal widens the minterm into a 2-cube; the fixture target
  // was chosen so the twin minterm is also in the cover, so the widened cube
  // now overlaps a sibling. The witness stays consistent (the cube is still
  // a subset of it), so only the disjointness check can catch this.
  std::string cLine = firstLine(cert(), "c ");
  size_t space = cLine.find(' ', 2);
  ASSERT_NE(space, std::string::npos);
  std::string widened = "c " + cLine.substr(space + 1);
  expectReject(replaced(cert(), cLine + "\n", widened + "\n"), "cert.cover.overlap");
}

TEST_F(CertCorruption, StaleCnfHashRejected) {
  std::string hashLine = firstLine(cert(), "h cnfhash ");
  std::string corrupted =
      replaced(cert(), hashLine + "\n", "h cnfhash 0000000000000000\n");
  expectReject(corrupted, "cert.hash.cnf");
}

TEST_F(CertCorruption, StaleCircuitHashRejected) {
  CheckRun run = runChecker(cert(), "--circuit-hash 0123456789abcdef");
  EXPECT_EQ(run.exitCode, 1) << run.output;
  EXPECT_NE(run.output.find("cert.hash.circuit"), std::string::npos) << run.output;
}

TEST_F(CertCorruption, MissingEmptyClauseRejected) {
  // Strip the proof terminator: a "complete" cover without a final empty
  // clause has not proved completeness.
  size_t pos = cert().rfind("\na 0\n");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupted = cert();
  corrupted.erase(pos, 4);
  expectReject(corrupted, "cert.proof.missing-empty");
}

TEST_F(CertCorruption, UnknownOutcomeRejected) {
  std::string corrupted = replaced(cert(), "h outcome complete", "h outcome wedged");
  expectReject(corrupted, "cert.flags.outcome");
}

TEST_F(CertCorruption, GarbageLiteralRejected) {
  std::string cLine = firstLine(cert(), "c ");
  std::string corrupted = replaced(cert(), cLine + "\n", "c banana 0\n");
  expectReject(corrupted, "cert.parse.");
}

TEST(CertReject, NonRupProofRejected) {
  // Handwritten certificate whose cover misses a solution: F = (x1 OR x2),
  // cover = {x1}. F AND NOT x1 is satisfied by x2, so the empty-clause step
  // has no RUP derivation and the checker must refuse the "complete" claim.
  Cnf cnf(2);
  cnf.addBinary(mkLit(0), mkLit(1));
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(certCnfHash(cnf)));
  std::string cert =
      "p presat-cert 1\n"
      "h engine minterm-blocking\n"
      "h circuit 0000000000000000\n"
      "h vars 2\n"
      "h scope 2 1 2\n"
      "h flags project=0 compress=0 disjoint=1 jobs=0\n"
      "h outcome complete\n"
      "h cnfhash " + std::string(hash) + "\n"
      "f 1 2 0\n"
      "c 1 0\n"
      "j 1 -2 0\n"
      "a 0\n"
      "h end\n";
  CheckRun run = runChecker(cert);
  EXPECT_EQ(run.exitCode, 1) << run.output;
  EXPECT_NE(run.output.find("cert.proof.rup"), std::string::npos) << run.output;
}

// --- the proof log itself ---------------------------------------------------

TEST(ProofLogTest, SerializationsAgree) {
  ProofLog log;
  log.addClause(LitVec{mkLit(0), ~mkLit(1)});
  log.deleteClause(LitVec{mkLit(0), ~mkLit(1)});
  log.addEmpty();
  EXPECT_EQ(log.numSteps(), 3u);
  EXPECT_TRUE(log.endsWithEmptyClause());
  EXPECT_EQ(log.toTextDrat(), "1 -2 0\nd 1 -2 0\n0\n");
  // Binary DRAT: 'a'/'d' tag, literals as varints of 2*|l| + (l<0), NUL
  // terminator. 1 -> 2, -2 -> 5.
  const char expected[] = {'a', 2, 5, 0, 'd', 2, 5, 0, 'a', 0};
  EXPECT_EQ(log.toBinaryDrat(), std::string(expected, sizeof(expected)));
  std::string lines;
  log.appendCertLines(lines);
  EXPECT_EQ(lines, "a 1 -2 0\ne 1 -2 0\na 0\n");
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.endsWithEmptyClause());
}

TEST(ProofLogTest, EndsWithEmptyTracksLastStep) {
  ProofLog log;
  log.addEmpty();
  EXPECT_TRUE(log.endsWithEmptyClause());
  log.addUnit(mkLit(0));
  EXPECT_FALSE(log.endsWithEmptyClause());
}

TEST(CertHash, SensitiveToAnyLiteral) {
  Cnf a(3);
  a.addBinary(mkLit(0), mkLit(1));
  Cnf b(3);
  b.addBinary(mkLit(0), ~mkLit(1));
  EXPECT_NE(certCnfHash(a), certCnfHash(b));
  Cnf c(3);
  c.addBinary(mkLit(0), mkLit(1));
  EXPECT_EQ(certCnfHash(a), certCnfHash(c));
}

// --- degradation under fault injection --------------------------------------

#if defined(PRESAT_FAULTS)

struct FaultGuard {
  FaultGuard(const char* site, uint64_t after) { faults::armFault(site, after); }
  ~FaultGuard() { faults::disarmFaults(); }
};

// Every injectable fault site must still yield a certificate the checker
// accepts: complete (exit 0) when the fault missed the run, a sound honest
// partial (exit 2) when it tripped. Certificates must never become garbage
// under degradation — that is the whole robustness claim.
TEST(CertFaults, EverySiteYieldsVerifiableCert) {
  Netlist nl = makeLfsr(5);
  for (const char* site : faults::kSites) {
    PreimageMethod method = PreimageMethod::kChrono;
    if (std::string(site) == "bdd.alloc") method = PreimageMethod::kBdd;
    if (std::string(site) == "sd.node") method = PreimageMethod::kSuccessDriven;
    PreimageOptions options;
    if (std::string(site) == "parallel.shard") options.allsat.parallel.jobs = 2;
    Budget budget;
    Governor governor(budget);
    options.allsat.governor = &governor;
    FaultGuard guard(site, 2);
    PreimageResult r = certifiedPreimage(nl, {mkLit(0), ~mkLit(2)}, method, options);
    ASSERT_FALSE(r.certificate.empty()) << site;
    CheckRun run = runChecker(r.certificate);
    EXPECT_TRUE(run.exitCode == 0 || run.exitCode == 2)
        << site << " exit=" << run.exitCode << "\n" << run.output;
    if (!r.complete) {
      EXPECT_EQ(run.exitCode, 2) << site << "\n" << run.output;
    }
  }
}

#endif  // PRESAT_FAULTS

}  // namespace
}  // namespace presat
