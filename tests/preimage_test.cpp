// Preimage engine tests: every method must compute the identical state
// set, checked against each other and against explicit transition-relation
// enumeration.
#include <gtest/gtest.h>

#include <set>

#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/bdd_preimage.hpp"
#include "preimage/preimage.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"

namespace presat {
namespace {

// Reference: enumerate all (state, input) pairs, collect states that step
// into the target.
std::set<uint64_t> bruteForcePreimage(const TransitionSystem& ts, const StateSet& target) {
  int n = ts.numStateBits();
  int m = ts.numInputs();
  EXPECT_LE(n + m, 20);
  std::set<uint64_t> result;
  for (uint64_t s = 0; s < (1ull << n); ++s) {
    std::vector<bool> state(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    for (uint64_t x = 0; x < (1ull << m); ++x) {
      std::vector<bool> inputs(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) inputs[static_cast<size_t>(i)] = (x >> i) & 1;
      if (target.contains(ts.step(state, inputs))) {
        result.insert(s);
        break;
      }
    }
  }
  return result;
}

std::set<uint64_t> stateSetMinterms(const StateSet& set) {
  EXPECT_LE(set.numStateBits, 20);
  std::set<uint64_t> result;
  for (uint64_t s = 0; s < (1ull << set.numStateBits); ++s) {
    std::vector<bool> state(static_cast<size_t>(set.numStateBits));
    for (int i = 0; i < set.numStateBits; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    if (set.contains(state)) result.insert(s);
  }
  return result;
}

TEST(StateSet, Basics) {
  StateSet s = StateSet::fromMinterm(3, 0b101);
  EXPECT_EQ(s.countStates().toU64(), 1u);
  EXPECT_TRUE(s.contains({true, false, true}));
  EXPECT_FALSE(s.contains({true, true, true}));
  StateSet all = StateSet::all(3);
  EXPECT_EQ(all.countStates().toU64(), 8u);
  StateSet none = StateSet::none(3);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.toString(), "0");
  EXPECT_TRUE(sameStates(all, StateSet::fromCube(3, {})));
  EXPECT_FALSE(sameStates(all, s));
}

TEST(TransitionSystem, CounterSteps) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  EXPECT_EQ(ts.numStateBits(), 4);
  EXPECT_EQ(ts.numInputs(), 1);
  // 0101 + en -> 0110 (state vector is LSB-first).
  std::vector<bool> next = ts.step({true, false, true, false}, {true});
  EXPECT_EQ(next, (std::vector<bool>{false, true, true, false}));
  // Disabled: hold.
  next = ts.step({true, false, true, false}, {false});
  EXPECT_EQ(next, (std::vector<bool>{true, false, true, false}));
  // Wraparound.
  next = ts.step({true, true, true, true}, {true});
  EXPECT_EQ(next, (std::vector<bool>{false, false, false, false}));
}

TEST(Preimage, CounterSingleStateAllMethods) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  // Preimage of state 6: {5 (count up), 6 (hold)}.
  StateSet target = StateSet::fromMinterm(4, 6);
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = computePreimage(ts, target, method);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.stateCount.toU64(), 2u) << preimageMethodName(method);
    EXPECT_EQ(stateSetMinterms(r.states), (std::set<uint64_t>{5, 6}))
        << preimageMethodName(method);
  }
}

TEST(Preimage, CounterWrapState) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(3, 0);
  PreimageResult r = computePreimage(ts, target, PreimageMethod::kSuccessDriven);
  EXPECT_EQ(stateSetMinterms(r.states), (std::set<uint64_t>{7, 0}));
}

TEST(Preimage, EmptyTargetGivesEmptyPreimage) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  StateSet target = StateSet::none(3);
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = computePreimage(ts, target, method);
    EXPECT_TRUE(r.states.empty()) << preimageMethodName(method);
    EXPECT_TRUE(r.stateCount.isZero()) << preimageMethodName(method);
  }
}

TEST(Preimage, FullTargetGivesFullPreimage) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  StateSet target = StateSet::all(3);
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = computePreimage(ts, target, method);
    EXPECT_EQ(r.stateCount.toU64(), 8u) << preimageMethodName(method);
  }
}

TEST(Preimage, MultiCubeTarget) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  StateSet target;
  target.numStateBits = 4;
  target.cubes.push_back({mkLit(0), mkLit(1)});    // next in {3, 7, 11, 15}
  target.cubes.push_back({~mkLit(2), ~mkLit(3)});  // next in {0, 1, 2, 3}
  std::set<uint64_t> expected = bruteForcePreimage(ts, target);
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = computePreimage(ts, target, method);
    EXPECT_EQ(stateSetMinterms(r.states), expected) << preimageMethodName(method);
    EXPECT_EQ(r.stateCount.toU64(), expected.size()) << preimageMethodName(method);
  }
}

TEST(Preimage, S27AllMethodsAgree) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  Rng rng(107);
  for (int trial = 0; trial < 12; ++trial) {
    LitVec cube;
    for (int i = 0; i < 3; ++i) {
      if (rng.chance(2, 3)) cube.push_back(mkLit(static_cast<Var>(i), rng.flip()));
    }
    StateSet target = StateSet::fromCube(3, cube);
    std::set<uint64_t> expected = bruteForcePreimage(ts, target);
    for (PreimageMethod method : kAllPreimageMethods) {
      PreimageResult r = computePreimage(ts, target, method);
      ASSERT_TRUE(r.complete);
      EXPECT_EQ(stateSetMinterms(r.states), expected)
          << preimageMethodName(method) << " trial " << trial;
      EXPECT_EQ(r.stateCount.toU64(), expected.size()) << preimageMethodName(method);
    }
  }
}

class PreimageFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PreimageFuzz, AllMethodsMatchBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53 + 29);
  for (int iter = 0; iter < 10; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = static_cast<int>(rng.range(1, 3));
    params.numDffs = static_cast<int>(rng.range(2, 5));
    params.numGates = static_cast<int>(rng.range(10, 35));
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);

    LitVec cube;
    for (int i = 0; i < ts.numStateBits(); ++i) {
      if (rng.chance(1, 2)) cube.push_back(mkLit(static_cast<Var>(i), rng.flip()));
    }
    StateSet target = StateSet::fromCube(ts.numStateBits(), cube);
    std::set<uint64_t> expected = bruteForcePreimage(ts, target);
    for (PreimageMethod method : kAllPreimageMethods) {
      PreimageResult r = computePreimage(ts, target, method);
      ASSERT_TRUE(r.complete);
      ASSERT_EQ(stateSetMinterms(r.states), expected)
          << preimageMethodName(method) << " group " << GetParam() << " iter " << iter;
      EXPECT_EQ(r.stateCount.toU64(), expected.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreimageFuzz, ::testing::Range(0, 8));

// MUX-heavy circuits (the random generator emits none): LFSRs exercise the
// engines' MUX justification/encoding paths with random targets.
TEST(Preimage, LfsrRandomTargetsAllMethods) {
  Netlist nl = makeLfsr(6);
  TransitionSystem ts(nl);
  Rng rng(907);
  for (int trial = 0; trial < 10; ++trial) {
    LitVec cube;
    for (int i = 0; i < 6; ++i) {
      if (rng.chance(1, 2)) cube.push_back(mkLit(static_cast<Var>(i), rng.flip()));
    }
    StateSet target = StateSet::fromCube(6, cube);
    std::set<uint64_t> expected = bruteForcePreimage(ts, target);
    for (PreimageMethod method : kAllPreimageMethods) {
      PreimageResult r = computePreimage(ts, target, method);
      ASSERT_EQ(stateSetMinterms(r.states), expected)
          << preimageMethodName(method) << " trial " << trial;
    }
  }
}

TEST(Preimage, MultiCubeTargetsOnTrafficLight) {
  Netlist nl = makeTrafficLight();
  TransitionSystem ts(nl);
  Rng rng(911);
  for (int trial = 0; trial < 8; ++trial) {
    StateSet target;
    target.numStateBits = 4;
    int numCubes = static_cast<int>(rng.range(2, 4));
    for (int c = 0; c < numCubes; ++c) {
      LitVec cube;
      for (int i = 0; i < 4; ++i) {
        if (rng.chance(1, 2)) cube.push_back(mkLit(static_cast<Var>(i), rng.flip()));
      }
      target.cubes.push_back(std::move(cube));
    }
    std::set<uint64_t> expected = bruteForcePreimage(ts, target);
    for (PreimageMethod method : kAllPreimageMethods) {
      PreimageResult r = computePreimage(ts, target, method);
      ASSERT_EQ(stateSetMinterms(r.states), expected)
          << preimageMethodName(method) << " trial " << trial;
      EXPECT_EQ(r.stateCount.toU64(), expected.size());
    }
  }
}

TEST(Preimage, ArbiterOneHotTarget) {
  Netlist nl = makeRoundRobinArbiter(3);
  TransitionSystem ts(nl);
  // Target: pointer at client 0 (one-hot 001).
  StateSet target = StateSet::fromMinterm(3, 0b001);
  std::set<uint64_t> expected = bruteForcePreimage(ts, target);
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = computePreimage(ts, target, method);
    EXPECT_EQ(stateSetMinterms(r.states), expected) << preimageMethodName(method);
  }
}

TEST(Preimage, TrafficLightStateChange) {
  Netlist nl = makeTrafficLight();
  TransitionSystem ts(nl);
  // Target: highway yellow (s1=0, s0=1) with timer reset (t1=t0=0).
  // State order: s1, s0, t1, t0 (DFF creation order).
  StateSet target = StateSet::fromCube(4, {~mkLit(0), mkLit(1), ~mkLit(2), ~mkLit(3)});
  std::set<uint64_t> expected = bruteForcePreimage(ts, target);
  EXPECT_FALSE(expected.empty());
  for (PreimageMethod method : kAllPreimageMethods) {
    PreimageResult r = computePreimage(ts, target, method);
    EXPECT_EQ(stateSetMinterms(r.states), expected) << preimageMethodName(method);
  }
}

TEST(BddPreimageDirect, MatchesGenericEntryPoint) {
  Netlist nl = makeGrayCounter(4);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(4, 0b0110);
  double seconds = 0;
  size_t nodes = 0;
  StateSet viaHelper = bddPreimage(ts, target, &seconds, &nodes);
  PreimageResult viaGeneric = computePreimage(ts, target, PreimageMethod::kBdd);
  EXPECT_TRUE(sameStates(viaHelper, viaGeneric.states));
  EXPECT_GT(nodes, 0u);
}

TEST(BddTransition, DeltaFunctionsMatchSimulation) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  BddTransition transition(ts);
  BddManager& mgr = transition.manager();
  Rng rng(113);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> state(3), inputs(4);
    uint64_t bits = rng.next();
    for (int i = 0; i < 3; ++i) state[static_cast<size_t>(i)] = (bits >> i) & 1;
    for (int i = 0; i < 4; ++i) inputs[static_cast<size_t>(i)] = (bits >> (3 + i)) & 1;
    std::vector<bool> next = ts.step(state, inputs);
    for (int i = 0; i < 3; ++i) {
      BddRef f = transition.delta(i);
      // Evaluate the BDD under (state, inputs).
      while (!mgr.isConstant(f)) {
        Var v = mgr.topVar(f);
        bool val = v < 3 ? state[static_cast<size_t>(v)] : inputs[static_cast<size_t>(v - 3)];
        f = val ? mgr.high(f) : mgr.low(f);
      }
      EXPECT_EQ(f == BddManager::kTrue, next[static_cast<size_t>(i)]);
    }
  }
}

TEST(Preimage, PresimplifyGivesIdenticalResults) {
  Rng rng(503);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomCircuitParams params;
    params.seed = seed * 1001;
    params.numInputs = 3;
    params.numDffs = 4;
    params.numGates = 40;
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);
    LitVec cube;
    for (int i = 0; i < 4; ++i) {
      if (rng.chance(1, 2)) cube.push_back(mkLit(static_cast<Var>(i), rng.flip()));
    }
    StateSet target = StateSet::fromCube(4, cube);
    PreimageOptions plain;
    PreimageOptions swept;
    swept.presimplify = true;
    for (PreimageMethod method :
         {PreimageMethod::kSuccessDriven, PreimageMethod::kCubeBlockingLifted,
          PreimageMethod::kBdd}) {
      PreimageResult a = computePreimage(ts, target, method, plain);
      PreimageResult b = computePreimage(ts, target, method, swept);
      EXPECT_EQ(a.stateCount, b.stateCount) << preimageMethodName(method) << " seed " << seed;
      EXPECT_TRUE(sameStates(a.states, b.states)) << preimageMethodName(method);
    }
  }
}

TEST(Preimage, SuccessDrivenReportsGraphs) {
  Netlist nl = makeCounter(6);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(6, 33);
  PreimageResult r = computePreimage(ts, target, PreimageMethod::kSuccessDriven);
  ASSERT_EQ(r.graphs.size(), 1u);
  EXPECT_GT(r.stats.graphNodes, 0u);
  EXPECT_EQ(r.graphs[0].countPaths().toU64(), r.states.cubes.size());
}

}  // namespace
}  // namespace presat
