// Chronological-backtracking enumeration tests (src/allsat/chrono_blocking):
// the engine must match every other engine's projected solution set exactly,
// emit pairwise-disjoint cubes, and — the property that motivates it — keep
// the clause database flat no matter how many solutions it enumerates.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "allsat/chrono_blocking.hpp"
#include "allsat/cube_blocking.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/projection.hpp"
#include "allsat/success_driven.hpp"
#include "base/rng.hpp"
#include "check/audit_chrono.hpp"
#include "circuit/from_cnf.hpp"
#include "gen/generators.hpp"
#include "parallel/parallel_allsat.hpp"
#include "preimage/preimage.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"
#include "sat/dpll.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

// Runs the success-driven engine on a CNF via circuit conversion, projecting
// onto the given scope (the same route presat_cli's --method sd takes).
BigUint successDrivenCnfCount(const Cnf& cnf, const std::vector<Var>& projection) {
  CnfCircuit circuit = cnfToCircuit(cnf);
  CircuitAllSatProblem problem;
  problem.netlist = &circuit.netlist;
  problem.objectives = {{circuit.root, true}};
  for (Var v : projection) {
    problem.projectionSources.push_back(circuit.varNode[static_cast<size_t>(v)]);
  }
  return successDrivenAllSat(problem).summary.mintermCount;
}

std::set<uint64_t> cubesToMinterms(const std::vector<LitVec>& cubes, size_t projSize) {
  std::set<uint64_t> result;
  EXPECT_LE(projSize, 20u);
  for (uint64_t bits = 0; bits < (1ull << projSize); ++bits) {
    for (const LitVec& cube : cubes) {
      if (cubeCoversMinterm(cube, bits)) {
        result.insert(bits);
        break;
      }
    }
  }
  return result;
}

TEST(Chrono, SimpleFormula) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));  // x0 | x1
  AllSatResult r = chronoAllSat(cnf, {0, 1}, {});
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.mintermCount.toU64(), 3u);
  EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
  EXPECT_EQ(r.stats.blockingClauses, 0u);
  EXPECT_EQ(r.metrics.label("engine"), "chrono");
}

TEST(Chrono, UnsatFormula) {
  Cnf cnf(2);
  cnf.addUnit(mkLit(0));
  cnf.addUnit(~mkLit(0));
  AllSatResult r = chronoAllSat(cnf, {0, 1}, {});
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.cubes.empty());
  EXPECT_TRUE(r.mintermCount.isZero());
}

TEST(Chrono, EmptyProjection) {
  Cnf cnf(2);
  cnf.addBinary(mkLit(0), mkLit(1));
  AllSatResult r = chronoAllSat(cnf, {}, {});
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cubes.size(), 1u);
  EXPECT_EQ(r.mintermCount.toU64(), 1u);
}

TEST(Chrono, MaxCubesCap) {
  Cnf cnf(4);  // no constraints: 16 solutions
  AllSatOptions opts;
  opts.maxCubes = 5;
  // With shrinking the whole space is one empty cube; disable it so the
  // enumeration is minterm-grained and actually runs into the cap.
  opts.chronoShrink = false;
  AllSatResult r = chronoAllSat(cnf, {0, 1, 2, 3}, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.cubes.size(), 5u);
  EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
}

TEST(Chrono, ShrinkCollapsesUnconstrainedSpace) {
  Cnf cnf(4);  // no constraints: one empty cube covers all 16 minterms
  AllSatResult r = chronoAllSat(cnf, {0, 1, 2, 3}, {});
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cubes.size(), 1u);
  EXPECT_TRUE(r.cubes[0].empty());
  EXPECT_EQ(r.mintermCount.toU64(), 16u);
}

TEST(Chrono, ConflictBudgetGivesPartialResult) {
  Cnf cnf = testutil::pigeonhole(7);  // UNSAT, resolution-hard
  AllSatOptions opts;
  opts.conflictBudget = 10;
  AllSatResult r = chronoAllSat(cnf, {0, 1, 2, 3, 4, 5}, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kConflicts);
  EXPECT_EQ(r.metrics.label("outcome"), "conflicts");
  // The formula is UNSAT, so a sound partial answer has no cubes at all.
  EXPECT_TRUE(r.cubes.empty());
  EXPECT_TRUE(r.mintermCount.isZero());
  // With a budget far above the refutation cost the same run completes.
  opts.conflictBudget = 1u << 20;
  AllSatResult full = chronoAllSat(cnf, {0, 1, 2, 3, 4, 5}, opts);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.outcome, Outcome::kComplete);
  EXPECT_TRUE(full.mintermCount.isZero());
}

// Satisfiable formulas under a starvation-level budget: whatever cube prefix
// the engine managed to emit must be a sound under-approximation — pairwise
// disjoint, a subset of the brute-force solution set, count a lower bound —
// with the reason code distinguishing partial from complete.
TEST(ChronoProperty, ConflictBudgetPartialsAreSoundUnderApproximations) {
  Rng rng(57);
  int sawPartial = 0;
  for (int iter = 0; iter < 80; ++iter) {
    int vars = static_cast<int>(rng.range(3, 9));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(4, 24)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) projection.push_back(v);
    std::set<uint64_t> exact = bruteForceProjectedSolutions(cnf, projection);

    AllSatOptions opts;
    opts.conflictBudget = 1 + rng.range(0, 2);
    opts.chronoShrink = false;  // minterm-grained enumeration so the budget bites
    AllSatResult r = chronoAllSat(cnf, projection, opts);

    std::set<uint64_t> got = cubesToMinterms(r.cubes, projection.size());
    EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes)) << "iter " << iter;
    for (uint64_t m : got) EXPECT_TRUE(exact.count(m)) << "iter " << iter << " minterm " << m;
    EXPECT_LE(r.mintermCount.toU64(), exact.size()) << "iter " << iter;
    if (r.complete) {
      EXPECT_EQ(r.outcome, Outcome::kComplete) << "iter " << iter;
      EXPECT_EQ(got, exact) << "iter " << iter;
    } else {
      EXPECT_EQ(r.outcome, Outcome::kConflicts) << "iter " << iter;
      ++sawPartial;
    }
  }
  // The budget is tight enough that the partial path is genuinely exercised.
  EXPECT_GT(sawPartial, 0);
}

// Cross-engine equivalence fuzz: chrono must agree with minterm blocking,
// cube blocking, and the brute-force reference on random CNFs under random
// projection scopes — and additionally emit disjoint cubes and pass the
// BDD-oracle coverage audit.
TEST(ChronoProperty, MatchesBruteForceAndOtherEngines) {
  Rng rng(83);
  for (int iter = 0; iter < 120; ++iter) {
    int vars = static_cast<int>(rng.range(2, 9));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 18)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(1, 2)) projection.push_back(v);
    }
    std::set<uint64_t> expected = bruteForceProjectedSolutions(cnf, projection);

    AllSatResult r = chronoAllSat(cnf, projection, {});
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(cubesToMinterms(r.cubes, projection.size()), expected) << "iter " << iter;
    EXPECT_EQ(r.mintermCount.toU64(), expected.size()) << "iter " << iter;
    EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes)) << "iter " << iter;
    EXPECT_EQ(r.stats.blockingClauses, 0u);

    AllSatResult minterm = mintermBlockingAllSat(cnf, projection);
    EXPECT_EQ(r.mintermCount, minterm.mintermCount) << "iter " << iter;
    AllSatOptions noLift;
    noLift.liftModels = false;
    AllSatResult cube = cubeBlockingAllSat(cnf, projection, {}, noLift);
    EXPECT_EQ(r.mintermCount, cube.mintermCount) << "iter " << iter;
    EXPECT_EQ(r.mintermCount, successDrivenCnfCount(cnf, projection)) << "iter " << iter;

    AuditResult audit = auditChronoCubes(cnf, projection, r.cubes, r.complete);
    EXPECT_TRUE(audit.ok()) << "iter " << iter << "\n" << audit.toString();
  }
}

// Ablation: with implicant shrinking disabled the engine emits narrower
// (decision-prefix-only) cubes, but the enumerated set must be unchanged.
TEST(ChronoProperty, ShrinkDisabledStillExact) {
  Rng rng(91);
  for (int iter = 0; iter < 60; ++iter) {
    int vars = static_cast<int>(rng.range(2, 8));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 14)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) projection.push_back(v);

    AllSatOptions noShrink;
    noShrink.chronoShrink = false;
    AllSatResult plain = chronoAllSat(cnf, projection, noShrink);
    AllSatResult shrunk = chronoAllSat(cnf, projection, {});
    ASSERT_TRUE(plain.complete);
    ASSERT_TRUE(shrunk.complete);
    EXPECT_EQ(plain.mintermCount, shrunk.mintermCount) << "iter " << iter;
    EXPECT_EQ(cubesToMinterms(plain.cubes, projection.size()),
              cubesToMinterms(shrunk.cubes, projection.size()));
    EXPECT_TRUE(cubesPairwiseDisjoint(plain.cubes));
    // Shrinking can only widen cubes, never add enumeration steps.
    EXPECT_LE(shrunk.cubes.size(), plain.cubes.size());
  }
}

// THE property the engine exists for: the clause database never grows with
// the solution count. (x0 | x1) over n variables has 3 * 2^(n-2) solutions,
// yet chrono stores exactly that one clause at every n, while the minterm
// engine's database scales with the enumeration.
TEST(ChronoProperty, ClauseDatabaseStaysFlatAsSolutionsGrow) {
  for (int n = 4; n <= 10; ++n) {
    Cnf cnf(n);
    cnf.addBinary(mkLit(0), mkLit(1));
    std::vector<Var> projection;
    for (Var v = 0; v < n; ++v) projection.push_back(v);

    AllSatResult chrono = chronoAllSat(cnf, projection, {});
    ASSERT_TRUE(chrono.complete);
    EXPECT_EQ(chrono.mintermCount.toU64(), 3ull << (n - 2));
    EXPECT_EQ(chrono.stats.blockingClauses, 0u);
    EXPECT_EQ(chrono.stats.dbClausesPeak, 1u) << "n=" << n;
    EXPECT_EQ(chrono.metrics.counter("sat.db_clauses"), 1u);

    AllSatResult minterm = mintermBlockingAllSat(cnf, projection);
    EXPECT_EQ(minterm.mintermCount, chrono.mintermCount);
    // One blocking clause per projected minterm: peak >= solution count.
    EXPECT_GE(minterm.stats.dbClausesPeak, minterm.mintermCount.toU64());
  }
}

std::vector<std::string> canonicalCubes(const std::vector<LitVec>& cubes, int width) {
  std::vector<std::string> out;
  out.reserve(cubes.size());
  for (const LitVec& cube : cubes) {
    std::string s(static_cast<size_t>(width), 'x');
    for (Lit l : cube) s[static_cast<size_t>(l.var())] = l.sign() ? '0' : '1';
    out.push_back(std::move(s));
  }
  return out;
}

// Generator-suite preimage equivalence: kChrono agrees with the success-driven
// and BDD engines on every circuit, serially and in parallel, and --jobs N is
// bit-identical for every N >= 1.
TEST(ChronoPreimage, MatchesOtherEnginesOnGeneratorSuite) {
  struct Fixture {
    const char* name;
    Netlist nl;
  };
  std::vector<Fixture> suite;
  suite.push_back({"counter:4", makeCounter(4)});
  suite.push_back({"gray:3", makeGrayCounter(3)});
  suite.push_back({"lfsr:4", makeLfsr(4)});
  suite.push_back({"arbiter:3", makeRoundRobinArbiter(3)});
  suite.push_back({"traffic", makeTrafficLight()});
  suite.push_back({"lock", makeCombinationLock({1, 2, 3}, 2)});

  for (const Fixture& fixture : suite) {
    TransitionSystem ts(fixture.nl);
    const int n = ts.numStateBits();
    StateSet target = StateSet::fromCube(n, {mkLit(0)});

    PreimageResult sd = computePreimage(ts, target, PreimageMethod::kSuccessDriven, {});
    PreimageResult bdd = computePreimage(ts, target, PreimageMethod::kBdd, {});
    PreimageResult serial = computePreimage(ts, target, PreimageMethod::kChrono, {});

    EXPECT_EQ(serial.stateCount, sd.stateCount) << fixture.name;
    EXPECT_EQ(serial.stateCount, bdd.stateCount) << fixture.name;
    EXPECT_TRUE(serial.complete) << fixture.name;
    EXPECT_TRUE(cubesPairwiseDisjoint(serial.states.cubes)) << fixture.name;
    EXPECT_TRUE(sameStates(serial.states, bdd.states)) << fixture.name;

    PreimageOptions one;
    one.allsat.parallel.jobs = 1;
    PreimageOptions four;
    four.allsat.parallel.jobs = 4;
    PreimageResult r1 = computePreimage(ts, target, PreimageMethod::kChrono, one);
    PreimageResult r4 = computePreimage(ts, target, PreimageMethod::kChrono, four);

    // Parallel shards partition the space, so the cube LIST differs from the
    // serial run — but jobs=1 vs jobs=4 must be bit-identical, and both must
    // denote the same state set with the same exact count.
    EXPECT_EQ(canonicalCubes(r1.states.cubes, n), canonicalCubes(r4.states.cubes, n))
        << fixture.name;
    EXPECT_EQ(r1.stateCount, r4.stateCount) << fixture.name;
    EXPECT_EQ(r1.stateCount, serial.stateCount) << fixture.name;
    EXPECT_TRUE(cubesPairwiseDisjoint(r1.states.cubes)) << fixture.name;
    EXPECT_TRUE(sameStates(r1.states, bdd.states)) << fixture.name;

    // The no-clause-growth property survives the parallel front-end: the
    // merged peak is the max across shards, each of which is flat.
    EXPECT_EQ(r1.stats.blockingClauses, 0u) << fixture.name;
    EXPECT_EQ(r1.stats.dbClausesPeak, r4.stats.dbClausesPeak) << fixture.name;
  }
}

// --- corruption death tests ---------------------------------------------------

TEST(ChronoAuditDeath, OverlappingCubesFailDisjointness) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection = {0, 1, 2};
  AllSatResult r = chronoAllSat(cnf, projection, {});
  ASSERT_TRUE(auditChronoCubes(cnf, projection, r.cubes, r.complete).ok());
  corruptChronoCubesForTest(r.cubes, ChronoCorruption::kDuplicateCube);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditChronoCubes(cnf, projection, r.cubes, r.complete)),
               "chrono\\.disjoint");
}

TEST(ChronoAuditDeath, DroppedCubeFailsCoverage) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection = {0, 1, 2};
  AllSatResult r = chronoAllSat(cnf, projection, {});
  ASSERT_GE(r.cubes.size(), 1u);
  corruptChronoCubesForTest(r.cubes, ChronoCorruption::kDropCube);
  EXPECT_DEATH(PRESAT_CHECK_AUDIT(auditChronoCubes(cnf, projection, r.cubes, r.complete)),
               "chrono\\.cover");
}

}  // namespace
}  // namespace presat
