// Cross-engine all-SAT tests: every engine must produce the same projected
// solution set, verified against brute force and against each other.
#include <gtest/gtest.h>

#include <set>

#include "allsat/cube_blocking.hpp"
#include "allsat/lifting.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/projection.hpp"
#include "allsat/success_driven.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "check/audit_solution_graph.hpp"
#include "circuit/simulator.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "sat/dpll.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

// Brute-force reference for circuit problems: enumerate every assignment of
// all sources, keep projected patterns of those meeting the objectives.
std::set<uint64_t> bruteForceCircuit(const Netlist& nl, const NodeCube& objectives,
                                     const std::vector<NodeId>& projection) {
  std::vector<NodeId> sources;
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    GateType t = nl.type(id);
    if (t == GateType::kInput || t == GateType::kDff) sources.push_back(id);
  }
  std::vector<int> projPos(nl.numNodes(), -1);
  for (size_t i = 0; i < projection.size(); ++i) projPos[projection[i]] = static_cast<int>(i);

  std::set<uint64_t> result;
  EXPECT_LE(sources.size(), 20u);
  for (uint64_t bits = 0; bits < (1ull << sources.size()); ++bits) {
    std::vector<bool> full(nl.numNodes(), false);
    for (size_t k = 0; k < sources.size(); ++k) full[sources[k]] = (bits >> k) & 1;
    auto values = Simulator::evaluateOnce(nl, full);
    bool ok = true;
    for (const NodeAssign& obj : objectives) ok = ok && values[obj.first] == obj.second;
    if (!ok) continue;
    uint64_t pattern = 0;
    for (size_t k = 0; k < sources.size(); ++k) {
      int p = projPos[sources[k]];
      if (p >= 0 && full[sources[k]]) pattern |= 1ull << p;
    }
    result.insert(pattern);
  }
  return result;
}

std::set<uint64_t> cubesToMinterms(const std::vector<LitVec>& cubes, size_t projSize) {
  std::set<uint64_t> result;
  EXPECT_LE(projSize, 20u);
  for (uint64_t bits = 0; bits < (1ull << projSize); ++bits) {
    for (const LitVec& cube : cubes) {
      if (cubeCoversMinterm(cube, bits)) {
        result.insert(bits);
        break;
      }
    }
  }
  return result;
}

TEST(ProjectionHelpers, DisjointCountAndCoverage) {
  std::vector<LitVec> cubes{{mkLit(0)}, {~mkLit(0), mkLit(1)}};
  EXPECT_TRUE(cubesPairwiseDisjoint(cubes));
  EXPECT_EQ(countDisjointCubeMinterms(cubes, 3).toU64(), 4u + 2u);
  EXPECT_EQ(countCubeUnionMinterms(cubes, 3).toU64(), 6u);
  EXPECT_TRUE(cubeCoversMinterm({mkLit(0), ~mkLit(2)}, 0b001));
  EXPECT_FALSE(cubeCoversMinterm({mkLit(0), ~mkLit(2)}, 0b101));
  std::vector<LitVec> overlapping{{mkLit(0)}, {mkLit(1)}};
  EXPECT_FALSE(cubesPairwiseDisjoint(overlapping));
  EXPECT_EQ(countCubeUnionMinterms(overlapping, 2).toU64(), 3u);
}

TEST(MintermBlocking, SimpleFormula) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));  // x0 | x1
  AllSatResult r = mintermBlockingAllSat(cnf, {0, 1});
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cubes.size(), 3u);
  EXPECT_EQ(r.mintermCount.toU64(), 3u);
  EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
}

TEST(MintermBlocking, UnsatFormula) {
  Cnf cnf(2);
  cnf.addUnit(mkLit(0));
  cnf.addUnit(~mkLit(0));
  AllSatResult r = mintermBlockingAllSat(cnf, {0, 1});
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.cubes.empty());
  EXPECT_TRUE(r.mintermCount.isZero());
}

TEST(MintermBlocking, EmptyProjection) {
  Cnf cnf(2);
  cnf.addBinary(mkLit(0), mkLit(1));
  AllSatResult r = mintermBlockingAllSat(cnf, {});
  EXPECT_EQ(r.cubes.size(), 1u);
  EXPECT_EQ(r.mintermCount.toU64(), 1u);
}

TEST(MintermBlocking, MaxCubesCap) {
  Cnf cnf(4);  // no constraints: 16 solutions
  AllSatOptions opts;
  opts.maxCubes = 5;
  AllSatResult r = mintermBlockingAllSat(cnf, {0, 1, 2, 3}, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.cubes.size(), 5u);
}

TEST(MintermBlockingProperty, MatchesBruteForce) {
  Rng rng(83);
  for (int iter = 0; iter < 120; ++iter) {
    int vars = static_cast<int>(rng.range(2, 9));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 18)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(1, 2)) projection.push_back(v);
    }
    std::set<uint64_t> expected = bruteForceProjectedSolutions(cnf, projection);
    AllSatResult r = mintermBlockingAllSat(cnf, projection);
    ASSERT_TRUE(r.complete);
    EXPECT_EQ(cubesToMinterms(r.cubes, projection.size()), expected) << "iter " << iter;
    EXPECT_EQ(r.mintermCount.toU64(), expected.size());
    EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
  }
}

TEST(CubeBlockingNoLift, EquivalentToMintermBlocking) {
  Rng rng(89);
  for (int iter = 0; iter < 60; ++iter) {
    int vars = static_cast<int>(rng.range(2, 8));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 14)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(2, 3)) projection.push_back(v);
    }
    AllSatOptions opts;
    opts.liftModels = false;
    AllSatResult a = mintermBlockingAllSat(cnf, projection);
    AllSatResult b = cubeBlockingAllSat(cnf, projection, {}, opts);
    EXPECT_EQ(a.mintermCount, b.mintermCount);
    EXPECT_EQ(cubesToMinterms(a.cubes, projection.size()),
              cubesToMinterms(b.cubes, projection.size()));
  }
}

TEST(CubeBlockingLifted, FullProjectionWithImplicantShrinking) {
  Rng rng(97);
  for (int iter = 0; iter < 120; ++iter) {
    int vars = static_cast<int>(rng.range(2, 9));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 16)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) projection.push_back(v);

    ModelLifter lifter = [&cnf](const std::vector<lbool>& model) {
      return shrinkModelToImplicant(cnf, model);
    };
    AllSatResult lifted = cubeBlockingAllSat(cnf, projection, lifter);
    AllSatResult reference = mintermBlockingAllSat(cnf, projection);
    EXPECT_EQ(lifted.mintermCount, reference.mintermCount) << "iter " << iter;
    EXPECT_EQ(cubesToMinterms(lifted.cubes, projection.size()),
              cubesToMinterms(reference.cubes, projection.size()));
    // Lifting can only reduce the number of solver calls.
    EXPECT_LE(lifted.cubes.size(), reference.cubes.size());
  }
}

// --- success-driven engine ---------------------------------------------------

CircuitAllSatProblem problemFor(const Netlist& nl, NodeCube objectives) {
  CircuitAllSatProblem p;
  p.netlist = &nl;
  p.objectives = std::move(objectives);
  for (NodeId d : nl.dffs()) p.projectionSources.push_back(d);
  return p;
}

// Full structural + semantic audit of a solution graph against the problem it
// was built from — every fuzz iteration below runs through this.
void expectGraphAuditOk(const SolutionGraph& graph, const CircuitAllSatProblem& p) {
  SolutionGraphAuditOptions options;
  options.problem = &p;
  AuditResult audit = auditSolutionGraph(graph, options);
  EXPECT_TRUE(audit.ok()) << audit.toString();
}

TEST(SuccessDriven, TrivialObjectiveOnSource) {
  Netlist nl = makeCounter(3);
  CircuitAllSatProblem p = problemFor(nl, {{nl.dffs()[0], true}});
  SuccessDrivenResult r = successDrivenAllSat(p);
  // s0 = 1: exactly half of the 8 states.
  EXPECT_EQ(r.summary.mintermCount.toU64(), 4u);
  EXPECT_TRUE(r.summary.complete);
}

TEST(SuccessDriven, UnsatisfiableObjective) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId na = nl.mkNot(a, "na");
  NodeId g = nl.mkAnd(a, na, "g");  // constant 0
  NodeId d = nl.addDff("s0", g);
  nl.markOutput(d, "q");
  CircuitAllSatProblem p;
  p.netlist = &nl;
  p.objectives = {{g, true}};
  p.projectionSources = {d};
  SuccessDrivenResult r = successDrivenAllSat(p);
  EXPECT_TRUE(r.summary.cubes.empty());
  EXPECT_TRUE(r.summary.mintermCount.isZero());
}

TEST(SuccessDriven, ConflictingObjectivesOnConstants) {
  Netlist nl;
  NodeId c = nl.addConst(true, "one");
  NodeId d = nl.addDff("s0", c);
  nl.markOutput(d, "q");
  CircuitAllSatProblem p;
  p.netlist = &nl;
  p.objectives = {{c, false}};
  p.projectionSources = {d};
  SuccessDrivenResult r = successDrivenAllSat(p);
  EXPECT_TRUE(r.summary.mintermCount.isZero());
}

class SuccessDrivenFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SuccessDrivenFuzz, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
  for (int iter = 0; iter < 25; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = static_cast<int>(rng.range(1, 3));
    params.numDffs = static_cast<int>(rng.range(2, 5));
    params.numGates = static_cast<int>(rng.range(8, 30));
    Netlist nl = makeRandomSequential(params);

    // Objectives: required values of 1-2 next-state roots (random polarity,
    // so both SAT and UNSAT instances occur).
    NodeCube objectives;
    int numObj = static_cast<int>(rng.range(1, 2));
    for (int k = 0; k < numObj; ++k) {
      NodeId root = nl.dffData(nl.dffs()[rng.below(nl.dffs().size())]);
      objectives.emplace_back(root, rng.flip());
    }
    CircuitAllSatProblem p = problemFor(nl, objectives);
    std::set<uint64_t> expected = bruteForceCircuit(nl, objectives, p.projectionSources);

    for (bool learning : {true, false}) {
      AllSatOptions opts;
      opts.successLearning = learning;
      SuccessDrivenResult r = successDrivenAllSat(p, opts);
      ASSERT_TRUE(r.summary.complete);
      EXPECT_EQ(cubesToMinterms(r.summary.cubes, p.projectionSources.size()), expected)
          << "seed-group " << GetParam() << " iter " << iter << " learning " << learning;
      EXPECT_EQ(r.summary.mintermCount.toU64(), expected.size());
      // Graph-derived counts must agree with the cube list.
      EXPECT_EQ(r.graph.countPaths().toU64(), r.summary.cubes.size());
      expectGraphAuditOk(r.graph, p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuccessDrivenFuzz, ::testing::Range(0, 8));

TEST(SuccessDriven, AgreesWithMintermEngineOnS27) {
  Netlist nl = makeS27();
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    NodeCube objectives;
    for (NodeId dff : nl.dffs()) {
      if (rng.chance(2, 3)) objectives.emplace_back(nl.dffData(dff), rng.flip());
    }
    CircuitAllSatProblem p = problemFor(nl, objectives);
    SuccessDrivenResult r = successDrivenAllSat(p);
    std::set<uint64_t> expected = bruteForceCircuit(nl, objectives, p.projectionSources);
    EXPECT_EQ(cubesToMinterms(r.summary.cubes, p.projectionSources.size()), expected)
        << "trial " << trial;
  }
}

// Balanced XOR tree over the state bits: parity objectives are the canonical
// success-driven-learning showcase. Once the left subtree is justified one
// way, every one of its (exponentially many) solution leaves faces the
// identical right-subtree subproblem — the first leaf solves it, the rest hit
// the memo.
Netlist makeParityTree(int stateBits) {
  Netlist nl;
  std::vector<NodeId> layer;
  for (int i = 0; i < stateBits; ++i) layer.push_back(nl.addDff("s" + std::to_string(i)));
  std::vector<NodeId> state = layer;
  int gateId = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.mkXor(layer[i], layer[i + 1], "x" + std::to_string(gateId++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  for (NodeId d : state) nl.connectDffData(d, layer[0]);
  nl.markOutput(layer[0], "parity");
  nl.validate();
  return nl;
}

TEST(SuccessDriven, LearningProducesMemoHitsOnXorTrees) {
  Netlist nl = makeParityTree(8);
  NodeId root = nl.outputs()[0];
  CircuitAllSatProblem p = problemFor(nl, {{root, false}});
  SuccessDrivenResult withLearning = successDrivenAllSat(p);
  AllSatOptions off;
  off.successLearning = false;
  SuccessDrivenResult without = successDrivenAllSat(p, off);
  EXPECT_GT(withLearning.summary.stats.memoHits, 0u);
  // Even-parity assignments of 8 bits: exactly half the space.
  EXPECT_EQ(withLearning.summary.mintermCount.toU64(), 128u);
  EXPECT_EQ(without.summary.mintermCount.toU64(), 128u);
  // Learning must shrink the search: fewer decisions and a smaller graph
  // than the learning-free tree.
  EXPECT_LT(withLearning.summary.stats.decisions, without.summary.stats.decisions);
  EXPECT_LT(withLearning.summary.stats.graphNodes, without.summary.stats.graphNodes);
  // Both represent the same 128 solution paths.
  EXPECT_EQ(withLearning.graph.countPaths(), without.graph.countPaths());
}

TEST(SuccessDriven, LinearCarryChainNeedsNoLearning) {
  // A single-bit objective through a carry chain produces a repetition-free
  // search tree: learning finds nothing to reuse and must not change the
  // result.
  Netlist nl = makeCounter(10);
  NodeId root = nl.dffData(nl.dffs()[9]);
  CircuitAllSatProblem p = problemFor(nl, {{root, false}});
  SuccessDrivenResult withLearning = successDrivenAllSat(p);
  AllSatOptions off;
  off.successLearning = false;
  SuccessDrivenResult without = successDrivenAllSat(p, off);
  EXPECT_EQ(withLearning.summary.mintermCount, without.summary.mintermCount);
  EXPECT_EQ(withLearning.summary.stats.decisions, without.summary.stats.decisions);
}

TEST(SuccessDriven, CubesAreSoundOnCounter) {
  // Every enumerated cube, completed arbitrarily, must reach the objectives.
  Netlist nl = makeCounter(5);
  NodeId root0 = nl.dffData(nl.dffs()[0]);
  NodeId root3 = nl.dffData(nl.dffs()[3]);
  NodeCube objectives{{root0, true}, {root3, false}};
  CircuitAllSatProblem p = problemFor(nl, objectives);
  SuccessDrivenResult r = successDrivenAllSat(p);
  std::set<uint64_t> expected = bruteForceCircuit(nl, objectives, p.projectionSources);
  EXPECT_EQ(cubesToMinterms(r.summary.cubes, p.projectionSources.size()), expected);
}

TEST(SuccessDriven, BranchOrdersAgreeOnTheUnion) {
  Rng rng(211);
  for (int iter = 0; iter < 15; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = 2;
    params.numDffs = 4;
    params.numGates = static_cast<int>(rng.range(10, 30));
    Netlist nl = makeRandomSequential(params);
    NodeCube objectives{{nl.dffData(nl.dffs()[0]), rng.flip()}};
    CircuitAllSatProblem p = problemFor(nl, objectives);
    AllSatOptions low;
    AllSatOptions high;
    // Cross-check every hashed memo probe against the exact subproblem key
    // while fuzzing: any 128-bit signature collision aborts the test.
    low.memoCheckExact = true;
    high.memoCheckExact = true;
    high.branchOrder = BranchOrder::kHighestGateFirst;
    SuccessDrivenResult a = successDrivenAllSat(p, low);
    SuccessDrivenResult b = successDrivenAllSat(p, high);
    expectGraphAuditOk(a.graph, p);
    expectGraphAuditOk(b.graph, p);
    EXPECT_EQ(a.summary.mintermCount, b.summary.mintermCount) << "iter " << iter;
    BddManager mgr(static_cast<int>(p.projectionSources.size()));
    EXPECT_EQ(cubesToBdd(mgr, a.summary.cubes), cubesToBdd(mgr, b.summary.cubes));
  }
}

// Stopping exactly at maxCubes must still report complete: the engines now
// decide completeness from the next SAT call (or the next graph path), not
// from having reached the cap.
TEST(MintermBlocking, ExactCapReportsComplete) {
  Cnf cnf(3);  // unconstrained: exactly 8 solutions
  AllSatOptions opts;
  opts.maxCubes = 8;
  AllSatResult r = mintermBlockingAllSat(cnf, {0, 1, 2}, opts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cubes.size(), 8u);
  opts.maxCubes = 7;
  AllSatResult capped = mintermBlockingAllSat(cnf, {0, 1, 2}, opts);
  EXPECT_FALSE(capped.complete);
  EXPECT_EQ(capped.cubes.size(), 7u);
}

TEST(CubeBlockingNoLift, ExactCapReportsComplete) {
  Cnf cnf(3);
  AllSatOptions opts;
  opts.liftModels = false;
  opts.maxCubes = 8;
  AllSatResult r = cubeBlockingAllSat(cnf, {0, 1, 2}, {}, opts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cubes.size(), 8u);
  opts.maxCubes = 7;
  AllSatResult capped = cubeBlockingAllSat(cnf, {0, 1, 2}, {}, opts);
  EXPECT_FALSE(capped.complete);
  EXPECT_EQ(capped.cubes.size(), 7u);
}

TEST(SuccessDriven, ExactCapReportsComplete) {
  Netlist nl = makeParityTree(8);  // 128 solution paths
  CircuitAllSatProblem p = problemFor(nl, {{nl.outputs()[0], false}});
  AllSatOptions opts;
  opts.maxCubes = 128;
  SuccessDrivenResult r = successDrivenAllSat(p, opts);
  EXPECT_TRUE(r.summary.complete);
  EXPECT_EQ(r.summary.cubes.size(), 128u);
  opts.maxCubes = 127;
  SuccessDrivenResult capped = successDrivenAllSat(p, opts);
  EXPECT_FALSE(capped.summary.complete);
  EXPECT_EQ(capped.summary.cubes.size(), 127u);
}

// A per-call conflict budget that trips mid-enumeration must yield a partial
// result with complete = false — not an abort.
TEST(MintermBlocking, ConflictBudgetReturnsPartialResult) {
  Cnf php = testutil::pigeonhole(7);  // far too hard for a 5-conflict budget
  std::vector<Var> projection{0, 1, 2};
  AllSatOptions opts;
  opts.conflictBudget = 5;
  AllSatResult r = mintermBlockingAllSat(php, projection, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.cubes.empty());
  EXPECT_EQ(r.stats.satCalls, 1u);
}

TEST(CubeBlockingNoLift, ConflictBudgetReturnsPartialResult) {
  Cnf php = testutil::pigeonhole(7);
  std::vector<Var> projection{0, 1, 2};
  AllSatOptions opts;
  opts.liftModels = false;
  opts.conflictBudget = 5;
  AllSatResult r = cubeBlockingAllSat(php, projection, {}, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.cubes.empty());
}

// A tiny memo bound forces evictions; evicted subproblems are re-solved, so
// the answer must not change. The exact-key cross-check stays on throughout.
TEST(SuccessDriven, BoundedMemoEvictsAndStaysExact) {
  Netlist nl = makeParityTree(12);
  CircuitAllSatProblem p = problemFor(nl, {{nl.outputs()[0], false}});
  SuccessDrivenResult unbounded = successDrivenAllSat(p);
  AllSatOptions opts;
  opts.maxMemoEntries = 8;
  opts.memoCheckExact = true;
  SuccessDrivenResult bounded = successDrivenAllSat(p, opts);
  expectGraphAuditOk(bounded.graph, p);
  EXPECT_EQ(bounded.summary.mintermCount, unbounded.summary.mintermCount);
  EXPECT_GT(bounded.summary.stats.memoEvictions, 0u);
  EXPECT_LE(bounded.summary.stats.memoEntries, 8u);
  // The bound costs hits (evicted entries are re-solved) but never exactness.
  BddManager mgr(static_cast<int>(p.projectionSources.size()));
  EXPECT_EQ(cubesToBdd(mgr, bounded.summary.cubes), cubesToBdd(mgr, unbounded.summary.cubes));
}

// Hashed memoization must agree with brute force across random circuits with
// the collision cross-check enabled.
TEST(SuccessDriven, HashedMemoMatchesBruteForce) {
  Rng rng(331);
  for (int iter = 0; iter < 25; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = 2;
    params.numDffs = 5;
    params.numGates = static_cast<int>(rng.range(10, 40));
    Netlist nl = makeRandomSequential(params);
    NodeCube objectives{{nl.dffData(nl.dffs()[0]), rng.flip()},
                        {nl.dffData(nl.dffs()[2]), rng.flip()}};
    CircuitAllSatProblem p = problemFor(nl, objectives);
    AllSatOptions opts;
    opts.memoCheckExact = true;
    SuccessDrivenResult r = successDrivenAllSat(p, opts);
    expectGraphAuditOk(r.graph, p);
    std::set<uint64_t> expected = bruteForceCircuit(nl, objectives, p.projectionSources);
    EXPECT_EQ(cubesToMinterms(r.summary.cubes, p.projectionSources.size()), expected)
        << "iter " << iter;
  }
}

// Every engine must export the uniform metrics block consistent with its
// typed stats.
TEST(AllSatMetrics, EnginesExportConsistentMetrics) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  AllSatResult m = mintermBlockingAllSat(cnf, {0, 1, 2});
  EXPECT_EQ(m.metrics.label("engine"), "minterm-blocking");
  EXPECT_EQ(m.metrics.counter("sat.calls"), m.stats.satCalls);
  EXPECT_EQ(m.metrics.counter("blocking.clauses"), m.stats.blockingClauses);

  AllSatOptions noLift;
  noLift.liftModels = false;
  AllSatResult c = cubeBlockingAllSat(cnf, {0, 1, 2}, {}, noLift);
  EXPECT_EQ(c.metrics.label("engine"), "cube-blocking");
  EXPECT_EQ(c.metrics.counter("sat.calls"), c.stats.satCalls);

  Netlist nl = makeParityTree(8);
  CircuitAllSatProblem p = problemFor(nl, {{nl.outputs()[0], false}});
  SuccessDrivenResult sd = successDrivenAllSat(p);
  const Metrics& sm = sd.summary.metrics;
  EXPECT_EQ(sm.label("engine"), "success-driven");
  EXPECT_EQ(sm.counter("memo.hits"), sd.summary.stats.memoHits);
  EXPECT_EQ(sm.counter("memo.misses"), sd.summary.stats.memoMisses);
  EXPECT_EQ(sm.counter("memo.entries"), sd.summary.stats.memoEntries);
  EXPECT_GT(sm.counter("memo.bytes"), 0u);
  const Histogram* h = sm.findHistogram("frontier.size");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), sd.summary.stats.memoMisses);
  // The JSON export must carry the counters.
  std::string json = sm.toJson();
  EXPECT_NE(json.find("\"memo.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"frontier.size\""), std::string::npos);
}

}  // namespace
}  // namespace presat
