// Tests for the serve layer (src/serve/): protocol hardening, cross-query
// cache semantics (bit-identical hits, generational eviction soundness,
// same-key dedup), scheduler fairness, and the server end to end over an
// in-memory transport.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/netlist.hpp"
#include "gen/generators.hpp"
#include "govern/governor.hpp"
#include "parallel/worker_pool.hpp"
#include "preimage/preimage.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/version.hpp"

namespace presat::serve {
namespace {

// --- protocol ---------------------------------------------------------------

ServeError parseExpectFail(const std::string& line, int lineNo = 7) {
  ServeRequest req;
  ServeError err;
  EXPECT_FALSE(parseRequest(line, lineNo, req, err));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.line, lineNo);
  return err;
}

TEST(ServeProtocol, ParsesMinimalPreimageRequest) {
  ServeRequest req;
  ServeError err;
  ASSERT_TRUE(parseRequest(
      R"({"id":"a1","op":"preimage","gen":"counter:4","target":"1xxx"})", 1, req, err))
      << err.message;
  EXPECT_EQ(req.id, "a1");
  EXPECT_EQ(req.op, ServeOp::kPreimage);
  EXPECT_EQ(req.gen, "counter:4");
  EXPECT_EQ(req.target, "1xxx");
  EXPECT_EQ(req.method, "success-driven");  // default
  EXPECT_TRUE(req.cache);
}

TEST(ServeProtocol, RejectsMalformedJsonWithLineNumber) {
  ServeError err = parseExpectFail("not json at all", 42);
  EXPECT_EQ(err.code, "parse");
  EXPECT_EQ(err.line, 42);
}

TEST(ServeProtocol, RejectsOversizedLine) {
  std::string big(kMaxLineBytes + 1, 'x');
  ServeError err = parseExpectFail(big);
  EXPECT_EQ(err.code, "parse");
}

TEST(ServeProtocol, RejectsUnknownField) {
  ServeError err = parseExpectFail(
      R"({"id":"a","op":"preimage","gen":"counter:4","target":"1xxx","tarqet":"oops"})");
  EXPECT_EQ(err.code, "bad_request");
  EXPECT_NE(err.message.find("tarqet"), std::string::npos);
}

TEST(ServeProtocol, RejectsDuplicateKeys) {
  ServeError err = parseExpectFail(R"({"id":"a","id":"b","op":"ping"})");
  EXPECT_EQ(err.code, "parse");
}

TEST(ServeProtocol, RejectsFieldCountBomb) {
  std::string line = R"({"id":"a","op":"ping")";
  for (size_t i = 0; i < kMaxFields + 8; ++i) {
    line += ",\"f" + std::to_string(i) + "\":1";
  }
  line += "}";
  ServeError err = parseExpectFail(line);
  EXPECT_EQ(err.code, "parse");
}

TEST(ServeProtocol, RejectsDepthBomb) {
  ServeRequest req;
  ServeError err;
  std::string line(static_cast<size_t>(kMaxDepth) + 4, '[');
  EXPECT_FALSE(parseRequest(line, 1, req, err));
  EXPECT_EQ(err.code, "parse");
}

TEST(ServeProtocol, RejectsMissingCircuitAndBothCircuits) {
  EXPECT_EQ(parseExpectFail(R"({"id":"a","op":"preimage","target":"1"})").code, "bad_request");
  EXPECT_EQ(parseExpectFail(
                R"({"id":"a","op":"preimage","gen":"counter:4","bench":"x","target":"1"})")
                .code,
            "bad_request");
}

TEST(ServeProtocol, ErrorResponseEchoesIdAndLine) {
  ServeError err{"parse", "bad thing", 3};
  std::string line = errorResponse("q7", err);
  JsonValue v;
  std::string perr;
  ASSERT_TRUE(parseJson(line, v, perr)) << perr;
  ASSERT_NE(v.find("id"), nullptr);
  EXPECT_EQ(v.find("id")->text, "q7");
  EXPECT_EQ(v.find("status")->text, "error");
  const JsonValue* e = v.find("error");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->find("code")->text, "parse");
  EXPECT_EQ(e->find("line")->number, 3.0);
}

TEST(ServeVersion, BuildInfoIsParseableJsonWithRequiredFields) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parseJson(buildInfoJson(), v, err)) << err;
  for (const char* key : {"name", "git", "build_type", "compiler", "audit"}) {
    ASSERT_NE(v.find(key), nullptr) << key;
    EXPECT_EQ(v.find(key)->kind, JsonValue::Kind::kString) << key;
  }
  ASSERT_NE(v.find("faults"), nullptr);
  EXPECT_EQ(v.find("faults")->kind, JsonValue::Kind::kBool);
}

// --- structural hash --------------------------------------------------------

TEST(StructuralHash, IgnoresNamesButSeesStructure) {
  uint64_t counter = netlistStructuralHash(makeCounter(6));
  EXPECT_EQ(counter, netlistStructuralHash(makeCounter(6)));
  EXPECT_NE(counter, netlistStructuralHash(makeCounter(7)));
  EXPECT_NE(counter, netlistStructuralHash(makeGrayCounter(6)));
  EXPECT_NE(counter, 0u);
}

// --- session validation -----------------------------------------------------

TEST(ServeSession, GeneratorSpecValidation) {
  SessionLimits limits;
  Netlist nl;
  std::string err;
  EXPECT_TRUE(buildGeneratorChecked("counter:4", limits, &nl, &err)) << err;
  EXPECT_TRUE(buildGeneratorChecked("traffic", limits, &nl, &err)) << err;
  EXPECT_TRUE(buildGeneratorChecked("arbiter:4", limits, &nl, &err)) << err;
  EXPECT_FALSE(buildGeneratorChecked("counter:0", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("counter:33", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("counter:-3", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("counter:4x", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("arbiter:9", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("lfsr:1", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("traffic:3", limits, &nl, &err));
  EXPECT_FALSE(buildGeneratorChecked("nonsense:4", limits, &nl, &err));
}

TEST(ServeSession, BenchValidationCatchesWhatTheParserWouldAbortOn) {
  SessionLimits limits;
  std::string err;
  const std::string good = "INPUT(a)\nq = DFF(d)\nd = AND(a, q)\nOUTPUT(q)\n";
  EXPECT_TRUE(validateBenchText(good, limits, &err)) << err;

  // Each of these would PRESAT_CHECK-abort inside parseBenchString.
  const char* bad[] = {
      "INPUT(a)\nq = DFF(d)\nd = FROB(a)\n",          // unknown gate
      "INPUT(a)\nq = DFF(a, a)\n",                    // DFF arity
      "INPUT(a)\nINPUT(a)\nq = DFF(a)\n",             // redefinition
      "INPUT(a)\nq = DFF(zzz)\n",                     // undefined signal
      "q = DFF(a)\na = BUF(b)\nb = BUF(a)\n",         // combinational cycle
      "INPUT(a)\nb = AND(a)\n",                       // no DFFs
      "garbage line\n",                               // grammar
  };
  for (const char* text : bad) {
    EXPECT_FALSE(validateBenchText(text, limits, &err)) << text;
  }
  // The validated-good text must actually parse without aborting.
  Netlist nl = parseBenchString(good);
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(ServeSession, TargetCubeParsing) {
  LitVec cube;
  std::string err;
  EXPECT_TRUE(parseTargetCube("1x0-", 4, &cube, &err)) << err;
  EXPECT_EQ(cube.size(), 2u);  // bits 0 and 2 bound
  EXPECT_EQ(cubeToText(cube, 4), "1x0x");
  EXPECT_FALSE(parseTargetCube("1x", 4, &cube, &err));    // wrong width
  EXPECT_FALSE(parseTargetCube("1x0z", 4, &cube, &err));  // bad char
}

// --- cache ------------------------------------------------------------------

CachedCover coldRun(const std::string& gen, const std::string& target) {
  ServeRequest req;
  req.gen = gen;
  req.target = target;
  SessionLimits limits;
  std::string err;
  CircuitContextPtr ctx = buildCircuitContext(req, limits, &err);
  EXPECT_NE(ctx, nullptr) << err;
  ServeCache off(0, nullptr);
  ExecResult result;
  ServeError e = runPreimage(req, ctx, off, nullptr, limits, &result);
  EXPECT_TRUE(e.ok()) << e.message;
  return result.cover;
}

TEST(ServeCacheTest, HitReturnsBitIdenticalCover) {
  CachedCover cold = coldRun("gray:5", "1xxxx");
  ASSERT_EQ(cold.outcome, Outcome::kComplete);

  Governor governor{Budget{}};
  ServeCache cache(1 << 20, &governor);
  CacheKey key{netlistStructuralHash(makeGrayCounter(5)), "1xxxx", "success-driven", false,
               false};
  CachedCover payload;
  ASSERT_EQ(cache.acquire(key, payload), CacheLookup::kMiss);
  cache.publish(key, cold);

  CachedCover hit;
  ASSERT_EQ(cache.acquire(key, hit), CacheLookup::kHit);
  EXPECT_EQ(hit.cubes, cold.cubes);  // verbatim, order included
  EXPECT_EQ(hit.count.toDecimal(), cold.count.toDecimal());
  EXPECT_EQ(hit.width, cold.width);
  EXPECT_EQ(governor.trackedBytes(), cache.bytes());
}

TEST(ServeCacheTest, PartialResultsAreNotRetained) {
  ServeCache cache(1 << 20, nullptr);
  CacheKey key{1, "1", "chrono", false, false};
  CachedCover payload;
  ASSERT_EQ(cache.acquire(key, payload), CacheLookup::kMiss);
  CachedCover partial;
  partial.outcome = Outcome::kDeadline;
  partial.width = 1;
  cache.publish(key, partial);  // routes to abandon
  EXPECT_EQ(cache.entries(), 0u);
  ASSERT_EQ(cache.acquire(key, payload), CacheLookup::kMiss);  // still cold
  cache.abandon(key, partial);
}

TEST(ServeCacheTest, GenerationalEvictionStaysWithinBudgetAndReleasesLedger) {
  Governor governor{Budget{}};
  ServeCache cache(2048, &governor);
  CachedCover cover;
  cover.width = 8;
  cover.cubes.assign(16, LitVec{mkLit(0, false), mkLit(1, true)});
  cover.count = BigUint(1);
  for (int i = 0; i < 32; ++i) {
    CacheKey key{static_cast<uint64_t>(i) + 1, "t", "chrono", false, false};
    CachedCover scratch;
    ASSERT_EQ(cache.acquire(key, scratch), CacheLookup::kMiss);
    cache.publish(key, cover);
  }
  // publish() sheds to maxBytes/2 whenever it overflows, so the steady state
  // is bounded and the ledger tracks it exactly.
  EXPECT_LE(cache.bytes(), cache.maxBytes());
  EXPECT_GT(cache.entries(), 0u);
  EXPECT_EQ(governor.trackedBytes(), cache.bytes());

  // Survivors still serve sound, bit-identical payloads.
  bool sawHit = false;
  for (int i = 0; i < 32; ++i) {
    CacheKey key{static_cast<uint64_t>(i) + 1, "t", "chrono", false, false};
    CachedCover got;
    if (cache.acquire(key, got) == CacheLookup::kHit) {
      sawHit = true;
      EXPECT_EQ(got.cubes, cover.cubes);
    } else {
      cache.abandon(key, {});  // we became the leader; clean up
    }
  }
  EXPECT_TRUE(sawHit);

  // Full shed returns every byte to the governor.
  cache.shed(0);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(governor.trackedBytes(), 0u);
}

TEST(ServeCacheTest, ShedNeverEvictsInflightEntries) {
  ServeCache cache(1 << 20, nullptr);
  CacheKey key{9, "t", "chrono", false, false};
  CachedCover scratch;
  ASSERT_EQ(cache.acquire(key, scratch), CacheLookup::kMiss);  // in-flight leader
  EXPECT_EQ(cache.shed(0), 0u);
  CachedCover cover;
  cover.width = 1;
  cover.count = BigUint(1);
  cover.cubes = {LitVec{mkLit(0, false)}};
  cache.publish(key, cover);  // entry survived the shed; publish still lands
  CachedCover got;
  EXPECT_EQ(cache.acquire(key, got), CacheLookup::kHit);
  EXPECT_EQ(got.cubes, cover.cubes);
}

TEST(ServeCacheTest, ConcurrentSameKeyRequestsDedupToOneComputation) {
  ServeCache cache(1 << 20, nullptr);
  CacheKey key{7, "1xx", "success-driven", false, false};
  CachedCover scratch;
  ASSERT_EQ(cache.acquire(key, scratch), CacheLookup::kMiss);  // main = leader

  constexpr int kFollowers = 4;
  ServicePool pool;
  pool.start(kFollowers);
  std::atomic<int> dedups{0};
  std::atomic<int> started{0};
  CachedCover expect;
  expect.width = 3;
  expect.count = BigUint(2);
  expect.cubes = {LitVec{mkLit(0, false)}, LitVec{mkLit(1, true)}};
  for (int i = 0; i < kFollowers; ++i) {
    pool.submit([&] {
      started.fetch_add(1);
      CachedCover got;
      CacheLookup lk = cache.acquire(key, got);
      if (lk == CacheLookup::kDedup && got.cubes == expect.cubes) dedups.fetch_add(1);
    });
  }
  // Wait until every follower is parked on the in-flight entry (or at least
  // running), then publish once.
  while (started.load() < kFollowers) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.publish(key, expect);
  pool.quiesce();
  pool.stop();
  EXPECT_EQ(dedups.load(), kFollowers);
}

// --- scheduler fairness -----------------------------------------------------

TEST(SchedulerTest, InteractiveIsNotStarvedByBatchBacklog) {
  ServicePool pool;
  pool.start(1);  // single lane: ordering is fully observable
  Scheduler sched(pool, 64);

  std::atomic<bool> gate{false};
  std::vector<std::string> order;
  Mutex orderMu;
  auto record = [&](const char* tag) {
    MutexLock lock(orderMu);
    order.push_back(tag);
  };
  // Blocker occupies the worker while we stack the queue behind it.
  ASSERT_TRUE(sched.admit(false, [&] {
    while (!gate.load()) std::this_thread::yield();
  }));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sched.admit(false, [&] { record("batch"); }));
  }
  ASSERT_TRUE(sched.admit(true, [&] { record("interactive"); }));
  gate.store(true);
  pool.quiesce();
  pool.stop();

  ASSERT_EQ(order.size(), 6u);
  // Round-robin between classes: the interactive job is served no later than
  // second, despite five batch jobs queued ahead of it.
  bool inFirstTwo = order[0] == "interactive" || order[1] == "interactive";
  EXPECT_TRUE(inFirstTwo) << "interactive ran at position "
                          << (std::find(order.begin(), order.end(), "interactive") -
                              order.begin());
}

TEST(SchedulerTest, BoundedQueueRejectsWhenFull) {
  ServicePool pool;
  pool.start(1);
  Scheduler sched(pool, 2);
  std::atomic<bool> gate{false};
  std::atomic<bool> running{false};
  ASSERT_TRUE(sched.admit(false, [&] {
    running.store(true);
    while (!gate.load()) std::this_thread::yield();
  }));
  // Wait until the single worker has DEQUEUED the blocker, so the queue is
  // empty and capacity is exactly 2 for what follows.
  while (!running.load()) std::this_thread::yield();
  EXPECT_TRUE(sched.admit(false, [] {}));
  EXPECT_TRUE(sched.admit(false, [] {}));
  EXPECT_FALSE(sched.admit(false, [] {}));  // full: structured backpressure
  EXPECT_EQ(sched.queued(), 2u);
  gate.store(true);
  pool.quiesce();
  pool.stop();
  Metrics m;
  sched.exportMetrics(m);
  EXPECT_EQ(m.counter("serve.rejects.overload"), 1u);
  EXPECT_EQ(m.counter("serve.admitted"), 3u);
}

// --- server end to end ------------------------------------------------------

class StringTransport : public LineTransport {
 public:
  explicit StringTransport(std::vector<std::string> lines) : lines_(std::move(lines)) {}

  bool readLine(std::string* line) override {
    if (next_ >= lines_.size()) return false;
    *line = lines_[next_++];
    return true;
  }

  // Serialized by the server's write lock.
  void writeLine(const std::string& line) override { out.push_back(line); }

  std::vector<std::string> out;

 private:
  std::vector<std::string> lines_;
  size_t next_ = 0;
};

// Finds the response line with the given id; fails the test if absent.
JsonValue findResponse(const std::vector<std::string>& lines, const std::string& id) {
  for (const std::string& line : lines) {
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(line, v, err)) << line;
    const JsonValue* idField = v.find("id");
    if (idField != nullptr && idField->text == id) return v;
  }
  ADD_FAILURE() << "no response with id " << id;
  return {};
}

TEST(ServeServerTest, EndToEndMixedScript) {
  ServerConfig config;
  config.workers = 4;
  Server server(config);
  StringTransport transport({
      R"({"id":"p","op":"ping"})",
      R"({"id":"v","op":"version"})",
      R"({"id":"r1","op":"preimage","gen":"counter:4","target":"1xxx"})",
      R"({"id":"r2","op":"preimage","gen":"counter:4","target":"1xxx"})",
      R"({"id":"r3","op":"preimage","gen":"counter:4","target":"1xxx","method":"bdd","cache":false})",
      "this is not json",
      R"({"id":"dup","op":"preimage","gen":"traffic","target":"xxxx"})",
      R"({"id":"c","op":"cancel","target_id":"no-such"})",
      R"({"id":"q","op":"shutdown"})",
  });
  EXPECT_EQ(server.serve(transport), 0);

  // Banner first, shutdown ack last (the drain barrier).
  ASSERT_GE(transport.out.size(), 3u);
  EXPECT_NE(transport.out.front().find("\"hello\""), std::string::npos);
  JsonValue last;
  std::string perr;
  ASSERT_TRUE(parseJson(transport.out.back(), last, perr));
  EXPECT_EQ(last.find("id")->text, "q");

  EXPECT_EQ(findResponse(transport.out, "p").find("status")->text, "ok");
  EXPECT_NE(findResponse(transport.out, "v").find("version"), nullptr);

  JsonValue r1 = findResponse(transport.out, "r1");
  JsonValue r2 = findResponse(transport.out, "r2");
  JsonValue r3 = findResponse(transport.out, "r3");
  for (const JsonValue* r : {&r1, &r2, &r3}) {
    EXPECT_EQ(r->find("status")->text, "ok");
    EXPECT_EQ(r->find("outcome")->text, "complete");
    EXPECT_EQ(r->find("count")->text, "16");
  }
  // Same key: r1/r2 share one computation (one ran cold, the other hit or
  // deduped) and return identical cube arrays.
  ASSERT_NE(r1.find("cubes"), nullptr);
  ASSERT_NE(r2.find("cubes"), nullptr);
  ASSERT_EQ(r1.find("cubes")->items.size(), r2.find("cubes")->items.size());
  for (size_t i = 0; i < r1.find("cubes")->items.size(); ++i) {
    EXPECT_EQ(r1.find("cubes")->items[i].text, r2.find("cubes")->items[i].text);
  }
  EXPECT_EQ(r3.find("cache")->text, "off");

  EXPECT_EQ(findResponse(transport.out, "dup").find("status")->text, "ok");
  EXPECT_EQ(findResponse(transport.out, "c").find("cancelled")->boolean, false);

  // The parse error carries its 1-based line number (6th request line).
  bool sawParseError = false;
  for (const std::string& line : transport.out) {
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(line, v, err));
    const JsonValue* e = v.find("error");
    if (e != nullptr && e->find("code")->text == "parse") {
      sawParseError = true;
      EXPECT_EQ(e->find("line")->number, 6.0);
    }
  }
  EXPECT_TRUE(sawParseError);

  // Exactly one cold computation for the r1/r2 pair (the second was a hit or
  // a dedup); "dup" is the only other cacheable computation.
  Metrics m;
  server.exportMetrics(m);
  EXPECT_EQ(m.counter("serve.cache.misses"), 2u);
  EXPECT_EQ(m.counter("serve.cache.hits") + m.counter("serve.cache.dedups"), 1u);
  EXPECT_EQ(m.counter("serve.errors.parse"), 1u);
}

TEST(ServeServerTest, SameIdConcurrentlyInFlightIsRejected) {
  // A slow first request keeps the id in flight while the duplicate arrives.
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  StringTransport transport({
      R"({"id":"dup","op":"preimage","gen":"gray:12","target":"xxxxxxxxxxxx","method":"minterm-blocking","timeout_ms":10000})",
      R"({"id":"dup","op":"preimage","gen":"counter:2","target":"xx"})",
      R"({"id":"q","op":"shutdown"})",
  });
  EXPECT_EQ(server.serve(transport), 0);
  bool sawDuplicateError = false;
  for (const std::string& line : transport.out) {
    JsonValue v;
    std::string err;
    // The request-side parser caps documents at kMaxFields; the slow
    // request's big cube array legitimately exceeds that, so skip it.
    if (!parseJson(line, v, err)) continue;
    const JsonValue* e = v.find("error");
    if (e != nullptr && e->find("message")->text.find("already in flight") != std::string::npos) {
      sawDuplicateError = true;
    }
  }
  EXPECT_TRUE(sawDuplicateError);
}

TEST(ServeServerTest, BudgetedRequestDegradesToSoundPartial) {
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  // An 8-cube cap on a 1024-minterm enumeration: must stop early, answer
  // status ok with a partial outcome, and stay up for the next request.
  StringTransport transport({
      R"({"id":"tiny","op":"preimage","gen":"gray:10","target":"xxxxxxxxxx","method":"minterm-blocking","max_cubes":8,"cache":false})",
      R"({"id":"after","op":"preimage","gen":"counter:3","target":"1xx"})",
      R"({"id":"q","op":"shutdown"})",
  });
  EXPECT_EQ(server.serve(transport), 0);
  JsonValue tiny = findResponse(transport.out, "tiny");
  EXPECT_EQ(tiny.find("status")->text, "ok");
  EXPECT_EQ(tiny.find("complete")->boolean, false);
  EXPECT_NE(tiny.find("outcome")->text, "complete");
  JsonValue after = findResponse(transport.out, "after");
  EXPECT_EQ(after.find("status")->text, "ok");
  EXPECT_EQ(after.find("outcome")->text, "complete");
}

TEST(ServeServerTest, OverloadAnswersStructuredError) {
  ServerConfig config;
  config.workers = 1;
  config.queueDepth = 1;
  Server server(config);
  // One slow request to occupy the worker + queued requests beyond depth.
  std::vector<std::string> lines = {
      R"({"id":"slow","op":"preimage","gen":"gray:12","target":"xxxxxxxxxxxx","method":"minterm-blocking","timeout_ms":5000,"cache":false})",
  };
  for (int i = 0; i < 8; ++i) {
    lines.push_back(R"({"id":"f)" + std::to_string(i) +
                    R"(","op":"preimage","gen":"counter:2","target":"xx"})");
  }
  lines.push_back(R"({"id":"q","op":"shutdown"})");
  StringTransport transport(lines);
  EXPECT_EQ(server.serve(transport), 0);
  int overloaded = 0;
  for (const std::string& line : transport.out) {
    JsonValue v;
    std::string err;
    if (!parseJson(line, v, err)) continue;  // the slow run's big cube array
    const JsonValue* e = v.find("error");
    if (e != nullptr && e->find("code")->text == "overloaded") ++overloaded;
  }
  EXPECT_GT(overloaded, 0);
}

// --- graceful drain (SIGTERM/SIGINT path) -----------------------------------

// Delivers `lines`, then raises the drain flag exactly the way the signal
// handler does and reports end-of-input — the in-process stand-in for
// "SIGTERM arrived while requests were queued".
class DrainingTransport : public StringTransport {
 public:
  explicit DrainingTransport(std::vector<std::string> lines)
      : StringTransport(std::move(lines)) {}

  bool readLine(std::string* line) override {
    if (StringTransport::readLine(line)) return true;
    Server::requestDrain();
    return false;
  }
};

class ServeDrainTest : public ::testing::Test {
 protected:
  void SetUp() override { Server::resetDrainForTest(); }
  void TearDown() override { Server::resetDrainForTest(); }
};

TEST_F(ServeDrainTest, DrainFinishesInFlightAndAcksLast) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  // No shutdown op in the script: the drain flag is the only stop signal.
  DrainingTransport transport({
      R"({"id":"w1","op":"preimage","gen":"counter:6","target":"1xxxxx"})",
      R"({"id":"w2","op":"preimage","gen":"lfsr:6","target":"x1xxx0"})",
  });
  EXPECT_EQ(server.serve(transport), 0);

  // Both answers were flushed complete — a drain loses no work...
  for (const char* id : {"w1", "w2"}) {
    JsonValue r = findResponse(transport.out, id);
    EXPECT_EQ(r.find("status")->text, "ok") << id;
    EXPECT_EQ(r.find("outcome")->text, "complete") << id;
  }
  // ...and the final line is the id-less drain ack, the client's barrier
  // that no further responses follow.
  JsonValue last;
  std::string err;
  ASSERT_TRUE(parseJson(transport.out.back(), last, err));
  EXPECT_EQ(last.find("op")->text, "drain");
  EXPECT_EQ(last.find("status")->text, "ok");
  EXPECT_EQ(last.find("id"), nullptr);
}

TEST_F(ServeDrainTest, EofWithoutDrainCancelsInsteadOfAcking) {
  // Plain EOF (client died): no drain ack may be emitted; the server just
  // stops. Contrast with the drain test above.
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  StringTransport transport({
      R"({"id":"w","op":"preimage","gen":"counter:4","target":"1xxx"})",
  });
  EXPECT_EQ(server.serve(transport), 0);
  for (const std::string& line : transport.out) {
    EXPECT_EQ(line.find("\"op\":\"drain\""), std::string::npos) << line;
  }
}

// --- certificate emission over the wire -------------------------------------

TEST(ServeServerTest, CertRequestReturnsVerifiableFieldAndCachesIt) {
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  StringTransport transport({
      // Cold miss without a cert, then a hit that upgrades the cached entry,
      // then a repeat that replays the upgraded payload.
      R"({"id":"plain","op":"preimage","gen":"counter:4","target":"1x0x"})",
      R"({"id":"c1","op":"preimage","gen":"counter:4","target":"1x0x","cert":true})",
      R"({"id":"c2","op":"preimage","gen":"counter:4","target":"1x0x","cert":true})",
      R"({"id":"q","op":"shutdown"})",
  });
  EXPECT_EQ(server.serve(transport), 0);

  EXPECT_EQ(findResponse(transport.out, "plain").find("cert"), nullptr);
  JsonValue c1 = findResponse(transport.out, "c1");
  JsonValue c2 = findResponse(transport.out, "c2");
  for (const JsonValue* r : {&c1, &c2}) {
    EXPECT_EQ(r->find("status")->text, "ok");
    ASSERT_NE(r->find("cert"), nullptr);
    const std::string& cert = r->find("cert")->text;
    EXPECT_NE(cert.find("p presat-cert 1"), std::string::npos);
    EXPECT_NE(cert.find("h outcome complete"), std::string::npos);
    EXPECT_NE(cert.find("h end"), std::string::npos);
  }
  // The upgrade recomputed once; the second cert request replayed from cache.
  EXPECT_EQ(c1.find("cert")->text, c2.find("cert")->text);
  EXPECT_EQ(c2.find("cache")->text, "hit");
}

}  // namespace
}  // namespace presat::serve
