// Backward reachability tests: depth semantics, fixpoint detection, and
// cross-method agreement against explicit graph search on the state space.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "base/rng.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/reachability.hpp"

namespace presat {
namespace {

// Explicit BFS over the reversed state graph.
std::set<uint64_t> bfsBackward(const TransitionSystem& ts, const std::set<uint64_t>& target,
                               int maxDepth) {
  int n = ts.numStateBits();
  int m = ts.numInputs();
  EXPECT_LE(n + m, 18);
  // Forward edges.
  std::vector<std::set<uint64_t>> predecessors(1ull << n);
  for (uint64_t s = 0; s < (1ull << n); ++s) {
    std::vector<bool> state(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    for (uint64_t x = 0; x < (1ull << m); ++x) {
      std::vector<bool> inputs(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) inputs[static_cast<size_t>(i)] = (x >> i) & 1;
      std::vector<bool> next = ts.step(state, inputs);
      uint64_t t = 0;
      for (int i = 0; i < n; ++i) {
        if (next[static_cast<size_t>(i)]) t |= 1ull << i;
      }
      predecessors[t].insert(s);
    }
  }
  std::set<uint64_t> reached = target;
  std::set<uint64_t> frontier = target;
  for (int d = 0; d < maxDepth && !frontier.empty(); ++d) {
    std::set<uint64_t> next;
    for (uint64_t t : frontier) {
      for (uint64_t p : predecessors[t]) {
        if (!reached.count(p)) next.insert(p);
      }
    }
    reached.insert(next.begin(), next.end());
    frontier = std::move(next);
  }
  return reached;
}

std::set<uint64_t> toMinterms(const StateSet& set) {
  std::set<uint64_t> result;
  for (uint64_t s = 0; s < (1ull << set.numStateBits); ++s) {
    std::vector<bool> state(static_cast<size_t>(set.numStateBits));
    for (int i = 0; i < set.numStateBits; ++i) state[static_cast<size_t>(i)] = (s >> i) & 1;
    if (set.contains(state)) result.insert(s);
  }
  return result;
}

TEST(Reachability, CounterBackwardFromZero) {
  // Backward reachability from state 0: depth k adds state 2^n - k (counting
  // down predecessors) while every state self-loops with en=0.
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(4, 0);
  ReachabilityResult r =
      backwardReach(ts, target, 3, PreimageMethod::kSuccessDriven);
  ASSERT_EQ(r.steps.size(), 3u);
  EXPECT_EQ(r.steps[0].totalStates.toU64(), 2u);  // {0, 15}
  EXPECT_EQ(r.steps[1].totalStates.toU64(), 3u);  // + {14}
  EXPECT_EQ(r.steps[2].totalStates.toU64(), 4u);  // + {13}
  EXPECT_EQ(r.steps[2].newStates.toU64(), 1u);
  EXPECT_FALSE(r.fixpoint);
}

TEST(Reachability, CounterClosesAtFullDepth) {
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(3, 0);
  ReachabilityResult r = backwardReach(ts, target, 20, PreimageMethod::kBdd);
  EXPECT_TRUE(r.fixpoint);
  // 7 productive steps close the 8-state ring, plus one empty step that
  // certifies the fixpoint.
  EXPECT_EQ(r.steps.size(), 8u);
  EXPECT_EQ(r.steps.back().newStates.toU64(), 0u);
  EXPECT_EQ(toMinterms(r.reached).size(), 8u);
}

TEST(Reachability, FixpointOnClosedSet) {
  // The whole space is trivially closed under preimage.
  Netlist nl = makeCounter(3);
  TransitionSystem ts(nl);
  ReachabilityResult r = backwardReach(ts, StateSet::all(3), 5, PreimageMethod::kBdd);
  EXPECT_TRUE(r.fixpoint);
  ASSERT_GE(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].newStates.toU64(), 0u);
}

class ReachabilityFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ReachabilityFuzz, MatchesExplicitBfs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 211 + 3);
  for (int iter = 0; iter < 6; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = 2;
    params.numDffs = static_cast<int>(rng.range(2, 4));
    params.numGates = static_cast<int>(rng.range(10, 30));
    Netlist nl = makeRandomSequential(params);
    TransitionSystem ts(nl);

    uint64_t targetState = rng.below(1ull << ts.numStateBits());
    StateSet target = StateSet::fromMinterm(ts.numStateBits(), targetState);
    int depth = static_cast<int>(rng.range(1, 4));
    std::set<uint64_t> expected = bfsBackward(ts, {targetState}, depth);

    for (PreimageMethod method :
         {PreimageMethod::kSuccessDriven, PreimageMethod::kCubeBlockingLifted,
          PreimageMethod::kBdd}) {
      ReachabilityResult r = backwardReach(ts, target, depth, method);
      EXPECT_EQ(toMinterms(r.reached), expected)
          << preimageMethodName(method) << " group " << GetParam() << " iter " << iter
          << " depth " << depth;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityFuzz, ::testing::Range(0, 6));

TEST(Reachability, S27FullBackwardClosure) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromMinterm(3, 0b000);
  ReachabilityResult sat = backwardReach(ts, target, 10, PreimageMethod::kSuccessDriven);
  ReachabilityResult bdd = backwardReach(ts, target, 10, PreimageMethod::kBdd);
  EXPECT_TRUE(sameStates(sat.reached, bdd.reached));
  EXPECT_EQ(sat.fixpoint, bdd.fixpoint);
  std::set<uint64_t> expected = bfsBackward(ts, {0}, 10);
  EXPECT_EQ(toMinterms(sat.reached), expected);
}

TEST(Reachability, StepsRecordMonotoneTotals) {
  Netlist nl = makeTrafficLight();
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromCube(4, {mkLit(0), mkLit(1)});  // farm yellow
  ReachabilityResult r = backwardReach(ts, target, 6, PreimageMethod::kCubeBlockingLifted);
  BigUint prev(0);
  for (const ReachabilityStep& step : r.steps) {
    EXPECT_GE(step.totalStates, prev);
    prev = step.totalStates;
  }
}

}  // namespace
}  // namespace presat
