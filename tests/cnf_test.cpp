// Tests for literal encoding, CNF containers, DIMACS I/O, and the
// preprocessing simplifier.
#include <gtest/gtest.h>

#include <sstream>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "cnf/cnf.hpp"
#include "cnf/dimacs.hpp"
#include "cnf/simplify.hpp"
#include "sat/dpll.hpp"

namespace presat {
namespace {

TEST(Lit, EncodingRoundTrip) {
  Lit a = mkLit(3);
  EXPECT_EQ(a.var(), 3);
  EXPECT_FALSE(a.sign());
  Lit na = ~a;
  EXPECT_EQ(na.var(), 3);
  EXPECT_TRUE(na.sign());
  EXPECT_EQ(~na, a);
  EXPECT_EQ(a.toDimacs(), 4);
  EXPECT_EQ(na.toDimacs(), -4);
  EXPECT_EQ(Lit::fromDimacs(4), a);
  EXPECT_EQ(Lit::fromDimacs(-4), na);
}

TEST(Lit, XorWithBool) {
  Lit a = mkLit(5);
  EXPECT_EQ(a ^ true, a);
  EXPECT_EQ(a ^ false, ~a);
}

TEST(Lbool, ThreeValuedXor) {
  EXPECT_EQ(l_True ^ true, l_False);
  EXPECT_EQ(l_False ^ true, l_True);
  EXPECT_EQ(l_Undef ^ true, l_Undef);
  EXPECT_EQ(l_True ^ false, l_True);
  EXPECT_TRUE((l_Undef ^ true).isUndef());
}

TEST(Cnf, BuildAndEvaluate) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addBinary(~mkLit(1), mkLit(2));
  EXPECT_EQ(cnf.numClauses(), 2u);
  EXPECT_EQ(cnf.numLiterals(), 4u);
  EXPECT_TRUE(cnf.evaluate(std::vector<bool>{true, false, false}));
  EXPECT_TRUE(cnf.evaluate(std::vector<bool>{false, true, true}));
  EXPECT_FALSE(cnf.evaluate(std::vector<bool>{false, false, true}));
  EXPECT_FALSE(cnf.evaluate(std::vector<bool>{false, true, false}));
}

TEST(Cnf, ThreeValuedEvaluate) {
  Cnf cnf(2);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<lbool> v{l_Undef, l_Undef};
  EXPECT_TRUE(cnf.evaluate(v).isUndef());
  v[0] = l_True;
  EXPECT_TRUE(cnf.evaluate(v).isTrue());
  v[0] = l_False;
  EXPECT_TRUE(cnf.evaluate(v).isUndef());
  v[1] = l_False;
  EXPECT_TRUE(cnf.evaluate(v).isFalse());
}

TEST(Dimacs, ParseBasic) {
  DimacsFile f = parseDimacsString(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  EXPECT_EQ(f.cnf.numVars(), 3);
  ASSERT_EQ(f.cnf.numClauses(), 2u);
  EXPECT_EQ(f.cnf.clause(0), (Clause{mkLit(0), ~mkLit(1)}));
  EXPECT_EQ(f.cnf.clause(1), (Clause{mkLit(1), mkLit(2)}));
  EXPECT_FALSE(f.projection.has_value());
}

TEST(Dimacs, ParseProjectionExtension) {
  DimacsFile f = parseDimacsString(
      "c proj 1 3\n"
      "p cnf 3 1\n"
      "1 2 3 0\n");
  ASSERT_TRUE(f.projection.has_value());
  EXPECT_EQ(*f.projection, (std::vector<Var>{0, 2}));
}

TEST(Dimacs, ClauseSpanningLines) {
  DimacsFile f = parseDimacsString("p cnf 4 1\n1 2\n3 4 0\n");
  ASSERT_EQ(f.cnf.numClauses(), 1u);
  EXPECT_EQ(f.cnf.clause(0).size(), 4u);
}

TEST(Dimacs, WriteParseRoundTrip) {
  Rng rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    Cnf cnf(static_cast<int>(rng.range(1, 10)));
    int clauses = static_cast<int>(rng.range(0, 15));
    for (int i = 0; i < clauses; ++i) {
      Clause c;
      int len = static_cast<int>(rng.range(1, 4));
      for (int j = 0; j < len; ++j) {
        c.push_back(mkLit(static_cast<Var>(rng.below(static_cast<uint64_t>(cnf.numVars()))),
                          rng.flip()));
      }
      cnf.addClause(c);
    }
    DimacsFile back = parseDimacsString(toDimacsString(cnf));
    EXPECT_EQ(back.cnf.numVars(), cnf.numVars());
    ASSERT_EQ(back.cnf.numClauses(), cnf.numClauses());
    for (size_t i = 0; i < cnf.numClauses(); ++i) EXPECT_EQ(back.cnf.clause(i), cnf.clause(i));
  }
}

TEST(Dimacs, ProjectionRoundTrip) {
  Cnf cnf(5);
  cnf.addTernary(mkLit(0), mkLit(2), ~mkLit(4));
  std::vector<Var> projection{0, 3, 4};
  DimacsFile back = parseDimacsString(toDimacsString(cnf, &projection));
  ASSERT_TRUE(back.projection.has_value());
  EXPECT_EQ(*back.projection, projection);
  EXPECT_EQ(back.cnf.numClauses(), 1u);
}

TEST(Types, ToStringFormats) {
  EXPECT_EQ(toString(mkLit(3)), "x3");
  EXPECT_EQ(toString(~mkLit(3)), "~x3");
  EXPECT_EQ(toString(kUndefLit), "<undef>");
  EXPECT_EQ(toString(LitVec{mkLit(0), ~mkLit(1)}), "(x0 ~x1)");
}

TEST(Simplify, PropagatesUnits) {
  Cnf cnf(3);
  cnf.addUnit(mkLit(0));
  cnf.addBinary(~mkLit(0), mkLit(1));
  cnf.addTernary(~mkLit(1), ~mkLit(0), mkLit(2));
  SimplifyResult r = simplify(cnf);
  EXPECT_FALSE(r.unsat);
  EXPECT_TRUE(r.forced[0].isTrue());
  EXPECT_TRUE(r.forced[1].isTrue());
  EXPECT_TRUE(r.forced[2].isTrue());
}

TEST(Simplify, DetectsConflict) {
  Cnf cnf(1);
  cnf.addUnit(mkLit(0));
  cnf.addUnit(~mkLit(0));
  EXPECT_TRUE(simplify(cnf).unsat);
  EXPECT_FALSE(propagateUnits(cnf).has_value());
}

TEST(Simplify, DropsTautologies) {
  Cnf cnf(2);
  cnf.addTernary(mkLit(0), ~mkLit(0), mkLit(1));
  SimplifyResult r = simplify(cnf);
  EXPECT_EQ(r.simplified.numClauses(), 0u);
}

// Property: simplification preserves the model set exactly.
TEST(SimplifyProperty, PreservesModels) {
  Rng rng(19);
  for (int iter = 0; iter < 200; ++iter) {
    int vars = static_cast<int>(rng.range(1, 8));
    Cnf cnf(vars);
    int clauses = static_cast<int>(rng.range(1, 12));
    for (int i = 0; i < clauses; ++i) {
      Clause c;
      int len = static_cast<int>(rng.range(1, 3));
      for (int j = 0; j < len; ++j)
        c.push_back(mkLit(static_cast<Var>(rng.below(static_cast<uint64_t>(vars))), rng.flip()));
      cnf.addClause(c);
    }
    SimplifyResult r = simplify(cnf);
    std::vector<bool> assignment(static_cast<size_t>(vars));
    for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
      for (Var v = 0; v < vars; ++v) assignment[static_cast<size_t>(v)] = (bits >> v) & 1;
      bool original = cnf.evaluate(assignment);
      bool simplified = r.unsat ? false : r.simplified.evaluate(assignment);
      EXPECT_EQ(original, simplified) << "iter " << iter << " bits " << bits;
    }
  }
}

// Malformed DIMACS must abort with a clear message rather than flow a bad
// header or literal into Cnf construction.
TEST(DimacsDeath, RejectsNegativeVarCount) {
  EXPECT_DEATH(parseDimacsString("p cnf -3 1\n1 0\n"), "non-positive variable count");
}

TEST(DimacsDeath, RejectsZeroVarCount) {
  EXPECT_DEATH(parseDimacsString("p cnf 0 0\n"), "non-positive variable count");
}

TEST(DimacsDeath, RejectsNegativeClauseCount) {
  EXPECT_DEATH(parseDimacsString("p cnf 3 -1\n1 0\n"), "negative clause count");
}

TEST(DimacsDeath, RejectsGarbageHeader) {
  EXPECT_DEATH(parseDimacsString("p cnf three two\n"), "bad 'p cnf' header");
}

TEST(DimacsDeath, RejectsDuplicateHeader) {
  EXPECT_DEATH(parseDimacsString("p cnf 2 1\np cnf 2 1\n1 0\n"), "duplicate 'p cnf' header");
}

TEST(DimacsDeath, RejectsOversizedLiteral) {
  EXPECT_DEATH(parseDimacsString("p cnf 2 1\n7 0\n"), "exceeds declared variable count");
  // A literal past INT32 range must not wrap into a valid variable.
  EXPECT_DEATH(parseDimacsString("p cnf 2 1\n-99999999999 0\n"),
               "exceeds declared variable count");
}

TEST(DimacsDeath, RejectsClauseBeforeHeader) {
  EXPECT_DEATH(parseDimacsString("1 2 0\np cnf 2 1\n1 2 0\n"), "clause before 'p cnf' header");
}

TEST(DimacsDeath, RejectsNonDimacsLines) {
  // Silently skipping unparsable lines would turn e.g. a .bench netlist into
  // an empty (trivially SAT) formula.
  EXPECT_DEATH(parseDimacsString("INPUT(G0)\nOUTPUT(G1)\n"), "unparsable DIMACS line");
  EXPECT_DEATH(parseDimacsString("p cnf 2 1\n1 2 0 junk\n"), "unparsable DIMACS line");
}

TEST(Dimacs, AcceptsSatlibPercentTerminator) {
  DimacsFile f = parseDimacsString("p cnf 2 1\n1 2 0\n%\n0\n");
  EXPECT_EQ(f.cnf.numClauses(), 1u);
}

TEST(DimacsDeath, RejectsUnterminatedClause) {
  EXPECT_DEATH(parseDimacsString("p cnf 2 1\n1 2\n"), "unterminated clause");
}

TEST(DimacsDeath, RejectsClauseCountMismatch) {
  EXPECT_DEATH(parseDimacsString("p cnf 2 2\n1 2 0\n"), "clause count mismatch");
}

}  // namespace
}  // namespace presat
