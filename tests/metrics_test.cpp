// Tests for the observability layer: counter/gauge/label/histogram
// behaviour, merge semantics, and the deterministic JSON export.
#include <gtest/gtest.h>

#include "base/metrics.hpp"

namespace presat {
namespace {

TEST(Histogram, BucketsByBitWidth) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(7);
  h.record(8);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 25u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2,3}
  EXPECT_EQ(h.bucket(3), 2u);  // {4..7}
  EXPECT_EQ(h.bucket(4), 1u);  // {8..15}
  EXPECT_DOUBLE_EQ(h.mean(), 25.0 / 7.0);
}

TEST(Histogram, MergeAddsEverything) {
  Histogram a;
  Histogram b;
  a.record(3);
  b.record(5);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 108u);
  EXPECT_EQ(a.max(), 100u);
}

TEST(Metrics, CountersGaugesLabels) {
  Metrics m;
  EXPECT_TRUE(m.empty());
  m.inc("x");
  m.inc("x", 4);
  m.setCounter("y", 7);
  m.setGauge("t", 0.5);
  m.setLabel("engine", "test");
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_EQ(m.counter("y"), 7u);
  EXPECT_EQ(m.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("t"), 0.5);
  EXPECT_EQ(m.label("engine"), "test");
  EXPECT_EQ(m.label("missing"), "");
}

TEST(Metrics, MergeSemantics) {
  Metrics a;
  a.setCounter("n", 2);
  a.setGauge("t", 1.0);
  a.setLabel("engine", "a");
  a.histogram("h").record(1);
  Metrics b;
  b.setCounter("n", 3);
  b.setCounter("only_b", 1);
  b.setGauge("t", 0.5);
  b.setLabel("engine", "b");
  b.setLabel("extra", "e");
  b.histogram("h").record(4);
  a.merge(b);
  EXPECT_EQ(a.counter("n"), 5u);          // counters add
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("t"), 1.5);    // gauges add (times across sub-runs)
  EXPECT_EQ(a.label("engine"), "a");      // labels keep existing
  EXPECT_EQ(a.label("extra"), "e");
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(Metrics, JsonIsDeterministicAndOrdered) {
  Metrics m;
  m.setCounter("zeta", 1);
  m.setCounter("alpha", 2);
  m.setLabel("engine", "x");
  std::string a = m.toJson();
  std::string b = m.toJson();
  EXPECT_EQ(a, b);
  // std::map ordering: alpha before zeta regardless of insertion order.
  EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
  EXPECT_NE(a.find("\"labels\""), std::string::npos);
  // Empty sections are omitted entirely.
  EXPECT_EQ(a.find("\"gauges\""), std::string::npos);
  EXPECT_EQ(a.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, CompactJsonIsOneLine) {
  Metrics m;
  m.setCounter("c", 1);
  m.setGauge("g", 2.25);
  m.histogram("h").record(3);
  std::string line = m.toJson(0);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"c\":1"), std::string::npos);
  EXPECT_NE(line.find("\"g\":2.25"), std::string::npos);
}

TEST(Metrics, JsonEscapesStrings) {
  Metrics m;
  m.setLabel("weird", "a\"b\\c\n");
  std::string json = m.toJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);
}

TEST(Metrics, EmptyMetricsIsEmptyObject) {
  Metrics m;
  EXPECT_EQ(m.toJson(0), "{}");
}

}  // namespace
}  // namespace presat
