// Arena clause storage, LBD-tiered retention, and the shared preprocessing
// pass: compaction fuzz against a shadow map, determinism of the retention
// policy (same formula => bit-identical search, jobs=1 == jobs=8),
// compaction during an active chronological enumeration session, and
// preprocess-then-solve equivalence against brute force.
#include <gtest/gtest.h>

#include <set>

#include "allsat/chrono_blocking.hpp"
#include "allsat/cube_blocking.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/projection.hpp"
#include "base/rng.hpp"
#include "check/audit_solver.hpp"
#include "cnf/preprocess.hpp"
#include "parallel/parallel_allsat.hpp"
#include "sat/clause_arena.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

std::set<uint64_t> cubesToMinterms(const std::vector<LitVec>& cubes, size_t projSize) {
  std::set<uint64_t> result;
  EXPECT_LE(projSize, 20u);
  for (uint64_t bits = 0; bits < (1ull << projSize); ++bits) {
    for (const LitVec& cube : cubes) {
      if (cubeCoversMinterm(cube, bits)) {
        result.insert(bits);
        break;
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Arena compaction fuzz: random alloc / free / compact cycles, with every
// live clause mirrored in a shadow vector. After each compaction the arena
// must reproduce the shadow exactly — literals, learnt flag, used bit, LBD,
// and activity — and an aliased second ref must follow the forwarding ref to
// the same relocated address.

struct ShadowClause {
  LitVec lits;
  bool learnt = false;
  bool used = false;
  uint32_t lbd = 0;
  float activity = 0.0f;
  bool alive = false;
};

void checkAgainstShadow(const ClauseArena& arena, const std::vector<ClauseRef>& refs,
                        const std::vector<ShadowClause>& shadow) {
  for (size_t i = 0; i < shadow.size(); ++i) {
    if (!shadow[i].alive) continue;
    ClauseRef r = refs[i];
    ASSERT_FALSE(arena.dead(r)) << "live clause " << i << " marked dead";
    ASSERT_EQ(arena.size(r), shadow[i].lits.size()) << "clause " << i;
    EXPECT_EQ(arena.learnt(r), shadow[i].learnt) << "clause " << i;
    EXPECT_EQ(arena.used(r), shadow[i].used) << "clause " << i;
    for (size_t k = 0; k < shadow[i].lits.size(); ++k) {
      EXPECT_EQ(arena.lit(r, static_cast<uint32_t>(k)), shadow[i].lits[k])
          << "clause " << i << " lit " << k;
    }
    if (shadow[i].learnt) {
      EXPECT_EQ(arena.lbd(r), shadow[i].lbd) << "clause " << i;
      EXPECT_EQ(arena.activity(r), shadow[i].activity) << "clause " << i;
    }
  }
}

TEST(ClauseArena, CompactionFuzzVsShadowMap) {
  Rng rng(20260808);
  for (int round = 0; round < 10; ++round) {
    ClauseArena arena;
    std::vector<ClauseRef> refs;
    std::vector<ShadowClause> shadow;
    size_t liveCount = 0;

    for (int step = 0; step < 3000; ++step) {
      uint64_t action = rng.below(100);
      if (action < 55 || liveCount == 0) {
        ShadowClause sc;
        sc.alive = true;
        sc.learnt = rng.flip();
        int len = static_cast<int>(rng.range(1, 8));
        for (int k = 0; k < len; ++k) {
          sc.lits.push_back(mkLit(static_cast<Var>(rng.below(64)), rng.flip()));
        }
        ClauseRef r = arena.alloc(sc.lits.data(), static_cast<uint32_t>(sc.lits.size()),
                                  sc.learnt);
        if (sc.learnt) {
          sc.lbd = static_cast<uint32_t>(rng.below(30));
          sc.activity = static_cast<float>(rng.below(1000)) * 0.5f;
          arena.setLbd(r, sc.lbd);
          arena.setActivity(r, sc.activity);
        }
        if (rng.flip()) {
          sc.used = true;
          arena.setUsed(r, true);
        }
        refs.push_back(r);
        shadow.push_back(sc);
        ++liveCount;
      } else if (action < 90) {
        size_t i = rng.below(shadow.size());
        if (shadow[i].alive) {
          arena.free(refs[i]);
          shadow[i].alive = false;
          --liveCount;
        }
      } else {
        // Compact: relocate every live ref, plus an aliased copy of each to
        // prove the forwarding path resolves to the same new address.
        std::vector<ClauseRef> aliases = refs;
        ClauseArena to;
        to.reserveWords(arena.sizeWords() - arena.wastedWords());
        for (size_t i = 0; i < refs.size(); ++i) {
          if (shadow[i].alive) arena.reloc(refs[i], to);
        }
        for (size_t i = 0; i < aliases.size(); ++i) {
          if (shadow[i].alive) {
            arena.reloc(aliases[i], to);
            EXPECT_EQ(aliases[i], refs[i]) << "forwarding diverged for clause " << i;
          }
        }
        arena = std::move(to);
        EXPECT_EQ(arena.wastedWords(), 0u);
        checkAgainstShadow(arena, refs, shadow);
      }
    }
    // Final compaction + verification so every round ends with a full check.
    ClauseArena to;
    for (size_t i = 0; i < refs.size(); ++i) {
      if (shadow[i].alive) arena.reloc(refs[i], to);
    }
    arena = std::move(to);
    checkAgainstShadow(arena, refs, shadow);
  }
}

// ---------------------------------------------------------------------------
// LBD retention determinism: the reduceDB policy (glue immortality, used-bit
// second chance, lbd/activity/insertion-order tie-breaks) must be a pure
// function of the formula — two fresh solvers on the same input produce
// bit-identical search statistics, including after arena compactions.

TEST(LbdRetention, SearchIsDeterministic) {
  // PHP(9,8): UNSAT with enough conflicts to trigger reduceDB sweeps and
  // (via deletions) arena compactions.
  Cnf hard = testutil::pigeonhole(8);

  SolverStats first;
  for (int run = 0; run < 2; ++run) {
    Solver s;
    s.addCnf(hard);
    EXPECT_TRUE(s.solve().isFalse());
    const SolverStats& st = s.stats();
    EXPECT_GT(st.reduceDBs, 0u) << "instance too easy to exercise retention";
    EXPECT_GT(st.deletedClauses, 0u);
    if (run == 0) {
      first = st;
    } else {
      EXPECT_EQ(st.decisions, first.decisions);
      EXPECT_EQ(st.propagations, first.propagations);
      EXPECT_EQ(st.conflicts, first.conflicts);
      EXPECT_EQ(st.restarts, first.restarts);
      EXPECT_EQ(st.learntClauses, first.learntClauses);
      EXPECT_EQ(st.deletedClauses, first.deletedClauses);
      EXPECT_EQ(st.reduceDBs, first.reduceDBs);
      EXPECT_EQ(st.arenaCompactions, first.arenaCompactions);
    }
  }
}

TEST(LbdRetention, RandomSatInstancesStayCorrect) {
  Rng rng(4242);
  for (int iter = 0; iter < 40; ++iter) {
    int vars = static_cast<int>(rng.range(20, 60));
    Cnf cnf = testutil::randomCnf(rng, vars, vars * 3);
    Solver s;
    s.addCnf(cnf);
    lbool verdict = s.solve();
    ASSERT_FALSE(verdict.isUndef());
    EXPECT_EQ(verdict.isTrue(), dpllIsSat(cnf)) << "iter " << iter;
    if (verdict.isTrue()) {
      for (const Clause& c : cnf.clauses()) {
        bool sat = false;
        for (Lit l : c) sat = sat || s.modelValue(l);
        EXPECT_TRUE(sat) << "iter " << iter;
      }
    }
    EXPECT_TRUE(auditSolver(s).ok());
  }
}

// ---------------------------------------------------------------------------
// Compaction during an active chronological enumeration session: reason_
// refs of trail literals and the synthetic enumUnitReasons_ are compaction
// roots, so a stop-the-world collection between models must leave the
// session consistent (clean audit) and the final solution set exact.

TEST(ChronoEnumeration, CompactionMidSessionPreservesReasons) {
  Rng rng(9001);
  for (int iter = 0; iter < 30; ++iter) {
    int vars = static_cast<int>(rng.range(4, 12));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(4, 30)));
    std::vector<Var> scope;
    for (Var v = 0; v < vars; ++v) scope.push_back(v);
    std::set<uint64_t> expected = bruteForceProjectedSolutions(cnf, scope);

    Solver s;
    s.addCnf(cnf);
    std::set<uint64_t> got;
    size_t models = 0;
    s.beginEnumeration(scope);
    while (s.enumerateNextModel().isTrue()) {
      ++models;
      uint64_t bits = 0;
      for (size_t i = 0; i < scope.size(); ++i) {
        if (s.modelValue(scope[i])) bits |= 1ull << i;
      }
      got.insert(bits);
      // Force a compaction with the enumeration trail live, then audit:
      // every reason ref (including the clamped-level unit reasons) must
      // have been relocated consistently.
      compactSolverForTest(s);
      AuditResult audit = auditSolver(s);
      EXPECT_TRUE(audit.ok()) << audit.toString();
      if (!s.flipToNextRegion(s.scopePrefixLength())) break;
    }
    s.endEnumeration();
    EXPECT_EQ(got, expected) << "iter " << iter;
    EXPECT_EQ(models, expected.size()) << "duplicate regions, iter " << iter;
    EXPECT_GE(s.stats().arenaCompactions, models);
    EXPECT_TRUE(auditSolver(s).ok());
  }
}

// ---------------------------------------------------------------------------
// Preprocessing: equivalence and structural guarantees.

TEST(Preprocess, PureLiteralElimination) {
  // x0 occurs only positively and is not frozen: both clauses are satisfied
  // by the forced pure literal, and the remaining vars become unconstrained.
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addBinary(mkLit(0), ~mkLit(2));
  PreprocessedCnf pre = preprocessCnf(cnf, /*frozen=*/{});
  EXPECT_GE(pre.stats.pureLiterals, 1u);
  EXPECT_EQ(pre.cnf.numClauses(), 0u);
  // originalModel must extend any internal model into a genuine model of the
  // ORIGINAL formula: forced pure polarities satisfy every removed clause.
  std::vector<lbool> original = pre.originalModel(
      std::vector<lbool>(static_cast<size_t>(pre.cnf.numVars()), lbool(false)));
  ASSERT_EQ(original.size(), 3u);
  for (const Clause& c : cnf.clauses()) {
    bool sat = false;
    for (Lit l : c) sat = sat || (original[static_cast<size_t>(l.var())] ^ l.sign()).isTrue();
    EXPECT_TRUE(sat);
  }
}

TEST(Preprocess, FrozenVarsSurvivePureElimination) {
  Cnf cnf(2);
  cnf.addBinary(mkLit(0), mkLit(1));  // both pure positive
  PreprocessedCnf pre = preprocessCnf(cnf, /*frozen=*/{0, 1});
  EXPECT_EQ(pre.cnf.numVars(), 2);
  EXPECT_EQ(pre.cnf.numClauses(), 1u);
  EXPECT_EQ(pre.internalVar(0), 0);
  EXPECT_EQ(pre.internalVar(1), 1);
}

TEST(Preprocess, SubsumptionRemovesSupersets) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addClause({mkLit(0), mkLit(1), mkLit(2)});
  cnf.addClause({~mkLit(0), ~mkLit(1), ~mkLit(2)});
  PreprocessedCnf pre = preprocessCnf(cnf, /*frozen=*/{0, 1, 2});
  EXPECT_EQ(pre.stats.subsumedClauses, 1u);
  EXPECT_EQ(pre.cnf.numClauses(), 2u);
}

TEST(Preprocess, RemapIsMonotoneAndInvertible) {
  Rng rng(515);
  for (int iter = 0; iter < 50; ++iter) {
    int vars = static_cast<int>(rng.range(3, 14));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(2, 20)));
    std::vector<Var> frozen;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(1, 3)) frozen.push_back(v);
    }
    PreprocessedCnf pre = preprocessCnf(cnf, frozen);
    // toOriginal is strictly increasing (monotone dense remap)...
    for (size_t i = 1; i < pre.toOriginal.size(); ++i) {
      EXPECT_LT(pre.toOriginal[i - 1], pre.toOriginal[i]);
    }
    // ...and inverse to internalVar on every kept var; frozen vars are kept.
    for (size_t i = 0; i < pre.toOriginal.size(); ++i) {
      EXPECT_EQ(pre.internalVar(pre.toOriginal[i]), static_cast<Var>(i));
    }
    for (Var v : frozen) EXPECT_NE(pre.internalVar(v), kNullVar);
  }
}

TEST(Preprocess, ThenSolveMatchesBruteForce) {
  Rng rng(321);
  for (int iter = 0; iter < 120; ++iter) {
    int vars = static_cast<int>(rng.range(2, 10));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 20)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(1, 2)) projection.push_back(v);
    }
    std::set<uint64_t> expected = bruteForceProjectedSolutions(cnf, projection);

    // options.preprocess defaults to true: all three serial CNF engines run
    // through the adapter (internal solve + cube translation).
    AllSatResult minterm = mintermBlockingAllSat(cnf, projection);
    ASSERT_TRUE(minterm.complete);
    EXPECT_EQ(cubesToMinterms(minterm.cubes, projection.size()), expected)
        << "minterm, iter " << iter;
    EXPECT_EQ(minterm.mintermCount.toU64(), expected.size());
    EXPECT_TRUE(cubesPairwiseDisjoint(minterm.cubes));

    AllSatResult cube = cubeBlockingAllSat(cnf, projection, /*lifter=*/{});
    ASSERT_TRUE(cube.complete);
    EXPECT_EQ(cubesToMinterms(cube.cubes, projection.size()), expected)
        << "cube, iter " << iter;

    AllSatResult chrono = chronoAllSat(cnf, projection, AllSatOptions{});
    ASSERT_TRUE(chrono.complete);
    EXPECT_EQ(cubesToMinterms(chrono.cubes, projection.size()), expected)
        << "chrono, iter " << iter;

    // Preprocessing must be observable-equal to the raw engine, cube for
    // cube: the adapter's translation keeps the projected index space.
    AllSatOptions raw;
    raw.preprocess = false;
    AllSatResult mintermRaw = mintermBlockingAllSat(cnf, projection, raw);
    EXPECT_EQ(mintermRaw.mintermCount, minterm.mintermCount);
    EXPECT_EQ(cubesToMinterms(mintermRaw.cubes, projection.size()),
              cubesToMinterms(minterm.cubes, projection.size()));
  }
}

TEST(Preprocess, MetricsAreExported) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addBinary(mkLit(0), ~mkLit(2));
  AllSatResult r = mintermBlockingAllSat(cnf, {0});
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.metrics.counter("preprocess.vars_before"), 3u);
  EXPECT_GE(r.metrics.counter("preprocess.pure_literals"), 1u);
  EXPECT_LE(r.metrics.counter("preprocess.vars_after"),
            r.metrics.counter("preprocess.vars_before"));
}

// ---------------------------------------------------------------------------
// jobs=1 vs jobs=8 bit-identity with preprocessing on: the shared pass runs
// once before the split, so the shard plan — and therefore the merged cover,
// cube for cube, literal for literal — is identical for every worker count.

TEST(ParallelDeterminism, Jobs1VsJobs8BitIdentity) {
  Rng rng(777);
  const ParallelCnfEngine engines[] = {ParallelCnfEngine::kMintermBlocking,
                                       ParallelCnfEngine::kCubeBlocking,
                                       ParallelCnfEngine::kChrono};
  for (int iter = 0; iter < 12; ++iter) {
    int vars = static_cast<int>(rng.range(4, 11));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(3, 24)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) {
      if (rng.chance(2, 3)) projection.push_back(v);
    }
    if (projection.empty()) projection.push_back(0);
    std::set<uint64_t> expected = bruteForceProjectedSolutions(cnf, projection);

    for (ParallelCnfEngine engine : engines) {
      AllSatOptions o1;
      o1.parallel.jobs = 1;
      AllSatOptions o8 = o1;
      o8.parallel.jobs = 8;
      AllSatResult r1 = parallelCnfAllSat(cnf, projection, engine, /*lifter=*/{}, o1);
      AllSatResult r8 = parallelCnfAllSat(cnf, projection, engine, /*lifter=*/{}, o8);
      ASSERT_TRUE(r1.complete);
      ASSERT_TRUE(r8.complete);
      EXPECT_EQ(r1.cubes, r8.cubes) << "engine " << static_cast<int>(engine)
                                    << ", iter " << iter;
      EXPECT_EQ(r1.mintermCount, r8.mintermCount);
      EXPECT_EQ(cubesToMinterms(r1.cubes, projection.size()), expected)
          << "engine " << static_cast<int>(engine) << ", iter " << iter;
    }
  }
}

}  // namespace
}  // namespace presat
