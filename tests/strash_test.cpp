// Structural hashing / constant sweep: functional equivalence (fuzzed),
// specific folding rules, dead-logic removal, and idempotence.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "circuit/simulator.hpp"
#include "circuit/strash.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/transition_system.hpp"

namespace presat {
namespace {

// Checks input/output behavioural equivalence over random patterns, matching
// interface nodes positionally (the sweep preserves PI/DFF order).
void expectEquivalent(const Netlist& a, const Netlist& b, uint64_t seed, int patterns = 200) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  Rng rng(seed);
  for (int trial = 0; trial < patterns; ++trial) {
    std::vector<bool> srcA(a.numNodes(), false);
    std::vector<bool> srcB(b.numNodes(), false);
    for (size_t i = 0; i < a.inputs().size(); ++i) {
      bool v = rng.flip();
      srcA[a.inputs()[i]] = v;
      srcB[b.inputs()[i]] = v;
    }
    for (size_t i = 0; i < a.dffs().size(); ++i) {
      bool v = rng.flip();
      srcA[a.dffs()[i]] = v;
      srcB[b.dffs()[i]] = v;
    }
    auto valA = Simulator::evaluateOnce(a, srcA);
    auto valB = Simulator::evaluateOnce(b, srcB);
    for (size_t i = 0; i < a.outputs().size(); ++i) {
      ASSERT_EQ(valA[a.outputs()[i]], valB[b.outputs()[i]]) << "output " << i;
    }
    for (size_t i = 0; i < a.dffs().size(); ++i) {
      ASSERT_EQ(valA[a.dffData(a.dffs()[i])], valB[b.dffData(b.dffs()[i])]) << "state " << i;
    }
  }
}

TEST(Strash, FoldsConstants) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId one = nl.addConst(true);
  NodeId zero = nl.addConst(false);
  NodeId andz = nl.mkAnd(a, zero);      // -> 0
  NodeId orw = nl.mkOr(andz, one);      // -> 1
  NodeId x = nl.mkXor(orw, a);          // -> ~a
  nl.markOutput(x, "y");
  SweepResult r = strashSweep(nl);
  // ~a is one inverter.
  EXPECT_EQ(r.netlist.numGates(), 1u);
  EXPECT_EQ(r.netlist.type(r.netlist.outputs()[0]), GateType::kNot);
  expectEquivalent(nl, r.netlist, 1);
}

TEST(Strash, MergesDuplicateGates) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId g1 = nl.mkAnd(a, b);
  NodeId g2 = nl.mkAnd(b, a);  // commutative duplicate
  NodeId g3 = nl.mkAnd(a, b);  // exact duplicate
  NodeId o = nl.addGate(GateType::kOr, {g1, g2, g3});
  nl.markOutput(o, "y");
  SweepResult r = strashSweep(nl);
  // OR of three copies of the same AND collapses to the AND itself.
  EXPECT_EQ(r.netlist.numGates(), 1u);
  expectEquivalent(nl, r.netlist, 2);
}

TEST(Strash, CancelsComplementaryPairs) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId na = nl.mkNot(a);
  NodeId andc = nl.addGate(GateType::kAnd, {a, na, b});  // -> 0
  NodeId xorc = nl.addGate(GateType::kXor, {a, na});     // -> 1
  NodeId o = nl.mkOr(andc, xorc);                        // -> 1
  nl.markOutput(o, "y");
  SweepResult r = strashSweep(nl);
  EXPECT_EQ(r.netlist.numGates(), 0u);
  EXPECT_EQ(r.netlist.type(r.netlist.outputs()[0]), GateType::kConst1);
}

TEST(Strash, XorSelfCancellation) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId x = nl.addGate(GateType::kXor, {a, b, a});  // -> b
  nl.markOutput(x, "y");
  SweepResult r = strashSweep(nl);
  EXPECT_EQ(r.netlist.numGates(), 0u);
  EXPECT_EQ(r.netlist.outputs()[0], r.netlist.inputs()[1]);
}

TEST(Strash, MuxSimplifications) {
  Netlist nl;
  NodeId s = nl.addInput("s");
  NodeId d = nl.addInput("d");
  NodeId zero = nl.addConst(false);
  NodeId one = nl.addConst(true);
  nl.markOutput(nl.mkMux(s, zero, one), "as_s");     // -> s
  nl.markOutput(nl.mkMux(s, one, zero), "as_ns");    // -> ~s
  nl.markOutput(nl.mkMux(s, d, d), "as_d");          // -> d
  nl.markOutput(nl.mkMux(s, zero, d), "as_and");     // -> s & d
  nl.markOutput(nl.mkMux(s, d, one), "as_or");       // -> s | d
  SweepResult r = strashSweep(nl);
  EXPECT_EQ(r.netlist.outputs()[0], r.netlist.inputs()[0]);
  EXPECT_EQ(r.netlist.type(r.netlist.outputs()[1]), GateType::kNot);
  EXPECT_EQ(r.netlist.outputs()[2], r.netlist.inputs()[1]);
  EXPECT_EQ(r.netlist.type(r.netlist.outputs()[3]), GateType::kAnd);
  EXPECT_EQ(r.netlist.type(r.netlist.outputs()[4]), GateType::kOr);
  expectEquivalent(nl, r.netlist, 3);
}

TEST(Strash, DropsDanglingLogic) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId used = nl.mkAnd(a, b);
  nl.mkOr(a, b);  // dangling
  nl.mkXor(a, b);  // dangling
  nl.markOutput(used, "y");
  SweepResult r = strashSweep(nl);
  EXPECT_EQ(r.netlist.numGates(), 1u);
  EXPECT_EQ(r.gatesBefore, 3u);
  EXPECT_EQ(r.gatesAfter, 1u);
}

TEST(Strash, DoubleNegationCollapses) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId nna = nl.mkNot(nl.mkNot(a));
  nl.markOutput(nna, "y");
  SweepResult r = strashSweep(nl);
  EXPECT_EQ(r.netlist.numGates(), 0u);
  EXPECT_EQ(r.netlist.outputs()[0], r.netlist.inputs()[0]);
}

TEST(Strash, PreservesSequentialBehaviour) {
  for (auto make : {+[] { return makeS27(); }, +[] { return makeTrafficLight(); },
                    +[] { return makeGrayCounter(6); }, +[] { return makeRoundRobinArbiter(3); }}) {
    Netlist original = make();
    SweepResult r = strashSweep(original);
    EXPECT_LE(r.gatesAfter, r.gatesBefore);
    expectEquivalent(original, r.netlist, 7);
  }
}

TEST(Strash, NodeMapPointsToEquivalentNodes) {
  Netlist nl = makeS27();
  SweepResult r = strashSweep(nl);
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> srcA(nl.numNodes(), false);
    std::vector<bool> srcB(r.netlist.numNodes(), false);
    for (size_t i = 0; i < nl.inputs().size(); ++i) {
      bool v = rng.flip();
      srcA[nl.inputs()[i]] = v;
      srcB[r.netlist.inputs()[i]] = v;
    }
    for (size_t i = 0; i < nl.dffs().size(); ++i) {
      bool v = rng.flip();
      srcA[nl.dffs()[i]] = v;
      srcB[r.netlist.dffs()[i]] = v;
    }
    auto valA = Simulator::evaluateOnce(nl, srcA);
    auto valB = Simulator::evaluateOnce(r.netlist, srcB);
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
      if (r.nodeMap[id] == kNoNode) continue;  // dropped as dangling
      EXPECT_EQ(valA[id], valB[r.nodeMap[id]]) << "node " << id;
    }
  }
}

class StrashFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StrashFuzz, RandomCircuitsStayEquivalent) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 503 + 41);
  for (int iter = 0; iter < 10; ++iter) {
    RandomCircuitParams params;
    params.seed = rng.next();
    params.numInputs = static_cast<int>(rng.range(2, 5));
    params.numDffs = static_cast<int>(rng.range(2, 6));
    params.numGates = static_cast<int>(rng.range(20, 120));
    Netlist original = makeRandomSequential(params);
    SweepResult once = strashSweep(original);
    expectEquivalent(original, once.netlist, params.seed ^ 0xabcd, 100);
    // Idempotence: a second sweep finds nothing more.
    SweepResult twice = strashSweep(once.netlist);
    EXPECT_EQ(twice.gatesAfter, once.gatesAfter)
        << "group " << GetParam() << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrashFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace presat
