// Model lifting tests: the CNF implicant shrinker and the circuit
// justification lifter, both checked for the cube-validity contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "allsat/lifting.hpp"
#include "base/rng.hpp"
#include "circuit/simulator.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

TEST(ShrinkModel, KeepsModelSubset) {
  Cnf cnf(3);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addUnit(mkLit(2));
  std::vector<lbool> model{l_True, l_True, l_True};
  LitVec cube = shrinkModelToImplicant(cnf, model);
  for (Lit l : cube) {
    EXPECT_TRUE(model[static_cast<size_t>(l.var())].isTrue() != l.sign());
  }
  // Variable 2 is forced; at least one of 0/1 must be kept.
  bool has2 = false;
  for (Lit l : cube) has2 |= l.var() == 2;
  EXPECT_TRUE(has2);
  EXPECT_LE(cube.size(), 2u);
}

// Property: every completion of the shrunk cube satisfies the formula.
TEST(ShrinkModelProperty, EveryCompletionSatisfies) {
  Rng rng(61);
  for (int iter = 0; iter < 200; ++iter) {
    int vars = static_cast<int>(rng.range(2, 10));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(1, 20)));
    Solver s;
    if (!s.addCnf(cnf) || !s.solve().isTrue()) continue;
    std::vector<lbool> model(static_cast<size_t>(vars));
    for (Var v = 0; v < vars; ++v) model[static_cast<size_t>(v)] = lbool(s.modelValue(v));
    LitVec cube = shrinkModelToImplicant(cnf, model);

    std::vector<bool> inCube(static_cast<size_t>(vars), false);
    std::vector<bool> assignment(static_cast<size_t>(vars), false);
    for (Lit l : cube) {
      inCube[static_cast<size_t>(l.var())] = true;
      assignment[static_cast<size_t>(l.var())] = !l.sign();
    }
    std::vector<Var> freeVars;
    for (Var v = 0; v < vars; ++v) {
      if (!inCube[static_cast<size_t>(v)]) freeVars.push_back(v);
    }
    ASSERT_LE(freeVars.size(), 12u);
    for (uint64_t bits = 0; bits < (1ull << freeVars.size()); ++bits) {
      for (size_t k = 0; k < freeVars.size(); ++k) {
        assignment[static_cast<size_t>(freeVars[k])] = (bits >> k) & 1;
      }
      EXPECT_TRUE(cnf.evaluate(assignment)) << "iter " << iter;
    }
  }
}

TEST(JustificationLifter, ControllingInputSuffices) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId g = nl.mkAnd(a, b, "g");
  nl.markOutput(g, "g");
  JustificationLifter lifter(nl, {{g, false}});
  // a=0, b=1: only a is needed to justify g=0.
  std::vector<bool> sources(nl.numNodes(), false);
  sources[b] = true;
  auto values = Simulator::evaluateOnce(nl, sources);
  NodeCube cube = lifter.liftedSources(values);
  ASSERT_EQ(cube.size(), 1u);
  EXPECT_EQ(cube[0].first, a);
  EXPECT_FALSE(cube[0].second);
}

TEST(JustificationLifter, NonControlledNeedsAllInputs) {
  Netlist nl;
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId g = nl.mkAnd(a, b, "g");
  nl.markOutput(g, "g");
  JustificationLifter lifter(nl, {{g, true}});
  std::vector<bool> sources(nl.numNodes(), true);
  auto values = Simulator::evaluateOnce(nl, sources);
  NodeCube cube = lifter.liftedSources(values);
  EXPECT_EQ(cube.size(), 2u);
}

TEST(JustificationLifter, MuxTracksSelectedBranchOnly) {
  Netlist nl;
  NodeId s = nl.addInput("s");
  NodeId a = nl.addInput("a");
  NodeId b = nl.addInput("b");
  NodeId m = nl.mkMux(s, a, b, "m");
  nl.markOutput(m, "m");
  JustificationLifter lifter(nl, {{m, true}});
  std::vector<bool> sources(nl.numNodes(), false);
  sources[a] = true;
  sources[b] = true;  // s = 0 selects a
  auto values = Simulator::evaluateOnce(nl, sources);
  NodeCube cube = lifter.liftedSources(values);
  // Needs s and a but not b.
  EXPECT_EQ(cube.size(), 2u);
  for (const NodeAssign& na : cube) EXPECT_NE(na.first, b);
}

// Property: the lifted source cube forces the objectives under every
// completion of the remaining sources.
TEST(JustificationLifterProperty, LiftedCubeForcesObjectives) {
  Rng rng(67);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCircuitParams params;
    params.seed = seed;
    params.numInputs = 3;
    params.numDffs = 4;
    params.numGates = 25;
    Netlist nl = makeRandomSequential(params);
    std::vector<NodeId> sources;
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
      if (nl.type(id) == GateType::kInput || nl.type(id) == GateType::kDff) sources.push_back(id);
    }
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<bool> full(nl.numNodes(), false);
      for (NodeId s : sources) full[s] = rng.flip();
      auto values = Simulator::evaluateOnce(nl, full);
      // Objectives: the realized values of two DFF data pins.
      NodeCube objectives;
      for (size_t k = 0; k < 2 && k < nl.dffs().size(); ++k) {
        NodeId root = nl.dffData(nl.dffs()[k]);
        objectives.emplace_back(root, values[root]);
      }
      JustificationLifter lifter(nl, objectives);
      NodeCube cube = lifter.liftedSources(values);

      std::vector<bool> pinned(nl.numNodes(), false);
      for (const NodeAssign& na : cube) pinned[na.first] = true;
      std::vector<NodeId> freeSources;
      for (NodeId s : sources) {
        if (!pinned[s]) freeSources.push_back(s);
      }
      ASSERT_LE(freeSources.size(), 7u);
      for (uint64_t bits = 0; bits < (1ull << freeSources.size()); ++bits) {
        std::vector<bool> completion = full;
        for (size_t k = 0; k < freeSources.size(); ++k) completion[freeSources[k]] = (bits >> k) & 1;
        auto vals = Simulator::evaluateOnce(nl, completion);
        for (const NodeAssign& obj : objectives) {
          ASSERT_EQ(vals[obj.first], obj.second)
              << "seed " << seed << " trial " << trial << " bits " << bits;
        }
      }
    }
  }
}

// XOR/MUX-heavy fuzz: XOR gates have NO controlling value (both fanins are
// always needed) and MUX justification must track the selected branch, so
// these netlists stress exactly the lifter paths where dropping one source
// too many silently breaks the forcing property. Built from alternating
// XOR/MUX layers over random prior nodes, then checked against the
// simulator on every completion of the dropped sources.
TEST(JustificationLifterProperty, XorMuxHeavyNetlistsStayForcing) {
  Rng rng(929);
  for (int netIter = 0; netIter < 30; ++netIter) {
    Netlist nl;
    std::vector<NodeId> sources;
    int numInputs = static_cast<int>(rng.range(4, 7));
    for (int i = 0; i < numInputs; ++i) sources.push_back(nl.addInput("i" + std::to_string(i)));
    std::vector<NodeId> pool = sources;
    auto pick = [&] { return pool[rng.below(pool.size())]; };
    int numGates = static_cast<int>(rng.range(8, 30));
    for (int g = 0; g < numGates; ++g) {
      NodeId n;
      uint64_t roll = rng.range(0, 2);
      if (roll == 0) {
        n = nl.mkXor(pick(), pick());
      } else if (roll == 1) {
        n = nl.mkMux(pick(), pick(), pick());
      } else {
        n = nl.mkAnd(pick(), pick());
      }
      pool.push_back(n);
    }
    NodeId root = pool.back();
    nl.markOutput(root, "o");

    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> full(nl.numNodes(), false);
      for (NodeId s : sources) full[s] = rng.flip();
      auto values = Simulator::evaluateOnce(nl, full);
      NodeCube objectives = {{root, values[root]}};
      JustificationLifter lifter(nl, objectives);
      NodeCube cube = lifter.liftedSources(values);

      // Every kept literal matches the simulated assignment.
      for (const NodeAssign& na : cube) EXPECT_EQ(full[na.first], na.second);

      std::vector<bool> pinned(nl.numNodes(), false);
      for (const NodeAssign& na : cube) pinned[na.first] = true;
      std::vector<NodeId> freeSources;
      for (NodeId s : sources) {
        if (!pinned[s]) freeSources.push_back(s);
      }
      ASSERT_LE(freeSources.size(), 7u);
      for (uint64_t bits = 0; bits < (1ull << freeSources.size()); ++bits) {
        std::vector<bool> completion = full;
        for (size_t k = 0; k < freeSources.size(); ++k) {
          completion[freeSources[k]] = (bits >> k) & 1;
        }
        auto vals = Simulator::evaluateOnce(nl, completion);
        ASSERT_EQ(vals[root], values[root])
            << "net " << netIter << " trial " << trial << " bits " << bits;
      }
    }
  }
}

// The same forcing property through the generator's own XOR-heavy knob.
TEST(JustificationLifterProperty, XorPercentGeneratorStaysForcing) {
  Rng rng(977);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomCircuitParams params;
    params.seed = seed;
    params.numInputs = 3;
    params.numDffs = 3;
    params.numGates = 30;
    params.xorPercent = 60;
    Netlist nl = makeRandomSequential(params);
    std::vector<NodeId> sources;
    for (NodeId id = 0; id < nl.numNodes(); ++id) {
      if (nl.type(id) == GateType::kInput || nl.type(id) == GateType::kDff) sources.push_back(id);
    }
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> full(nl.numNodes(), false);
      for (NodeId s : sources) full[s] = rng.flip();
      auto values = Simulator::evaluateOnce(nl, full);
      NodeCube objectives;
      for (size_t k = 0; k < 2 && k < nl.dffs().size(); ++k) {
        NodeId root = nl.dffData(nl.dffs()[k]);
        objectives.emplace_back(root, values[root]);
      }
      JustificationLifter lifter(nl, objectives);
      NodeCube cube = lifter.liftedSources(values);

      std::vector<bool> pinned(nl.numNodes(), false);
      for (const NodeAssign& na : cube) pinned[na.first] = true;
      std::vector<NodeId> freeSources;
      for (NodeId s : sources) {
        if (!pinned[s]) freeSources.push_back(s);
      }
      ASSERT_LE(freeSources.size(), 6u);
      for (uint64_t bits = 0; bits < (1ull << freeSources.size()); ++bits) {
        std::vector<bool> completion = full;
        for (size_t k = 0; k < freeSources.size(); ++k) {
          completion[freeSources[k]] = (bits >> k) & 1;
        }
        auto vals = Simulator::evaluateOnce(nl, completion);
        for (const NodeAssign& obj : objectives) {
          ASSERT_EQ(vals[obj.first], obj.second)
              << "seed " << seed << " trial " << trial << " bits " << bits;
        }
      }
    }
  }
}

TEST(JustificationLifter, WorksOnS27) {
  Netlist nl = makeS27();
  Rng rng(71);
  std::vector<NodeId> sources;
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    if (!isCombinational(nl.type(id))) sources.push_back(id);
  }
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> full(nl.numNodes(), false);
    for (NodeId s : sources) full[s] = rng.flip();
    auto values = Simulator::evaluateOnce(nl, full);
    NodeCube objectives;
    for (NodeId dff : nl.dffs()) {
      objectives.emplace_back(nl.dffData(dff), values[nl.dffData(dff)]);
    }
    JustificationLifter lifter(nl, objectives);
    NodeCube cube = lifter.liftedSources(values);
    EXPECT_LE(cube.size(), sources.size());
    for (const NodeAssign& na : cube) EXPECT_EQ(full[na.first], na.second);
  }
}

}  // namespace
}  // namespace presat
