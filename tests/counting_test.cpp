// Known-count instances: the all-SAT engines double as exact model counters,
// so formulas with closed-form solution counts (permanents, products of
// exactly-one blocks, parities) pin down end-to-end correctness with
// independent mathematics.
#include <gtest/gtest.h>

#include "allsat/minterm_blocking.hpp"
#include "allsat/success_driven.hpp"
#include "bdd/bdd.hpp"
#include "circuit/from_cnf.hpp"
#include "circuit/tseitin.hpp"
#include "gen/iscas.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

// Exact-fit pigeonhole: n pigeons, n holes, at-least-one + at-most-one per
// hole. Solutions with *only* these clauses also allow a pigeon in several
// holes; adding per-pigeon at-most-one makes solutions = permutations = n!.
Cnf permutationFormula(int n) {
  Cnf cnf(n * n);
  auto var = [&](int p, int h) { return static_cast<Var>(p * n + h); };
  for (int p = 0; p < n; ++p) {
    Clause c;
    for (int h = 0; h < n; ++h) c.push_back(mkLit(var(p, h)));
    cnf.addClause(c);  // pigeon sits somewhere
    for (int h = 0; h < n; ++h) {
      for (int k = h + 1; k < n; ++k) cnf.addBinary(~mkLit(var(p, h)), ~mkLit(var(p, k)));
    }
  }
  for (int h = 0; h < n; ++h) {
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) cnf.addBinary(~mkLit(var(p, h)), ~mkLit(var(q, h)));
    }
  }
  return cnf;
}

uint64_t factorial(int n) {
  uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<uint64_t>(i);
  return f;
}

std::vector<Var> allVars(const Cnf& cnf) {
  std::vector<Var> vars;
  for (Var v = 0; v < cnf.numVars(); ++v) vars.push_back(v);
  return vars;
}

// Runs the success-driven engine on a CNF via circuit conversion.
BigUint successDrivenCount(const Cnf& cnf) {
  CnfCircuit circuit = cnfToCircuit(cnf);
  CircuitAllSatProblem problem;
  problem.netlist = &circuit.netlist;
  problem.objectives = {{circuit.root, true}};
  for (Var v = 0; v < cnf.numVars(); ++v) {
    problem.projectionSources.push_back(circuit.varNode[static_cast<size_t>(v)]);
  }
  return successDrivenAllSat(problem).summary.mintermCount;
}

TEST(Counting, PermutationsAreFactorial) {
  for (int n : {2, 3, 4}) {
    Cnf cnf = permutationFormula(n);
    AllSatResult minterm = mintermBlockingAllSat(cnf, allVars(cnf));
    EXPECT_EQ(minterm.mintermCount.toU64(), factorial(n)) << "n=" << n;
    EXPECT_EQ(successDrivenCount(cnf).toU64(), factorial(n)) << "n=" << n;
  }
}

TEST(Counting, PigeonholeHasNoSolutions) {
  for (int n : {2, 3, 4}) {
    Cnf cnf = testutil::pigeonhole(n);
    AllSatResult r = mintermBlockingAllSat(cnf, allVars(cnf));
    EXPECT_TRUE(r.mintermCount.isZero());
    EXPECT_TRUE(successDrivenCount(cnf).isZero());
  }
}

TEST(Counting, IndependentExactlyOneBlocksMultiply) {
  // k blocks of exactly-one-of-3: 3^k solutions.
  for (int blocks : {1, 3, 5}) {
    Cnf cnf(blocks * 3);
    for (int b = 0; b < blocks; ++b) {
      Var x = static_cast<Var>(3 * b), y = x + 1, z = x + 2;
      cnf.addTernary(mkLit(x), mkLit(y), mkLit(z));
      cnf.addBinary(~mkLit(x), ~mkLit(y));
      cnf.addBinary(~mkLit(x), ~mkLit(z));
      cnf.addBinary(~mkLit(y), ~mkLit(z));
    }
    uint64_t expected = 1;
    for (int b = 0; b < blocks; ++b) expected *= 3;
    EXPECT_EQ(mintermBlockingAllSat(cnf, allVars(cnf)).mintermCount.toU64(), expected);
    EXPECT_EQ(successDrivenCount(cnf).toU64(), expected);
  }
}

TEST(Counting, XorChainHasHalfTheSpace) {
  // x1 ^ x2 ^ ... ^ xn = 1 via Tseitin-free 3-clause chain encoding.
  for (int n : {3, 5, 8}) {
    // Encode parity with chain variables c_i = x_1 ^ ... ^ x_i.
    Cnf cnf(2 * n);
    auto x = [&](int i) { return static_cast<Var>(i); };
    auto c = [&](int i) { return static_cast<Var>(n + i); };
    // c_0 = x_0
    cnf.addBinary(~mkLit(c(0)), mkLit(x(0)));
    cnf.addBinary(mkLit(c(0)), ~mkLit(x(0)));
    for (int i = 1; i < n; ++i) {
      // c_i = c_{i-1} ^ x_i
      cnf.addTernary(~mkLit(c(i)), mkLit(c(i - 1)), mkLit(x(i)));
      cnf.addTernary(~mkLit(c(i)), ~mkLit(c(i - 1)), ~mkLit(x(i)));
      cnf.addTernary(mkLit(c(i)), ~mkLit(c(i - 1)), mkLit(x(i)));
      cnf.addTernary(mkLit(c(i)), mkLit(c(i - 1)), ~mkLit(x(i)));
    }
    cnf.addUnit(mkLit(c(n - 1)));
    // Project onto the x variables: half of all assignments have odd parity.
    std::vector<Var> projection;
    for (int i = 0; i < n; ++i) projection.push_back(x(i));
    AllSatResult r = mintermBlockingAllSat(cnf, projection);
    EXPECT_EQ(r.mintermCount.toU64(), 1ull << (n - 1)) << "n=" << n;
  }
}

TEST(Counting, S27SatCountMatchesBdd) {
  // Count (state, input) pairs making the single output G17 = 1, two ways:
  // projected all-SAT over the CNF encoding, and BDD satCount.
  Netlist nl = makeS27();
  NodeId g17 = nl.findByName("G17");
  ASSERT_NE(g17, kNoNode);
  CircuitEncoding enc = encodeCircuit(nl, {g17});
  Cnf cnf = enc.cnf;
  cnf.addUnit(enc.litOf(g17, true));
  std::vector<Var> projection;
  std::vector<NodeId> sources;
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    if (!isCombinational(nl.type(id)) && enc.isEncoded(id)) {
      projection.push_back(enc.varOf(id));
      sources.push_back(id);
    }
  }
  AllSatResult viaSat = mintermBlockingAllSat(cnf, projection);

  BddManager mgr(static_cast<int>(sources.size()));
  std::vector<BddRef> nodeBdd(nl.numNodes(), BddManager::kFalse);
  for (size_t i = 0; i < sources.size(); ++i) nodeBdd[sources[i]] = mgr.variable(static_cast<Var>(i));
  for (NodeId id : nl.topologicalOrder()) {
    const GateNode& g = nl.node(id);
    if (!isCombinational(g.type) || !enc.isEncoded(id)) continue;
    switch (g.type) {
      case GateType::kNot:
        nodeBdd[id] = mgr.bddNot(nodeBdd[g.fanins[0]]);
        break;
      case GateType::kAnd:
        nodeBdd[id] = mgr.bddAnd(nodeBdd[g.fanins[0]], nodeBdd[g.fanins[1]]);
        break;
      case GateType::kNand:
        nodeBdd[id] = mgr.bddNot(mgr.bddAnd(nodeBdd[g.fanins[0]], nodeBdd[g.fanins[1]]));
        break;
      case GateType::kOr:
        nodeBdd[id] = mgr.bddOr(nodeBdd[g.fanins[0]], nodeBdd[g.fanins[1]]);
        break;
      case GateType::kNor:
        nodeBdd[id] = mgr.bddNot(mgr.bddOr(nodeBdd[g.fanins[0]], nodeBdd[g.fanins[1]]));
        break;
      default:
        FAIL() << "unexpected gate in s27 cone";
    }
  }
  EXPECT_EQ(viaSat.mintermCount, mgr.satCount(nodeBdd[g17]));
  EXPECT_FALSE(viaSat.mintermCount.isZero());
}

}  // namespace
}  // namespace presat
