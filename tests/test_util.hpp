// Shared helpers for the test suite: random formula / circuit generation.
#pragma once

#include "base/rng.hpp"
#include "cnf/cnf.hpp"

namespace presat::testutil {

// Random k-CNF with clause lengths in [1, maxLen]; may be SAT or UNSAT.
inline Cnf randomCnf(Rng& rng, int vars, int clauses, int maxLen = 3) {
  Cnf cnf(vars);
  for (int i = 0; i < clauses; ++i) {
    Clause c;
    int len = static_cast<int>(rng.range(1, maxLen));
    for (int j = 0; j < len; ++j) {
      c.push_back(mkLit(static_cast<Var>(rng.below(static_cast<uint64_t>(vars))), rng.flip()));
    }
    cnf.addClause(c);
  }
  return cnf;
}

// Pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes — classically UNSAT
// and hard for resolution; exercises conflict analysis heavily.
inline Cnf pigeonhole(int holes) {
  int pigeons = holes + 1;
  Cnf cnf(pigeons * holes);
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  // Every pigeon sits in some hole.
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(mkLit(var(p, h)));
    cnf.addClause(c);
  }
  // No two pigeons share a hole.
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        cnf.addBinary(~mkLit(var(p, h)), ~mkLit(var(q, h)));
      }
    }
  }
  return cnf;
}

}  // namespace presat::testutil
