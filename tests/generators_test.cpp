// Generator tests: each benchmark circuit must implement its specified
// transition function.
#include <gtest/gtest.h>

#include <set>

#include "base/rng.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/simulator.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/transition_system.hpp"

namespace presat {
namespace {

uint64_t toBits(const std::vector<bool>& v) {
  uint64_t bits = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) bits |= 1ull << i;
  }
  return bits;
}

std::vector<bool> fromBits(uint64_t bits, int n) {
  std::vector<bool> v(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = (bits >> i) & 1;
  return v;
}

TEST(Generators, CounterCountsExactly) {
  for (int bits : {1, 3, 5, 8}) {
    Netlist nl = makeCounter(bits);
    TransitionSystem ts(nl);
    uint64_t mask = (bits == 64) ? ~0ull : (1ull << bits) - 1;
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
      uint64_t s = rng.below(mask + 1);
      EXPECT_EQ(toBits(ts.step(fromBits(s, bits), {true})), (s + 1) & mask);
      EXPECT_EQ(toBits(ts.step(fromBits(s, bits), {false})), s);
    }
  }
}

TEST(Generators, CounterWithoutEnable) {
  Netlist nl = makeCounter(3, /*withEnable=*/false);
  TransitionSystem ts(nl);
  EXPECT_EQ(ts.numInputs(), 0);
  EXPECT_EQ(toBits(ts.step(fromBits(5, 3), {})), 6u);
  EXPECT_EQ(toBits(ts.step(fromBits(7, 3), {})), 0u);
}

TEST(Generators, GrayCounterVisitsAllStatesOnce) {
  const int bits = 5;
  Netlist nl = makeGrayCounter(bits);
  TransitionSystem ts(nl);
  std::vector<bool> state(bits, false);
  std::set<uint64_t> seen;
  for (int i = 0; i < (1 << bits); ++i) {
    EXPECT_TRUE(seen.insert(toBits(state)).second) << "revisit at step " << i;
    std::vector<bool> next = ts.step(state, {});
    // Gray property: successive states differ in exactly one bit.
    int diff = 0;
    for (int b = 0; b < bits; ++b) diff += state[static_cast<size_t>(b)] != next[static_cast<size_t>(b)];
    EXPECT_EQ(diff, 1);
    state = next;
  }
  EXPECT_EQ(toBits(state), 0u);  // full cycle
  EXPECT_EQ(seen.size(), static_cast<size_t>(1 << bits));
}

TEST(Generators, LfsrShiftsWhenEnabled) {
  const int bits = 6;
  Netlist nl = makeLfsr(bits);
  TransitionSystem ts(nl);
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t s = rng.below(1ull << bits);
    std::vector<bool> state = fromBits(s, bits);
    // Disabled: hold.
    EXPECT_EQ(toBits(ts.step(state, {false})), s);
    // Enabled: shift left through the register with XOR feedback of the two
    // top taps into bit 0.
    bool fb = ((s >> (bits - 1)) & 1) ^ ((s >> (bits - 2)) & 1);
    uint64_t expected = ((s << 1) | (fb ? 1 : 0)) & ((1ull << bits) - 1);
    EXPECT_EQ(toBits(ts.step(state, {true})), expected);
  }
}

TEST(Generators, ShiftRegisterDelaysInput) {
  const int bits = 4;
  Netlist nl = makeShiftRegister(bits);
  TransitionSystem ts(nl);
  std::vector<bool> state(bits, false);
  // Feed 1,0,1,1 and watch it arrive at the output after `bits` cycles.
  bool pattern[] = {true, false, true, true};
  for (bool b : pattern) state = ts.step(state, {b});
  EXPECT_EQ(toBits(state), 0b1011u);  // s0 = newest bit, s3 = oldest
}

TEST(Generators, ArbiterGrantsAreOneHotAndFair) {
  for (int clients : {2, 3, 4}) {
    Netlist nl = makeRoundRobinArbiter(clients);
    TransitionSystem ts(nl);
    EXPECT_EQ(ts.numStateBits(), clients);
    Rng rng(13);
    // Start with pointer at client 0.
    std::vector<bool> state(static_cast<size_t>(clients), false);
    state[0] = true;
    Simulator sim(nl);
    for (int cycle = 0; cycle < 100; ++cycle) {
      std::vector<bool> req(static_cast<size_t>(clients));
      for (int i = 0; i < clients; ++i) req[static_cast<size_t>(i)] = rng.flip();
      // Evaluate grants (outputs) for this state/request combination.
      std::vector<bool> sources(nl.numNodes(), false);
      for (int i = 0; i < clients; ++i) {
        sources[ts.stateNode(i)] = state[static_cast<size_t>(i)];
        sources[ts.inputNode(i)] = req[static_cast<size_t>(i)];
      }
      auto values = Simulator::evaluateOnce(nl, sources);
      int grants = 0;
      for (NodeId out : nl.outputs()) grants += values[out] ? 1 : 0;
      bool anyReq = false;
      for (bool r : req) anyReq |= r;
      EXPECT_EQ(grants, anyReq ? 1 : 0) << "clients " << clients << " cycle " << cycle;
      // A granted client must have requested.
      for (int i = 0; i < clients; ++i) {
        if (values[nl.outputs()[static_cast<size_t>(i)]]) {
          EXPECT_TRUE(req[static_cast<size_t>(i)]);
        }
      }
      state = ts.step(state, req);
      // Pointer stays one-hot.
      int hot = 0;
      for (bool b : state) hot += b ? 1 : 0;
      ASSERT_EQ(hot, 1);
    }
  }
}

TEST(Generators, TrafficLightSafetyInvariant) {
  Netlist nl = makeTrafficLight();
  TransitionSystem ts(nl);
  // From the reset state, the two green lights are never on simultaneously.
  NodeId hwyGreen = nl.findByName("isHG");
  NodeId farmGreen = nl.findByName("isFG");
  ASSERT_NE(hwyGreen, kNoNode);
  ASSERT_NE(farmGreen, kNoNode);
  Rng rng(17);
  std::vector<bool> state(4, false);  // HG with timer 0
  for (int cycle = 0; cycle < 300; ++cycle) {
    std::vector<bool> sources(nl.numNodes(), false);
    for (int i = 0; i < 4; ++i) sources[ts.stateNode(i)] = state[static_cast<size_t>(i)];
    sources[ts.inputNode(0)] = rng.flip();
    auto values = Simulator::evaluateOnce(nl, sources);
    EXPECT_FALSE(values[hwyGreen] && values[farmGreen]) << "cycle " << cycle;
    state = ts.step(state, {rng.flip()});
  }
}

TEST(Generators, RandomCircuitIsDeterministic) {
  RandomCircuitParams params;
  params.seed = 42;
  Netlist a = makeRandomSequential(params);
  Netlist b = makeRandomSequential(params);
  EXPECT_EQ(toBenchString(a), toBenchString(b));
  params.seed = 43;
  Netlist c = makeRandomSequential(params);
  EXPECT_NE(toBenchString(a), toBenchString(c));
}

TEST(Generators, RandomCircuitRespectsParams) {
  RandomCircuitParams params;
  params.numInputs = 5;
  params.numDffs = 7;
  params.numGates = 50;
  params.seed = 3;
  Netlist nl = makeRandomSequential(params);
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.dffs().size(), 7u);
  EXPECT_EQ(nl.numGates(), 50u);
  nl.validate();
}

TEST(Generators, AccumulatorAddsInput) {
  const int bits = 5;
  Netlist nl = makeAccumulator(bits);
  TransitionSystem ts(nl);
  Rng rng(23);
  uint64_t mask = (1ull << bits) - 1;
  for (int trial = 0; trial < 60; ++trial) {
    uint64_t s = rng.below(mask + 1);
    uint64_t a = rng.below(mask + 1);
    EXPECT_EQ(toBits(ts.step(fromBits(s, bits), fromBits(a, bits))), (s + a) & mask)
        << s << " + " << a;
  }
}

TEST(Iscas, S27IsTheCanonicalCircuit) {
  Netlist nl = makeS27();
  TransitionSystem ts(nl);
  EXPECT_EQ(ts.numStateBits(), 3);
  EXPECT_EQ(ts.numInputs(), 4);
  // Behavioural spot check against the known equations:
  //   G10' = NOR(~G0, G11), G11' = NOR(G5, G9), G13' = NAND(G2, G12).
  // From all-zero state with all-zero inputs: G14=1, G12=NOR(0,0)=1,
  // G8=AND(1,0)=0, G15=OR(1,0)=1, G16=OR(0,0)=0, G9=NAND(0,1)=1,
  // G11=NOR(0,1)=0, G10=NOR(1,0)=0, G13=NAND(0,1)=1.
  std::vector<bool> next = ts.step({false, false, false}, {false, false, false, false});
  EXPECT_EQ(next, (std::vector<bool>{false, false, true}));
}

}  // namespace
}  // namespace presat
