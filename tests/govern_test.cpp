// Resource-governance tests (src/govern/): the Budget/Governor/CancelToken
// primitives, the degradation contract of every enumeration engine under
// deadline / memory / cancellation trips (partial results must be SOUND
// under-approximations, verified against the ungoverned BDD oracle), the
// parallel runner's cooperative cancellation, the fixpoint loops' partial
// folds, and — in PRESAT_FAULTS builds — the deterministic fault-injection
// harness at every governed site.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "allsat/chrono_blocking.hpp"
#include "allsat/cube_blocking.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/projection.hpp"
#include "allsat/success_driven.hpp"
#include "base/metrics.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "check/audit_solver.hpp"
#include "cnf/preprocess.hpp"
#include "gen/generators.hpp"
#include "govern/budget.hpp"
#include "govern/faults.hpp"
#include "govern/governor.hpp"
#include "parallel/parallel_allsat.hpp"
#include "preimage/preimage.hpp"
#include "preimage/reachability.hpp"
#include "preimage/safety.hpp"
#include "preimage/target.hpp"
#include "preimage/transition_system.hpp"
#include "sat/dpll.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"

namespace presat {
namespace {

// True iff the union of `cubes` is contained in the union of `oracle` over
// `width` projected variables — the soundness half of the degradation
// contract, checked through an ungoverned scratch BDD.
bool cubesSubsetOf(const std::vector<LitVec>& cubes, const std::vector<LitVec>& oracle,
                   int width) {
  BddManager mgr(width);
  BddRef got = cubesToBdd(mgr, cubes);
  BddRef ref = cubesToBdd(mgr, oracle);
  return mgr.bddAnd(got, mgr.bddNot(ref)) == BddManager::kFalse;
}

bool statesSubsetOf(const StateSet& got, const StateSet& ref) {
  EXPECT_EQ(got.numStateBits, ref.numStateBits);
  return cubesSubsetOf(got.cubes, ref.cubes, got.numStateBits);
}

// --- Outcome vocabulary -------------------------------------------------------

TEST(Outcome, Names) {
  EXPECT_STREQ(outcomeName(Outcome::kComplete), "complete");
  EXPECT_STREQ(outcomeName(Outcome::kDeadline), "deadline");
  EXPECT_STREQ(outcomeName(Outcome::kMemory), "memory");
  EXPECT_STREQ(outcomeName(Outcome::kConflicts), "conflicts");
  EXPECT_STREQ(outcomeName(Outcome::kCancelled), "cancelled");
  EXPECT_STREQ(outcomeName(Outcome::kCubeCap), "cube-cap");
}

TEST(Outcome, CombineIsIdentityOnComplete) {
  for (Outcome o : {Outcome::kComplete, Outcome::kDeadline, Outcome::kMemory,
                    Outcome::kConflicts, Outcome::kCancelled, Outcome::kCubeCap}) {
    EXPECT_EQ(combineOutcomes(Outcome::kComplete, o), o);
    EXPECT_EQ(combineOutcomes(o, Outcome::kComplete), o);
  }
}

TEST(Outcome, CombinePicksMostUrgentReason) {
  // Urgency: cancelled > memory > deadline > conflicts > cube cap.
  EXPECT_EQ(combineOutcomes(Outcome::kCubeCap, Outcome::kConflicts), Outcome::kConflicts);
  EXPECT_EQ(combineOutcomes(Outcome::kConflicts, Outcome::kDeadline), Outcome::kDeadline);
  EXPECT_EQ(combineOutcomes(Outcome::kDeadline, Outcome::kMemory), Outcome::kMemory);
  EXPECT_EQ(combineOutcomes(Outcome::kMemory, Outcome::kCancelled), Outcome::kCancelled);
  EXPECT_EQ(combineOutcomes(Outcome::kCancelled, Outcome::kCubeCap), Outcome::kCancelled);
  EXPECT_EQ(combineOutcomes(Outcome::kDeadline, Outcome::kDeadline), Outcome::kDeadline);
}

// --- CancelToken --------------------------------------------------------------

TEST(CancelToken, LatchesUntilReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  Budget budget;
  budget.cancel = &token;
  Governor governor(budget);
  std::thread canceller([&token] { token.cancel(); });
  canceller.join();
  EXPECT_EQ(governor.poll(), Outcome::kCancelled);
  EXPECT_TRUE(governor.tripped());
}

// --- Governor -----------------------------------------------------------------

TEST(Governor, UnlimitedBudgetNeverTrips) {
  Budget budget;
  EXPECT_TRUE(budget.unlimited());
  Governor governor(budget);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(governor.poll(), Outcome::kComplete);
  EXPECT_FALSE(governor.tripped());
  EXPECT_EQ(governor.reason(), Outcome::kComplete);
}

TEST(Governor, FirstTripReasonWins) {
  Budget budget;
  Governor governor(budget);
  governor.trip(Outcome::kDeadline);
  governor.trip(Outcome::kMemory);  // too late: the first reason is latched
  EXPECT_EQ(governor.reason(), Outcome::kDeadline);
  EXPECT_EQ(governor.poll(), Outcome::kDeadline);
}

TEST(Governor, MemoryCeilingTripsAtNextPollAndStaysLatched) {
  Budget budget;
  budget.memLimitBytes = 1000;
  Governor governor(budget);
  governor.charge(999);
  EXPECT_EQ(governor.poll(), Outcome::kComplete);
  governor.charge(2);  // 1001 > 1000
  EXPECT_EQ(governor.trackedBytes(), 1001u);
  EXPECT_EQ(governor.poll(), Outcome::kMemory);
  // Releasing below the ceiling does not untrip: the latch is one-way.
  governor.release(1001);
  EXPECT_EQ(governor.poll(), Outcome::kMemory);
  EXPECT_EQ(governor.peakTrackedBytes(), 1001u);
}

TEST(Governor, ConflictLimitTrips) {
  Budget budget;
  budget.conflictLimit = 10;
  Governor governor(budget);
  governor.countConflicts(9);
  EXPECT_EQ(governor.poll(), Outcome::kComplete);
  governor.countConflicts(1);
  EXPECT_EQ(governor.poll(), Outcome::kConflicts);
}

TEST(Governor, DeadlineTrips) {
  Budget budget;
  budget.deadlineSeconds = 1e-9;
  Governor governor(budget);
  // Clock reads are decimated, so spin: well before 10k polls one lands on a
  // clock-read tick with elapsed > 1ns.
  Outcome outcome = Outcome::kComplete;
  for (int i = 0; i < 10000 && outcome == Outcome::kComplete; ++i) outcome = governor.poll();
  EXPECT_EQ(outcome, Outcome::kDeadline);
}

TEST(Governor, ExportMetricsEmitsGovernBlock) {
  Budget budget;
  budget.memLimitBytes = 4096;
  budget.conflictLimit = 7;
  Governor governor(budget);
  governor.charge(100);
  governor.countConflicts(3);
  governor.poll();
  Metrics m;
  governor.exportMetrics(m);
  EXPECT_EQ(m.counter("govern.tracked_bytes"), 100u);
  EXPECT_EQ(m.counter("govern.tracked_bytes_peak"), 100u);
  EXPECT_EQ(m.counter("govern.conflicts"), 3u);
  EXPECT_EQ(m.counter("govern.mem_limit_bytes"), 4096u);
  EXPECT_EQ(m.counter("govern.conflict_limit"), 7u);
  EXPECT_GE(m.counter("govern.polls"), 1u);
  EXPECT_EQ(m.label("govern.outcome"), "complete");
}

// --- MemoryLedger -------------------------------------------------------------

TEST(MemoryLedger, TracksHeldBytesAndReleasesOnDestruction) {
  Budget budget;
  Governor governor(budget);
  {
    MemoryLedger ledger;
    ledger.attach(&governor);
    ledger.charge(500);
    ledger.charge(250);
    EXPECT_EQ(ledger.held(), 750u);
    EXPECT_EQ(governor.trackedBytes(), 750u);
    ledger.release(200);
    EXPECT_EQ(ledger.held(), 550u);
    EXPECT_EQ(governor.trackedBytes(), 550u);
    // Over-release is clamped to what this ledger actually holds, so one
    // owner can never drain another owner's bytes from the shared pool.
    ledger.release(10000);
    EXPECT_EQ(ledger.held(), 0u);
    EXPECT_EQ(governor.trackedBytes(), 0u);
    ledger.charge(123);
  }  // destructor releases the outstanding 123
  EXPECT_EQ(governor.trackedBytes(), 0u);
  EXPECT_EQ(governor.peakTrackedBytes(), 750u);
}

TEST(MemoryLedger, ReattachReleasesAndNullIsNoOp) {
  Budget budget;
  Governor a(budget);
  Governor b(budget);
  MemoryLedger ledger;
  ledger.attach(&a);
  ledger.charge(64);
  EXPECT_EQ(a.trackedBytes(), 64u);
  ledger.attach(&b);  // moves ownership: releases from a, starts fresh on b
  EXPECT_EQ(a.trackedBytes(), 0u);
  EXPECT_EQ(ledger.held(), 0u);
  ledger.charge(32);
  EXPECT_EQ(b.trackedBytes(), 32u);
  ledger.attach(nullptr);
  EXPECT_EQ(b.trackedBytes(), 0u);
  ledger.charge(1 << 20);  // detached: free no-op
  EXPECT_EQ(ledger.held(), 0u);
}

// --- CNF engines under a governor --------------------------------------------

TEST(GovernedEngines, PreCancelledTokenStopsBeforeAnyCube) {
  Cnf cnf(5);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection = {0, 1, 2, 3, 4};
  CancelToken token;
  token.cancel();
  Budget budget;
  budget.cancel = &token;

  struct Run {
    const char* name;
    AllSatResult result;
  };
  std::vector<Run> runs;
  {
    Governor g(budget);
    AllSatOptions opts;
    opts.governor = &g;
    runs.push_back({"minterm", mintermBlockingAllSat(cnf, projection, opts)});
  }
  {
    Governor g(budget);
    AllSatOptions opts;
    opts.governor = &g;
    runs.push_back({"cube", cubeBlockingAllSat(cnf, projection, {}, opts)});
  }
  {
    Governor g(budget);
    AllSatOptions opts;
    opts.governor = &g;
    runs.push_back({"chrono", chronoAllSat(cnf, projection, opts)});
  }
  for (const Run& run : runs) {
    EXPECT_FALSE(run.result.complete) << run.name;
    EXPECT_EQ(run.result.outcome, Outcome::kCancelled) << run.name;
    EXPECT_TRUE(run.result.cubes.empty()) << run.name;
    EXPECT_TRUE(run.result.mintermCount.isZero()) << run.name;
    EXPECT_EQ(run.result.metrics.label("outcome"), "cancelled") << run.name;
    EXPECT_EQ(run.result.metrics.label("govern.outcome"), "cancelled") << run.name;
  }
}

// Budget::conflictLimit is the GLOBAL cap (distinct from the per-call
// conflictBudget): starved runs across random CNFs must degrade to sound
// under-approximations for every CDCL engine.
TEST(GovernedEngines, GlobalConflictLimitYieldsSoundPartials) {
  Rng rng(101);
  int sawPartial = 0;
  for (int iter = 0; iter < 40; ++iter) {
    int vars = static_cast<int>(rng.range(3, 8));
    Cnf cnf = testutil::randomCnf(rng, vars, static_cast<int>(rng.range(6, 24)));
    std::vector<Var> projection;
    for (Var v = 0; v < vars; ++v) projection.push_back(v);
    std::set<uint64_t> exact = bruteForceProjectedSolutions(cnf, projection);

    for (int engine = 0; engine < 3; ++engine) {
      Budget budget;
      budget.conflictLimit = 1;
      Governor governor(budget);
      AllSatOptions opts;
      opts.governor = &governor;
      opts.chronoShrink = false;
      AllSatResult r = engine == 0   ? mintermBlockingAllSat(cnf, projection, opts)
                       : engine == 1 ? cubeBlockingAllSat(cnf, projection, {}, opts)
                                     : chronoAllSat(cnf, projection, opts);

      for (const LitVec& cube : r.cubes) {
        for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
          if (cubeCoversMinterm(cube, bits)) {
            EXPECT_TRUE(exact.count(bits))
                << "engine " << engine << " iter " << iter << " unsound minterm " << bits;
          }
        }
      }
      EXPECT_LE(r.mintermCount.toU64(), exact.size()) << "engine " << engine;
      if (r.complete) {
        EXPECT_EQ(r.outcome, Outcome::kComplete);
        EXPECT_EQ(r.mintermCount.toU64(), exact.size()) << "engine " << engine;
      } else {
        EXPECT_EQ(r.outcome, Outcome::kConflicts) << "engine " << engine;
        ++sawPartial;
      }
    }
  }
  EXPECT_GT(sawPartial, 0);
}

// --- per-engine preimage degradation matrix ----------------------------------

// Every preimage engine × every budget trip: the result must carry the right
// reason code and a state set that is a subset of the ungoverned BDD oracle
// with a lower-bound count. (The BDD engines degrade to the empty set; the
// SAT engines keep whatever cubes they finished.)
TEST(GovernedPreimage, DegradationMatrixIsSoundAgainstBddOracle) {
  Netlist nl = makeGrayCounter(3);
  TransitionSystem ts(nl);
  const int n = ts.numStateBits();
  StateSet target = StateSet::fromCube(n, {mkLit(0)});
  PreimageResult oracle = computePreimage(ts, target, PreimageMethod::kBdd, {});
  ASSERT_TRUE(oracle.complete);

  CancelToken cancelled;
  cancelled.cancel();

  struct Trip {
    const char* name;
    Outcome want;
    Budget budget;
  };
  std::vector<Trip> trips;
  {
    Trip t{"cancel", Outcome::kCancelled, {}};
    t.budget.cancel = &cancelled;
    trips.push_back(t);
  }
  {
    Trip t{"memory", Outcome::kMemory, {}};
    t.budget.memLimitBytes = 1;  // any tracked allocation exceeds it
    trips.push_back(t);
  }
  {
    Trip t{"deadline", Outcome::kDeadline, {}};
    t.budget.deadlineSeconds = 1e-12;  // expired before the first poll
    trips.push_back(t);
  }

  for (PreimageMethod method : kAllPreimageMethods) {
    for (const Trip& trip : trips) {
      Governor governor(trip.budget);
      PreimageOptions opts;
      opts.allsat.governor = &governor;
      PreimageResult r = computePreimage(ts, target, method, opts);
      const char* label = preimageMethodName(method);
      EXPECT_FALSE(r.complete) << label << "/" << trip.name;
      EXPECT_EQ(r.outcome, trip.want) << label << "/" << trip.name;
      EXPECT_TRUE(statesSubsetOf(r.states, oracle.states)) << label << "/" << trip.name;
      EXPECT_LE(r.stateCount, oracle.stateCount) << label << "/" << trip.name;
      EXPECT_EQ(r.metrics.label("outcome"), outcomeName(trip.want))
          << label << "/" << trip.name;
    }
    // The same method, ungoverned, still matches the oracle exactly — the
    // governed runs above leaked no state into the serial engines.
    PreimageResult clean = computePreimage(ts, target, method, {});
    EXPECT_TRUE(clean.complete) << preimageMethodName(method);
    EXPECT_EQ(clean.stateCount, oracle.stateCount) << preimageMethodName(method);
    EXPECT_TRUE(sameStates(clean.states, oracle.states)) << preimageMethodName(method);
  }
}

// --- parallel cancellation ----------------------------------------------------

TEST(GovernedParallel, PreCancelledJobs4SkipsEveryShard) {
  Cnf cnf(6);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection = {0, 1, 2, 3, 4, 5};
  CancelToken token;
  token.cancel();
  Budget budget;
  budget.cancel = &token;
  Governor governor(budget);
  AllSatOptions opts;
  opts.governor = &governor;
  opts.parallel.jobs = 4;
  AllSatResult r =
      parallelCnfAllSat(cnf, projection, ParallelCnfEngine::kChrono, {}, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kCancelled);
  EXPECT_TRUE(r.cubes.empty());
  EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
  EXPECT_GE(r.metrics.counter("parallel.shards_skipped"), 1u);
  EXPECT_EQ(r.metrics.label("outcome"), "cancelled");
}

// Cancellation lands while 4 workers are mid-enumeration: in-flight shards
// drain, whatever merged must be pairwise disjoint (each shard under-
// enumerates its own region of the partition) and a sound subset of the
// brute-force solution set.
TEST(GovernedParallel, MidRunCancelJobs4MergedShardsStayDisjointAndSound) {
  const int vars = 14;
  Cnf cnf(vars);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection;
  for (Var v = 0; v < vars; ++v) projection.push_back(v);
  std::set<uint64_t> exact = bruteForceProjectedSolutions(cnf, projection);

  CancelToken token;
  Budget budget;
  budget.cancel = &token;
  Governor governor(budget);
  AllSatOptions opts;
  opts.governor = &governor;
  opts.parallel.jobs = 4;
  opts.chronoShrink = false;  // minterm-grained: plenty of work to interrupt
  std::thread watchdog([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.cancel();
  });
  AllSatResult r =
      parallelCnfAllSat(cnf, projection, ParallelCnfEngine::kChrono, {}, opts);
  watchdog.join();

  // Where the cancel landed is timing-dependent; the contract is not.
  EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
  for (const LitVec& cube : r.cubes) {
    for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
      if (cubeCoversMinterm(cube, bits)) {
        EXPECT_TRUE(exact.count(bits)) << bits;
      }
    }
  }
  EXPECT_LE(r.mintermCount.toU64(), exact.size());
  if (r.complete) {
    EXPECT_EQ(r.outcome, Outcome::kComplete);
    EXPECT_EQ(r.mintermCount.toU64(), exact.size());
  } else {
    EXPECT_EQ(r.outcome, Outcome::kCancelled);
  }
}

TEST(GovernedParallel, SuccessDrivenPreCancelledDegradesSoundly) {
  Netlist nl = makeLfsr(4);
  TransitionSystem ts(nl);
  const int n = ts.numStateBits();
  StateSet target = StateSet::fromCube(n, {mkLit(0)});
  PreimageResult oracle = computePreimage(ts, target, PreimageMethod::kBdd, {});

  CancelToken token;
  token.cancel();
  Budget budget;
  budget.cancel = &token;
  Governor governor(budget);
  PreimageOptions opts;
  opts.allsat.governor = &governor;
  opts.allsat.parallel.jobs = 4;
  PreimageResult r = computePreimage(ts, target, PreimageMethod::kSuccessDriven, opts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kCancelled);
  EXPECT_TRUE(statesSubsetOf(r.states, oracle.states));
  EXPECT_LE(r.stateCount, oracle.stateCount);
}

// --- fixpoint loops -----------------------------------------------------------

TEST(GovernedReach, TripFoldsSoundPrefixAndNeverClaimsFixpoint) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  const int n = ts.numStateBits();
  StateSet target = StateSet::fromCube(n, {mkLit(0), mkLit(1), mkLit(2), mkLit(3)});
  ReachabilityResult oracle = backwardReach(ts, target, 32, PreimageMethod::kBdd, {});
  ASSERT_TRUE(oracle.fixpoint);
  ASSERT_EQ(oracle.outcome, Outcome::kComplete);

  CancelToken token;
  token.cancel();
  Budget budget;
  budget.cancel = &token;
  Governor governor(budget);
  PreimageOptions opts;
  opts.allsat.governor = &governor;
  ReachabilityResult r = backwardReach(ts, target, 32, PreimageMethod::kChrono, opts);
  EXPECT_EQ(r.outcome, Outcome::kCancelled);
  EXPECT_FALSE(r.fixpoint);
  EXPECT_TRUE(statesSubsetOf(r.reached, oracle.reached));
  EXPECT_EQ(r.metrics.label("outcome"), "cancelled");
}

TEST(GovernedSafety, TripDegradesVerdictToUnknownNeverSafe) {
  Netlist nl = makeCounter(4);
  TransitionSystem ts(nl);
  const int n = ts.numStateBits();
  StateSet init = StateSet::fromMinterm(n, 0);
  StateSet bad = StateSet::fromMinterm(n, (1u << n) - 1);

  SafetyOptions ungovOpts;
  ungovOpts.method = PreimageMethod::kChrono;
  SafetyResult ungoverned = checkSafety(ts, init, bad, ungovOpts);
  ASSERT_EQ(ungoverned.status, SafetyStatus::kUnsafe);  // the counter counts up

  CancelToken token;
  token.cancel();
  Budget budget;
  budget.cancel = &token;
  Governor governor(budget);
  SafetyOptions opts;
  opts.method = PreimageMethod::kChrono;
  opts.preimage.allsat.governor = &governor;
  SafetyResult r = checkSafety(ts, init, bad, opts);
  EXPECT_EQ(r.status, SafetyStatus::kUnknown);
  EXPECT_EQ(r.outcome, Outcome::kCancelled);
  EXPECT_TRUE(r.traceStates.empty());
  EXPECT_TRUE(r.traceInputs.empty());
  EXPECT_EQ(r.metrics.label("outcome"), "cancelled");
}

// --- fault injection (PRESAT_FAULTS builds only) ------------------------------

#if defined(PRESAT_FAULTS)

// Disarms on scope exit so a failing expectation cannot leak an armed fault
// into the next test.
struct FaultGuard {
  FaultGuard(const char* site, uint64_t after) { faults::armFault(site, after); }
  ~FaultGuard() { faults::disarmFaults(); }
};

TEST(FaultInjection, GovernPollSitesTripTheirReason) {
  struct Case {
    const char* site;
    Outcome want;
  };
  const Case cases[] = {
      {"govern.cancel", Outcome::kCancelled},
      {"govern.memory", Outcome::kMemory},
      {"govern.deadline", Outcome::kDeadline},
  };
  Cnf cnf(6);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection = {0, 1, 2, 3, 4, 5};
  std::set<uint64_t> exact = bruteForceProjectedSolutions(cnf, projection);

  for (const Case& c : cases) {
    FaultGuard guard(c.site, 3);
    Governor governor(Budget{});
    AllSatOptions opts;
    opts.governor = &governor;
    opts.chronoShrink = false;  // enough enumeration steps to reach hit #3
    AllSatResult r = chronoAllSat(cnf, projection, opts);
    EXPECT_TRUE(faults::faultFired()) << c.site;
    EXPECT_FALSE(r.complete) << c.site;
    EXPECT_EQ(r.outcome, c.want) << c.site;
    EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes)) << c.site;
    for (const LitVec& cube : r.cubes) {
      for (uint64_t bits = 0; bits < 64; ++bits) {
        if (cubeCoversMinterm(cube, bits)) {
          EXPECT_TRUE(exact.count(bits)) << c.site;
        }
      }
    }
    EXPECT_LE(r.mintermCount.toU64(), exact.size()) << c.site;
  }
}

TEST(FaultInjection, SatAllocFaultDegradesBlockingEngineToSoundPartial) {
  Cnf cnf(6);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addBinary(mkLit(2), mkLit(3));
  std::vector<Var> projection = {0, 1, 2, 3, 4, 5};
  std::set<uint64_t> exact = bruteForceProjectedSolutions(cnf, projection);

  // Fire on the 4th clause allocation: past the 2 originals, inside the
  // blocking-clause stream, so some cubes exist before the injected failure.
  FaultGuard guard("sat.alloc", 4);
  Governor governor(Budget{});
  AllSatOptions opts;
  opts.governor = &governor;
  AllSatResult r = mintermBlockingAllSat(cnf, projection, opts);
  EXPECT_TRUE(faults::faultFired());
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kMemory);
  for (const LitVec& cube : r.cubes) {
    for (uint64_t bits = 0; bits < 64; ++bits) {
      if (cubeCoversMinterm(cube, bits)) {
        EXPECT_TRUE(exact.count(bits));
      }
    }
  }
  EXPECT_LE(r.mintermCount.toU64(), exact.size());
}

TEST(FaultInjection, BddAllocFaultDegradesSymbolicEngines) {
  Netlist nl = makeGrayCounter(3);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromCube(ts.numStateBits(), {mkLit(0)});
  PreimageResult oracle = computePreimage(ts, target, PreimageMethod::kBdd, {});

  for (PreimageMethod method : {PreimageMethod::kBdd, PreimageMethod::kBddRelational}) {
    FaultGuard guard("bdd.alloc", 10);
    Governor governor(Budget{});
    PreimageOptions opts;
    opts.allsat.governor = &governor;
    PreimageResult r = computePreimage(ts, target, method, opts);
    EXPECT_TRUE(faults::faultFired()) << preimageMethodName(method);
    EXPECT_FALSE(r.complete) << preimageMethodName(method);
    EXPECT_EQ(r.outcome, Outcome::kMemory) << preimageMethodName(method);
    EXPECT_TRUE(statesSubsetOf(r.states, oracle.states)) << preimageMethodName(method);
  }
}

TEST(FaultInjection, SolutionGraphFaultDegradesSuccessDriven) {
  Netlist nl = makeGrayCounter(3);
  TransitionSystem ts(nl);
  StateSet target = StateSet::fromCube(ts.numStateBits(), {mkLit(0)});
  PreimageResult oracle = computePreimage(ts, target, PreimageMethod::kBdd, {});

  FaultGuard guard("sd.node", 5);
  Governor governor(Budget{});
  PreimageOptions opts;
  opts.allsat.governor = &governor;
  PreimageResult r = computePreimage(ts, target, PreimageMethod::kSuccessDriven, opts);
  EXPECT_TRUE(faults::faultFired());
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kMemory);
  EXPECT_TRUE(statesSubsetOf(r.states, oracle.states));
  EXPECT_LE(r.stateCount, oracle.stateCount);
}

TEST(FaultInjection, PreprocessFaultFallsBackToIdentityAndTripsGovernor) {
  Cnf cnf(4);
  cnf.addBinary(mkLit(0), mkLit(1));
  cnf.addClause({mkLit(1), mkLit(2), mkLit(3)});
  cnf.addClause({mkLit(2)});  // x2 also pure: reducible when the pass runs

  FaultGuard guard("cnf.preprocess", 1);
  Governor governor(Budget{});
  PreprocessedCnf pre = preprocessCnf(cnf, {0, 1}, &governor);
  EXPECT_TRUE(faults::faultFired());
  EXPECT_EQ(governor.poll(), Outcome::kMemory);
  // The degraded pass is the identity map: same formula, nothing eliminated,
  // every variable mapped to itself — sound, just unreduced.
  EXPECT_EQ(pre.stats.identityFallback, 1u);
  EXPECT_EQ(pre.cnf.numVars(), cnf.numVars());
  EXPECT_EQ(pre.cnf.numClauses(), cnf.numClauses());
  EXPECT_TRUE(pre.forcedLits.empty());
  for (Var v = 0; v < cnf.numVars(); ++v) {
    EXPECT_EQ(pre.internalVar(v), v);
  }
}

TEST(FaultInjection, ArenaCompactFaultTripsMemoryButArenaStaysConsistent) {
  Solver s;
  for (int i = 0; i < 6; ++i) s.newVar();
  s.addClause({mkLit(0), mkLit(1)});
  s.addClause({mkLit(1), mkLit(2), mkLit(3)});
  s.addClause({~mkLit(0), mkLit(4), mkLit(5)});
  Governor governor(Budget{});
  s.setGovernor(&governor);

  FaultGuard guard("sat.arena.compact", 1);
  compactSolverForTest(s);
  EXPECT_TRUE(faults::faultFired());
  // The trip latches (the search would unwind at its next poll), but the
  // compaction itself completed: the clause database is intact and the
  // solver still answers.
  EXPECT_EQ(governor.poll(), Outcome::kMemory);
  AuditResult audit = auditSolver(s);
  EXPECT_TRUE(audit.ok()) << audit.toString();
  // Under the latched trip every solve unwinds to undef; detach to show the
  // post-compaction clause database still solves.
  s.setGovernor(nullptr);
  EXPECT_TRUE(s.solve().isTrue());
}

TEST(FaultInjection, WorkerShardFaultCancelsPoolButKeepsFinishedShards) {
  const int vars = 8;
  Cnf cnf(vars);
  cnf.addBinary(mkLit(0), mkLit(1));
  std::vector<Var> projection;
  for (Var v = 0; v < vars; ++v) projection.push_back(v);
  std::set<uint64_t> exact = bruteForceProjectedSolutions(cnf, projection);

  // The 2nd shard prologue injects a worker death, which cancels the shared
  // governor; the pool drains, never-ran shards are rewritten as skipped.
  FaultGuard guard("parallel.shard", 2);
  Governor governor(Budget{});
  AllSatOptions opts;
  opts.governor = &governor;
  opts.parallel.jobs = 4;
  AllSatResult r =
      parallelCnfAllSat(cnf, projection, ParallelCnfEngine::kChrono, {}, opts);
  EXPECT_TRUE(faults::faultFired());
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.outcome, Outcome::kCancelled);
  EXPECT_TRUE(cubesPairwiseDisjoint(r.cubes));
  for (const LitVec& cube : r.cubes) {
    for (uint64_t bits = 0; bits < (1ull << vars); ++bits) {
      if (cubeCoversMinterm(cube, bits)) {
        EXPECT_TRUE(exact.count(bits));
      }
    }
  }
  EXPECT_LE(r.mintermCount.toU64(), exact.size());
}

TEST(FaultInjection, ArmFromEnvParsesSiteAndCountdown) {
  // armFaultsFromEnv is exercised end-to-end by the CI sweep; here just
  // confirm the explicit-arm bookkeeping it shares: counting, exactly-once
  // firing, disarm reset.
  faults::armFault("sat.alloc", 2);
  EXPECT_FALSE(faults::maybeFail("bdd.alloc"));  // wrong site: no count
  EXPECT_FALSE(faults::maybeFail("sat.alloc"));  // hit 1 of 2
  EXPECT_FALSE(faults::faultFired());
  EXPECT_TRUE(faults::maybeFail("sat.alloc"));  // hit 2: fires
  EXPECT_TRUE(faults::faultFired());
  EXPECT_FALSE(faults::maybeFail("sat.alloc"));  // exactly once
  EXPECT_EQ(faults::faultHits(), 3u);
  faults::disarmFaults();
  EXPECT_FALSE(faults::faultFired());
  EXPECT_EQ(faults::faultHits(), 0u);
}

#endif  // PRESAT_FAULTS

}  // namespace
}  // namespace presat
