// Table 1 — one-step preimage enumeration across the benchmark suite.
//
// Reconstructs the paper's headline table: for each circuit and a fixed
// target cube, enumerate the complete preimage with every engine and report
// the state count, the number of solution cubes each engine produced, and
// runtime. Expected shape: minterm blocking degrades with the number of
// solutions; lifted cube blocking tracks the cube count; the success-driven
// solver tracks the (much smaller) solution-graph size; the BDD engine is
// fast on small state spaces but carries the transition-function build cost;
// projected chrono with wildcard compression reports the same state set with
// a cover no larger than the uncompressed chrono enumeration.
//
// The two par columns run the success-driven engine through the
// cube-and-conquer path (src/parallel/) at 1 and 8 workers; their ratio is
// the achieved parallel speedup (1.0 on a single-core host — the work is
// identical by the determinism contract, only the scheduling differs).
//
// Usage: bench_table1_preimage [out.jsonl] [seed]
//   out.jsonl  append one metrics line per engine run (trajectory format)
//   seed       CDCL decision seed threaded into every SAT engine run
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

using namespace presat;
using namespace presat::benchutil;

int main(int argc, char** argv) {
  const std::string jsonlPath = argc > 1 ? argv[1] : "";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

  std::vector<BenchCase> suite = standardSuite();
  // Minterm enumeration is capped: past this many solutions the baseline is
  // reported as timed out at the cap (the blow-up IS the result).
  constexpr uint64_t kMintermCap = 20000;

  std::printf(
      "Table 1: one-step preimage (complete enumeration)\n"
      "%-12s %5s %4s %6s | %12s | %9s %11s | %9s %11s | %9s %11s %9s | %9s %11s %7s | "
      "%9s %11s | %11s %9s | %9s %9s %6s\n",
      "circuit", "dffs", "pi", "gates", "pre-states", "mt-cubes", "mt-ms", "cb-cubes", "cb-ms",
      "sd-cubes", "sd-ms", "sd-graph", "ch-cubes", "ch-ms", "ch-db", "pj-cubes", "pj-ms",
      "bdd-ms", "bdd-nodes", "par1-ms", "par8-ms", "spdup");

  for (BenchCase& c : suite) {
    TransitionSystem system(c.netlist);

    PreimageOptions mintermOpts;
    mintermOpts.allsat.maxCubes = kMintermCap;
    mintermOpts.allsat.randomSeed = seed;
    PreimageResult minterm =
        computePreimage(system, c.target, PreimageMethod::kMintermBlocking, mintermOpts);

    PreimageOptions seeded;
    seeded.allsat.randomSeed = seed;
    PreimageResult cube =
        computePreimage(system, c.target, PreimageMethod::kCubeBlockingLifted, seeded);
    PreimageResult sd =
        computePreimage(system, c.target, PreimageMethod::kSuccessDriven, seeded);
    PreimageResult chrono = computePreimage(system, c.target, PreimageMethod::kChrono, seeded);
    PreimageResult bdd = computePreimage(system, c.target, PreimageMethod::kBdd);

    PreimageOptions par1 = seeded;
    par1.allsat.parallel.jobs = 1;
    PreimageResult sdPar1 =
        computePreimage(system, c.target, PreimageMethod::kSuccessDriven, par1);
    PreimageOptions par8 = seeded;
    par8.allsat.parallel.jobs = 8;
    PreimageResult sdPar8 =
        computePreimage(system, c.target, PreimageMethod::kSuccessDriven, par8);
    PreimageResult chronoPar1 = computePreimage(system, c.target, PreimageMethod::kChrono, par1);
    PreimageResult chronoPar8 = computePreimage(system, c.target, PreimageMethod::kChrono, par8);

    // Certificate-emitting chrono run: same query as `chrono` above but with
    // proof logging + presat-cert-v1 assembly on. Its series quantifies the
    // emission overhead; the plain chrono series above doubles as the
    // proof-logging-off control the 25% regression gate pins down.
    PreimageOptions certOpts = seeded;
    certOpts.emitCertificate = true;
    PreimageResult chronoCert =
        computePreimage(system, c.target, PreimageMethod::kChrono, certOpts);

    // Projected-native chrono with wildcard compression: same state set as
    // every engine above, but enumerated scope-first with the projected
    // early stop and compressed into a (usually much smaller) cover.
    PreimageOptions projOpts = seeded;
    projOpts.allsat.project = true;
    projOpts.allsat.compress = true;
    PreimageResult proj = computePreimage(system, c.target, PreimageMethod::kChrono, projOpts);
    PreimageOptions projPar1 = projOpts;
    projPar1.allsat.parallel.jobs = 1;
    PreimageResult projPar1R =
        computePreimage(system, c.target, PreimageMethod::kChrono, projPar1);
    PreimageOptions projPar8 = projOpts;
    projPar8.allsat.parallel.jobs = 8;
    PreimageResult projPar8R =
        computePreimage(system, c.target, PreimageMethod::kChrono, projPar8);

    // Sanity: complete engines must agree (minterm may be capped), and the
    // parallel runs must agree with the serial engine AND each other. The
    // chrono shards partition the space, so its par1 cube list differs from
    // the serial one — but par1 vs par8 must be bit-identical.
    if (cube.stateCount != sd.stateCount || sd.stateCount != bdd.stateCount ||
        (minterm.complete && minterm.stateCount != sd.stateCount) ||
        sdPar1.stateCount != sd.stateCount || sdPar8.stateCount != sd.stateCount ||
        sdPar1.states.cubes != sdPar8.states.cubes || chrono.stateCount != sd.stateCount ||
        chronoPar1.stateCount != sd.stateCount ||
        chronoPar1.states.cubes != chronoPar8.states.cubes ||
        chronoCert.states.cubes != chrono.states.cubes || chronoCert.certificate.empty()) {
      std::printf("ENGINE DISAGREEMENT on %s\n", c.name.c_str());
      return 1;
    }
    // The compressed projected cover must describe the same state set, never
    // use more cubes than the uncompressed chrono enumeration, and stay
    // bit-identical across worker counts.
    if (proj.stateCount != sd.stateCount || projPar1R.stateCount != sd.stateCount ||
        proj.states.cubes.size() > chrono.states.cubes.size() ||
        projPar1R.states.cubes != projPar8R.states.cubes) {
      std::printf("PROJECTED ENGINE DISAGREEMENT on %s\n", c.name.c_str());
      return 1;
    }

    char mtCubes[24];
    if (minterm.complete) {
      std::snprintf(mtCubes, sizeof(mtCubes), "%zu", minterm.states.cubes.size());
    } else {
      std::snprintf(mtCubes, sizeof(mtCubes), ">%llu",
                    static_cast<unsigned long long>(kMintermCap));
    }
    double speedup = sdPar8.seconds > 0 ? sdPar1.seconds / sdPar8.seconds : 0.0;
    std::printf(
        "%-12s %5d %4d %6zu | %12s | %9s %11s | %9zu %11s | %9zu %11s %9llu | "
        "%9zu %11s %7llu | %9zu %11s | %11s %9zu | %9s %9s %5.2fx\n",
        c.name.c_str(), system.numStateBits(), system.numInputs(), c.netlist.numGates(),
        sd.stateCount.toDecimal().c_str(), mtCubes, fmtMs(minterm.seconds).c_str(),
        cube.states.cubes.size(), fmtMs(cube.seconds).c_str(), sd.states.cubes.size(),
        fmtMs(sd.seconds).c_str(), static_cast<unsigned long long>(sd.stats.graphNodes),
        chrono.states.cubes.size(), fmtMs(chrono.seconds).c_str(),
        static_cast<unsigned long long>(chrono.stats.dbClausesPeak),
        proj.states.cubes.size(), fmtMs(proj.seconds).c_str(), fmtMs(bdd.seconds).c_str(),
        bdd.bddNodes, fmtMs(sdPar1.seconds).c_str(), fmtMs(sdPar8.seconds).c_str(), speedup);

    if (!jsonlPath.empty()) {
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/minterm", minterm.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/cube-lifted", cube.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/sd", sd.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono", chrono.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono-cert", chronoCert.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/sd-par1", sdPar1.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/sd-par8", sdPar8.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono-par1", chronoPar1.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono-par8", chronoPar8.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono-proj", proj.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono-proj-par1", projPar1R.metrics);
      appendMetricsJsonl(jsonlPath, "table1", c.name + "/chrono-proj-par8", projPar8R.metrics);
    }
  }
  std::printf(
      "\nmt = minterm blocking (capped at %llu), cb = lifted cube blocking, "
      "sd = success-driven, bdd = symbolic baseline,\n"
      "ch = chronological backtracking (ch-db = peak stored clauses: flat, no "
      "blocking clauses),\n"
      "pj = projected chrono + wildcard compression (same state set, compressed "
      "disjoint cover),\n"
      "par1/par8 = cube-and-conquer success-driven at 1/8 workers "
      "(spdup = par1/par8 wall time)\n",
      static_cast<unsigned long long>(kMintermCap));
  return 0;
}
