// Table 1 — one-step preimage enumeration across the benchmark suite.
//
// Reconstructs the paper's headline table: for each circuit and a fixed
// target cube, enumerate the complete preimage with every engine and report
// the state count, the number of solution cubes each engine produced, and
// runtime. Expected shape: minterm blocking degrades with the number of
// solutions; lifted cube blocking tracks the cube count; the success-driven
// solver tracks the (much smaller) solution-graph size; the BDD engine is
// fast on small state spaces but carries the transition-function build cost.
#include <cstdio>

#include "bench_util.hpp"

using namespace presat;
using namespace presat::benchutil;

int main() {
  std::vector<BenchCase> suite = standardSuite();
  // Minterm enumeration is capped: past this many solutions the baseline is
  // reported as timed out at the cap (the blow-up IS the result).
  constexpr uint64_t kMintermCap = 20000;

  std::printf(
      "Table 1: one-step preimage (complete enumeration)\n"
      "%-12s %5s %4s %6s | %12s | %9s %11s | %9s %11s | %9s %11s %9s | %11s %9s\n",
      "circuit", "dffs", "pi", "gates", "pre-states", "mt-cubes", "mt-ms", "cb-cubes", "cb-ms",
      "sd-cubes", "sd-ms", "sd-graph", "bdd-ms", "bdd-nodes");

  for (BenchCase& c : suite) {
    TransitionSystem system(c.netlist);

    PreimageOptions mintermOpts;
    mintermOpts.allsat.maxCubes = kMintermCap;
    PreimageResult minterm =
        computePreimage(system, c.target, PreimageMethod::kMintermBlocking, mintermOpts);

    PreimageResult cube =
        computePreimage(system, c.target, PreimageMethod::kCubeBlockingLifted);
    PreimageResult sd = computePreimage(system, c.target, PreimageMethod::kSuccessDriven);
    PreimageResult bdd = computePreimage(system, c.target, PreimageMethod::kBdd);

    // Sanity: complete engines must agree (minterm may be capped).
    if (cube.stateCount != sd.stateCount || sd.stateCount != bdd.stateCount ||
        (minterm.complete && minterm.stateCount != sd.stateCount)) {
      std::printf("ENGINE DISAGREEMENT on %s\n", c.name.c_str());
      return 1;
    }

    char mtCubes[24];
    if (minterm.complete) {
      std::snprintf(mtCubes, sizeof(mtCubes), "%zu", minterm.states.cubes.size());
    } else {
      std::snprintf(mtCubes, sizeof(mtCubes), ">%llu",
                    static_cast<unsigned long long>(kMintermCap));
    }
    std::printf(
        "%-12s %5d %4d %6zu | %12s | %9s %11s | %9zu %11s | %9zu %11s %9llu | %11s %9zu\n",
        c.name.c_str(), system.numStateBits(), system.numInputs(), c.netlist.numGates(),
        sd.stateCount.toDecimal().c_str(), mtCubes, fmtMs(minterm.seconds).c_str(),
        cube.states.cubes.size(), fmtMs(cube.seconds).c_str(), sd.states.cubes.size(),
        fmtMs(sd.seconds).c_str(), static_cast<unsigned long long>(sd.stats.graphNodes),
        fmtMs(bdd.seconds).c_str(), bdd.bddNodes);
  }
  std::printf(
      "\nmt = minterm blocking (capped at %llu), cb = lifted cube blocking, "
      "sd = success-driven, bdd = symbolic baseline\n",
      static_cast<unsigned long long>(20000));
  return 0;
}
