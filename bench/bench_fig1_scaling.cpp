// Figure 1 — runtime vs number of preimage solutions (series per method).
//
// The solution count is swept by widening the target cube of a 14-bit
// counter: fixing (14-k) state bits leaves ~2^(k+1) preimage states. The
// expected shape: the minterm-blocking curve grows linearly in the solution
// count (one solver call per state), lifted cube blocking grows with the cube
// count, and the success-driven / BDD curves stay nearly flat because their
// representation size is logarithmic in the state count here.
#include <cstdio>

#include "bench_util.hpp"

using namespace presat;
using namespace presat::benchutil;

int main() {
  const int bits = 14;
  Netlist counter = makeCounter(bits);
  TransitionSystem system(counter);
  constexpr uint64_t kMintermCap = 30000;

  std::printf(
      "Figure 1: runtime vs #solutions (14-bit counter, target cube widened)\n"
      "%4s %12s | %12s %12s %12s %12s | %9s %9s\n",
      "k", "pre-states", "minterm-ms", "cube-ms", "sd-ms", "bdd-ms", "sd-cubes", "sd-graph");

  for (int k = 0; k <= 12; ++k) {
    // Fix the top (bits - k) state bits: target has 2^k states.
    LitVec cube;
    for (int i = k; i < bits; ++i) cube.push_back(mkLit(static_cast<Var>(i), i % 2 == 1));
    StateSet target = StateSet::fromCube(bits, cube);

    PreimageOptions capped;
    capped.allsat.maxCubes = kMintermCap;
    PreimageResult minterm =
        computePreimage(system, target, PreimageMethod::kMintermBlocking, capped);
    PreimageResult cubeEng =
        computePreimage(system, target, PreimageMethod::kCubeBlockingLifted);
    PreimageResult sd = computePreimage(system, target, PreimageMethod::kSuccessDriven);
    PreimageResult bdd = computePreimage(system, target, PreimageMethod::kBdd);

    if (cubeEng.stateCount != sd.stateCount || sd.stateCount != bdd.stateCount) {
      std::printf("ENGINE DISAGREEMENT at k=%d\n", k);
      return 1;
    }
    char mt[24];
    if (minterm.complete) {
      std::snprintf(mt, sizeof(mt), "%s", fmtMs(minterm.seconds).c_str());
    } else {
      std::snprintf(mt, sizeof(mt), ">cap");
    }
    std::printf("%4d %12s | %12s %12s %12s %12s | %9zu %9llu\n", k,
                sd.stateCount.toDecimal().c_str(), mt, fmtMs(cubeEng.seconds).c_str(),
                fmtMs(sd.seconds).c_str(), fmtMs(bdd.seconds).c_str(), sd.states.cubes.size(),
                static_cast<unsigned long long>(sd.stats.graphNodes));
  }
  std::printf("\nminterm capped at %llu enumerated solutions\n",
              static_cast<unsigned long long>(kMintermCap));
  return 0;
}
