// Figure 3 — ablations of the two design choices DESIGN.md calls out.
//
// (a) Success-driven learning on/off: parity trees are the best case
//     (exponential sharing); random circuits show the typical case; the
//     carry chain shows the worst case (nothing to reuse, pure signature
//     overhead).
// (b) Model lifting on/off in the cube-blocking baseline: solver calls drop
//     from #minterms to #cubes.
#include <cstdio>
#include <string>
#include <vector>

#include "allsat/success_driven.hpp"
#include "bench_util.hpp"

using namespace presat;
using namespace presat::benchutil;

namespace {

Netlist parityTree(int stateBits) {
  Netlist nl;
  std::vector<NodeId> layer, state;
  for (int i = 0; i < stateBits; ++i) layer.push_back(nl.addDff("s" + std::to_string(i)));
  state = layer;
  int gid = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.mkXor(layer[i], layer[i + 1], "x" + std::to_string(gid++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  for (NodeId d : state) nl.connectDffData(d, layer[0]);
  nl.markOutput(layer[0], "parity");
  nl.validate();
  return nl;
}

std::string jsonlPath;  // set from argv[1]; empty disables trajectory output

void learningRow(const char* name, const Netlist& nl, const NodeCube& objectives) {
  CircuitAllSatProblem p;
  p.netlist = &nl;
  p.objectives = objectives;
  for (NodeId d : nl.dffs()) p.projectionSources.push_back(d);

  AllSatOptions on;
  AllSatOptions off;
  off.successLearning = false;
  SuccessDrivenResult withL = successDrivenAllSat(p, on);
  SuccessDrivenResult without = successDrivenAllSat(p, off);
  if (withL.summary.mintermCount != without.summary.mintermCount) {
    std::printf("ABLATION DISAGREEMENT on %s\n", name);
    std::exit(1);
  }
  std::printf("%-14s %12s | %10llu %10llu %9.3f | %10llu %10llu %9.3f | %8llu %8llu %9llu\n",
              name, withL.summary.mintermCount.toDecimal().c_str(),
              static_cast<unsigned long long>(withL.summary.stats.decisions),
              static_cast<unsigned long long>(withL.summary.stats.graphNodes),
              withL.summary.stats.seconds * 1e3,
              static_cast<unsigned long long>(without.summary.stats.decisions),
              static_cast<unsigned long long>(without.summary.stats.graphNodes),
              without.summary.stats.seconds * 1e3,
              static_cast<unsigned long long>(withL.summary.stats.memoHits),
              static_cast<unsigned long long>(withL.summary.stats.memoEntries),
              static_cast<unsigned long long>(withL.summary.stats.memoBytes));
  if (!jsonlPath.empty()) {
    appendMetricsJsonl(jsonlPath, "fig3a", name, withL.summary.metrics);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: JSONL trajectory file — one metrics line per fig3a run.
  if (argc > 1) jsonlPath = argv[1];
  std::printf(
      "Figure 3a: success-driven learning ablation\n"
      "%-14s %12s | %32s | %32s | %8s %8s %9s\n"
      "%-14s %12s | %10s %10s %9s | %10s %10s %9s | %8s %8s %9s\n",
      "", "", "learning ON", "learning OFF", "", "", "", "circuit", "solutions", "decisions",
      "graph", "ms", "decisions", "graph", "ms", "hits", "entries", "memoB");

  for (int bits : {8, 12, 16}) {
    Netlist nl = parityTree(bits);
    NodeId root = nl.outputs()[0];
    learningRow(("parity" + std::to_string(bits)).c_str(), nl, {{root, false}});
  }
  for (uint64_t seed : {71u, 72u, 73u}) {
    Netlist nl = randomBench(4, 10, 100, seed);
    NodeCube objectives;
    objectives.emplace_back(nl.dffData(nl.dffs()[0]), true);
    objectives.emplace_back(nl.dffData(nl.dffs()[5]), false);
    learningRow(("rand10x100#" + std::to_string(seed)).c_str(), nl, objectives);
  }
  {
    Netlist nl = makeCounter(14);
    learningRow("carry14", nl, {{nl.dffData(nl.dffs()[13]), false}});
  }

  std::printf(
      "\nFigure 3b: model-lifting ablation (cube blocking), same suite as Table 1\n"
      "%-12s %12s | %10s %10s | %10s %10s\n",
      "circuit", "pre-states", "lift-calls", "lift-ms", "nolift-calls", "nolift-ms");
  for (BenchCase& c : standardSuite()) {
    TransitionSystem system(c.netlist);
    PreimageOptions capped;
    capped.allsat.maxCubes = 20000;
    PreimageResult lifted =
        computePreimage(system, c.target, PreimageMethod::kCubeBlockingLifted);
    PreimageResult plain =
        computePreimage(system, c.target, PreimageMethod::kCubeBlocking, capped);
    char calls[24];
    if (plain.complete) {
      std::snprintf(calls, sizeof(calls), "%llu",
                    static_cast<unsigned long long>(plain.stats.satCalls));
    } else {
      std::snprintf(calls, sizeof(calls), ">20000");
    }
    std::printf("%-12s %12s | %10llu %10.3f | %10s %10.3f\n", c.name.c_str(),
                lifted.stateCount.toDecimal().c_str(),
                static_cast<unsigned long long>(lifted.stats.satCalls), lifted.seconds * 1e3,
                calls, plain.seconds * 1e3);
    if (!jsonlPath.empty()) {
      appendMetricsJsonl(jsonlPath, "fig3b", c.name + "/lifted", lifted.metrics);
      appendMetricsJsonl(jsonlPath, "fig3b", c.name + "/plain", plain.metrics);
    }
  }
  return 0;
}
