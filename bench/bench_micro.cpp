// Microbenchmarks (google-benchmark) for the substrates: CDCL solving, BDD
// operations, bit-parallel simulation, Tseitin encoding, and the
// success-driven engine on its best-case structure.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "allsat/success_driven.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "circuit/simulator.hpp"
#include "circuit/tseitin.hpp"
#include "gen/generators.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/bmc.hpp"
#include "preimage/preimage.hpp"
#include "sat/solver.hpp"

namespace presat {
namespace {

Cnf random3Sat(Rng& rng, int vars, int clauses) {
  Cnf cnf(vars);
  for (int i = 0; i < clauses; ++i) {
    Clause c;
    while (c.size() < 3) {
      Lit l = mkLit(static_cast<Var>(rng.below(static_cast<uint64_t>(vars))), rng.flip());
      bool dup = false;
      for (Lit e : c) dup = dup || e.var() == l.var();
      if (!dup) c.push_back(l);
    }
    cnf.addClause(c);
  }
  return cnf;
}

void BM_SolverRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(vars * 4.2);
  uint64_t seed = 1;
  uint64_t conflicts = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    Cnf cnf = random3Sat(rng, vars, clauses);
    Solver solver;
    solver.addCnf(cnf);
    benchmark::DoNotOptimize(solver.solve());
    conflicts += solver.stats().conflicts;
  }
  state.counters["conflicts/iter"] =
      benchmark::Counter(static_cast<double>(conflicts) / state.iterations());
}
BENCHMARK(BM_SolverRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

void BM_SolverPropagationChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Solver solver;
  for (int i = 0; i < n; ++i) solver.newVar();
  for (int i = 0; i + 1 < n; ++i) solver.addClause({~mkLit(i), mkLit(i + 1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve({mkLit(0)}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolverPropagationChain)->Arg(1000)->Arg(10000);

void BM_BddTransitionBuild(benchmark::State& state) {
  Netlist counter = makeCounter(static_cast<int>(state.range(0)));
  TransitionSystem system(counter);
  for (auto _ : state) {
    PreimageResult r = computePreimage(system, StateSet::fromMinterm(system.numStateBits(), 1),
                                       PreimageMethod::kBdd);
    benchmark::DoNotOptimize(r.bddNodes);
  }
}
BENCHMARK(BM_BddTransitionBuild)->Arg(8)->Arg(16)->Arg(24);

void BM_BddParity(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BddManager mgr(vars);
    BddRef f = BddManager::kFalse;
    for (Var v = 0; v < vars; ++v) f = mgr.bddXor(f, mgr.variable(v));
    benchmark::DoNotOptimize(mgr.satCount(f));
  }
}
BENCHMARK(BM_BddParity)->Arg(16)->Arg(32)->Arg(64);

void BM_Simulator64Patterns(benchmark::State& state) {
  RandomCircuitParams params;
  params.numInputs = 8;
  params.numDffs = 16;
  params.numGates = static_cast<int>(state.range(0));
  params.seed = 5;
  Netlist nl = makeRandomSequential(params);
  Simulator sim(nl);
  Rng rng(7);
  for (NodeId id = 0; id < nl.numNodes(); ++id) {
    if (!isCombinational(nl.type(id))) sim.setSource(id, rng.next());
  }
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.value(static_cast<NodeId>(nl.numNodes() - 1)));
  }
  state.SetItemsProcessed(state.iterations() * 64);  // patterns per run
}
BENCHMARK(BM_Simulator64Patterns)->Arg(500)->Arg(5000);

void BM_TseitinEncode(benchmark::State& state) {
  RandomCircuitParams params;
  params.numInputs = 8;
  params.numDffs = 16;
  params.numGates = static_cast<int>(state.range(0));
  params.seed = 9;
  Netlist nl = makeRandomSequential(params);
  for (auto _ : state) {
    CircuitEncoding enc = encodeCircuit(nl);
    benchmark::DoNotOptimize(enc.cnf.numClauses());
  }
}
BENCHMARK(BM_TseitinEncode)->Arg(1000)->Arg(10000);

void BM_SuccessDrivenParityTree(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Netlist nl;
  std::vector<NodeId> layer, dffs;
  for (int i = 0; i < bits; ++i) layer.push_back(nl.addDff("s" + std::to_string(i)));
  dffs = layer;
  int gid = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.mkXor(layer[i], layer[i + 1], "x" + std::to_string(gid++)));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  for (NodeId d : dffs) nl.connectDffData(d, layer[0]);
  nl.markOutput(layer[0], "parity");

  CircuitAllSatProblem p;
  p.netlist = &nl;
  p.objectives = {{layer[0], false}};
  p.projectionSources = dffs;
  AllSatOptions opts;
  opts.maxCubes = 1;  // representation built fully; enumeration skipped
  for (auto _ : state) {
    SuccessDrivenResult r = successDrivenAllSat(p, opts);
    benchmark::DoNotOptimize(r.summary.stats.graphNodes);
  }
}
BENCHMARK(BM_SuccessDrivenParityTree)->Arg(8)->Arg(16)->Arg(24);

void BM_BmcSimpleVsIncremental(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  Netlist nl = makeCounter(8);
  TransitionSystem system(nl);
  StateSet init = StateSet::fromMinterm(8, 3);
  StateSet target = StateSet::fromMinterm(8, 14);  // 11 steps away
  for (auto _ : state) {
    BmcResult r = incremental ? boundedReachIncremental(system, init, target, 12)
                              : boundedReach(system, init, target, 12);
    benchmark::DoNotOptimize(r.depth);
  }
  state.SetLabel(incremental ? "incremental" : "simple");
}
BENCHMARK(BM_BmcSimpleVsIncremental)->Arg(0)->Arg(1);

}  // namespace
}  // namespace presat

BENCHMARK_MAIN();
