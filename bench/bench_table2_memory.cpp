// Table 2 — memory footprint of the solution representations.
//
// The paper's second claim: blocking-clause all-SAT stores one clause per
// enumerated solution — the clause database grows linearly in the solution
// count — while the success-driven solver stores a shared solution graph.
// This table reports, per circuit: the minterm-blocking clause database
// (clauses / literals, capped), the lifted-cube database, the chronological
// engine's peak clause database (flat — zero blocking clauses, the store IS
// the CNF plus a bounded learnt set), the projected-chrono compressed cover
// (cubes / literals after wildcard merging), and the solution graph (nodes /
// edges / stored literals) with the learning-cache size.
#include <cstdio>

#include "allsat/solution_graph.hpp"
#include "bench_util.hpp"

using namespace presat;
using namespace presat::benchutil;

int main() {
  std::vector<BenchCase> suite = standardSuite();
  constexpr uint64_t kMintermCap = 20000;
  std::printf(
      "Table 2: solution-store footprint (complete enumeration)\n"
      "%-12s %12s | %10s %10s | %9s %9s | %8s %8s | %8s %8s | %8s %8s %8s %8s | %9s\n",
      "circuit", "pre-states", "mt-cls", "mt-lits", "cb-cls", "cb-lits", "ch-db", "ch-flips",
      "pj-cubes", "pj-lits", "gr-nodes", "gr-edges", "gr-lits", "memo", "mt/gr");

  for (BenchCase& c : suite) {
    TransitionSystem system(c.netlist);
    PreimageOptions capped;
    capped.allsat.maxCubes = kMintermCap;
    PreimageResult minterm =
        computePreimage(system, c.target, PreimageMethod::kMintermBlocking, capped);
    PreimageResult cube =
        computePreimage(system, c.target, PreimageMethod::kCubeBlockingLifted);
    PreimageResult sd = computePreimage(system, c.target, PreimageMethod::kSuccessDriven);
    PreimageResult chrono = computePreimage(system, c.target, PreimageMethod::kChrono);
    PreimageOptions projOpts;
    projOpts.allsat.project = true;
    projOpts.allsat.compress = true;
    PreimageResult proj = computePreimage(system, c.target, PreimageMethod::kChrono, projOpts);
    if (cube.stateCount != sd.stateCount || chrono.stateCount != sd.stateCount ||
        proj.stateCount != sd.stateCount ||
        (minterm.complete && minterm.stateCount != sd.stateCount)) {
      std::printf("ENGINE DISAGREEMENT on %s\n", c.name.c_str());
      return 1;
    }
    size_t graphLits = 0;
    for (const SolutionGraph& g : sd.graphs) graphLits += g.numStoredLiterals();
    // Compressed-cover footprint: cubes and literals of the wildcard-merged
    // disjoint cover — the flat-store answer to the solution graph.
    size_t projLits = 0;
    for (const LitVec& cubeLits : proj.states.cubes) projLits += cubeLits.size();
    // Footprint ratio: minterm blocking literals per solution-graph literal.
    double ratio = static_cast<double>(minterm.stats.blockingLiterals) /
                   static_cast<double>(graphLits == 0 ? 1 : graphLits);
    char mtMark = minterm.complete ? ' ' : '>';
    std::printf(
        "%-12s %12s | %c%9llu %10llu | %9llu %9llu | %8llu %8llu | %8zu %8zu | "
        "%8llu %8llu %8zu %8llu | %8.1fx\n",
        c.name.c_str(), sd.stateCount.toDecimal().c_str(), mtMark,
        static_cast<unsigned long long>(minterm.stats.blockingClauses),
        static_cast<unsigned long long>(minterm.stats.blockingLiterals),
        static_cast<unsigned long long>(cube.stats.blockingClauses),
        static_cast<unsigned long long>(cube.stats.blockingLiterals),
        static_cast<unsigned long long>(chrono.stats.dbClausesPeak),
        static_cast<unsigned long long>(chrono.stats.flips),
        proj.states.cubes.size(), projLits,
        static_cast<unsigned long long>(sd.stats.graphNodes),
        static_cast<unsigned long long>(sd.stats.graphEdges), graphLits,
        static_cast<unsigned long long>(sd.stats.memoEntries), ratio);
  }
  std::printf(
      "\nmt = minterm blocking clause DB (one clause per solution, capped at %llu);\n"
      "cb = lifted-cube blocking DB; ch = chronological backtracking (ch-db = peak\n"
      "stored clauses — solution-count-independent; ch-flips = pseudo-decision\n"
      "flips, the zero-storage stand-in for blocking clauses); pj = projected\n"
      "chrono + wildcard compression (compressed disjoint cover, cubes/literals);\n"
      "gr = success-driven\n"
      "solution graph; mt/gr = minterm blocking literals per graph literal (the\n"
      "paper's blow-up-vs-shared-graph comparison)\n",
      static_cast<unsigned long long>(kMintermCap));
  return 0;
}
