// Figure 2 — backward reachability: cumulative runtime vs depth.
//
// Iterated preimage is the paper's motivating application (unbounded model
// checking). For three circuits we run bounded backward reachability and
// report, per depth, the newly discovered states and the cumulative time of
// each engine. Expected shape: the SAT engines' per-step cost follows the
// frontier size; the BDD engine pays the transition-relation build once and
// is flat afterwards on these widths.
#include <cstdio>

#include "bench_util.hpp"
#include "preimage/reachability.hpp"

using namespace presat;
using namespace presat::benchutil;

namespace {

void runSeries(const char* name, const Netlist& netlist, const StateSet& target, int maxDepth) {
  TransitionSystem system(netlist);
  const PreimageMethod methods[] = {PreimageMethod::kSuccessDriven,
                                    PreimageMethod::kCubeBlockingLifted, PreimageMethod::kBdd};
  ReachabilityResult results[3];
  for (int m = 0; m < 3; ++m) {
    results[m] = backwardReach(system, target, maxDepth, methods[m]);
  }
  // Cross-check final sets.
  if (!sameStates(results[0].reached, results[2].reached) ||
      !sameStates(results[1].reached, results[2].reached)) {
    std::printf("ENGINE DISAGREEMENT on %s\n", name);
    std::exit(1);
  }
  std::printf("%s (fixpoint: %s after %zu steps)\n", name,
              results[0].fixpoint ? "yes" : "no", results[0].steps.size());
  std::printf("  %5s %12s %12s | %12s %12s %12s\n", "depth", "new", "total", "sd-cum-ms",
              "cb-cum-ms", "bdd-cum-ms");
  double cum[3] = {0, 0, 0};
  for (size_t i = 0; i < results[0].steps.size(); ++i) {
    for (int m = 0; m < 3; ++m) {
      if (i < results[m].steps.size()) cum[m] += results[m].steps[i].seconds;
    }
    const ReachabilityStep& s = results[0].steps[i];
    std::printf("  %5d %12s %12s | %12.3f %12.3f %12.3f\n", s.depth,
                s.newStates.toDecimal().c_str(), s.totalStates.toDecimal().c_str(), cum[0] * 1e3,
                cum[1] * 1e3, cum[2] * 1e3);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 2: backward reachability depth sweep\n\n");
  {
    Netlist nl = makeTrafficLight();
    runSeries("traffic-light <- farm green", nl, StateSet::fromCube(4, {mkLit(0), ~mkLit(1)}),
              16);
  }
  {
    Netlist nl = makeCounter(12);
    runSeries("counter12 <- state 0", nl, StateSet::fromMinterm(12, 0), 10);
  }
  {
    Netlist nl = makeLfsr(10);
    runSeries("lfsr10 <- all-ones", nl, StateSet::fromMinterm(10, (1u << 10) - 1), 8);
  }
  {
    Netlist nl = makeRoundRobinArbiter(4);
    runSeries("arbiter4 <- pointer at client 0", nl, StateSet::fromMinterm(4, 0b0001), 6);
  }
  {
    Netlist nl = randomBench(4, 10, 100, 51);
    StateSet target = reachableCube(nl, 10, 77);  // one concrete reachable state
    runSeries("rand10x100 <- reachable state", nl, target, 8);
  }
  return 0;
}
