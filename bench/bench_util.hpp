// Shared infrastructure for the table/figure reproduction benches: the
// benchmark suite (the ISCAS89 substitute described in DESIGN.md) and small
// formatting helpers.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.hpp"
#include "gen/generators.hpp"
#include "gen/iscas.hpp"
#include "gen/random_circuit.hpp"
#include "preimage/preimage.hpp"

namespace presat::benchutil {

struct BenchCase {
  std::string name;
  Netlist netlist;
  StateSet target;
};

// Target cube fixing the lowest `fixed` state bits to alternating values —
// a deterministic, reproducible target with a tunable solution count.
inline StateSet alternatingCube(int stateBits, int fixed) {
  LitVec cube;
  for (int i = 0; i < fixed && i < stateBits; ++i) {
    cube.push_back(mkLit(static_cast<Var>(i), i % 2 == 1));
  }
  return StateSet::fromCube(stateBits, cube);
}

inline Netlist randomBench(int inputs, int dffs, int gates, uint64_t seed) {
  RandomCircuitParams params;
  params.numInputs = inputs;
  params.numDffs = dffs;
  params.numGates = gates;
  params.seed = seed;
  return makeRandomSequential(params);
}

// Target cube guaranteed non-empty: simulate one transition from a
// deterministic pseudo-random (state, input) pair and fix the lowest
// `fixed` bits of the resulting next state. Random next-state functions are
// often constant-biased, so arbitrary cubes would frequently be unreachable.
inline StateSet reachableCube(const Netlist& netlist, int fixed, uint64_t seed) {
  TransitionSystem system(netlist);
  Rng rng(seed);
  std::vector<bool> state(static_cast<size_t>(system.numStateBits()));
  std::vector<bool> inputs(static_cast<size_t>(system.numInputs()));
  for (auto&& b : state) b = rng.flip();
  for (auto&& b : inputs) b = rng.flip();
  std::vector<bool> next = system.step(state, inputs);
  LitVec cube;
  for (int i = 0; i < fixed && i < system.numStateBits(); ++i) {
    cube.push_back(mkLit(static_cast<Var>(i), !next[static_cast<size_t>(i)]));
  }
  return StateSet::fromCube(system.numStateBits(), cube);
}

// The standard suite used by Table 1 / Table 2: named circuits spanning the
// gate mixes of the ISCAS89 benchmarks at small-to-medium scale.
inline std::vector<BenchCase> standardSuite() {
  std::vector<BenchCase> suite;
  auto add = [&suite](std::string name, Netlist nl, int fixedBits) {
    int n = static_cast<int>(nl.dffs().size());
    StateSet target = alternatingCube(n, fixedBits);
    suite.push_back({std::move(name), std::move(nl), std::move(target)});
  };
  add("s27", makeS27(), 2);
  add("cnt10", makeCounter(10), 4);
  add("cnt14", makeCounter(14), 4);
  add("gray10", makeGrayCounter(10), 4);
  add("lfsr12", makeLfsr(12), 4);
  add("arb4", makeRoundRobinArbiter(4), 2);
  add("traffic", makeTrafficLight(), 2);
  {
    Netlist nl = randomBench(4, 8, 80, 11);
    StateSet target = reachableCube(nl, 3, 101);
    suite.push_back({"rand8x80", std::move(nl), std::move(target)});
  }
  {
    Netlist nl = randomBench(5, 12, 150, 23);
    StateSet target = reachableCube(nl, 4, 102);
    suite.push_back({"rand12x150", std::move(nl), std::move(target)});
  }
  {
    Netlist nl = randomBench(6, 16, 240, 37);
    StateSet target = reachableCube(nl, 5, 103);
    suite.push_back({"rand16x240", std::move(nl), std::move(target)});
  }
  return suite;
}

inline std::string fmtMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

// Appends one compact-JSON line per run to `path` (JSONL), tagging the
// metrics with bench/case labels so rows from different benches can be
// concatenated and post-processed together. Returns false if the file could
// not be opened (benches keep running; trajectory output is best-effort).
inline bool appendMetricsJsonl(const std::string& path, const std::string& bench,
                               const std::string& caseName, Metrics metrics) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return false;
  metrics.setLabel("bench", bench);
  metrics.setLabel("case", caseName);
  std::string line = metrics.toJson(0);
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
  return true;
}

}  // namespace presat::benchutil
