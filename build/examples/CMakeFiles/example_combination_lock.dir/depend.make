# Empty dependencies file for example_combination_lock.
# This may be replaced when dependencies are built.
