file(REMOVE_RECURSE
  "CMakeFiles/example_combination_lock.dir/combination_lock.cpp.o"
  "CMakeFiles/example_combination_lock.dir/combination_lock.cpp.o.d"
  "example_combination_lock"
  "example_combination_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_combination_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
