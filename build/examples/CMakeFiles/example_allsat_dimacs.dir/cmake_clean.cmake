file(REMOVE_RECURSE
  "CMakeFiles/example_allsat_dimacs.dir/allsat_dimacs.cpp.o"
  "CMakeFiles/example_allsat_dimacs.dir/allsat_dimacs.cpp.o.d"
  "example_allsat_dimacs"
  "example_allsat_dimacs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_allsat_dimacs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
