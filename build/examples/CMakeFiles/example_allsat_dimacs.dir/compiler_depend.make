# Empty compiler generated dependencies file for example_allsat_dimacs.
# This may be replaced when dependencies are built.
