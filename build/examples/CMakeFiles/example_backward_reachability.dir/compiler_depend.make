# Empty compiler generated dependencies file for example_backward_reachability.
# This may be replaced when dependencies are built.
