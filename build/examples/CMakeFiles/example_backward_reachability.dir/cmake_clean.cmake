file(REMOVE_RECURSE
  "CMakeFiles/example_backward_reachability.dir/backward_reachability.cpp.o"
  "CMakeFiles/example_backward_reachability.dir/backward_reachability.cpp.o.d"
  "example_backward_reachability"
  "example_backward_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backward_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
