file(REMOVE_RECURSE
  "CMakeFiles/example_engine_shootout.dir/engine_shootout.cpp.o"
  "CMakeFiles/example_engine_shootout.dir/engine_shootout.cpp.o.d"
  "example_engine_shootout"
  "example_engine_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_engine_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
