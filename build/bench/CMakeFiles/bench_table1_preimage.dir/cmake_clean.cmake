file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_preimage.dir/bench_table1_preimage.cpp.o"
  "CMakeFiles/bench_table1_preimage.dir/bench_table1_preimage.cpp.o.d"
  "bench_table1_preimage"
  "bench_table1_preimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_preimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
