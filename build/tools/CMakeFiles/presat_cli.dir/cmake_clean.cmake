file(REMOVE_RECURSE
  "CMakeFiles/presat_cli.dir/presat_cli.cpp.o"
  "CMakeFiles/presat_cli.dir/presat_cli.cpp.o.d"
  "presat_cli"
  "presat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
