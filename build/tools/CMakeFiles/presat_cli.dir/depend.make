# Empty dependencies file for presat_cli.
# This may be replaced when dependencies are built.
