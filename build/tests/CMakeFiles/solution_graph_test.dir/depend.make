# Empty dependencies file for solution_graph_test.
# This may be replaced when dependencies are built.
