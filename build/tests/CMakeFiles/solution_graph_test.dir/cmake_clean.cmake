file(REMOVE_RECURSE
  "CMakeFiles/solution_graph_test.dir/solution_graph_test.cpp.o"
  "CMakeFiles/solution_graph_test.dir/solution_graph_test.cpp.o.d"
  "solution_graph_test"
  "solution_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
