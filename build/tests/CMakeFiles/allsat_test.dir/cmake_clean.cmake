file(REMOVE_RECURSE
  "CMakeFiles/allsat_test.dir/allsat_test.cpp.o"
  "CMakeFiles/allsat_test.dir/allsat_test.cpp.o.d"
  "allsat_test"
  "allsat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
