# Empty compiler generated dependencies file for allsat_test.
# This may be replaced when dependencies are built.
