file(REMOVE_RECURSE
  "CMakeFiles/strash_test.dir/strash_test.cpp.o"
  "CMakeFiles/strash_test.dir/strash_test.cpp.o.d"
  "strash_test"
  "strash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
