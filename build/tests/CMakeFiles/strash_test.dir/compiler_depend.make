# Empty compiler generated dependencies file for strash_test.
# This may be replaced when dependencies are built.
