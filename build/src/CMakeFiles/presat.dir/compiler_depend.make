# Empty compiler generated dependencies file for presat.
# This may be replaced when dependencies are built.
