file(REMOVE_RECURSE
  "libpresat.a"
)
