
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/allsat/cube_blocking.cpp" "src/CMakeFiles/presat.dir/allsat/cube_blocking.cpp.o" "gcc" "src/CMakeFiles/presat.dir/allsat/cube_blocking.cpp.o.d"
  "/root/repo/src/allsat/lifting.cpp" "src/CMakeFiles/presat.dir/allsat/lifting.cpp.o" "gcc" "src/CMakeFiles/presat.dir/allsat/lifting.cpp.o.d"
  "/root/repo/src/allsat/minterm_blocking.cpp" "src/CMakeFiles/presat.dir/allsat/minterm_blocking.cpp.o" "gcc" "src/CMakeFiles/presat.dir/allsat/minterm_blocking.cpp.o.d"
  "/root/repo/src/allsat/projection.cpp" "src/CMakeFiles/presat.dir/allsat/projection.cpp.o" "gcc" "src/CMakeFiles/presat.dir/allsat/projection.cpp.o.d"
  "/root/repo/src/allsat/solution_graph.cpp" "src/CMakeFiles/presat.dir/allsat/solution_graph.cpp.o" "gcc" "src/CMakeFiles/presat.dir/allsat/solution_graph.cpp.o.d"
  "/root/repo/src/allsat/success_driven.cpp" "src/CMakeFiles/presat.dir/allsat/success_driven.cpp.o" "gcc" "src/CMakeFiles/presat.dir/allsat/success_driven.cpp.o.d"
  "/root/repo/src/base/biguint.cpp" "src/CMakeFiles/presat.dir/base/biguint.cpp.o" "gcc" "src/CMakeFiles/presat.dir/base/biguint.cpp.o.d"
  "/root/repo/src/base/dyadic.cpp" "src/CMakeFiles/presat.dir/base/dyadic.cpp.o" "gcc" "src/CMakeFiles/presat.dir/base/dyadic.cpp.o.d"
  "/root/repo/src/base/log.cpp" "src/CMakeFiles/presat.dir/base/log.cpp.o" "gcc" "src/CMakeFiles/presat.dir/base/log.cpp.o.d"
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/presat.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/presat.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/bdd_algos.cpp" "src/CMakeFiles/presat.dir/bdd/bdd_algos.cpp.o" "gcc" "src/CMakeFiles/presat.dir/bdd/bdd_algos.cpp.o.d"
  "/root/repo/src/circuit/bench_io.cpp" "src/CMakeFiles/presat.dir/circuit/bench_io.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/bench_io.cpp.o.d"
  "/root/repo/src/circuit/from_cnf.cpp" "src/CMakeFiles/presat.dir/circuit/from_cnf.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/from_cnf.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/presat.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/simulator.cpp" "src/CMakeFiles/presat.dir/circuit/simulator.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/simulator.cpp.o.d"
  "/root/repo/src/circuit/strash.cpp" "src/CMakeFiles/presat.dir/circuit/strash.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/strash.cpp.o.d"
  "/root/repo/src/circuit/ternary.cpp" "src/CMakeFiles/presat.dir/circuit/ternary.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/ternary.cpp.o.d"
  "/root/repo/src/circuit/tseitin.cpp" "src/CMakeFiles/presat.dir/circuit/tseitin.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/tseitin.cpp.o.d"
  "/root/repo/src/circuit/unroll.cpp" "src/CMakeFiles/presat.dir/circuit/unroll.cpp.o" "gcc" "src/CMakeFiles/presat.dir/circuit/unroll.cpp.o.d"
  "/root/repo/src/cnf/cnf.cpp" "src/CMakeFiles/presat.dir/cnf/cnf.cpp.o" "gcc" "src/CMakeFiles/presat.dir/cnf/cnf.cpp.o.d"
  "/root/repo/src/cnf/dimacs.cpp" "src/CMakeFiles/presat.dir/cnf/dimacs.cpp.o" "gcc" "src/CMakeFiles/presat.dir/cnf/dimacs.cpp.o.d"
  "/root/repo/src/cnf/simplify.cpp" "src/CMakeFiles/presat.dir/cnf/simplify.cpp.o" "gcc" "src/CMakeFiles/presat.dir/cnf/simplify.cpp.o.d"
  "/root/repo/src/gen/generators.cpp" "src/CMakeFiles/presat.dir/gen/generators.cpp.o" "gcc" "src/CMakeFiles/presat.dir/gen/generators.cpp.o.d"
  "/root/repo/src/gen/iscas.cpp" "src/CMakeFiles/presat.dir/gen/iscas.cpp.o" "gcc" "src/CMakeFiles/presat.dir/gen/iscas.cpp.o.d"
  "/root/repo/src/gen/random_circuit.cpp" "src/CMakeFiles/presat.dir/gen/random_circuit.cpp.o" "gcc" "src/CMakeFiles/presat.dir/gen/random_circuit.cpp.o.d"
  "/root/repo/src/preimage/bdd_preimage.cpp" "src/CMakeFiles/presat.dir/preimage/bdd_preimage.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/bdd_preimage.cpp.o.d"
  "/root/repo/src/preimage/bmc.cpp" "src/CMakeFiles/presat.dir/preimage/bmc.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/bmc.cpp.o.d"
  "/root/repo/src/preimage/image.cpp" "src/CMakeFiles/presat.dir/preimage/image.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/image.cpp.o.d"
  "/root/repo/src/preimage/preimage.cpp" "src/CMakeFiles/presat.dir/preimage/preimage.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/preimage.cpp.o.d"
  "/root/repo/src/preimage/reachability.cpp" "src/CMakeFiles/presat.dir/preimage/reachability.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/reachability.cpp.o.d"
  "/root/repo/src/preimage/safety.cpp" "src/CMakeFiles/presat.dir/preimage/safety.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/safety.cpp.o.d"
  "/root/repo/src/preimage/target.cpp" "src/CMakeFiles/presat.dir/preimage/target.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/target.cpp.o.d"
  "/root/repo/src/preimage/transition_system.cpp" "src/CMakeFiles/presat.dir/preimage/transition_system.cpp.o" "gcc" "src/CMakeFiles/presat.dir/preimage/transition_system.cpp.o.d"
  "/root/repo/src/sat/dpll.cpp" "src/CMakeFiles/presat.dir/sat/dpll.cpp.o" "gcc" "src/CMakeFiles/presat.dir/sat/dpll.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/presat.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/presat.dir/sat/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
