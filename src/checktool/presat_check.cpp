// presat_check: standalone verifier for presat-cert-v1 certificates.
//
// Deliberately shares NO code with the presat library (src/sat/, src/cert/):
// it has its own parser, its own unit-propagation loop, and its own hash
// recomputation, all in this one translation unit, linked against nothing but
// the C++ standard library. A bug in the solver, the clause arena, or the
// merge logic therefore cannot silently blind the verifier that is supposed
// to catch it. The only shared artifact is the certificate FORMAT SPEC in
// src/cert/certificate.hpp — an independent implementation of the same
// grammar, not shared source.
//
// What is verified (see DESIGN.md "Certificates"):
//   soundness     every cube's witness is a model of the CNF and agrees with
//                 the cube's literals through the scope map
//   disjointness  when the header claims disjoint=1, cubes are pairwise
//                 disjoint (some variable appears with opposite signs)
//   completeness  when the header claims outcome=complete, the embedded
//                 DRAT-style proof derives the empty clause by reverse unit
//                 propagation from: the CNF, the blocking clause of every
//                 cube, and the previously accepted proof additions
//   honesty       a partial cover must name a recognized degradation reason;
//                 it is then verified as a sound under-approximation
//
// Exit codes: 0 = complete cover verified; 2 = partial cover verified sound;
// 1 = verification failure (diagnostic `presat_check: FAIL cert.<area>.<detail>`
// on stderr) or usage error.

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace {

[[noreturn]] void fail(const char* code, const char* fmt, ...) {
  char msg[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "presat_check: FAIL %s: %s\n", code, msg);
  std::exit(1);
}

// ---------------------------------------------------------------------------
// Certificate model + parser
// ---------------------------------------------------------------------------

struct MergeWitness {
  int var = 0;                // projected index, 1-based
  std::vector<int> merged;    // cube A, projected index space
};

struct ProofStep {
  bool deletion = false;
  std::vector<int> lits;      // CNF space, signed DIMACS
};

struct Certificate {
  std::string engine;
  uint64_t circuitHash = 0;
  int64_t vars = 0;
  std::vector<int64_t> scope;  // scope[i] = 1-based CNF var of projected index i
  bool project = false, compress = false, disjoint = false;
  int64_t jobs = 0;
  std::string outcome;
  uint64_t cnfHash = 0;
  std::vector<std::vector<int>> cnf;        // CNF space
  std::vector<std::vector<int>> cubes;      // projected index space
  std::vector<std::vector<int>> witnesses;  // CNF space, one per cube
  std::vector<std::vector<int>> guides;     // projected index space
  std::vector<MergeWitness> merges;
  std::vector<ProofStep> proof;
  bool sawEnd = false;
};

struct LineReader {
  const char* p;
  const char* end;
  int lineNo = 0;

  // Returns the next line (NUL-terminated in-place is not possible on a
  // const buffer, so returns [begin, len)); false at end of input.
  bool next(const char*& begin, size_t& len) {
    if (p >= end) return false;
    begin = p;
    const char* nl = static_cast<const char*>(std::memchr(p, '\n', static_cast<size_t>(end - p)));
    if (nl == nullptr) {
      len = static_cast<size_t>(end - p);
      p = end;
    } else {
      len = static_cast<size_t>(nl - p);
      p = nl + 1;
    }
    ++lineNo;
    return true;
  }
};

void skipSpaces(const char*& p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
}

bool parseInt64(const char*& p, const char* end, int64_t& out) {
  skipSpaces(p, end);
  bool neg = false;
  if (p < end && *p == '-') {
    neg = true;
    ++p;
  }
  if (p >= end || *p < '0' || *p > '9') return false;
  int64_t v = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    if (v > (INT64_MAX - 9) / 10) return false;
    v = v * 10 + (*p - '0');
    ++p;
  }
  out = neg ? -v : v;
  return true;
}

bool parseHex64(const char*& p, const char* end, uint64_t& out) {
  skipSpaces(p, end);
  const char* start = p;
  uint64_t v = 0;
  while (p < end) {
    char c = *p;
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else break;
    v = (v << 4) | static_cast<uint64_t>(d);
    ++p;
  }
  if (p == start || p - start > 16) return false;
  out = v;
  return true;
}

bool atEol(const char* p, const char* end) {
  skipSpaces(p, end);
  return p == end;
}

// Parses "<lits> 0" into out; lits must satisfy |l| in [1, maxVar].
void parseLitList(const char* p, const char* end, int64_t maxVar, const char* what, int lineNo,
                  std::vector<int>& out) {
  out.clear();
  for (;;) {
    int64_t v;
    if (!parseInt64(p, end, v)) fail("cert.parse.lit", "line %d: malformed %s literal list", lineNo, what);
    if (v == 0) break;
    int64_t mag = v < 0 ? -v : v;
    if (mag > maxVar)
      fail("cert.parse.lit", "line %d: %s literal %lld out of range (max var %lld)", lineNo, what,
           static_cast<long long>(v), static_cast<long long>(maxVar));
    out.push_back(static_cast<int>(v));
  }
  if (!atEol(p, end))
    fail("cert.parse.line", "line %d: trailing garbage after %s literal list", lineNo, what);
}

bool startsWith(const char* p, size_t len, const char* prefix) {
  size_t n = std::strlen(prefix);
  return len >= n && std::memcmp(p, prefix, n) == 0;
}

// Section order: f < c < j < g < w < proof. 'h end' closes the certificate.
enum Section { kSecNone = 0, kSecF, kSecC, kSecJ, kSecG, kSecW, kSecProof };

Certificate parseCertificate(const std::string& text) {
  Certificate cert;
  LineReader in{text.data(), text.data() + text.size()};
  const char* line;
  size_t len;

  // --- fixed header block ---
  static const char* kHeaderOrder[] = {"p presat-cert 1", "h engine ", "h circuit ", "h vars ",
                                       "h scope ",        "h flags ",  "h outcome ", "h cnfhash "};
  for (size_t i = 0; i < sizeof(kHeaderOrder) / sizeof(kHeaderOrder[0]); ++i) {
    if (!in.next(line, len))
      fail("cert.parse.truncated", "line %d: certificate ends inside the header", in.lineNo + 1);
    const char* want = kHeaderOrder[i];
    if (i == 0) {
      // Exact match (modulo trailing CR).
      size_t n = len;
      while (n > 0 && line[n - 1] == '\r') --n;
      if (n != std::strlen(want) || std::memcmp(line, want, n) != 0)
        fail("cert.parse.header", "line %d: expected '%s'", in.lineNo, want);
      continue;
    }
    if (!startsWith(line, len, want))
      fail("cert.parse.header", "line %d: expected a '%.*s' header", in.lineNo,
           static_cast<int>(std::strlen(want) - 1), want);
    const char* p = line + std::strlen(want);
    const char* end = line + len;
    switch (i) {
      case 1: {  // engine
        const char* q = end;
        while (q > p && (q[-1] == ' ' || q[-1] == '\r')) --q;
        cert.engine.assign(p, static_cast<size_t>(q - p));
        if (cert.engine.empty()) fail("cert.parse.header", "line %d: empty engine name", in.lineNo);
        break;
      }
      case 2:
        if (!parseHex64(p, end, cert.circuitHash) || !atEol(p, end))
          fail("cert.parse.header", "line %d: malformed circuit hash", in.lineNo);
        break;
      case 3:
        if (!parseInt64(p, end, cert.vars) || cert.vars < 0 || !atEol(p, end))
          fail("cert.parse.header", "line %d: malformed vars count", in.lineNo);
        break;
      case 4: {
        int64_t k;
        if (!parseInt64(p, end, k) || k < 0)
          fail("cert.parse.header", "line %d: malformed scope count", in.lineNo);
        for (int64_t j = 0; j < k; ++j) {
          int64_t v;
          if (!parseInt64(p, end, v) || v < 1 || v > cert.vars)
            fail("cert.parse.header", "line %d: scope variable %lld out of range", in.lineNo,
                 static_cast<long long>(j + 1));
          cert.scope.push_back(v);
        }
        if (!atEol(p, end))
          fail("cert.parse.header", "line %d: trailing garbage after scope", in.lineNo);
        break;
      }
      case 5: {  // flags
        std::string flags(p, static_cast<size_t>(end - p));
        long project = -1, compress = -1, disjoint = -1;
        long long jobs = -1;
        if (std::sscanf(flags.c_str(), "project=%ld compress=%ld disjoint=%ld jobs=%lld", &project,
                        &compress, &disjoint, &jobs) != 4 ||
            (project | compress | disjoint) & ~1L || jobs < 0)
          fail("cert.parse.header", "line %d: malformed flags line", in.lineNo);
        cert.project = project != 0;
        cert.compress = compress != 0;
        cert.disjoint = disjoint != 0;
        cert.jobs = jobs;
        break;
      }
      case 6: {
        const char* q = end;
        while (q > p && (q[-1] == ' ' || q[-1] == '\r')) --q;
        cert.outcome.assign(p, static_cast<size_t>(q - p));
        if (cert.outcome.empty()) fail("cert.parse.header", "line %d: empty outcome", in.lineNo);
        break;
      }
      case 7:
        if (!parseHex64(p, end, cert.cnfHash) || !atEol(p, end))
          fail("cert.parse.header", "line %d: malformed cnf hash", in.lineNo);
        break;
      default: break;
    }
  }

  // --- body sections in fixed order ---
  Section section = kSecNone;
  std::vector<int> lits;
  while (in.next(line, len)) {
    if (len > 0 && line[len - 1] == '\r') --len;
    if (len == 0) fail("cert.parse.line", "line %d: blank line inside certificate", in.lineNo);
    if (startsWith(line, len, "h end")) {
      cert.sawEnd = true;
      if (in.next(line, len))
        fail("cert.parse.line", "line %d: content after 'h end' trailer", in.lineNo);
      break;
    }
    char tag = line[0];
    Section want;
    switch (tag) {
      case 'f': want = kSecF; break;
      case 'c': want = kSecC; break;
      case 'j': want = kSecJ; break;
      case 'g': want = kSecG; break;
      case 'w': want = kSecW; break;
      case 'a':
      case 'e': want = kSecProof; break;
      default: fail("cert.parse.line", "line %d: unknown line tag '%c'", in.lineNo, tag);
    }
    if (len < 2 || line[1] != ' ')
      fail("cert.parse.line", "line %d: malformed '%c' line", in.lineNo, tag);
    if (want < section)
      fail("cert.parse.line", "line %d: '%c' line out of section order", in.lineNo, tag);
    section = want;
    const char* p = line + 2;
    const char* end = line + len;
    switch (tag) {
      case 'f':
        parseLitList(p, end, cert.vars, "clause", in.lineNo, lits);
        cert.cnf.push_back(lits);
        break;
      case 'c':
        parseLitList(p, end, static_cast<int64_t>(cert.scope.size()), "cube", in.lineNo, lits);
        cert.cubes.push_back(lits);
        break;
      case 'j':
        parseLitList(p, end, cert.vars, "witness", in.lineNo, lits);
        cert.witnesses.push_back(lits);
        break;
      case 'g':
        parseLitList(p, end, static_cast<int64_t>(cert.scope.size()), "guide", in.lineNo, lits);
        cert.guides.push_back(lits);
        break;
      case 'w': {
        int64_t v;
        if (!parseInt64(p, end, v) || v < 1 || v > static_cast<int64_t>(cert.scope.size()))
          fail("cert.parse.lit", "line %d: merge variable out of scope range", in.lineNo);
        MergeWitness m;
        m.var = static_cast<int>(v);
        parseLitList(p, end, static_cast<int64_t>(cert.scope.size()), "merge", in.lineNo, m.merged);
        for (int l : m.merged) {
          if (l == m.var || l == -m.var)
            fail("cert.parse.lit", "line %d: merge witness mentions its eliminated variable",
                 in.lineNo);
        }
        cert.merges.push_back(m);
        break;
      }
      case 'a':
      case 'e': {
        ProofStep step;
        step.deletion = tag == 'e';
        parseLitList(p, end, cert.vars, "proof", in.lineNo, step.lits);
        cert.proof.push_back(step);
        break;
      }
      default: break;
    }
  }
  if (!cert.sawEnd)
    fail("cert.parse.truncated", "certificate is missing the 'h end' trailer (truncated?)");
  if (cert.witnesses.size() != cert.cubes.size())
    fail("cert.parse.counts", "%zu cubes but %zu witnesses", cert.cubes.size(),
         cert.witnesses.size());
  return cert;
}

// ---------------------------------------------------------------------------
// Semantic checks: hash, cubes, witnesses, disjointness
// ---------------------------------------------------------------------------

uint64_t fnv1aCnfHash(const std::vector<std::vector<int>>& cnf) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](int32_t v) {
    h ^= static_cast<uint64_t>(static_cast<int64_t>(v));
    h *= 1099511628211ull;
  };
  for (const std::vector<int>& clause : cnf) {
    for (int l : clause) mix(l);
    mix(0);
  }
  return h;
}

// val: 1-based, +1 true / -1 false / 0 unassigned.
void assignWitness(const std::vector<int>& witness, int64_t vars, size_t cubeIdx,
                   std::vector<signed char>& val) {
  std::fill(val.begin(), val.end(), 0);
  for (int l : witness) {
    int v = l < 0 ? -l : l;
    signed char s = l < 0 ? -1 : 1;
    if (val[static_cast<size_t>(v)] == -s)
      fail("cert.witness.mismatch", "cube %zu: witness assigns variable %d both polarities",
           cubeIdx, v);
    val[static_cast<size_t>(v)] = s;
  }
  (void)vars;
}

void checkCubesAndWitnesses(const Certificate& cert) {
  // Exact-duplicate detection over normalized cubes — a duplicated cube is the
  // most common corruption and deserves a sharper diagnostic than "overlap".
  std::map<std::vector<int>, size_t> seen;
  std::vector<signed char> val(static_cast<size_t>(cert.vars) + 1, 0);
  for (size_t i = 0; i < cert.cubes.size(); ++i) {
    std::vector<int> sorted = cert.cubes[i];
    std::sort(sorted.begin(), sorted.end(),
              [](int a, int b) { return std::abs(a) != std::abs(b) ? std::abs(a) < std::abs(b) : a < b; });
    for (size_t a = 0; a + 1 < sorted.size(); ++a) {
      if (std::abs(sorted[a]) == std::abs(sorted[a + 1]))
        fail("cert.cube.dup", "cube %zu mentions variable %d twice", i, std::abs(sorted[a]));
    }
    auto ins = seen.emplace(sorted, i);
    if (!ins.second && cert.disjoint)
      fail("cert.cube.dup", "cube %zu duplicates cube %zu", i, ins.first->second);

    // Witness i models the CNF and agrees with cube i through the scope map.
    assignWitness(cert.witnesses[i], cert.vars, i, val);
    for (int l : cert.cubes[i]) {
      int idx = (l < 0 ? -l : l) - 1;
      int cnfVar = static_cast<int>(cert.scope[static_cast<size_t>(idx)]);
      signed char wantSign = l < 0 ? -1 : 1;
      if (val[static_cast<size_t>(cnfVar)] != wantSign)
        fail("cert.witness.mismatch",
             "cube %zu literal %d (cnf var %d) disagrees with its witness", i, l, cnfVar);
    }
    for (size_t ci = 0; ci < cert.cnf.size(); ++ci) {
      bool sat = false;
      for (int l : cert.cnf[ci]) {
        int v = l < 0 ? -l : l;
        if (val[static_cast<size_t>(v)] == (l < 0 ? -1 : 1)) {
          sat = true;
          break;
        }
      }
      if (!sat)
        fail("cert.witness.unsat", "cube %zu: witness falsifies CNF clause %zu", i, ci);
    }
  }
}

// Two cubes are disjoint iff some variable appears with opposite signs.
bool cubesDisjoint(const std::vector<int>& a, const std::vector<int>& b) {
  for (int la : a) {
    for (int lb : b) {
      if (la == -lb) return true;
    }
  }
  return false;
}

void checkDisjoint(const std::vector<std::vector<int>>& cubes, const char* what) {
  for (size_t i = 0; i < cubes.size(); ++i) {
    for (size_t j = i + 1; j < cubes.size(); ++j) {
      if (!cubesDisjoint(cubes[i], cubes[j]))
        fail("cert.cover.overlap", "%s %zu and %zu overlap", what, i, j);
    }
  }
}

// ---------------------------------------------------------------------------
// Proof check: reverse unit propagation over CNF + cube blocking premises
// ---------------------------------------------------------------------------

class Propagator {
 public:
  explicit Propagator(int64_t vars)
      : val_(static_cast<size_t>(vars) + 1, 0), occ_(2 * (static_cast<size_t>(vars) + 1)) {}

  bool latched() const { return latched_; }

  // Adds a clause as a premise or accepted derivation; propagates its
  // level-0 consequences.
  void addClause(const std::vector<int>& lits) {
    size_t id = clauses_.size();
    clauses_.push_back(lits);
    deleted_.push_back(false);
    keys_[sortedKey(lits)].push_back(id);
    for (int l : lits) occ_[litIndex(l)].push_back(id);
    if (latched_) return;
    int unassigned = 0, unit = 0;
    for (int l : lits) {
      signed char v = val_[static_cast<size_t>(l < 0 ? -l : l)];
      if (v == (l < 0 ? -1 : 1)) return;  // already satisfied at level 0
      if (v == 0) {
        ++unassigned;
        unit = l;
      }
    }
    if (unassigned == 0) {
      latched_ = true;
      return;
    }
    if (unassigned == 1) {
      assign(unit);
      if (!propagate()) latched_ = true;
    }
  }

  // RUP check of `lits`: assume every literal false, propagate, require a
  // conflict. The trail is rewound afterwards; the clause is NOT added (the
  // caller decides). Trivially passes once the working set is UNSAT at
  // level 0 — every clause is then vacuously entailed.
  bool rupCheck(const std::vector<int>& lits) {
    if (latched_) return true;
    size_t mark = trail_.size();
    bool conflict = false;
    for (int l : lits) {
      signed char v = val_[static_cast<size_t>(l < 0 ? -l : l)];
      if (v == (l < 0 ? -1 : 1)) {  // literal already true: negation conflicts
        conflict = true;
        break;
      }
      if (v == 0) assign(-l);
    }
    if (!conflict) conflict = !propagate();
    while (trail_.size() > mark) {
      int l = trail_.back();
      trail_.pop_back();
      val_[static_cast<size_t>(l < 0 ? -l : l)] = 0;
    }
    head_ = trail_.size();
    return conflict;
  }

  // Marks a clause with this literal multiset deleted. Deletions are purely
  // a checker-performance hint: everything in the working set is entailed by
  // the premises (every addition passed RUP), so keeping a clause the proof
  // deleted can never admit a wrong derivation — which is why a clause that
  // is unit or falsified under the level-0 assignment is silently kept (it
  // may be the reason for a root assignment we do not track). Returns false
  // when no live clause matches.
  bool deleteClause(const std::vector<int>& lits) {
    auto it = keys_.find(sortedKey(lits));
    if (it == keys_.end()) return false;
    for (size_t id : it->second) {
      if (deleted_[id]) continue;
      int nonFalse = 0;
      for (int l : clauses_[id]) {
        if (val_[static_cast<size_t>(l < 0 ? -l : l)] != (l < 0 ? 1 : -1)) ++nonFalse;
      }
      if (nonFalse > 1) deleted_[id] = true;
      return true;  // matched (kept-as-reason still counts as matched)
    }
    return false;
  }

 private:
  static size_t litIndex(int l) {
    size_t v = static_cast<size_t>(l < 0 ? -l : l);
    return 2 * v + (l < 0 ? 1 : 0);
  }

  static std::vector<int> sortedKey(const std::vector<int>& lits) {
    std::vector<int> key = lits;
    for (size_t a = 1; a < key.size(); ++a) {
      int x = key[a];
      size_t b = a;
      while (b > 0 && key[b - 1] > x) {
        key[b] = key[b - 1];
        --b;
      }
      key[b] = x;
    }
    return key;
  }

  void assign(int l) {
    val_[static_cast<size_t>(l < 0 ? -l : l)] = l < 0 ? -1 : 1;
    trail_.push_back(l);
  }

  // Occurrence-list unit propagation to fixpoint; false on conflict.
  bool propagate() {
    while (head_ < trail_.size()) {
      int falsified = -trail_[head_++];  // this literal just became false
      for (size_t id : occ_[litIndex(falsified)]) {
        if (deleted_[id]) continue;
        int unassigned = 0, unit = 0;
        bool sat = false;
        for (int l : clauses_[id]) {
          signed char v = val_[static_cast<size_t>(l < 0 ? -l : l)];
          if (v == (l < 0 ? -1 : 1)) {
            sat = true;
            break;
          }
          if (v == 0) {
            ++unassigned;
            unit = l;
            if (unassigned > 1) break;
          }
        }
        if (sat || unassigned > 1) continue;
        if (unassigned == 0) return false;
        assign(unit);
      }
    }
    return true;
  }

  std::vector<std::vector<int>> clauses_;
  std::vector<bool> deleted_;
  std::map<std::vector<int>, std::vector<size_t>> keys_;
  std::vector<signed char> val_;
  std::vector<std::vector<size_t>> occ_;
  std::vector<int> trail_;
  size_t head_ = 0;
  bool latched_ = false;
};

void checkProof(const Certificate& cert, bool complete) {
  Propagator prop(cert.vars);
  for (const std::vector<int>& clause : cert.cnf) prop.addClause(clause);
  // The blocking clause of every FINAL cube is a premise: the completeness
  // claim is exactly "CNF AND these blocking clauses is UNSAT" (no solution
  // escapes the cover), and the engines' transient blocking/flip clauses are
  // all subsumed by these (a merged cube's blocking clause is a subset of
  // each merged-away cube's).
  std::vector<int> blocking;
  for (const std::vector<int>& cube : cert.cubes) {
    blocking.clear();
    for (int l : cube) {
      int idx = (l < 0 ? -l : l) - 1;
      int cnfVar = static_cast<int>(cert.scope[static_cast<size_t>(idx)]);
      blocking.push_back(l < 0 ? cnfVar : -cnfVar);
    }
    prop.addClause(blocking);
  }
  bool sawEmpty = false;
  for (size_t i = 0; i < cert.proof.size(); ++i) {
    const ProofStep& step = cert.proof[i];
    if (step.deletion) {
      if (!prop.deleteClause(step.lits))
        fail("cert.proof.delete", "proof step %zu deletes a clause that is not in the working set",
             i);
      continue;
    }
    if (!prop.rupCheck(step.lits))
      fail("cert.proof.rup", "proof step %zu is not a reverse-unit-propagation consequence", i);
    prop.addClause(step.lits);
    if (step.lits.empty()) sawEmpty = true;
  }
  if (complete && !sawEmpty)
    fail("cert.proof.missing-empty",
         "outcome is 'complete' but the proof never derives the empty clause");
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool haveExpectHash = false;
  uint64_t expectHash = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--circuit-hash") == 0 && i + 1 < argc) {
      const char* p = argv[++i];
      const char* end = p + std::strlen(p);
      if (!parseHex64(p, end, expectHash) || !atEol(p, end)) {
        std::fprintf(stderr, "presat_check: malformed --circuit-hash value\n");
        return 1;
      }
      haveExpectHash = true;
    } else if (path == nullptr && std::strcmp(argv[i], "--help") != 0) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: presat_check [--circuit-hash <16 hex>] <certificate-file>\n"
                 "  verifies a presat-cert-v1 certificate; '-' reads stdin\n"
                 "  --circuit-hash: also require the header's circuit structural hash\n"
                 "                  to equal this caller-known value (staleness check)\n"
                 "  exit 0: complete cover verified\n"
                 "  exit 2: partial cover verified as a sound under-approximation\n"
                 "  exit 1: verification failure or usage error\n");
    return 1;
  }

  std::string text;
  {
    std::FILE* f = std::strcmp(path, "-") == 0 ? stdin : std::fopen(path, "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "presat_check: FAIL cert.parse.truncated: cannot open '%s'\n", path);
      return 1;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    if (f != stdin) std::fclose(f);
  }

  Certificate cert = parseCertificate(text);

  // Honesty first: the claimed outcome must be a recognized name, and only
  // 'complete' earns a completeness obligation.
  static const char* kPartialOutcomes[] = {"deadline", "memory", "conflicts", "cancelled",
                                           "cube-cap"};
  bool complete = cert.outcome == "complete";
  if (!complete) {
    bool known = false;
    for (const char* name : kPartialOutcomes) known = known || cert.outcome == name;
    if (!known)
      fail("cert.flags.outcome", "unrecognized outcome '%s'", cert.outcome.c_str());
  }

  uint64_t h = fnv1aCnfHash(cert.cnf);
  if (h != cert.cnfHash)
    fail("cert.hash.cnf", "embedded CNF hashes to %016llx but header claims %016llx",
         static_cast<unsigned long long>(h), static_cast<unsigned long long>(cert.cnfHash));
  if (haveExpectHash && cert.circuitHash != expectHash)
    fail("cert.hash.circuit", "certificate was built against circuit %016llx, expected %016llx",
         static_cast<unsigned long long>(cert.circuitHash),
         static_cast<unsigned long long>(expectHash));

  checkCubesAndWitnesses(cert);
  if (cert.disjoint) checkDisjoint(cert.cubes, "cubes");
  checkDisjoint(cert.guides, "guide cubes");
  checkProof(cert, complete);

  if (complete) {
    std::printf("presat_check: OK complete cover verified (%zu cubes, %zu proof steps, engine %s)\n",
                cert.cubes.size(), cert.proof.size(), cert.engine.c_str());
    return 0;
  }
  std::printf(
      "presat_check: OK partial cover verified sound (outcome=%s, %zu cubes, engine %s)\n",
      cert.outcome.c_str(), cert.cubes.size(), cert.engine.c_str());
  return 2;
}
