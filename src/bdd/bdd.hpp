// Reduced Ordered Binary Decision Diagram package.
//
// Serves two roles in the reproduction: the BDD-based preimage baseline the
// paper compares against, and the exactness oracle for every all-SAT engine
// (solution sets are converted to BDDs and compared for equality).
//
// Design: plain nodes without complement edges (simpler invariants, easily
// auditable), a hash-consed unique table, an ITE computed cache, and no
// garbage collection — managers are scoped to an analysis and dropped
// wholesale, which is how every caller in this repository uses them.
// Variable order is the integer order of the variable indices.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/biguint.hpp"
#include "base/types.hpp"
#include "govern/governor.hpp"

namespace presat {

class AuditResult;
enum class BddCorruption : int;

using BddRef = uint32_t;

class BddManager {
 public:
  // All BDDs in this manager range over variables 0..numVars-1.
  explicit BddManager(int numVars);

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  int numVars() const { return numVars_; }
  size_t numNodes() const { return nodes_.size(); }

  // Attaches a resource governor (null to detach). Every node allocation is
  // charged to the tracked-byte pool, and mkNode throws GovernorStop once
  // the governor trips — the hash-consed recursion cannot return a partial
  // node, so governed callers (BDD preimage, fixpoint algebra) catch at the
  // engine boundary and report a sound partial Outcome. Ungoverned managers
  // (the default, including every oracle use in tests) never throw.
  void setGovernor(Governor* governor);

  // --- constructors -----------------------------------------------------------
  BddRef constant(bool value) const { return value ? kTrue : kFalse; }
  BddRef variable(Var v);           // the function "v"
  BddRef literal(Var v, bool phase);  // v or ~v
  BddRef literal(Lit l) { return literal(l.var(), !l.sign()); }
  // Conjunction of literals.
  BddRef cube(const LitVec& lits);

  // --- boolean operations --------------------------------------------------------
  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bddAnd(BddRef f, BddRef g) { return ite(f, g, kFalse); }
  BddRef bddOr(BddRef f, BddRef g) { return ite(f, kTrue, g); }
  BddRef bddXor(BddRef f, BddRef g) { return ite(f, bddNot(g), g); }
  BddRef bddXnor(BddRef f, BddRef g) { return ite(f, g, bddNot(g)); }
  BddRef bddNot(BddRef f) { return ite(f, kFalse, kTrue); }
  BddRef bddImplies(BddRef f, BddRef g) { return ite(f, g, kTrue); }

  // --- structure ------------------------------------------------------------------
  bool isConstant(BddRef f) const { return f <= kTrue; }
  Var topVar(BddRef f) const;
  BddRef low(BddRef f) const;
  BddRef high(BddRef f) const;

  // Cofactor with respect to a single literal.
  BddRef restrict1(BddRef f, Var v, bool value);

  // Existential / universal quantification over a variable set.
  BddRef exists(BddRef f, const std::vector<Var>& vars);
  BddRef forall(BddRef f, const std::vector<Var>& vars);
  // Relational product ∃vars. f ∧ g in one pass (avoids building the full
  // conjunction before quantifying) — the classic image/preimage primitive.
  BddRef andExists(BddRef f, BddRef g, const std::vector<Var>& vars);

  // Simultaneous substitution: variable v is replaced by substitution[v]
  // (entries equal to kNoSubstitution keep the variable). Used for the
  // substitution-based preimage  Target(s' <- delta(s, x)).
  static constexpr BddRef kNoSubstitution = static_cast<BddRef>(-1);
  BddRef composeVector(BddRef f, const std::vector<BddRef>& substitution);

  // --- queries --------------------------------------------------------------------
  // Number of satisfying assignments over all numVars() variables.
  BigUint satCount(BddRef f);
  // Support variables, ascending.
  std::vector<Var> support(BddRef f);
  // All cubes (paths to kTrue): literals over decision variables on the path.
  std::vector<LitVec> enumerateCubes(BddRef f);
  // Count of BDD nodes reachable from f (including terminals).
  size_t dagSize(BddRef f);

  // Structural equality is just reference equality thanks to hash-consing;
  // exposed for readability at call sites.
  static bool equal(BddRef a, BddRef b) { return a == b; }

  std::string toDot(BddRef f, const std::string& name = "bdd");

 private:
  struct Node {
    Var var;  // numVars_ for terminals
    BddRef lo;
    BddRef hi;
  };
  struct UniqueKey {
    Var var;
    BddRef lo, hi;
    bool operator==(const UniqueKey& o) const {
      return var == o.var && lo == o.lo && hi == o.hi;
    }
  };
  struct UniqueKeyHash {
    size_t operator()(const UniqueKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.var) * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<uint64_t>(k.lo) << 32) | k.hi;
      h *= 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey& o) const { return f == o.f && g == o.g && h == o.h; }
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& k) const {
      uint64_t h = k.f;
      h = h * 0x100000001b3ull ^ k.g;
      h = h * 0x100000001b3ull ^ k.h;
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  BddRef mkNode(Var var, BddRef lo, BddRef hi);
  const Node& node(BddRef f) const { return nodes_[f]; }

  int numVars_;
  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, BddRef, UniqueKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> iteCache_;

  Governor* governor_ = nullptr;
  MemoryLedger poolLedger_;  // node-pool bytes charged to the governor

  // Deep structural validation (src/check/audit_bdd.cpp) and its test-only
  // corruption hook need access to the node table and caches.
  friend AuditResult auditBdd(const BddManager& mgr);
  friend void corruptBddForTest(BddManager& mgr, BddCorruption kind);

  friend class BddAlgoScratch;
};

}  // namespace presat
