// Quantification, composition, counting, and enumeration algorithms.
#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "base/log.hpp"
#include "bdd/bdd.hpp"

namespace presat {

BddRef BddManager::exists(BddRef f, const std::vector<Var>& vars) {
  if (vars.empty() || isConstant(f)) return f;
  std::vector<bool> quantified(static_cast<size_t>(numVars_), false);
  for (Var v : vars) {
    PRESAT_CHECK(v >= 0 && v < numVars_);
    quantified[static_cast<size_t>(v)] = true;
  }
  std::unordered_map<BddRef, BddRef> memo;
  // Iterative-friendly recursion via explicit lambda (depth <= numVars_).
  auto rec = [&](auto&& self, BddRef g) -> BddRef {
    if (isConstant(g)) return g;
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    // Copy by value: the recursive calls below allocate (bddOr/mkNode), which
    // can grow the node pool and invalidate references into it.
    const Node n = node(g);
    BddRef lo = self(self, n.lo);
    BddRef hi = self(self, n.hi);
    BddRef result = quantified[static_cast<size_t>(n.var)] ? bddOr(lo, hi)
                                                           : mkNode(n.var, lo, hi);
    memo.emplace(g, result);
    return result;
  };
  return rec(rec, f);
}

BddRef BddManager::forall(BddRef f, const std::vector<Var>& vars) {
  return bddNot(exists(bddNot(f), vars));
}

BddRef BddManager::andExists(BddRef f, BddRef g, const std::vector<Var>& vars) {
  std::vector<bool> quantified(static_cast<size_t>(numVars_), false);
  for (Var v : vars) {
    PRESAT_CHECK(v >= 0 && v < numVars_);
    quantified[static_cast<size_t>(v)] = true;
  }
  struct Key {
    BddRef f, g;
    bool operator==(const Key& o) const { return f == o.f && g == o.g; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.f) << 32) | k.g);
    }
  };
  std::unordered_map<Key, BddRef, KeyHash> memo;
  auto rec = [&](auto&& self, BddRef a, BddRef b) -> BddRef {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue && b == kTrue) return kTrue;
    if (a > b) std::swap(a, b);  // AND is commutative: canonicalize the key
    Key key{a, b};
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    Var v = numVars_;
    if (!isConstant(a)) v = std::min(v, node(a).var);
    if (!isConstant(b)) v = std::min(v, node(b).var);
    auto cof = [&](BddRef x, bool hi) -> BddRef {
      if (isConstant(x) || node(x).var != v) return x;
      return hi ? node(x).hi : node(x).lo;
    };
    BddRef lo = self(self, cof(a, false), cof(b, false));
    BddRef result;
    if (quantified[static_cast<size_t>(v)]) {
      // Early termination: once the low branch is TRUE the disjunction is.
      result = lo == kTrue ? kTrue : bddOr(lo, self(self, cof(a, true), cof(b, true)));
    } else {
      result = mkNode(v, lo, self(self, cof(a, true), cof(b, true)));
    }
    memo.emplace(key, result);
    return result;
  };
  return rec(rec, f, g);
}

BddRef BddManager::composeVector(BddRef f, const std::vector<BddRef>& substitution) {
  PRESAT_CHECK(substitution.size() == static_cast<size_t>(numVars_))
      << "composeVector needs one entry per variable";
  std::unordered_map<BddRef, BddRef> memo;
  auto rec = [&](auto&& self, BddRef g) -> BddRef {
    if (isConstant(g)) return g;
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    // Copy by value: ite() in the recursion can reallocate the node pool.
    const Node n = node(g);
    BddRef lo = self(self, n.lo);
    BddRef hi = self(self, n.hi);
    BddRef replacement = substitution[static_cast<size_t>(n.var)];
    BddRef result = (replacement == kNoSubstitution)
                        ? ite(variable(n.var), hi, lo)
                        : ite(replacement, hi, lo);
    memo.emplace(g, result);
    return result;
  };
  return rec(rec, f);
}

BigUint BddManager::satCount(BddRef f) {
  // count(g) = number of assignments of variables var(g)..numVars-1 that
  // satisfy g; the root is then scaled by 2^var(root).
  std::unordered_map<BddRef, BigUint> memo;
  auto varOf = [&](BddRef g) -> int {
    return isConstant(g) ? numVars_ : node(g).var;
  };
  auto rec = [&](auto&& self, BddRef g) -> BigUint {
    if (g == kFalse) return BigUint(0);
    if (g == kTrue) return BigUint(1);
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const Node& n = node(g);
    BigUint lo = self(self, n.lo);
    lo <<= static_cast<uint32_t>(varOf(n.lo) - n.var - 1);
    BigUint hi = self(self, n.hi);
    hi <<= static_cast<uint32_t>(varOf(n.hi) - n.var - 1);
    BigUint result = lo + hi;
    memo.emplace(g, result);
    return result;
  };
  BigUint count = rec(rec, f);
  count <<= static_cast<uint32_t>(varOf(f));
  return count;
}

std::vector<Var> BddManager::support(BddRef f) {
  std::vector<bool> present(static_cast<size_t>(numVars_), false);
  std::unordered_set<BddRef> visited;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef g = stack.back();
    stack.pop_back();
    if (isConstant(g) || !visited.insert(g).second) continue;
    const Node& n = node(g);
    present[static_cast<size_t>(n.var)] = true;
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  std::vector<Var> result;
  for (Var v = 0; v < numVars_; ++v) {
    if (present[static_cast<size_t>(v)]) result.push_back(v);
  }
  return result;
}

std::vector<LitVec> BddManager::enumerateCubes(BddRef f) {
  std::vector<LitVec> cubes;
  LitVec path;
  auto rec = [&](auto&& self, BddRef g) -> void {
    if (g == kFalse) return;
    if (g == kTrue) {
      cubes.push_back(path);
      return;
    }
    const Node& n = node(g);
    path.push_back(mkLit(n.var, /*negated=*/true));
    self(self, n.lo);
    path.back() = mkLit(n.var, /*negated=*/false);
    self(self, n.hi);
    path.pop_back();
  };
  rec(rec, f);
  return cubes;
}

size_t BddManager::dagSize(BddRef f) {
  std::unordered_set<BddRef> visited;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef g = stack.back();
    stack.pop_back();
    if (!visited.insert(g).second) continue;
    if (isConstant(g)) continue;
    stack.push_back(node(g).lo);
    stack.push_back(node(g).hi);
  }
  return visited.size();
}

std::string BddManager::toDot(BddRef f, const std::string& name) {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n";
  out << "  node0 [label=\"0\", shape=box];\n";
  out << "  node1 [label=\"1\", shape=box];\n";
  std::unordered_set<BddRef> visited{kFalse, kTrue};
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef g = stack.back();
    stack.pop_back();
    if (!visited.insert(g).second) continue;
    const Node& n = node(g);
    out << "  node" << g << " [label=\"x" << n.var << "\"];\n";
    out << "  node" << g << " -> node" << n.lo << " [style=dashed];\n";
    out << "  node" << g << " -> node" << n.hi << ";\n";
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  out << "}\n";
  return out.str();
}

}  // namespace presat
