#include "bdd/bdd.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "govern/faults.hpp"

namespace presat {

namespace {

// Per-node pool footprint: the node itself plus its unique-table entry
// (key + ref + the typical hash-bucket overhead).
constexpr uint64_t kBddNodeBytes = sizeof(uint64_t) * 4 + 2 * sizeof(void*);

}  // namespace

BddManager::BddManager(int numVars) : numVars_(numVars) {
  PRESAT_CHECK(numVars >= 0);
  nodes_.push_back({static_cast<Var>(numVars_), kFalse, kFalse});  // 0 = false
  nodes_.push_back({static_cast<Var>(numVars_), kTrue, kTrue});    // 1 = true
}

void BddManager::setGovernor(Governor* governor) {
  governor_ = governor;
  poolLedger_.attach(governor);
  if (governor != nullptr) poolLedger_.charge(nodes_.size() * kBddNodeBytes);
}

BddRef BddManager::mkNode(Var var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // reduction rule
  UniqueKey key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (governor_ != nullptr) {
    // Injected node-pool exhaustion, then the cooperative checkpoint: a
    // governed manager is the one place that unwinds by exception, because
    // the recursive apply cannot represent "partial node" in its return.
    if (faults::maybeFail("bdd.alloc")) governor_->trip(Outcome::kMemory);
    poolLedger_.charge(kBddNodeBytes);
    Outcome outcome = governor_->poll();
    if (outcome != Outcome::kComplete) throw GovernorStop{outcome};
  }
  BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::variable(Var v) {
  PRESAT_CHECK(v >= 0 && v < numVars_) << "BDD variable out of range: " << v;
  return mkNode(v, kFalse, kTrue);
}

BddRef BddManager::literal(Var v, bool phase) {
  PRESAT_CHECK(v >= 0 && v < numVars_) << "BDD variable out of range: " << v;
  return phase ? mkNode(v, kFalse, kTrue) : mkNode(v, kTrue, kFalse);
}

BddRef BddManager::cube(const LitVec& lits) {
  // Build bottom-up in descending variable order so each mkNode call is O(1).
  LitVec sorted = lits;
  std::sort(sorted.begin(), sorted.end(),
            [](Lit a, Lit b) { return a.var() < b.var(); });
  for (size_t i = 1; i < sorted.size(); ++i) {
    PRESAT_CHECK(sorted[i].var() != sorted[i - 1].var() || sorted[i] == sorted[i - 1])
        << "contradictory cube";
  }
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  BddRef acc = kTrue;
  for (size_t i = sorted.size(); i-- > 0;) {
    Lit l = sorted[i];
    acc = l.sign() ? mkNode(l.var(), acc, kFalse) : mkNode(l.var(), kFalse, acc);
  }
  return acc;
}

Var BddManager::topVar(BddRef f) const {
  PRESAT_DCHECK(!isConstant(f));
  return node(f).var;
}

BddRef BddManager::low(BddRef f) const {
  PRESAT_DCHECK(!isConstant(f));
  return node(f).lo;
}

BddRef BddManager::high(BddRef f) const {
  PRESAT_DCHECK(!isConstant(f));
  return node(f).hi;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  IteKey key{f, g, h};
  auto it = iteCache_.find(key);
  if (it != iteCache_.end()) return it->second;

  // Split on the smallest top variable among the operands.
  Var v = node(f).var;
  if (!isConstant(g)) v = std::min(v, node(g).var);
  if (!isConstant(h)) v = std::min(v, node(h).var);

  auto cof = [&](BddRef x, bool hi) -> BddRef {
    if (isConstant(x) || node(x).var != v) return x;
    return hi ? node(x).hi : node(x).lo;
  };
  BddRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  BddRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  BddRef result = mkNode(v, lo, hi);
  iteCache_.emplace(key, result);
  return result;
}

BddRef BddManager::restrict1(BddRef f, Var v, bool value) {
  if (isConstant(f)) return f;
  Var top = node(f).var;
  if (top > v) return f;
  if (top == v) return value ? node(f).hi : node(f).lo;
  // Simple recursion without cache: restrict1 is only used on small BDDs
  // (target cubes, tests).
  return mkNode(top, restrict1(node(f).lo, v, value), restrict1(node(f).hi, v, value));
}

}  // namespace presat
