#include "allsat/minterm_blocking.hpp"

#include "allsat/compress.hpp"
#include "allsat/preprocess_adapter.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "check/audit_solver.hpp"
#include "sat/solver.hpp"

namespace presat {

AllSatResult mintermBlockingAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                                   const AllSatOptions& options) {
  if (options.preprocess) {
    return runWithPreprocess(cnf, projection, /*lifter=*/{}, options,
                             [](const Cnf& c, const std::vector<Var>& p, const ModelLifter&,
                                const AllSatOptions& o) { return mintermBlockingAllSat(c, p, o); });
  }
  Timer timer;
  AllSatResult result;
  Governor* governor = options.governor;
  Solver solver;
  solver.setConflictBudget(options.conflictBudget);
  solver.setGovernor(governor);
  solver.setProofLog(options.proofLog);
  if (options.randomSeed != 0) solver.setRandomSeed(options.randomSeed);
  bool consistent = solver.addCnf(cnf);

  while (consistent) {
    if (governor != nullptr && governor->poll() != Outcome::kComplete) {
      result.outcome = governor->reason();
      break;
    }
    lbool status = solver.solve();
    ++result.stats.satCalls;
    if (status.isUndef()) {
      // Budget exhausted mid-call (per-call conflict budget or a governor
      // trip): the cubes found so far are a valid partial answer, so return
      // them instead of aborting.
      result.outcome = (governor != nullptr && governor->tripped()) ? governor->reason()
                                                                    : Outcome::kConflicts;
      break;
    }
    if (status.isFalse()) break;
    // The cap is checked after the solve so that exact exhaustion at
    // maxCubes still reports complete: this SAT call proves at least one
    // uncovered solution remains.
    if (options.maxCubes != 0 && result.cubes.size() >= options.maxCubes) {
      result.outcome = Outcome::kCubeCap;
      break;
    }

    LitVec blocking;
    LitVec projectedCube;
    blocking.reserve(projection.size());
    projectedCube.reserve(projection.size());
    for (size_t i = 0; i < projection.size(); ++i) {
      bool value = solver.modelValue(projection[i]);
      // Block this projected minterm: the clause requires at least one
      // projection variable to differ.
      blocking.push_back(mkLit(projection[i], value));
      projectedCube.push_back(mkLit(static_cast<Var>(i), !value));
    }
    result.cubes.push_back(std::move(projectedCube));
    result.stats.blockingClauses += 1;
    result.stats.blockingLiterals += blocking.size();

    consistent = solver.addClause(blocking);
    // Each blocking clause mutates the watch/trail structures the next solve
    // depends on — at full audit depth, re-validate the solver every round.
    PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(auditSolver(solver)));
  }

  // Minterm cubes are disjoint and duplicate-free; only the compression
  // pass of the postpass applies, and it preserves disjointness, so the
  // count below stays the plain power-of-two sum.
  applyProjectionPostpass(result, options, /*disjointCubes=*/true);

  result.mintermCount = countDisjointCubeMinterms(result.cubes, static_cast<int>(projection.size()));
  result.stats.conflicts = solver.stats().conflicts;
  result.stats.decisions = solver.stats().decisions;
  result.stats.propagations = solver.stats().propagations;
  result.stats.restarts = solver.stats().restarts;
  result.stats.reduceDBs = solver.stats().reduceDBs;
  result.stats.deletedClauses = solver.stats().deletedClauses;
  result.stats.dbClausesPeak = solver.stats().dbClausesPeak;
  result.stats.seconds = timer.seconds();
  result.metrics.setLabel("engine", "minterm-blocking");
  exportStatsToMetrics(result.stats, result.metrics);
  finishResult(result, governor);
  return result;
}

}  // namespace presat
