#include "allsat/lifting.hpp"

#include "base/log.hpp"

namespace presat {

LitVec shrinkModelToImplicant(const Cnf& cnf, const std::vector<lbool>& model) {
  // Frequency of each variable as a potential witness: variables that satisfy
  // many clauses make better keepers, leaving more variables free.
  std::vector<uint32_t> frequency(static_cast<size_t>(cnf.numVars()), 0);
  for (const Clause& c : cnf.clauses()) {
    for (Lit l : c) {
      lbool v = model[static_cast<size_t>(l.var())];
      PRESAT_CHECK(!v.isUndef()) << "shrinkModelToImplicant needs a full model";
      if (v.isTrue() != l.sign()) ++frequency[static_cast<size_t>(l.var())];
    }
  }
  std::vector<bool> kept(static_cast<size_t>(cnf.numVars()), false);
  for (const Clause& c : cnf.clauses()) {
    Lit witness = kUndefLit;
    bool haveKeptWitness = false;
    for (Lit l : c) {
      lbool v = model[static_cast<size_t>(l.var())];
      if (v.isTrue() == l.sign()) continue;  // literal false under model
      if (kept[static_cast<size_t>(l.var())]) {
        haveKeptWitness = true;
        break;
      }
      if (witness == kUndefLit ||
          frequency[static_cast<size_t>(l.var())] > frequency[static_cast<size_t>(witness.var())]) {
        witness = l;
      }
    }
    if (haveKeptWitness) continue;
    PRESAT_CHECK(witness != kUndefLit) << "model does not satisfy the formula";
    kept[static_cast<size_t>(witness.var())] = true;
  }
  LitVec cube;
  for (Var v = 0; v < cnf.numVars(); ++v) {
    if (kept[static_cast<size_t>(v)]) {
      cube.push_back(mkLit(v, model[static_cast<size_t>(v)].isFalse()));
    }
  }
  return cube;
}

int implicantPrefixLevel(const Cnf& cnf, const std::vector<lbool>& model,
                         const std::vector<int>& varLevel) {
  int prefix = 0;
  for (const Clause& c : cnf.clauses()) {
    int clauseLevel = -1;
    for (Lit l : c) {
      lbool v = model[static_cast<size_t>(l.var())];
      PRESAT_CHECK(!v.isUndef()) << "implicantPrefixLevel needs a full model";
      if (v.isTrue() == l.sign()) continue;  // literal false under model
      int lvl = varLevel[static_cast<size_t>(l.var())];
      if (clauseLevel < 0 || lvl < clauseLevel) clauseLevel = lvl;
    }
    PRESAT_CHECK(clauseLevel >= 0) << "model does not satisfy the formula";
    if (clauseLevel > prefix) prefix = clauseLevel;
  }
  return prefix;
}

int projectedWitnessLevel(const Cnf& cnf, const std::vector<lbool>& model,
                          const std::vector<int>& varLevel,
                          const std::vector<uint8_t>& inScope) {
  int prefix = 0;
  for (const Clause& c : cnf.clauses()) {
    int clauseLevel = -1;
    for (Lit l : c) {
      lbool v = model[static_cast<size_t>(l.var())];
      if (v.isUndef()) continue;             // not part of the partial witness
      if (v.isTrue() == l.sign()) continue;  // literal false under model
      int lvl =
          inScope[static_cast<size_t>(l.var())] ? varLevel[static_cast<size_t>(l.var())] : 0;
      if (clauseLevel < 0 || lvl < clauseLevel) clauseLevel = lvl;
      if (clauseLevel == 0) break;
    }
    if (clauseLevel < 0) {
      // The solver never stored this clause, so the witness scan never saw
      // it: a tautology (x | ~x) is dropped at addClause time and is
      // trivially satisfied by every partial assignment at level 0.
      bool tautology = false;
      for (size_t i = 0; i < c.size() && !tautology; ++i) {
        for (size_t j = i + 1; j < c.size(); ++j) {
          if (c[i].var() == c[j].var() && c[i].sign() != c[j].sign()) {
            tautology = true;
            break;
          }
        }
      }
      if (tautology) continue;
    }
    PRESAT_CHECK(clauseLevel >= 0) << "partial model is not a witness for every clause";
    if (clauseLevel > prefix) prefix = clauseLevel;
  }
  return prefix;
}

JustificationLifter::JustificationLifter(const Netlist& netlist, NodeCube objectives)
    : netlist_(netlist), objectives_(std::move(objectives)) {
  for (const NodeAssign& obj : objectives_) {
    PRESAT_CHECK(obj.first < netlist_.numNodes());
  }
}

NodeCube JustificationLifter::liftedSources(const std::vector<bool>& nodeValues) const {
  std::vector<bool> marked(netlist_.numNodes(), false);
  NodeCube sources;

  auto mark = [&](auto&& self, NodeId id) -> void {
    if (marked[id]) return;
    marked[id] = true;
    const GateNode& g = netlist_.node(id);
    bool out = nodeValues[id];
    switch (g.type) {
      case GateType::kInput:
      case GateType::kDff:
        sources.emplace_back(id, out);
        return;
      case GateType::kConst0:
      case GateType::kConst1:
        return;
      case GateType::kBuf:
      case GateType::kNot:
        self(self, g.fanins[0]);
        return;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        // Controlling input value: 0 for AND/NAND, 1 for OR/NOR. When a
        // controlling input is present the output is ctrlIn xor inverted
        // (AND -> 0, NAND -> 1, OR -> 1, NOR -> 0).
        bool ctrlIn = (g.type == GateType::kOr || g.type == GateType::kNor);
        bool inverted = (g.type == GateType::kNand || g.type == GateType::kNor);
        bool controlledOut = ctrlIn != inverted;
        if (out == controlledOut) {
          // One controlling fanin suffices; prefer one already marked.
          NodeId pick = kNoNode;
          for (NodeId f : g.fanins) {
            if (nodeValues[f] == ctrlIn) {
              if (marked[f]) {
                pick = f;
                break;
              }
              if (pick == kNoNode) pick = f;
            }
          }
          PRESAT_CHECK(pick != kNoNode) << "inconsistent node values in lifting";
          self(self, pick);
        } else {
          for (NodeId f : g.fanins) self(self, f);
        }
        return;
      }
      case GateType::kXor:
      case GateType::kXnor:
        for (NodeId f : g.fanins) self(self, f);
        return;
      case GateType::kMux: {
        self(self, g.fanins[0]);  // select always matters
        self(self, nodeValues[g.fanins[0]] ? g.fanins[2] : g.fanins[1]);
        return;
      }
    }
  };

  for (const NodeAssign& obj : objectives_) {
    PRESAT_CHECK(nodeValues[obj.first] == obj.second)
        << "objective not met by the model being lifted";
    mark(mark, obj.first);
  }
  return sources;
}

}  // namespace presat
