#include "allsat/success_driven.hpp"

#include <set>
#include <string>
#include <unordered_map>

#include "allsat/compress.hpp"
#include "base/log.hpp"
#include "base/metrics.hpp"
#include "base/rng.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "check/audit_solution_graph.hpp"
#include "circuit/ternary.hpp"
#include "govern/faults.hpp"
#include "govern/governor.hpp"

namespace presat {

namespace {

// 128-bit Zobrist signature of a subproblem. Two independent 64-bit lanes:
// the collision probability of two *distinct* subproblems among N memo
// entries is bounded by N^2 / 2^129 (birthday bound over a 128-bit space) —
// at the 2^20-entry default table bound that is < 2^-89, far below the
// hardware soft-error rate. AllSatOptions::memoCheckExact turns on a
// cross-check against the exact key for debug/test runs.
struct Sig128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  void flip(const Sig128& k) {
    lo ^= k.lo;
    hi ^= k.hi;
  }
  bool operator==(const Sig128&) const = default;
};

struct Sig128Hash {
  size_t operator()(const Sig128& s) const noexcept {
    return static_cast<size_t>(s.lo ^ (s.hi * 0x9e3779b97f4a7c15ull));
  }
};

// One backward-justification search with success-driven learning.
class Engine {
 public:
  Engine(const CircuitAllSatProblem& problem, const AllSatOptions& options)
      : nl_(*problem.netlist),
        options_(options),
        governor_(options.governor),
        fanouts_(nl_.fanouts()),
        value_(nl_.numNodes(), l_Undef),
        inFrontier_(nl_.numNodes(), 0),
        projIndex_(nl_.numNodes(), -1),
        visitStamp_(nl_.numNodes(), 0) {
    std::vector<NodeId> order = nl_.topologicalOrder();
    topoPos_.resize(nl_.numNodes());
    for (size_t i = 0; i < order.size(); ++i) topoPos_[order[i]] = static_cast<uint32_t>(i);
    for (size_t i = 0; i < problem.projectionSources.size(); ++i) {
      NodeId src = problem.projectionSources[i];
      PRESAT_CHECK(!isCombinational(nl_.type(src)))
          << "projection entries must be source nodes";
      projIndex_[src] = static_cast<int>(i);
    }
    // Unconditional: assign()/undoTo() maintain frontierSig_ even with
    // learning off, so the ablation path stays identical modulo the memo.
    initZobrist();
    // Constants carry their value from the start and never need
    // justification.
    for (NodeId id = 0; id < nl_.numNodes(); ++id) {
      if (nl_.type(id) == GateType::kConst0) value_[id] = l_False;
      if (nl_.type(id) == GateType::kConst1) value_[id] = l_True;
    }
    objectives_ = problem.objectives;
    for (const NodeAssign& obj : objectives_) {
      PRESAT_CHECK(obj.first < nl_.numNodes()) << "objective node out of range";
    }
    graphLedger_.attach(governor_);
    memoLedger_.attach(governor_);
  }

  SuccessDrivenResult run() {
    Timer timer;
    SuccessDrivenResult result;
    LitVec rootLits;
    curNewProj_ = &rootLits;
    bool consistent = true;
    for (const NodeAssign& obj : objectives_) {
      if (!assign(obj.first, obj.second)) {
        consistent = false;
        break;
      }
    }
    if (consistent) consistent = propagateFixpoint();
    int root = SolutionGraph::kFail;
    if (consistent) root = solveState();
    graph_.setRoot(root, std::move(rootLits));

    result.graph = std::move(graph_);
    stats_.memoEntries = memo_.size();
    stats_.memoBytes = memoBytes();
    result.summary.stats = stats_;
    result.summary.stats.graphNodes = result.graph.numNodes();
    result.summary.stats.graphEdges = result.graph.numLiveEdges();
    // One path beyond the cap decides completeness without the full
    // path-count dynamic program over the graph.
    if (options_.maxCubes == 0) {
      result.summary.cubes = result.graph.enumerateCubes(0);
    } else {
      uint64_t probe =
          options_.maxCubes == UINT64_MAX ? options_.maxCubes : options_.maxCubes + 1;
      result.summary.cubes = result.graph.enumerateCubes(probe);
      if (result.summary.cubes.size() > options_.maxCubes) {
        result.summary.outcome = Outcome::kCubeCap;
        result.summary.cubes.pop_back();
      }
    }
    // A governor trip dominates the cap: the pruned branches are the reason
    // the graph (and hence the cube set / count) is only a lower bound.
    if (tripped_ && governor_ != nullptr) result.summary.outcome = governor_->reason();
    {
      BddManager mgr(static_cast<int>(numProjection()));
      BddRef u = result.graph.toBdd(mgr);
      result.summary.mintermCount = mgr.satCount(u);
    }
    result.summary.stats.seconds = timer.seconds();
    metrics_.setLabel("engine", "success-driven");
    exportStatsToMetrics(result.summary.stats, metrics_);
    metrics_.setCounter("sig.cone_nodes", sigConeNodes_);
    metrics_.setCounter("sig.bytes", sigConeNodes_ * sizeof(Sig128));
    result.summary.metrics = std::move(metrics_);
    // Serialized solution-graph cubes can repeat and overlap across
    // branches; the projected/compressed epilogue cleans them up without
    // touching the graph-side BDD count above.
    applyProjectionPostpass(result.summary, options_, /*disjointCubes=*/false);
    finishResult(result.summary, governor_);
    return result;
  }

 private:
  enum class EventKind : uint8_t { kAssign, kFrontierRemove };
  struct Event {
    EventKind kind;
    NodeId node;
  };

  struct MemoEntry {
    int child;     // graph node index or a SolutionGraph terminal
    uint32_t gen;  // eviction generation of the last touch
  };

  size_t numProjection() const {
    size_t n = 0;
    for (int idx : projIndex_) {
      if (idx >= 0) ++n;
    }
    return n;
  }

  // --- assignment & propagation ------------------------------------------------

  bool assign(NodeId n, bool v) {
    lbool cur = value_[n];
    if (!cur.isUndef()) return cur.isTrue() == v;
    value_[n] = lbool(v);
    trail_.push_back({EventKind::kAssign, n});
    if (projIndex_[n] >= 0) {
      curNewProj_->push_back(mkLit(static_cast<Var>(projIndex_[n]), !v));
    }
    if (isCombinational(nl_.type(n))) {
      inFrontier_[n] = 1;
      frontier_.insert({topoPos_[n], n});
      frontierSig_.flip(zFrontier_[n]);
      pending_.push_back(n);
    }
    for (NodeId fo : fanouts_[n]) {
      if (!value_[fo].isUndef() && inFrontier_[fo]) pending_.push_back(fo);
    }
    return true;
  }

  void removeFromFrontier(NodeId g) {
    inFrontier_[g] = 0;
    frontier_.erase({topoPos_[g], g});
    frontierSig_.flip(zFrontier_[g]);
    trail_.push_back({EventKind::kFrontierRemove, g});
  }

  // Examines one frontier gate: justifies it, forces fanins, detects a
  // conflict, or leaves it for branching. Returns false on conflict.
  bool examine(NodeId g) {
    if (!inFrontier_[g]) return true;
    const GateNode& gate = nl_.node(g);
    bool v = value_[g].isTrue();

    ins_.clear();
    for (NodeId f : gate.fanins) ins_.push_back(value_[f]);
    lbool forward = evalGateTernary(gate.type, ins_);
    if (!forward.isUndef()) {
      if (forward.isTrue() != v) return false;  // conflict
      removeFromFrontier(g);
      return true;
    }

    // Forward value unknown: collect forced fanin assignments.
    switch (gate.type) {
      case GateType::kBuf:
        return forceAndRecheck(g, gate.fanins[0], v);
      case GateType::kNot:
        return forceAndRecheck(g, gate.fanins[0], !v);
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        bool ctrlIn = (gate.type == GateType::kOr || gate.type == GateType::kNor);
        bool inverted = (gate.type == GateType::kNand || gate.type == GateType::kNor);
        bool controlledOut = ctrlIn != inverted;
        if (v != controlledOut) {
          // Non-controlled output: every fanin must take the non-controlling
          // value.
          for (NodeId f : gate.fanins) {
            if (value_[f].isUndef() && !assign(f, !ctrlIn)) return false;
          }
          pending_.push_back(g);
          return true;
        }
        // Controlled output: one controlling fanin must exist. Forward eval
        // was undef, so no fanin is controlling yet; if exactly one fanin is
        // unassigned it is forced, otherwise this gate branches.
        int unassigned = 0;
        NodeId last = kNoNode;
        for (NodeId f : gate.fanins) {
          if (value_[f].isUndef()) {
            ++unassigned;
            last = f;
          }
        }
        PRESAT_DCHECK(unassigned > 0);
        if (unassigned == 1) return forceAndRecheck(g, last, ctrlIn);
        return true;  // needs a branch decision
      }
      case GateType::kXor:
      case GateType::kXnor: {
        int unassigned = 0;
        NodeId last = kNoNode;
        bool parity = (gate.type == GateType::kXnor) ? !v : v;
        for (NodeId f : gate.fanins) {
          if (value_[f].isUndef()) {
            ++unassigned;
            last = f;
          } else if (value_[f].isTrue()) {
            parity = !parity;
          }
        }
        PRESAT_DCHECK(unassigned > 0);
        if (unassigned == 1) return forceAndRecheck(g, last, parity);
        return true;  // needs a branch decision
      }
      case GateType::kMux: {
        NodeId sel = gate.fanins[0];
        NodeId d0 = gate.fanins[1];
        NodeId d1 = gate.fanins[2];
        if (!value_[sel].isUndef()) {
          NodeId chosen = value_[sel].isTrue() ? d1 : d0;
          PRESAT_DCHECK(value_[chosen].isUndef());  // else forward eval decided
          return forceAndRecheck(g, chosen, v);
        }
        bool d0Known = !value_[d0].isUndef();
        bool d1Known = !value_[d1].isUndef();
        if (d0Known && d1Known) {
          // Exactly one data input matches (both/neither is decided by the
          // forward evaluation above), so the select is forced.
          bool d1Match = value_[d1].isTrue() == v;
          PRESAT_DCHECK((value_[d0].isTrue() == v) != d1Match);
          return forceAndRecheck(g, sel, d1Match);
        }
        return true;  // select undecided with open data: branch on select
      }
      default:
        PRESAT_CHECK(false) << "examine() on non-combinational node";
        return false;
    }
  }

  bool forceAndRecheck(NodeId g, NodeId fanin, bool v) {
    if (!assign(fanin, v)) return false;
    pending_.push_back(g);
    return true;
  }

  bool propagateFixpoint() {
    while (!pending_.empty()) {
      NodeId g = pending_.back();
      pending_.pop_back();
      if (value_[g].isUndef()) continue;
      if (!examine(g)) {
        pending_.clear();
        return false;
      }
    }
    return true;
  }

  void undoTo(size_t mark) {
    while (trail_.size() > mark) {
      Event e = trail_.back();
      trail_.pop_back();
      if (e.kind == EventKind::kAssign) {
        if (inFrontier_[e.node]) {
          inFrontier_[e.node] = 0;
          frontier_.erase({topoPos_[e.node], e.node});
          frontierSig_.flip(zFrontier_[e.node]);
        }
        value_[e.node] = l_Undef;
      } else {
        inFrontier_[e.node] = 1;
        frontier_.insert({topoPos_[e.node], e.node});
        frontierSig_.flip(zFrontier_[e.node]);
      }
    }
  }

  // --- decisions ------------------------------------------------------------------

  // Picks the branch node and first value for the lowest frontier gate.
  void pickBranch(NodeId& branchNode, bool& firstValue) const {
    PRESAT_DCHECK(!frontier_.empty());
    NodeId g = options_.branchOrder == BranchOrder::kLowestGateFirst
                   ? frontier_.begin()->second
                   : frontier_.rbegin()->second;
    const GateNode& gate = nl_.node(g);
    bool v = value_[g].isTrue();
    switch (gate.type) {
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        bool ctrlIn = (gate.type == GateType::kOr || gate.type == GateType::kNor);
        for (NodeId f : gate.fanins) {
          if (value_[f].isUndef()) {
            branchNode = f;
            firstValue = ctrlIn;
            return;
          }
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        for (NodeId f : gate.fanins) {
          if (value_[f].isUndef()) {
            branchNode = f;
            firstValue = false;
            return;
          }
        }
        break;
      }
      case GateType::kMux:
        branchNode = gate.fanins[0];
        firstValue = false;
        PRESAT_DCHECK(value_[branchNode].isUndef());
        return;
      default:
        break;
    }
    PRESAT_CHECK(false) << "frontier gate " << gateTypeName(gate.type) << " value " << v
                        << " has no branch candidate (propagation bug)";
  }

  // --- success-driven learning -----------------------------------------------------
  //
  // The subproblem at a search node is determined by the justification
  // frontier plus the assignment restricted to its transitive fanin cone
  // (backward-only assignment makes this exact — see the header comment).
  // The memo key is a 128-bit Zobrist signature of that state:
  //
  //  * the frontier-membership component is maintained INCREMENTALLY — every
  //    frontier insert/erase in assign()/removeFromFrontier()/undoTo() XORs
  //    the gate's precomputed key into frontierSig_, so it costs O(1) per
  //    event and nothing at signature time;
  //  * the cone-assignment component is accumulated by an XOR walk over the
  //    frontier's fanin cone. It cannot be maintained purely incrementally:
  //    when a gate is justified, cone nodes may silently leave every live
  //    cone (detecting that would need per-node cone reference counts), so
  //    the walk re-derives membership. Unlike the former exact key, the walk
  //    is allocation-free and sort-free (XOR commutes), turning the former
  //    O(cone log cone) + heap-allocated std::string per search node into a
  //    flat O(cone) scan.

  void initZobrist() {
    // Deterministic keys: the engine must behave identically across runs.
    Rng rng(0xc0ffee5d00d1e5ull);
    zAssign_.resize(nl_.numNodes() * 2);
    zFrontier_.resize(nl_.numNodes());
    for (size_t i = 0; i < zAssign_.size(); ++i) zAssign_[i] = {rng.next(), rng.next()};
    for (size_t i = 0; i < zFrontier_.size(); ++i) zFrontier_[i] = {rng.next(), rng.next()};
  }

  // Hashed signature of (frontier, cone assignment) at the current state.
  Sig128 hashedSignature() {
    if (++stamp_ == 0) {  // stamp wrapped: reset the epoch array once
      std::fill(visitStamp_.begin(), visitStamp_.end(), 0u);
      stamp_ = 1;
    }
    Sig128 sig = frontierSig_;
    for (const auto& [pos, g] : frontier_) {
      (void)pos;
      scratchStack_.push_back(g);
    }
    uint64_t coneNodes = 0;
    while (!scratchStack_.empty()) {
      NodeId n = scratchStack_.back();
      scratchStack_.pop_back();
      if (visitStamp_[n] == stamp_) continue;
      visitStamp_[n] = stamp_;
      ++coneNodes;
      lbool v = value_[n];
      if (!v.isUndef()) sig.flip(zAssign_[n * 2 + (v.isTrue() ? 1 : 0)]);
      if (isCombinational(nl_.type(n))) {
        for (NodeId f : nl_.fanins(n)) scratchStack_.push_back(f);
      }
    }
    sigConeNodes_ += coneNodes;
    return sig;
  }

  // The former exact key — frontier + cone assignment serialized into a
  // canonical byte string. Kept as the collision oracle behind
  // AllSatOptions::memoCheckExact.
  std::string exactKey() {
    scratchCone_.clear();
    scratchMark_.assign(nl_.numNodes(), false);
    for (const auto& [pos, g] : frontier_) {
      (void)pos;
      scratchStack_.push_back(g);
    }
    while (!scratchStack_.empty()) {
      NodeId n = scratchStack_.back();
      scratchStack_.pop_back();
      if (scratchMark_[n]) continue;
      scratchMark_[n] = true;
      scratchCone_.push_back(n);
      if (isCombinational(nl_.type(n))) {
        for (NodeId f : nl_.fanins(n)) scratchStack_.push_back(f);
      }
    }
    std::sort(scratchCone_.begin(), scratchCone_.end());
    std::string key;
    key.reserve(scratchCone_.size() * 5);
    for (NodeId n : scratchCone_) {
      lbool v = value_[n];
      if (v.isUndef()) continue;
      uint32_t word = (n << 2) | (v.isTrue() ? 1u : 0u) | (inFrontier_[n] ? 2u : 0u);
      key.append(reinterpret_cast<const char*>(&word), sizeof(word));
    }
    return key;
  }

  // Entry payload plus the typical two-pointer unordered_map overhead
  // (bucket slot + node link). An estimate, but a stable one: it scales
  // linearly in entries, which is what the table bound limits.
  static constexpr uint64_t kMemoEntryBytes =
      sizeof(std::pair<const Sig128, MemoEntry>) + 2 * sizeof(void*);

  uint64_t memoBytes() const { return memo_.size() * kMemoEntryBytes; }

  // Frees space in a full memo: drops every entry not touched since the
  // previous sweep, falling back to dropping an arbitrary half when the
  // working set itself fills the table (guarantees forward progress).
  void evictMemo() {
    size_t before = memo_.size();
    for (auto it = memo_.begin(); it != memo_.end();) {
      if (it->second.gen != memoGen_) {
        if (options_.memoCheckExact) exactKeys_.erase(it->first);
        it = memo_.erase(it);
      } else {
        ++it;
      }
    }
    if (memo_.size() > before / 2) {
      size_t target = before / 2;
      for (auto it = memo_.begin(); it != memo_.end() && memo_.size() > target;) {
        if (options_.memoCheckExact) exactKeys_.erase(it->first);
        it = memo_.erase(it);
      }
    }
    stats_.memoEvictions += before - memo_.size();
    memoLedger_.release((before - memo_.size()) * kMemoEntryBytes);
    ++memoGen_;
  }

  // --- search -------------------------------------------------------------------------

  int solveState() {
    // Cooperative degradation: once the governor trips, the remaining search
    // fails fast — every un-explored branch records kFail, which prunes the
    // graph to a sound under-approximation of the solution set, and memo
    // insertion is suppressed so no pruned result is ever reused as exact.
    if (!tripped_ && governor_ != nullptr) {
      if (faults::maybeFail("sd.node")) governor_->trip(Outcome::kMemory);
      if (governor_->poll() != Outcome::kComplete) tripped_ = true;
    }
    if (tripped_) return SolutionGraph::kFail;
    if (frontier_.empty()) return SolutionGraph::kSuccess;
    Sig128 key;
    if (options_.successLearning) {
      key = hashedSignature();
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        ++stats_.memoHits;
        it->second.gen = memoGen_;
        if (options_.memoCheckExact) {
          auto exact = exactKeys_.find(key);
          PRESAT_CHECK(exact != exactKeys_.end() && exact->second == exactKey())
              << "hashed memo collision: 128-bit signature matched a different subproblem";
        }
        return it->second.child;
      }
      ++stats_.memoMisses;
    }
    metrics_.histogram("frontier.size").record(frontier_.size());

    NodeId branchNode = kNoNode;
    bool firstValue = false;
    pickBranch(branchNode, firstValue);
    ++stats_.decisions;

    SolutionGraph::Node node;
    node.decisionId = branchNode;
    for (int b = 0; b < 2; ++b) {
      bool val = (b == 0) ? firstValue : !firstValue;
      size_t mark = trail_.size();
      LitVec newProj;
      curNewProj_ = &newProj;
      bool consistent = assign(branchNode, val) && propagateFixpoint();
      int child = SolutionGraph::kFail;
      if (consistent) {
        child = solveState();
      } else {
        ++stats_.conflicts;
        if (governor_ != nullptr) governor_->countConflicts(1);
      }
      undoTo(mark);
      node.branch[b].child = child;
      node.branch[b].newLits = std::move(newProj);
    }

    int index;
    if (node.branch[0].child == SolutionGraph::kFail &&
        node.branch[1].child == SolutionGraph::kFail) {
      index = SolutionGraph::kFail;
    } else {
      graphLedger_.charge(
          sizeof(SolutionGraph::Node) +
          (node.branch[0].newLits.capacity() + node.branch[1].newLits.capacity()) *
              sizeof(Lit));
      index = graph_.addNode(node);
    }
    // A node finished under a trip may have had its second branch pruned to
    // kFail — correct as a partial answer, but never reusable as the exact
    // result of this subproblem, so it must not enter the memo.
    if (options_.successLearning && !tripped_) {
      if (options_.maxMemoEntries != 0 && memo_.size() >= options_.maxMemoEntries) evictMemo();
      memo_.emplace(key, MemoEntry{index, memoGen_});
      memoLedger_.charge(kMemoEntryBytes);
      if (options_.memoCheckExact) exactKeys_.emplace(key, exactKey());
    }
    return index;
  }

  const Netlist& nl_;
  AllSatOptions options_;
  Governor* governor_ = nullptr;
  bool tripped_ = false;          // latched locally: fail-fast unwind flag
  MemoryLedger graphLedger_;      // solution-graph bytes
  MemoryLedger memoLedger_;       // memo-table bytes
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<uint32_t> topoPos_;
  std::vector<lbool> value_;
  std::vector<char> inFrontier_;
  std::vector<int> projIndex_;
  NodeCube objectives_;

  std::set<std::pair<uint32_t, NodeId>> frontier_;  // ordered by topo position
  std::vector<NodeId> pending_;
  std::vector<Event> trail_;
  LitVec* curNewProj_ = nullptr;
  std::vector<lbool> ins_;

  // Zobrist tables: zAssign_[2n + v] keys "node n assigned value v",
  // zFrontier_[n] keys "node n is an unjustified frontier gate".
  std::vector<Sig128> zAssign_;
  std::vector<Sig128> zFrontier_;
  Sig128 frontierSig_;  // XOR over zFrontier_ of the current frontier set

  std::unordered_map<Sig128, MemoEntry, Sig128Hash> memo_;
  std::unordered_map<Sig128, std::string, Sig128Hash> exactKeys_;  // memoCheckExact only
  uint32_t memoGen_ = 0;
  uint64_t sigConeNodes_ = 0;

  SolutionGraph graph_;
  AllSatStats stats_;
  Metrics metrics_;

  // signature scratch: epoch-stamped visit marks (no O(numNodes) clear per
  // signature) and a reusable DFS stack.
  std::vector<uint32_t> visitStamp_;
  uint32_t stamp_ = 0;
  std::vector<NodeId> scratchStack_;

  // exactKey() scratch (memoCheckExact only)
  std::vector<NodeId> scratchCone_;
  std::vector<bool> scratchMark_;
};

}  // namespace

SuccessDrivenResult successDrivenAllSat(const CircuitAllSatProblem& problem,
                                        const AllSatOptions& options) {
  PRESAT_CHECK(problem.netlist != nullptr);
  Engine engine(problem, options);
  SuccessDrivenResult result = engine.run();
  // cheap = structural DAG invariants only; full additionally replays every
  // sampled cube through a SAT check against the original circuit problem.
  PRESAT_AUDIT_CHEAP({
    SolutionGraphAuditOptions auditOptions;
    auditOptions.maxCubeSatChecks = 0;
    if constexpr (kAuditLevel == AuditLevel::kFull) {
      auditOptions.problem = &problem;
      auditOptions.maxCubeSatChecks = 256;
    } else {
      auditOptions.numProjectionVars = static_cast<int>(problem.projectionSources.size());
    }
    PRESAT_CHECK_AUDIT(auditSolutionGraph(result.graph, auditOptions));
  });
  return result;
}

}  // namespace presat
