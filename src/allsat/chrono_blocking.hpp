// Blocking-clause-free all-SAT via chronological backtracking.
//
// The classical baselines (minterm/cube blocking) store every found solution
// as a clause, so the clause database — and each propagation — grows with the
// solution count. This engine never adds a blocking clause: after each model
// it emits a disjoint cube (the scope-decision prefix, widened by the
// prefix-closed implicant shrinking pass in allsat/lifting) and then flips
// the deepest scope decision of the emitted prefix as a reason-less
// pseudo-decision, continuing the search in the untouched half of the space.
// Conflict-driven backjumping is clamped at the deepest flipped level, so
// already-emitted regions are never revisited. See "Disjoint Partial
// Enumeration without Blocking Clauses" (Spallitta, Sebastiani, Biere) and
// DESIGN.md for the trail invariants.
//
// Output contract: the emitted cubes are PAIRWISE DISJOINT and their union is
// exactly the projected solution set (src/check/audit_chrono.cpp proves both
// against a BDD oracle), so the result is directly comparable to the other
// engines and countable without a BDD.
#pragma once

#include <vector>

#include "allsat/projection.hpp"
#include "base/types.hpp"
#include "cnf/cnf.hpp"

namespace presat {

// Enumerates the projection of the solution set of `cnf` onto `projection`
// with zero blocking clauses. Honors maxCubes, conflictBudget, randomSeed,
// and chronoShrink from `options` (parallel dispatch lives in
// src/parallel/parallel_allsat.cpp, like the other CNF engines).
AllSatResult chronoAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                          const AllSatOptions& options);

}  // namespace presat
