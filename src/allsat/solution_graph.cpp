#include "allsat/solution_graph.hpp"

#include <sstream>
#include <unordered_map>

#include "base/log.hpp"
#include "bdd/bdd.hpp"

namespace presat {

size_t SolutionGraph::numLiveEdges() const {
  size_t n = root_.child != kFail ? 1 : 0;
  for (const Node& node : nodes_) {
    for (const Branch& b : node.branch) {
      if (b.child != kFail) ++n;
    }
  }
  return n;
}

size_t SolutionGraph::numStoredLiterals() const {
  size_t n = root_.child != kFail ? root_.newLits.size() : 0;
  for (const Node& node : nodes_) {
    for (const Branch& b : node.branch) {
      if (b.child != kFail) n += b.newLits.size();
    }
  }
  return n;
}

BigUint SolutionGraph::countPaths() const {
  if (root_.child == kFail) return BigUint(0);
  std::vector<BigUint> memo(nodes_.size());
  std::vector<bool> done(nodes_.size(), false);
  auto rec = [&](auto&& self, int index) -> BigUint {
    if (index == kSuccess) return BigUint(1);
    if (index == kFail) return BigUint(0);
    size_t i = static_cast<size_t>(index);
    if (done[i]) return memo[i];
    BigUint total = self(self, nodes_[i].branch[0].child) + self(self, nodes_[i].branch[1].child);
    memo[i] = total;
    done[i] = true;
    return total;
  };
  return rec(rec, root_.child);
}

Dyadic SolutionGraph::pathMeasure() const {
  if (root_.child == kFail) return Dyadic::zero();
  std::vector<Dyadic> memo(nodes_.size());
  std::vector<bool> done(nodes_.size(), false);
  auto rec = [&](auto&& self, int index) -> Dyadic {
    if (index == kSuccess) return Dyadic::one();
    if (index == kFail) return Dyadic::zero();
    size_t i = static_cast<size_t>(index);
    if (done[i]) return memo[i];
    Dyadic total;
    for (const Branch& b : nodes_[i].branch) {
      Dyadic part = self(self, b.child);
      part.divPow2(static_cast<uint32_t>(b.newLits.size()));
      total += part;
    }
    memo[i] = total;
    done[i] = true;
    return total;
  };
  Dyadic m = rec(rec, root_.child);
  m.divPow2(static_cast<uint32_t>(root_.newLits.size()));
  return m;
}

std::vector<LitVec> SolutionGraph::enumerateCubes(uint64_t limit) const {
  std::vector<LitVec> cubes;
  if (root_.child == kFail) return cubes;
  LitVec path = root_.newLits;
  auto rec = [&](auto&& self, int index) -> bool {  // false = limit reached
    if (index == kFail) return true;
    if (index == kSuccess) {
      cubes.push_back(path);
      return limit == 0 || cubes.size() < limit;
    }
    const Node& n = nodes_[static_cast<size_t>(index)];
    for (const Branch& b : n.branch) {
      size_t before = path.size();
      path.insert(path.end(), b.newLits.begin(), b.newLits.end());
      bool keepGoing = self(self, b.child);
      path.resize(before);
      if (!keepGoing) return false;
    }
    return true;
  };
  rec(rec, root_.child);
  return cubes;
}

uint32_t SolutionGraph::toBdd(BddManager& mgr) const {
  std::unordered_map<int, BddRef> memo;
  auto rec = [&](auto&& self, int index) -> BddRef {
    if (index == kSuccess) return BddManager::kTrue;
    if (index == kFail) return BddManager::kFalse;
    auto it = memo.find(index);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[static_cast<size_t>(index)];
    BddRef acc = BddManager::kFalse;
    for (const Branch& b : n.branch) {
      BddRef child = self(self, b.child);
      if (child == BddManager::kFalse) continue;
      acc = mgr.bddOr(acc, mgr.bddAnd(mgr.cube(b.newLits), child));
    }
    memo.emplace(index, acc);
    return acc;
  };
  BddRef body = rec(rec, root_.child);
  return mgr.bddAnd(mgr.cube(root_.newLits), body);
}

std::string SolutionGraph::toDot() const {
  std::ostringstream out;
  out << "digraph solutions {\n";
  out << "  success [label=\"SUCCESS\", shape=box];\n";
  auto target = [&](int child) -> std::string {
    if (child == kSuccess) return "success";
    PRESAT_DCHECK(child >= 0);
    return "n" + std::to_string(child);
  };
  auto litsLabel = [](const LitVec& lits) {
    std::string s;
    for (Lit l : lits) {
      if (!s.empty()) s += " ";
      s += (l.sign() ? "~p" : "p") + std::to_string(l.var());
    }
    return s;
  };
  if (root_.child != kFail) {
    out << "  root [shape=point];\n";
    out << "  root -> " << target(root_.child) << " [label=\"" << litsLabel(root_.newLits)
        << "\"];\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out << "  n" << i << " [label=\"d" << nodes_[i].decisionId << "\"];\n";
    for (int b = 0; b < 2; ++b) {
      const Branch& br = nodes_[i].branch[b];
      if (br.child == kFail) continue;
      out << "  n" << i << " -> " << target(br.child) << " [label=\"" << litsLabel(br.newLits)
          << "\"" << (b == 0 ? ", style=dashed" : "") << "];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace presat
