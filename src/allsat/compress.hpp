// Wildcard cube-set compression (Wild, arXiv 1712.00751 style) and the
// projection post-pass shared by the all-solutions engines.
//
// The core rewrite is the wildcard merge (x & A) | (~x & A) = A: two cubes
// identical except for one opposite-polarity literal collapse into one cube
// with that literal dropped. The merge preserves the cube-set UNION exactly,
// and — because the merged cube covers precisely its two parents — it also
// preserves pairwise disjointness of disjoint inputs. mintermCount therefore
// never needs recomputation after compression.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace presat {

class Governor;
class Metrics;
struct AllSatOptions;
struct AllSatResult;
struct CompressMergeRecord;

struct CompressStats {
  uint64_t cubesIn = 0;
  uint64_t cubesOut = 0;
  uint64_t merges = 0;      // wildcard pair merges applied
  uint64_t duplicates = 0;  // exact duplicate cubes dropped
  uint64_t subsumed = 0;    // cubes dropped for lying inside a wider cube
  uint64_t rounds = 0;      // merge rounds until fixpoint
};

// Serializes the compress.* counter block (presat_cli --stats json and the
// BENCH_*.json files).
void exportCompressToMetrics(const CompressStats& stats, Metrics& m);

// Wildcard-merges `cubes` in place to a fixpoint (literals end up sorted by
// variable). Union-preserving always; disjointness-preserving for disjoint
// inputs. When `governor` is non-null the working tables are charged to its
// tracked-byte pool and the pass stops early at a trip — sound, since every
// intermediate state is an equivalent cover. Cubes must be well-formed (no
// variable twice). When `trace` is non-null, one CompressMergeRecord is
// appended per merge applied (certificate `w` witness lines).
CompressStats compressCubes(std::vector<LitVec>& cubes, Governor* governor = nullptr,
                            std::vector<CompressMergeRecord>* trace = nullptr);

// Canonical cleanup for possibly-overlapping covers (the project-then-dedup
// mode of the blocking and success-driven engines): sorts literals, drops
// exact duplicates, and — on covers small enough for the quadratic scan —
// drops cubes subsumed by a wider cube. Union-preserving.
CompressStats dedupCubes(std::vector<LitVec>& cubes);

// Engine epilogue for the projected mode: applies dedupCubes when the
// engine's raw cubes may overlap (`disjointCubes` false) and `project` is
// on, then compressCubes when `compress` is on, and stamps the proj.* /
// compress.* metrics. Call after the cube set is final but before counting
// or exporting stats; the union (and hence mintermCount) is unchanged.
void applyProjectionPostpass(AllSatResult& result, const AllSatOptions& options,
                             bool disjointCubes);

}  // namespace presat
