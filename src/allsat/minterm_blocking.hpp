// Classic all-solutions SAT baseline: repeated CDCL solving with one
// minterm-level blocking clause per solution.
//
// This is the approach the paper improves on. Cost profile: one top-level
// solver call and one added clause per projected minterm — both the runtime
// and the clause database scale with the (potentially exponential) number of
// solutions.
#pragma once

#include "allsat/projection.hpp"
#include "cnf/cnf.hpp"

namespace presat {

// Enumerates all assignments to `projection` extendable to a model of `cnf`.
// Resulting cubes are full projected minterms (pairwise disjoint).
AllSatResult mintermBlockingAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                                   const AllSatOptions& options = {});

}  // namespace presat
