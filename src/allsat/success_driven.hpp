// Success-driven all-solutions SAT over circuit structure — the paper's
// primary contribution.
//
// The engine enumerates every assignment of the projection sources (e.g.
// present-state variables) under which the objectives (required node values,
// e.g. a target next-state cube) are satisfiable, WITHOUT blocking clauses:
//
//  * Search is backward justification over the netlist: a gate with a
//    required value either forces its fanins (AND=1 forces all fanins to 1),
//    or opens a binary decision on one fanin. Only nodes inside the
//    transitive fanin cones of unjustified gates are ever assigned.
//  * A leaf where the justification frontier is empty is a SUCCESS: the
//    sources assigned so far form a solution cube; every completion of the
//    unassigned sources works. This yields cube-level solutions for free.
//  * Success-driven learning: each subproblem is identified by its
//    justification frontier plus the current assignment restricted to the
//    frontier's fanin cone — which, because assignment is backward-only,
//    determines the entire subsearch. Solved subproblems are memoized and
//    their solution sub-DAGs shared, so equivalent subproblems are never
//    re-solved and the result is a compact SolutionGraph instead of an
//    exponential cube list.
#pragma once

#include <vector>

#include "allsat/lifting.hpp"
#include "allsat/projection.hpp"
#include "allsat/solution_graph.hpp"
#include "circuit/netlist.hpp"

namespace presat {

struct CircuitAllSatProblem {
  const Netlist* netlist = nullptr;
  // Required (node, value) pairs that every solution must satisfy.
  NodeCube objectives;
  // Source nodes (inputs / DFF outputs) defining the projection scope;
  // projected index i corresponds to projectionSources[i].
  std::vector<NodeId> projectionSources;
};

struct SuccessDrivenResult {
  // cubes are the root-to-SUCCESS path cubes of `graph` (enumeration is
  // capped by AllSatOptions::maxCubes; the graph itself is always complete).
  AllSatResult summary;
  SolutionGraph graph;
};

SuccessDrivenResult successDrivenAllSat(const CircuitAllSatProblem& problem,
                                        const AllSatOptions& options = {});

}  // namespace presat
