#include "allsat/projection.hpp"

#include "base/log.hpp"
#include "bdd/bdd.hpp"
#include "govern/governor.hpp"

namespace presat {

void finishResult(AllSatResult& result, const Governor* governor) {
  result.complete = (result.outcome == Outcome::kComplete);
  result.metrics.setLabel("outcome", outcomeName(result.outcome));
  if (governor != nullptr) governor->exportMetrics(result.metrics);
}

void exportStatsToMetrics(const AllSatStats& stats, Metrics& m) {
  m.setCounter("sat.calls", stats.satCalls);
  m.setCounter("sat.conflicts", stats.conflicts);
  m.setCounter("sat.decisions", stats.decisions);
  m.setCounter("sat.propagations", stats.propagations);
  m.setCounter("sat.restarts", stats.restarts);
  m.setCounter("sat.reduce_dbs", stats.reduceDBs);
  m.setCounter("sat.deleted_clauses", stats.deletedClauses);
  m.setCounter("blocking.clauses", stats.blockingClauses);
  m.setCounter("blocking.literals", stats.blockingLiterals);
  m.setCounter("memo.hits", stats.memoHits);
  m.setCounter("memo.misses", stats.memoMisses);
  m.setCounter("memo.evictions", stats.memoEvictions);
  m.setCounter("memo.entries", stats.memoEntries);
  m.setCounter("memo.bytes", stats.memoBytes);
  m.setCounter("graph.nodes", stats.graphNodes);
  m.setCounter("graph.edges", stats.graphEdges);
  m.setCounter("chrono.flips", stats.flips);
  m.setCounter("chrono.shrink_lits", stats.shrinkLits);
  m.setCounter("sat.db_clauses", stats.dbClausesPeak);
  m.setGauge("time.seconds", stats.seconds);
}

BigUint countDisjointCubeMinterms(const std::vector<LitVec>& cubes, int numProjectionVars) {
  BigUint total(0);
  for (const LitVec& cube : cubes) {
    PRESAT_CHECK(cube.size() <= static_cast<size_t>(numProjectionVars));
    total += BigUint::powerOfTwo(
        static_cast<uint32_t>(numProjectionVars - static_cast<int>(cube.size())));
  }
  return total;
}

bool cubesPairwiseDisjoint(const std::vector<LitVec>& cubes) {
  for (size_t i = 0; i < cubes.size(); ++i) {
    for (size_t j = i + 1; j < cubes.size(); ++j) {
      // Disjoint iff some variable appears with opposite polarity.
      bool clash = false;
      for (Lit a : cubes[i]) {
        for (Lit b : cubes[j]) {
          if (a.var() == b.var() && a.sign() != b.sign()) {
            clash = true;
            break;
          }
        }
        if (clash) break;
      }
      if (!clash) return false;
    }
  }
  return true;
}

uint32_t cubesToBdd(BddManager& mgr, const std::vector<LitVec>& cubes) {
  BddRef acc = BddManager::kFalse;
  for (const LitVec& cube : cubes) acc = mgr.bddOr(acc, mgr.cube(cube));
  return acc;
}

BigUint countCubeUnionMinterms(const std::vector<LitVec>& cubes, int numProjectionVars) {
  BddManager mgr(numProjectionVars);
  BddRef u = cubesToBdd(mgr, cubes);
  return mgr.satCount(u);
}

bool cubeCoversMinterm(const LitVec& cube, uint64_t minterm) {
  for (Lit l : cube) {
    bool bit = (minterm >> l.var()) & 1;
    if (bit == l.sign()) return false;  // literal requires the opposite value
  }
  return true;
}

}  // namespace presat
