#include "allsat/projection.hpp"

#include "base/log.hpp"
#include "bdd/bdd.hpp"

namespace presat {

BigUint countDisjointCubeMinterms(const std::vector<LitVec>& cubes, int numProjectionVars) {
  BigUint total(0);
  for (const LitVec& cube : cubes) {
    PRESAT_CHECK(cube.size() <= static_cast<size_t>(numProjectionVars));
    total += BigUint::powerOfTwo(
        static_cast<uint32_t>(numProjectionVars - static_cast<int>(cube.size())));
  }
  return total;
}

bool cubesPairwiseDisjoint(const std::vector<LitVec>& cubes) {
  for (size_t i = 0; i < cubes.size(); ++i) {
    for (size_t j = i + 1; j < cubes.size(); ++j) {
      // Disjoint iff some variable appears with opposite polarity.
      bool clash = false;
      for (Lit a : cubes[i]) {
        for (Lit b : cubes[j]) {
          if (a.var() == b.var() && a.sign() != b.sign()) {
            clash = true;
            break;
          }
        }
        if (clash) break;
      }
      if (!clash) return false;
    }
  }
  return true;
}

uint32_t cubesToBdd(BddManager& mgr, const std::vector<LitVec>& cubes) {
  BddRef acc = BddManager::kFalse;
  for (const LitVec& cube : cubes) acc = mgr.bddOr(acc, mgr.cube(cube));
  return acc;
}

BigUint countCubeUnionMinterms(const std::vector<LitVec>& cubes, int numProjectionVars) {
  BddManager mgr(numProjectionVars);
  BddRef u = cubesToBdd(mgr, cubes);
  return mgr.satCount(u);
}

bool cubeCoversMinterm(const LitVec& cube, uint64_t minterm) {
  for (Lit l : cube) {
    bool bit = (minterm >> l.var()) & 1;
    if (bit == l.sign()) return false;  // literal requires the opposite value
  }
  return true;
}

}  // namespace presat
