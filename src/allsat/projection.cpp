#include "allsat/projection.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "bdd/bdd.hpp"
#include "govern/governor.hpp"

namespace presat {

void finishResult(AllSatResult& result, const Governor* governor) {
  result.complete = (result.outcome == Outcome::kComplete);
  result.metrics.setLabel("outcome", outcomeName(result.outcome));
  if (governor != nullptr) governor->exportMetrics(result.metrics);
}

void exportStatsToMetrics(const AllSatStats& stats, Metrics& m) {
  m.setCounter("sat.calls", stats.satCalls);
  m.setCounter("sat.conflicts", stats.conflicts);
  m.setCounter("sat.decisions", stats.decisions);
  m.setCounter("sat.propagations", stats.propagations);
  m.setCounter("sat.restarts", stats.restarts);
  m.setCounter("sat.reduce_dbs", stats.reduceDBs);
  m.setCounter("sat.deleted_clauses", stats.deletedClauses);
  m.setCounter("blocking.clauses", stats.blockingClauses);
  m.setCounter("blocking.literals", stats.blockingLiterals);
  m.setCounter("memo.hits", stats.memoHits);
  m.setCounter("memo.misses", stats.memoMisses);
  m.setCounter("memo.evictions", stats.memoEvictions);
  m.setCounter("memo.entries", stats.memoEntries);
  m.setCounter("memo.bytes", stats.memoBytes);
  m.setCounter("graph.nodes", stats.graphNodes);
  m.setCounter("graph.edges", stats.graphEdges);
  m.setCounter("chrono.flips", stats.flips);
  m.setCounter("chrono.shrink_lits", stats.shrinkLits);
  m.setCounter("sat.db_clauses", stats.dbClausesPeak);
  m.setGauge("time.seconds", stats.seconds);
}

BigUint countDisjointCubeMinterms(const std::vector<LitVec>& cubes, int numProjectionVars) {
  BigUint total(0);
  // Generation-stamped duplicate detector: one allocation for the whole
  // call, no per-cube clearing.
  std::vector<uint32_t> seenStamp(static_cast<size_t>(numProjectionVars), 0);
  uint32_t stamp = 0;
  for (const LitVec& cube : cubes) {
    PRESAT_CHECK(cube.size() <= static_cast<size_t>(numProjectionVars));
    ++stamp;
    for (Lit l : cube) {
      PRESAT_CHECK(l.var() >= 0 && l.var() < numProjectionVars)
          << "cube literal x" << l.var() << " is outside the projected index space [0, "
          << numProjectionVars << ")";
      uint32_t& cell = seenStamp[static_cast<size_t>(l.var())];
      PRESAT_CHECK(cell != stamp) << "cube mentions x" << l.var() << " twice";
      cell = stamp;
    }
    total += BigUint::powerOfTwo(
        static_cast<uint32_t>(numProjectionVars - static_cast<int>(cube.size())));
  }
  return total;
}

namespace {

// Reference pairwise scan, also the budget-exhaustion fallback of the
// cofactor recursion (exact on any subproblem).
bool disjointQuadratic(const std::vector<LitVec>& cubes) {
  for (size_t i = 0; i < cubes.size(); ++i) {
    for (size_t j = i + 1; j < cubes.size(); ++j) {
      // Disjoint iff some variable appears with opposite polarity.
      bool clash = false;
      for (Lit a : cubes[i]) {
        for (Lit b : cubes[j]) {
          if (a.var() == b.var() && a.sign() != b.sign()) {
            clash = true;
            break;
          }
        }
        if (clash) break;
      }
      if (!clash) return false;
    }
  }
  return true;
}

// Cofactor recursion on the smallest variable present: cubes fixing it split
// into the positive and negative branch (dropping the literal), cubes not
// mentioning it go to both. Two cubes overlap iff they land in a common
// branch with no remaining clash, which eventually surfaces as an empty cube
// sharing a branch with another cube. Requires per-cube literals sorted by
// variable. `budget` caps the total cubes touched; on exhaustion the current
// subproblem falls back to the quadratic scan, so the verdict stays exact.
bool disjointByCofactor(std::vector<LitVec> cubes, uint64_t& budget) {
  for (;;) {
    if (cubes.size() <= 1) return true;
    for (const LitVec& c : cubes) {
      // An empty cube is the full space of the remaining variables: it
      // overlaps every other cube in this branch.
      if (c.empty()) return false;
    }
    if (budget < cubes.size()) return disjointQuadratic(cubes);
    budget -= cubes.size();
    Var v = cubes[0][0].var();
    for (const LitVec& c : cubes) v = std::min(v, c[0].var());
    std::vector<LitVec> pos, neg;
    pos.reserve(cubes.size());
    neg.reserve(cubes.size());
    for (LitVec& c : cubes) {
      if (c[0].var() != v) {
        pos.push_back(c);
        neg.push_back(std::move(c));
        continue;
      }
      LitVec rest(c.begin() + 1, c.end());
      if (c[0].sign()) {
        neg.push_back(std::move(rest));
      } else {
        pos.push_back(std::move(rest));
      }
    }
    if (!disjointByCofactor(std::move(pos), budget)) return false;
    cubes = std::move(neg);
  }
}

}  // namespace

bool cubesPairwiseDisjoint(const std::vector<LitVec>& cubes) {
  std::vector<LitVec> canonical = cubes;
  for (LitVec& c : canonical) {
    std::sort(c.begin(), c.end());
    for (size_t i = 0; i + 1 < c.size(); ++i) {
      PRESAT_CHECK(c[i].var() != c[i + 1].var())
          << "cube mentions x" << c[i].var() << " twice";
    }
  }
  // Generous budget: typical disjoint covers finish in O(n log n)-ish work;
  // adversarial overlap patterns degrade to exact quadratic scans on the
  // offending subproblems instead of exponential duplication.
  uint64_t budget = 1u << 20;
  budget += 64 * static_cast<uint64_t>(canonical.size());
  return disjointByCofactor(std::move(canonical), budget);
}

bool cubesPairwiseDisjointNaive(const std::vector<LitVec>& cubes) {
  return disjointQuadratic(cubes);
}

uint32_t cubesToBdd(BddManager& mgr, const std::vector<LitVec>& cubes) {
  BddRef acc = BddManager::kFalse;
  for (const LitVec& cube : cubes) acc = mgr.bddOr(acc, mgr.cube(cube));
  return acc;
}

BigUint countCubeUnionMinterms(const std::vector<LitVec>& cubes, int numProjectionVars) {
  BddManager mgr(numProjectionVars);
  BddRef u = cubesToBdd(mgr, cubes);
  return mgr.satCount(u);
}

bool cubeCoversMinterm(const LitVec& cube, uint64_t minterm) {
  for (Lit l : cube) {
    // The minterm encoding has one bit per projection variable; shifting by
    // the variable index is undefined (and reads garbage on real hardware)
    // once it reaches the word width.
    PRESAT_CHECK(l.var() >= 0 && l.var() < 64)
        << "cubeCoversMinterm: variable x" << l.var() << " outside the 64-bit minterm space";
    bool bit = (minterm >> l.var()) & 1;
    if (bit == l.sign()) return false;  // literal requires the opposite value
  }
  return true;
}

}  // namespace presat
