// Model lifting: growing one satisfying assignment into a solution cube.
//
// Two sound strategies are provided:
//  * shrinkModelToImplicant — CNF-level greedy witness selection. Valid when
//    the projection scope is the full variable set (every clause keeps a
//    witness literal, so any completion of the kept literals satisfies the
//    formula).
//  * JustificationLifter — circuit-level critical tracing. Starting from the
//    required output values, it keeps only the source assignments needed to
//    justify them (one controlling fanin suffices for a controlled gate).
//    The kept source cube forces the objectives under ANY completion, so its
//    projection onto the state variables is a valid preimage cube.
#pragma once

#include <utility>
#include <vector>

#include "base/types.hpp"
#include "circuit/netlist.hpp"
#include "cnf/cnf.hpp"

namespace presat {

// Assignment of a circuit node to a boolean value.
using NodeAssign = std::pair<NodeId, bool>;
using NodeCube = std::vector<NodeAssign>;

// Greedy prime-implicant extraction from a full model: returns a sub-cube of
// the model (literals over the CNF variables) such that every completion
// satisfies the formula. `model` must satisfy `cnf`.
LitVec shrinkModelToImplicant(const Cnf& cnf, const std::vector<lbool>& model);

// Prefix-closed implicant shrinking for chronological enumeration: given a
// full model and the decision level each variable was assigned at, returns
// the smallest B such that the model restricted to levels <= B already
// satisfies every clause (each clause has a true literal stamped <= B).
// Any completion of that restriction is a model, so the trail prefix through
// level B is an implicant. Returns 0 for an empty CNF.
int implicantPrefixLevel(const Cnf& cnf, const std::vector<lbool>& model,
                         const std::vector<int>& varLevel);

// Projected variant of implicantPrefixLevel for witness (partial) models:
// assigned non-scope literals count as level 0 — they are existential
// witnesses the emitted cube never mentions, so they never force the scope
// prefix deeper — and unassigned literals are skipped. Returns the smallest
// B such that (scope literals at levels <= B) plus (the assigned non-scope
// literals) satisfy every clause; any scope assignment extending that prefix
// then has a completion satisfying `cnf`. Never exceeds the unprojected
// prefix level for the same model. `model` must be witness-complete: every
// clause needs at least one assigned true literal.
int projectedWitnessLevel(const Cnf& cnf, const std::vector<lbool>& model,
                          const std::vector<int>& varLevel,
                          const std::vector<uint8_t>& inScope);

class JustificationLifter {
 public:
  // `objectives` are required (node, value) pairs, typically the target
  // next-state bits of a preimage query.
  JustificationLifter(const Netlist& netlist, NodeCube objectives);

  // `nodeValues` is a full consistent evaluation of the netlist (e.g. from
  // Simulator) under which every objective holds. Returns the source
  // assignments (inputs and DFF outputs) needed to justify all objectives.
  NodeCube liftedSources(const std::vector<bool>& nodeValues) const;

 private:
  const Netlist& netlist_;
  NodeCube objectives_;
};

}  // namespace presat
