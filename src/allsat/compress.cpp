#include "allsat/compress.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "allsat/projection.hpp"
#include "base/log.hpp"
#include "base/metrics.hpp"
#include "govern/governor.hpp"

namespace presat {

namespace {

void canonicalizeCube(LitVec& cube) {
  std::sort(cube.begin(), cube.end());
  for (size_t i = 0; i + 1 < cube.size(); ++i) {
    PRESAT_CHECK(cube[i].var() != cube[i + 1].var())
        << "cube mentions x" << cube[i].var() << " twice";
  }
}

// Order-dependent 64-bit combine (splitmix64 finalizer on each value folded
// into an FNV-style accumulator). Cubes are canonical (sorted), so the
// order-dependence is deterministic; collisions are handled by the exact
// comparisons below, never by trusting the hash.
uint64_t mix64(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return (h * 0x100000001b3ULL) ^ v;
}

uint64_t cubeHash(const LitVec& cube) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (Lit l : cube) h = mix64(h, static_cast<uint32_t>(l.code()));
  return h;
}

// Hash identifying (cube minus the literal at `skip`, that literal's
// variable): two alive cubes probe to the same key with opposite signs
// exactly when they are wildcard-mergeable. Hashing the codes directly
// (instead of materializing a byte-string key per probe) keeps the round
// allocation-free on the hot path.
uint64_t mergeHash(const LitVec& cube, size_t skip) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < cube.size(); ++i) {
    if (i == skip) continue;
    h = mix64(h, static_cast<uint32_t>(cube[i].code()));
  }
  h = mix64(h, (1ULL << 32) | static_cast<uint32_t>(cube[skip].var()));
  return h;
}

// Exact equality of the merge keys (a minus position p, a[p].var()) and
// (b minus position q, b[q].var()) — the collision check behind mergeHash.
bool mergeKeyEquals(const LitVec& a, size_t p, const LitVec& b, size_t q) {
  if (a.size() != b.size()) return false;
  if (a[p].var() != b[q].var()) return false;
  for (size_t i = 0, j = 0; i < a.size(); ++i, ++j) {
    if (i == p) ++i;
    if (j == q) ++j;
    if (i >= a.size()) break;
    if (a[i] != b[j]) return false;
  }
  return true;
}

// Approximate resident bytes of one round's hash table: one multimap node
// (hash key, cube index, position, bucket bookkeeping) per literal of every
// cube.
uint64_t roundTableBytes(const std::vector<LitVec>& cubes) {
  uint64_t bytes = 0;
  for (const LitVec& c : cubes) {
    bytes += c.size() * 48;
  }
  return bytes;
}

// Drops exact duplicates in place (first occurrence wins). Returns the
// number dropped.
uint64_t dropDuplicates(std::vector<LitVec>& cubes) {
  std::unordered_multimap<uint64_t, uint32_t> seen;
  seen.reserve(cubes.size() * 2);
  uint64_t dropped = 0;
  size_t out = 0;
  for (size_t i = 0; i < cubes.size(); ++i) {
    uint64_t h = cubeHash(cubes[i]);
    bool duplicate = false;
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (cubes[static_cast<size_t>(it->second)] == cubes[i]) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++dropped;
      continue;
    }
    if (out != i) cubes[out] = std::move(cubes[i]);
    seen.emplace(h, static_cast<uint32_t>(out));
    ++out;
  }
  cubes.resize(out);
  return dropped;
}

// True iff every literal of `inner` appears in `outer` (both sorted):
// `inner` then covers a superset of `outer`'s minterms.
bool cubeSubsumes(const LitVec& inner, const LitVec& outer) {
  size_t j = 0;
  for (Lit l : inner) {
    while (j < outer.size() && outer[j] < l) ++j;
    if (j == outer.size() || outer[j] != l) return false;
  }
  return true;
}

}  // namespace

void exportCompressToMetrics(const CompressStats& stats, Metrics& m) {
  m.setCounter("compress.cubes_in", stats.cubesIn);
  m.setCounter("compress.cubes_out", stats.cubesOut);
  m.setCounter("compress.merges", stats.merges);
  m.setCounter("compress.duplicates", stats.duplicates);
  m.setCounter("compress.subsumed", stats.subsumed);
  m.setCounter("compress.rounds", stats.rounds);
}

CompressStats compressCubes(std::vector<LitVec>& cubes, Governor* governor,
                            std::vector<CompressMergeRecord>* trace) {
  CompressStats stats;
  stats.cubesIn = cubes.size();
  for (LitVec& c : cubes) canonicalizeCube(c);

  MemoryLedger ledger;
  ledger.attach(governor);
  for (;;) {
    // A trip mid-compression is sound: the current cube list is an
    // equivalent cover at every round boundary.
    if (governor != nullptr && governor->poll() != Outcome::kComplete) break;
    ++stats.rounds;
    // Merging overlapping covers can recreate exact duplicates, so dedup
    // every round (a no-op for disjoint inputs, which never produce them).
    stats.duplicates += dropDuplicates(cubes);
    ledger.charge(roundTableBytes(cubes));

    // Greedy one-merge-per-cube round: each cube registers every
    // (cube - literal, variable) key; an opposite-sign partner merges and
    // both parents die for the rest of the round. Only the first cube to
    // probe a key registers it (later non-merging probes are dropped, as
    // with the map-emplace formulation this replaces); the multimap exists
    // to resolve 64-bit hash collisions by exact comparison.
    std::unordered_multimap<uint64_t, std::pair<uint32_t, uint32_t>> table;
    table.reserve(cubes.size() * 4);
    std::vector<uint8_t> dead(cubes.size(), 0);
    std::vector<LitVec> merged;
    uint64_t roundMerges = 0;
    for (size_t i = 0; i < cubes.size(); ++i) {
      for (size_t p = 0; p < cubes[i].size() && !dead[i]; ++p) {
        uint64_t h = mergeHash(cubes[i], p);
        auto range = table.equal_range(h);
        auto it = range.first;
        for (; it != range.second; ++it) {
          if (mergeKeyEquals(cubes[static_cast<size_t>(it->second.first)], it->second.second,
                             cubes[i], p)) {
            break;
          }
        }
        if (it == range.second) {
          table.emplace(h, std::make_pair(static_cast<uint32_t>(i), static_cast<uint32_t>(p)));
          continue;
        }
        auto [j, q] = it->second;
        if (dead[j] || cubes[j][q] != ~cubes[i][p]) continue;
        LitVec wide;
        wide.reserve(cubes[i].size() - 1);
        for (size_t r = 0; r < cubes[i].size(); ++r) {
          if (r != p) wide.push_back(cubes[i][r]);
        }
        dead[i] = dead[j] = 1;
        if (trace != nullptr) trace->push_back({cubes[i][p].var(), wide});
        merged.push_back(std::move(wide));
        ++roundMerges;
      }
    }
    if (roundMerges == 0) break;
    stats.merges += roundMerges;
    std::vector<LitVec> next;
    next.reserve(cubes.size() - roundMerges);
    for (size_t i = 0; i < cubes.size(); ++i) {
      if (!dead[i]) next.push_back(std::move(cubes[i]));
    }
    for (LitVec& c : merged) next.push_back(std::move(c));
    cubes = std::move(next);
  }
  stats.cubesOut = cubes.size();
  return stats;
}

CompressStats dedupCubes(std::vector<LitVec>& cubes) {
  CompressStats stats;
  stats.cubesIn = cubes.size();
  for (LitVec& c : cubes) canonicalizeCube(c);
  stats.duplicates = dropDuplicates(cubes);

  // Subsumption is quadratic, so it only runs on covers small enough for
  // that to be cheap; larger covers keep possibly-subsumed cubes (the union
  // is unaffected either way).
  constexpr size_t kMaxSubsumptionCubes = 4096;
  if (cubes.size() <= kMaxSubsumptionCubes) {
    // Wider cubes (fewer literals) first: a cube can only be subsumed by a
    // strictly-or-equally wider one already kept.
    std::stable_sort(cubes.begin(), cubes.end(), [](const LitVec& a, const LitVec& b) {
      return a.size() < b.size();
    });
    std::vector<LitVec> kept;
    kept.reserve(cubes.size());
    for (LitVec& c : cubes) {
      bool covered = false;
      for (const LitVec& k : kept) {
        if (cubeSubsumes(k, c)) {
          covered = true;
          break;
        }
      }
      if (covered) {
        ++stats.subsumed;
      } else {
        kept.push_back(std::move(c));
      }
    }
    cubes = std::move(kept);
  }
  stats.cubesOut = cubes.size();
  return stats;
}

void applyProjectionPostpass(AllSatResult& result, const AllSatOptions& options,
                             bool disjointCubes) {
  if (!options.project && !options.compress) return;
  CompressStats total;
  total.cubesIn = result.cubes.size();
  if (options.project && !disjointCubes) {
    CompressStats d = dedupCubes(result.cubes);
    total.duplicates += d.duplicates;
    total.subsumed += d.subsumed;
  }
  if (options.compress) {
    CompressStats c = compressCubes(result.cubes, options.governor, options.compressTrace);
    total.merges += c.merges;
    total.duplicates += c.duplicates;
    total.rounds += c.rounds;
  }
  total.cubesOut = result.cubes.size();
  if (options.project) {
    result.metrics.setCounter("proj.cubes", result.cubes.size());
  }
  if (options.compress) {
    exportCompressToMetrics(total, result.metrics);
  }
}

}  // namespace presat
