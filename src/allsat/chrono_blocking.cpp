#include "allsat/chrono_blocking.hpp"

#include <algorithm>

#include "allsat/compress.hpp"
#include "allsat/lifting.hpp"
#include "allsat/preprocess_adapter.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "check/audit_chrono.hpp"
#include "check/audit_solver.hpp"
#include "sat/solver.hpp"

namespace presat {

AllSatResult chronoAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                          const AllSatOptions& options) {
  if (options.preprocess) {
    return runWithPreprocess(cnf, projection, /*lifter=*/{}, options,
                             [](const Cnf& c, const std::vector<Var>& p, const ModelLifter&,
                                const AllSatOptions& o) { return chronoAllSat(c, p, o); });
  }
  Timer timer;
  AllSatResult result;
  Governor* governor = options.governor;
  Solver solver;
  solver.setConflictBudget(options.conflictBudget);
  solver.setGovernor(governor);
  solver.setProofLog(options.proofLog);
  if (options.randomSeed != 0) solver.setRandomSeed(options.randomSeed);
  bool consistent = solver.addCnf(cnf);

  std::vector<int> varLevel(static_cast<size_t>(cnf.numVars()), 0);
  std::vector<uint8_t> inScope;
  if (options.project) {
    inScope.assign(static_cast<size_t>(cnf.numVars()), 0);
    for (Var v : projection) inScope[static_cast<size_t>(v)] = 1;
  }
  if (consistent) {
    solver.beginEnumeration(projection, /*projectedWitness=*/options.project);
    for (;;) {
      lbool status = solver.enumerateNextModel();
      ++result.stats.satCalls;
      if (status.isUndef()) {
        // Budget exhausted mid-call (per-call conflict budget or a governor
        // trip): the disjoint cubes found so far are a valid partial
        // answer, so return them instead of aborting.
        result.outcome = (governor != nullptr && governor->tripped())
                             ? governor->reason()
                             : Outcome::kConflicts;
        break;
      }
      if (status.isFalse()) break;
      // The cap is checked after the solve so that exact exhaustion at
      // maxCubes still reports complete: this model proves at least one
      // uncovered solution remains.
      if (options.maxCubes != 0 && result.cubes.size() >= options.maxCubes) {
        result.outcome = Outcome::kCubeCap;
        break;
      }

      // Emission level: the implicant-shrinking pass finds the shallowest
      // prefix that already satisfies every clause, but the cube may never
      // be wider than the deepest flipped level (disjointness with earlier
      // cubes) nor than the scope prefix (soundness: freeing a scope
      // variable decided below a kept non-scope level would discard the
      // sibling models of that non-scope decision).
      int k = solver.scopePrefixLength();
      int bImplicant = solver.currentDecisionLevel();
      if (options.chronoShrink) {
        for (Var v = 0; v < cnf.numVars(); ++v) {
          varLevel[static_cast<size_t>(v)] = solver.levelOf(v);
        }
        // Projected mode works on partial witness models: assigned non-scope
        // literals are existential witnesses counted at level 0, so the
        // projected level never exceeds the unprojected one — cubes can only
        // widen.
        bImplicant = options.project
                         ? projectedWitnessLevel(cnf, solver.model(), varLevel, inScope)
                         : implicantPrefixLevel(cnf, solver.model(), varLevel);
      }
      int bEmit = std::min(std::max(bImplicant, solver.deepestFlippedLevel()), k);

      // The cube is ALL scope literals stamped at levels <= bEmit —
      // decisions and implied literals alike; dropping an implied one would
      // overcount.
      LitVec projectedCube;
      for (size_t i = 0; i < projection.size(); ++i) {
        if (solver.levelOf(projection[i]) > bEmit) continue;
        bool value = solver.modelValue(projection[i]);
        projectedCube.push_back(mkLit(static_cast<Var>(i), !value));
      }
      result.stats.shrinkLits += projection.size() - projectedCube.size();
      result.cubes.push_back(std::move(projectedCube));

      if (!solver.flipToNextRegion(bEmit)) break;
    }
    solver.endEnumeration();
  }

  // Wildcard compression preserves both the union and disjointness, so it
  // runs before the count and the count stays the plain power-of-two sum.
  applyProjectionPostpass(result, options, /*disjointCubes=*/true);

  // Disjoint by construction, so the plain power-of-two sum is exact.
  result.mintermCount =
      countDisjointCubeMinterms(result.cubes, static_cast<int>(projection.size()));
  result.stats.conflicts = solver.stats().conflicts;
  result.stats.decisions = solver.stats().decisions;
  result.stats.propagations = solver.stats().propagations;
  result.stats.restarts = solver.stats().restarts;
  result.stats.reduceDBs = solver.stats().reduceDBs;
  result.stats.deletedClauses = solver.stats().deletedClauses;
  result.stats.flips = solver.stats().flips;
  result.stats.dbClausesPeak = solver.stats().dbClausesPeak;
  result.stats.seconds = timer.seconds();
  result.metrics.setLabel("engine", "chrono");
  exportStatsToMetrics(result.stats, result.metrics);
  finishResult(result, governor);
  // The session is closed (level 0), so the structural solver audit applies;
  // the cube-set audit proves disjointness, and BDD-exact coverage when the
  // run completed (a budgeted partial set is audited for soundness only).
  ChronoAuditOptions auditOptions;
  if (options.project) auditOptions.diagPrefix = "proj";
  static_cast<void>(auditOptions);
  PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(auditSolver(solver)));
  PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(
      auditChronoCubes(cnf, projection, result.cubes, result.complete, auditOptions)));
  return result;
}

}  // namespace presat
