#include "allsat/cube_blocking.hpp"

#include "allsat/compress.hpp"
#include "allsat/preprocess_adapter.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "check/audit_solver.hpp"
#include "sat/solver.hpp"

namespace presat {

AllSatResult cubeBlockingAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                                const ModelLifter& lifter, const AllSatOptions& options) {
  if (options.preprocess) {
    return runWithPreprocess(cnf, projection, lifter, options,
                             [](const Cnf& c, const std::vector<Var>& p, const ModelLifter& l,
                                const AllSatOptions& o) { return cubeBlockingAllSat(c, p, l, o); });
  }
  Timer timer;
  AllSatResult result;

  // Original variable -> projected index, for translating cubes.
  std::vector<int> projectedIndex(static_cast<size_t>(cnf.numVars()), -1);
  for (size_t i = 0; i < projection.size(); ++i) {
    projectedIndex[static_cast<size_t>(projection[i])] = static_cast<int>(i);
  }

  Governor* governor = options.governor;
  Solver solver;
  solver.setConflictBudget(options.conflictBudget);
  solver.setGovernor(governor);
  solver.setProofLog(options.proofLog);
  if (options.randomSeed != 0) solver.setRandomSeed(options.randomSeed);
  bool consistent = solver.addCnf(cnf);
  bool maybeOverlapping = false;

  while (consistent) {
    if (governor != nullptr && governor->poll() != Outcome::kComplete) {
      result.outcome = governor->reason();
      break;
    }
    lbool status = solver.solve();
    ++result.stats.satCalls;
    if (status.isUndef()) {
      // Budget exhausted mid-call (per-call conflict budget or a governor
      // trip): the cubes found so far are a valid partial answer, so return
      // them instead of aborting.
      result.outcome = (governor != nullptr && governor->tripped()) ? governor->reason()
                                                                    : Outcome::kConflicts;
      break;
    }
    if (status.isFalse()) break;
    // The cap is checked after the solve so that exact exhaustion at
    // maxCubes still reports complete: this SAT call proves at least one
    // uncovered solution remains.
    if (options.maxCubes != 0 && result.cubes.size() >= options.maxCubes) {
      result.outcome = Outcome::kCubeCap;
      break;
    }

    LitVec cube;
    if (options.liftModels && lifter) {
      cube = lifter(solver.model());
      for (Lit l : cube) {
        PRESAT_CHECK(projectedIndex[static_cast<size_t>(l.var())] >= 0)
            << "lifter returned a literal outside the projection scope";
        PRESAT_CHECK(solver.modelValue(l)) << "lifter returned a literal contradicting the model";
      }
      if (cube.size() < projection.size()) maybeOverlapping = true;
    } else {
      cube.reserve(projection.size());
      for (Var v : projection) cube.push_back(mkLit(v, !solver.modelValue(v)));
    }

    LitVec blocking;
    LitVec projectedCube;
    blocking.reserve(cube.size());
    projectedCube.reserve(cube.size());
    for (Lit l : cube) {
      blocking.push_back(~l);
      projectedCube.push_back(
          mkLit(static_cast<Var>(projectedIndex[static_cast<size_t>(l.var())]), l.sign()));
    }
    result.cubes.push_back(std::move(projectedCube));
    result.stats.blockingClauses += 1;
    result.stats.blockingLiterals += blocking.size();

    consistent = solver.addClause(blocking);
    // Each blocking clause mutates the watch/trail structures the next solve
    // depends on — at full audit depth, re-validate the solver every round.
    PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(auditSolver(solver)));
  }

  // Project-then-dedup / compress epilogue: lifted covers may carry
  // duplicate or subsumed cubes, so they take the overlapping cleanup path;
  // the unlifted cover is disjoint and only ever compressed. The union is
  // unchanged either way, so the counting below is unaffected.
  applyProjectionPostpass(result, options, /*disjointCubes=*/!maybeOverlapping);

  // Lifted cubes from successive iterations can overlap earlier cubes, so the
  // exact union count goes through a BDD; the disjoint case short-circuits.
  if (maybeOverlapping) {
    result.mintermCount =
        countCubeUnionMinterms(result.cubes, static_cast<int>(projection.size()));
  } else {
    result.mintermCount =
        countDisjointCubeMinterms(result.cubes, static_cast<int>(projection.size()));
  }
  result.stats.conflicts = solver.stats().conflicts;
  result.stats.decisions = solver.stats().decisions;
  result.stats.propagations = solver.stats().propagations;
  result.stats.restarts = solver.stats().restarts;
  result.stats.reduceDBs = solver.stats().reduceDBs;
  result.stats.deletedClauses = solver.stats().deletedClauses;
  result.stats.dbClausesPeak = solver.stats().dbClausesPeak;
  result.stats.seconds = timer.seconds();
  result.metrics.setLabel("engine", "cube-blocking");
  exportStatsToMetrics(result.stats, result.metrics);
  finishResult(result, governor);
  return result;
}

}  // namespace presat
