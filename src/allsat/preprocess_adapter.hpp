// Preprocess-then-enumerate adapter shared by the CNF all-SAT engines.
//
// Runs cnf/preprocess.hpp over the formula with the projection scope frozen,
// hands the reduced CNF (and elementwise-translated projection) to the
// wrapped engine, and translates the model lifter across the variable spaces
// so callers keep the original-numbering contract. Because the remap is
// monotone and the projection vector is translated index-by-index, the
// engine's emitted cubes — which live in the projected INDEX space — need no
// translation at all.
#pragma once

#include <functional>

#include "allsat/cube_blocking.hpp"
#include "allsat/projection.hpp"
#include "cnf/cnf.hpp"

namespace presat {

// The wrapped engine: invoked with the internal CNF, the translated
// projection, the translated lifter (empty stays empty), and the caller's
// options with `preprocess` cleared.
using AllSatRunner = std::function<AllSatResult(
    const Cnf&, const std::vector<Var>&, const ModelLifter&, const AllSatOptions&)>;

AllSatResult runWithPreprocess(const Cnf& cnf, const std::vector<Var>& projection,
                               const ModelLifter& lifter, const AllSatOptions& options,
                               const AllSatRunner& run);

}  // namespace presat
