// Compact DAG storage of an all-solutions enumeration — the paper's
// alternative to a blocking-clause list.
//
// The graph mirrors the shape of the success-driven search: each internal
// node is a binary decision; each branch records the projection literals that
// became newly assigned on that branch (the decision itself if it hit a
// projection source, plus implied source assignments) and points to a child
// subgraph, the SUCCESS terminal, or the FAIL terminal. A root-to-SUCCESS
// path concatenates its branch literals into one solution cube. Memoized
// (success-driven-learned) subsearches appear as shared children, which is
// exactly where the exponential compression over an explicit cube list comes
// from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/biguint.hpp"
#include "base/dyadic.hpp"
#include "base/types.hpp"

namespace presat {

class BddManager;

class SolutionGraph {
 public:
  // Child slot values: >= 0 index into nodes(), or one of the terminals.
  static constexpr int kSuccess = -1;
  static constexpr int kFail = -2;

  struct Branch {
    int child = kFail;
    // Projection literals (projected index space) newly fixed on this branch.
    LitVec newLits;
  };

  struct Node {
    // The circuit node / variable the search branched on (diagnostics only).
    uint32_t decisionId = 0;
    Branch branch[2];
  };

  int addNode(const Node& node) {
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  // The root is itself a branch: literals implied before the first decision
  // lead to the top decision node (or directly to a terminal).
  void setRoot(int child, LitVec impliedLits) {
    root_.child = child;
    root_.newLits = std::move(impliedLits);
  }
  const Branch& root() const { return root_; }

  size_t numNodes() const { return nodes_.size(); }
  const Node& node(int index) const { return nodes_[static_cast<size_t>(index)]; }
  // Branches that do not lead to kFail.
  size_t numLiveEdges() const;
  // Total literals stored on live branches (the memory-footprint metric
  // compared against blocking-clause literals).
  size_t numStoredLiterals() const;

  // Number of root-to-SUCCESS paths. Paths, not distinct cubes: two paths may
  // carry the same cube (DAG-linear dynamic program, never enumerates).
  BigUint countPaths() const;

  // Sum over paths of 2^-(#literals on path). Multiplied by 2^|projection|
  // this is the multiplicity-weighted minterm measure — an upper bound on the
  // true union count, exact when no two paths overlap.
  Dyadic pathMeasure() const;

  // Explicit solution cubes, one per root-to-SUCCESS path (0 = no limit).
  std::vector<LitVec> enumerateCubes(uint64_t limit = 0) const;

  // Union of all path cubes as a BDD over the projected index space — the
  // exact semantics of the graph, used for counting and cross-engine checks.
  uint32_t toBdd(BddManager& mgr) const;

  std::string toDot() const;

 private:
  Branch root_;
  std::vector<Node> nodes_;
};

}  // namespace presat
