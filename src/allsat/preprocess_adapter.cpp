#include "allsat/preprocess_adapter.hpp"

#include "cnf/preprocess.hpp"

namespace presat {

AllSatResult runWithPreprocess(const Cnf& cnf, const std::vector<Var>& projection,
                               const ModelLifter& lifter, const AllSatOptions& options,
                               const AllSatRunner& run) {
  PreprocessedCnf pre = preprocessCnf(cnf, projection, options.governor);

  // Projection vars are frozen, so every one of them is mapped; translating
  // elementwise keeps index i of the projected cube space pointing at the
  // same variable.
  std::vector<Var> internalProjection;
  internalProjection.reserve(projection.size());
  for (Var v : projection) internalProjection.push_back(pre.internalVar(v));

  // The caller's lifter speaks original numbering: feed it the lifted model
  // and translate its cube back (lifter-contract literals are projection
  // vars, which are frozen, so internalLit always succeeds).
  ModelLifter wrappedLifter;
  if (lifter) {
    wrappedLifter = [&pre, &lifter](const std::vector<lbool>& internalModel) {
      LitVec cube = lifter(pre.originalModel(internalModel));
      for (Lit& l : cube) l = pre.internalLit(l);
      return cube;
    };
  }

  AllSatOptions inner = options;
  inner.preprocess = false;
  // A proof logged against the preprocessed CNF would speak remapped clause
  // numbering the caller's formula does not contain; certificate emitters
  // run their own replay against the original CNF instead.
  inner.proofLog = nullptr;
  AllSatResult result = run(pre.cnf, internalProjection, wrappedLifter, inner);

  exportPreprocessMetrics(pre.stats, result.metrics);
  return result;
}

}  // namespace presat
