// Shared vocabulary of the all-solutions engines.
//
// Every engine answers the same question: given a satisfiable formula (as CNF
// or as a circuit with output objectives) and a *projection scope*, enumerate
// the projection of the solution set. Results are normalized to the
// *projected index space*: literal variable i in a result cube refers to
// projection[i], not to the underlying CNF variable or circuit node. This
// makes results from different engines directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "base/biguint.hpp"
#include "base/metrics.hpp"
#include "base/types.hpp"
#include "cnf/cnf.hpp"
#include "govern/budget.hpp"
#include "parallel/options.hpp"

namespace presat {

class BddManager;
class Governor;
class ProofLog;

// One wildcard merge applied by compressCubes: parents (A & x) and (A & ~x)
// collapsed into `merged` = A by eliminating `mergeVar`. The trace is the
// certificate's compression witness — a checker can replay each record and
// confirm the rewrite preserved the cover's union.
struct CompressMergeRecord {
  Var mergeVar = 0;
  LitVec merged;  // projected index space, sorted by variable
};

struct AllSatStats {
  uint64_t satCalls = 0;          // top-level solver invocations
  uint64_t conflicts = 0;         // CDCL conflicts (blocking engines)
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;          // CDCL restarts (blocking engines)
  uint64_t reduceDBs = 0;         // learnt-DB reductions (blocking engines)
  uint64_t deletedClauses = 0;    // learnt clauses deleted by reduceDB
  uint64_t blockingClauses = 0;   // clauses added to block found solutions
  uint64_t blockingLiterals = 0;  // total literals across blocking clauses
  uint64_t memoHits = 0;          // success-driven learning cache hits
  uint64_t memoMisses = 0;        // subproblems solved for the first time
  uint64_t memoEvictions = 0;     // entries dropped by the table bound
  uint64_t memoEntries = 0;
  uint64_t memoBytes = 0;         // approximate resident size of the memo
  uint64_t graphNodes = 0;        // solution graph size
  uint64_t graphEdges = 0;
  uint64_t flips = 0;             // chrono engine: pseudo-decision flips
  uint64_t shrinkLits = 0;        // chrono engine: literals dropped by shrinking
  uint64_t dbClausesPeak = 0;     // peak stored clause count (orig + learnt)
  double seconds = 0.0;
};

// Serializes the shared stats block into `m` under the canonical counter
// names used by presat_cli --stats json and the BENCH_*.json files.
void exportStatsToMetrics(const AllSatStats& stats, Metrics& m);

struct AllSatResult;

// Engine epilogue for the governance contract: derives `complete` from
// `result.outcome`, stamps the "outcome" metrics label, and — when a
// governor was attached — appends its govern.* block.
void finishResult(AllSatResult& result, const Governor* governor);

struct AllSatResult {
  // True iff enumeration ran to completion (false when a solution/time cap
  // stopped it early — counts are then lower bounds). Always equals
  // (outcome == Outcome::kComplete); kept for ergonomic call sites.
  bool complete = true;
  // Structured stop reason (govern/budget.hpp). Anything other than
  // kComplete marks a sound partial result: every cube still contains only
  // genuine solutions, mintermCount is a lower bound, and per-engine
  // disjointness guarantees continue to hold.
  Outcome outcome = Outcome::kComplete;
  // Cubes in the projected index space whose UNION is the projected solution
  // set. Minterm-level engines produce pairwise-disjoint cubes; lifted-cube
  // and success-driven engines may produce overlapping cubes (the union is
  // still exact), which is why mintermCount is computed via BDD there.
  std::vector<LitVec> cubes;
  // Exact number of projected minterms in the union of `cubes`.
  BigUint mintermCount;
  // Parallel runs only: the disjoint guiding cubes (projected index space)
  // the space was split into. Shard covers live inside their guide cube, so
  // the guides are the certificate's cross-shard disjointness argument.
  // Empty for serial runs.
  std::vector<LitVec> guides;
  AllSatStats stats;
  // Uniform observability export (counters/gauges/histograms) — see
  // base/metrics.hpp for the JSON schema.
  Metrics metrics;
};

// Which unjustified gate the success-driven engine branches on next.
// Deterministic either way (required for learning soundness); topologically
// lowest (closest to the sources) is the default.
enum class BranchOrder {
  kLowestGateFirst,
  kHighestGateFirst,
};

struct AllSatOptions {
  uint64_t maxCubes = 0;  // 0 = unlimited
  // CNF engines (minterm/cube/chrono, serial and parallel): run the one-shot
  // preprocessing pass (cnf/preprocess.hpp — pure-literal + subsumption
  // elimination + dense remapping, projection vars frozen) before
  // enumeration, translating models/cubes back so results keep the projected
  // index space unchanged. Callers that preprocess upstream (the preimage
  // layer's shared TransitionEncoding, parallel shard dispatch) clear this to
  // avoid a redundant second pass.
  bool preprocess = true;
  // Blocking engines: lift models to cubes before blocking.
  bool liftModels = true;
  // CDCL engines (minterm/cube blocking AND chrono): per-SAT-call conflict
  // budget (0 = none). When a call exhausts its budget, the engine returns
  // the cubes found so far — still pairwise disjoint for the minterm and
  // chrono engines — with complete = false / outcome = kConflicts instead
  // of aborting. For a budget on the WHOLE query (all calls, all shards,
  // every engine including success-driven) use Budget::conflictLimit via
  // `governor` below.
  uint64_t conflictBudget = 0;
  // Success-driven engine: enable the learning cache (ablation knob).
  bool successLearning = true;
  // Success-driven engine: bound on learned-subproblem memo entries
  // (0 = unbounded). When the table fills, entries not touched since the
  // previous sweep are evicted (generational second-chance); evicted
  // subproblems are simply re-solved, so results stay exact.
  size_t maxMemoEntries = 1u << 20;
  // Success-driven engine: cross-check every hashed memo probe against the
  // exact subproblem key. Catches 128-bit signature collisions; costs the
  // old O(cone log cone) key build per probe, so debug/test use only.
  bool memoCheckExact = false;
  // Success-driven engine: frontier-gate selection policy.
  BranchOrder branchOrder = BranchOrder::kLowestGateFirst;
  // Chronological engine: widen each emitted cube with the prefix-closed
  // implicant shrinking pass before flipping (ablation knob; off emits the
  // full scope prefix of every model).
  bool chronoShrink = true;
  // Projection as a first-class enumeration mode instead of a post-pass.
  // Chrono runs projected-native: enumerateNextModel() stops as soon as the
  // scope prefix plus the already-implied input/aux literals satisfy every
  // clause (an existential witness), and cube shrinking treats witness
  // literals as free — so cubes widen, `pre.cubes` shrinks, and the
  // input/aux space is never exhaustively decided. The blocking and
  // success-driven engines project-then-dedup (canonical sort, duplicate and
  // subsumed cube removal) so the cross-engine audit still compares equal
  // state sets. The projected union is identical either way.
  bool project = false;
  // Wildcard compression post-pass (Wild-style (x & A) | (~x & A) = A
  // merging) over the final cube set — and over each parallel shard's cover
  // before the merge, so shards exchange compressed covers. Union- and
  // disjointness-preserving; mintermCount is unaffected.
  bool compress = false;
  // Blocking engines: CDCL decision seed (Solver::setRandomSeed). 0 keeps the
  // solver's built-in default. Results are independent of the seed; it exists
  // for reproducible diversification runs (benches, fuzzing).
  uint64_t randomSeed = 0;
  // Cube-and-conquer parallel enumeration (src/parallel/). jobs == 0 keeps
  // the serial engines; jobs >= 1 partitions the projected space into
  // disjoint guiding cubes and solves them on a worker pool. The result is
  // bit-identical for every jobs >= 1 (see parallel/options.hpp).
  ParallelOptions parallel;
  // Resource governor enforcing a Budget (deadline / memory ceiling /
  // global conflict cap / cancellation) over the whole query. Not owned;
  // null = ungoverned (the default — hot paths stay unchanged). Shared
  // across parallel shards: one trip stops every worker cooperatively.
  Governor* governor = nullptr;
  // DRAT-style proof log for the CNF engines' solver runs (sat/proof.hpp).
  // Not owned; null = off (the default — solver hot paths stay branch-only).
  // Serial engines only: the parallel dispatcher and the preprocessing
  // adapter clear it for their inner runs (a shard/remapped proof would
  // speak the wrong clause set), and certificate emitters replay those runs
  // post-hoc instead (cert/certificate.hpp).
  ProofLog* proofLog = nullptr;
  // When non-null, compressCubes appends one CompressMergeRecord per wildcard
  // merge it applies (the certificate's `w` witness lines). Not owned; serial
  // paths only — parallel shard compression never traces (shards would race
  // on the shared vector).
  std::vector<CompressMergeRecord>* compressTrace = nullptr;
};

// Sum of 2^(numProjectionVars - |cube|) over all cubes. Exact for disjoint
// cube sets (which every engine in this library produces). Checks every
// literal's variable against the projected index space and rejects cubes
// mentioning a variable twice — an out-of-range or duplicated literal would
// silently corrupt the count.
BigUint countDisjointCubeMinterms(const std::vector<LitVec>& cubes, int numProjectionVars);

// True if no two cubes share a projected minterm. Cofactor divide-and-
// conquer: near-linear on the disjoint covers the engines emit, with a
// work-budgeted fallback to the quadratic scan so pathological inputs stay
// exact. Cubes must be well-formed (no variable mentioned twice).
bool cubesPairwiseDisjoint(const std::vector<LitVec>& cubes);

// The original O(n^2 k^2) pairwise scan, kept as the reference oracle for
// the fuzz test asserting verdict equality with cubesPairwiseDisjoint.
bool cubesPairwiseDisjointNaive(const std::vector<LitVec>& cubes);

// OR of all cubes as a BDD over variables 0..numProjectionVars-1 of `mgr`.
// The canonical way to compare two engines' answers for semantic equality.
uint32_t cubesToBdd(BddManager& mgr, const std::vector<LitVec>& cubes);

// Exact minterm count of the UNION of (possibly overlapping) cubes, computed
// through a scratch BDD.
BigUint countCubeUnionMinterms(const std::vector<LitVec>& cubes, int numProjectionVars);

// True if `cube` (projected index space) covers `minterm` (bit i = value of
// projection var i).
bool cubeCoversMinterm(const LitVec& cube, uint64_t minterm);

}  // namespace presat
