// Cube-level blocking-clause all-SAT: the stronger classical baseline.
//
// After each model, a lifting callback grows the model into a solution cube
// over the projection scope; the whole cube is blocked at once. With a good
// lifter this cuts the number of solver calls from #minterms to roughly
// #cubes, but the clause database still grows with every solution and each
// solution is still re-derived by a full CDCL search.
#pragma once

#include <functional>

#include "allsat/projection.hpp"
#include "cnf/cnf.hpp"

namespace presat {

// Maps a full model of the CNF to a solution cube over the ORIGINAL formula
// variables. Contract: every literal's variable is in the projection scope,
// the literal agrees with the model, and every projected assignment covered
// by the returned cube is extendable to a model (that is what makes blocking
// the whole cube sound). An empty callback means "no lifting" (full projected
// minterm).
using ModelLifter = std::function<LitVec(const std::vector<lbool>& model)>;

AllSatResult cubeBlockingAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                                const ModelLifter& lifter, const AllSatOptions& options = {});

}  // namespace presat
