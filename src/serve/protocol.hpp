// presat_serve wire protocol: newline-delimited JSON, one request or
// response per line.
//
// Grammar (see DESIGN.md "Service layer" for the full field tables):
//
//   request   := { "id": string, "op": op, ...op-fields }
//   op        := "preimage" | "ping" | "version" | "stats" | "cancel"
//              | "shutdown"
//   response  := { "id": string, "status": "ok" | "error", ... }
//
// The parser is hardened against hostile clients the way the .bench reader
// is hardened against malformed files: every limit violation or grammar
// error produces a structured error carrying the 1-based line number of the
// offending request within the connection stream — the connection stays up.
// Limits: a request line is at most kMaxLineBytes bytes, a JSON document at
// most kMaxFields fields/elements and kMaxDepth nesting levels. Unknown
// request fields are rejected (bad_request), so client typos fail loudly
// instead of silently running with defaults.
//
// The library layer never touches global streams (repo rule iostream-in-src);
// transports hand completed lines in and take serialized lines out.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace presat::serve {

// --- hardening limits -------------------------------------------------------

inline constexpr size_t kMaxLineBytes = 1u << 20;  // 1 MiB per request line
inline constexpr size_t kMaxFields = 64;           // fields + array elements
inline constexpr int kMaxDepth = 8;                // nesting levels

// --- generic JSON value -----------------------------------------------------

// Minimal JSON document: enough for the flat request objects plus inline
// .bench payload strings. Object field order is preserved (deterministic
// error messages), duplicate keys are a parse error.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // string payload
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const;
};

// Parses one complete JSON document from `line` (trailing whitespace
// allowed, trailing garbage rejected). On failure returns false and fills
// `error` with a human-readable reason; enforcement of kMaxFields/kMaxDepth
// happens here.
bool parseJson(const std::string& line, JsonValue& out, std::string& error);

// JSON string escaping for the writer side (control chars, quote,
// backslash; UTF-8 passes through untouched).
std::string jsonEscape(const std::string& s);

// Incremental one-line JSON object writer. Values are appended in call
// order; the result is a compact single-line document (the NDJSON framing
// requirement). No nesting helper beyond raw() — responses are flat except
// for cube arrays and the error object, both built via raw().
class JsonObjectWriter {
 public:
  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void fieldRaw(const std::string& key, const std::string& rawJson);
  void field(const std::string& key, uint64_t value);
  void field(const std::string& key, int value);
  void field(const std::string& key, double value);
  void field(const std::string& key, bool value);
  std::string str() const { return body_.empty() ? "{}" : "{" + body_ + "}"; }

 private:
  void key(const std::string& k);
  std::string body_;
};

// --- requests ---------------------------------------------------------------

// Structured protocol error. `line` is the 1-based request line number in
// the connection stream (0 when not yet known, e.g. transport-level
// failures before the first line).
struct ServeError {
  std::string code;     // "parse" | "bad_request" | "overloaded" | "internal"
  std::string message;  // human-readable detail
  int line = 0;

  bool ok() const { return code.empty(); }
};

enum class ServeOp {
  kPreimage,  // circuit + target cube + method + budgets -> cover
  kPing,      // liveness probe, answered inline
  kVersion,   // build-info JSON (the handshake banner payload)
  kStats,     // serve.* metrics snapshot
  kCancel,    // cancel an in-flight request by id
  kShutdown,  // drain and exit
};

const char* serveOpName(ServeOp op);

// One parsed request. Engine fields mirror the presat_cli flags; budget
// fields are per-request and combine with the server's caps (the smaller
// wins).
struct ServeRequest {
  std::string id;  // client-chosen, echoed on the response; must be nonempty
  ServeOp op = ServeOp::kPing;

  // preimage: circuit source — exactly one of gen / bench.
  std::string gen;    // generator spec, e.g. "counter:4"
  std::string bench;  // inline .bench text (newlines escaped in JSON)
  std::string target;    // target cube over the state bits, e.g. "1xxx"
  std::string method = "success-driven";
  bool project = false;
  bool compress = false;
  bool cert = false;    // emit a presat-cert-v1 certificate with the cover
  bool cache = true;    // opt out of the cross-query cache (oracle runs)
  int jobs = 1;         // per-request cube-and-conquer width (server-capped)
  uint64_t maxCubes = 0;
  uint64_t timeoutMs = 0;
  uint64_t memLimitMb = 0;
  uint64_t conflictLimit = 0;
  // Fairness class: "interactive" | "batch" | "" (derive from the budget).
  std::string budgetClass;

  // cancel: id of the request to cancel.
  std::string targetId;
};

// Parses one request line. Returns false and fills `error` (with `lineNo`
// stamped) on any grammar/limit/unknown-field violation.
bool parseRequest(const std::string& line, int lineNo, ServeRequest& out, ServeError& error);

// Serializes the structured-error response line (status "error"). `id` may
// be empty when the request id never parsed.
std::string errorResponse(const std::string& id, const ServeError& error);

}  // namespace presat::serve
