// Admission control and fairness for the serve layer.
//
// The ServicePool's own queue is FIFO-dumb on purpose; this scheduler is
// where policy lives. Admitted jobs go into one of two class queues —
// interactive (small budgets, a human or a latency-sensitive caller is
// waiting) and batch (soak queries, unbounded budgets) — and workers drain
// them ROUND-ROBIN BETWEEN CLASSES, so a burst of hour-long soak requests
// can delay a small interactive query by at most one dequeue turn, never
// starve it. Within a class, FIFO.
//
// Admission is bounded: once the total queued depth reaches the configured
// cap, admit() refuses and the server answers with a structured
// "overloaded" error (backpressure the client can see and retry on), rather
// than buffering unboundedly and falling over later.
//
// Mechanically, every admitted job submits one generic pump() closure to
// the pool; the pump decides *at dequeue time* which class to serve. The
// one-pump-per-job invariant keeps pool and scheduler counts aligned with
// no idle-worker bookkeeping.
#pragma once

#include <deque>
#include <functional>

#include "base/metrics.hpp"
#include "base/sync.hpp"
#include "base/thread_annotations.hpp"
#include "base/timer.hpp"
#include "parallel/worker_pool.hpp"

namespace presat::serve {

class Scheduler {
 public:
  // `pool` must outlive the scheduler and be started by the caller.
  Scheduler(ServicePool& pool, size_t maxQueueDepth);

  // Queues `job` in the given class. Returns false — without queueing —
  // when the queue is at capacity or the pool is stopping.
  bool admit(bool interactive, std::function<void()> job);

  size_t queued() const;
  void exportMetrics(Metrics& m) const;

 private:
  struct Item {
    uint64_t seq = 0;  // admission ticket, for exact rollback on a failed submit
    std::function<void()> job;
    Timer waited;  // queue residency, admit -> dequeue
  };

  void pump();
  bool takeNext(Item* out);

  // presat-analyze: lockfree(internally synchronized; see worker_pool.hpp)
  ServicePool& pool_;
  const size_t maxQueueDepth_;  // presat-analyze: lockfree(immutable after construction)
  mutable Mutex mu_;
  std::deque<Item> interactive_ GUARDED_BY(mu_);
  std::deque<Item> batch_ GUARDED_BY(mu_);
  // Round-robin pointer: the class served by the LAST dequeue; the next
  // dequeue prefers the other class when it has work.
  bool lastServedInteractive_ GUARDED_BY(mu_) = false;
  uint64_t nextSeq_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t rejectedOverload_ GUARDED_BY(mu_) = 0;
  Histogram queueDepth_ GUARDED_BY(mu_);   // depth observed at each admit
  Histogram queueWaitUs_ GUARDED_BY(mu_);  // per-job queue residency, microseconds
};

}  // namespace presat::serve
