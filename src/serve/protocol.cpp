#include "serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace presat::serve {

namespace {

// Recursive-descent JSON parser over one line. Tracks a shared field budget
// (objects + arrays combined) and the nesting depth, so a hostile request
// cannot balloon the in-memory document past the protocol limits.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string& error) : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    if (!parseValue(out, 0)) return false;
    skipSpace();
    if (pos_ != text_.size()) return fail("trailing garbage after JSON document");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    error_ = why + " (byte " + std::to_string(pos_) + ")";
    return false;
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool chargeField() {
    if (++fields_ > kMaxFields) {
      return fail("too many fields (limit " + std::to_string(kMaxFields) + ")");
    }
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep (limit " + std::to_string(kMaxDepth) + ")");
    skipSpace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parseString(out.text);
    }
    if (c == 't' || c == 'f') return parseKeyword(out, c == 't');
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return fail("bad keyword");
      pos_ += 4;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return parseNumber(out);
  }

  bool parseKeyword(JsonValue& out, bool value) {
    const char* word = value ? "true" : "false";
    size_t len = value ? 4 : 5;
    if (text_.compare(pos_, len, word) != 0) return fail("bad keyword");
    pos_ += len;
    out.kind = JsonValue::Kind::kBool;
    out.boolean = value;
    return true;
  }

  bool parseNumber(JsonValue& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) {
      pos_ = start;
      return fail("expected a value");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.text = text_.substr(start, pos_ - start);
    out.number = std::strtod(out.text.c_str(), nullptr);
    return true;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          // Encode as UTF-8 (surrogate pairs unsupported: the protocol is
          // ASCII-centric; reject rather than emit broken text).
          if (code >= 0xD800 && code <= 0xDFFF) return fail("surrogate \\u escapes unsupported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail(std::string("bad escape '\\") + esc + "'");
      }
    }
    return fail("unterminated string");
  }

  bool parseObject(JsonValue& out, int depth) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!chargeField()) return false;
      std::string k;
      skipSpace();
      if (!parseString(k)) return false;
      if (out.find(k) != nullptr) return fail("duplicate key \"" + k + "\"");
      if (!consume(':')) return false;
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      out.fields.emplace_back(std::move(k), std::move(v));
      skipSpace();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue& out, int depth) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!chargeField()) return false;
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      skipSpace();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::string& error_;
  size_t pos_ = 0;
  size_t fields_ = 0;
};

bool badRequest(ServeError& error, int lineNo, const std::string& message) {
  error.code = "bad_request";
  error.message = message;
  error.line = lineNo;
  return false;
}

// Field extraction helpers: each checks the JSON kind and reports a typed
// bad_request on mismatch.
bool takeString(const JsonValue& v, const std::string& key, std::string& out,
                ServeError& error, int lineNo) {
  if (v.kind != JsonValue::Kind::kString) {
    return badRequest(error, lineNo, "field \"" + key + "\" must be a string");
  }
  out = v.text;
  return true;
}

bool takeBool(const JsonValue& v, const std::string& key, bool& out, ServeError& error,
              int lineNo) {
  if (v.kind != JsonValue::Kind::kBool) {
    return badRequest(error, lineNo, "field \"" + key + "\" must be a boolean");
  }
  out = v.boolean;
  return true;
}

bool takeU64(const JsonValue& v, const std::string& key, uint64_t& out, ServeError& error,
             int lineNo) {
  if (v.kind != JsonValue::Kind::kNumber || v.number < 0 ||
      v.text.find_first_of(".eE") != std::string::npos) {
    return badRequest(error, lineNo, "field \"" + key + "\" must be a non-negative integer");
  }
  out = std::strtoull(v.text.c_str(), nullptr, 10);
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool parseJson(const std::string& line, JsonValue& out, std::string& error) {
  return JsonParser(line, error).parse(out);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonObjectWriter::key(const std::string& k) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + jsonEscape(k) + "\":";
}

void JsonObjectWriter::field(const std::string& k, const std::string& value) {
  key(k);
  body_ += "\"" + jsonEscape(value) + "\"";
}

void JsonObjectWriter::field(const std::string& k, const char* value) {
  field(k, std::string(value));
}

void JsonObjectWriter::fieldRaw(const std::string& k, const std::string& rawJson) {
  key(k);
  body_ += rawJson;
}

void JsonObjectWriter::field(const std::string& k, uint64_t value) {
  key(k);
  body_ += std::to_string(value);
}

void JsonObjectWriter::field(const std::string& k, int value) {
  key(k);
  body_ += std::to_string(value);
}

void JsonObjectWriter::field(const std::string& k, double value) {
  key(k);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  body_ += buf;
}

void JsonObjectWriter::field(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
}

const char* serveOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kPreimage: return "preimage";
    case ServeOp::kPing: return "ping";
    case ServeOp::kVersion: return "version";
    case ServeOp::kStats: return "stats";
    case ServeOp::kCancel: return "cancel";
    case ServeOp::kShutdown: return "shutdown";
  }
  return "?";
}

bool parseRequest(const std::string& line, int lineNo, ServeRequest& out, ServeError& error) {
  if (line.size() > kMaxLineBytes) {
    error.code = "parse";
    error.message = "request line exceeds " + std::to_string(kMaxLineBytes) + " bytes";
    error.line = lineNo;
    return false;
  }
  JsonValue doc;
  std::string parseError;
  if (!parseJson(line, doc, parseError)) {
    error.code = "parse";
    error.message = parseError;
    error.line = lineNo;
    return false;
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    return badRequest(error, lineNo, "request must be a JSON object");
  }

  // Pull id and op first so later diagnostics can echo the id.
  const JsonValue* idField = doc.find("id");
  if (idField != nullptr && idField->kind == JsonValue::Kind::kString) out.id = idField->text;

  const JsonValue* opField = doc.find("op");
  if (opField == nullptr || opField->kind != JsonValue::Kind::kString) {
    return badRequest(error, lineNo, "missing string field \"op\"");
  }
  const std::string& opName = opField->text;
  if (opName == "preimage") out.op = ServeOp::kPreimage;
  else if (opName == "ping") out.op = ServeOp::kPing;
  else if (opName == "version") out.op = ServeOp::kVersion;
  else if (opName == "stats") out.op = ServeOp::kStats;
  else if (opName == "cancel") out.op = ServeOp::kCancel;
  else if (opName == "shutdown") out.op = ServeOp::kShutdown;
  else return badRequest(error, lineNo, "unknown op \"" + opName + "\"");

  if (out.id.empty() && out.op != ServeOp::kShutdown) {
    return badRequest(error, lineNo, "missing string field \"id\"");
  }

  for (const auto& [k, v] : doc.fields) {
    if (k == "id" || k == "op") continue;
    bool good = true;
    uint64_t u = 0;
    if (k == "gen") good = takeString(v, k, out.gen, error, lineNo);
    else if (k == "bench") good = takeString(v, k, out.bench, error, lineNo);
    else if (k == "target") good = takeString(v, k, out.target, error, lineNo);
    else if (k == "method") good = takeString(v, k, out.method, error, lineNo);
    else if (k == "class") good = takeString(v, k, out.budgetClass, error, lineNo);
    else if (k == "target_id") good = takeString(v, k, out.targetId, error, lineNo);
    else if (k == "project") good = takeBool(v, k, out.project, error, lineNo);
    else if (k == "compress") good = takeBool(v, k, out.compress, error, lineNo);
    else if (k == "cache") good = takeBool(v, k, out.cache, error, lineNo);
    else if (k == "cert") good = takeBool(v, k, out.cert, error, lineNo);
    else if (k == "jobs") {
      good = takeU64(v, k, u, error, lineNo);
      if (good) out.jobs = static_cast<int>(u > 64 ? 64 : u);
    } else if (k == "max_cubes") good = takeU64(v, k, out.maxCubes, error, lineNo);
    else if (k == "timeout_ms") good = takeU64(v, k, out.timeoutMs, error, lineNo);
    else if (k == "mem_limit_mb") good = takeU64(v, k, out.memLimitMb, error, lineNo);
    else if (k == "conflict_limit") good = takeU64(v, k, out.conflictLimit, error, lineNo);
    else return badRequest(error, lineNo, "unknown field \"" + k + "\"");
    if (!good) return false;
  }

  if (!out.budgetClass.empty() && out.budgetClass != "interactive" &&
      out.budgetClass != "batch") {
    return badRequest(error, lineNo, "field \"class\" must be \"interactive\" or \"batch\"");
  }
  if (out.op == ServeOp::kPreimage) {
    if (out.gen.empty() == out.bench.empty()) {
      return badRequest(error, lineNo, "preimage needs exactly one of \"gen\" / \"bench\"");
    }
    if (out.target.empty()) {
      return badRequest(error, lineNo, "preimage needs a \"target\" cube");
    }
  }
  if (out.op == ServeOp::kCancel && out.targetId.empty()) {
    return badRequest(error, lineNo, "cancel needs \"target_id\"");
  }
  return true;
}

std::string errorResponse(const std::string& id, const ServeError& error) {
  JsonObjectWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("status", "error");
  JsonObjectWriter e;
  e.field("code", error.code);
  e.field("message", error.message);
  if (error.line > 0) e.field("line", error.line);
  w.fieldRaw("error", e.str());
  return w.str();
}

}  // namespace presat::serve
