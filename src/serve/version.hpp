// Build identification: one JSON object describing this binary, used by
// `presat_cli version` and as the payload of the presat_serve handshake
// banner — so a client (or an incident responder reading logs) can tell
// exactly which build, audit level, and fault configuration answered.
#pragma once

#include <string>

namespace presat::serve {

// Compact one-line JSON: {"name":"presat","git":...,"build_type":...,
// "compiler":...,"cxx_standard":...,"audit":...,"faults":...}. Deterministic
// for a given build; git hash is stamped at CMake configure time
// ("unknown" outside a git checkout).
std::string buildInfoJson();

}  // namespace presat::serve
