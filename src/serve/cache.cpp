#include "serve/cache.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace presat::serve {

namespace {

inline uint64_t mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t hashString(uint64_t h, const std::string& s) {
  for (char c : s) h = mix(h, static_cast<unsigned char>(c));
  return mix(h, s.size());
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  uint64_t h = mix(0x73657276ull, k.circuitHash);
  h = hashString(h, k.target);
  h = hashString(h, k.method);
  h = mix(h, (k.project ? 2u : 0u) | (k.compress ? 1u : 0u));
  return static_cast<size_t>(h);
}

// Lifecycle: an entry is created in-flight by the leader's acquire(); it
// becomes ready (publish of a complete cover), or is torn down (abandon /
// publish of a partial). Followers blocked in acquire() pin the entry via
// `followers` until the last one has copied the payload out.
struct ServeCache::Entry {
  bool ready = false;
  bool abandoned = false;
  CachedCover payload;
  uint64_t bytes = 0;
  uint64_t lastTouch = 0;
  int followers = 0;
};

ServeCache::ServeCache(uint64_t maxBytes, Governor* governor) : maxBytes_(maxBytes) {
  MutexLock lock(mu_);
  ledger_.attach(governor);
}

ServeCache::~ServeCache() {
  MutexLock lock(mu_);
  ledger_.attach(nullptr);
}

uint64_t ServeCache::entryBytes(const CacheKey& key, const CachedCover& payload) const {
  uint64_t b = 96;  // entry + table-slot overhead
  b += key.target.size() + key.method.size();
  b += payload.cubes.size() * (sizeof(LitVec) + 8);
  for (const LitVec& cube : payload.cubes) b += cube.size() * sizeof(Lit);
  b += payload.cert.size();
  return b;
}

CacheLookup ServeCache::acquire(const CacheKey& key, CachedCover& payload) {
  MutexLock lock(mu_);
  if (!enabled()) {
    ++misses_;
    return CacheLookup::kMiss;
  }
  auto it = table_.find(key);
  if (it == table_.end()) {
    table_.emplace(key, std::make_unique<Entry>());  // in-flight marker
    ++misses_;
    return CacheLookup::kMiss;
  }
  Entry& e = *it->second;
  if (e.ready) {
    e.lastTouch = ++clock_;
    payload = e.payload;
    ++hits_;
    return CacheLookup::kHit;
  }
  // In-flight: become a follower of the leader computing this key.
  ++e.followers;
  while (!e.ready && !e.abandoned) ready_.wait(mu_);
  payload = e.payload;
  --e.followers;
  if (e.abandoned && e.followers == 0) table_.erase(key);
  ++dedups_;
  return CacheLookup::kDedup;
}

void ServeCache::publish(const CacheKey& key, const CachedCover& payload) {
  if (payload.outcome != Outcome::kComplete) {
    // A partial cover is budget-specific: hand it to followers, don't retain.
    abandon(key, payload);
    return;
  }
  {
    MutexLock lock(mu_);
    if (!enabled()) return;
    auto it = table_.find(key);
    if (it == table_.end()) return;  // entry shed between acquire and publish
    Entry& e = *it->second;
    PRESAT_CHECK(!e.ready) << "serve cache: double publish for one key";
    e.ready = true;
    e.payload = payload;
    e.bytes = entryBytes(key, payload);
    e.lastTouch = ++clock_;
    bytes_ += e.bytes;
    ledger_.charge(e.bytes);
    ++inserts_;
  }
  ready_.notifyAll();
  if (bytes() > maxBytes_) shed(maxBytes_ / 2);
}

void ServeCache::abandon(const CacheKey& key, const CachedCover& partial) {
  {
    MutexLock lock(mu_);
    if (!enabled()) return;
    auto it = table_.find(key);
    if (it == table_.end()) return;
    Entry& e = *it->second;
    PRESAT_CHECK(!e.ready) << "serve cache: abandon after publish";
    e.abandoned = true;
    e.payload = partial;
    if (e.followers == 0) {
      table_.erase(it);
    }
  }
  ready_.notifyAll();
}

void ServeCache::refresh(const CacheKey& key, const CachedCover& payload) {
  if (payload.outcome != Outcome::kComplete) return;  // partials are never retained
  {
    MutexLock lock(mu_);
    if (!enabled()) return;
    auto it = table_.find(key);
    if (it == table_.end() || !it->second->ready) return;
    Entry& e = *it->second;
    bytes_ -= e.bytes;
    ledger_.release(e.bytes);
    e.payload = payload;
    e.bytes = entryBytes(key, payload);
    e.lastTouch = ++clock_;
    bytes_ += e.bytes;
    ledger_.charge(e.bytes);
  }
  if (bytes() > maxBytes_) shed(maxBytes_ / 2);
}

void ServeCache::evictLocked(const CacheKey& key) {
  auto it = table_.find(key);
  PRESAT_CHECK(it != table_.end());
  Entry& e = *it->second;
  bytes_ -= e.bytes;
  ledger_.release(e.bytes);
  table_.erase(it);
  ++evictions_;
}

size_t ServeCache::shed(uint64_t targetBytes) {
  MutexLock lock(mu_);
  size_t evicted = 0;
  if (bytes_ <= targetBytes) return 0;
  // Generation 1: everything not touched since the previous sweep goes — the
  // second-chance discipline the success-driven memo uses.
  std::vector<std::pair<uint64_t, CacheKey>> survivors;
  std::vector<CacheKey> cold;
  for (const auto& [key, entry] : table_) {
    if (!entry->ready || entry->followers > 0) continue;  // in-flight: pinned
    if (entry->lastTouch <= sweepMark_) {
      cold.push_back(key);
    } else {
      survivors.emplace_back(entry->lastTouch, key);
    }
  }
  for (const CacheKey& key : cold) {
    evictLocked(key);
    ++evicted;
  }
  // Generation 2: strict LRU among the hot survivors until under target.
  std::sort(survivors.begin(), survivors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [touch, key] : survivors) {
    if (bytes_ <= targetBytes) break;
    evictLocked(key);
    ++evicted;
  }
  sweepMark_ = clock_;
  return evicted;
}

uint64_t ServeCache::bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

size_t ServeCache::entries() const {
  MutexLock lock(mu_);
  return table_.size();
}

void ServeCache::exportMetrics(Metrics& m) const {
  MutexLock lock(mu_);
  m.setCounter("serve.cache.hits", hits_);
  m.setCounter("serve.cache.misses", misses_);
  m.setCounter("serve.cache.dedups", dedups_);
  m.setCounter("serve.cache.evictions", evictions_);
  m.setCounter("serve.cache.inserts", inserts_);
  m.setCounter("serve.cache.entries", table_.size());
  m.setCounter("serve.cache.bytes", bytes_);
}

ContextPool::ContextPool(size_t maxContexts) : maxContexts_(maxContexts < 1 ? 1 : maxContexts) {}

CircuitContextPtr ContextPool::resolve(const std::string& sourceKey,
                                       const std::function<CircuitContextPtr()>& build) {
  {
    MutexLock lock(mu_);
    auto it = pool_.find(sourceKey);
    if (it != pool_.end()) {
      it->second.lastTouch = ++clock_;
      ++reuses_;
      return it->second.context;
    }
  }
  // Build outside the lock: parsing/encoding a big circuit must not stall
  // resolution of unrelated circuits. A racing builder for the same key is
  // harmless — contexts are immutable and the second insert is dropped.
  CircuitContextPtr ctx = build();
  if (ctx == nullptr) return nullptr;
  MutexLock lock(mu_);
  auto [it, inserted] = pool_.emplace(sourceKey, Slot{ctx, ++clock_});
  if (!inserted) {
    it->second.lastTouch = clock_;
    return it->second.context;
  }
  if (pool_.size() > maxContexts_) {
    auto lru = pool_.begin();
    for (auto scan = pool_.begin(); scan != pool_.end(); ++scan) {
      if (scan->second.lastTouch < lru->second.lastTouch) lru = scan;
    }
    if (lru != it) pool_.erase(lru);
  }
  return ctx;
}

size_t ContextPool::entries() const {
  MutexLock lock(mu_);
  return pool_.size();
}

uint64_t ContextPool::reuses() const {
  MutexLock lock(mu_);
  return reuses_;
}

}  // namespace presat::serve
