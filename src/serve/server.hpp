// presat_serve daemon core: the request lifecycle state machine
// (parse -> admit -> execute -> respond) over a line transport.
//
// One Server owns the long-lived machinery — pre-warmed ServicePool workers,
// the fairness Scheduler, the cross-query ServeCache, the ContextPool of
// parsed circuits, and a byte-tracking Governor the cache ledger charges —
// and serve() runs a connection: emit the build-info banner, then read
// NDJSON request lines until EOF or a shutdown op, answering out of order as
// workers finish (responses carry the request id, so a multiplexing client
// can run many requests down one pipe).
//
// Lifecycle of a preimage request:
//   parse    protocol.cpp's hardened parser; grammar/limit violations answer
//            with a structured "parse"/"bad_request" error and the line
//            number — the connection stays up.
//   admit    duplicate-id check, memory-pressure check (sheds cache BEFORE
//            rejecting — see admitMemory()), then the bounded fairness
//            queue; a full queue answers "overloaded" (backpressure).
//   execute  on a pooled worker: resolve the circuit context, consult the
//            cache (leader/follower), run the engine under a per-request
//            Governor wired to the request's CancelToken.
//   respond  serialized response line under the write lock.
//
// Disconnect (EOF) cancels every in-flight request via its CancelToken —
// engines observe it at their next governor poll and return sound partial
// covers that nobody reads; the daemon then stops its pool and returns.
// A shutdown op instead DRAINS: queued and running requests finish and
// flush their responses first.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "base/metrics.hpp"
#include "base/sync.hpp"
#include "base/thread_annotations.hpp"
#include "base/timer.hpp"
#include "govern/governor.hpp"
#include "parallel/worker_pool.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace presat::serve {

// Line-oriented duplex transport. The server reads requests on its own
// thread and writes responses from worker threads strictly under one
// internal lock, so implementations need no synchronization of their own.
class LineTransport {
 public:
  virtual ~LineTransport() = default;

  // Blocks for the next input line (newline stripped). False on EOF /
  // disconnect. Implementations should cap a single line at slightly over
  // kMaxLineBytes and discard the remainder — the parser turns the oversized
  // prefix into a structured "parse" error.
  virtual bool readLine(std::string* line) = 0;

  virtual void writeLine(const std::string& line) = 0;
};

struct ServerConfig {
  int workers = 4;
  size_t queueDepth = 64;             // fairness-queue admission cap
  uint64_t cacheBytes = 64ull << 20;  // cross-query cache budget (0 disables)
  uint64_t memLimitBytes = 0;         // server-wide tracked-bytes ceiling (0 = off)
  size_t maxContexts = 32;            // pooled parsed circuits
  bool banner = true;                 // emit the build-info hello line
  SessionLimits limits;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Runs the connection loop on the calling thread. Returns the process exit
  // code (0 for a clean EOF or shutdown).
  int serve(LineTransport& transport);

  // Snapshot of the serve.* metrics block (also the `stats` op payload).
  void exportMetrics(Metrics& m) const;

  // Asynchronous graceful-drain request — the SIGTERM/SIGINT path. Sets a
  // process-wide lock-free flag (async-signal-safe, callable from a signal
  // handler); the serve loop observes it between lines (the transport's
  // readLine returns early on EINTR) and takes the same drain path as a
  // shutdown op: queued and running requests finish and flush, THEN the
  // loop exits — unlike EOF/disconnect, which cancels in-flight work.
  static void requestDrain();
  static bool drainRequested();
  // Test hook: clears the process-wide flag so one test's drain does not
  // poison the next server instance in the same process.
  static void resetDrainForTest();

  const ServeCache& cache() const { return cache_; }
  const ContextPool& contexts() const { return contexts_; }

 private:
  void sendLine(const std::string& line);
  void sendError(const std::string& id, const ServeError& error);
  void handlePreimage(const ServeRequest& req, int lineNo);
  void handleCancel(const ServeRequest& req);
  void handleStats(const ServeRequest& req);
  // Memory-pressure admission gate: under pressure, sheds cache first and
  // only rejects when that wasn't enough.
  bool admitMemory();
  void executeRequest(const ServeRequest& req, const std::shared_ptr<CancelToken>& cancel,
                      Timer started);
  void finishRequest(const std::string& id, double seconds);
  void cancelAllInflight();

  const ServerConfig config_;  // presat-analyze: lockfree(immutable after construction)
  // Byte-tracking only: constructed with an unlimited Budget so it never
  // latches a trip; the cache ledger charges it and admitMemory() compares
  // trackedBytes() against config_.memLimitBytes itself.
  // presat-analyze: lockfree(atomic byte counter; internally synchronized)
  Governor governor_;
  ServicePool pool_;       // presat-analyze: lockfree(internally synchronized)
  Scheduler scheduler_;    // presat-analyze: lockfree(internally synchronized)
  ServeCache cache_;       // presat-analyze: lockfree(internally synchronized)
  ContextPool contexts_;   // presat-analyze: lockfree(internally synchronized)

  // Response serialization. transport_ is only non-null inside serve().
  mutable Mutex writeMu_;
  LineTransport* transport_ GUARDED_BY(writeMu_) = nullptr;

  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<CancelToken>> inflight_ GUARDED_BY(mu_);
  uint64_t requests_ GUARDED_BY(mu_) = 0;
  uint64_t responses_ GUARDED_BY(mu_) = 0;
  uint64_t errorsParse_ GUARDED_BY(mu_) = 0;
  uint64_t errorsBadRequest_ GUARDED_BY(mu_) = 0;
  uint64_t rejectsMemory_ GUARDED_BY(mu_) = 0;
  uint64_t cancels_ GUARDED_BY(mu_) = 0;
  Histogram requestUs_ GUARDED_BY(mu_);  // admit -> response wall time
};

}  // namespace presat::serve
