// presat_serve — preimage-as-a-service daemon.
//
// Speaks newline-delimited JSON on stdin/stdout (one request or response
// per line; responses carry the request id and may arrive out of order), so
// any process that can spawn a child and write a pipe is a client — no
// socket stack, no port allocation, and the transport inherits the
// operating system's process lifetime semantics: kill the client, the pipe
// closes, and every in-flight request is cancelled. tools/presat_client.py
// is the reference client and load driver.
//
//   presat_serve [--workers N] [--queue-depth N] [--cache-mb N | --no-cache]
//                [--mem-limit-mb N] [--max-jobs N] [--default-timeout-ms N]
//                [--max-contexts N] [--no-banner]
//
// Fault-injection builds (PRESAT_FAULTS) arm from PRESAT_FAULT_SITE /
// PRESAT_FAULT_AFTER / PRESAT_FAULT_SEED at startup, exactly like
// presat_cli — the soak lane drives the daemon through the same fault sweep
// as the batch tools and asserts every response is complete or a sound
// partial.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "govern/faults.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace presat::serve {

namespace {

// stdin/stdout transport on C stdio. readLine caps a single line at
// kMaxLineBytes + 1 bytes: the oversized prefix is returned (the parser
// answers with a structured "parse" error) and the remainder of the line is
// discarded, so a hostile megabyte-spam client costs bounded memory.
class StdioTransport : public LineTransport {
 public:
  bool readLine(std::string* line) override {
    line->clear();
    int c;
    bool any = false;
    bool dropping = false;
    for (;;) {
      c = std::fgetc(stdin);
      if (c == EOF) {
        // The drain signal handlers install without SA_RESTART precisely so
        // this blocking read unblocks with EINTR; hand control back to the
        // serve loop, which observes the drain flag. Any other interrupted
        // read (no drain pending) just resumes.
        if (std::ferror(stdin) != 0 && errno == EINTR) {
          std::clearerr(stdin);
          if (Server::drainRequested()) return false;
          continue;
        }
        break;
      }
      any = true;
      if (c == '\n') return true;
      if (dropping) continue;
      line->push_back(static_cast<char>(c));
      if (line->size() > kMaxLineBytes) dropping = true;
    }
    return any;  // final unterminated line still served; false = EOF
  }

  void writeLine(const std::string& line) override {
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // NDJSON framing: a response is visible when written
  }
};

uint64_t parseU64Flag(const char* flagName, const char* value) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "presat_serve: bad value for %s: '%s'\n", flagName, value);
    std::exit(2);
  }
  return static_cast<uint64_t>(v);
}

int runServe(int argc, char** argv) {
  ServerConfig config;
  uint64_t cacheMb = 64;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "presat_serve: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--workers") == 0) {
      config.workers = static_cast<int>(parseU64Flag(arg, next()));
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      config.queueDepth = static_cast<size_t>(parseU64Flag(arg, next()));
    } else if (std::strcmp(arg, "--cache-mb") == 0) {
      cacheMb = parseU64Flag(arg, next());
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      cacheMb = 0;
    } else if (std::strcmp(arg, "--mem-limit-mb") == 0) {
      config.memLimitBytes = parseU64Flag(arg, next()) << 20;
    } else if (std::strcmp(arg, "--max-jobs") == 0) {
      config.limits.maxJobs = static_cast<int>(parseU64Flag(arg, next()));
    } else if (std::strcmp(arg, "--default-timeout-ms") == 0) {
      config.limits.defaultTimeoutMs = parseU64Flag(arg, next());
    } else if (std::strcmp(arg, "--max-contexts") == 0) {
      config.maxContexts = static_cast<size_t>(parseU64Flag(arg, next()));
    } else if (std::strcmp(arg, "--no-banner") == 0) {
      config.banner = false;
    } else {
      std::fprintf(stderr,
                   "usage: presat_serve [--workers N] [--queue-depth N]\n"
                   "                    [--cache-mb N | --no-cache] [--mem-limit-mb N]\n"
                   "                    [--max-jobs N] [--default-timeout-ms N]\n"
                   "                    [--max-contexts N] [--no-banner]\n");
      return 2;
    }
  }
  config.cacheBytes = cacheMb << 20;
  faults::armFaultsFromEnv();

  // SIGTERM/SIGINT take the graceful-drain path: in-flight and queued
  // requests finish and flush their responses, then the process exits 0 —
  // an orchestrator's `kill` loses no answers. No SA_RESTART, so the
  // blocking stdin read wakes with EINTR and the loop sees the flag.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = [](int) { Server::requestDrain(); };
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  Server server(config);
  StdioTransport transport;
  return server.serve(transport);
}

}  // namespace

}  // namespace presat::serve

int main(int argc, char** argv) { return presat::serve::runServe(argc, argv); }
