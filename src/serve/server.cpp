#include "serve/server.hpp"

#include <atomic>
#include <utility>

#include "base/timer.hpp"
#include "serve/version.hpp"

namespace presat::serve {

namespace {

// Process-wide because signal handlers have no instance pointer; lock-free
// so requestDrain() is async-signal-safe.
// presat-analyze: lockfree(lock-free atomic flag; signal-handler writable)
std::atomic<bool> g_drainRequested{false};

}  // namespace

void Server::requestDrain() { g_drainRequested.store(true, std::memory_order_relaxed); }
bool Server::drainRequested() { return g_drainRequested.load(std::memory_order_relaxed); }
void Server::resetDrainForTest() { g_drainRequested.store(false, std::memory_order_relaxed); }

Server::Server(const ServerConfig& config)
    : config_(config),
      governor_(Budget{}),
      scheduler_(pool_, config.queueDepth),
      cache_(config.cacheBytes, &governor_),
      contexts_(config.maxContexts) {
  pool_.start(config_.workers);
}

Server::~Server() { pool_.stop(); }

void Server::sendLine(const std::string& line) {
  {
    MutexLock lock(writeMu_);
    if (transport_ != nullptr) transport_->writeLine(line);
  }
  MutexLock lock(mu_);
  ++responses_;
}

void Server::sendError(const std::string& id, const ServeError& error) {
  sendLine(errorResponse(id, error));
}

bool Server::admitMemory() {
  if (config_.memLimitBytes == 0) return true;
  if (governor_.trackedBytes() <= config_.memLimitBytes) return true;
  // Shed cache before shedding requests: the cache is the server's only
  // elastic consumer of the tracked-byte pool.
  cache_.shed(config_.memLimitBytes / 2);
  return governor_.trackedBytes() <= config_.memLimitBytes;
}

void Server::executeRequest(const ServeRequest& req, const std::shared_ptr<CancelToken>& cancel,
                            Timer started) {
  auto eraseInflight = [this, &req] {
    MutexLock lock(mu_);
    inflight_.erase(req.id);
  };
  std::string contextError;
  CircuitContextPtr context = contexts_.resolve(circuitSourceKey(req), [&]() -> CircuitContextPtr {
    std::string err;
    CircuitContextPtr c = buildCircuitContext(req, config_.limits, &err);
    if (c == nullptr) contextError = err;
    return c;
  });
  if (context == nullptr) {
    {
      MutexLock lock(mu_);
      ++errorsBadRequest_;
    }
    eraseInflight();
    sendError(req.id, {"bad_request", contextError, 0});
    return;
  }
  ExecResult result;
  ServeError error = runPreimage(req, context, cache_, cancel.get(), config_.limits, &result);
  if (!error.ok()) {
    {
      MutexLock lock(mu_);
      ++errorsBadRequest_;
    }
    eraseInflight();
    sendError(req.id, error);
    return;
  }
  sendLine(resultResponse(req, result));
  finishRequest(req.id, started.seconds());
}

void Server::finishRequest(const std::string& id, double seconds) {
  MutexLock lock(mu_);
  inflight_.erase(id);
  requestUs_.record(static_cast<uint64_t>(seconds * 1e6));
}

void Server::handlePreimage(const ServeRequest& req, int lineNo) {
  if (!admitMemory()) {
    {
      MutexLock lock(mu_);
      ++rejectsMemory_;
    }
    sendError(req.id, {"overloaded", "server memory limit reached", lineNo});
    return;
  }
  auto cancel = std::make_shared<CancelToken>();
  bool duplicate = false;
  {
    MutexLock lock(mu_);
    if (!inflight_.emplace(req.id, cancel).second) {
      ++errorsBadRequest_;
      duplicate = true;
    }
  }
  if (duplicate) {
    sendError(req.id,
              {"bad_request", "request id '" + req.id + "' is already in flight", lineNo});
    return;
  }
  // Fairness class: explicit wins; otherwise a small wall-clock budget marks
  // the request interactive (someone is waiting on it), unbounded or large
  // budgets are batch.
  const bool interactive =
      req.budgetClass == "interactive" ||
      (req.budgetClass.empty() && req.timeoutMs != 0 && req.timeoutMs <= 2000);
  Timer started;
  bool admitted = scheduler_.admit(
      interactive, [this, req, cancel, started] { executeRequest(req, cancel, started); });
  if (!admitted) {
    {
      MutexLock lock(mu_);
      inflight_.erase(req.id);
    }
    sendError(req.id, {"overloaded", "request queue full", lineNo});
  }
}

void Server::handleCancel(const ServeRequest& req) {
  bool found = false;
  {
    MutexLock lock(mu_);
    auto it = inflight_.find(req.targetId);
    if (it != inflight_.end()) {
      it->second->cancel();
      found = true;
      ++cancels_;
    }
  }
  JsonObjectWriter w;
  w.field("id", req.id);
  w.field("status", "ok");
  w.field("cancelled", found);
  sendLine(w.str());
}

void Server::handleStats(const ServeRequest& req) {
  Metrics m;
  exportMetrics(m);
  JsonObjectWriter w;
  w.field("id", req.id);
  w.field("status", "ok");
  w.fieldRaw("metrics", m.toJson(0));
  sendLine(w.str());
}

void Server::cancelAllInflight() {
  MutexLock lock(mu_);
  for (auto& [id, token] : inflight_) token->cancel();
}

int Server::serve(LineTransport& transport) {
  {
    MutexLock lock(writeMu_);
    transport_ = &transport;
  }
  if (config_.banner) {
    JsonObjectWriter w;
    w.field("status", "hello");
    w.field("protocol", 1);
    w.fieldRaw("version", buildInfoJson());
    sendLine(w.str());
  }

  std::string line;
  std::string shutdownId;
  bool shutdown = false;
  int lineNo = 0;
  while (!shutdown && !drainRequested() && transport.readLine(&line)) {
    ++lineNo;
    ServeRequest req;
    ServeError error;
    if (!parseRequest(line, lineNo, req, error)) {
      {
        MutexLock lock(mu_);
        if (error.code == "parse") {
          ++errorsParse_;
        } else {
          ++errorsBadRequest_;
        }
      }
      sendError(req.id, error);
      continue;
    }
    {
      MutexLock lock(mu_);
      ++requests_;
    }
    switch (req.op) {
      case ServeOp::kPing: {
        JsonObjectWriter w;
        w.field("id", req.id);
        w.field("status", "ok");
        w.field("op", "ping");
        sendLine(w.str());
        break;
      }
      case ServeOp::kVersion: {
        JsonObjectWriter w;
        w.field("id", req.id);
        w.field("status", "ok");
        w.fieldRaw("version", buildInfoJson());
        sendLine(w.str());
        break;
      }
      case ServeOp::kStats:
        handleStats(req);
        break;
      case ServeOp::kCancel:
        handleCancel(req);
        break;
      case ServeOp::kShutdown:
        shutdownId = req.id;
        shutdown = true;
        break;
      case ServeOp::kPreimage:
        handlePreimage(req, lineNo);
        break;
    }
  }

  if (shutdown || drainRequested()) {
    // Graceful drain — the shutdown op and the SIGTERM/SIGINT path: queued
    // and running requests finish and flush before the final ack — the ack
    // being the LAST line is the client's flush barrier. The signal path has
    // no request to echo, so its ack carries op "drain" and no id.
    pool_.quiesce();
    JsonObjectWriter w;
    if (!shutdownId.empty()) w.field("id", shutdownId);
    w.field("status", "ok");
    w.field("op", shutdown ? "shutdown" : "drain");
    sendLine(w.str());
  } else {
    // Disconnect: nobody reads further responses; cancel in-flight work so
    // engines unwind at their next governor poll instead of soaking on.
    cancelAllInflight();
  }
  pool_.stop();
  {
    MutexLock lock(writeMu_);
    transport_ = nullptr;
  }
  return 0;
}

void Server::exportMetrics(Metrics& m) const {
  {
    MutexLock lock(mu_);
    m.inc("serve.requests", requests_);
    m.inc("serve.responses", responses_);
    m.inc("serve.errors.parse", errorsParse_);
    m.inc("serve.errors.bad_request", errorsBadRequest_);
    m.inc("serve.rejects.memory", rejectsMemory_);
    m.inc("serve.cancelled", cancels_);
    m.histogram("serve.request_us").merge(requestUs_);
  }
  scheduler_.exportMetrics(m);
  cache_.exportMetrics(m);
  m.setCounter("serve.contexts", contexts_.entries());
  m.setCounter("serve.context.reuses", contexts_.reuses());
  m.setCounter("serve.workers", static_cast<uint64_t>(pool_.numThreads()));
  m.setCounter("serve.pool.completed", pool_.completed());
  m.setCounter("serve.pool.abandoned", pool_.abandoned());
}

}  // namespace presat::serve
