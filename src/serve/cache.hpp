// Cross-query reuse for the serve layer: the result cache and the pooled
// circuit contexts.
//
// ServeCache memoizes finished preimage covers across requests, keyed by
// (circuit structural hash, target cube, method, project/compress flags) —
// everything that determines the answer, and nothing that doesn't (budgets
// and jobs are excluded: results are budget-independent when complete, and
// the parallel merge is bit-identical for every jobs >= 1). Only COMPLETE
// results are retained: a partial cover is an artifact of one request's
// budget and must not be served to a request that could afford the full
// answer. Concurrent same-key requests dedup to one computation: the first
// becomes the *leader* (kMiss — it must publish() or abandon()), later ones
// block as *followers* and receive the leader's payload when it lands.
//
// Memory: entry bytes are charged to a MemoryLedger (so a server-wide
// governor sees cache pressure in its tracked-byte pool) and bounded by
// maxBytes with generational second-chance eviction — a sweep first drops
// every entry untouched since the previous sweep, then falls back to
// strict LRU if the survivors still exceed the target. shed() is also
// callable from admission control, so memory pressure sheds cache before it
// sheds requests.
//
// ContextPool shares parsed circuits (netlist + transition system) across
// requests: a hot circuit is parsed and encoded once, then served from the
// pool by structural identity. Contexts are immutable after construction
// and safely shared across concurrent engine runs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/biguint.hpp"
#include "base/metrics.hpp"
#include "base/sync.hpp"
#include "base/thread_annotations.hpp"
#include "base/types.hpp"
#include "circuit/netlist.hpp"
#include "govern/budget.hpp"
#include "govern/governor.hpp"
#include "preimage/preimage.hpp"
#include "preimage/transition_system.hpp"

namespace presat::serve {

struct CacheKey {
  uint64_t circuitHash = 0;
  std::string target;
  std::string method;
  bool project = false;
  bool compress = false;

  bool operator==(const CacheKey& o) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const;
};

// The cached payload: a finished cover plus its exact count. Bit-identical
// to what the engine produced — the cache stores and returns the cube
// vector verbatim, which is what the hit-equivalence test pins down.
struct CachedCover {
  std::vector<LitVec> cubes;
  BigUint count;
  Outcome outcome = Outcome::kComplete;
  int width = 0;
  // presat-cert-v1 text when the producing request asked for one; cached
  // alongside the cover so a later cert-requesting hit replays it verbatim.
  // Empty when the leader ran without certification (zero-cost default).
  std::string cert;
};

enum class CacheLookup {
  kHit,    // ready entry; payload filled
  kDedup,  // waited on an in-flight leader; payload filled
  kMiss,   // caller is now the leader and MUST publish() or abandon()
};

class ServeCache {
 public:
  // maxBytes = 0 disables caching entirely (every acquire is a kMiss with a
  // no-op publish). `governor` (nullable) receives the byte charges.
  ServeCache(uint64_t maxBytes, Governor* governor);
  ~ServeCache();

  ServeCache(const ServeCache&) = delete;
  ServeCache& operator=(const ServeCache&) = delete;

  CacheLookup acquire(const CacheKey& key, CachedCover& payload);

  // Leader epilogue: store the finished payload, wake followers. Retains the
  // entry only when payload.outcome == kComplete and caching is enabled.
  void publish(const CacheKey& key, const CachedCover& payload);

  // Leader epilogue for failed/partial runs: wake followers with the partial
  // payload (sound for any budget), drop the entry.
  void abandon(const CacheKey& key, const CachedCover& partial);

  // Replaces a READY entry's payload in place (byte accounting adjusted) —
  // the cert-upgrade path: a cert-requesting request that hit a certless
  // entry recomputes with certification and upgrades the entry so the next
  // hit replays the certificate. No-op when the entry is gone or in flight.
  void refresh(const CacheKey& key, const CachedCover& payload);

  // Generational shed toward `targetBytes` tracked bytes. Returns the number
  // of entries evicted. In-flight entries are never evicted.
  size_t shed(uint64_t targetBytes);

  uint64_t bytes() const;
  size_t entries() const;
  uint64_t maxBytes() const { return maxBytes_; }
  bool enabled() const { return maxBytes_ > 0; }

  // serve.cache.* block.
  void exportMetrics(Metrics& m) const;

 private:
  struct Entry;

  uint64_t entryBytes(const CacheKey& key, const CachedCover& payload) const;
  void evictLocked(const CacheKey& key) REQUIRES(mu_);

  const uint64_t maxBytes_;  // presat-analyze: lockfree(immutable after construction)
  mutable Mutex mu_;
  std::unordered_map<CacheKey, std::unique_ptr<Entry>, CacheKeyHash> table_ GUARDED_BY(mu_);
  MemoryLedger ledger_ GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t clock_ GUARDED_BY(mu_) = 0;      // LRU touch counter
  uint64_t sweepMark_ GUARDED_BY(mu_) = 0;  // clock at the last sweep
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t dedups_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
  uint64_t inserts_ GUARDED_BY(mu_) = 0;
  CondVar ready_;  // presat-analyze: lockfree(condition variable, internally synchronized)
};

// One parsed circuit shared by every request that names it. Immutable after
// construction; `system` views `netlist`, so the struct is neither movable
// nor copyable once built (always held by shared_ptr).
struct CircuitContext {
  Netlist netlist;
  uint64_t structuralHash = 0;
  std::optional<TransitionSystem> system;
  // Shared per-circuit Tseitin encoding + preprocessed base formula
  // (preimage/preimage.hpp): built once when the context enters the pool, so
  // every pooled request skips encoding AND preprocessing. Immutable after
  // construction, like the rest of the context. References `system`'s
  // netlist internals — fields of the same immutable context, so the
  // lifetime is tied correctly by construction.
  std::optional<TransitionEncoding> encoding;
};

using CircuitContextPtr = std::shared_ptr<const CircuitContext>;

class ContextPool {
 public:
  // Bounded by context count (circuits are few and hot; byte-precision here
  // buys nothing). LRU eviction; pinned shared_ptrs keep evicted contexts
  // alive until their last request finishes.
  explicit ContextPool(size_t maxContexts);

  // Returns the pooled context for `sourceKey` ("gen:<spec>" or
  // "bench:<hash>"), building it with `build` on first use. `build` returns
  // null on invalid input (reported upstream as bad_request); negative
  // results are not cached.
  CircuitContextPtr resolve(const std::string& sourceKey,
                            const std::function<CircuitContextPtr()>& build);

  size_t entries() const;
  uint64_t reuses() const;

 private:
  const size_t maxContexts_;  // presat-analyze: lockfree(immutable after construction)
  mutable Mutex mu_;
  struct Slot {
    CircuitContextPtr context;
    uint64_t lastTouch = 0;
  };
  std::unordered_map<std::string, Slot> pool_ GUARDED_BY(mu_);
  uint64_t clock_ GUARDED_BY(mu_) = 0;
  uint64_t reuses_ GUARDED_BY(mu_) = 0;
};

}  // namespace presat::serve
