#include "serve/version.hpp"

#include "base/check.hpp"
#include "serve/protocol.hpp"

// Stamped per-source-file by src/CMakeLists.txt at configure time.
#ifndef PRESAT_GIT_HASH
#define PRESAT_GIT_HASH "unknown"
#endif
#ifndef PRESAT_BUILD_TYPE
#define PRESAT_BUILD_TYPE "unknown"
#endif

namespace presat::serve {

std::string buildInfoJson() {
  JsonObjectWriter w;
  w.field("name", "presat");
  w.field("git", PRESAT_GIT_HASH);
  w.field("build_type", PRESAT_BUILD_TYPE);
#if defined(__VERSION__)
  w.field("compiler", __VERSION__);
#else
  w.field("compiler", "unknown");
#endif
  w.field("cxx_standard", static_cast<uint64_t>(__cplusplus));
  w.field("audit", auditLevelName(kAuditLevel));
#if defined(PRESAT_FAULTS)
  w.field("faults", true);
#else
  w.field("faults", false);
#endif
  return w.str();
}

}  // namespace presat::serve
