// Per-request execution for the serve layer: everything between "the request
// parsed as JSON" and "here is the response body".
//
// The daemon's cardinal rule is that CLIENT INPUT MUST NOT ABORT THE
// PROCESS. The library's parsers (bench_io, the generator constructors,
// presat_cli's cube parser) enforce their contracts with PRESAT_CHECK —
// correct for a CLI, fatal for a server. So this layer re-validates every
// client-supplied artifact with non-aborting scanners that accept exactly
// what the underlying builders accept (plus service-hygiene size caps), and
// only then hands the input to the aborting builder.
//
// runPreimage() is the request state machine's EXECUTE step: resolve the
// circuit context, consult the cross-query cache (leader/follower), build a
// per-request Governor from the request budgets plus the request's cancel
// token, run the engine, publish/abandon the cache entry, and hand back a
// CachedCover plus its cache disposition.
#pragma once

#include <string>

#include "govern/budget.hpp"
#include "preimage/preimage.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace presat::serve {

// Service-hygiene caps on client-supplied circuits and budgets. These bound
// what one request can make the daemon chew on; the per-request budgets
// bound how long it chews.
struct SessionLimits {
  int maxGenBits = 32;           // counter/gray/lfsr/shift/accum width cap
  int maxStateBits = 64;         // .bench circuits: DFF count cap
  int maxBenchBytes = 1 << 20;   // .bench text size cap
  int maxBenchLines = 20000;     // .bench line count cap
  int maxJobs = 8;               // clamp on request `jobs`
  uint64_t defaultTimeoutMs = 0; // applied when the request names no deadline
  uint64_t maxCacheablePayload = 1u << 22;  // covers larger than this are not retained
};

// --- Non-aborting validation -----------------------------------------------

// Generator spec ("counter:8", "traffic", ...), mirroring presat_cli's SPEC
// grammar with size caps. On success builds the netlist into *out.
bool buildGeneratorChecked(const std::string& spec, const SessionLimits& limits, Netlist* out,
                           std::string* error);

// Full non-aborting pre-validation of `.bench` text: replicates every
// PRESAT_CHECK the bench_io scanner/builder and Netlist::validate() enforce
// (grammar, gate types, arity, redefinition, undefined signals,
// combinational cycles) so the subsequent parseBenchString cannot abort.
// Errors carry the 1-based .bench line number.
bool validateBenchText(const std::string& text, const SessionLimits& limits, std::string* error);

// Target cube text (LSB-first, '0'/'1'/'x'/'-', one char per state bit).
bool parseTargetCube(const std::string& text, int numStateBits, LitVec* cube, std::string* error);

// Inverse of parseTargetCube for response serialization ('x' for unbound).
std::string cubeToText(const LitVec& cube, int width);

// Method-name lookup over preimageMethodName()'s vocabulary.
bool parsePreimageMethod(const std::string& name, PreimageMethod* method);

// --- Circuit context construction ------------------------------------------

// Validates then builds a shared context for the request's circuit source
// (exactly one of req.gen / req.bench is set — the protocol layer enforced
// that). Returns null with a bad_request message on invalid input.
CircuitContextPtr buildCircuitContext(const ServeRequest& req, const SessionLimits& limits,
                                      std::string* error);

// Pool key for the request's circuit source ("gen:<spec>" or a content hash
// of the bench text) — cheap to compute before any parsing happens.
std::string circuitSourceKey(const ServeRequest& req);

// --- Execution --------------------------------------------------------------

struct ExecResult {
  CachedCover cover;
  const char* cacheDisposition = "off";  // "hit" | "dedup" | "miss" | "off"
  double seconds = 0.0;                  // engine wall time (0 for cache hits)
};

// Runs one preimage request end to end against a resolved circuit context.
// `cancel` is the request's cancellation token (client disconnect / explicit
// cancel op); it is wired into the per-request Budget so the engines observe
// it at their next governor poll. Returns ok() or a bad_request error.
ServeError runPreimage(const ServeRequest& req, const CircuitContextPtr& context,
                       ServeCache& cache, CancelToken* cancel, const SessionLimits& limits,
                       ExecResult* out);

// Serializes a finished request: {"id":...,"status":"ok","outcome":...,
// "complete":...,"width":...,"count":...,"cubes":[...],"cache":...,
// "seconds":...}. Cube order is preserved verbatim from the engine (or the
// cached payload), so a hit is bit-identical to the cold run it reuses.
std::string resultResponse(const ServeRequest& req, const ExecResult& result);

}  // namespace presat::serve
