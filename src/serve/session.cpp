#include "serve/session.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "circuit/bench_io.hpp"
#include "circuit/netlist.hpp"
#include "gen/generators.hpp"
#include "govern/governor.hpp"
#include "preimage/preimage.hpp"

namespace presat::serve {

namespace {

std::string trimWs(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string upperCopy(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

// Strictly-decimal integer in [lo, hi]; rejects the empty string, signs, and
// trailing garbage (unlike atoi, which the CLI can afford).
bool parseBoundedInt(const std::string& s, int lo, int hi, int* out) {
  if (s.empty() || s.size() > 9) return false;
  long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v < lo || v > hi) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

// --- generator specs --------------------------------------------------------

bool buildGeneratorChecked(const std::string& spec, const SessionLimits& limits, Netlist* out,
                           std::string* error) {
  std::string name = spec;
  std::string arg;
  if (size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    arg = spec.substr(colon + 1);
  }
  const bool takesWidth = name == "counter" || name == "gray" || name == "lfsr" ||
                          name == "shift" || name == "accum" || name == "arbiter";
  if (name == "traffic" || name == "lock") {
    if (!arg.empty()) {
      *error = "generator '" + name + "' takes no size argument";
      return false;
    }
    *out = name == "traffic" ? makeTrafficLight() : makeCombinationLock({1, 2, 3}, 2);
    return true;
  }
  if (!takesWidth) {
    *error = "unknown generator spec '" + spec +
             "' (expected counter:N gray:N lfsr:N shift:N arbiter:N accum:N traffic lock)";
    return false;
  }
  // Width bounds mirror the generators' own PRESAT_CHECK contracts, tightened
  // by the service cap so one request can't ask for a 2^60-state circuit.
  int lo = 1;
  int hi = limits.maxGenBits;
  if (name == "lfsr") lo = 2;
  if (name == "arbiter") {
    lo = 2;
    hi = std::min(hi, 8);
  }
  int n = 0;
  if (!parseBoundedInt(arg, lo, hi, &n)) {
    *error = "generator '" + name + "' needs a width in [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "], got '" + arg + "'";
    return false;
  }
  if (name == "counter") *out = makeCounter(n);
  else if (name == "gray") *out = makeGrayCounter(n);
  else if (name == "lfsr") *out = makeLfsr(n);
  else if (name == "shift") *out = makeShiftRegister(n);
  else if (name == "accum") *out = makeAccumulator(n);
  else *out = makeRoundRobinArbiter(n);
  return true;
}

// --- .bench pre-validation --------------------------------------------------

namespace {

// Mirror of bench_io's gate vocabulary; returns false for unknown names.
bool benchGateArity(const std::string& rawName, size_t* lo, size_t* hi) {
  std::string n = upperCopy(rawName);
  *lo = 1;
  *hi = SIZE_MAX;
  if (n == "NOT" || n == "INV" || n == "BUF" || n == "BUFF" || n == "DFF") {
    *lo = *hi = 1;
  } else if (n == "MUX") {
    *lo = *hi = 3;
  } else if (n == "CONST0" || n == "CONST1") {
    *lo = *hi = 0;
  } else if (n != "AND" && n != "OR" && n != "NAND" && n != "NOR" && n != "XOR" && n != "XNOR") {
    return false;
  }
  return true;
}

bool isDffName(const std::string& rawName) { return upperCopy(rawName) == "DFF"; }

struct BenchDef {
  std::vector<std::string> fanins;
  bool isDff = false;
  int line = 0;
};

}  // namespace

bool validateBenchText(const std::string& text, const SessionLimits& limits, std::string* error) {
  auto fail = [error](int lineNo, const std::string& msg) {
    *error = ".bench line " + std::to_string(lineNo) + ": " + msg;
    return false;
  };
  if (text.size() > static_cast<size_t>(limits.maxBenchBytes)) {
    *error = ".bench text exceeds " + std::to_string(limits.maxBenchBytes) + " bytes";
    return false;
  }
  std::istringstream in(text);
  std::map<std::string, int> definedAt;  // signal -> defining line (INPUT or def)
  std::map<std::string, BenchDef> defs;
  std::vector<std::pair<std::string, int>> outputs;
  std::set<std::string> inputs;
  int dffCount = 0;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (lineNo > limits.maxBenchLines) {
      *error = ".bench text exceeds " + std::to_string(limits.maxBenchLines) + " lines";
      return false;
    }
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trimWs(line);
    if (line.empty()) continue;

    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      size_t open = line.find('(');
      size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close <= open) {
        return fail(lineNo, "expected INPUT(...)/OUTPUT(...): " + line);
      }
      std::string kind = upperCopy(trimWs(line.substr(0, open)));
      std::string name = trimWs(line.substr(open + 1, close - open - 1));
      if (name.empty()) return fail(lineNo, "empty signal name");
      if (kind == "INPUT") {
        if (!definedAt.emplace(name, lineNo).second) {
          return fail(lineNo, "redefinition of '" + name + "'");
        }
        inputs.insert(name);
      } else if (kind == "OUTPUT") {
        outputs.emplace_back(name, lineNo);
      } else {
        return fail(lineNo, "unknown directive " + kind);
      }
      continue;
    }

    std::string lhs = trimWs(line.substr(0, eq));
    std::string rhs = trimWs(line.substr(eq + 1));
    if (lhs.empty()) return fail(lineNo, "missing signal name before '='");
    size_t open = rhs.find('(');
    size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close <= open) {
      return fail(lineNo, "expected name = GATE(...): " + line);
    }
    std::string gateName = trimWs(rhs.substr(0, open));
    size_t lo = 0;
    size_t hi = 0;
    if (!benchGateArity(gateName, &lo, &hi)) {
      return fail(lineNo, "unknown gate type '" + gateName + "'");
    }
    BenchDef def;
    def.isDff = isDffName(gateName);
    def.line = lineNo;
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::istringstream as(args);
    std::string arg;
    while (std::getline(as, arg, ',')) {
      arg = trimWs(arg);
      if (!arg.empty()) def.fanins.push_back(arg);
    }
    if (def.fanins.size() < lo || def.fanins.size() > hi) {
      return fail(lineNo, gateName + " gate '" + lhs + "' has " +
                              std::to_string(def.fanins.size()) + " fanins");
    }
    if (!definedAt.emplace(lhs, lineNo).second) {
      return fail(lineNo, "redefinition of '" + lhs + "'");
    }
    if (def.isDff) ++dffCount;
    defs.emplace(lhs, std::move(def));
  }

  if (dffCount == 0) {
    *error = ".bench circuit has no DFFs (no state bits to compute a preimage over)";
    return false;
  }
  if (dffCount > limits.maxStateBits) {
    *error = ".bench circuit has " + std::to_string(dffCount) + " state bits (cap " +
             std::to_string(limits.maxStateBits) + ")";
    return false;
  }

  // Every referenced signal must resolve to an INPUT or a definition.
  auto known = [&](const std::string& name) {
    return inputs.count(name) != 0 || defs.count(name) != 0;
  };
  for (const auto& [name, def] : defs) {
    for (const std::string& f : def.fanins) {
      if (!known(f)) return fail(def.line, "undefined signal '" + f + "'");
    }
  }
  for (const auto& [name, lineAt] : outputs) {
    if (!known(name)) return fail(lineAt, "undefined output signal '" + name + "'");
  }

  // Combinational acyclicity (cycles are only legal through a DFF). Iterative
  // 3-color DFS over combinational definitions; inputs and DFF outputs are
  // terminals.
  std::map<std::string, int> color;  // 0 unseen / 1 on stack / 2 done
  for (const auto& [root, rootDef] : defs) {
    if (rootDef.isDff || color[root] == 2) continue;
    std::vector<std::pair<std::string, size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = 1;
    while (!stack.empty()) {
      auto& [name, next] = stack.back();
      const BenchDef& def = defs.at(name);
      if (next >= def.fanins.size()) {
        color[name] = 2;
        stack.pop_back();
        continue;
      }
      const std::string& f = def.fanins[next++];
      auto it = defs.find(f);
      if (it == defs.end() || it->second.isDff) continue;  // terminal
      int c = color[f];
      if (c == 1) return fail(it->second.line, "combinational cycle through '" + f + "'");
      if (c == 0) {
        color[f] = 1;
        stack.emplace_back(f, 0);
      }
    }
  }
  return true;
}

// --- cubes and methods ------------------------------------------------------

bool parseTargetCube(const std::string& text, int numStateBits, LitVec* cube, std::string* error) {
  if (text.size() != static_cast<size_t>(numStateBits)) {
    *error = "target cube has " + std::to_string(text.size()) + " characters, circuit has " +
             std::to_string(numStateBits) + " state bits";
    return false;
  }
  cube->clear();
  for (int i = 0; i < numStateBits; ++i) {
    char c = text[static_cast<size_t>(i)];
    if (c == '1') {
      cube->push_back(mkLit(i, false));
    } else if (c == '0') {
      cube->push_back(mkLit(i, true));
    } else if (c != 'x' && c != 'X' && c != '-') {
      *error = std::string("bad target cube character '") + c + "' at state bit " +
               std::to_string(i) + " (expected 0, 1, or x)";
      return false;
    }
  }
  return true;
}

std::string cubeToText(const LitVec& cube, int width) {
  std::string s(static_cast<size_t>(width), 'x');
  for (Lit l : cube) {
    if (l.var() >= 0 && l.var() < width) s[static_cast<size_t>(l.var())] = l.sign() ? '0' : '1';
  }
  return s;
}

bool parsePreimageMethod(const std::string& name, PreimageMethod* method) {
  for (PreimageMethod m : kAllPreimageMethods) {
    if (name == preimageMethodName(m)) {
      *method = m;
      return true;
    }
  }
  return false;
}

// --- circuit contexts -------------------------------------------------------

std::string circuitSourceKey(const ServeRequest& req) {
  if (!req.gen.empty()) return "gen:" + req.gen;
  // Content-address the bench text so byte-identical circuits pool together
  // without keeping the full text as a map key.
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : req.bench) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string("bench:") + buf;
}

CircuitContextPtr buildCircuitContext(const ServeRequest& req, const SessionLimits& limits,
                                      std::string* error) {
  auto ctx = std::make_shared<CircuitContext>();
  if (!req.gen.empty()) {
    if (!buildGeneratorChecked(req.gen, limits, &ctx->netlist, error)) return nullptr;
  } else {
    if (!validateBenchText(req.bench, limits, error)) return nullptr;
    ctx->netlist = parseBenchString(req.bench);
  }
  if (ctx->netlist.dffs().empty()) {
    *error = "circuit has no DFFs (no state bits to compute a preimage over)";
    return nullptr;
  }
  ctx->structuralHash = netlistStructuralHash(ctx->netlist);
  // The TransitionSystem holds a pointer into ctx->netlist; the shared_ptr
  // keeps both alive together and the struct is never moved after this.
  ctx->system.emplace(ctx->netlist);
  // Encode + preprocess once per pooled circuit: every request against this
  // context (any CNF engine, any target) reuses the reduced base formula.
  ctx->encoding.emplace(buildTransitionEncoding(*ctx->system));
  return ctx;
}

// --- execution --------------------------------------------------------------

namespace {

uint64_t coverPayloadBytes(const CachedCover& cover) {
  uint64_t b = 0;
  for (const LitVec& cube : cover.cubes) b += cube.size() * sizeof(Lit) + sizeof(LitVec);
  b += cover.cert.size();
  return b;
}

CachedCover runEngine(const ServeRequest& req, const CircuitContext& ctx, PreimageMethod method,
                      const LitVec& targetCube, CancelToken* cancel, const SessionLimits& limits,
                      double* seconds) {
  Budget budget;
  uint64_t timeoutMs = req.timeoutMs != 0 ? req.timeoutMs : limits.defaultTimeoutMs;
  budget.deadlineSeconds = static_cast<double>(timeoutMs) / 1000.0;
  budget.memLimitBytes = req.memLimitMb * (uint64_t{1} << 20);
  budget.conflictLimit = req.conflictLimit;
  budget.cancel = cancel;
  Governor governor(budget);

  PreimageOptions options;
  options.allsat.maxCubes = req.maxCubes;
  options.allsat.project = req.project;
  options.allsat.compress = req.compress;
  options.allsat.parallel.jobs = std::clamp(req.jobs, 1, limits.maxJobs);
  options.allsat.governor = &governor;
  options.encoding = ctx.encoding ? &*ctx.encoding : nullptr;
  options.emitCertificate = req.cert;

  const int width = ctx.system->numStateBits();
  StateSet target = StateSet::fromCube(width, targetCube);
  PreimageResult result = computePreimage(*ctx.system, target, method, options);

  CachedCover cover;
  cover.cubes = std::move(result.states.cubes);
  cover.count = std::move(result.stateCount);
  cover.outcome = result.outcome;
  cover.width = width;
  cover.cert = std::move(result.certificate);
  *seconds = result.seconds;
  return cover;
}

}  // namespace

ServeError runPreimage(const ServeRequest& req, const CircuitContextPtr& context,
                       ServeCache& cache, CancelToken* cancel, const SessionLimits& limits,
                       ExecResult* out) {
  PreimageMethod method = PreimageMethod::kSuccessDriven;
  if (!parsePreimageMethod(req.method, &method)) {
    return {"bad_request", "unknown method '" + req.method + "'", 0};
  }
  const int width = context->system->numStateBits();
  LitVec targetCube;
  std::string cubeError;
  if (!parseTargetCube(req.target, width, &targetCube, &cubeError)) {
    return {"bad_request", cubeError, 0};
  }

  const bool useCache = req.cache && cache.enabled();
  CacheKey key;
  key.circuitHash = context->structuralHash;
  key.target = cubeToText(targetCube, width);  // canonical: '-'/'X' fold to 'x'
  key.method = preimageMethodName(method);
  key.project = req.project;
  key.compress = req.compress;

  if (useCache) {
    CacheLookup lookup = cache.acquire(key, out->cover);
    if (lookup == CacheLookup::kHit || lookup == CacheLookup::kDedup) {
      // Cert-upgrade path: the cached cover came from a request that did not
      // ask for certification, but this one does. Recompute with the emitter
      // on and upgrade the entry so the NEXT cert-requesting hit replays the
      // stored certificate instead of paying the engine again.
      if (req.cert && out->cover.cert.empty()) {
        out->cover = runEngine(req, *context, method, targetCube, cancel, limits, &out->seconds);
        if (coverPayloadBytes(out->cover) <= limits.maxCacheablePayload) {
          cache.refresh(key, out->cover);
        }
      }
      out->cacheDisposition = lookup == CacheLookup::kHit ? "hit" : "dedup";
      return {};
    }
    // Leader: run the engine, then publish (or abandon) no matter what —
    // followers are parked on this key.
    out->cacheDisposition = "miss";
    out->cover = runEngine(req, *context, method, targetCube, cancel, limits, &out->seconds);
    if (coverPayloadBytes(out->cover) > limits.maxCacheablePayload) {
      cache.abandon(key, out->cover);  // too big to retain; followers still served
    } else {
      cache.publish(key, out->cover);
    }
    return {};
  }

  out->cacheDisposition = "off";
  out->cover = runEngine(req, *context, method, targetCube, cancel, limits, &out->seconds);
  return {};
}

std::string resultResponse(const ServeRequest& req, const ExecResult& result) {
  JsonObjectWriter w;
  w.field("id", req.id);
  w.field("status", "ok");
  w.field("outcome", outcomeName(result.cover.outcome));
  w.field("complete", result.cover.outcome == Outcome::kComplete);
  w.field("width", result.cover.width);
  w.field("count", result.cover.count.toDecimal());
  std::string cubes = "[";
  for (size_t i = 0; i < result.cover.cubes.size(); ++i) {
    if (i != 0) cubes += ',';
    cubes += '"';
    cubes += jsonEscape(cubeToText(result.cover.cubes[i], result.cover.width));
    cubes += '"';
  }
  cubes += ']';
  w.fieldRaw("cubes", cubes);
  if (req.cert) w.field("cert", result.cover.cert);
  w.field("cache", result.cacheDisposition);
  w.field("seconds", result.seconds);
  return w.str();
}

}  // namespace presat::serve
