#include "serve/scheduler.hpp"

#include <utility>

#include "base/check.hpp"

namespace presat::serve {

Scheduler::Scheduler(ServicePool& pool, size_t maxQueueDepth)
    : pool_(pool), maxQueueDepth_(maxQueueDepth < 1 ? 1 : maxQueueDepth) {}

bool Scheduler::admit(bool interactive, std::function<void()> job) {
  uint64_t seq = 0;
  {
    MutexLock lock(mu_);
    size_t depth = interactive_.size() + batch_.size();
    queueDepth_.record(depth);
    if (depth >= maxQueueDepth_) {
      ++rejectedOverload_;
      return false;
    }
    Item item;
    item.seq = seq = ++nextSeq_;
    item.job = std::move(job);
    if (interactive) {
      interactive_.push_back(std::move(item));
    } else {
      batch_.push_back(std::move(item));
    }
    ++admitted_;
  }
  if (!pool_.submit([this] { pump(); })) {
    // Pool is stopping: our pump will never run. Roll back exactly our item
    // (by ticket — a pump raced in ahead of us may already have taken it, in
    // which case the job DID run and this admit succeeded after all).
    MutexLock lock(mu_);
    auto eraseSeq = [seq](std::deque<Item>& q) {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->seq == seq) {
          q.erase(it);
          return true;
        }
      }
      return false;
    };
    if (eraseSeq(interactive_) || eraseSeq(batch_)) {
      ++rejectedOverload_;
      --admitted_;
      return false;
    }
  }
  return true;
}

bool Scheduler::takeNext(Item* out) {
  MutexLock lock(mu_);
  std::deque<Item>* first = &interactive_;
  std::deque<Item>* second = &batch_;
  bool firstIsInteractive = true;
  // Alternate classes: prefer the one NOT served last time, falling back to
  // whichever has work.
  if (lastServedInteractive_) {
    std::swap(first, second);
    firstIsInteractive = false;
  }
  std::deque<Item>* pick = !first->empty() ? first : (!second->empty() ? second : nullptr);
  if (pick == nullptr) return false;
  lastServedInteractive_ = (pick == first) ? firstIsInteractive : !firstIsInteractive;
  *out = std::move(pick->front());
  pick->pop_front();
  queueWaitUs_.record(static_cast<uint64_t>(out->waited.seconds() * 1e6));
  return true;
}

void Scheduler::pump() {
  Item item;
  // One pump per admitted job, so the queue can only be empty here if a
  // failed submit() rolled its job back — in that case there is nothing to
  // do and the pump retires quietly.
  if (!takeNext(&item)) return;
  item.job();
}

size_t Scheduler::queued() const {
  MutexLock lock(mu_);
  return interactive_.size() + batch_.size();
}

void Scheduler::exportMetrics(Metrics& m) const {
  MutexLock lock(mu_);
  m.setCounter("serve.admitted", admitted_);
  m.setCounter("serve.rejects.overload", rejectedOverload_);
  m.histogram("serve.queue_depth").merge(queueDepth_);
  m.histogram("serve.queue_us").merge(queueWaitUs_);
}

}  // namespace presat::serve
