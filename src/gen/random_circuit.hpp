// Seeded random sequential netlists — the scale substitute for the larger
// ISCAS89 circuits.
//
// The generator grows a random combinational DAG over the sources (inputs +
// DFF outputs) with an ISCAS-like gate mix (AND/OR/NAND/NOR dominate, a few
// XORs and inverters), then picks the deepest gates as next-state functions.
// Identical parameters + seed always produce the identical netlist.
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"

namespace presat {

struct RandomCircuitParams {
  int numInputs = 4;
  int numDffs = 6;
  int numGates = 40;
  int maxFanin = 3;      // 2..maxFanin fanins for AND/OR-family gates
  uint64_t seed = 1;
  // Fraction (percent) of XOR/XNOR gates; the rest split between the
  // AND/OR families and inverters.
  int xorPercent = 10;
};

Netlist makeRandomSequential(const RandomCircuitParams& params);

}  // namespace presat
