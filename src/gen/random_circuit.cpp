#include "gen/random_circuit.hpp"

#include <string>
#include <vector>

#include "base/log.hpp"
#include "base/rng.hpp"

namespace presat {

Netlist makeRandomSequential(const RandomCircuitParams& params) {
  PRESAT_CHECK(params.numInputs >= 1 && params.numDffs >= 1 && params.numGates >= params.numDffs);
  PRESAT_CHECK(params.maxFanin >= 2);
  Rng rng(params.seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);

  Netlist nl;
  std::vector<NodeId> pool;  // candidate fanin nodes, in creation order
  for (int i = 0; i < params.numInputs; ++i) pool.push_back(nl.addInput("x" + std::to_string(i)));
  std::vector<NodeId> dffs;
  for (int i = 0; i < params.numDffs; ++i) {
    NodeId d = nl.addDff("s" + std::to_string(i));
    dffs.push_back(d);
    pool.push_back(d);
  }

  auto pickFanin = [&]() -> NodeId {
    // Bias toward recent nodes for depth (2:1 recent half vs anywhere).
    if (rng.chance(2, 3) && pool.size() > 2) {
      size_t half = pool.size() / 2;
      return pool[half + rng.below(pool.size() - half)];
    }
    return pool[rng.below(pool.size())];
  };

  for (int g = 0; g < params.numGates; ++g) {
    GateType type;
    uint64_t roll = rng.below(100);
    if (roll < static_cast<uint64_t>(params.xorPercent)) {
      type = rng.flip() ? GateType::kXor : GateType::kXnor;
    } else if (roll < static_cast<uint64_t>(params.xorPercent) + 10) {
      type = GateType::kNot;
    } else {
      static constexpr GateType kFamilies[] = {GateType::kAnd, GateType::kNand, GateType::kOr,
                                               GateType::kNor};
      type = kFamilies[rng.below(4)];
    }
    std::vector<NodeId> fanins;
    if (type == GateType::kNot) {
      fanins.push_back(pickFanin());
    } else {
      int arity = type == GateType::kXor || type == GateType::kXnor
                      ? 2
                      : static_cast<int>(rng.range(2, params.maxFanin));
      for (int k = 0; k < arity; ++k) {
        NodeId f = pickFanin();
        // Avoid duplicate fanins (legal but pointless).
        bool duplicate = false;
        for (NodeId existing : fanins) duplicate = duplicate || existing == f;
        if (!duplicate) fanins.push_back(f);
      }
      if (fanins.size() < 2) fanins.push_back(pool[rng.below(pool.size())]);
      if (fanins.size() < 2 || (fanins.size() == 2 && fanins[0] == fanins[1])) {
        // Degenerate pick (tiny pools): fall back to an inverter.
        type = GateType::kNot;
        fanins.resize(1);
      }
    }
    pool.push_back(nl.addGate(type, std::move(fanins), "g" + std::to_string(g)));
  }

  // Next-state functions: sample from the most recently created gates so the
  // state feedback has depth; guarantee distinct-ish roots when possible.
  size_t tail = std::min<size_t>(pool.size(), static_cast<size_t>(params.numGates));
  for (int i = 0; i < params.numDffs; ++i) {
    NodeId root = pool[pool.size() - 1 - rng.below(tail)];
    nl.connectDffData(dffs[static_cast<size_t>(i)], root);
  }
  // A couple of observable outputs.
  nl.markOutput(pool.back(), "out0");
  if (pool.size() >= 2) nl.markOutput(pool[pool.size() - 2], "out1");
  nl.validate();
  return nl;
}

}  // namespace presat
