// Embedded ISCAS89 benchmark circuits.
//
// Only s27 (the canonical tiny sequential benchmark) is embedded verbatim;
// the larger ISCAS89 circuits are not redistributable in this repository and
// are substituted by the parametric generators in generators.hpp /
// random_circuit.hpp, which match their gate mix and scale (see DESIGN.md).
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace presat {

// ISCAS89 s27: 4 inputs, 3 DFFs, 1 output, 10 gates + 2 inverters.
const std::string& iscasS27Text();
Netlist makeS27();

}  // namespace presat
