// Parametric sequential benchmark circuits.
//
// These play the role of the ISCAS89 suite in the reconstructed evaluation
// (the original files are not redistributable here): deterministic, scalable
// circuits with the gate mix typical of the suite — counters (carry chains),
// gray-code counters (XOR-heavy), LFSRs (shift + feedback), shift registers,
// a round-robin arbiter (priority logic + one-hot state), and a traffic-light
// controller (small FSM with timers).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace presat {

// n-bit binary up-counter. With `withEnable`, input "en" gates the increment;
// output is the carry-out of the increment chain.
Netlist makeCounter(int bits, bool withEnable = true);

// n-bit gray-code counter: decodes to binary, increments, re-encodes.
Netlist makeGrayCounter(int bits);

// Fibonacci LFSR with feedback taps given as a bitmask over state bits
// (tapsMask = 0 picks a default of the two top bits). Input "en" gates the
// shift through per-bit MUXes.
Netlist makeLfsr(int bits, uint64_t tapsMask = 0);

// Serial-in shift register; input "d", output is the last stage.
Netlist makeShiftRegister(int bits);

// Round-robin arbiter over `clients` request inputs with a one-hot pointer
// state (clients in [2, 8]).
Netlist makeRoundRobinArbiter(int clients);

// Classic highway/farm-road traffic-light controller: 2 state bits, 2 timer
// bits, one car sensor input, per-light outputs.
Netlist makeTrafficLight();

// Accumulator: adds the `bits`-wide input to the register every cycle
// (mod 2^bits) through a ripple-carry adder; output is the carry-out.
Netlist makeAccumulator(int bits);

// Combination lock FSM: advances one step per clock when the input symbol
// (bitsPerSymbol input bits) matches the next code digit, resets to the
// start on a mismatch, and sets the "open" output after the full code.
// State: a one-hot-free binary progress counter of ceil(log2(len+1)) bits.
// The classic backward-reachability demo: the opening sequence is exactly
// the counterexample trace from "locked" to "open".
Netlist makeCombinationLock(const std::vector<int>& code, int bitsPerSymbol);

}  // namespace presat
