#include "gen/generators.hpp"

#include <string>
#include <vector>

#include "base/log.hpp"

namespace presat {

namespace {

NodeId andAll(Netlist& nl, const std::vector<NodeId>& terms) {
  PRESAT_CHECK(!terms.empty());
  if (terms.size() == 1) return terms[0];
  return nl.addGate(GateType::kAnd, terms);
}

NodeId orAll(Netlist& nl, const std::vector<NodeId>& terms) {
  PRESAT_CHECK(!terms.empty());
  if (terms.size() == 1) return terms[0];
  return nl.addGate(GateType::kOr, terms);
}

}  // namespace

Netlist makeCounter(int bits, bool withEnable) {
  PRESAT_CHECK(bits >= 1);
  Netlist nl;
  NodeId carry = withEnable ? nl.addInput("en") : nl.addConst(true, "one");
  std::vector<NodeId> state;
  state.reserve(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) state.push_back(nl.addDff("s" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) {
    NodeId sum = nl.mkXor(state[static_cast<size_t>(i)], carry, "sum" + std::to_string(i));
    carry = nl.mkAnd(state[static_cast<size_t>(i)], carry, "c" + std::to_string(i + 1));
    nl.connectDffData(state[static_cast<size_t>(i)], sum);
  }
  nl.markOutput(carry, "cout");
  nl.validate();
  return nl;
}

Netlist makeGrayCounter(int bits) {
  PRESAT_CHECK(bits >= 1);
  Netlist nl;
  std::vector<NodeId> gray;
  for (int i = 0; i < bits; ++i) gray.push_back(nl.addDff("g" + std::to_string(i)));

  // Decode gray -> binary: b_i = g_i ^ b_{i+1}, b_{n-1} = g_{n-1}.
  std::vector<NodeId> binary(static_cast<size_t>(bits));
  binary[static_cast<size_t>(bits - 1)] = gray[static_cast<size_t>(bits - 1)];
  for (int i = bits - 2; i >= 0; --i) {
    binary[static_cast<size_t>(i)] = nl.mkXor(gray[static_cast<size_t>(i)],
                                              binary[static_cast<size_t>(i + 1)],
                                              "b" + std::to_string(i));
  }
  // Increment.
  NodeId carry = nl.addConst(true, "one");
  std::vector<NodeId> nextBinary(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    nextBinary[static_cast<size_t>(i)] =
        nl.mkXor(binary[static_cast<size_t>(i)], carry, "nb" + std::to_string(i));
    carry = nl.mkAnd(binary[static_cast<size_t>(i)], carry, "nc" + std::to_string(i + 1));
  }
  // Re-encode binary -> gray: g_i = b_i ^ b_{i+1}, g_{n-1} = b_{n-1}.
  for (int i = 0; i < bits; ++i) {
    NodeId next = (i == bits - 1)
                      ? nextBinary[static_cast<size_t>(i)]
                      : nl.mkXor(nextBinary[static_cast<size_t>(i)],
                                 nextBinary[static_cast<size_t>(i + 1)], "ng" + std::to_string(i));
    nl.connectDffData(gray[static_cast<size_t>(i)], next);
  }
  nl.markOutput(gray[0], "lsb");
  nl.validate();
  return nl;
}

Netlist makeLfsr(int bits, uint64_t tapsMask) {
  PRESAT_CHECK(bits >= 2 && bits <= 64);
  if (tapsMask == 0) tapsMask = (1ull << (bits - 1)) | (1ull << (bits - 2));
  Netlist nl;
  NodeId en = nl.addInput("en");
  std::vector<NodeId> state;
  for (int i = 0; i < bits; ++i) state.push_back(nl.addDff("s" + std::to_string(i)));

  std::vector<NodeId> taps;
  for (int i = 0; i < bits; ++i) {
    if ((tapsMask >> i) & 1) taps.push_back(state[static_cast<size_t>(i)]);
  }
  PRESAT_CHECK(!taps.empty());
  NodeId feedback = taps.size() == 1 ? taps[0] : nl.addGate(GateType::kXor, taps, "fb");
  for (int i = 0; i < bits; ++i) {
    NodeId shifted = (i == 0) ? feedback : state[static_cast<size_t>(i - 1)];
    NodeId next = nl.mkMux(en, state[static_cast<size_t>(i)], shifted, "n" + std::to_string(i));
    nl.connectDffData(state[static_cast<size_t>(i)], next);
  }
  nl.markOutput(state[static_cast<size_t>(bits - 1)], "out");
  nl.validate();
  return nl;
}

Netlist makeShiftRegister(int bits) {
  PRESAT_CHECK(bits >= 1);
  Netlist nl;
  NodeId d = nl.addInput("d");
  std::vector<NodeId> state;
  for (int i = 0; i < bits; ++i) state.push_back(nl.addDff("s" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) {
    nl.connectDffData(state[static_cast<size_t>(i)],
                      i == 0 ? d : state[static_cast<size_t>(i - 1)]);
  }
  nl.markOutput(state[static_cast<size_t>(bits - 1)], "q");
  nl.validate();
  return nl;
}

Netlist makeRoundRobinArbiter(int clients) {
  PRESAT_CHECK(clients >= 2 && clients <= 8);
  const int n = clients;
  Netlist nl;
  std::vector<NodeId> req;
  for (int i = 0; i < n; ++i) req.push_back(nl.addInput("r" + std::to_string(i)));
  std::vector<NodeId> ptr;  // one-hot pointer to the highest-priority client
  for (int i = 0; i < n; ++i) ptr.push_back(nl.addDff("p" + std::to_string(i)));

  std::vector<NodeId> notReq;
  for (int i = 0; i < n; ++i) notReq.push_back(nl.mkNot(req[static_cast<size_t>(i)]));

  // grant_i = OR over pointer positions s of
  //   ptr_s & req_i & (no requester strictly between s and i in cyclic order)
  std::vector<NodeId> grant;
  for (int i = 0; i < n; ++i) {
    std::vector<NodeId> terms;
    for (int s = 0; s < n; ++s) {
      int gap = (i - s + n) % n;
      std::vector<NodeId> factors{ptr[static_cast<size_t>(s)], req[static_cast<size_t>(i)]};
      for (int e = 0; e < gap; ++e) {
        factors.push_back(notReq[static_cast<size_t>((s + e) % n)]);
      }
      terms.push_back(andAll(nl, factors));
    }
    grant.push_back(orAll(nl, terms));
  }
  NodeId anyGrant = orAll(nl, grant);

  // Pointer advances to the position after the granted client; holds when no
  // request is pending.
  for (int j = 0; j < n; ++j) {
    NodeId rotated = grant[static_cast<size_t>((j - 1 + n) % n)];
    NodeId next = nl.mkMux(anyGrant, ptr[static_cast<size_t>(j)], rotated);
    nl.connectDffData(ptr[static_cast<size_t>(j)], next);
  }
  for (int i = 0; i < n; ++i) nl.markOutput(grant[static_cast<size_t>(i)], "g" + std::to_string(i));
  nl.validate();
  return nl;
}

Netlist makeTrafficLight() {
  Netlist nl;
  NodeId car = nl.addInput("car");  // vehicle waiting on the farm road
  NodeId s1 = nl.addDff("s1");
  NodeId s0 = nl.addDff("s0");  // 00=HG 01=HY 10=FG 11=FY
  NodeId t1 = nl.addDff("t1");
  NodeId t0 = nl.addDff("t0");

  NodeId ns1 = nl.mkNot(s1);
  NodeId ns0 = nl.mkNot(s0);
  NodeId isHG = nl.mkAnd(ns1, ns0, "isHG");
  NodeId isHY = nl.mkAnd(ns1, s0, "isHY");
  NodeId isFG = nl.mkAnd(s1, ns0, "isFG");
  NodeId isFY = nl.mkAnd(s1, s0, "isFY");

  NodeId timerDone = nl.mkAnd(t1, t0, "timerDone");
  NodeId noCar = nl.mkNot(car);

  // HG leaves only when a car waits and the minimum green elapsed; FG leaves
  // when its timer elapses or the farm road empties; yellows leave on timer.
  NodeId advHG = nl.mkAnd(isHG, nl.mkAnd(car, timerDone));
  NodeId advFG = nl.mkAnd(isFG, nl.mkOr(timerDone, noCar));
  NodeId advY = nl.mkAnd(nl.mkOr(isHY, isFY), timerDone);
  NodeId advance = nl.mkOr(advHG, nl.mkOr(advFG, advY), "advance");

  // Two-bit state increment with wraparound.
  NodeId incS0 = nl.mkNot(s0);
  NodeId incS1 = nl.mkXor(s1, s0);
  nl.connectDffData(s0, nl.mkMux(advance, s0, incS0));
  nl.connectDffData(s1, nl.mkMux(advance, s1, incS1));

  // Timer: reset on a state change, otherwise saturating increment.
  NodeId incT0 = nl.mkNot(t0);
  NodeId incT1 = nl.mkXor(t1, t0);
  NodeId heldT0 = nl.mkMux(timerDone, incT0, t0);
  NodeId heldT1 = nl.mkMux(timerDone, incT1, t1);
  NodeId zero = nl.addConst(false, "zero");
  nl.connectDffData(t0, nl.mkMux(advance, heldT0, zero));
  nl.connectDffData(t1, nl.mkMux(advance, heldT1, zero));

  nl.markOutput(isHG, "hwy_green");
  nl.markOutput(isHY, "hwy_yellow");
  nl.markOutput(nl.mkOr(isFG, isFY, "hwy_red"), "hwy_red");
  nl.markOutput(isFG, "farm_green");
  nl.markOutput(isFY, "farm_yellow");
  nl.markOutput(nl.mkOr(isHG, isHY, "farm_red"), "farm_red");
  nl.validate();
  return nl;
}

Netlist makeAccumulator(int bits) {
  PRESAT_CHECK(bits >= 1);
  Netlist nl;
  std::vector<NodeId> in, state;
  for (int i = 0; i < bits; ++i) in.push_back(nl.addInput("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) state.push_back(nl.addDff("s" + std::to_string(i)));
  NodeId carry = nl.addConst(false, "cin");
  for (int i = 0; i < bits; ++i) {
    NodeId si = state[static_cast<size_t>(i)];
    NodeId ai = in[static_cast<size_t>(i)];
    NodeId halfSum = nl.mkXor(si, ai, "h" + std::to_string(i));
    NodeId sum = nl.mkXor(halfSum, carry, "sum" + std::to_string(i));
    // carry-out = (s & a) | (c & (s ^ a))
    NodeId gen = nl.mkAnd(si, ai, "g" + std::to_string(i));
    NodeId prop = nl.mkAnd(halfSum, carry, "p" + std::to_string(i));
    carry = nl.mkOr(gen, prop, "c" + std::to_string(i + 1));
    nl.connectDffData(si, sum);
  }
  nl.markOutput(carry, "cout");
  nl.validate();
  return nl;
}

Netlist makeCombinationLock(const std::vector<int>& code, int bitsPerSymbol) {
  PRESAT_CHECK(!code.empty() && bitsPerSymbol >= 1 && bitsPerSymbol <= 8);
  const int len = static_cast<int>(code.size());
  int stateBits = 1;
  while ((1 << stateBits) < len + 1) ++stateBits;
  for (int digit : code) {
    PRESAT_CHECK(digit >= 0 && digit < (1 << bitsPerSymbol)) << "code digit out of range";
  }

  Netlist nl;
  std::vector<NodeId> in;
  for (int b = 0; b < bitsPerSymbol; ++b) in.push_back(nl.addInput("in" + std::to_string(b)));
  std::vector<NodeId> progress;
  for (int b = 0; b < stateBits; ++b) progress.push_back(nl.addDff("p" + std::to_string(b)));

  std::vector<NodeId> notIn, notProgress;
  for (NodeId i : in) notIn.push_back(nl.mkNot(i));
  for (NodeId p : progress) notProgress.push_back(nl.mkNot(p));

  // eq[i]: progress counter equals i (for i in 0..len).
  auto stateEquals = [&](int value) {
    std::vector<NodeId> terms;
    for (int b = 0; b < stateBits; ++b) {
      terms.push_back(((value >> b) & 1) ? progress[static_cast<size_t>(b)]
                                         : notProgress[static_cast<size_t>(b)]);
    }
    return andAll(nl, terms);
  };
  // match[i]: the input symbol equals code[i].
  auto symbolEquals = [&](int digit) {
    std::vector<NodeId> terms;
    for (int b = 0; b < bitsPerSymbol; ++b) {
      terms.push_back(((digit >> b) & 1) ? in[static_cast<size_t>(b)]
                                         : notIn[static_cast<size_t>(b)]);
    }
    return andAll(nl, terms);
  };

  // cond[i] = (progress == i) & (input == code[i]): advance to i+1. The open
  // state `len` is absorbing. Everything else resets to 0, so the decoded
  // conditions are mutually exclusive and each next-state bit is a plain OR.
  std::vector<NodeId> advanceTo(static_cast<size_t>(len + 1), kNoNode);
  for (int i = 0; i < len; ++i) {
    advanceTo[static_cast<size_t>(i + 1)] =
        nl.mkAnd(stateEquals(i), symbolEquals(code[i]), "adv" + std::to_string(i + 1));
  }
  NodeId open = stateEquals(len);

  for (int b = 0; b < stateBits; ++b) {
    std::vector<NodeId> terms;
    for (int value = 1; value <= len; ++value) {
      if ((value >> b) & 1) terms.push_back(advanceTo[static_cast<size_t>(value)]);
    }
    if ((len >> b) & 1) terms.push_back(open);  // absorbing open state
    NodeId next = terms.empty() ? nl.addConst(false, "zero" + std::to_string(b))
                                : orAll(nl, terms);
    nl.connectDffData(progress[static_cast<size_t>(b)], next);
  }
  nl.markOutput(open, "open");
  nl.validate();
  return nl;
}

}  // namespace presat
