// Solver-internal clause representation, shared between the solver core and
// the structural auditor (src/check/audit_solver.cpp). Not part of the public
// solver API — include only from those two translation units.
#pragma once

#include "sat/solver.hpp"

namespace presat {

// Clause as stored inside the solver. lits[0] and lits[1] are the watched
// literals; for a reason clause, lits[0] is the implied literal.
struct Solver::InternalClause {
  LitVec lits;
  double activity = 0.0;
  bool learnt = false;
};

}  // namespace presat
