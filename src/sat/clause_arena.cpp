#include "sat/clause_arena.hpp"

#include <cstdlib>

namespace presat {

ClauseArena::~ClauseArena() {
  // presat-analyze: raw-alloc(the arena IS the charged allocation layer: it
  // owns one raw word buffer, every clause inside it is charged to the
  // solver's MemoryLedger per clauseBytes, and realloc-based growth is the
  // point — unique_ptr arrays cannot grow in place)
  std::free(data_);
}

ClauseArena& ClauseArena::operator=(ClauseArena&& other) noexcept {
  if (this != &other) {
    // presat-analyze: raw-alloc(releases the buffer this arena owned before
    // stealing the other arena's; see the destructor waiver)
    std::free(data_);
    data_ = other.data_;
    size_ = other.size_;
    cap_ = other.cap_;
    wasted_ = other.wasted_;
    other.data_ = nullptr;
    other.size_ = other.cap_ = other.wasted_ = 0;
  }
  return *this;
}

void ClauseArena::grow(uint32_t minCapacity) {
  uint32_t newCap = cap_ == 0 ? 1024 * 1024 / sizeof(uint32_t) : cap_;
  while (newCap < minCapacity) {
    PRESAT_CHECK(newCap <= (kNullClauseRef >> 1)) << "clause arena exceeds 2^31 words";
    newCap *= 2;
  }
  // presat-analyze: raw-alloc(single growth point of the arena's word buffer;
  // clause bytes inside it are governor-charged by the solver)
  auto* grown = static_cast<uint32_t*>(std::realloc(data_, newCap * sizeof(uint32_t)));
  PRESAT_CHECK(grown != nullptr) << "clause arena allocation failed";
  data_ = grown;
  cap_ = newCap;
}

void ClauseArena::reserveWords(uint32_t words) {
  if (words > cap_) grow(words);
}

ClauseRef ClauseArena::alloc(const Lit* lits, uint32_t size, bool learnt) {
  PRESAT_DCHECK(size >= 1 && size <= kSizeMask);
  uint32_t header = size | (learnt ? kLearntBit : 0);
  uint32_t words = clauseWords(header);
  if (size_ + words > cap_) grow(size_ + words);
  ClauseRef ref = size_;
  size_ += words;
  data_[ref] = header;
  if (learnt) {
    data_[ref + 1] = 0;  // lbd
    data_[ref + 2] = 0;  // activity (0.0f bit pattern)
  }
  std::memcpy(data_ + ref + litOffset(header), lits, size * sizeof(Lit));
  return ref;
}

// presat-analyze: raw-alloc(definition of the arena's own free() member —
// dead-bit marking inside the charged word buffer, no libc involved)
void ClauseArena::free(ClauseRef ref) {
  uint32_t& h = header(ref);
  PRESAT_DCHECK((h & kDeadBit) == 0) << "double free of arena clause";
  h |= kDeadBit;
  wasted_ += clauseWords(h);
}

void ClauseArena::reloc(ClauseRef& ref, ClauseArena& to) {
  uint32_t h = header(ref);
  if ((h & kRelocedBit) != 0) {
    ref = data_[ref + 1];
    return;
  }
  PRESAT_DCHECK((h & kDeadBit) == 0) << "relocating a freed clause";
  ClauseRef moved = to.alloc(lits(ref), h & kSizeMask, (h & kLearntBit) != 0);
  to.header(moved) = h & ~kRelocedBit;  // preserve used bit
  if ((h & kLearntBit) != 0) {
    to.data_[moved + 1] = data_[ref + 1];
    to.data_[moved + 2] = data_[ref + 2];
  }
  header(ref) = h | kRelocedBit;
  data_[ref + 1] = moved;
  ref = moved;
}

}  // namespace presat
