#include "sat/dpll.hpp"

#include "base/log.hpp"
#include "cnf/simplify.hpp"

namespace presat {

namespace {

// Recursive DPLL over a partial assignment with naive unit propagation.
bool dpllRecurse(const Cnf& cnf, std::vector<lbool>& value) {
  // Unit propagation to fixpoint.
  std::vector<Var> propagated;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& c : cnf.clauses()) {
      Lit unassigned = kUndefLit;
      int numUnassigned = 0;
      bool sat = false;
      for (Lit l : c) {
        lbool v = value[static_cast<size_t>(l.var())];
        if (v.isUndef()) {
          ++numUnassigned;
          unassigned = l;
          if (numUnassigned > 1) break;
        } else if (v.isTrue() != l.sign()) {
          sat = true;
          break;
        }
      }
      if (sat || numUnassigned > 1) continue;
      if (numUnassigned == 0) {
        for (Var v : propagated) value[static_cast<size_t>(v)] = l_Undef;
        return false;  // conflict
      }
      value[static_cast<size_t>(unassigned.var())] = lbool(!unassigned.sign());
      propagated.push_back(unassigned.var());
      changed = true;
    }
  }
  // Pick an unassigned variable occurring in an unsatisfied clause.
  Var branch = kNullVar;
  bool allSat = true;
  for (const Clause& c : cnf.clauses()) {
    bool sat = false;
    Lit firstUnassigned = kUndefLit;
    for (Lit l : c) {
      lbool v = value[static_cast<size_t>(l.var())];
      if (v.isUndef()) {
        if (firstUnassigned == kUndefLit) firstUnassigned = l;
      } else if (v.isTrue() != l.sign()) {
        sat = true;
        break;
      }
    }
    if (!sat) {
      allSat = false;
      PRESAT_DCHECK(firstUnassigned != kUndefLit);  // else propagation missed a conflict
      branch = firstUnassigned.var();
      break;
    }
  }
  if (allSat) return true;
  for (bool phase : {true, false}) {
    value[static_cast<size_t>(branch)] = lbool(phase);
    if (dpllRecurse(cnf, value)) return true;
  }
  value[static_cast<size_t>(branch)] = l_Undef;
  for (Var v : propagated) value[static_cast<size_t>(v)] = l_Undef;
  return false;
}

}  // namespace

std::optional<std::vector<bool>> dpllSolve(const Cnf& cnf) {
  std::vector<lbool> value(static_cast<size_t>(cnf.numVars()), l_Undef);
  for (const Clause& c : cnf.clauses()) {
    if (c.empty()) return std::nullopt;
  }
  if (!dpllRecurse(cnf, value)) return std::nullopt;
  std::vector<bool> model(static_cast<size_t>(cnf.numVars()), false);
  for (Var v = 0; v < cnf.numVars(); ++v) {
    model[static_cast<size_t>(v)] = value[static_cast<size_t>(v)].isTrue();
  }
  PRESAT_DCHECK(cnf.evaluate(model));
  return model;
}

bool dpllIsSat(const Cnf& cnf) { return dpllSolve(cnf).has_value(); }

std::set<uint64_t> bruteForceProjectedSolutions(const Cnf& cnf,
                                                const std::vector<Var>& projection) {
  PRESAT_CHECK(projection.size() <= 24) << "brute force projection too large";
  std::set<uint64_t> result;
  for (uint64_t bits = 0; bits < (1ull << projection.size()); ++bits) {
    // Constrain the projection vars and ask DPLL for an extension.
    Cnf constrained = cnf;
    for (size_t i = 0; i < projection.size(); ++i) {
      bool v = (bits >> i) & 1;
      constrained.addUnit(mkLit(projection[i], !v));
    }
    if (dpllIsSat(constrained)) result.insert(bits);
  }
  return result;
}

uint64_t bruteForceModelCount(const Cnf& cnf) {
  PRESAT_CHECK(cnf.numVars() <= 24) << "brute force model count too large";
  uint64_t count = 0;
  std::vector<bool> assignment(static_cast<size_t>(cnf.numVars()), false);
  for (uint64_t bits = 0; bits < (1ull << cnf.numVars()); ++bits) {
    for (Var v = 0; v < cnf.numVars(); ++v)
      assignment[static_cast<size_t>(v)] = (bits >> v) & 1;
    if (cnf.evaluate(assignment)) ++count;
  }
  return count;
}

}  // namespace presat
