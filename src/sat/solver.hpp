// MiniSat-style CDCL SAT solver.
//
// Architecture: two-watched-literal propagation, EVSIDS variable activities
// with a heap-ordered decision queue, phase saving with occurrence-derived
// polarity priors, first-UIP conflict analysis with clause minimization,
// Luby restarts, and LBD-tiered learnt clause retention (glue clauses are
// immortal, high-LBD clauses age out unless recently used). Clauses live in a
// compacting 32-bit-reference arena (sat/clause_arena.hpp) instead of
// per-clause heap allocations. The solver is incremental: clauses can be
// added between solve() calls, and solve() accepts assumption literals —
// both are load-bearing for the blocking-clause all-SAT baselines, which add
// one clause per enumerated solution and re-solve.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.hpp"
#include "base/types.hpp"
#include "cnf/cnf.hpp"
#include "govern/governor.hpp"
#include "sat/clause_arena.hpp"

namespace presat {

class AuditResult;
class ProofLog;
enum class SolverCorruption : int;

struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learntClauses = 0;
  uint64_t deletedClauses = 0;
  uint64_t reduceDBs = 0;
  uint64_t minimizedLits = 0;
  // Stop-the-world arena compactions (reduceDB-triggered garbage collection).
  uint64_t arenaCompactions = 0;
  // Chronological enumeration: pseudo-decision flips taken.
  uint64_t flips = 0;
  // High-water mark of the stored clause database (original + learnt). Under
  // blocking-clause all-SAT this grows with the solution count; under the
  // chronological engine it must stay flat — that is the observable claim.
  uint64_t dbClausesPeak = 0;
};

class Solver {
 public:
  Solver();
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // --- problem construction -------------------------------------------------
  Var newVar();
  int numVars() const { return static_cast<int>(assigns_.size()); }
  // Adds a clause; returns false if the solver became trivially UNSAT.
  bool addClause(const LitVec& lits);
  bool addClause(std::initializer_list<Lit> lits) { return addClause(LitVec(lits)); }
  // Loads every clause of a CNF (creating variables as needed).
  bool addCnf(const Cnf& cnf);
  bool okay() const { return ok_; }

  // --- solving ---------------------------------------------------------------
  // Returns l_True (SAT, model() valid), l_False (UNSAT under assumptions),
  // or l_Undef if the conflict budget was exhausted.
  lbool solve() { return solve({}); }
  lbool solve(const LitVec& assumptions);

  // Model of the last successful solve; indexed by variable. Variables
  // excluded from decisions (setDecisionVar(v, false)) that the search never
  // assigned stay l_Undef in model(); modelValue() refuses to read those
  // instead of silently treating them as false.
  const std::vector<lbool>& model() const { return model_; }
  bool modelValue(Var v) const {
    PRESAT_CHECK(v >= 0 && static_cast<size_t>(v) < model_.size())
        << "modelValue(x" << v << ") without a model (last solve did not return l_True?)";
    lbool value = model_[static_cast<size_t>(v)];
    PRESAT_CHECK(!value.isUndef())
        << "modelValue(x" << v << ") read an unassigned model entry";
    return value.isTrue();
  }
  bool modelValue(Lit l) const { return modelValue(l.var()) != l.sign(); }

  // Subset of the assumptions responsible for UNSAT (valid after solve()
  // returned l_False with assumptions); literals appear as passed in.
  const LitVec& conflictCore() const { return conflictCore_; }

  // --- chronological enumeration ---------------------------------------------
  // All-solutions mode without blocking clauses (Spallitta/Sebastiani/Biere
  // style): the caller starts a session over a projection scope, repeatedly
  // asks for the next model, and after each model flips the deepest
  // scope-prefix decision as a reason-less pseudo-decision instead of adding
  // a blocking clause. Between models the trail is NOT cancelled — flipped
  // levels act as a barrier that conflict-driven backjumping never crosses
  // (asserting literals are enqueued at the clamped level; their reasons only
  // mention shallower literals, so implication-graph invariants still hold).
  //
  // Session protocol:
  //   beginEnumeration(scope);
  //   while (enumerateNextModel() == l_True) {
  //     ... read model()/levelOf()/scopePrefixLength() and emit a cube ...
  //     if (!flipToNextRegion(maxLevel)) break;   // space exhausted
  //   }
  //   endEnumeration();
  //
  // During a session scope variables are decided before all others, so the
  // decision levels 1..scopePrefixLength() form a clean scope prefix and
  // every scope variable is stamped at a level inside it.
  //
  // `projectedWitness` turns on projected-native enumeration: once every
  // scope variable is assigned and the current PARTIAL assignment already
  // satisfies every original clause, enumerateNextModel() stops and returns
  // the partial model (unassigned non-scope variables stay l_Undef) instead
  // of materialising one arbitrary completion per region. The assigned
  // non-scope literals are an existential witness — every completion of the
  // scope prefix extends to a total model — so the caller may emit the scope
  // prefix as a projected cube without ever deciding the remaining
  // input/aux variables.
  void beginEnumeration(const std::vector<Var>& scope, bool projectedWitness = false);
  // l_True: model() is valid and the trail is kept. l_False: space exhausted
  // (or root UNSAT). l_Undef: conflict budget exhausted (partial result).
  lbool enumerateNextModel();
  // Flips the deepest unflipped decision at a level <= maxLevel. Returns
  // false when every level is already flipped — enumeration is complete.
  bool flipToNextRegion(int maxLevel);
  void endEnumeration();
  bool enumerating() const { return enumerating_; }

  // Decision level a variable is currently stamped at (valid while assigned).
  int levelOf(Var v) const { return level_[static_cast<size_t>(v)]; }
  int currentDecisionLevel() const { return decisionLevel(); }
  // Length k of the scope-decision prefix: decisions 1..k are scope
  // variables. Only meaningful during an enumeration session.
  int scopePrefixLength() const;
  // Deepest decision level whose decision is a flip (0 if none).
  int deepestFlippedLevel() const;

  // --- knobs ------------------------------------------------------------------
  // 0 disables the budget. The budget applies per solve() call.
  void setConflictBudget(uint64_t maxConflicts) { conflictBudget_ = maxConflicts; }
  // Attaches a resource governor (may be null to detach): the search loops
  // poll it once per iteration and return l_Undef when it trips, conflicts
  // are reported toward Budget::conflictLimit, and the clause arena's bytes
  // are charged against the tracked-byte pool. The governor must outlive the
  // solver (or be detached first).
  void setGovernor(Governor* governor);
  // Preferred phase when the variable is first decided (phase saving then
  // takes over). Overrides the occurrence-count polarity prior.
  void setPolarity(Var v, bool phase) {
    polarity_[static_cast<size_t>(v)] = phase;
    polaritySeeded_[static_cast<size_t>(v)] = 1;
  }
  // Excludes/includes a variable from decision making.
  void setDecisionVar(Var v, bool decidable);
  void setRandomSeed(uint64_t seed) { randState_ = seed | 1; }
  // Fraction [0,1) of decisions taken randomly (diversification in benches).
  void setRandomDecisionFreq(double f) { randomFreq_ = f; }
  // Attaches a DRAT-style proof log (may be null to detach; must outlive the
  // solver or be detached first). The log records learnt/deleted clauses,
  // the flip clauses closing each enumeration region, and the empty clause
  // on UNSAT, so an external checker can replay the run's terminations. A
  // null log keeps every search hot path branch-only.
  void setProofLog(ProofLog* log) { proofLog_ = log; }

  const SolverStats& stats() const { return stats_; }
  size_t numLearnts() const { return numLearnts_; }
  size_t numOriginalClauses() const { return numOriginal_; }

  // Current assignment value during/after search (level-0 forced values
  // persist between solves).
  lbool value(Var v) const { return assigns_[static_cast<size_t>(v)]; }
  lbool value(Lit l) const { return assigns_[static_cast<size_t>(l.var())] ^ l.sign(); }

 private:
  struct Watcher {
    ClauseRef clause;
    Lit blocker;
  };

  // Deep structural validation (src/check/audit_solver.cpp) and its
  // test-only corruption hooks need read/write access to the internals.
  friend AuditResult auditSolver(const Solver& solver);
  friend void corruptSolverForTest(Solver& solver, SolverCorruption kind);
  friend void compactSolverForTest(Solver& solver);

  // -- trail / assignment
  void newDecisionLevel() {
    trailLim_.push_back(static_cast<int>(trail_.size()));
    levelFlipped_.push_back(0);
  }
  int decisionLevel() const { return static_cast<int>(trailLim_.size()); }
  void uncheckedEnqueue(Lit l, ClauseRef from);
  ClauseRef propagate();
  void cancelUntil(int level);

  // -- conflict analysis
  void analyze(ClauseRef conflict, LitVec& outLearnt, int& outBtLevel);
  bool litRedundant(Lit l, uint32_t abstractLevels);
  void analyzeFinal(Lit p, LitVec& outCore);
  // Literal block distance: number of distinct non-zero decision levels in
  // the clause under the current assignment.
  uint32_t computeLbd(const LitVec& lits);

  // -- search
  Lit pickBranchLit();
  lbool search(int64_t conflictsBeforeRestart);
  void reduceDB();
  void removeSatisfiedAtLevelZero();
  // Phase to decide `v` with: saved phase once the search (or setPolarity)
  // stamped one, else the polarity seen more often in the original clauses.
  bool decisionPhase(Var v) const {
    size_t idx = static_cast<size_t>(v);
    if (polaritySeeded_[idx]) return polarity_[idx];
    return occPos_[idx] > occNeg_[idx];
  }
  // Allocates + attaches a learnt clause, stamps its LBD, and enqueues its
  // asserting literal. Shared by search() and enumerateNextModel().
  ClauseRef learnClause(const LitVec& learnt);

  // -- activities
  void varBumpActivity(Var v);
  void varDecayActivity() { varInc_ /= varDecay_; }
  void claBumpActivity(ClauseRef c);
  void claDecayActivity() { claInc_ /= claDecay_; }
  void insertVarOrder(Var v);

  // -- clause plumbing
  ClauseRef allocClause(const LitVec& lits, bool learnt);
  void attachClause(ClauseRef c);
  void detachClause(ClauseRef c);
  // Detaches, uncharges, and frees one clause in the arena. The caller is
  // responsible for sweeping clauses_ afterwards (sweepDeadClauses) — the
  // batch removal keeps reduceDB linear in the database size.
  void removeClause(ClauseRef c);
  // Drops freed refs from clauses_, preserving insertion order (the order is
  // the deterministic tie-break of the LBD retention sort).
  void sweepDeadClauses();
  bool locked(ClauseRef c) const;
  // Stop-the-world arena compaction once a quarter of the arena is waste.
  // Every live ref (clauses_, watches, reasons, enumeration unit reasons) is
  // relocated; only call from quiescent points with no ClauseRef locals held.
  void maybeGarbageCollect();
  void garbageCollect();

  // -- decision heap (binary max-heap on activity)
  void heapPercolateUp(int pos);
  void heapPercolateDown(int pos);
  bool heapContains(Var v) const { return heapIndex_[static_cast<size_t>(v)] >= 0; }
  void heapInsert(Var v);
  Var heapRemoveMax();

  double randomReal();

  // state
  bool ok_ = true;
  ClauseArena arena_;               // clause storage (original + learnt)
  std::vector<ClauseRef> clauses_;  // insertion-ordered refs into arena_
  size_t numOriginal_ = 0;
  size_t numLearnts_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit code
  std::vector<lbool> assigns_;                 // per var
  std::vector<bool> polarity_;                 // saved phase, per var
  std::vector<uint8_t> polaritySeeded_;        // per var; saved phase valid
  std::vector<uint32_t> occPos_;               // per var; positive occurrences
  std::vector<uint32_t> occNeg_;               // per var; negative occurrences
  std::vector<bool> decision_;                 // decidable, per var
  std::vector<ClauseRef> reason_;              // per var; kNullClauseRef if none
  std::vector<int> level_;                     // per var

  std::vector<Lit> trail_;
  std::vector<int> trailLim_;
  int qhead_ = 0;

  // True when the current partial assignment covers the scope and already
  // satisfies every original clause (the projected early-stop predicate).
  bool projectedWitnessComplete() const;

  // -- chronological-enumeration session state
  bool enumerating_ = false;
  bool enumExhausted_ = false;
  bool enumProjected_ = false;  // projected-witness early stop enabled
  std::vector<uint8_t> inScope_;   // per var; session scope membership
  std::vector<Var> scopeVars_;     // session scope, caller order
  // Parallel to trailLim_: 1 iff that level's decision is a flipped
  // pseudo-decision. Maintained unconditionally (trivially all-0 outside
  // enumeration sessions).
  std::vector<uint8_t> levelFlipped_;
  // Reason clauses for unit learnts asserted above level 0: a clamped
  // backjump cannot reach level 0, so the unit is enqueued at the barrier
  // level with a synthetic size-1 arena clause held here. These never enter
  // clauses_ (the clause DB stores only size >= 2) and die with the session.
  // They are first-class compaction roots: garbageCollect() relocates them
  // exactly like watch/reason refs.
  std::vector<ClauseRef> enumUnitReasons_;

  // activities
  std::vector<double> activity_;
  double varInc_ = 1.0;
  double varDecay_ = 0.95;
  double claInc_ = 1.0;
  double claDecay_ = 0.999;

  // decision heap
  std::vector<Var> heap_;
  std::vector<int> heapIndex_;  // per var; -1 if absent

  // analyze scratch
  std::vector<uint8_t> seen_;
  std::vector<Lit> analyzeToClear_;
  std::vector<Lit> analyzeStack_;
  std::vector<uint64_t> lbdStamp_;  // per level; generation stamps
  uint64_t lbdStampGen_ = 0;

  // solve state
  LitVec assumptions_;
  LitVec conflictCore_;
  std::vector<lbool> model_;
  uint64_t conflictBudget_ = 0;
  uint64_t budgetLimit_ = 0;
  double maxLearnts_ = 0;
  double learntGrowth_ = 1.1;
  // Conflict count at which the next cadence-triggered reduceDB fires
  // (re-armed by reduceDB itself; reset per solve()/enumeration call).
  uint64_t nextReduceConflicts_ = 0;
  int lastSimplifyTrail_ = -1;

  uint64_t randState_ = 91648253;
  double randomFreq_ = 0.0;

  // Resource governance (null = ungoverned; the hot paths stay branch-only).
  Governor* governor_ = nullptr;
  MemoryLedger arenaLedger_;  // clause-arena bytes charged to the governor

  // DRAT-style proof logging (null = off; the hot paths stay branch-only).
  ProofLog* proofLog_ = nullptr;

  SolverStats stats_;
};

}  // namespace presat
