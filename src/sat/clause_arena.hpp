// Arena clause storage for the CDCL solver.
//
// Clauses live in one contiguous word array and are addressed by 32-bit word
// offsets (ClauseRef) instead of pointers. This halves the watcher size,
// makes clause headers and literals cache-adjacent, and allows stop-the-world
// compaction: freed clauses only mark their span as wasted, and when the
// waste fraction crosses a threshold the solver relocates every live clause
// into a fresh arena (MiniSat RegionAllocator style, with forwarding refs so
// multiply-referenced clauses relocate exactly once).
//
// Layout per clause (32-bit words):
//
//   [header] ( [lbd] [activity] )  [lit 0] [lit 1] ... [lit size-1]
//              \__ learnt only __/
//
//   header bits 0..27  size (literal count)
//   header bit  28     learnt
//   header bit  29     used   — touched by conflict analysis since the last
//                               reduceDB sweep (second-chance retention)
//   header bit  30     reloced — word 1 holds the forwarding ClauseRef
//   header bit  31     dead   — freed; the span is wasted until compaction
//
// The arena does NOT charge a MemoryLedger itself: the solver charges
// clauseBytes(ref) per live clause on alloc/free, exactly as the previous
// per-clause heap allocation did, so the governor's tracked-byte pool sees
// the same live-clause accounting across the representation change.
#pragma once

#include <cstdint>
#include <cstring>

#include "base/check.hpp"
#include "base/types.hpp"

namespace presat {

using ClauseRef = uint32_t;
constexpr ClauseRef kNullClauseRef = 0xFFFFFFFFu;

class ClauseArena {
 public:
  ClauseArena() = default;
  ~ClauseArena();

  ClauseArena(const ClauseArena&) = delete;
  ClauseArena& operator=(const ClauseArena&) = delete;
  ClauseArena(ClauseArena&& other) noexcept { *this = static_cast<ClauseArena&&>(other); }
  ClauseArena& operator=(ClauseArena&& other) noexcept;

  // Allocates a clause holding `size` literals. LBD and activity start at 0;
  // the caller stamps them after allocation.
  ClauseRef alloc(const Lit* lits, uint32_t size, bool learnt);

  // Marks the clause dead and its span wasted. The header stays readable
  // (size/learnt/dead) until the next compaction, which is what lets callers
  // batch-sweep their ref lists after a bulk free.
  // presat-analyze: raw-alloc(declaration of the arena's own free() member —
  // it marks a span dead inside the charged word buffer, no libc involved)
  void free(ClauseRef ref);

  // Relocates the clause behind `ref` into `to` (first visit copies, later
  // visits follow the forwarding ref) and rewrites `ref` in place.
  void reloc(ClauseRef& ref, ClauseArena& to);

  // Pre-sizes the backing store (words). Used by compaction to build the
  // target arena in one allocation.
  void reserveWords(uint32_t words);

  uint32_t size(ClauseRef r) const { return header(r) & kSizeMask; }
  bool learnt(ClauseRef r) const { return (header(r) & kLearntBit) != 0; }
  bool dead(ClauseRef r) const { return (header(r) & kDeadBit) != 0; }

  bool used(ClauseRef r) const { return (header(r) & kUsedBit) != 0; }
  void setUsed(ClauseRef r, bool on) {
    if (on) {
      header(r) |= kUsedBit;
    } else {
      header(r) &= ~kUsedBit;
    }
  }

  uint32_t lbd(ClauseRef r) const {
    PRESAT_DCHECK(learnt(r));
    return data_[r + 1];
  }
  void setLbd(ClauseRef r, uint32_t lbd) {
    PRESAT_DCHECK(learnt(r));
    data_[r + 1] = lbd;
  }

  float activity(ClauseRef r) const {
    PRESAT_DCHECK(learnt(r));
    float a;
    std::memcpy(&a, &data_[r + 2], sizeof(a));
    return a;
  }
  void setActivity(ClauseRef r, float a) {
    PRESAT_DCHECK(learnt(r));
    std::memcpy(&data_[r + 2], &a, sizeof(a));
  }

  Lit* lits(ClauseRef r) { return reinterpret_cast<Lit*>(data_ + r + litOffset(header(r))); }
  const Lit* lits(ClauseRef r) const {
    return reinterpret_cast<const Lit*>(data_ + r + litOffset(header(r)));
  }
  Lit lit(ClauseRef r, uint32_t i) const { return lits(r)[i]; }

  // Resident bytes of one clause — the unit the solver charges against the
  // governor's tracked-byte pool.
  uint64_t clauseBytes(ClauseRef r) const {
    return static_cast<uint64_t>(clauseWords(header(r))) * sizeof(uint32_t);
  }

  uint32_t sizeWords() const { return size_; }
  uint32_t wastedWords() const { return wasted_; }

 private:
  static constexpr uint32_t kSizeMask = (1u << 28) - 1;
  static constexpr uint32_t kLearntBit = 1u << 28;
  static constexpr uint32_t kUsedBit = 1u << 29;
  static constexpr uint32_t kRelocedBit = 1u << 30;
  static constexpr uint32_t kDeadBit = 1u << 31;

  static uint32_t litOffset(uint32_t header) { return (header & kLearntBit) != 0 ? 3 : 1; }
  static uint32_t clauseWords(uint32_t header) {
    return litOffset(header) + (header & kSizeMask);
  }

  uint32_t& header(ClauseRef r) {
    PRESAT_DCHECK(r < size_);
    return data_[r];
  }
  uint32_t header(ClauseRef r) const {
    PRESAT_DCHECK(r < size_);
    return data_[r];
  }

  void grow(uint32_t minCapacity);

  uint32_t* data_ = nullptr;
  uint32_t size_ = 0;    // words in use
  uint32_t cap_ = 0;     // words allocated
  uint32_t wasted_ = 0;  // words behind dead clauses
};

}  // namespace presat
