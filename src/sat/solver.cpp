#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "govern/faults.hpp"
#include "sat/proof.hpp"

namespace presat {

namespace {

// Finite-subsequence generator for Luby restarts (MiniSat's formulation).
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

constexpr double kRestartBase = 100.0;

// Learnt clauses with LBD at or below this are "glue": kept forever, like
// binaries. Two is the classic Glucose threshold — a glue clause bridges
// exactly one pair of decision levels.
constexpr uint32_t kGlueLbd = 2;

// Conflict-cadence reduceDB schedule (Glucose style): the first sweep after
// this many conflicts in a call, each subsequent interval stretched by the
// increment. The size trigger (maxLearnts_) alone is not enough — its
// per-restart growth outruns the Luby schedule on long single calls, so
// without a cadence a hard solve would never reduce at all.
constexpr uint64_t kReduceDBFirst = 2000;
constexpr uint64_t kReduceDBInc = 300;

}  // namespace

Solver::Solver() = default;
Solver::~Solver() = default;

// ---------------------------------------------------------------------------
// Problem construction
// ---------------------------------------------------------------------------

Var Solver::newVar() {
  Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(l_Undef);
  polarity_.push_back(false);
  polaritySeeded_.push_back(0);
  occPos_.push_back(0);
  occNeg_.push_back(0);
  decision_.push_back(true);
  reason_.push_back(kNullClauseRef);
  level_.push_back(0);
  activity_.push_back(0.0);
  heapIndex_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();  // positive literal
  watches_.emplace_back();  // negative literal
  heapInsert(v);
  return v;
}

void Solver::setDecisionVar(Var v, bool decidable) {
  decision_[static_cast<size_t>(v)] = decidable;
  if (decidable && !heapContains(v)) heapInsert(v);
}

bool Solver::addClause(const LitVec& lits) {
  PRESAT_CHECK(decisionLevel() == 0) << "clauses may only be added at level 0";
  if (!ok_) return false;

  LitVec c = lits;
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  LitVec cleaned;
  for (size_t i = 0; i < c.size(); ++i) {
    PRESAT_CHECK(c[i].var() >= 0 && c[i].var() < numVars()) << "unknown variable in clause";
    if (i + 1 < c.size() && c[i].var() == c[i + 1].var()) return true;  // tautology
    lbool v = value(c[i]);
    if (v.isTrue()) return true;  // already satisfied at level 0
    if (!v.isFalse()) cleaned.push_back(c[i]);
  }

  // Occurrence-count polarity priors: decide a fresh variable toward the
  // polarity its clauses mention more often (phase saving takes over once
  // the search has assigned it at least once).
  for (Lit l : cleaned) {
    if (l.sign()) {
      ++occNeg_[static_cast<size_t>(l.var())];
    } else {
      ++occPos_[static_cast<size_t>(l.var())];
    }
  }

  if (cleaned.empty()) {
    ok_ = false;
    // RUP: every literal of the added clause is already false at level 0.
    if (proofLog_ != nullptr) proofLog_->addEmpty();
    return false;
  }
  if (cleaned.size() == 1) {
    uncheckedEnqueue(cleaned[0], kNullClauseRef);
    ok_ = (propagate() == kNullClauseRef);
    if (!ok_ && proofLog_ != nullptr) proofLog_->addEmpty();
    return ok_;
  }
  ClauseRef clause = allocClause(cleaned, /*learnt=*/false);
  attachClause(clause);
  return true;
}

bool Solver::addCnf(const Cnf& cnf) {
  while (numVars() < cnf.numVars()) newVar();
  for (const Clause& c : cnf.clauses()) {
    if (!addClause(c)) return false;
  }
  return true;
}

ClauseRef Solver::allocClause(const LitVec& lits, bool learnt) {
  ClauseRef clause = arena_.alloc(lits.data(), static_cast<uint32_t>(lits.size()), learnt);
  clauses_.push_back(clause);
  if (governor_ != nullptr) {
    arenaLedger_.charge(arena_.clauseBytes(clause));
    // Injected allocation failure: modeled as hitting the memory ceiling —
    // the trip latches and the search unwinds at its next poll.
    if (faults::maybeFail("sat.alloc")) governor_->trip(Outcome::kMemory);
  }
  if (learnt) {
    ++numLearnts_;
    ++stats_.learntClauses;
  } else {
    ++numOriginal_;
  }
  stats_.dbClausesPeak = std::max<uint64_t>(stats_.dbClausesPeak, clauses_.size());
  return clause;
}

void Solver::attachClause(ClauseRef c) {
  PRESAT_DCHECK(arena_.size(c) >= 2);
  const Lit* lits = arena_.lits(c);
  watches_[static_cast<size_t>((~lits[0]).code())].push_back({c, lits[1]});
  watches_[static_cast<size_t>((~lits[1]).code())].push_back({c, lits[0]});
}

void Solver::detachClause(ClauseRef c) {
  const Lit* lits = arena_.lits(c);
  for (int w = 0; w < 2; ++w) {
    auto& list = watches_[static_cast<size_t>((~lits[w]).code())];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].clause == c) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::locked(ClauseRef c) const {
  Lit first = arena_.lit(c, 0);
  return reason_[static_cast<size_t>(first.var())] == c && value(first).isTrue();
}

void Solver::setGovernor(Governor* governor) {
  governor_ = governor;
  arenaLedger_.attach(governor);
  if (governor != nullptr) {
    // Clauses added before attach (the original problem) join the pool too,
    // so the ceiling covers the whole arena, not just post-attach growth.
    for (ClauseRef c : clauses_) arenaLedger_.charge(arena_.clauseBytes(c));
  }
}

void Solver::removeClause(ClauseRef c) {
  if (governor_ != nullptr) arenaLedger_.release(arena_.clauseBytes(c));
  detachClause(c);
  if (locked(c)) reason_[static_cast<size_t>(arena_.lit(c, 0).var())] = kNullClauseRef;
  if (arena_.learnt(c)) {
    if (proofLog_ != nullptr) proofLog_->deleteClause(arena_.lits(c), arena_.size(c));
    --numLearnts_;
    ++stats_.deletedClauses;
  } else {
    --numOriginal_;
  }
  arena_.free(c);
}

void Solver::sweepDeadClauses() {
  size_t j = 0;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (!arena_.dead(clauses_[i])) clauses_[j++] = clauses_[i];
  }
  clauses_.resize(j);
}

void Solver::maybeGarbageCollect() {
  // A quarter of the arena behind freed clauses triggers compaction — rare
  // enough to amortize, frequent enough that the resident set tracks the
  // live clause database instead of its high-water mark.
  if (arena_.wastedWords() * 4 > arena_.sizeWords()) garbageCollect();
}

void Solver::garbageCollect() {
  ++stats_.arenaCompactions;
  // Injected compaction failure: modeled as hitting the memory ceiling. The
  // compaction itself still completes (the arena stays consistent); the trip
  // latches and the search unwinds at its next governor poll.
  if (faults::maybeFail("sat.arena.compact") && governor_ != nullptr) {
    governor_->trip(Outcome::kMemory);
  }
  ClauseArena to;
  to.reserveWords(arena_.sizeWords() - arena_.wastedWords());
  // clauses_ relocates first so the new arena preserves insertion order —
  // together with the index tie-break in reduceDB this keeps every retention
  // decision independent of when compactions happen.
  for (ClauseRef& c : clauses_) arena_.reloc(c, to);
  for (ClauseRef& c : enumUnitReasons_) arena_.reloc(c, to);
  for (auto& list : watches_) {
    for (Watcher& w : list) arena_.reloc(w.clause, to);
  }
  for (ClauseRef& r : reason_) {
    if (r != kNullClauseRef) arena_.reloc(r, to);
  }
  arena_ = std::move(to);
}

// ---------------------------------------------------------------------------
// Trail & propagation
// ---------------------------------------------------------------------------

void Solver::uncheckedEnqueue(Lit l, ClauseRef from) {
  size_t v = static_cast<size_t>(l.var());
  PRESAT_DCHECK(assigns_[v].isUndef());
  assigns_[v] = lbool(!l.sign());
  level_[v] = decisionLevel();
  reason_[v] = from;
  trail_.push_back(l);
}

ClauseRef Solver::propagate() {
  ClauseRef conflict = kNullClauseRef;
  while (qhead_ < static_cast<int>(trail_.size())) {
    Lit p = trail_[static_cast<size_t>(qhead_++)];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<size_t>(p.code())];
    size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker).isTrue()) {
        ws[j++] = ws[i++];
        continue;
      }
      ClauseRef cref = w.clause;
      Lit* lits = arena_.lits(cref);
      ++i;
      Lit falseLit = ~p;
      if (lits[0] == falseLit) std::swap(lits[0], lits[1]);
      PRESAT_DCHECK(lits[1] == falseLit);
      Lit first = lits[0];
      Watcher keep{cref, first};
      if (first != w.blocker && value(first).isTrue()) {
        ws[j++] = keep;
        continue;
      }
      // Find a new literal to watch.
      const uint32_t size = arena_.size(cref);
      bool rewatched = false;
      for (uint32_t k = 2; k < size; ++k) {
        if (!value(lits[k]).isFalse()) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<size_t>((~lits[1]).code())].push_back(keep);
          rewatched = true;
          break;
        }
      }
      if (rewatched) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = keep;
      if (value(first).isFalse()) {
        conflict = cref;
        qhead_ = static_cast<int>(trail_.size());
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(first, cref);
      }
    }
    ws.resize(j);
    if (conflict != kNullClauseRef) break;
  }
  return conflict;
}

void Solver::cancelUntil(int targetLevel) {
  if (decisionLevel() <= targetLevel) return;
  int bound = trailLim_[static_cast<size_t>(targetLevel)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    size_t v = static_cast<size_t>(trail_[static_cast<size_t>(i)].var());
    polarity_[v] = assigns_[v].isTrue();  // phase saving
    polaritySeeded_[v] = 1;
    assigns_[v] = l_Undef;
    reason_[v] = kNullClauseRef;
    insertVarOrder(static_cast<Var>(v));
  }
  trail_.resize(static_cast<size_t>(bound));
  trailLim_.resize(static_cast<size_t>(targetLevel));
  levelFlipped_.resize(static_cast<size_t>(targetLevel));
  qhead_ = bound;
}

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

uint32_t Solver::computeLbd(const LitVec& lits) {
  ++lbdStampGen_;
  uint32_t distinct = 0;
  for (Lit l : lits) {
    int lvl = level_[static_cast<size_t>(l.var())];
    if (lvl <= 0) continue;
    if (lbdStamp_.size() <= static_cast<size_t>(lvl)) {
      lbdStamp_.resize(static_cast<size_t>(lvl) + 1, 0);
    }
    if (lbdStamp_[static_cast<size_t>(lvl)] != lbdStampGen_) {
      lbdStamp_[static_cast<size_t>(lvl)] = lbdStampGen_;
      ++distinct;
    }
  }
  return distinct;
}

void Solver::analyze(ClauseRef conflict, LitVec& outLearnt, int& outBtLevel) {
  auto abstractLevel = [this](Var v) -> uint32_t {
    return 1u << (level_[static_cast<size_t>(v)] & 31);
  };

  outLearnt.clear();
  outLearnt.push_back(kUndefLit);  // slot for the asserting literal
  int pathCount = 0;
  Lit p = kUndefLit;
  int index = static_cast<int>(trail_.size()) - 1;
  ClauseRef reasonClause = conflict;

  do {
    PRESAT_DCHECK(reasonClause != kNullClauseRef);
    if (arena_.learnt(reasonClause)) {
      claBumpActivity(reasonClause);
      // Used-recently bit: a learnt clause that participates in conflict
      // analysis earns one round of immunity in the next reduceDB sweep.
      arena_.setUsed(reasonClause, true);
    }
    const Lit* lits = arena_.lits(reasonClause);
    const uint32_t size = arena_.size(reasonClause);
    uint32_t start = (p == kUndefLit) ? 0 : 1;
    for (uint32_t j = start; j < size; ++j) {
      Lit q = lits[j];
      size_t v = static_cast<size_t>(q.var());
      if (!seen_[v] && level_[v] > 0) {
        varBumpActivity(q.var());
        seen_[v] = 1;
        if (level_[v] >= decisionLevel()) {
          ++pathCount;
        } else {
          outLearnt.push_back(q);
        }
      }
    }
    // Walk back to the next marked literal on the trail.
    while (!seen_[static_cast<size_t>(trail_[static_cast<size_t>(index--)].var())]) {
    }
    p = trail_[static_cast<size_t>(index + 1)];
    reasonClause = reason_[static_cast<size_t>(p.var())];
    seen_[static_cast<size_t>(p.var())] = 0;
    --pathCount;
  } while (pathCount > 0);
  outLearnt[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  analyzeToClear_.assign(outLearnt.begin(), outLearnt.end());
  uint32_t levels = 0;
  for (size_t i = 1; i < outLearnt.size(); ++i) levels |= abstractLevel(outLearnt[i].var());
  size_t i, j;
  for (i = j = 1; i < outLearnt.size(); ++i) {
    if (reason_[static_cast<size_t>(outLearnt[i].var())] == kNullClauseRef ||
        !litRedundant(outLearnt[i], levels)) {
      outLearnt[j++] = outLearnt[i];
    }
  }
  stats_.minimizedLits += i - j;
  outLearnt.resize(j);

  // Determine the backjump level and move its literal to position 1.
  if (outLearnt.size() == 1) {
    outBtLevel = 0;
  } else {
    size_t maxI = 1;
    for (size_t k = 2; k < outLearnt.size(); ++k) {
      if (level_[static_cast<size_t>(outLearnt[k].var())] >
          level_[static_cast<size_t>(outLearnt[maxI].var())]) {
        maxI = k;
      }
    }
    std::swap(outLearnt[1], outLearnt[maxI]);
    outBtLevel = level_[static_cast<size_t>(outLearnt[1].var())];
  }

  for (Lit l : analyzeToClear_) seen_[static_cast<size_t>(l.var())] = 0;
}

bool Solver::litRedundant(Lit p, uint32_t abstractLevels) {
  auto abstractLevel = [this](Var v) -> uint32_t {
    return 1u << (level_[static_cast<size_t>(v)] & 31);
  };
  analyzeStack_.clear();
  analyzeStack_.push_back(p);
  size_t top = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    Lit q = analyzeStack_.back();
    analyzeStack_.pop_back();
    ClauseRef c = reason_[static_cast<size_t>(q.var())];
    PRESAT_DCHECK(c != kNullClauseRef);
    const Lit* lits = arena_.lits(c);
    const uint32_t size = arena_.size(c);
    for (uint32_t k = 1; k < size; ++k) {
      Lit l = lits[k];
      size_t v = static_cast<size_t>(l.var());
      if (!seen_[v] && level_[v] > 0) {
        if (reason_[v] != kNullClauseRef && (abstractLevel(l.var()) & abstractLevels) != 0) {
          seen_[v] = 1;
          analyzeStack_.push_back(l);
          analyzeToClear_.push_back(l);
        } else {
          // Not removable: undo the marks added during this probe.
          for (size_t u = top; u < analyzeToClear_.size(); ++u)
            seen_[static_cast<size_t>(analyzeToClear_[u].var())] = 0;
          analyzeToClear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

void Solver::analyzeFinal(Lit p, LitVec& outCore) {
  outCore.clear();
  outCore.push_back(p);
  if (decisionLevel() == 0) return;
  seen_[static_cast<size_t>(p.var())] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLim_[0]; --i) {
    Var x = trail_[static_cast<size_t>(i)].var();
    size_t xv = static_cast<size_t>(x);
    if (!seen_[xv]) continue;
    if (reason_[xv] == kNullClauseRef) {
      PRESAT_DCHECK(level_[xv] > 0);
      outCore.push_back(~trail_[static_cast<size_t>(i)]);
    } else {
      ClauseRef c = reason_[xv];
      const Lit* lits = arena_.lits(c);
      const uint32_t size = arena_.size(c);
      for (uint32_t k = 1; k < size; ++k) {
        if (level_[static_cast<size_t>(lits[k].var())] > 0)
          seen_[static_cast<size_t>(lits[k].var())] = 1;
      }
    }
    seen_[xv] = 0;
  }
  seen_[static_cast<size_t>(p.var())] = 0;
}

// ---------------------------------------------------------------------------
// Activities & decision heap
// ---------------------------------------------------------------------------

void Solver::varBumpActivity(Var v) {
  size_t idx = static_cast<size_t>(v);
  activity_[idx] += varInc_;
  if (activity_[idx] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (heapContains(v)) heapPercolateUp(heapIndex_[idx]);
}

void Solver::claBumpActivity(ClauseRef c) {
  float bumped = arena_.activity(c) + static_cast<float>(claInc_);
  arena_.setActivity(c, bumped);
  if (bumped > 1e20f) {
    for (ClauseRef cl : clauses_) {
      if (arena_.learnt(cl)) arena_.setActivity(cl, arena_.activity(cl) * 1e-20f);
    }
    claInc_ *= 1e-20;
  }
}

void Solver::insertVarOrder(Var v) {
  if (!heapContains(v) && decision_[static_cast<size_t>(v)]) heapInsert(v);
}

void Solver::heapPercolateUp(int pos) {
  Var v = heap_[static_cast<size_t>(pos)];
  double act = activity_[static_cast<size_t>(v)];
  while (pos > 0) {
    int parent = (pos - 1) >> 1;
    Var pv = heap_[static_cast<size_t>(parent)];
    if (activity_[static_cast<size_t>(pv)] >= act) break;
    heap_[static_cast<size_t>(pos)] = pv;
    heapIndex_[static_cast<size_t>(pv)] = pos;
    pos = parent;
  }
  heap_[static_cast<size_t>(pos)] = v;
  heapIndex_[static_cast<size_t>(v)] = pos;
}

void Solver::heapPercolateDown(int pos) {
  Var v = heap_[static_cast<size_t>(pos)];
  double act = activity_[static_cast<size_t>(v)];
  int size = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[static_cast<size_t>(heap_[static_cast<size_t>(child + 1)])] >
            activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])]) {
      ++child;
    }
    Var cv = heap_[static_cast<size_t>(child)];
    if (activity_[static_cast<size_t>(cv)] <= act) break;
    heap_[static_cast<size_t>(pos)] = cv;
    heapIndex_[static_cast<size_t>(cv)] = pos;
    pos = child;
  }
  heap_[static_cast<size_t>(pos)] = v;
  heapIndex_[static_cast<size_t>(v)] = pos;
}

void Solver::heapInsert(Var v) {
  heapIndex_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heapPercolateUp(static_cast<int>(heap_.size()) - 1);
}

Var Solver::heapRemoveMax() {
  Var top = heap_[0];
  heapIndex_[static_cast<size_t>(top)] = -1;
  Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heapIndex_[static_cast<size_t>(last)] = 0;
    heapPercolateDown(0);
  }
  return top;
}

double Solver::randomReal() {
  // xorshift64*
  randState_ ^= randState_ >> 12;
  randState_ ^= randState_ << 25;
  randState_ ^= randState_ >> 27;
  return static_cast<double>((randState_ * 2685821657736338717ull) >> 11) * 0x1.0p-53;
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Lit Solver::pickBranchLit() {
  Var next = kNullVar;
  if (enumerating_) {
    // Scope-first branching: decide every scope variable before any other so
    // decision levels 1..k form a clean scope prefix (the emission and flip
    // machinery depend on it). Highest activity wins, variable index breaks
    // ties — deterministic for a fixed seed.
    for (Var v : scopeVars_) {
      size_t idx = static_cast<size_t>(v);
      if (!assigns_[idx].isUndef() || !decision_[idx]) continue;
      if (next == kNullVar || activity_[idx] > activity_[static_cast<size_t>(next)]) next = v;
    }
    if (next != kNullVar) return mkLit(next, !decisionPhase(next));
  }
  if (randomFreq_ > 0 && !heap_.empty() && randomReal() < randomFreq_) {
    Var cand = heap_[static_cast<size_t>(randState_ % heap_.size())];
    if (assigns_[static_cast<size_t>(cand)].isUndef() && decision_[static_cast<size_t>(cand)])
      next = cand;
  }
  while (next == kNullVar || !assigns_[static_cast<size_t>(next)].isUndef() ||
         !decision_[static_cast<size_t>(next)]) {
    if (heap_.empty()) return kUndefLit;
    next = heapRemoveMax();
  }
  return mkLit(next, !decisionPhase(next));
}

void Solver::reduceDB() {
  // LBD-tiered retention: glue clauses (lbd <= 2) and binaries are immortal,
  // locked clauses are pinned by the trail, and clauses used in conflict
  // analysis since the last sweep die only after every unused candidate has
  // (the used bit is cleared so they must earn that rank again). Candidates
  // die worst-first — unused before used, then highest LBD, then lowest
  // activity, then youngest — up to half of the learnt database. The target
  // deliberately counts used clauses: an absolute one-round immunity lets
  // the live set balloon under incremental enumeration, where nearly every
  // learnt participates in some conflict between sweeps, and the longer
  // watch lists show up directly as propagation time.
  ++stats_.reduceDBs;
  nextReduceConflicts_ = stats_.conflicts + kReduceDBFirst + kReduceDBInc * stats_.reduceDBs;
  struct Candidate {
    ClauseRef ref;
    uint32_t lbd;
    float activity;
    uint32_t index;  // position in clauses_ = insertion age (deterministic)
    bool used;
  };
  std::vector<Candidate> candidates;
  size_t learnts = 0;
  for (uint32_t idx = 0; idx < clauses_.size(); ++idx) {
    ClauseRef c = clauses_[idx];
    if (!arena_.learnt(c)) continue;
    ++learnts;
    if (arena_.size(c) <= 2 || arena_.lbd(c) <= kGlueLbd || locked(c)) continue;
    bool used = arena_.used(c);
    if (used) arena_.setUsed(c, false);
    candidates.push_back({c, arena_.lbd(c), arena_.activity(c), idx, used});
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.used != b.used) return !a.used;
    if (a.lbd != b.lbd) return a.lbd > b.lbd;
    if (a.activity != b.activity) return a.activity < b.activity;
    return a.index > b.index;
  });
  size_t target = learnts / 2;
  size_t removed = 0;
  for (const Candidate& cand : candidates) {
    if (removed >= target) break;
    removeClause(cand.ref);
    ++removed;
  }
  if (removed > 0) sweepDeadClauses();
  maybeGarbageCollect();
}

void Solver::removeSatisfiedAtLevelZero() {
  PRESAT_DCHECK(decisionLevel() == 0);
  bool any = false;
  for (ClauseRef c : clauses_) {
    if (!arena_.learnt(c)) continue;  // keep originals for incremental correctness
    const Lit* lits = arena_.lits(c);
    const uint32_t size = arena_.size(c);
    for (uint32_t k = 0; k < size; ++k) {
      if (value(lits[k]).isTrue()) {
        removeClause(c);
        any = true;
        break;
      }
    }
  }
  if (any) sweepDeadClauses();
  maybeGarbageCollect();
}

ClauseRef Solver::learnClause(const LitVec& learnt) {
  if (proofLog_ != nullptr) proofLog_->addClause(learnt);
  ClauseRef c = allocClause(learnt, /*learnt=*/true);
  arena_.setLbd(c, computeLbd(learnt));
  attachClause(c);
  claBumpActivity(c);
  uncheckedEnqueue(learnt[0], c);
  return c;
}

lbool Solver::search(int64_t conflictsBeforeRestart) {
  PRESAT_DCHECK(ok_);
  int64_t conflictCount = 0;
  LitVec learnt;

  for (;;) {
    if (governor_ != nullptr && governor_->poll() != Outcome::kComplete) {
      cancelUntil(0);
      return l_Undef;
    }
    ClauseRef conflict = propagate();
    if (conflict != kNullClauseRef) {
      ++stats_.conflicts;
      ++conflictCount;
      if (governor_ != nullptr) governor_->countConflicts(1);
      if (decisionLevel() == 0) {
        ok_ = false;
        if (proofLog_ != nullptr) proofLog_->addEmpty();
        return l_False;
      }
      int btLevel = 0;
      analyze(conflict, learnt, btLevel);
      cancelUntil(btLevel);
      if (learnt.size() == 1) {
        if (proofLog_ != nullptr) proofLog_->addUnit(learnt[0]);
        uncheckedEnqueue(learnt[0], kNullClauseRef);
      } else {
        learnClause(learnt);
      }
      varDecayActivity();
      claDecayActivity();
      continue;
    }

    // No conflict.
    if (conflictCount >= conflictsBeforeRestart) {
      ++stats_.restarts;
      cancelUntil(0);
      return l_Undef;
    }
    if (conflictBudget_ != 0 && stats_.conflicts >= budgetLimit_) {
      cancelUntil(0);
      return l_Undef;
    }
    if (decisionLevel() == 0 && static_cast<int>(trail_.size()) > lastSimplifyTrail_) {
      removeSatisfiedAtLevelZero();
      lastSimplifyTrail_ = static_cast<int>(trail_.size());
    }
    if ((maxLearnts_ > 0 &&
         static_cast<double>(numLearnts_) - static_cast<double>(trail_.size()) >= maxLearnts_) ||
        stats_.conflicts >= nextReduceConflicts_) {
      reduceDB();
    }

    // Assumptions first, then free decisions.
    Lit next = kUndefLit;
    while (decisionLevel() < static_cast<int>(assumptions_.size())) {
      Lit p = assumptions_[static_cast<size_t>(decisionLevel())];
      lbool v = value(p);
      if (v.isTrue()) {
        newDecisionLevel();  // dummy level so indices stay aligned
      } else if (v.isFalse()) {
        analyzeFinal(~p, conflictCore_);
        return l_False;
      } else {
        next = p;
        break;
      }
    }
    if (next == kUndefLit) {
      next = pickBranchLit();
      if (next == kUndefLit) return l_True;  // all decision vars assigned
      ++stats_.decisions;
    }
    newDecisionLevel();
    uncheckedEnqueue(next, kNullClauseRef);
  }
}

lbool Solver::solve(const LitVec& assumptions) {
  PRESAT_CHECK(!enumerating_) << "solve() during an enumeration session";
  model_.clear();
  conflictCore_.clear();
  if (!ok_) return l_False;
  assumptions_ = assumptions;
  // Recomputed on every call: the limit tracks the current original-clause
  // count (which grows under incremental use, e.g. blocking-clause all-SAT)
  // and the per-restart growth below stays confined to this call. Carrying
  // the grown limit across the hundreds of solve() calls an enumeration
  // makes would effectively disable reduceDB and let the learnt database
  // grow without bound.
  maxLearnts_ = std::max<double>(static_cast<double>(numOriginal_) / 3.0, 1000.0);
  nextReduceConflicts_ = stats_.conflicts + kReduceDBFirst;
  budgetLimit_ = conflictBudget_ == 0 ? 0 : stats_.conflicts + conflictBudget_;

  lbool status = l_Undef;
  int restarts = 0;
  while (status == l_Undef) {
    double factor = luby(2.0, restarts);
    status = search(static_cast<int64_t>(factor * kRestartBase));
    ++restarts;
    maxLearnts_ *= learntGrowth_;
    if (status == l_Undef && budgetLimit_ != 0 && stats_.conflicts >= budgetLimit_) break;
    if (status == l_Undef && governor_ != nullptr && governor_->tripped()) break;
  }

  if (status == l_True) {
    model_ = assigns_;
  } else if (status == l_False && conflictCore_.empty() && !ok_) {
    // Root-level UNSAT independent of assumptions: empty core.
  }
  cancelUntil(0);
  return status;
}

// ---------------------------------------------------------------------------
// Chronological enumeration
// ---------------------------------------------------------------------------

void Solver::beginEnumeration(const std::vector<Var>& scope, bool projectedWitness) {
  PRESAT_CHECK(!enumerating_) << "beginEnumeration() during an active session";
  PRESAT_CHECK(decisionLevel() == 0) << "beginEnumeration() above level 0";
  enumerating_ = true;
  enumExhausted_ = false;
  enumProjected_ = projectedWitness;
  model_.clear();
  conflictCore_.clear();
  assumptions_.clear();
  inScope_.assign(static_cast<size_t>(numVars()), 0);
  scopeVars_.clear();
  for (Var v : scope) {
    PRESAT_CHECK(v >= 0 && v < numVars()) << "unknown variable in enumeration scope";
    if (inScope_[static_cast<size_t>(v)]) continue;
    inScope_[static_cast<size_t>(v)] = 1;
    scopeVars_.push_back(v);
  }
  // Same learnt-DB cap policy as solve(): the whole point of this mode is
  // that the clause database stays bounded across the enumeration.
  maxLearnts_ = std::max<double>(static_cast<double>(numOriginal_) / 3.0, 1000.0);
  nextReduceConflicts_ = stats_.conflicts + kReduceDBFirst;
}

int Solver::scopePrefixLength() const {
  int k = 0;
  while (k < decisionLevel()) {
    Lit d = trail_[static_cast<size_t>(trailLim_[static_cast<size_t>(k)])];
    if (!inScope_[static_cast<size_t>(d.var())]) break;
    ++k;
  }
  return k;
}

int Solver::deepestFlippedLevel() const {
  for (int lvl = static_cast<int>(levelFlipped_.size()); lvl >= 1; --lvl) {
    if (levelFlipped_[static_cast<size_t>(lvl - 1)]) return lvl;
  }
  return 0;
}

bool Solver::flipToNextRegion(int maxLevel) {
  PRESAT_CHECK(enumerating_) << "flipToNextRegion() outside an enumeration session";
  int f = std::min(maxLevel, decisionLevel());
  while (f >= 1 && levelFlipped_[static_cast<size_t>(f - 1)]) --f;
  if (f < 1) {
    enumExhausted_ = true;
    // Every level is flipped: the chained flip clauses below, together with
    // the blocking clauses of the emitted cubes (premises in the certificate
    // model), propagate to a conflict — the closing empty clause is RUP.
    if (proofLog_ != nullptr) proofLog_->addEmpty();
    return false;
  }
  Lit d = trail_[static_cast<size_t>(trailLim_[static_cast<size_t>(f - 1)])];
  if (proofLog_ != nullptr) {
    // Log the reason-less flip as the clause NOT(d_1 & ... & d_f) over the
    // decisions currently at levels 1..f (read before cancelUntil drops
    // them). It is RUP against the emitted cubes' blocking clauses: earlier
    // flip clauses unit-derive each already-flipped decision, propagation
    // rederives the implied literals, and the deepest region's cube premise
    // closes the conflict. This stands in for the blocking clause the
    // chronological engine never materializes.
    LitVec flip;
    flip.reserve(static_cast<size_t>(f));
    for (int lvl = 1; lvl <= f; ++lvl) {
      flip.push_back(~trail_[static_cast<size_t>(trailLim_[static_cast<size_t>(lvl - 1)])]);
    }
    proofLog_->addClause(flip);
  }
  cancelUntil(f - 1);
  newDecisionLevel();
  levelFlipped_.back() = 1;
  uncheckedEnqueue(~d, kNullClauseRef);
  ++stats_.flips;
  return true;
}

lbool Solver::enumerateNextModel() {
  PRESAT_CHECK(enumerating_) << "enumerateNextModel() outside an enumeration session";
  if (!ok_ || enumExhausted_) return l_False;
  model_.clear();
  budgetLimit_ = conflictBudget_ == 0 ? 0 : stats_.conflicts + conflictBudget_;
  LitVec learnt;

  // No restarts here: a restart would cancel the flipped pseudo-decisions
  // that stand in for blocking clauses and re-enumerate old regions.
  for (;;) {
    // Governed stop: keep the trail (the session stays resumable and
    // endEnumeration() cleans up), report budget exhaustion to the caller.
    if (governor_ != nullptr && governor_->poll() != Outcome::kComplete) return l_Undef;
    ClauseRef conflict = propagate();
    if (conflict != kNullClauseRef) {
      ++stats_.conflicts;
      if (governor_ != nullptr) governor_->countConflicts(1);
      if (decisionLevel() == 0) {
        ok_ = false;
        enumExhausted_ = true;
        if (proofLog_ != nullptr) proofLog_->addEmpty();
        return l_False;
      }
      int flipBarrier = deepestFlippedLevel();
      if (decisionLevel() == flipBarrier) {
        // Conflict at the barrier itself: this flipped region is empty and
        // analyze() could not backjump past it anyway (the asserting
        // variable would still be assigned). Move to the next region — no
        // clause is learnt, mirroring the region-exhausted transition of
        // chronological CDCL enumeration.
        if (!flipToNextRegion(decisionLevel() - 1)) return l_False;
        continue;
      }
      int btLevel = 0;
      analyze(conflict, learnt, btLevel);
      // Clamp the backjump at the barrier: levels <= flipBarrier encode
      // already-emitted regions. The asserting literal's antecedents are all
      // stamped <= btLevel <= target, so enqueueing it at the clamped level
      // keeps every implication-graph invariant intact.
      int target = std::max(btLevel, flipBarrier);
      cancelUntil(target);
      if (learnt.size() == 1) {
        // Unit learnts are logged whether they land on the level-0 trail or
        // behind the barrier with a synthetic reason: either way the literal
        // is a consequence of the formula plus the emitted cubes' blocking
        // clauses, i.e. a RAT/RUP addition in the certificate model.
        if (proofLog_ != nullptr) proofLog_->addUnit(learnt[0]);
        if (target == 0) {
          uncheckedEnqueue(learnt[0], kNullClauseRef);
        } else {
          // Unit learnts normally live on the level-0 trail; here the clamp
          // keeps us above level 0, so give the literal a synthetic unit
          // reason (analyze() and the auditor both require non-decision
          // literals above level 0 to carry one). The unit lives in the
          // arena — it relocates with every compaction — but outside
          // clauses_, and dies with the session.
          ClauseRef unit = arena_.alloc(learnt.data(), 1, /*learnt=*/true);
          if (governor_ != nullptr) arenaLedger_.charge(arena_.clauseBytes(unit));
          enumUnitReasons_.push_back(unit);
          uncheckedEnqueue(learnt[0], unit);
        }
      } else {
        learnClause(learnt);
      }
      varDecayActivity();
      claDecayActivity();
      if (conflictBudget_ != 0 && stats_.conflicts >= budgetLimit_) return l_Undef;
      continue;
    }

    // No conflict.
    if (enumProjected_ && projectedWitnessComplete()) {
      // Projected early stop: the scope is fully decided and the partial
      // assignment already satisfies every original clause, so EVERY
      // completion of the unassigned input/aux variables is a total model.
      // The assigned non-scope literals are the existential witness; keep
      // them in model_ (unassigned variables stay l_Undef) so the caller's
      // projected shrinking pass can reuse them.
      model_ = assigns_;
      return l_True;
    }
    if ((maxLearnts_ > 0 &&
         static_cast<double>(numLearnts_) - static_cast<double>(trail_.size()) >= maxLearnts_) ||
        stats_.conflicts >= nextReduceConflicts_) {
      reduceDB();
    }
    Lit next = pickBranchLit();
    if (next == kUndefLit) {
      // Total model. Keep the trail — the caller reads levels off it, emits
      // a cube, and flips into the next region.
      model_ = assigns_;
      return l_True;
    }
    ++stats_.decisions;
    newDecisionLevel();
    uncheckedEnqueue(next, kNullClauseRef);
  }
}

bool Solver::projectedWitnessComplete() const {
  // Mirrors pickBranchLit's scope loop: a scope variable excluded from
  // decisions can legitimately stay unassigned, exactly as in total-model
  // enumeration.
  for (Var v : scopeVars_) {
    size_t idx = static_cast<size_t>(v);
    if (assigns_[idx].isUndef() && decision_[idx]) return false;
  }
  // Only original clauses matter: learnts are implied, and clauses dropped
  // or shrunk at add time are satisfied by level-0 assignments that are part
  // of every partial assignment.
  for (ClauseRef c : clauses_) {
    if (arena_.learnt(c)) continue;
    const Lit* lits = arena_.lits(c);
    const uint32_t size = arena_.size(c);
    bool satisfied = false;
    for (uint32_t k = 0; k < size; ++k) {
      if (value(lits[k]).isTrue()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

void Solver::endEnumeration() {
  PRESAT_CHECK(enumerating_) << "endEnumeration() without a session";
  cancelUntil(0);
  enumerating_ = false;
  enumExhausted_ = false;
  enumProjected_ = false;
  for (ClauseRef unit : enumUnitReasons_) {
    if (governor_ != nullptr) arenaLedger_.release(arena_.clauseBytes(unit));
    arena_.free(unit);
  }
  enumUnitReasons_.clear();
  inScope_.clear();
  scopeVars_.clear();
  model_.clear();
  maybeGarbageCollect();
}

}  // namespace presat
