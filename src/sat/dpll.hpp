// Reference solvers used for differential testing.
//
// These are intentionally simple (no watched literals, no learning) so their
// correctness is evident by inspection; the CDCL solver and every all-SAT
// engine are fuzzed against them on small instances.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "cnf/cnf.hpp"

namespace presat {

// Plain DPLL with unit propagation. Returns a model if SAT.
std::optional<std::vector<bool>> dpllSolve(const Cnf& cnf);

bool dpllIsSat(const Cnf& cnf);

// Enumerates, by exhaustive 2^|projection| sweep, every assignment to the
// projection variables that can be extended to a full satisfying assignment.
// Each result is encoded as a bit pattern: bit i = value of projection[i].
// Only usable for small projections (checked: |projection| <= 24).
std::set<uint64_t> bruteForceProjectedSolutions(const Cnf& cnf,
                                                const std::vector<Var>& projection);

// Exhaustive count of full satisfying assignments (numVars <= 24 checked).
uint64_t bruteForceModelCount(const Cnf& cnf);

}  // namespace presat
