#include "sat/proof.hpp"

#include "base/log.hpp"

namespace presat {

namespace {

int32_t toDimacs(Lit l) {
  int32_t v = static_cast<int32_t>(l.var()) + 1;
  return l.sign() ? -v : v;
}

void appendInt(std::string& out, int64_t v) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out.append(buf, static_cast<size_t>(n));
}

// Binary DRAT literal encoding: DIMACS l maps to unsigned 2*|l| + (l < 0),
// emitted as a little-endian 7-bit variable-length integer.
void appendVarint(std::string& out, int32_t dimacs) {
  uint32_t u = dimacs > 0 ? 2u * static_cast<uint32_t>(dimacs)
                          : 2u * static_cast<uint32_t>(-dimacs) + 1u;
  while (u >= 0x80u) {
    out.push_back(static_cast<char>((u & 0x7fu) | 0x80u));
    u >>= 7;
  }
  out.push_back(static_cast<char>(u));
}

}  // namespace

void ProofLog::record(bool deletion, const Lit* lits, size_t n) {
  PRESAT_CHECK(n <= static_cast<size_t>(INT32_MAX)) << "proof step too wide";
  int32_t count = static_cast<int32_t>(n);
  data_.push_back(deletion ? ~count : count);
  for (size_t i = 0; i < n; ++i) data_.push_back(toDimacs(lits[i]));
  ++steps_;
  endsWithEmpty_ = !deletion && n == 0;
}

void ProofLog::addClause(const Lit* lits, size_t n) { record(false, lits, n); }

void ProofLog::deleteClause(const Lit* lits, size_t n) { record(true, lits, n); }

void ProofLog::clear() {
  data_.clear();
  steps_ = 0;
  endsWithEmpty_ = false;
}

std::string ProofLog::toTextDrat() const {
  std::string out;
  out.reserve(data_.size() * 4);
  for (size_t i = 0; i < data_.size();) {
    int32_t tag = data_[i++];
    bool deletion = tag < 0;
    int32_t n = deletion ? ~tag : tag;
    if (deletion) out.append("d ");
    for (int32_t k = 0; k < n; ++k) {
      appendInt(out, data_[i++]);
      out.push_back(' ');
    }
    out.append("0\n");
  }
  return out;
}

std::string ProofLog::toBinaryDrat() const {
  std::string out;
  out.reserve(data_.size() * 2);
  for (size_t i = 0; i < data_.size();) {
    int32_t tag = data_[i++];
    bool deletion = tag < 0;
    int32_t n = deletion ? ~tag : tag;
    out.push_back(deletion ? 'd' : 'a');
    for (int32_t k = 0; k < n; ++k) appendVarint(out, data_[i++]);
    out.push_back('\0');
  }
  return out;
}

void ProofLog::appendCertLines(std::string& out) const {
  for (size_t i = 0; i < data_.size();) {
    int32_t tag = data_[i++];
    bool deletion = tag < 0;
    int32_t n = deletion ? ~tag : tag;
    out.push_back(deletion ? 'e' : 'a');
    out.push_back(' ');
    for (int32_t k = 0; k < n; ++k) {
      appendInt(out, data_[i++]);
      out.push_back(' ');
    }
    out.append("0\n");
  }
}

}  // namespace presat
