// DRAT-style proof logging for the CDCL solver and the enumeration engines.
//
// A ProofLog records the clause additions and deletions a solver run derives:
// learnt clauses, unit learnts, the reason-less flip clauses that close each
// chronological-enumeration region (logged as RAT additions — they are RUP
// once the blocking clauses of the emitted cubes are premises), and the empty
// clause ending an UNSAT run. The log is an in-memory event buffer with three
// serializations: text DRAT, binary DRAT, and the `a`/`e` proof section of a
// presat-cert-v1 certificate (src/cert/certificate.hpp).
//
// The log observes the search; it never influences it. A null ProofLog* on
// the Solver keeps every hot path branch-only, which is what the bench lane's
// proof-logging-off regression gate pins down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace presat {

class ProofLog {
 public:
  // Clause addition (DRAT "a"): the clause must be redundant (RUP/RAT) with
  // respect to the working formula the eventual checker maintains.
  void addClause(const Lit* lits, size_t n);
  void addClause(const LitVec& lits) { addClause(lits.data(), lits.size()); }
  void addUnit(Lit l) { addClause(&l, 1); }
  void addEmpty() { addClause(nullptr, 0); }

  // Clause deletion (DRAT "d").
  void deleteClause(const Lit* lits, size_t n);
  void deleteClause(const LitVec& lits) { deleteClause(lits.data(), lits.size()); }

  size_t numSteps() const { return steps_; }
  bool empty() const { return steps_ == 0; }
  // True when the last recorded step is an empty-clause addition (the UNSAT
  // terminator a complete-cover certificate requires).
  bool endsWithEmptyClause() const { return endsWithEmpty_; }
  void clear();

  // Text DRAT: one step per line, "d " prefix for deletions, literals as
  // signed DIMACS integers, "0" terminator.
  std::string toTextDrat() const;
  // Binary DRAT: 'a'/'d' step bytes, literals as 7-bit variable-length
  // unsigned integers of the MiniSat mapping (2*var + sign), 0 terminator.
  std::string toBinaryDrat() const;
  // presat-cert-v1 proof section: "a <lits> 0" / "e <lits> 0" lines.
  void appendCertLines(std::string& out) const;

 private:
  // Flattened event stream: per step, a tag (+n for an addition of n
  // literals, encoded as n; deletions store ~n) followed by the DIMACS
  // literals. Variable v (0-based) maps to v+1; negative = sign bit set.
  void record(bool deletion, const Lit* lits, size_t n);

  std::vector<int32_t> data_;
  size_t steps_ = 0;
  bool endsWithEmpty_ = false;
};

}  // namespace presat
