#include "parallel/worker_pool.hpp"

#include <chrono>
#include <thread>  // presat-analyze: raw-thread(the one permitted spawn site; see WorkerPool::run)
#include <vector>

#include "base/log.hpp"

namespace presat {

namespace {

// One worker's task queue plus its privately-accumulated stats. The queue is
// shared (owner pops front, thieves steal back) behind StealQueue's lock; the
// stats are only ever written by the owning worker thread and only read after
// the join barrier in run().
struct WorkerShard {
  StealQueue queue;
  // presat-analyze: lockfree(owner-worker private during run(); the caller
  // aggregates only after the join barrier)
  WorkerPoolStats stats;
};

// Pops the next task for `self`: own queue first, then steals from a victim.
// Returns false when every queue is empty — the batch is closed, so
// empty-everywhere means done.
bool nextTask(std::vector<WorkerShard>& shards, size_t self, size_t& taskOut, bool& stolenOut) {
  WorkerShard& own = shards[self];
  size_t depth = 0;
  bool got = own.queue.popOwn(taskOut, depth);
  own.stats.queueDepth.record(depth);
  if (got) {
    stolenOut = false;
    return true;
  }
  // Steal scan: probe victims in a self-offset order so idle workers do not
  // all hammer shard 0.
  for (size_t i = 1; i < shards.size(); ++i) {
    if (shards[(self + i) % shards.size()].queue.steal(taskOut)) {
      stolenOut = true;
      return true;
    }
  }
  return false;
}

}  // namespace

// The shared state behind ServicePool: a FIFO of closures plus the parked
// worker threads. Everything mutable sits behind one Mutex; workers sleep on
// `wake` and the quiesce() caller sleeps on `idle`.
struct ServicePoolImpl {
  Mutex mu;
  std::deque<std::function<void()>> queue GUARDED_BY(mu);
  bool stopping GUARDED_BY(mu) = false;
  uint64_t submitted GUARDED_BY(mu) = 0;
  uint64_t completed GUARDED_BY(mu) = 0;
  uint64_t abandoned GUARDED_BY(mu) = 0;
  int busy GUARDED_BY(mu) = 0;  // workers currently running a closure
  CondVar wake;  // presat-analyze: lockfree(condition variable, internally synchronized)
  CondVar idle;  // presat-analyze: lockfree(condition variable, internally synchronized)
  // presat-analyze: lockfree(owned and joined by the pool's owner thread only;
  // workers never touch the vector)
  std::vector<std::thread> threads;

  void workerMain() {
    for (;;) {
      std::function<void()> fn;
      {
        MutexLock lock(mu);
        while (queue.empty() && !stopping) wake.wait(mu);
        if (queue.empty()) return;  // stopping and drained
        fn = std::move(queue.front());
        queue.pop_front();
        ++busy;
      }
      fn();
      {
        MutexLock lock(mu);
        ++completed;
        --busy;
        if (queue.empty() && busy == 0) idle.notifyAll();
      }
    }
  }
};

ServicePool::ServicePool() = default;

ServicePool::~ServicePool() { stop(); }

void ServicePool::start(int numThreads) {
  PRESAT_CHECK(impl_ == nullptr) << "ServicePool::start called twice";
  numThreads_ = numThreads < 1 ? 1 : numThreads;
  impl_ = std::make_unique<ServicePoolImpl>();
  impl_->threads.reserve(static_cast<size_t>(numThreads_));
  // The repo's other permitted spawn site (presat_analyze rule raw-thread):
  // every worker parks between closures and is joined in stop(), which the
  // destructor guarantees — no thread outlives the pool object.
  for (int w = 0; w < numThreads_; ++w) {
    impl_->threads.emplace_back([this] { impl_->workerMain(); });
  }
}

bool ServicePool::submit(std::function<void()> fn) {
  PRESAT_CHECK(fn != nullptr);
  if (impl_ == nullptr) return false;
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) return false;
    impl_->queue.push_back(std::move(fn));
    ++impl_->submitted;
  }
  impl_->wake.notifyOne();
  return true;
}

void ServicePool::stop() {
  if (impl_ == nullptr) return;
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping && impl_->threads.empty()) return;
    impl_->stopping = true;
    impl_->abandoned += impl_->queue.size();
    impl_->queue.clear();
  }
  impl_->wake.notifyAll();
  for (std::thread& t : impl_->threads) t.join();
  impl_->threads.clear();
}

void ServicePool::quiesce() {
  if (impl_ == nullptr) return;
  MutexLock lock(impl_->mu);
  while (!(impl_->queue.empty() && impl_->busy == 0)) impl_->idle.wait(impl_->mu);
}

uint64_t ServicePool::submitted() const {
  if (impl_ == nullptr) return 0;
  MutexLock lock(impl_->mu);
  return impl_->submitted;
}

uint64_t ServicePool::completed() const {
  if (impl_ == nullptr) return 0;
  MutexLock lock(impl_->mu);
  return impl_->completed;
}

uint64_t ServicePool::abandoned() const {
  if (impl_ == nullptr) return 0;
  MutexLock lock(impl_->mu);
  return impl_->abandoned;
}

WorkerPool::WorkerPool(int numThreads) : numThreads_(numThreads < 1 ? 1 : numThreads) {}

void WorkerPool::run(size_t numTasks, const std::function<void(size_t task, int worker)>& fn,
                     const std::function<bool()>& stop) {
  PRESAT_CHECK(fn != nullptr);
  size_t workers = static_cast<size_t>(numThreads_);
  std::vector<WorkerShard> shards(workers);
  // Round-robin deal: contiguous task indices land on different workers, so
  // the adjacent (similar-size) subcubes of one region spread out.
  for (size_t t = 0; t < numTasks; ++t) {
    shards[t % workers].queue.push(t);
  }

  auto workerMain = [&shards, &fn, &stop](size_t self) {
    WorkerPoolStats& stats = shards[self].stats;
    size_t task = 0;
    bool stolen = false;
    while (!(stop != nullptr && stop()) && nextTask(shards, self, task, stolen)) {
      auto start = std::chrono::steady_clock::now();
      fn(task, static_cast<int>(self));
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      stats.taskMicros.record(static_cast<uint64_t>(micros));
      stats.tasksRun += 1;
      if (stolen) stats.steals += 1;
    }
  };

  if (workers == 1) {
    // Single-threaded runs stay on the calling thread: no thread spawn cost,
    // and engine PRESAT_CHECK failures surface with the caller's stack.
    workerMain(0);
  } else {
    // The repo's single thread-spawn site (presat_analyze rule raw-thread):
    // every worker is joined below, so no thread outlives the batch.
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back(workerMain, w);  // presat-analyze: raw-thread(WorkerPool is the pool)
    }
    for (std::thread& t : threads) t.join();
  }

  // Once a stop predicate has tripped, abandoned queue entries are the
  // expected graceful-degradation outcome; without one the batch-closed
  // contract still holds exactly.
  bool stopped = stop != nullptr && stop();
  for (WorkerShard& shard : shards) {
    size_t abandoned = shard.queue.drain();
    PRESAT_CHECK(stopped || abandoned == 0) << "worker pool left tasks behind";
    stats_.tasksSkipped += abandoned;
    stats_.tasksRun += shard.stats.tasksRun;
    stats_.steals += shard.stats.steals;
    stats_.queueDepth.merge(shard.stats.queueDepth);
    stats_.taskMicros.merge(shard.stats.taskMicros);
  }
}

void WorkerPool::exportMetrics(Metrics& m) const {
  m.setCounter("parallel.jobs", static_cast<uint64_t>(numThreads_));
  m.setCounter("parallel.tasks", stats_.tasksRun);
  m.setCounter("parallel.steals", stats_.steals);
  m.setCounter("parallel.tasks_skipped", stats_.tasksSkipped);
  m.histogram("parallel.queue_depth").merge(stats_.queueDepth);
  m.histogram("parallel.task_us").merge(stats_.taskMicros);
}

}  // namespace presat
