// Guiding-cube splitter: derives 2^depth pairwise-disjoint cubes over the
// projection scope that partition the search space for cube-and-conquer.
//
// The split variables are chosen by a lookahead score, not blindly: for a
// circuit problem the candidates are ranked by how much of the objectives'
// justification cone they influence (fanout degree inside the transitive
// fanin cone of the objectives, with a depth bonus for sources feeding the
// frontier-near layers); for a CNF problem the proxy is clause-occurrence
// count. Variables outside the objectives' support would split the space
// without constraining either half — the fallback to balanced low-index
// splitting only triggers when fewer scored candidates exist than the depth
// needs (tiny projections, constant cones).
//
// Disjointness and coverage hold by construction: the 2^depth cubes are
// exactly the assignments of the chosen split variables, enumerated in
// binary order (cube index bit j = value of splitVars[j]). Every consumer
// relies on that order being deterministic — the merge layer reassembles
// results by cube index, which is what makes the parallel result independent
// of worker count and scheduling.
#pragma once

#include <vector>

#include "allsat/projection.hpp"
#include "cnf/cnf.hpp"

namespace presat {

struct CircuitAllSatProblem;

struct SplitPlan {
  // Chosen split variables in the projected index space; bit j of a cube's
  // index gives the polarity of splitVars[j] in that cube.
  std::vector<Var> splitVars;
  // 2^|splitVars| guiding cubes (projected index space), pairwise disjoint,
  // jointly covering the full projected space, in binary index order.
  std::vector<LitVec> cubes;
};

// Resolves ParallelOptions::splitDepth: auto (-1) becomes
// ParallelOptions::kDefaultSplitDepth, then clamps to the projection width.
int resolveSplitDepth(int requested, size_t numProjectionVars);

// Circuit split with justification-cone lookahead scoring.
SplitPlan planCircuitSplit(const CircuitAllSatProblem& problem, int splitDepth);

// CNF split with occurrence-count scoring.
SplitPlan planCnfSplit(const Cnf& cnf, const std::vector<Var>& projection, int splitDepth);

// Expands `splitVars` into the 2^k guiding cubes in binary index order.
// Exposed for the merge layer's tests; the planners call it internally.
std::vector<LitVec> enumerateGuideCubes(const std::vector<Var>& splitVars);

}  // namespace presat
