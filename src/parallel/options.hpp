// Knobs of the cube-and-conquer parallel enumeration layer (src/parallel/).
//
// This header is dependency-free on purpose: `ParallelOptions` is embedded in
// `AllSatOptions` (allsat/projection.hpp), which every engine consumes, while
// the machinery that interprets it (splitter, worker pool, merge) lives in
// the rest of src/parallel/ and depends on the allsat layer.
#pragma once

namespace presat {

struct ParallelOptions {
  // 0 = serial engines, untouched. >= 1 routes enumeration through the
  // cube-and-conquer layer with this many worker threads. The RESULT is
  // independent of the value (see splitDepth); only wall-clock changes.
  int jobs = 0;
  // The search space is partitioned into 2^splitDepth disjoint guiding cubes.
  // -1 = auto (kDefaultSplitDepth, clamped to the projection width). The
  // depth deliberately does NOT scale with `jobs`: the subproblem set, and
  // therefore the merged result, is identical for jobs=1 and jobs=8.
  int splitDepth = -1;

  // Auto split depth: 16 subcubes — enough slack for 8-way work stealing
  // without fragmenting small instances.
  static constexpr int kDefaultSplitDepth = 4;

  bool enabled() const { return jobs > 0; }
};

}  // namespace presat
