#include "parallel/cube_splitter.hpp"

#include <algorithm>

#include "allsat/success_driven.hpp"
#include "base/log.hpp"
#include "circuit/netlist.hpp"
#include "parallel/options.hpp"

namespace presat {

namespace {

// Ranks candidate split variables by (score desc, index asc) and keeps the
// best `depth`, returned in ascending index order so the cube enumeration —
// and with it the merged result — is independent of the scoring details'
// tie-break history. Candidates with score 0 participate too (the balanced
// fallback): the sort is total over all projection variables.
std::vector<Var> pickTopVars(const std::vector<uint64_t>& score, int depth) {
  std::vector<Var> vars(score.size());
  for (size_t i = 0; i < vars.size(); ++i) vars[i] = static_cast<Var>(i);
  std::stable_sort(vars.begin(), vars.end(), [&score](Var a, Var b) {
    return score[static_cast<size_t>(a)] > score[static_cast<size_t>(b)];
  });
  vars.resize(static_cast<size_t>(depth));
  std::sort(vars.begin(), vars.end());
  return vars;
}

}  // namespace

int resolveSplitDepth(int requested, size_t numProjectionVars) {
  int depth = requested < 0 ? ParallelOptions::kDefaultSplitDepth : requested;
  if (static_cast<size_t>(depth) > numProjectionVars) {
    depth = static_cast<int>(numProjectionVars);
  }
  return depth;
}

std::vector<LitVec> enumerateGuideCubes(const std::vector<Var>& splitVars) {
  PRESAT_CHECK(splitVars.size() < 30) << "split depth out of sane range";
  size_t count = static_cast<size_t>(1) << splitVars.size();
  std::vector<LitVec> cubes;
  cubes.reserve(count);
  for (size_t index = 0; index < count; ++index) {
    LitVec cube;
    cube.reserve(splitVars.size());
    for (size_t j = 0; j < splitVars.size(); ++j) {
      bool value = ((index >> j) & 1) != 0;
      cube.push_back(mkLit(splitVars[j], !value));
    }
    cubes.push_back(std::move(cube));
  }
  return cubes;
}

SplitPlan planCircuitSplit(const CircuitAllSatProblem& problem, int splitDepth) {
  PRESAT_CHECK(problem.netlist != nullptr);
  const Netlist& nl = *problem.netlist;
  const std::vector<NodeId>& sources = problem.projectionSources;

  int depth = resolveSplitDepth(splitDepth, sources.size());
  SplitPlan plan;
  if (depth == 0) {
    plan.cubes = enumerateGuideCubes({});
    return plan;
  }

  // Lookahead proxy: restrict attention to the transitive fanin cone of the
  // objectives (the only region backward justification ever enters) and score
  // each projection source by the number of cone gates it directly feeds,
  // weighted by how deep the justification can reach past them (level of the
  // fanout gate). A source feeding many deep cone gates splits the frontier's
  // subsearch most evenly; a source outside the cone scores 0 and is only
  // chosen by the balanced fallback.
  std::vector<NodeId> objectiveRoots;
  objectiveRoots.reserve(problem.objectives.size());
  for (const NodeAssign& obj : problem.objectives) objectiveRoots.push_back(obj.first);
  std::vector<NodeId> cone = nl.coneOf(objectiveRoots);
  std::vector<char> inCone(nl.numNodes(), 0);
  for (NodeId n : cone) inCone[n] = 1;
  std::vector<int> levels = nl.levels();

  std::vector<uint64_t> nodeScore(nl.numNodes(), 0);
  for (NodeId n : cone) {
    if (!isCombinational(nl.type(n))) continue;
    for (NodeId f : nl.fanins(n)) {
      nodeScore[f] += 1 + static_cast<uint64_t>(levels[n]);
    }
  }

  std::vector<uint64_t> score(sources.size(), 0);
  for (size_t i = 0; i < sources.size(); ++i) {
    if (inCone[sources[i]]) score[i] = nodeScore[sources[i]];
  }

  plan.splitVars = pickTopVars(score, depth);
  plan.cubes = enumerateGuideCubes(plan.splitVars);
  return plan;
}

SplitPlan planCnfSplit(const Cnf& cnf, const std::vector<Var>& projection, int splitDepth) {
  int depth = resolveSplitDepth(splitDepth, projection.size());
  SplitPlan plan;
  if (depth == 0) {
    plan.cubes = enumerateGuideCubes({});
    return plan;
  }

  // Occurrence count over the original clauses, the standard cube-and-conquer
  // proxy when no structure is available: fixing a frequently-occurring
  // variable simplifies the most clauses in both halves.
  std::vector<uint64_t> occurrences(static_cast<size_t>(cnf.numVars()), 0);
  for (const Clause& clause : cnf.clauses()) {
    for (Lit l : clause) occurrences[static_cast<size_t>(l.var())] += 1;
  }
  std::vector<uint64_t> score(projection.size(), 0);
  for (size_t i = 0; i < projection.size(); ++i) {
    score[i] = occurrences[static_cast<size_t>(projection[i])];
  }

  plan.splitVars = pickTopVars(score, depth);
  plan.cubes = enumerateGuideCubes(plan.splitVars);
  return plan;
}

}  // namespace presat
