#include "parallel/parallel_allsat.hpp"

#include <utility>

#include "allsat/chrono_blocking.hpp"
#include "allsat/compress.hpp"
#include "allsat/minterm_blocking.hpp"
#include "allsat/preprocess_adapter.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "check/audit_solution_graph.hpp"
#include "govern/faults.hpp"
#include "govern/governor.hpp"
#include "parallel/cube_splitter.hpp"
#include "parallel/merge.hpp"
#include "parallel/worker_pool.hpp"

namespace presat {

namespace {

// Distinct per-shard solver seeds, derived from the user seed and the shard
// INDEX (never the worker), so the stream a subproblem sees is schedule-
// independent.
uint64_t shardSeed(uint64_t baseSeed, size_t shard) {
  uint64_t base = baseSeed != 0 ? baseSeed : 0x5eedc0deb1a5edull;
  return base + 0x9e3779b97f4a7c15ull * (shard + 1);
}

// Per-shard options: serial inner engines (no recursive splitting), shard-
// indexed solver seed.
AllSatOptions shardOptions(const AllSatOptions& options, size_t shard) {
  AllSatOptions inner = options;
  inner.parallel = ParallelOptions{};
  inner.randomSeed = shardSeed(options.randomSeed, shard);
  // Certificate plumbing is for the merged result, not the shards: a shard
  // proof would speak the guide-constrained formula, and concurrent shards
  // would race on a shared compression trace. Certificate emitters replay
  // the merged cover post-hoc instead (cert/certificate.hpp).
  inner.proofLog = nullptr;
  inner.compressTrace = nullptr;
  return inner;
}

void exportParallelMetrics(const WorkerPool& pool, size_t numShards, size_t shardsSkipped,
                           double cpuSeconds, Metrics& m) {
  pool.exportMetrics(m);
  m.setCounter("parallel.shards", numShards);
  m.setCounter("parallel.shards_skipped", shardsSkipped);
  // Sum of per-shard solve time: cpu_seconds / time.seconds is the achieved
  // parallel speedup.
  m.setGauge("parallel.cpu_seconds", cpuSeconds);
}

// The pool's stop predicate: once the shared governor trips, workers drain
// instead of popping further shards.
std::function<bool()> governorStop(const Governor* governor) {
  if (governor == nullptr) return nullptr;
  return [governor] { return governor->tripped(); };
}

// Shard-task prologue: the injected "one worker died" drill cancels the
// shared governor, then a tripped governor skips the body entirely. Returns
// true when the shard should run.
bool beginShard(Governor* governor) {
  if (faults::maybeFail("parallel.shard") && governor != nullptr) {
    governor->trip(Outcome::kCancelled);
  }
  return governor == nullptr || !governor->tripped();
}

// Rewrites shard slots whose task never ran (drained after a trip, or skipped
// by beginShard) as empty partial results — guide attached, zero cubes, the
// governor's stop reason — so merge and audit see the uniform shard shape.
// Returns the number of rewritten shards.
size_t degradeSkippedShards(std::vector<ShardOutcome>& shards, const SplitPlan& plan,
                            const Governor* governor, bool needGraph) {
  size_t skipped = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    ShardOutcome& shard = shards[i];
    if (shard.ran) continue;
    ++skipped;
    shard.guide = plan.cubes[i];
    shard.result.complete = false;
    shard.result.outcome = governor != nullptr && governor->tripped()
                               ? governor->reason()
                               : Outcome::kCancelled;
    if (needGraph) {
      // An empty all-FAIL graph keeps the decision-tree merge well-formed;
      // it contributes no cubes, which is the sound degradation for a shard
      // that never searched.
      shard.graph.setRoot(SolutionGraph::kFail, {});
      shard.hasGraph = true;
    }
  }
  return skipped;
}

}  // namespace

SuccessDrivenResult parallelSuccessDrivenAllSat(const CircuitAllSatProblem& problem,
                                                const AllSatOptions& options) {
  PRESAT_CHECK(problem.netlist != nullptr);
  PRESAT_CHECK(options.parallel.enabled()) << "parallel engine called with jobs == 0";
  Timer timer;

  SplitPlan plan = planCircuitSplit(problem, options.parallel.splitDepth);
  std::vector<ShardOutcome> shards(plan.cubes.size());
  Governor* governor = options.governor;

  WorkerPool pool(options.parallel.jobs);
  pool.run(
      plan.cubes.size(),
      [&](size_t i, int /*worker*/) {
        if (!beginShard(governor)) return;
        shards[i].ran = true;
        // Workers read the shared netlist and write only their own shard slot.
        CircuitAllSatProblem sub = problem;
        for (Lit l : plan.cubes[i]) {
          sub.objectives.emplace_back(problem.projectionSources[static_cast<size_t>(l.var())],
                                      !l.sign());
        }
        SuccessDrivenResult r = successDrivenAllSat(sub, shardOptions(options, i));
        shards[i].guide = plan.cubes[i];
        shards[i].result = std::move(r.summary);
        shards[i].graph = std::move(r.graph);
        shards[i].hasGraph = true;
      },
      governorStop(governor));
  size_t shardsSkipped = degradeSkippedShards(shards, plan, governor, /*needGraph=*/true);

  PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(
      auditShardPartition(shards, static_cast<int>(problem.projectionSources.size()))));

  SuccessDrivenResult result;
  result.graph = mergeSolutionGraphs(shards, plan.splitVars);
  result.summary.guides = plan.cubes;

  double cpuSeconds = 0.0;
  for (ShardOutcome& shard : shards) cpuSeconds += shard.result.stats.seconds;
  AllSatResult merged = mergeShardSummaries(shards);
  result.summary.mintermCount = std::move(merged.mintermCount);
  result.summary.stats = merged.stats;
  result.summary.stats.graphNodes = result.graph.numNodes();
  result.summary.stats.graphEdges = result.graph.numLiveEdges();
  result.summary.metrics = std::move(merged.metrics);
  result.summary.outcome = merged.outcome;

  // Same enumeration-cap semantics as the serial engine: one probe path past
  // the cap decides the flag. Under a tripped governor the merged graph is a
  // pruned (sound) under-approximation, and the trip reason outranks the cap
  // in combineOutcomes.
  if (options.maxCubes == 0) {
    result.summary.cubes = result.graph.enumerateCubes(0);
  } else {
    uint64_t probe = options.maxCubes == UINT64_MAX ? options.maxCubes : options.maxCubes + 1;
    result.summary.cubes = result.graph.enumerateCubes(probe);
    if (result.summary.cubes.size() > options.maxCubes) {
      result.summary.cubes.pop_back();
      result.summary.outcome = combineOutcomes(result.summary.outcome, Outcome::kCubeCap);
    }
  }

  // Cross-shard epilogue: the merged decision tree can serialize duplicate
  // or overlapping cubes across shard branches; project-then-dedup and
  // wildcard compression clean the flat cover without touching the graph.
  applyProjectionPostpass(result.summary, options, /*disjointCubes=*/false);

  result.summary.stats.seconds = timer.seconds();
  result.summary.metrics.setLabel("engine", "success-driven");
  exportStatsToMetrics(result.summary.stats, result.summary.metrics);
  exportParallelMetrics(pool, shards.size(), shardsSkipped, cpuSeconds,
                        result.summary.metrics);
  finishResult(result.summary, governor);

  PRESAT_AUDIT_CHEAP({
    SolutionGraphAuditOptions auditOptions;
    auditOptions.maxCubeSatChecks = 0;
    auditOptions.numProjectionVars = static_cast<int>(problem.projectionSources.size());
    PRESAT_CHECK_AUDIT(auditSolutionGraph(result.graph, auditOptions));
  });
  return result;
}

AllSatResult parallelCnfAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                               ParallelCnfEngine engine, const ModelLifter& lifter,
                               const AllSatOptions& options) {
  PRESAT_CHECK(options.parallel.enabled()) << "parallel engine called with jobs == 0";
  if (options.preprocess) {
    // Preprocess ONCE, before the split: every shard then copies the reduced
    // formula, and because the split plan is a deterministic function of the
    // (internal) formula and splitDepth, jobs=1 vs jobs=N bit-identity holds
    // on the internal space exactly as it did on the original one.
    return runWithPreprocess(
        cnf, projection, lifter, options,
        [engine](const Cnf& c, const std::vector<Var>& p, const ModelLifter& l,
                 const AllSatOptions& o) { return parallelCnfAllSat(c, p, engine, l, o); });
  }
  Timer timer;

  SplitPlan plan = planCnfSplit(cnf, projection, options.parallel.splitDepth);
  std::vector<ShardOutcome> shards(plan.cubes.size());
  Governor* governor = options.governor;

  WorkerPool pool(options.parallel.jobs);
  auto shardTask = [&](size_t i, int /*worker*/) {
    if (!beginShard(governor)) return;
    shards[i].ran = true;
    const LitVec& guide = plan.cubes[i];
    // Guide literals in the original variable space.
    LitVec guideOrig;
    guideOrig.reserve(guide.size());
    for (Lit l : guide) {
      guideOrig.push_back(mkLit(projection[static_cast<size_t>(l.var())], l.sign()));
    }

    Cnf sub = cnf;
    for (Lit l : guideOrig) sub.addUnit(l);

    AllSatResult r;
    if (engine == ParallelCnfEngine::kMintermBlocking) {
      r = mintermBlockingAllSat(sub, projection, shardOptions(options, i));
    } else if (engine == ParallelCnfEngine::kChrono) {
      // No guide-preserving wrapper needed: the guide units are level-0
      // assignments, and the chrono engine emits every scope literal stamped
      // at or below the emission level — the guide is in every cube.
      r = chronoAllSat(sub, projection, shardOptions(options, i));
    } else {
      // The shard lifter keeps the guide literals in every lifted cube: the
      // base lifter may drop them as unnecessary for the ORIGINAL formula,
      // but dropping one would let the cube escape this shard's region and
      // double-count against its neighbor.
      ModelLifter shardLifter;
      if (lifter) {
        shardLifter = [&lifter, &guideOrig](const std::vector<lbool>& model) {
          LitVec cube = lifter(model);
          for (Lit g : guideOrig) {
            bool present = false;
            for (Lit l : cube) {
              if (l.var() == g.var()) {
                present = true;
                break;
              }
            }
            if (!present) cube.push_back(g);
          }
          return cube;
        };
      }
      r = cubeBlockingAllSat(sub, projection, shardLifter, shardOptions(options, i));
    }
    shards[i].guide = guide;
    shards[i].result = std::move(r);
  };
  pool.run(plan.cubes.size(), shardTask, governorStop(governor));
  size_t shardsSkipped = degradeSkippedShards(shards, plan, governor, /*needGraph=*/false);

  PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(
      auditShardPartition(shards, static_cast<int>(projection.size()))));

  double cpuSeconds = 0.0;
  for (ShardOutcome& shard : shards) cpuSeconds += shard.result.stats.seconds;
  AllSatResult result = mergeShardSummaries(shards);
  // The split plan is the certificate's cross-shard disjointness argument:
  // every shard enumerated inside its guide cube, and the guides partition
  // the projected space. (Post-merge compression may still merge across a
  // guide boundary; the checker verifies cube disjointness directly and
  // treats the guides as documentation of the split.)
  result.guides = plan.cubes;

  // maxCubes is a GLOBAL cap but each shard enforced it locally, so the
  // concatenation can exceed it. Trim to the cap (shard order keeps this
  // deterministic) and recount: the kept prefix may overlap under lifting.
  if (options.maxCubes != 0 && result.cubes.size() > options.maxCubes) {
    result.cubes.resize(options.maxCubes);
    result.outcome = combineOutcomes(result.outcome, Outcome::kCubeCap);
    result.mintermCount =
        countCubeUnionMinterms(result.cubes, static_cast<int>(projection.size()));
  }

  // Cross-shard epilogue: each shard already projected/compressed its own
  // cover (shardOptions passes the flags through), so shards exchanged
  // compressed covers; this second pass merges wildcard pairs straddling a
  // shard guide. It runs after the shard-partition audit on purpose — a
  // cross-shard merge may erase guide literals, which is sound (the union
  // is unchanged) but would no longer satisfy the per-shard guide shape.
  bool disjointShardCubes =
      engine != ParallelCnfEngine::kCubeBlocking || !options.liftModels || !lifter;
  applyProjectionPostpass(result, options, disjointShardCubes);

  result.stats.seconds = timer.seconds();
  const char* engineLabel = "cube-blocking";
  if (engine == ParallelCnfEngine::kMintermBlocking) engineLabel = "minterm-blocking";
  if (engine == ParallelCnfEngine::kChrono) engineLabel = "chrono";
  result.metrics.setLabel("engine", engineLabel);
  exportStatsToMetrics(result.stats, result.metrics);
  exportParallelMetrics(pool, shards.size(), shardsSkipped, cpuSeconds, result.metrics);
  finishResult(result, governor);
  return result;
}

}  // namespace presat
