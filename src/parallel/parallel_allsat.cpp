#include "parallel/parallel_allsat.hpp"

#include <utility>

#include "allsat/chrono_blocking.hpp"
#include "allsat/minterm_blocking.hpp"
#include "base/log.hpp"
#include "base/timer.hpp"
#include "bdd/bdd.hpp"
#include "check/audit_solution_graph.hpp"
#include "parallel/cube_splitter.hpp"
#include "parallel/merge.hpp"
#include "parallel/worker_pool.hpp"

namespace presat {

namespace {

// Distinct per-shard solver seeds, derived from the user seed and the shard
// INDEX (never the worker), so the stream a subproblem sees is schedule-
// independent.
uint64_t shardSeed(uint64_t baseSeed, size_t shard) {
  uint64_t base = baseSeed != 0 ? baseSeed : 0x5eedc0deb1a5edull;
  return base + 0x9e3779b97f4a7c15ull * (shard + 1);
}

// Per-shard options: serial inner engines (no recursive splitting), shard-
// indexed solver seed.
AllSatOptions shardOptions(const AllSatOptions& options, size_t shard) {
  AllSatOptions inner = options;
  inner.parallel = ParallelOptions{};
  inner.randomSeed = shardSeed(options.randomSeed, shard);
  return inner;
}

void exportParallelMetrics(const WorkerPool& pool, size_t numShards, double cpuSeconds,
                           Metrics& m) {
  pool.exportMetrics(m);
  m.setCounter("parallel.shards", numShards);
  // Sum of per-shard solve time: cpu_seconds / time.seconds is the achieved
  // parallel speedup.
  m.setGauge("parallel.cpu_seconds", cpuSeconds);
}

}  // namespace

SuccessDrivenResult parallelSuccessDrivenAllSat(const CircuitAllSatProblem& problem,
                                                const AllSatOptions& options) {
  PRESAT_CHECK(problem.netlist != nullptr);
  PRESAT_CHECK(options.parallel.enabled()) << "parallel engine called with jobs == 0";
  Timer timer;

  SplitPlan plan = planCircuitSplit(problem, options.parallel.splitDepth);
  std::vector<ShardOutcome> shards(plan.cubes.size());

  WorkerPool pool(options.parallel.jobs);
  pool.run(plan.cubes.size(), [&](size_t i, int /*worker*/) {
    // Workers read the shared netlist and write only their own shard slot.
    CircuitAllSatProblem sub = problem;
    for (Lit l : plan.cubes[i]) {
      sub.objectives.emplace_back(problem.projectionSources[static_cast<size_t>(l.var())],
                                  !l.sign());
    }
    SuccessDrivenResult r = successDrivenAllSat(sub, shardOptions(options, i));
    shards[i].guide = plan.cubes[i];
    shards[i].result = std::move(r.summary);
    shards[i].graph = std::move(r.graph);
    shards[i].hasGraph = true;
  });

  PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(
      auditShardPartition(shards, static_cast<int>(problem.projectionSources.size()))));

  SuccessDrivenResult result;
  result.graph = mergeSolutionGraphs(shards, plan.splitVars);

  double cpuSeconds = 0.0;
  for (ShardOutcome& shard : shards) cpuSeconds += shard.result.stats.seconds;
  AllSatResult merged = mergeShardSummaries(shards);
  result.summary.mintermCount = std::move(merged.mintermCount);
  result.summary.stats = merged.stats;
  result.summary.stats.graphNodes = result.graph.numNodes();
  result.summary.stats.graphEdges = result.graph.numLiveEdges();
  result.summary.metrics = std::move(merged.metrics);

  // Same enumeration-cap semantics as the serial engine: the merged graph is
  // always complete; one probe path past the cap decides the flag.
  if (options.maxCubes == 0) {
    result.summary.cubes = result.graph.enumerateCubes(0);
    result.summary.complete = true;
  } else {
    uint64_t probe = options.maxCubes == UINT64_MAX ? options.maxCubes : options.maxCubes + 1;
    result.summary.cubes = result.graph.enumerateCubes(probe);
    result.summary.complete = result.summary.cubes.size() <= options.maxCubes;
    if (!result.summary.complete) result.summary.cubes.pop_back();
  }

  result.summary.stats.seconds = timer.seconds();
  result.summary.metrics.setLabel("engine", "success-driven");
  exportStatsToMetrics(result.summary.stats, result.summary.metrics);
  exportParallelMetrics(pool, shards.size(), cpuSeconds, result.summary.metrics);

  PRESAT_AUDIT_CHEAP({
    SolutionGraphAuditOptions auditOptions;
    auditOptions.maxCubeSatChecks = 0;
    auditOptions.numProjectionVars = static_cast<int>(problem.projectionSources.size());
    PRESAT_CHECK_AUDIT(auditSolutionGraph(result.graph, auditOptions));
  });
  return result;
}

AllSatResult parallelCnfAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                               ParallelCnfEngine engine, const ModelLifter& lifter,
                               const AllSatOptions& options) {
  PRESAT_CHECK(options.parallel.enabled()) << "parallel engine called with jobs == 0";
  Timer timer;

  SplitPlan plan = planCnfSplit(cnf, projection, options.parallel.splitDepth);
  std::vector<ShardOutcome> shards(plan.cubes.size());

  WorkerPool pool(options.parallel.jobs);
  pool.run(plan.cubes.size(), [&](size_t i, int /*worker*/) {
    const LitVec& guide = plan.cubes[i];
    // Guide literals in the original variable space.
    LitVec guideOrig;
    guideOrig.reserve(guide.size());
    for (Lit l : guide) {
      guideOrig.push_back(mkLit(projection[static_cast<size_t>(l.var())], l.sign()));
    }

    Cnf sub = cnf;
    for (Lit l : guideOrig) sub.addUnit(l);

    AllSatResult r;
    if (engine == ParallelCnfEngine::kMintermBlocking) {
      r = mintermBlockingAllSat(sub, projection, shardOptions(options, i));
    } else if (engine == ParallelCnfEngine::kChrono) {
      // No guide-preserving wrapper needed: the guide units are level-0
      // assignments, and the chrono engine emits every scope literal stamped
      // at or below the emission level — the guide is in every cube.
      r = chronoAllSat(sub, projection, shardOptions(options, i));
    } else {
      // The shard lifter keeps the guide literals in every lifted cube: the
      // base lifter may drop them as unnecessary for the ORIGINAL formula,
      // but dropping one would let the cube escape this shard's region and
      // double-count against its neighbor.
      ModelLifter shardLifter;
      if (lifter) {
        shardLifter = [&lifter, &guideOrig](const std::vector<lbool>& model) {
          LitVec cube = lifter(model);
          for (Lit g : guideOrig) {
            bool present = false;
            for (Lit l : cube) {
              if (l.var() == g.var()) {
                present = true;
                break;
              }
            }
            if (!present) cube.push_back(g);
          }
          return cube;
        };
      }
      r = cubeBlockingAllSat(sub, projection, shardLifter, shardOptions(options, i));
    }
    shards[i].guide = guide;
    shards[i].result = std::move(r);
  });

  PRESAT_AUDIT_FULL(PRESAT_CHECK_AUDIT(
      auditShardPartition(shards, static_cast<int>(projection.size()))));

  double cpuSeconds = 0.0;
  for (ShardOutcome& shard : shards) cpuSeconds += shard.result.stats.seconds;
  AllSatResult result = mergeShardSummaries(shards);

  // maxCubes is a GLOBAL cap but each shard enforced it locally, so the
  // concatenation can exceed it. Trim to the cap (shard order keeps this
  // deterministic) and recount: the kept prefix may overlap under lifting.
  if (options.maxCubes != 0 && result.cubes.size() > options.maxCubes) {
    result.cubes.resize(options.maxCubes);
    result.complete = false;
    result.mintermCount =
        countCubeUnionMinterms(result.cubes, static_cast<int>(projection.size()));
  }

  result.stats.seconds = timer.seconds();
  const char* engineLabel = "cube-blocking";
  if (engine == ParallelCnfEngine::kMintermBlocking) engineLabel = "minterm-blocking";
  if (engine == ParallelCnfEngine::kChrono) engineLabel = "chrono";
  result.metrics.setLabel("engine", engineLabel);
  exportStatsToMetrics(result.stats, result.metrics);
  exportParallelMetrics(pool, shards.size(), cpuSeconds, result.metrics);
  return result;
}

}  // namespace presat
