// Deterministic merge of per-subcube enumeration results.
//
// Each shard solved the original problem restricted to one guiding cube of
// the split plan (parallel/cube_splitter.hpp). Because the guiding cubes are
// pairwise disjoint and jointly exhaustive, merging is pure bookkeeping with
// no blocking-clause interference between shards:
//
//  * cube lists concatenate in shard-index order (the union stays exact, and
//    shard counts ADD because no two shards share a minterm);
//  * solution graphs attach under a fresh binary decision tree over the split
//    variables — the tree routes each guiding cube's region to its shard's
//    subgraph, so the merged graph has the same path-cube semantics as the
//    concatenation.
//
// Everything here is keyed by shard INDEX, never by completion order, so the
// merged result is bit-identical for any worker count or schedule. The
// auditor cross-checks the disjointness assumption through the BDD oracle
// (invariants parallel.guide.disjoint / parallel.shard.guide /
// parallel.shard.disjoint) — it exists because the sum-of-counts shortcut is
// silently wrong the moment a shard leaks outside its guiding cube.
#pragma once

#include <vector>

#include "allsat/projection.hpp"
#include "allsat/solution_graph.hpp"
#include "check/audit.hpp"

namespace presat {

// One subcube's solve, in shard-index order.
//
// Cross-thread ownership: shards[i] is written by exactly ONE worker (the one
// that popped task i) while the pool runs, and read only after run()'s join
// barrier — slot i is never shared between two live threads, which is why no
// member here needs a lock or an atomic. The parallel drivers preserve this
// by indexing slots with the task index, never the worker index.
struct ShardOutcome {
  LitVec guide;        // guiding cube, projected index space
  AllSatResult result; // sub-enumeration over the same projection scope
  SolutionGraph graph; // success-driven shards only
  bool hasGraph = false;
  // False until the shard's task body actually executed. A tripped governor
  // drains the worker pool, so late shards never run; the parallel driver
  // rewrites those slots as empty partial results (guide set, zero cubes,
  // the governor's stop reason) before merging.
  bool ran = false;
};

// Sums `shard` into `total` (counters only; seconds is owned by the caller's
// wall-clock timer).
void accumulateShardStats(AllSatStats& total, const AllSatStats& shard);

// Concatenates shard cube lists and adds counts/stats in shard order.
// `complete` ANDs across shards and `outcome` combines via combineOutcomes
// (most urgent stop reason wins); metrics merge (the caller re-exports the
// accumulated stats afterwards). Sound only for disjoint shards: a partial
// shard under-enumerates its own region, so the concatenation stays a sound
// under-approximation and the summed count a lower bound.
AllSatResult mergeShardSummaries(std::vector<ShardOutcome>& shards);

// Merges the shard solution graphs under a decision tree over `splitVars`
// (the split plan's variables; shards.size() == 2^|splitVars|). Shard i's
// subgraph is attached at the leaf whose path assigns splitVars[j] = bit j
// of i, and subtrees whose shards all failed collapse to the FAIL terminal,
// mirroring the serial engine's dead-branch collapse.
SolutionGraph mergeSolutionGraphs(const std::vector<ShardOutcome>& shards,
                                  const std::vector<Var>& splitVars);

// BDD cross-check of the disjoint-partition contract:
//   parallel.guide.disjoint  guiding cubes are pairwise disjoint
//   parallel.shard.guide     every shard cube stays inside its guiding cube
//   parallel.shard.disjoint  no two shards' solution sets intersect
AuditResult auditShardPartition(const std::vector<ShardOutcome>& shards,
                                int numProjectionVars);

// Test-only corruption hook for the partition auditor (tests/check_test.cpp).
enum class ShardCorruption : int {
  kForeignCube,  // copies a shard's cube into another shard (overlap)
  kGuideEscape,  // strips the guide literals from a shard cube
};
void corruptShardsForTest(std::vector<ShardOutcome>& shards, ShardCorruption kind);

}  // namespace presat
