// Work-stealing worker pool for cube-and-conquer enumeration.
//
// Deliberately simple concurrency: one mutex-guarded deque per worker
// (sharded, so workers do not contend on a single lock), tasks dealt
// round-robin up front, owners pop from the front of their own deque, and an
// idle worker steals from the BACK of a victim deque. Blocking
// synchronization only — no lock-free structures to audit — which keeps the
// pool trivially ThreadSanitizer-clean; a chase-lev deque is a drop-in
// upgrade behind this interface if profiles ever show lock contention.
//
// The locking protocol is machine-checked two ways: StealQueue's deque is
// GUARDED_BY its capability-annotated Mutex (base/sync.hpp), so clang's
// -Wthread-safety analysis proves every access path holds the lock, and
// tools/presat_analyze.py enforces that no other std::thread / raw deque
// sharing grows outside this file.
//
// The pool runs *closed* batches: run() blocks until every task finished and
// the workers joined, so a task body may reference stack-local state of the
// caller. Tasks receive (taskIndex, workerIndex) and must not touch shared
// mutable state — the enumeration layer gives each task an independent
// Solver/engine instance and a private result slot, which is what makes the
// merged result independent of scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "base/metrics.hpp"
#include "base/sync.hpp"
#include "base/thread_annotations.hpp"

namespace presat {

// One worker's share of the task pool. Owner pops the front (LIFO-ish
// locality over the round-robin deal), thieves pop the back (the task with
// the most work queued behind it). All access goes through these methods —
// the deque itself is lock-protected and never escapes.
class StealQueue {
 public:
  // Enqueues a task at the back (the deal phase; also safe mid-run).
  void push(size_t task) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    tasks_.push_back(task);
  }

  // Owner-side pop from the front. Always reports the depth observed at the
  // attempt (including the popped task) in `depthOut`, so the caller can feed
  // the queue-depth histogram even on a miss.
  bool popOwn(size_t& taskOut, size_t& depthOut) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    depthOut = tasks_.size();
    if (tasks_.empty()) return false;
    taskOut = tasks_.front();
    tasks_.pop_front();
    return true;
  }

  // Thief-side pop from the back.
  bool steal(size_t& taskOut) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    taskOut = tasks_.back();
    tasks_.pop_back();
    return true;
  }

  // Empties the queue, returning how many tasks were abandoned. Used after
  // the join barrier: nonzero is legal only once a stop predicate tripped
  // (graceful degradation) — the caller asserts the batch-closed contract.
  size_t drain() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    size_t n = tasks_.size();
    tasks_.clear();
    return n;
  }

 private:
  Mutex mutex_;
  std::deque<size_t> tasks_ GUARDED_BY(mutex_);
};

struct WorkerPoolStats {
  uint64_t tasksRun = 0;
  uint64_t steals = 0;        // tasks obtained from another worker's deque
  uint64_t tasksSkipped = 0;  // tasks drained un-run because stop() tripped
  Histogram queueDepth;       // own-deque depth observed at each pop attempt
  Histogram taskMicros;       // per-task wall time, microseconds
};

// Long-lived companion to WorkerPool for service workloads (src/serve/):
// where WorkerPool runs one closed batch and joins, ServicePool keeps its
// workers parked on a condition variable between submissions, so a daemon can
// dispatch request closures onto pre-warmed threads for the lifetime of the
// process. Same concurrency discipline as the batch pool — one annotated
// Mutex, no lock-free structures — and the same single-spawn-site rule: its
// threads are constructed in worker_pool.cpp only.
//
// Lifecycle: start(n) spawns the workers; submit() hands over a closure
// (rejected once stopping); stop() wakes everyone, lets already-DEQUEUED
// closures finish, abandons still-queued ones (counted, like the batch
// pool's tasksSkipped), and joins. The destructor stops implicitly.
// Queueing discipline is deliberately FIFO-dumb: admission control and
// fairness live in the serve scheduler, which decides what a submitted
// closure *does* at dequeue time.
class ServicePool {
 public:
  ServicePool();  // out-of-line: ServicePoolImpl is incomplete here
  ~ServicePool();

  ServicePool(const ServicePool&) = delete;
  ServicePool& operator=(const ServicePool&) = delete;

  // Spawns `numThreads` (< 1 clamped to 1) parked workers. Call once.
  void start(int numThreads);

  // Enqueues a closure for some worker to run. Returns false (dropping the
  // closure) once stop() has begun or before start() — callers translate
  // that into their own shutdown/overload handling.
  bool submit(std::function<void()> fn);

  // Drains and joins: queued-but-unstarted closures are abandoned (see
  // abandoned()), in-flight ones run to completion. Idempotent.
  void stop();

  // Blocks until every submitted closure has either run or been abandoned
  // and no worker is mid-closure. Used by the server's clean-shutdown path
  // (stop accepting, then quiesce, then stop()).
  void quiesce();

  int numThreads() const { return numThreads_; }
  uint64_t submitted() const;
  uint64_t completed() const;
  uint64_t abandoned() const;

 private:
  friend struct ServicePoolImpl;

  int numThreads_ = 0;
  // Opaque owner of the worker threads + queue; worker_pool.cpp defines it.
  // (unique_ptr keeps std::thread out of this header entirely.)
  std::unique_ptr<struct ServicePoolImpl> impl_;
};

class WorkerPool {
 public:
  // numThreads < 1 is clamped to 1.
  explicit WorkerPool(int numThreads);

  int numThreads() const { return numThreads_; }

  // Runs fn(task, worker) for every task in [0, numTasks), blocking until all
  // complete. A task that throws aborts via the PRESAT_CHECK path — engines
  // report failure through their result slots, not exceptions.
  //
  // `stop` (optional) is the cooperative-cancellation hook: each worker
  // re-evaluates it before popping another task and, once it returns true,
  // drains — in-flight tasks finish normally, queued tasks are abandoned and
  // counted in tasksSkipped. run() still joins every worker before
  // returning, so the caller sees a quiescent pool either way. The batch-
  // closed invariant (no tasks left behind) is only enforced when no stop
  // predicate tripped.
  void run(size_t numTasks, const std::function<void(size_t task, int worker)>& fn,
           const std::function<bool()>& stop = nullptr);

  // Stats of every run() so far (aggregated across workers after each join,
  // so reading them between runs needs no synchronization).
  const WorkerPoolStats& stats() const { return stats_; }

  // Serializes the pool stats under the parallel.* metric names.
  void exportMetrics(Metrics& m) const;

 private:
  int numThreads_;
  WorkerPoolStats stats_;
};

}  // namespace presat
