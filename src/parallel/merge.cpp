#include "parallel/merge.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "base/log.hpp"
#include "bdd/bdd.hpp"

namespace presat {

void accumulateShardStats(AllSatStats& total, const AllSatStats& shard) {
  total.satCalls += shard.satCalls;
  total.conflicts += shard.conflicts;
  total.decisions += shard.decisions;
  total.propagations += shard.propagations;
  total.restarts += shard.restarts;
  total.reduceDBs += shard.reduceDBs;
  total.deletedClauses += shard.deletedClauses;
  total.blockingClauses += shard.blockingClauses;
  total.blockingLiterals += shard.blockingLiterals;
  total.memoHits += shard.memoHits;
  total.memoMisses += shard.memoMisses;
  total.memoEvictions += shard.memoEvictions;
  total.memoEntries += shard.memoEntries;
  total.memoBytes += shard.memoBytes;
  total.graphNodes += shard.graphNodes;
  total.graphEdges += shard.graphEdges;
  total.flips += shard.flips;
  total.shrinkLits += shard.shrinkLits;
  // Shards run independent solvers; the meaningful global figure is the
  // worst single database, not the sum. Max over a fixed shard set is
  // schedule-independent, preserving the determinism contract.
  total.dbClausesPeak = std::max(total.dbClausesPeak, shard.dbClausesPeak);
}

AllSatResult mergeShardSummaries(std::vector<ShardOutcome>& shards) {
  AllSatResult merged;
  size_t totalCubes = 0;
  for (const ShardOutcome& shard : shards) totalCubes += shard.result.cubes.size();
  merged.cubes.reserve(totalCubes);
  for (ShardOutcome& shard : shards) {
    for (LitVec& cube : shard.result.cubes) merged.cubes.push_back(std::move(cube));
    shard.result.cubes.clear();
    // Disjoint shards: the union count is the sum of the shard counts.
    merged.mintermCount += shard.result.mintermCount;
    merged.complete = merged.complete && shard.result.complete;
    merged.outcome = combineOutcomes(merged.outcome, shard.result.outcome);
    accumulateShardStats(merged.stats, shard.result.stats);
    merged.metrics.merge(shard.result.metrics);
  }
  return merged;
}

SolutionGraph mergeSolutionGraphs(const std::vector<ShardOutcome>& shards,
                                  const std::vector<Var>& splitVars) {
  PRESAT_CHECK(shards.size() == (static_cast<size_t>(1) << splitVars.size()))
      << "shard count does not match the split plan";
  SolutionGraph merged;

  // Import every shard's nodes up front (shard order), remembering the index
  // offset; terminals need no translation.
  std::vector<int> offset(shards.size(), 0);
  auto translate = [](int child, int base) {
    return child >= 0 ? child + base : child;
  };
  for (size_t i = 0; i < shards.size(); ++i) {
    offset[i] = static_cast<int>(merged.numNodes());
    PRESAT_CHECK(shards[i].hasGraph) << "graph merge on a shard without a solution graph";
    const SolutionGraph& g = shards[i].graph;
    for (size_t n = 0; n < g.numNodes(); ++n) {
      SolutionGraph::Node node = g.node(static_cast<int>(n));
      node.branch[0].child = translate(node.branch[0].child, offset[i]);
      node.branch[1].child = translate(node.branch[1].child, offset[i]);
      merged.addNode(node);
    }
  }

  // Recursive tree over the shard-index range: depth d (root = 0) splits on
  // bit |splitVars|-1-d, so a depth-first visit reaches the leaves in shard
  // order; branch[0] is polarity 0. Subtrees whose shards all failed
  // collapse to kFail instead of materializing dead decision nodes (the
  // graph.dead-node invariant the auditor enforces).
  auto build = [&](auto&& self, size_t lo, size_t hi) -> SolutionGraph::Branch {
    if (hi - lo == 1) {
      const ShardOutcome& shard = shards[lo];
      const SolutionGraph::Branch& root = shard.graph.root();
      SolutionGraph::Branch leaf;
      leaf.child = translate(root.child, offset[lo]);
      if (leaf.child != SolutionGraph::kFail) leaf.newLits = root.newLits;
      return leaf;
    }
    size_t mid = lo + (hi - lo) / 2;
    // A range of 2^(bit+1) shards splits on splitVars[bit]: the root of the
    // full 2^k range branches on the highest split variable, index k-1.
    size_t bit = 0;
    while ((static_cast<size_t>(1) << (bit + 1)) < hi - lo) ++bit;
    SolutionGraph::Node node;
    node.decisionId = static_cast<uint32_t>(splitVars[bit]);
    node.branch[0] = self(self, lo, mid);
    node.branch[1] = self(self, mid, hi);
    if (node.branch[0].child == SolutionGraph::kFail &&
        node.branch[1].child == SolutionGraph::kFail) {
      return SolutionGraph::Branch{};  // child = kFail
    }
    return SolutionGraph::Branch{merged.addNode(node), {}};
  };

  SolutionGraph::Branch top = build(build, 0, shards.size());
  merged.setRoot(top.child, std::move(top.newLits));
  return merged;
}

AuditResult auditShardPartition(const std::vector<ShardOutcome>& shards,
                                int numProjectionVars) {
  AuditResult audit;
  BddManager mgr(numProjectionVars);

  std::vector<BddRef> guides;
  std::vector<BddRef> unions;
  guides.reserve(shards.size());
  unions.reserve(shards.size());
  for (const ShardOutcome& shard : shards) {
    guides.push_back(mgr.cube(shard.guide));
    unions.push_back(cubesToBdd(mgr, shard.result.cubes));
  }

  for (size_t i = 0; i < shards.size(); ++i) {
    // Every shard cube must stay inside its guiding cube — sum-of-counts and
    // concatenation both silently overcount if one leaks.
    if (mgr.bddAnd(unions[i], mgr.bddNot(guides[i])) != BddManager::kFalse) {
      audit.fail("parallel.shard.guide",
                 "shard " + std::to_string(i) + " enumerated solutions outside its guiding cube");
    }
    for (size_t j = i + 1; j < shards.size(); ++j) {
      if (mgr.bddAnd(guides[i], guides[j]) != BddManager::kFalse) {
        audit.fail("parallel.guide.disjoint", "guiding cubes " + std::to_string(i) + " and " +
                                                  std::to_string(j) + " overlap");
      }
      if (mgr.bddAnd(unions[i], unions[j]) != BddManager::kFalse) {
        audit.fail("parallel.shard.disjoint", "shards " + std::to_string(i) + " and " +
                                                  std::to_string(j) +
                                                  " enumerated overlapping solution sets");
      }
    }
  }
  return audit;
}

void corruptShardsForTest(std::vector<ShardOutcome>& shards, ShardCorruption kind) {
  // Find a donor shard with at least one cube; the generator-suite fixtures
  // in the tests guarantee one exists.
  size_t donor = shards.size();
  for (size_t i = 0; i < shards.size(); ++i) {
    if (!shards[i].result.cubes.empty()) {
      donor = i;
      break;
    }
  }
  PRESAT_CHECK(donor < shards.size()) << "corruption hook needs a shard with cubes";

  switch (kind) {
    case ShardCorruption::kForeignCube: {
      size_t victim = (donor + 1) % shards.size();
      PRESAT_CHECK(victim != donor) << "corruption hook needs at least two shards";
      shards[victim].result.cubes.push_back(shards[donor].result.cubes.front());
      break;
    }
    case ShardCorruption::kGuideEscape: {
      LitVec& cube = shards[donor].result.cubes.front();
      LitVec stripped;
      for (Lit l : cube) {
        bool isGuideVar = false;
        for (Lit g : shards[donor].guide) {
          if (g.var() == l.var()) {
            isGuideVar = true;
            break;
          }
        }
        if (!isGuideVar) stripped.push_back(l);
      }
      PRESAT_CHECK(stripped.size() < cube.size())
          << "corruption hook found no guide literal to strip";
      cube = std::move(stripped);
      break;
    }
  }
}

}  // namespace presat
