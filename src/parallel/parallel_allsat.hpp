// Cube-and-conquer front-end over the enumeration engines.
//
// The search space is partitioned into disjoint guiding cubes
// (parallel/cube_splitter.hpp), each subproblem is solved by an independent
// serial engine instance on a work-stealing pool (parallel/worker_pool.hpp),
// and the per-shard answers are reassembled deterministically
// (parallel/merge.hpp). Workers share NOTHING mutable: each owns its Solver /
// justification engine, its CNF copy or objective list, and a private result
// slot indexed by shard — disjointness is what removes the blocking-clause
// interference that makes naive parallel all-SAT unsound.
//
// Determinism contract: the split plan depends only on the problem and
// ParallelOptions::splitDepth — never on `jobs` — and the merge is keyed by
// shard index, so any jobs >= 1 produces a bit-identical AllSatResult
// (cubes, counts, graph). Only wall-clock time and the parallel.* pool
// metrics vary with the worker count.
#pragma once

#include <vector>

#include "allsat/cube_blocking.hpp"
#include "allsat/projection.hpp"
#include "allsat/success_driven.hpp"
#include "cnf/cnf.hpp"

namespace presat {

// Parallel counterpart of successDrivenAllSat. The returned solution graph
// is the shard graphs merged under a split-variable decision tree; summary
// cubes are re-enumerated from the merged graph (same maxCubes semantics as
// the serial engine).
SuccessDrivenResult parallelSuccessDrivenAllSat(const CircuitAllSatProblem& problem,
                                                const AllSatOptions& options);

// Which serial CNF engine solves each subcube.
enum class ParallelCnfEngine {
  kMintermBlocking,
  kCubeBlocking,  // honors options.liftModels + `lifter` like the serial engine
  // Chronological backtracking (allsat/chrono_blocking.hpp). The guide
  // literals are unit clauses, i.e. level-0 assignments, so every emitted
  // prefix cube contains them automatically — the engine cannot escape its
  // shard and needs no guide-preserving lifter wrapper.
  kChrono,
};

// Parallel counterpart of mintermBlockingAllSat / cubeBlockingAllSat. Each
// shard solves a copy of `cnf` with its guiding cube added as unit clauses.
// `lifter` (may be empty) is built against the ORIGINAL formula; the shards
// wrap it so every lifted cube keeps its guide literals and stays inside the
// shard's region of the partition.
AllSatResult parallelCnfAllSat(const Cnf& cnf, const std::vector<Var>& projection,
                               ParallelCnfEngine engine, const ModelLifter& lifter,
                               const AllSatOptions& options);

}  // namespace presat
