// Deep structural validation of the CDCL solver.
//
// Checks the invariants the incremental blocking-clause enumeration leans on
// across hundreds of re-solves:
//
//   solver.watch.pair     every clause of size >= 2 is watched on exactly its
//                         first two literals, once each, and no other watcher
//                         references it
//   solver.watch.dangling a watch list entry points at a clause that is not
//                         in the database
//   solver.trail.assign   trail literals agree with assigns_; a variable is
//                         assigned iff it is on the trail, exactly once
//   solver.trail.level    per-variable decision levels match the trail
//                         segments delimited by trailLim_; qhead_ in range
//   solver.reason.implied reason clauses imply their variable: lits[0] is the
//                         implied literal (true), all others false at levels
//                         not above the implied literal's
//   solver.learnt.count   numLearnts/numOriginal agree with the clause
//                         database and with SolverStats
//   solver.heap.order     decision-heap index map and max-heap property;
//                         every unassigned decision variable is present
//
// Valid at decision level 0 (between solve() calls) — exactly where the
// all-SAT engines and tests call it.
#pragma once

#include "check/audit.hpp"

namespace presat {

class Solver;

AuditResult auditSolver(const Solver& solver);

// Test-only corruption hooks: deliberately violate one audited invariant so
// the corruption tests can prove the matching diagnostic fires. Each kind
// requires the corresponding structure to be non-trivial (e.g. a clause of
// size >= 3 for kSwapWatchedLiteral) and CHECK-fails otherwise.
enum class SolverCorruption : int {
  kSwapWatchedLiteral,  // reorder a clause's literals without moving watches
  kDropWatcher,         // remove one watch list entry
  kLearntCountDrift,    // learnt-clause counter disagrees with the database
  kTrailLevelSkew,      // level_ entry inconsistent with the trail structure
  kReasonFirstLiteral,  // reason clause whose lits[0] is not the implied literal
};
void corruptSolverForTest(Solver& solver, SolverCorruption kind);

// Test-only: force an unconditional arena compaction right now, regardless of
// the waste fraction. Lets tests exercise clause relocation at chosen points
// (notably mid-enumeration, where reason_ and enumUnitReasons_ refs must
// survive) without having to manufacture a quarter-arena of garbage first.
// Same quiescence requirement as the solver's internal trigger: call it
// between enumerateNextModel() calls or between solve() calls.
void compactSolverForTest(Solver& solver);

}  // namespace presat
