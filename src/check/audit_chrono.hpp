// Deep validation of a chronological-enumeration cube set.
//
// The chrono engine (src/allsat/chrono_blocking.cpp) promises cubes that are
// pairwise disjoint AND whose union is exactly the projected solution set —
// the two properties its minterm counting and the parallel shard merge rely
// on. This auditor proves both against independent oracles:
//
//   chrono.disjoint   no two cubes share a projected minterm (pairwise
//                     opposite-literal clash, O(n^2) over the cube set)
//   chrono.cover      the cube union equals the BDD projection of the CNF's
//                     solution set (existential quantification of the
//                     non-scope variables) when the enumeration is complete;
//                     containment in it when it was capped. Skipped — not
//                     failed — above `maxOracleVars` (the BDD blows up).
#pragma once

#include <vector>

#include "base/types.hpp"
#include "check/audit.hpp"
#include "cnf/cnf.hpp"

namespace presat {

struct ChronoAuditOptions {
  // The chrono.cover oracle builds a BDD over every CNF variable; skip it
  // beyond this many (the structural disjointness check always runs).
  int maxOracleVars = 24;
  // Diagnostic name prefix: "chrono" for the plain engine, "proj" when
  // auditing a projected-native run (same invariants, distinct failure
  // names so a report pinpoints the mode).
  const char* diagPrefix = "chrono";
};

// `cubes` are in the projected index space (literal variable i refers to
// projection[i]), as produced by chronoAllSat. `complete` selects equality
// vs containment for chrono.cover.
AuditResult auditChronoCubes(const Cnf& cnf, const std::vector<Var>& projection,
                             const std::vector<LitVec>& cubes, bool complete,
                             const ChronoAuditOptions& options = {});

// Test-only corruption hooks for the death tests in tests/chrono_test.cpp.
enum class ChronoCorruption {
  kDuplicateCube,  // re-emit an existing cube -> chrono.disjoint
  kDropCube,       // lose a cube -> chrono.cover (complete run only)
};
void corruptChronoCubesForTest(std::vector<LitVec>& cubes, ChronoCorruption kind);

}  // namespace presat
