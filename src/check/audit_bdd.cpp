#include "check/audit_bdd.hpp"

#include <string>

#include "bdd/bdd.hpp"

namespace presat {

namespace {

std::string refStr(BddRef f) { return "@" + std::to_string(f); }

}  // namespace

AuditResult auditBdd(const BddManager& mgr) {
  AuditResult r;
  const size_t n = mgr.nodes_.size();
  const Var terminalVar = static_cast<Var>(mgr.numVars_);

  // -- terminals ------------------------------------------------------------
  if (n < 2) {
    r.fail("bdd.terminal", "node table has " + std::to_string(n) + " entries (need both terminals)");
    return r;
  }
  for (BddRef t : {BddManager::kFalse, BddManager::kTrue}) {
    const BddManager::Node& node = mgr.nodes_[t];
    if (node.var != terminalVar || node.lo != t || node.hi != t) {
      r.fail("bdd.terminal", "terminal " + refStr(t) + " is not self-referential with var == numVars");
    }
  }

  // -- interior nodes: ordering + reduction --------------------------------
  for (BddRef f = 2; f < n; ++f) {
    const BddManager::Node& node = mgr.nodes_[f];
    if (node.var < 0 || node.var >= terminalVar) {
      r.fail("bdd.ordering", "node " + refStr(f) + " has variable " + std::to_string(node.var) +
                                 " outside [0, " + std::to_string(mgr.numVars_) + ")");
      continue;
    }
    if (node.lo >= n || node.hi >= n) {
      r.fail("bdd.ordering", "node " + refStr(f) + " has a child out of range");
      continue;
    }
    if (node.lo == node.hi) {
      r.fail("bdd.reduced", "node " + refStr(f) + " on x" + std::to_string(node.var) +
                                " has lo == hi == " + refStr(node.lo));
    }
    for (BddRef child : {node.lo, node.hi}) {
      if (mgr.nodes_[child].var <= node.var) {
        r.fail("bdd.ordering", "node " + refStr(f) + " on x" + std::to_string(node.var) +
                                   " points at child " + refStr(child) + " on x" +
                                   std::to_string(mgr.nodes_[child].var) +
                                   " — variable order must strictly increase");
      }
    }
  }

  // -- unique table vs node array ------------------------------------------
  if (n != mgr.unique_.size() + 2) {
    r.fail("bdd.unique.balance",
           std::to_string(n) + " nodes vs " + std::to_string(mgr.unique_.size()) +
               " unique-table entries (expected nodes == entries + 2 terminals)");
  }
  for (const auto& [key, ref] : mgr.unique_) {
    if (ref < 2 || ref >= n) {
      r.fail("bdd.unique.canonical",
             "unique-table entry maps to invalid ref " + refStr(ref));
      continue;
    }
    const BddManager::Node& node = mgr.nodes_[ref];
    if (node.var != key.var || node.lo != key.lo || node.hi != key.hi) {
      r.fail("bdd.unique.canonical",
             "unique-table key (" + std::to_string(key.var) + ", " + refStr(key.lo) + ", " +
                 refStr(key.hi) + ") maps to node " + refStr(ref) + " with a different triple");
    }
  }
  for (BddRef f = 2; f < n; ++f) {
    const BddManager::Node& node = mgr.nodes_[f];
    auto it = mgr.unique_.find({node.var, node.lo, node.hi});
    if (it == mgr.unique_.end()) {
      r.fail("bdd.unique.canonical", "node " + refStr(f) + " is missing from the unique table");
    } else if (it->second != f) {
      r.fail("bdd.unique.canonical", "nodes " + refStr(f) + " and " + refStr(it->second) +
                                         " share the same (var, lo, hi) triple");
    }
  }

  // -- ITE cache ------------------------------------------------------------
  for (const auto& [key, ref] : mgr.iteCache_) {
    if (key.f >= n || key.g >= n || key.h >= n || ref >= n) {
      r.fail("bdd.cache.range", "ITE cache entry references a ref beyond the node table");
    }
  }

  return r;
}

void corruptBddForTest(BddManager& mgr, BddCorruption kind) {
  switch (kind) {
    case BddCorruption::kOrderViolation: {
      for (BddRef f = 2; f < mgr.nodes_.size(); ++f) {
        // Point lo back at the node itself: same variable, order violated.
        mgr.nodes_[f].lo = f;
        return;
      }
      PRESAT_CHECK(false) << "corruptBddForTest: no interior node";
    }
    case BddCorruption::kRedundantNode:
      // Bypasses mkNode's reduction rule; also unbalances the unique table.
      mgr.nodes_.push_back({0, BddManager::kTrue, BddManager::kTrue});
      return;
    case BddCorruption::kUniqueTableDrift: {
      PRESAT_CHECK(!mgr.unique_.empty()) << "corruptBddForTest: empty unique table";
      mgr.unique_.erase(mgr.unique_.begin());
      return;
    }
  }
  PRESAT_CHECK(false) << "corruptBddForTest: unknown corruption kind";
}

}  // namespace presat
