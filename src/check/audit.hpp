// Common result type of the deep structural validators in src/check/.
//
// Each auditor walks one core structure (CDCL solver, solution graph,
// netlist, BDD manager) and reports every violated invariant as a named
// diagnostic instead of aborting at the first hit — callers decide whether a
// violation is fatal (PRESAT_CHECK_AUDIT), a test expectation (the corruption
// tests match on the invariant name), or a CLI exit code (presat_cli audit).
//
// Invariant names are stable dotted paths ("solver.watch.pair",
// "graph.acyclic", ...) — tests and the CLI match on them, so renaming one is
// a breaking change.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/check.hpp"

namespace presat {

struct AuditIssue {
  std::string invariant;  // stable dotted name, e.g. "solver.watch.pair"
  std::string detail;     // human-readable specifics (ids, counts, literals)
};

class AuditResult {
 public:
  void fail(std::string invariant, std::string detail) {
    issues_.push_back({std::move(invariant), std::move(detail)});
  }

  bool ok() const { return issues_.empty(); }
  const std::vector<AuditIssue>& issues() const { return issues_; }
  bool has(std::string_view invariant) const;

  // All issues, one "invariant: detail" line each (empty string when ok).
  std::string toString() const;

  // Folds `other`'s issues into this result (used by composite audits).
  void merge(AuditResult other);

 private:
  std::vector<AuditIssue> issues_;
};

}  // namespace presat

// Aborts via checkFailed with every diagnostic when the audit found issues.
#define PRESAT_CHECK_AUDIT(call)                                            \
  do {                                                                      \
    const ::presat::AuditResult presatAuditResult_ = (call);                \
    PRESAT_CHECK(presatAuditResult_.ok())                                   \
        << "audit failed:\n" << presatAuditResult_.toString();              \
  } while (0)
