// Deep structural + semantic validation of a SolutionGraph.
//
// Structural invariants (always checked):
//
//   graph.child-range   every branch child is kSuccess, kFail, or a valid
//                       node index
//   graph.acyclic       the child relation is a DAG (general DFS — does not
//                       assume the engine's children-before-parents layout)
//   graph.dead-node     no stored node has both branches kFail (the engine
//                       collapses those to kFail at the parent)
//   graph.branch.lits   no branch assigns the same projected variable twice;
//                       literals are within the projected index space when
//                       its size is known
//   graph.path.repeat   no root-to-SUCCESS path assigns a projected variable
//                       twice (exact polynomial check over the DAG via
//                       per-node below-variable sets — never enumerates)
//
// Semantic invariants (need the projection width / original problem):
//
//   graph.count.cubes-vs-bdd  the union of the enumerated path cubes equals
//                       the graph's own BDD semantics (skipped when the cube
//                       enumeration cap truncates)
//   graph.cube.unsat    every sampled path cube is sound for the original
//                       circuit problem: the cube's source assignments (plus
//                       random completions of the unassigned projection
//                       sources) admit an input assignment satisfying the
//                       objectives — checked by SAT on the Tseitin encoding.
//                       Cubes promise ∀state ∃input, so plain ternary
//                       simulation is NOT sufficient here.
#pragma once

#include <cstdint>

#include "check/audit.hpp"

namespace presat {

class SolutionGraph;
struct CircuitAllSatProblem;

struct SolutionGraphAuditOptions {
  // Enables graph.cube.unsat and fixes the projection width. May be null:
  // structural checks still run, semantic ones are skipped.
  const CircuitAllSatProblem* problem = nullptr;
  // Projection width when `problem` is null (-1 = infer an upper bound from
  // the literals, which still enables graph.count.cubes-vs-bdd).
  int numProjectionVars = -1;
  // Cap on cubes enumerated for the BDD cross-check (0 disables it; the
  // check is skipped, not failed, when the cap truncates).
  uint64_t maxEnumeratedCubes = 4096;
  // Cap on per-cube SAT soundness checks (0 disables graph.cube.unsat).
  uint64_t maxCubeSatChecks = 256;
  // Random minterm completions tested per sampled cube (the ∀state part).
  int completionsPerCube = 2;
  uint64_t randomSeed = 0x9e3779b97f4a7c15ull;
};

AuditResult auditSolutionGraph(const SolutionGraph& graph,
                               const SolutionGraphAuditOptions& options = {});

}  // namespace presat
