#include "check/audit_solver.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/log.hpp"
#include "sat/solver.hpp"

namespace presat {

namespace {

// The watch-pair invariant is set-based, not positional: propagate() swaps
// lits[0]/lits[1] in place without touching the other side's watcher entry,
// so a clause is correctly watched iff each of the two lists keyed by
// ~lits[0] and ~lits[1] holds exactly one watcher for it and no other list
// holds any.
struct WatchCount {
  int onFirst = 0;   // entries in the list for ~lits[0]
  int onSecond = 0;  // entries in the list for ~lits[1]
  int elsewhere = 0;
};

}  // namespace

AuditResult auditSolver(const Solver& s) {
  AuditResult r;
  const size_t numVars = s.assigns_.size();
  const ClauseArena& arena = s.arena_;

  auto litsOf = [&arena](ClauseRef c) {
    return LitVec(arena.lits(c), arena.lits(c) + arena.size(c));
  };

  // -- clause database vs counters -----------------------------------------
  // Reasons may reference either a stored clause or a synthetic enumeration
  // unit reason (never in clauses_), so the db set spans both.
  size_t learnt = 0;
  size_t original = 0;
  std::unordered_set<ClauseRef> db;
  for (ClauseRef c : s.clauses_) {
    db.insert(c);
    if (arena.dead(c)) {
      r.fail("solver.clause.size",
             "clause database holds a freed arena clause (missing sweepDeadClauses?)");
      continue;
    }
    const LitVec lits = litsOf(c);
    if (arena.learnt(c)) {
      ++learnt;
    } else {
      ++original;
    }
    if (lits.size() < 2) {
      r.fail("solver.clause.size",
             "stored clause " + toString(lits) + " has size < 2 (units are enqueued, not stored)");
    }
    for (size_t i = 0; i + 1 < lits.size(); ++i) {
      for (size_t j = i + 1; j < lits.size(); ++j) {
        if (lits[i].var() == lits[j].var()) {
          r.fail("solver.clause.duplicate-var",
                 "clause " + toString(lits) + " mentions x" +
                     std::to_string(lits[i].var()) + " twice");
        }
      }
    }
    for (Lit l : lits) {
      if (l.var() < 0 || static_cast<size_t>(l.var()) >= numVars) {
        r.fail("solver.clause.var-range",
               "clause literal " + toString(l) + " out of range (numVars=" +
                   std::to_string(numVars) + ")");
      }
    }
  }
  for (ClauseRef c : s.enumUnitReasons_) {
    db.insert(c);
    if (arena.dead(c)) {
      r.fail("solver.clause.size", "enumeration unit reason references a freed arena clause");
      continue;
    }
    if (arena.size(c) != 1) {
      r.fail("solver.clause.size",
             "enumeration unit reason " + toString(litsOf(c)) + " has size != 1");
    }
  }
  if (learnt != s.numLearnts_ || original != s.numOriginal_) {
    r.fail("solver.learnt.count",
           "database holds " + std::to_string(learnt) + " learnt / " +
               std::to_string(original) + " original clauses but counters say " +
               std::to_string(s.numLearnts_) + " / " + std::to_string(s.numOriginal_));
  }
  if (s.stats_.learntClauses < s.stats_.deletedClauses ||
      s.stats_.learntClauses - s.stats_.deletedClauses != s.numLearnts_) {
    r.fail("solver.learnt.count",
           "stats say learnt=" + std::to_string(s.stats_.learntClauses) + " deleted=" +
               std::to_string(s.stats_.deletedClauses) + " but numLearnts=" +
               std::to_string(s.numLearnts_));
  }

  // -- watch lists ----------------------------------------------------------
  std::unordered_map<ClauseRef, WatchCount> watched;
  for (size_t code = 0; code < s.watches_.size(); ++code) {
    const Lit listLit = Lit::fromCode(static_cast<int32_t>(code));
    for (const Solver::Watcher& w : s.watches_[code]) {
      if (db.find(w.clause) == db.end() || arena.dead(w.clause)) {
        r.fail("solver.watch.dangling",
               "watch list of " + toString(listLit) + " references a clause not in the database");
        continue;
      }
      const LitVec lits = litsOf(w.clause);
      WatchCount& count = watched[w.clause];
      if (lits.size() >= 2 && listLit == ~lits[0]) {
        ++count.onFirst;
      } else if (lits.size() >= 2 && listLit == ~lits[1]) {
        ++count.onSecond;
      } else {
        ++count.elsewhere;
        r.fail("solver.watch.pair",
               "clause " + toString(lits) + " has a watcher in the list of " +
                   toString(listLit) + ", which is not a watched position");
      }
      if (std::find(lits.begin(), lits.end(), w.blocker) == lits.end()) {
        r.fail("solver.watch.blocker",
               "watcher of clause " + toString(lits) + " carries blocker " +
                   toString(w.blocker) + " that is not in the clause");
      }
    }
  }
  for (ClauseRef c : s.clauses_) {
    if (arena.dead(c) || arena.size(c) < 2) continue;  // already reported above
    const WatchCount count = watched.count(c) ? watched[c] : WatchCount{};
    if (count.onFirst != 1 || count.onSecond != 1) {
      r.fail("solver.watch.pair",
             "clause " + toString(litsOf(c)) + " watched " + std::to_string(count.onFirst) +
                 "x on ~lits[0] and " + std::to_string(count.onSecond) +
                 "x on ~lits[1] (expected exactly 1x each)");
    }
  }

  // -- trail structure ------------------------------------------------------
  if (s.qhead_ < 0 || static_cast<size_t>(s.qhead_) > s.trail_.size()) {
    r.fail("solver.trail.level",
           "qhead=" + std::to_string(s.qhead_) + " outside trail of size " +
               std::to_string(s.trail_.size()));
  }
  int prevLim = 0;
  for (size_t k = 0; k < s.trailLim_.size(); ++k) {
    const int lim = s.trailLim_[k];
    if (lim < prevLim || static_cast<size_t>(lim) > s.trail_.size()) {
      r.fail("solver.trail.level",
             "trailLim[" + std::to_string(k) + "]=" + std::to_string(lim) +
                 " not monotone within trail of size " + std::to_string(s.trail_.size()));
    }
    prevLim = std::max(prevLim, lim);
  }

  std::unordered_map<Var, int> trailPos;
  for (size_t i = 0; i < s.trail_.size(); ++i) {
    const Lit l = s.trail_[i];
    const Var v = l.var();
    if (v < 0 || static_cast<size_t>(v) >= numVars) {
      r.fail("solver.trail.assign", "trail[" + std::to_string(i) + "]=" + toString(l) +
                                        " references an unknown variable");
      continue;
    }
    if (!trailPos.emplace(v, static_cast<int>(i)).second) {
      r.fail("solver.trail.assign",
             "x" + std::to_string(v) + " appears twice on the trail");
    }
    if (!s.value(l).isTrue()) {
      r.fail("solver.trail.assign",
             "trail literal " + toString(l) + " is not assigned true");
    }
    // The level of trail position i is the number of decision-level marks at
    // or below i (assumption handling can create empty segments, which this
    // formulation handles naturally).
    int expectedLevel = 0;
    for (int lim : s.trailLim_) {
      if (lim <= static_cast<int>(i)) ++expectedLevel;
    }
    if (s.level_[static_cast<size_t>(v)] != expectedLevel) {
      r.fail("solver.trail.level",
             "x" + std::to_string(v) + " at trail position " + std::to_string(i) +
                 " has level " + std::to_string(s.level_[static_cast<size_t>(v)]) +
                 " but the trail segments say " + std::to_string(expectedLevel));
    }
  }
  for (size_t v = 0; v < numVars; ++v) {
    const bool assigned = !s.assigns_[v].isUndef();
    const bool onTrail = trailPos.count(static_cast<Var>(v)) != 0;
    if (assigned != onTrail) {
      r.fail("solver.trail.assign",
             "x" + std::to_string(v) + (assigned ? " is assigned but not on the trail"
                                                 : " is on the trail but unassigned"));
    }
  }

  // -- reason clauses -------------------------------------------------------
  for (size_t v = 0; v < numVars; ++v) {
    const ClauseRef reason = s.reason_[v];
    if (reason == kNullClauseRef) continue;
    if (s.assigns_[v].isUndef()) {
      r.fail("solver.reason.implied",
             "unassigned x" + std::to_string(v) + " still has a reason clause");
      continue;
    }
    if (db.find(reason) == db.end() || arena.dead(reason)) {
      r.fail("solver.reason.implied",
             "reason of x" + std::to_string(v) + " is not in the clause database");
      continue;
    }
    const LitVec lits = litsOf(reason);
    if (lits.empty() || lits[0].var() != static_cast<Var>(v) || !s.value(lits[0]).isTrue()) {
      r.fail("solver.reason.implied",
             "reason clause " + toString(lits) + " of x" + std::to_string(v) +
                 " does not have the implied literal first and true");
      continue;
    }
    for (size_t i = 1; i < lits.size(); ++i) {
      if (!s.value(lits[i]).isFalse()) {
        r.fail("solver.reason.implied",
               "reason clause " + toString(lits) + " of x" + std::to_string(v) +
                   " has non-false antecedent " + toString(lits[i]));
      } else if (s.level_[static_cast<size_t>(lits[i].var())] >
                 s.level_[static_cast<size_t>(v)]) {
        r.fail("solver.reason.implied",
               "antecedent " + toString(lits[i]) + " of x" + std::to_string(v) +
                   " was assigned at a later level than the implied literal");
      }
    }
  }

  // -- decision heap --------------------------------------------------------
  std::unordered_set<Var> inHeap;
  for (size_t pos = 0; pos < s.heap_.size(); ++pos) {
    const Var v = s.heap_[pos];
    if (v < 0 || static_cast<size_t>(v) >= numVars) {
      r.fail("solver.heap.order", "heap[" + std::to_string(pos) + "]=x" +
                                      std::to_string(v) + " out of range");
      continue;
    }
    if (!inHeap.insert(v).second) {
      r.fail("solver.heap.order", "x" + std::to_string(v) + " appears twice in the heap");
    }
    if (s.heapIndex_[static_cast<size_t>(v)] != static_cast<int>(pos)) {
      r.fail("solver.heap.order",
             "heapIndex of x" + std::to_string(v) + " is " +
                 std::to_string(s.heapIndex_[static_cast<size_t>(v)]) + ", expected " +
                 std::to_string(pos));
    }
    if (pos > 0) {
      const Var parent = s.heap_[(pos - 1) / 2];
      if (s.activity_[static_cast<size_t>(parent)] < s.activity_[static_cast<size_t>(v)]) {
        r.fail("solver.heap.order",
               "max-heap property violated between x" + std::to_string(parent) + " and x" +
                   std::to_string(v));
      }
    }
  }
  for (size_t v = 0; v < numVars; ++v) {
    if (s.heapIndex_[v] >= 0 && inHeap.count(static_cast<Var>(v)) == 0) {
      r.fail("solver.heap.order",
             "heapIndex of x" + std::to_string(v) + " is set but the var is not in the heap");
    }
    // Lazy removal means assigned / non-decision vars may linger in the heap,
    // but every unassigned decidable var must be present for pickBranchLit.
    if (s.assigns_[v].isUndef() && s.decision_[v] && inHeap.count(static_cast<Var>(v)) == 0) {
      r.fail("solver.heap.order",
             "unassigned decision var x" + std::to_string(v) + " missing from the heap");
    }
  }

  return r;
}

void corruptSolverForTest(Solver& s, SolverCorruption kind) {
  switch (kind) {
    case SolverCorruption::kSwapWatchedLiteral: {
      for (ClauseRef c : s.clauses_) {
        if (s.arena_.size(c) >= 3) {
          Lit* lits = s.arena_.lits(c);
          std::swap(lits[1], lits[2]);
          return;
        }
      }
      PRESAT_CHECK(false) << "corruptSolverForTest: no clause of size >= 3";
    }
    case SolverCorruption::kDropWatcher: {
      for (auto& list : s.watches_) {
        if (!list.empty()) {
          list.pop_back();
          return;
        }
      }
      PRESAT_CHECK(false) << "corruptSolverForTest: no watcher to drop";
    }
    case SolverCorruption::kLearntCountDrift:
      ++s.numLearnts_;
      return;
    case SolverCorruption::kTrailLevelSkew: {
      PRESAT_CHECK(!s.trail_.empty()) << "corruptSolverForTest: empty trail";
      s.level_[static_cast<size_t>(s.trail_.front().var())] += 1;
      return;
    }
    case SolverCorruption::kReasonFirstLiteral: {
      for (size_t v = 0; v < s.reason_.size(); ++v) {
        ClauseRef reason = s.reason_[v];
        if (reason != kNullClauseRef && s.arena_.size(reason) >= 2) {
          // Swapping the two watched positions keeps the watch-pair set
          // intact, so only the reason invariant fires.
          Lit* lits = s.arena_.lits(reason);
          std::swap(lits[0], lits[1]);
          return;
        }
      }
      PRESAT_CHECK(false) << "corruptSolverForTest: no var with a clause reason";
    }
  }
  PRESAT_CHECK(false) << "corruptSolverForTest: unknown corruption kind";
}

void compactSolverForTest(Solver& s) { s.garbageCollect(); }

}  // namespace presat
