#include "check/audit.hpp"

namespace presat {

bool AuditResult::has(std::string_view invariant) const {
  for (const AuditIssue& issue : issues_) {
    if (issue.invariant == invariant) return true;
  }
  return false;
}

std::string AuditResult::toString() const {
  std::string out;
  for (const AuditIssue& issue : issues_) {
    if (!out.empty()) out += "\n";
    out += issue.invariant;
    out += ": ";
    out += issue.detail;
  }
  return out;
}

void AuditResult::merge(AuditResult other) {
  for (AuditIssue& issue : other.issues_) issues_.push_back(std::move(issue));
}

}  // namespace presat
