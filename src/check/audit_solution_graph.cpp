#include "check/audit_solution_graph.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "allsat/projection.hpp"
#include "allsat/solution_graph.hpp"
#include "allsat/success_driven.hpp"
#include "base/log.hpp"
#include "bdd/bdd.hpp"
#include "circuit/tseitin.hpp"
#include "sat/solver.hpp"

namespace presat {

namespace {

constexpr int kSuccess = SolutionGraph::kSuccess;
constexpr int kFail = SolutionGraph::kFail;

uint64_t nextRandom(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Checks one branch's literal list in isolation: duplicate projected vars and
// index-space range.
void checkBranchLits(AuditResult& r, const LitVec& lits, int projWidth,
                     const std::string& where) {
  std::vector<Var> vars;
  for (Lit l : lits) {
    if (l.var() < 0 || (projWidth >= 0 && l.var() >= projWidth)) {
      r.fail("graph.branch.lits", where + " literal " + toString(l) +
                                      " outside the projected index space [0, " +
                                      std::to_string(projWidth) + ")");
      continue;
    }
    vars.push_back(l.var());
  }
  std::sort(vars.begin(), vars.end());
  if (std::adjacent_find(vars.begin(), vars.end()) != vars.end()) {
    r.fail("graph.branch.lits",
           where + " assigns the same projected variable more than once: " + toString(lits));
  }
}

}  // namespace

AuditResult auditSolutionGraph(const SolutionGraph& g,
                               const SolutionGraphAuditOptions& opt) {
  AuditResult r;
  const int n = static_cast<int>(g.numNodes());
  const auto validChild = [n](int c) { return c == kSuccess || c == kFail || (c >= 0 && c < n); };

  // -- child ranges ---------------------------------------------------------
  bool rangesOk = true;
  if (!validChild(g.root().child)) {
    r.fail("graph.child-range", "root child " + std::to_string(g.root().child) +
                                    " out of range (numNodes=" + std::to_string(n) + ")");
    rangesOk = false;
  }
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < 2; ++b) {
      const int child = g.node(i).branch[b].child;
      if (!validChild(child)) {
        r.fail("graph.child-range", "node " + std::to_string(i) + " branch " +
                                        std::to_string(b) + " child " + std::to_string(child) +
                                        " out of range (numNodes=" + std::to_string(n) + ")");
        rangesOk = false;
      }
    }
  }
  if (!rangesOk) return r;  // traversal below would index out of bounds

  // -- dead FAIL-only interior nodes ---------------------------------------
  for (int i = 0; i < n; ++i) {
    if (g.node(i).branch[0].child == kFail && g.node(i).branch[1].child == kFail) {
      r.fail("graph.dead-node",
             "node " + std::to_string(i) + " (decision d" +
                 std::to_string(g.node(i).decisionId) +
                 ") has both branches FAIL — the engine collapses those to FAIL");
    }
  }

  // -- acyclicity (general iterative DFS over every stored node) -----------
  // Colors: 0 = unvisited, 1 = on the current DFS path, 2 = done. The
  // post-order doubles as a children-before-parents order for the DAG passes
  // below.
  std::vector<uint8_t> color(static_cast<size_t>(n), 0);
  std::vector<int> postorder;
  postorder.reserve(static_cast<size_t>(n));
  bool acyclic = true;
  for (int start = 0; start < n && acyclic; ++start) {
    if (color[static_cast<size_t>(start)] != 0) continue;
    std::vector<std::pair<int, int>> stack;  // (node, next branch to explore)
    stack.emplace_back(start, 0);
    color[static_cast<size_t>(start)] = 1;
    while (!stack.empty() && acyclic) {
      auto& [node, nextBranch] = stack.back();
      if (nextBranch == 2) {
        color[static_cast<size_t>(node)] = 2;
        postorder.push_back(node);
        stack.pop_back();
        continue;
      }
      const int child = g.node(node).branch[nextBranch++].child;
      if (child < 0) continue;
      uint8_t& c = color[static_cast<size_t>(child)];
      if (c == 1) {
        r.fail("graph.acyclic", "cycle through node " + std::to_string(child) +
                                    " reached from node " + std::to_string(node));
        acyclic = false;
      } else if (c == 0) {
        c = 1;
        stack.emplace_back(child, 0);
      }
    }
  }

  // -- projection width -----------------------------------------------------
  int projWidth = opt.numProjectionVars;
  if (opt.problem != nullptr) {
    projWidth = static_cast<int>(opt.problem->projectionSources.size());
  }
  if (projWidth < 0) {
    // Infer an upper bound so the range check and the BDD cross-check still
    // have a consistent variable universe.
    Var maxVar = -1;
    for (Lit l : g.root().newLits) maxVar = std::max(maxVar, l.var());
    for (int i = 0; i < n; ++i) {
      for (const auto& b : g.node(i).branch) {
        for (Lit l : b.newLits) maxVar = std::max(maxVar, l.var());
      }
    }
    projWidth = static_cast<int>(maxVar) + 1;
  }

  // -- per-branch literal hygiene ------------------------------------------
  checkBranchLits(r, g.root().newLits, projWidth, "root branch");
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < 2; ++b) {
      checkBranchLits(r, g.node(i).branch[b].newLits, projWidth,
                      "node " + std::to_string(i) + " branch " + std::to_string(b));
    }
  }

  if (!acyclic) return r;  // the DAG passes below assume a valid postorder

  // -- exact path-level variable-repeat check ------------------------------
  // belowVars[i] = union of projected vars assigned on any live (SUCCESS-
  // reaching) branch at or below node i. A non-empty intersection between a
  // branch's own literals and belowVars of its child witnesses a real
  // root-to-SUCCESS path assigning a variable twice — without enumerating
  // paths.
  std::vector<char> reaches(static_cast<size_t>(n), 0);
  std::vector<std::vector<bool>> belowVars(
      static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(std::max(projWidth, 0)), false));
  const auto childReaches = [&](int child) {
    if (child == kSuccess) return true;
    if (child == kFail) return false;
    return reaches[static_cast<size_t>(child)] != 0;
  };
  const auto checkRepeat = [&](const LitVec& lits, int child, const std::string& where) {
    if (child < 0 || !childReaches(child)) return;
    for (Lit l : lits) {
      if (l.var() >= 0 && l.var() < projWidth && belowVars[static_cast<size_t>(child)][static_cast<size_t>(l.var())]) {
        r.fail("graph.path.repeat",
               where + " assigns " + toString(l) +
                   " which is assigned again on a live path below node " + std::to_string(child));
      }
    }
  };
  for (int node : postorder) {
    auto& below = belowVars[static_cast<size_t>(node)];
    for (int b = 0; b < 2; ++b) {
      const SolutionGraph::Branch& branch = g.node(node).branch[b];
      if (!childReaches(branch.child)) continue;
      reaches[static_cast<size_t>(node)] = 1;
      checkRepeat(branch.newLits, branch.child,
                  "node " + std::to_string(node) + " branch " + std::to_string(b));
      for (Lit l : branch.newLits) {
        if (l.var() >= 0 && l.var() < projWidth) below[static_cast<size_t>(l.var())] = true;
      }
      if (branch.child >= 0) {
        const auto& childBelow = belowVars[static_cast<size_t>(branch.child)];
        for (size_t v = 0; v < childBelow.size(); ++v) {
          if (childBelow[v]) below[v] = true;
        }
      }
    }
  }
  checkRepeat(g.root().newLits, g.root().child, "root branch");

  // The semantic passes below feed enumerated cubes into BddManager::cube
  // and the SAT encoder, both of which CHECK on contradictory cubes — any
  // structural violation above makes those crash-prone, so stop here.
  if (!r.ok()) return r;

  // -- enumerated cubes vs the graph's own BDD semantics -------------------
  if (opt.maxEnumeratedCubes > 0 && projWidth >= 0) {
    std::vector<LitVec> cubes = g.enumerateCubes(opt.maxEnumeratedCubes + 1);
    if (cubes.size() <= opt.maxEnumeratedCubes) {  // skip when truncated
      BddManager mgr(projWidth);
      const BddRef fromGraph = g.toBdd(mgr);
      const BddRef fromCubes = cubesToBdd(mgr, cubes);
      if (!BddManager::equal(fromGraph, fromCubes)) {
        r.fail("graph.count.cubes-vs-bdd",
               "union of " + std::to_string(cubes.size()) + " enumerated cubes (" +
                   mgr.satCount(fromCubes).toDecimal() + " minterms) disagrees with the graph BDD (" +
                   mgr.satCount(fromGraph).toDecimal() + " minterms)");
      }
    }
  }

  // -- per-cube soundness against the original circuit problem -------------
  // A cube promises: for EVERY completion of the unassigned projection
  // sources there is an input assignment satisfying the objectives. The SAT
  // check below tests the cube itself plus a few random completions; ternary
  // simulation cannot express the inner existential over the inputs.
  if (opt.problem != nullptr && opt.problem->netlist != nullptr && opt.maxCubeSatChecks > 0) {
    const CircuitAllSatProblem& p = *opt.problem;
    std::vector<NodeId> roots;
    for (const NodeAssign& obj : p.objectives) roots.push_back(obj.first);
    const CircuitEncoding enc = encodeCircuit(*p.netlist, roots);
    Solver solver;
    solver.addCnf(enc.cnf);
    bool objectivesSat = solver.okay();
    for (const NodeAssign& obj : p.objectives) {
      if (!solver.addClause({enc.litOf(obj.first, obj.second)})) {
        objectivesSat = false;
        break;
      }
    }
    const std::vector<LitVec> cubes = g.enumerateCubes(opt.maxCubeSatChecks);
    if (!objectivesSat) {
      if (!cubes.empty()) {
        r.fail("graph.cube.unsat",
               "objectives are unsatisfiable but the graph enumerates " +
                   std::to_string(cubes.size()) + " cube(s)");
      }
      return r;
    }
    uint64_t rng = opt.randomSeed;
    for (const LitVec& cube : cubes) {
      LitVec base;
      std::vector<bool> fixed(p.projectionSources.size(), false);
      for (Lit l : cube) {
        if (l.var() < 0 || static_cast<size_t>(l.var()) >= p.projectionSources.size()) continue;
        fixed[static_cast<size_t>(l.var())] = true;
        const NodeId src = p.projectionSources[static_cast<size_t>(l.var())];
        if (enc.isEncoded(src)) base.push_back(enc.litOf(src, !l.sign()));
      }
      for (int attempt = 0; attempt <= opt.completionsPerCube; ++attempt) {
        LitVec assumptions = base;
        if (attempt > 0) {
          // Random completion of the projection sources left free by the
          // cube — the universal side of the cube's guarantee.
          for (size_t j = 0; j < p.projectionSources.size(); ++j) {
            if (fixed[j] || !enc.isEncoded(p.projectionSources[j])) continue;
            assumptions.push_back(enc.litOf(p.projectionSources[j], (nextRandom(rng) & 1) != 0));
          }
        }
        if (!solver.solve(assumptions).isTrue()) {
          r.fail("graph.cube.unsat",
                 "cube " + toString(cube) +
                     (attempt == 0 ? " admits no satisfying input assignment"
                                   : " fails under a random completion of the free sources"));
          break;
        }
      }
    }
  }

  return r;
}

}  // namespace presat
