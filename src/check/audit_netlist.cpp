#include "check/audit_netlist.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist.hpp"

namespace presat {

namespace {

std::string describe(const Netlist& nl, NodeId id) {
  std::string s = "node " + std::to_string(id) + " (" + gateTypeName(nl.type(id));
  if (!nl.name(id).empty()) s += " '" + nl.name(id) + "'";
  return s + ")";
}

bool arityOk(GateType type, size_t n) {
  switch (type) {
    case GateType::kConst0:
    case GateType::kConst1:
    case GateType::kInput:
      return n == 0;
    case GateType::kDff:
      return n <= 1;  // == 1 is enforced separately as netlist.dff.data
    case GateType::kBuf:
    case GateType::kNot:
      return n == 1;
    case GateType::kMux:
      return n == 3;
    default:
      return n >= 1;
  }
}

bool commutative(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

}  // namespace

AuditResult auditNetlist(const Netlist& nl, const NetlistAuditOptions& opt) {
  AuditResult r;
  const NodeId n = static_cast<NodeId>(nl.numNodes());

  // -- fanin ranges, arity, DFF data pins ----------------------------------
  bool rangesOk = true;
  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nl.node(id);
    for (NodeId f : g.fanins) {
      if (f >= n) {
        r.fail("netlist.fanin.range",
               describe(nl, id) + " has fanin id " + std::to_string(f) + " out of range");
        rangesOk = false;
      }
    }
    if (!arityOk(g.type, g.fanins.size())) {
      r.fail("netlist.arity", describe(nl, id) + " has " + std::to_string(g.fanins.size()) +
                                  " fanins, which is invalid for its type");
    }
    if (g.type == GateType::kDff && g.fanins.size() != 1) {
      r.fail("netlist.dff.data", describe(nl, id) + " has no connected data pin");
    }
  }
  if (!rangesOk) return r;  // the traversals below would index out of bounds

  // -- combinational acyclicity (Kahn's algorithm, non-aborting) -----------
  {
    std::vector<int> pending(n, 0);
    std::vector<std::vector<NodeId>> outs(n);
    std::vector<NodeId> queue;
    for (NodeId id = 0; id < n; ++id) {
      if (!isCombinational(nl.type(id))) {
        queue.push_back(id);
        continue;
      }
      pending[id] = static_cast<int>(nl.fanins(id).size());
      for (NodeId f : nl.fanins(id)) outs[f].push_back(id);
    }
    size_t settled = queue.size();
    for (size_t head = 0; head < queue.size(); ++head) {
      for (NodeId out : outs[queue[head]]) {
        if (--pending[out] == 0) {
          queue.push_back(out);
          ++settled;
        }
      }
    }
    if (settled != n) {
      for (NodeId id = 0; id < n; ++id) {
        if (isCombinational(nl.type(id)) && pending[id] > 0) {
          r.fail("netlist.acyclic", describe(nl, id) + " is on a combinational cycle");
        }
      }
    }
  }

  // -- name index -----------------------------------------------------------
  for (const auto& [name, id] : nl.byName_) {
    if (id >= n) {
      r.fail("netlist.name.map", "name '" + name + "' maps to out-of-range node " +
                                     std::to_string(id));
    } else if (nl.name(id) != name) {
      r.fail("netlist.name.map", "name '" + name + "' maps to " + describe(nl, id) +
                                     " which carries a different name");
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    if (!nl.name(id).empty() && nl.findByName(nl.name(id)) != id) {
      r.fail("netlist.name.map", describe(nl, id) + " is not reachable through the name index");
    }
  }

  if (!opt.expectStrashed) return r;

  // -- strash canonicity ----------------------------------------------------
  std::map<std::pair<GateType, std::vector<NodeId>>, NodeId> canonical;
  for (NodeId id = 0; id < n; ++id) {
    const GateNode& g = nl.node(id);
    if (!isCombinational(g.type)) continue;
    if (g.type == GateType::kBuf) {
      r.fail("netlist.strash.buf", describe(nl, id) + " survived the sweep");
    }
    for (NodeId f : g.fanins) {
      if (nl.type(f) == GateType::kConst0 || nl.type(f) == GateType::kConst1) {
        r.fail("netlist.strash.const-fanin",
               describe(nl, id) + " keeps constant fanin " + describe(nl, f));
      }
    }
    std::vector<NodeId> key = g.fanins;
    if (commutative(g.type)) std::sort(key.begin(), key.end());
    auto [it, inserted] = canonical.emplace(std::make_pair(g.type, std::move(key)), id);
    if (!inserted) {
      r.fail("netlist.strash.duplicate",
             describe(nl, id) + " duplicates " + describe(nl, it->second));
    }
  }
  {
    std::vector<NodeId> roots = nl.outputs();
    for (NodeId dff : nl.dffs()) {
      if (nl.fanins(dff).size() == 1) roots.push_back(nl.fanins(dff)[0]);
    }
    std::vector<bool> inCone(n, false);
    for (NodeId id : nl.coneOf(roots)) inCone[id] = true;
    for (NodeId id = 0; id < n; ++id) {
      if (isCombinational(nl.type(id)) && !inCone[id]) {
        r.fail("netlist.strash.dangling",
               describe(nl, id) + " is outside the cone of the outputs and next-state functions");
      }
    }
  }

  return r;
}

void corruptNetlistForTest(Netlist& nl, NetlistCorruption kind) {
  switch (kind) {
    case NetlistCorruption::kSelfLoop: {
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (isCombinational(nl.type(id))) {
          nl.nodes_[id].fanins[0] = id;
          return;
        }
      }
      PRESAT_CHECK(false) << "corruptNetlistForTest: no combinational gate";
    }
    case NetlistCorruption::kArity: {
      // A second fanin violates the fixed arity of a NOT gate, or the
      // single-data-pin arity of a DFF (whose fanin edges are sequential,
      // so no other invariant is disturbed).
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (nl.type(id) == GateType::kNot) {
          nl.nodes_[id].fanins.push_back(nl.nodes_[id].fanins[0]);
          return;
        }
      }
      for (NodeId id : nl.dffs()) {
        if (!nl.nodes_[id].fanins.empty()) {
          nl.nodes_[id].fanins.push_back(nl.nodes_[id].fanins[0]);
          return;
        }
      }
      PRESAT_CHECK(false) << "corruptNetlistForTest: no NOT gate or connected DFF";
    }
    case NetlistCorruption::kDffData: {
      PRESAT_CHECK(!nl.dffs().empty()) << "corruptNetlistForTest: no DFF";
      nl.nodes_[nl.dffs().front()].fanins.clear();
      return;
    }
    case NetlistCorruption::kDuplicateGate: {
      for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (isCombinational(nl.type(id))) {
          nl.nodes_.push_back({nl.type(id), nl.fanins(id), ""});
          return;
        }
      }
      PRESAT_CHECK(false) << "corruptNetlistForTest: no combinational gate";
    }
    case NetlistCorruption::kNameMapSkew: {
      for (auto& [name, id] : nl.byName_) {
        id = (id + 1) % static_cast<NodeId>(nl.numNodes());
        return;
      }
      PRESAT_CHECK(false) << "corruptNetlistForTest: empty name index";
    }
  }
  PRESAT_CHECK(false) << "corruptNetlistForTest: unknown corruption kind";
}

}  // namespace presat
