// Deep structural validation of a Netlist.
//
// Unlike Netlist::validate() (which aborts on the first violation), the audit
// reports every violated invariant as a named diagnostic:
//
//   netlist.fanin.range   every fanin id indexes an existing node
//   netlist.arity         per-type fanin arity (NOT/BUF 1, MUX 3, n-ary >= 1,
//                         sources 0)
//   netlist.dff.data      every DFF has exactly one connected data pin
//   netlist.acyclic       the combinational core is a DAG (DFF data edges are
//                         sequential and exempt)
//   netlist.name.map      the name index maps each name to the node carrying
//                         it, bijectively
//
// With expectStrashed (output of strashSweep):
//
//   netlist.strash.buf        no BUF gates survive the sweep
//   netlist.strash.const-fanin no combinational gate keeps a constant fanin
//   netlist.strash.duplicate  no two gates share (type, canonical fanins) —
//                             fanins sorted for commutative types
//   netlist.strash.dangling   every combinational gate is in the cone of the
//                             outputs or a DFF data pin
#pragma once

#include "check/audit.hpp"

namespace presat {

class Netlist;

struct NetlistAuditOptions {
  // Additionally require the canonicity invariants strashSweep guarantees.
  bool expectStrashed = false;
};

AuditResult auditNetlist(const Netlist& netlist, const NetlistAuditOptions& options = {});

// Test-only corruption hooks (see SolverCorruption for the pattern).
enum class NetlistCorruption : int {
  kSelfLoop,        // point a gate fanin at the gate itself
  kArity,           // give a NOT gate a second fanin
  kDffData,         // disconnect a DFF's data pin
  kDuplicateGate,   // append a structural duplicate of an existing gate
  kNameMapSkew,     // name index entry pointing at the wrong node
};
void corruptNetlistForTest(Netlist& netlist, NetlistCorruption kind);

}  // namespace presat
