#include "check/audit_chrono.hpp"

#include <string>

#include "allsat/projection.hpp"
#include "base/log.hpp"
#include "bdd/bdd.hpp"

namespace presat {

AuditResult auditChronoCubes(const Cnf& cnf, const std::vector<Var>& projection,
                             const std::vector<LitVec>& cubes, bool complete,
                             const ChronoAuditOptions& options) {
  AuditResult audit;
  const std::string prefix(options.diagPrefix);

  // <prefix>.disjoint — cofactor divide-and-conquer verdict first (near-
  // linear on honest covers); only a failing verdict pays for the quadratic
  // rescan that names the offending pair.
  if (!cubesPairwiseDisjoint(cubes)) {
    for (size_t i = 0; i < cubes.size(); ++i) {
      for (size_t j = i + 1; j < cubes.size(); ++j) {
        bool clash = false;
        for (Lit a : cubes[i]) {
          for (Lit b : cubes[j]) {
            if (a.var() == b.var() && a.sign() != b.sign()) {
              clash = true;
              break;
            }
          }
          if (clash) break;
        }
        if (!clash) {
          audit.fail(prefix + ".disjoint", "cubes " + std::to_string(i) + " and " +
                                               std::to_string(j) +
                                               " share a projected minterm");
        }
      }
    }
  }

  // <prefix>.cover — BDD oracle over the full variable set.
  if (cnf.numVars() > options.maxOracleVars) return audit;
  BddManager mgr(cnf.numVars());
  BddRef formula = BddManager::kTrue;
  for (const Clause& c : cnf.clauses()) {
    BddRef clause = BddManager::kFalse;
    for (Lit l : c) clause = mgr.bddOr(clause, mgr.cube({l}));
    formula = mgr.bddAnd(formula, clause);
  }
  std::vector<bool> inScope(static_cast<size_t>(cnf.numVars()), false);
  for (Var v : projection) inScope[static_cast<size_t>(v)] = true;
  std::vector<Var> nonScope;
  for (Var v = 0; v < cnf.numVars(); ++v) {
    if (!inScope[static_cast<size_t>(v)]) nonScope.push_back(v);
  }
  BddRef projected = mgr.exists(formula, nonScope);

  // Translate the cubes from the projected index space back to the original
  // variables so both sides live in the same manager.
  BddRef unionBdd = BddManager::kFalse;
  for (const LitVec& cube : cubes) {
    LitVec orig;
    orig.reserve(cube.size());
    for (Lit l : cube) {
      PRESAT_CHECK(l.var() >= 0 && static_cast<size_t>(l.var()) < projection.size())
          << "chrono cube literal outside the projected index space";
      orig.push_back(mkLit(projection[static_cast<size_t>(l.var())], l.sign()));
    }
    unionBdd = mgr.bddOr(unionBdd, mgr.cube(orig));
  }

  if (complete) {
    if (unionBdd != projected) {
      audit.fail(prefix + ".cover",
                 "cube union differs from the BDD projection of the solution set");
    }
  } else if (mgr.bddAnd(unionBdd, mgr.bddNot(projected)) != BddManager::kFalse) {
    audit.fail(prefix + ".cover", "partial cube union contains a non-solution minterm");
  }
  return audit;
}

void corruptChronoCubesForTest(std::vector<LitVec>& cubes, ChronoCorruption kind) {
  PRESAT_CHECK(!cubes.empty()) << "corruption hook needs a non-empty cube set";
  switch (kind) {
    case ChronoCorruption::kDuplicateCube:
      cubes.push_back(cubes.front());
      break;
    case ChronoCorruption::kDropCube:
      cubes.pop_back();
      break;
  }
}

}  // namespace presat
