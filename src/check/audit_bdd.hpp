// Deep structural validation of a BddManager.
//
//   bdd.terminal          refs 0/1 are the terminals, tagged var == numVars
//   bdd.ordering          every interior node's variable strictly precedes
//                         both children's variables (ROBDD order invariant)
//   bdd.reduced           no interior node has lo == hi
//   bdd.unique.canonical  the unique table and the node array agree: every
//                         interior node is hash-consed under exactly its
//                         (var, lo, hi) triple, and no triple repeats
//   bdd.unique.balance    nodes == unique entries + 2 terminals — the
//                         no-GC analogue of refcount balance (a drifting
//                         table silently breaks canonicity of future mkNode
//                         calls)
//   bdd.cache.range       ITE cache operands/results are live refs
#pragma once

#include "check/audit.hpp"

namespace presat {

class BddManager;

AuditResult auditBdd(const BddManager& mgr);

// Test-only corruption hooks (see SolverCorruption for the pattern).
enum class BddCorruption : int {
  kOrderViolation,   // interior node pointing at a child of non-greater var
  kRedundantNode,    // interior node with lo == hi
  kUniqueTableDrift, // drop a unique-table entry, leaving the node orphaned
};
void corruptBddForTest(BddManager& mgr, BddCorruption kind);

}  // namespace presat
