#include "govern/faults.hpp"

#if defined(PRESAT_FAULTS)

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace presat::faults {
namespace {

constexpr size_t kMaxSiteLen = 64;

// One armed site at a time. The site name is written before `armed` is
// released and readers acquire `armed` before touching it, so concurrent
// maybeFail calls from worker threads are safe; arming itself must happen
// before governed work starts.
char g_site[kMaxSiteLen] = {};
// presat-analyze: lockfree(release store after g_site is written; maybeFail
// acquires it before reading the site, so arming publishes the name safely)
std::atomic<bool> g_armed{false};
// presat-analyze: lockfree(fetch_sub countdown; exactly one caller sees the
// 1 -> 0 transition, which is the fire-once guarantee)
std::atomic<uint64_t> g_countdown{0};
// presat-analyze: lockfree(relaxed telemetry counter for tests)
std::atomic<uint64_t> g_hits{0};
// presat-analyze: lockfree(latched fired flag; countdown's unique decrement
// winner is the only writer after arming)
std::atomic<bool> g_fired{false};

// FNV-1a, for deriving per-site countdowns from a sweep seed.
uint64_t hashSiteSeed(const char* site, uint64_t seed) noexcept {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint8_t>(*p)) * 1099511628211ull;
  }
  return h;
}

}  // namespace

bool maybeFail(const char* site) noexcept {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  if (std::strncmp(site, g_site, kMaxSiteLen) != 0) return false;
  g_hits.fetch_add(1, std::memory_order_relaxed);
  if (g_fired.load(std::memory_order_relaxed)) return false;  // exactly once
  if (g_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    g_fired.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void armFault(const char* site, uint64_t after) noexcept {
  g_armed.store(false, std::memory_order_release);
  std::strncpy(g_site, site, kMaxSiteLen - 1);
  g_site[kMaxSiteLen - 1] = '\0';
  g_countdown.store(after == 0 ? 1 : after, std::memory_order_relaxed);
  g_hits.store(0, std::memory_order_relaxed);
  g_fired.store(false, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarmFaults() noexcept {
  g_armed.store(false, std::memory_order_release);
  g_hits.store(0, std::memory_order_relaxed);
  g_fired.store(false, std::memory_order_relaxed);
}

bool armFaultsFromEnv() noexcept {
  const char* site = std::getenv("PRESAT_FAULT_SITE");
  if (site == nullptr || *site == '\0') return false;
  uint64_t after = 1;
  if (const char* a = std::getenv("PRESAT_FAULT_AFTER"); a != nullptr && *a != '\0') {
    after = std::strtoull(a, nullptr, 10);
  } else if (const char* s = std::getenv("PRESAT_FAULT_SEED"); s != nullptr && *s != '\0') {
    // Deterministic depth in [1, 256] derived from (site, seed).
    after = 1 + hashSiteSeed(site, std::strtoull(s, nullptr, 10)) % 256;
  }
  armFault(site, after);
  return true;
}

uint64_t faultHits() noexcept { return g_hits.load(std::memory_order_relaxed); }
bool faultFired() noexcept { return g_fired.load(std::memory_order_relaxed); }

}  // namespace presat::faults

#endif  // PRESAT_FAULTS
