// Deterministic fault injection for the resource governor.
//
// Build with -DPRESAT_FAULTS=ON (CMake option) to compile the hooks in;
// the default build compiles maybeFail() to a constant false so every
// governed site folds away to nothing.
//
// Model: at most one *armed* site at a time, with a countdown N. The N-th
// time execution reaches presat::faults::maybeFail("<site>") for the armed
// site, the hook fires exactly once and the caller injects its failure
// (deadline expiry, allocation failure, shard fault). Arming is explicit
// (armFault, used by tests) or environment-driven (armFaultsFromEnv, used
// by the CI sweep):
//
//   PRESAT_FAULT_SITE=bdd.alloc PRESAT_FAULT_AFTER=100 presat_cli ...
//   PRESAT_FAULT_SITE=sat.alloc PRESAT_FAULT_SEED=7    presat_cli ...
//
// With PRESAT_FAULT_SEED the countdown is derived deterministically from
// hash(site, seed), so a CI lane can sweep seeds to hit sites at varied
// depths while every individual run stays reproducible.
#pragma once

#include <cstdint>

namespace presat::faults {

// Every governed site, for sweep loops. Keep in sync with DESIGN.md.
inline constexpr const char* kSites[] = {
    "govern.deadline",  // Governor::poll — injects wall-clock expiry
    "govern.memory",    // Governor::poll — injects memory-ceiling trip
    "govern.cancel",    // Governor::poll — injects external cancellation
    "sat.alloc",        // Solver clause allocation — injects alloc failure
    "sat.arena.compact",  // clause-arena compaction — injects memory trip
    "cnf.preprocess",   // CNF preprocessing — falls back to identity pass
    "bdd.alloc",        // BddManager::mkNode — injects node-pool exhaustion
    "sd.node",          // success-driven solution-graph growth
    "parallel.shard",   // worker-shard fault — cancels the shared token
};
inline constexpr int kNumSites = static_cast<int>(sizeof(kSites) / sizeof(kSites[0]));

#if defined(PRESAT_FAULTS)

// True exactly once: on the countdown-th hit of the armed site.
bool maybeFail(const char* site) noexcept;

// Arm `site` to fire on its `after`-th hit (1-based; 1 = first hit).
// Replaces any previous arming. Not thread safe against concurrent
// maybeFail — arm before launching governed work.
void armFault(const char* site, uint64_t after) noexcept;

// Clear any armed fault and its hit counters.
void disarmFaults() noexcept;

// Reads PRESAT_FAULT_SITE + PRESAT_FAULT_AFTER / PRESAT_FAULT_SEED and arms
// accordingly. Returns true if a fault was armed.
bool armFaultsFromEnv() noexcept;

// Observability for tests: total maybeFail hits on the armed site, and
// whether the armed fault has fired.
uint64_t faultHits() noexcept;
bool faultFired() noexcept;

#else  // !PRESAT_FAULTS — all hooks are free.

constexpr bool maybeFail(const char* /*site*/) noexcept { return false; }
inline void armFault(const char* /*site*/, uint64_t /*after*/) noexcept {}
inline void disarmFaults() noexcept {}
inline bool armFaultsFromEnv() noexcept { return false; }
constexpr uint64_t faultHits() noexcept { return 0; }
constexpr bool faultFired() noexcept { return false; }

#endif

}  // namespace presat::faults
