// Governor: the runtime enforcer of a Budget.
//
// One Governor instance governs one query end to end — it is shared (by
// plain pointer) across the CDCL solver, all enumeration engines, the BDD
// node allocator, the fixpoint loops, and every parallel worker shard, so
// all of them draw from the same deadline, the same tracked-byte pool, and
// the same conflict cap, and all of them observe the same latched trip.
//
// Thread safety: every member is safe to call concurrently. State is a
// handful of relaxed atomics; the trip reason is latched with a CAS so the
// FIRST reason to fire wins and every later poll reports it unchanged.
//
// Cost model: poll() on an untripped governor is a few relaxed loads plus —
// only when a deadline is set — a steady_clock read every kClockPeriod
// polls. Engines poll once per search-loop iteration; with no Budget fields
// set the engines skip governor wiring entirely, keeping the hot path
// identical to the ungoverned build (the bench-regression lane asserts
// this stays within noise).
#pragma once

#include <atomic>
#include <cstdint>

#include "base/timer.hpp"
#include "govern/budget.hpp"

namespace presat {

class Metrics;

class Governor {
 public:
  explicit Governor(const Budget& budget) : budget_(budget) {}

  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  // Cooperative checkpoint. Returns kComplete while within budget; once any
  // limit fires (or trip() is called) it latches and every subsequent poll
  // returns the same first reason. Also the hook point for the injected
  // govern.deadline / govern.memory / govern.cancel fault sites.
  Outcome poll();

  // True once any trip reason has latched. Cheaper than poll(): one relaxed
  // load, no limit checks — the form worker threads use as a stop predicate.
  bool tripped() const { return loadReason() != Outcome::kComplete; }

  // The latched stop reason (kComplete if still running).
  Outcome reason() const { return loadReason(); }

  // Latch `why` as the stop reason unless one is already latched. Used by
  // the cancel token path, fault injection, and worker-shard faults.
  void trip(Outcome why);

  // Tracked-byte accounting. charge()/release() are called by the memory
  // ledgers wrapping the solver clause arena, the solution graph + memo, and
  // the BDD node pool; the ceiling itself is enforced at the next poll().
  void charge(uint64_t bytes);
  void release(uint64_t bytes);
  uint64_t trackedBytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t peakTrackedBytes() const { return peakBytes_.load(std::memory_order_relaxed); }

  // Conflict accounting toward Budget::conflictLimit (the CDCL solver and
  // the success-driven engine both report here).
  void countConflicts(uint64_t n) { conflicts_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t conflicts() const { return conflicts_.load(std::memory_order_relaxed); }

  double elapsedSeconds() const { return timer_.seconds(); }
  const Budget& budget() const { return budget_; }

  // Emits the govern.* block: tracked/peak bytes, conflicts, poll count,
  // configured limits, and an "outcome" label with the latched reason.
  void exportMetrics(Metrics& m) const;

 private:
  // Deadline clock reads are decimated to one in kClockPeriod polls.
  static constexpr uint64_t kClockPeriod = 32;

  Outcome loadReason() const {
    return static_cast<Outcome>(reason_.load(std::memory_order_relaxed));
  }

  Budget budget_;
  Timer timer_;
  // The governor is deliberately lock-free: poll() sits inside every engine's
  // search loop, and a mutex here would serialize all worker shards on one
  // cache line. The members below are independent monotone counters plus one
  // CAS-latched flag, so relaxed ordering suffices — the only cross-field
  // protocol is "reason_ latches first writer wins", which trip()'s
  // compare_exchange provides on its own.
  // presat-analyze: lockfree(relaxed monotone byte counter; ceiling enforced
  // at the next poll, never read-modify-write dependent on another field)
  std::atomic<uint64_t> bytes_{0};
  // presat-analyze: lockfree(CAS max-loop in charge(); monotone, report-only)
  std::atomic<uint64_t> peakBytes_{0};
  // presat-analyze: lockfree(relaxed monotone conflict counter; compared
  // against an immutable Budget limit at poll)
  std::atomic<uint64_t> conflicts_{0};
  // presat-analyze: lockfree(relaxed poll tick, used only to decimate
  // steady_clock reads; occasional off-by-a-few is harmless)
  std::atomic<uint64_t> polls_{0};
  // presat-analyze: lockfree(trip latch: compare_exchange from kComplete so
  // the FIRST reason wins and later polls read it unchanged)
  std::atomic<uint8_t> reason_{static_cast<uint8_t>(Outcome::kComplete)};
};

// RAII view onto a Governor's tracked-byte pool for one owning structure
// (a solver's clause arena, a solution graph, a BDD node pool). Remembers
// how much it charged and releases the remainder on destruction or
// re-attach, so a structure's bytes can never leak out of the pool when it
// is torn down mid-query. Null-governor ledgers are free no-ops, keeping
// ungoverned hot paths unchanged.
class MemoryLedger {
 public:
  MemoryLedger() = default;
  ~MemoryLedger() { attach(nullptr); }

  MemoryLedger(const MemoryLedger&) = delete;
  MemoryLedger& operator=(const MemoryLedger&) = delete;

  // Releases everything charged so far, then accounts to `governor` (which
  // may be null to detach).
  void attach(Governor* governor) {
    if (governor_ != nullptr && held_ != 0) governor_->release(held_);
    held_ = 0;
    governor_ = governor;
  }

  void charge(uint64_t bytes) {
    if (governor_ == nullptr) return;
    governor_->charge(bytes);
    held_ += bytes;
  }

  void release(uint64_t bytes) {
    if (governor_ == nullptr) return;
    if (bytes > held_) bytes = held_;  // never release more than we charged
    governor_->release(bytes);
    held_ -= bytes;
  }

  Governor* governor() const { return governor_; }
  uint64_t held() const { return held_; }

 private:
  Governor* governor_ = nullptr;
  uint64_t held_ = 0;
};

}  // namespace presat
