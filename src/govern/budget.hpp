// Resource-governance vocabulary: the Budget a caller grants a query, the
// cooperative CancelToken that can revoke it, and the structured Outcome
// every engine reports instead of a bare success bit.
//
// The degradation contract (see DESIGN.md "Resource governance"): when a
// budget trips mid-run, every engine stops at the next cooperative
// checkpoint and returns the cubes enumerated so far. Partial cube sets are
// sound under-approximations — each returned cube contains only genuine
// solutions, counts become lower bounds, and disjointness guarantees are
// preserved — so a caller can always act on what it got.
#pragma once

#include <atomic>
#include <cstdint>

namespace presat {

// Why an engine stopped. kComplete is the only value for which the result
// set is exact; every other value marks a sound partial result plus the
// dominant reason enumeration ended early.
enum class Outcome : uint8_t {
  kComplete = 0,   // ran to exhaustion; result is exact
  kDeadline = 1,   // wall-clock deadline expired
  kMemory = 2,     // tracked-byte ceiling (or an injected allocation fault)
  kConflicts = 3,  // conflict cap (global Budget cap or per-call conflictBudget)
  kCancelled = 4,  // CancelToken tripped (caller or a faulted worker shard)
  kCubeCap = 5,    // AllSatOptions::maxCubes truncated the enumeration
};

const char* outcomeName(Outcome outcome);

// Merge rule for combining per-shard / per-step outcomes: kComplete is the
// identity; otherwise the more urgent stop reason wins (cancellation over
// resource exhaustion over caps).
Outcome combineOutcomes(Outcome a, Outcome b);

// Lock-free cooperative cancellation flag. cancel() may be called from any
// thread (including a signal-ish watchdog); workers observe it at their next
// governor poll. Latched: once cancelled, stays cancelled until reset().
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  void reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  // presat-analyze: lockfree(single latched flag; release store in cancel(),
  // acquire load in cancelled(), so whatever the canceller published is
  // visible to workers that observe the trip)
  std::atomic<bool> cancelled_{false};
};

// Resource limits for one query. Zero means unlimited for every numeric
// field; a null cancel token means not cancellable. A Budget is plain data —
// attach it to a Governor (govern/governor.hpp) to enforce it.
struct Budget {
  double deadlineSeconds = 0.0;   // wall-clock, measured from Governor construction
  uint64_t memLimitBytes = 0;     // ceiling on governor-tracked bytes (clause
                                  // arena + solution graph + memo + BDD pool)
  uint64_t conflictLimit = 0;     // global CDCL/search conflict cap across the
                                  // whole query (all engines, all shards) —
                                  // distinct from the per-SAT-call
                                  // AllSatOptions::conflictBudget
  CancelToken* cancel = nullptr;  // not owned; may outlive many Budgets

  bool unlimited() const {
    return deadlineSeconds <= 0.0 && memLimitBytes == 0 && conflictLimit == 0 &&
           cancel == nullptr;
  }
};

// Thrown only by the BDD manager's node allocator when a governor trips:
// the hash-consed recursion (ite/exists/compose) has no way to return a
// partial node, so it unwinds to the engine boundary, which catches and
// reports a sound partial Outcome. SAT-based engines never throw — they
// observe the trip via Governor::poll() and unwind by returning.
struct GovernorStop {
  Outcome reason = Outcome::kCancelled;
};

}  // namespace presat
