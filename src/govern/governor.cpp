#include "govern/governor.hpp"

#include "base/check.hpp"
#include "base/metrics.hpp"
#include "govern/faults.hpp"

namespace presat {

const char* outcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kComplete: return "complete";
    case Outcome::kDeadline: return "deadline";
    case Outcome::kMemory: return "memory";
    case Outcome::kConflicts: return "conflicts";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kCubeCap: return "cube-cap";
  }
  PRESAT_CHECK(false) << "unknown Outcome " << static_cast<int>(outcome);
  return "?";
}

Outcome combineOutcomes(Outcome a, Outcome b) {
  if (a == Outcome::kComplete) return b;
  if (b == Outcome::kComplete) return a;
  // Urgency order: cancellation > memory > deadline > conflicts > cube cap.
  // (Cancellation usually *caused* the others to be moot; caps are mildest.)
  auto rank = [](Outcome o) {
    switch (o) {
      case Outcome::kCancelled: return 4;
      case Outcome::kMemory: return 3;
      case Outcome::kDeadline: return 2;
      case Outcome::kConflicts: return 1;
      case Outcome::kCubeCap: return 0;
      case Outcome::kComplete: break;
    }
    return -1;
  };
  return rank(a) >= rank(b) ? a : b;
}

void Governor::trip(Outcome why) {
  PRESAT_DCHECK(why != Outcome::kComplete) << "cannot trip with kComplete";
  uint8_t expected = static_cast<uint8_t>(Outcome::kComplete);
  // First reason wins; later trips are ignored so the report is stable.
  reason_.compare_exchange_strong(expected, static_cast<uint8_t>(why),
                                  std::memory_order_relaxed);
}

void Governor::charge(uint64_t bytes) {
  uint64_t now = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peakBytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peakBytes_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void Governor::release(uint64_t bytes) {
  uint64_t before = bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  PRESAT_DCHECK(before >= bytes) << "governor byte pool underflow: releasing "
                                 << bytes << " of " << before;
}

Outcome Governor::poll() {
  uint64_t tick = polls_.fetch_add(1, std::memory_order_relaxed);
  Outcome latched = loadReason();
  if (latched != Outcome::kComplete) return latched;

  if ((budget_.cancel != nullptr && budget_.cancel->cancelled()) ||
      faults::maybeFail("govern.cancel")) {
    trip(Outcome::kCancelled);
  } else if ((budget_.memLimitBytes != 0 &&
              bytes_.load(std::memory_order_relaxed) > budget_.memLimitBytes) ||
             faults::maybeFail("govern.memory")) {
    trip(Outcome::kMemory);
  } else if (budget_.conflictLimit != 0 &&
             conflicts_.load(std::memory_order_relaxed) >= budget_.conflictLimit) {
    trip(Outcome::kConflicts);
  } else if ((budget_.deadlineSeconds > 0.0 && tick % kClockPeriod == 0 &&
              timer_.seconds() >= budget_.deadlineSeconds) ||
             faults::maybeFail("govern.deadline")) {
    trip(Outcome::kDeadline);
  }
  return loadReason();
}

void Governor::exportMetrics(Metrics& m) const {
  m.setCounter("govern.tracked_bytes", trackedBytes());
  m.setCounter("govern.tracked_bytes_peak", peakTrackedBytes());
  m.setCounter("govern.conflicts", conflicts());
  m.setCounter("govern.polls", polls_.load(std::memory_order_relaxed));
  m.setCounter("govern.mem_limit_bytes", budget_.memLimitBytes);
  m.setCounter("govern.conflict_limit", budget_.conflictLimit);
  m.setGauge("govern.deadline_seconds", budget_.deadlineSeconds);
  m.setLabel("govern.outcome", outcomeName(reason()));
}

}  // namespace presat
