#include "circuit/ternary.hpp"

#include "base/log.hpp"

namespace presat {

lbool evalGateTernary(GateType type, const std::vector<lbool>& inputs) {
  switch (type) {
    case GateType::kConst0:
      return l_False;
    case GateType::kConst1:
      return l_True;
    case GateType::kInput:
    case GateType::kDff:
      PRESAT_CHECK(false) << "evalGateTernary called on a source node";
      return l_Undef;
    case GateType::kBuf:
      return inputs[0];
    case GateType::kNot:
      return inputs[0] ^ true;
    case GateType::kAnd:
    case GateType::kNand: {
      bool anyUndef = false;
      bool anyFalse = false;
      for (lbool v : inputs) {
        if (v.isFalse()) anyFalse = true;
        if (v.isUndef()) anyUndef = true;
      }
      lbool r = anyFalse ? l_False : (anyUndef ? l_Undef : l_True);
      return type == GateType::kNand ? (r ^ true) : r;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool anyUndef = false;
      bool anyTrue = false;
      for (lbool v : inputs) {
        if (v.isTrue()) anyTrue = true;
        if (v.isUndef()) anyUndef = true;
      }
      lbool r = anyTrue ? l_True : (anyUndef ? l_Undef : l_False);
      return type == GateType::kNor ? (r ^ true) : r;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = false;
      for (lbool v : inputs) {
        if (v.isUndef()) return l_Undef;
        parity ^= v.isTrue();
      }
      lbool r = lbool(parity);
      return type == GateType::kXnor ? (r ^ true) : r;
    }
    case GateType::kMux: {
      lbool s = inputs[0];
      lbool a = inputs[1];  // selected when s = 0
      lbool b = inputs[2];  // selected when s = 1
      if (s.isFalse()) return a;
      if (s.isTrue()) return b;
      // Select unknown: output known only if both data inputs agree.
      if (!a.isUndef() && a == b) return a;
      return l_Undef;
    }
  }
  return l_Undef;
}

std::vector<lbool> ternarySimulate(const Netlist& netlist,
                                   const std::vector<lbool>& sourceValues) {
  std::vector<lbool> value(netlist.numNodes(), l_Undef);
  std::vector<lbool> ins;
  for (NodeId id : netlist.topologicalOrder()) {
    const GateNode& g = netlist.node(id);
    if (!isCombinational(g.type)) {
      if (g.type == GateType::kConst0) {
        value[id] = l_False;
      } else if (g.type == GateType::kConst1) {
        value[id] = l_True;
      } else {
        value[id] = sourceValues[id];
      }
      continue;
    }
    ins.clear();
    for (NodeId f : g.fanins) ins.push_back(value[f]);
    value[id] = evalGateTernary(g.type, ins);
  }
  return value;
}

}  // namespace presat
