#include "circuit/unroll.hpp"

#include <string>

#include "base/log.hpp"
#include "preimage/transition_system.hpp"

namespace presat {

UnrolledCircuit unroll(const TransitionSystem& system, int frames) {
  PRESAT_CHECK(frames >= 0);
  const Netlist& nl = system.netlist();
  UnrolledCircuit out;

  // Frame-0 state = fresh inputs.
  for (int i = 0; i < system.numStateBits(); ++i) {
    out.initialState.push_back(out.netlist.addInput("s" + std::to_string(i) + "@0"));
  }
  out.stateAt.push_back(out.initialState);

  std::vector<NodeId> order = nl.topologicalOrder();
  for (int t = 0; t < frames; ++t) {
    std::string suffix = "@" + std::to_string(t);
    // Map from original node id to this frame's copy.
    std::vector<NodeId> copy(nl.numNodes(), kNoNode);
    for (int i = 0; i < system.numStateBits(); ++i) {
      copy[system.stateNode(i)] = out.stateAt[static_cast<size_t>(t)][static_cast<size_t>(i)];
    }
    std::vector<NodeId> inputs;
    for (int j = 0; j < system.numInputs(); ++j) {
      NodeId in = out.netlist.addInput(nl.name(system.inputNode(j)) + suffix);
      copy[system.inputNode(j)] = in;
      inputs.push_back(in);
    }
    out.frameInputs.push_back(std::move(inputs));

    for (NodeId id : order) {
      const GateNode& g = nl.node(id);
      switch (g.type) {
        case GateType::kInput:
        case GateType::kDff:
          continue;  // mapped above
        case GateType::kConst0:
        case GateType::kConst1:
          copy[id] = out.netlist.addConst(g.type == GateType::kConst1,
                                          (g.name.empty() ? "c" + std::to_string(id) : g.name) +
                                              suffix);
          continue;
        default: {
          std::vector<NodeId> fanins;
          fanins.reserve(g.fanins.size());
          for (NodeId f : g.fanins) {
            PRESAT_DCHECK(copy[f] != kNoNode);
            fanins.push_back(copy[f]);
          }
          copy[id] = out.netlist.addGate(
              g.type, std::move(fanins),
              (g.name.empty() ? "n" + std::to_string(id) : g.name) + suffix);
        }
      }
    }
    std::vector<NodeId> nextState;
    for (int i = 0; i < system.numStateBits(); ++i) {
      nextState.push_back(copy[system.nextStateRoot(i)]);
    }
    out.stateAt.push_back(std::move(nextState));
  }
  for (NodeId s : out.stateAt.back()) out.netlist.markOutput(s);
  out.netlist.validate();
  return out;
}

}  // namespace presat
