#include "circuit/from_cnf.hpp"

#include <string>

#include "base/log.hpp"

namespace presat {

CnfCircuit cnfToCircuit(const Cnf& cnf) {
  CnfCircuit result;
  Netlist& nl = result.netlist;
  result.varNode.reserve(static_cast<size_t>(cnf.numVars()));
  for (Var v = 0; v < cnf.numVars(); ++v) {
    result.varNode.push_back(nl.addInput("x" + std::to_string(v)));
  }
  std::vector<NodeId> negated(static_cast<size_t>(cnf.numVars()), kNoNode);
  auto litNode = [&](Lit l) -> NodeId {
    NodeId base = result.varNode[static_cast<size_t>(l.var())];
    if (!l.sign()) return base;
    NodeId& inv = negated[static_cast<size_t>(l.var())];
    if (inv == kNoNode) inv = nl.mkNot(base, "nx" + std::to_string(l.var()));
    return inv;
  };

  std::vector<NodeId> clauseNodes;
  clauseNodes.reserve(cnf.numClauses());
  for (size_t i = 0; i < cnf.numClauses(); ++i) {
    const Clause& c = cnf.clause(i);
    if (c.empty()) {
      clauseNodes.push_back(nl.addConst(false, "false" + std::to_string(i)));
      continue;
    }
    std::vector<NodeId> lits;
    lits.reserve(c.size());
    for (Lit l : c) lits.push_back(litNode(l));
    clauseNodes.push_back(lits.size() == 1 ? lits[0]
                                           : nl.addGate(GateType::kOr, std::move(lits),
                                                        "c" + std::to_string(i)));
  }
  if (clauseNodes.empty()) {
    result.root = nl.addConst(true, "true");
  } else if (clauseNodes.size() == 1) {
    result.root = clauseNodes[0];
  } else {
    result.root = nl.addGate(GateType::kAnd, std::move(clauseNodes), "root");
  }
  nl.markOutput(result.root, "sat");
  return result;
}

}  // namespace presat
