// ISCAS89 `.bench` netlist reader/writer.
//
// Accepted grammar (case-insensitive gate names, '#' comments):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(a, b, ...)
// with GATE in {AND, OR, NAND, NOR, NOT, BUF/BUFF, XOR, XNOR, DFF, MUX,
// CONST0, CONST1}. MUX/CONST* are a small dialect extension used by the
// generators (standard ISCAS89 files never contain them). Signals may be
// referenced before definition, as in the original benchmark files.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace presat {

Netlist parseBench(std::istream& in);
Netlist parseBenchString(const std::string& text);
Netlist parseBenchFile(const std::string& path);

void writeBench(std::ostream& out, const Netlist& netlist);
std::string toBenchString(const Netlist& netlist);

}  // namespace presat
