// Three-valued (0/1/X) gate evaluation and forward simulation.
//
// Forward ternary evaluation is the workhorse of model lifting (which inputs
// does this output value actually depend on?) and of the justification
// machinery in the success-driven all-SAT engine.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "circuit/netlist.hpp"

namespace presat {

// Evaluates one gate over three-valued inputs (controlling values win: an
// AND with any 0 input is 0 even if other inputs are X).
lbool evalGateTernary(GateType type, const std::vector<lbool>& inputs);

// Forward-simulates the netlist under a partial assignment of source nodes
// (entries for combinational nodes in `sourceValues` are ignored). Returns a
// value per node; gates whose value is not determined stay X.
std::vector<lbool> ternarySimulate(const Netlist& netlist,
                                   const std::vector<lbool>& sourceValues);

}  // namespace presat
