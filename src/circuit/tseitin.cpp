#include "circuit/tseitin.hpp"

#include "base/log.hpp"

namespace presat {

Var CircuitEncoding::varOf(NodeId id) const {
  PRESAT_CHECK(nodeVar[id] != kNullVar) << "node " << id << " is not in the encoded cone";
  return nodeVar[id];
}

namespace {

// Encodes z <-> XOR(a, b) (4 clauses).
void encodeXor2(Cnf& cnf, Lit z, Lit a, Lit b) {
  cnf.addTernary(~z, a, b);
  cnf.addTernary(~z, ~a, ~b);
  cnf.addTernary(z, ~a, b);
  cnf.addTernary(z, a, ~b);
}

void encodeGate(Cnf& cnf, const GateNode& g, Lit z, const LitVec& ins) {
  switch (g.type) {
    case GateType::kBuf: {
      cnf.addBinary(~z, ins[0]);
      cnf.addBinary(z, ~ins[0]);
      break;
    }
    case GateType::kNot: {
      cnf.addBinary(~z, ~ins[0]);
      cnf.addBinary(z, ins[0]);
      break;
    }
    case GateType::kAnd:
    case GateType::kNand: {
      Lit out = g.type == GateType::kNand ? ~z : z;
      Clause big;
      for (Lit a : ins) {
        cnf.addBinary(~out, a);
        big.push_back(~a);
      }
      big.push_back(out);
      cnf.addClause(std::move(big));
      break;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Lit out = g.type == GateType::kNor ? ~z : z;
      Clause big;
      for (Lit a : ins) {
        cnf.addBinary(out, ~a);
        big.push_back(a);
      }
      big.push_back(~out);
      cnf.addClause(std::move(big));
      break;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Lit out = g.type == GateType::kXnor ? ~z : z;
      if (ins.size() == 1) {
        cnf.addBinary(~out, ins[0]);
        cnf.addBinary(out, ~ins[0]);
        break;
      }
      // Chain: acc = ins[0] ^ ins[1] ^ ... with fresh accumulators, final
      // stage written directly onto the output literal.
      Lit acc = ins[0];
      for (size_t i = 1; i + 1 < ins.size(); ++i) {
        Lit next = mkLit(cnf.newVar());
        encodeXor2(cnf, next, acc, ins[i]);
        acc = next;
      }
      encodeXor2(cnf, out, acc, ins.back());
      break;
    }
    case GateType::kMux: {
      Lit s = ins[0], a = ins[1], b = ins[2];
      cnf.addTernary(~z, s, a);
      cnf.addTernary(z, s, ~a);
      cnf.addTernary(~z, ~s, b);
      cnf.addTernary(z, ~s, ~b);
      // Redundant but propagation-strengthening clauses.
      cnf.addTernary(z, ~a, ~b);
      cnf.addTernary(~z, a, b);
      break;
    }
    default:
      PRESAT_CHECK(false) << "encodeGate on non-combinational node";
  }
}

}  // namespace

CircuitEncoding encodeCircuit(const Netlist& netlist, const std::vector<NodeId>& roots) {
  CircuitEncoding enc;
  enc.nodeVar.assign(netlist.numNodes(), kNullVar);

  std::vector<NodeId> cone;
  if (roots.empty()) {
    cone.reserve(netlist.numNodes());
    for (NodeId id = 0; id < netlist.numNodes(); ++id) cone.push_back(id);
  } else {
    cone = netlist.coneOf(roots);
  }
  std::vector<bool> inCone(netlist.numNodes(), false);
  for (NodeId id : cone) inCone[id] = true;

  // Allocate variables for every cone node first, then write gate clauses in
  // topological order.
  for (NodeId id : cone) enc.nodeVar[id] = enc.cnf.newVar();

  LitVec ins;
  for (NodeId id : netlist.topologicalOrder()) {
    if (!inCone[id]) continue;
    const GateNode& g = netlist.node(id);
    Lit z = mkLit(enc.nodeVar[id]);
    switch (g.type) {
      case GateType::kConst0:
        enc.cnf.addUnit(~z);
        continue;
      case GateType::kConst1:
        enc.cnf.addUnit(z);
        continue;
      case GateType::kInput:
      case GateType::kDff:
        continue;  // free variable
      default:
        break;
    }
    ins.clear();
    for (NodeId f : g.fanins) ins.push_back(mkLit(enc.nodeVar[f]));
    encodeGate(enc.cnf, g, z, ins);
  }
  return enc;
}

}  // namespace presat
