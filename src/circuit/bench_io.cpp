#include "circuit/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "base/log.hpp"

namespace presat {

namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

GateType gateTypeFromName(const std::string& rawName, int lineNo) {
  std::string n = upper(rawName);
  if (n == "AND") return GateType::kAnd;
  if (n == "OR") return GateType::kOr;
  if (n == "NAND") return GateType::kNand;
  if (n == "NOR") return GateType::kNor;
  if (n == "NOT" || n == "INV") return GateType::kNot;
  if (n == "BUF" || n == "BUFF") return GateType::kBuf;
  if (n == "XOR") return GateType::kXor;
  if (n == "XNOR") return GateType::kXnor;
  if (n == "DFF") return GateType::kDff;
  if (n == "MUX") return GateType::kMux;
  if (n == "CONST0") return GateType::kConst0;
  if (n == "CONST1") return GateType::kConst1;
  PRESAT_CHECK(false) << ".bench line " << lineNo << ": unknown gate type '" << rawName << "'";
  return GateType::kBuf;
}

// Arity contract per gate type, enforced at scan time so a malformed file
// fails with its line number instead of an out-of-bounds fanin access deep
// inside an engine (the MUX/NOT builders index fanins[0..2] unchecked).
void checkArity(GateType type, size_t arity, const std::string& lhs, int lineNo) {
  size_t lo = 1;
  size_t hi = SIZE_MAX;
  switch (type) {
    case GateType::kNot:
    case GateType::kBuf:
    case GateType::kDff:
      lo = hi = 1;
      break;
    case GateType::kMux:
      lo = hi = 3;
      break;
    case GateType::kConst0:
    case GateType::kConst1:
      lo = hi = 0;
      break;
    default:
      break;  // n-ary gates: at least one fanin
  }
  PRESAT_CHECK(arity >= lo && arity <= hi)
      << ".bench line " << lineNo << ": " << gateTypeName(type) << " gate '" << lhs << "' has "
      << arity << " fanins (expected " << lo << (hi == SIZE_MAX ? "+" : hi == lo ? "" : "..")
      << ")";
}

struct Definition {
  GateType type;
  std::vector<std::string> faninNames;
  int line = 0;  // source line of the definition, for error messages
};

struct ParsedFile {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  // Insertion-ordered definitions (std::map keeps deterministic iteration;
  // order of creation is resolved by dependencies anyway).
  std::map<std::string, Definition> defs;
  std::vector<std::string> defOrder;
};

ParsedFile scan(std::istream& in) {
  ParsedFile file;
  // Every signal-introducing line (INPUT or definition) keyed to its source
  // line, so redefinitions report both sites.
  std::map<std::string, int> definedAt;
  auto defineSignal = [&definedAt](const std::string& name, int lineNo) {
    auto inserted = definedAt.emplace(name, lineNo);
    PRESAT_CHECK(inserted.second) << ".bench line " << lineNo << ": redefinition of '" << name
                                  << "' (first defined at line " << inserted.first->second << ")";
  };
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      size_t open = line.find('(');
      size_t close = line.rfind(')');
      PRESAT_CHECK(open != std::string::npos && close != std::string::npos && close > open)
          << ".bench line " << lineNo << ": expected INPUT(...)/OUTPUT(...): " << line;
      std::string kind = upper(trim(line.substr(0, open)));
      std::string name = trim(line.substr(open + 1, close - open - 1));
      PRESAT_CHECK(!name.empty()) << ".bench line " << lineNo << ": empty signal name";
      if (kind == "INPUT") {
        defineSignal(name, lineNo);
        file.inputs.push_back(name);
      } else if (kind == "OUTPUT") {
        file.outputs.push_back(name);
      } else {
        PRESAT_CHECK(false) << ".bench line " << lineNo << ": unknown directive " << kind;
      }
      continue;
    }

    std::string lhs = trim(line.substr(0, eq));
    std::string rhs = trim(line.substr(eq + 1));
    PRESAT_CHECK(!lhs.empty()) << ".bench line " << lineNo << ": missing signal name before '='";
    size_t open = rhs.find('(');
    size_t close = rhs.rfind(')');
    PRESAT_CHECK(open != std::string::npos && close != std::string::npos && close > open)
        << ".bench line " << lineNo << ": expected name = GATE(...): " << line;
    Definition def;
    def.type = gateTypeFromName(trim(rhs.substr(0, open)), lineNo);
    def.line = lineNo;
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::istringstream as(args);
    std::string arg;
    while (std::getline(as, arg, ',')) {
      arg = trim(arg);
      if (!arg.empty()) def.faninNames.push_back(arg);
    }
    checkArity(def.type, def.faninNames.size(), lhs, lineNo);
    defineSignal(lhs, lineNo);
    file.defOrder.push_back(lhs);
    file.defs.emplace(lhs, std::move(def));
  }
  return file;
}

class Builder {
 public:
  explicit Builder(const ParsedFile& file) : file_(file) {}

  Netlist build() {
    for (const std::string& name : file_.inputs) netlist_.addInput(name);
    // Create all DFF output nodes first so combinational recursion through
    // state feedback terminates.
    for (const std::string& name : file_.defOrder) {
      if (file_.defs.at(name).type == GateType::kDff) netlist_.addDff(name);
    }
    for (const std::string& name : file_.defOrder) resolve(name);
    // Connect DFF data pins now that every signal exists.
    for (const std::string& name : file_.defOrder) {
      const Definition& def = file_.defs.at(name);
      if (def.type != GateType::kDff) continue;
      PRESAT_CHECK(def.faninNames.size() == 1)
          << ".bench line " << def.line << ": DFF '" << name << "' needs exactly 1 fanin";
      netlist_.connectDffData(netlist_.findByName(name), resolve(def.faninNames[0]));
    }
    for (const std::string& name : file_.outputs) {
      netlist_.markOutput(resolve(name), name);
    }
    netlist_.validate();
    return std::move(netlist_);
  }

 private:
  NodeId resolve(const std::string& name) {
    NodeId existing = netlist_.findByName(name);
    if (existing != kNoNode) return existing;
    auto it = file_.defs.find(name);
    PRESAT_CHECK(it != file_.defs.end()) << "undefined signal in .bench: " << name;
    const Definition& def = it->second;
    PRESAT_CHECK(def.type != GateType::kDff) << "DFF should have been pre-created: " << name;
    if (def.type == GateType::kConst0 || def.type == GateType::kConst1) {
      return netlist_.addConst(def.type == GateType::kConst1, name);
    }
    // Combinational-cycle guard: without it a malformed file (a = BUF(b),
    // b = BUF(a)) recurses until the stack overflows. Cycles are only legal
    // through a DFF, which the pre-created state nodes already break.
    PRESAT_CHECK(resolving_.insert(name).second)
        << ".bench line " << def.line << ": combinational cycle through '" << name
        << "' (feedback is only legal through a DFF)";
    std::vector<NodeId> fanins;
    fanins.reserve(def.faninNames.size());
    for (const std::string& f : def.faninNames) fanins.push_back(resolve(f));
    resolving_.erase(name);
    return netlist_.addGate(def.type, std::move(fanins), name);
  }

  const ParsedFile& file_;
  Netlist netlist_;
  std::set<std::string> resolving_;  // combinational signals on the DFS stack
};

}  // namespace

Netlist parseBench(std::istream& in) { return Builder(scan(in)).build(); }

Netlist parseBenchString(const std::string& text) {
  std::istringstream in(text);
  return parseBench(in);
}

Netlist parseBenchFile(const std::string& path) {
  std::ifstream in(path);
  PRESAT_CHECK(in.good()) << "cannot open .bench file: " << path;
  return parseBench(in);
}

void writeBench(std::ostream& out, const Netlist& netlist) {
  auto nodeName = [&](NodeId id) {
    const std::string& n = netlist.name(id);
    if (!n.empty()) return n;
    return "n" + std::to_string(id);
  };
  for (NodeId id : netlist.inputs()) out << "INPUT(" << nodeName(id) << ")\n";
  for (NodeId id : netlist.outputs()) out << "OUTPUT(" << nodeName(id) << ")\n";
  for (NodeId id : netlist.dffs()) {
    out << nodeName(id) << " = DFF(" << nodeName(netlist.dffData(id)) << ")\n";
  }
  for (NodeId id = 0; id < netlist.numNodes(); ++id) {
    GateType t = netlist.type(id);
    if (t == GateType::kConst0 || t == GateType::kConst1) {
      out << nodeName(id) << " = " << gateTypeName(t) << "()\n";
    }
  }
  for (NodeId id : netlist.topologicalOrder()) {
    const GateNode& g = netlist.node(id);
    if (!isCombinational(g.type)) continue;
    out << nodeName(id) << " = " << gateTypeName(g.type) << "(";
    for (size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nodeName(g.fanins[i]);
    }
    out << ")\n";
  }
}

std::string toBenchString(const Netlist& netlist) {
  std::ostringstream out;
  writeBench(out, netlist);
  return out.str();
}

}  // namespace presat
