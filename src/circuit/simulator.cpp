#include "circuit/simulator.hpp"

#include "base/log.hpp"

namespace presat {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist), order_(netlist.topologicalOrder()), values_(netlist.numNodes(), 0) {}

void Simulator::setSource(NodeId id, uint64_t word) {
  PRESAT_DCHECK(!isCombinational(netlist_.type(id)));
  values_[id] = word;
}

void Simulator::run() {
  for (NodeId id : order_) {
    const GateNode& g = netlist_.node(id);
    switch (g.type) {
      case GateType::kConst0:
        values_[id] = 0;
        break;
      case GateType::kConst1:
        values_[id] = ~0ull;
        break;
      case GateType::kInput:
      case GateType::kDff:
        break;  // source values set by the caller
      case GateType::kBuf:
        values_[id] = values_[g.fanins[0]];
        break;
      case GateType::kNot:
        values_[id] = ~values_[g.fanins[0]];
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        uint64_t w = ~0ull;
        for (NodeId f : g.fanins) w &= values_[f];
        values_[id] = g.type == GateType::kNand ? ~w : w;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        uint64_t w = 0;
        for (NodeId f : g.fanins) w |= values_[f];
        values_[id] = g.type == GateType::kNor ? ~w : w;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        uint64_t w = 0;
        for (NodeId f : g.fanins) w ^= values_[f];
        values_[id] = g.type == GateType::kXnor ? ~w : w;
        break;
      }
      case GateType::kMux: {
        uint64_t s = values_[g.fanins[0]];
        values_[id] = (s & values_[g.fanins[2]]) | (~s & values_[g.fanins[1]]);
        break;
      }
    }
  }
}

std::vector<bool> Simulator::evaluateOnce(const Netlist& netlist,
                                          const std::vector<bool>& sourceValues) {
  Simulator sim(netlist);
  for (NodeId id = 0; id < netlist.numNodes(); ++id) {
    if (!isCombinational(netlist.type(id))) {
      sim.setSource(id, sourceValues[id] ? ~0ull : 0ull);
    }
  }
  sim.run();
  std::vector<bool> out(netlist.numNodes());
  for (NodeId id = 0; id < netlist.numNodes(); ++id) out[id] = (sim.value(id) & 1) != 0;
  return out;
}

}  // namespace presat
