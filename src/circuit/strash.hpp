// Structural hashing and constant-propagation sweep.
//
// Produces a functionally equivalent netlist with: constants folded through
// gates, controlling-constant simplifications (AND with 0, OR with 1, ...),
// unary collapses (BUF(x) → x, NOT(NOT(x)) → x, single-input AND → x),
// MUX simplifications (constant select, equal data, s?1:0 → s), duplicate
// gates merged (same type + same fanins, commutative inputs sorted), and
// logic not in the cone of any output or next-state function dropped.
//
// Running this before Tseitin encoding shrinks the CNF the blocking-clause
// engines re-solve thousands of times; the sweep itself is linear.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace presat {

struct SweepResult {
  Netlist netlist;
  // Old NodeId -> new NodeId; kNoNode for dropped (dangling) nodes. A mapped
  // node computes the same function; note a node may map onto a *different*
  // gate (deduplication) or a source (collapse).
  std::vector<NodeId> nodeMap;
  size_t gatesBefore = 0;
  size_t gatesAfter = 0;
};

SweepResult strashSweep(const Netlist& input);

}  // namespace presat
