#include "circuit/netlist.hpp"

#include <algorithm>

#include "base/log.hpp"

namespace presat {

const char* gateTypeName(GateType t) {
  switch (t) {
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kInput: return "INPUT";
    case GateType::kDff: return "DFF";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
  }
  return "?";
}

bool isCombinational(GateType t) {
  switch (t) {
    case GateType::kConst0:
    case GateType::kConst1:
    case GateType::kInput:
    case GateType::kDff:
      return false;
    default:
      return true;
  }
}

namespace {

void checkArity(GateType type, size_t n) {
  switch (type) {
    case GateType::kBuf:
    case GateType::kNot:
      PRESAT_CHECK(n == 1) << gateTypeName(type) << " needs 1 fanin, got " << n;
      break;
    case GateType::kMux:
      PRESAT_CHECK(n == 3) << "MUX needs 3 fanins, got " << n;
      break;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      PRESAT_CHECK(n >= 1) << gateTypeName(type) << " needs at least 1 fanin";
      break;
    default:
      PRESAT_CHECK(false) << "addGate called with non-combinational type "
                          << gateTypeName(type);
  }
}

}  // namespace

NodeId Netlist::addNode(GateNode node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (!node.name.empty()) {
    auto [it, inserted] = byName_.emplace(node.name, id);
    PRESAT_CHECK(inserted) << "duplicate node name: " << node.name;
  }
  nodes_.push_back(std::move(node));
  return id;
}

NodeId Netlist::addInput(const std::string& name) {
  NodeId id = addNode({GateType::kInput, {}, name});
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::addConst(bool value, const std::string& name) {
  return addNode({value ? GateType::kConst1 : GateType::kConst0, {}, name});
}

NodeId Netlist::addGate(GateType type, std::vector<NodeId> fanins, const std::string& name) {
  checkArity(type, fanins.size());
  for (NodeId f : fanins) {
    PRESAT_CHECK(f < nodes_.size()) << "fanin id out of range";
  }
  return addNode({type, std::move(fanins), name});
}

NodeId Netlist::addDff(const std::string& name, NodeId data) {
  NodeId id = addNode({GateType::kDff, {}, name});
  dffs_.push_back(id);
  if (data != kNoNode) connectDffData(id, data);
  return id;
}

void Netlist::connectDffData(NodeId dff, NodeId data) {
  PRESAT_CHECK(dff < nodes_.size() && nodes_[dff].type == GateType::kDff);
  PRESAT_CHECK(data < nodes_.size());
  PRESAT_CHECK(nodes_[dff].fanins.empty()) << "DFF data already connected: " << nodes_[dff].name;
  nodes_[dff].fanins.push_back(data);
}

void Netlist::markOutput(NodeId node, const std::string& name) {
  PRESAT_CHECK(node < nodes_.size());
  (void)name;
  outputs_.push_back(node);
}

NodeId Netlist::dffData(NodeId dff) const {
  PRESAT_CHECK(nodes_[dff].type == GateType::kDff && !nodes_[dff].fanins.empty())
      << "DFF has no data pin connected";
  return nodes_[dff].fanins[0];
}

size_t Netlist::numGates() const {
  size_t n = 0;
  for (const GateNode& g : nodes_) {
    if (isCombinational(g.type)) ++n;
  }
  return n;
}

NodeId Netlist::findByName(const std::string& name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? kNoNode : it->second;
}

std::vector<NodeId> Netlist::topologicalOrder() const {
  // Kahn's algorithm over combinational edges only (DFF data edges are
  // sequential and do not constrain the order of the DFF output node).
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> outs(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!isCombinational(nodes_[id].type)) continue;
    pending[id] = static_cast<int>(nodes_[id].fanins.size());
    for (NodeId f : nodes_[id].fanins) outs[f].push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!isCombinational(nodes_[id].type)) order.push_back(id);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    for (NodeId out : outs[order[head]]) {
      if (--pending[out] == 0) order.push_back(out);
    }
  }
  PRESAT_CHECK(order.size() == nodes_.size()) << "combinational cycle detected";
  return order;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (NodeId id : topologicalOrder()) {
    if (!isCombinational(nodes_[id].type)) continue;
    int l = 0;
    for (NodeId f : nodes_[id].fanins) l = std::max(l, level[f] + 1);
    level[id] = l;
  }
  return level;
}

std::vector<std::vector<NodeId>> Netlist::fanouts() const {
  std::vector<std::vector<NodeId>> outs(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId f : nodes_[id].fanins) outs[f].push_back(id);
  }
  return outs;
}

std::vector<NodeId> Netlist::coneOf(const std::vector<NodeId>& roots) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<NodeId> stack = roots;
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    if (visited[id]) continue;
    visited[id] = true;
    cone.push_back(id);
    if (isCombinational(nodes_[id].type)) {
      for (NodeId f : nodes_[id].fanins) stack.push_back(f);
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

std::vector<NodeId> Netlist::supportOf(const std::vector<NodeId>& roots) const {
  std::vector<NodeId> support;
  for (NodeId id : coneOf(roots)) {
    if (!isCombinational(nodes_[id].type)) support.push_back(id);
  }
  return support;
}

namespace {

// splitmix64 finalizer: cheap, well-distributed mixing for the running hash.
inline uint64_t mix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t netlistStructuralHash(const Netlist& netlist) {
  uint64_t h = 0x70726573617476ull;  // arbitrary non-zero seed
  h = mix64(h, netlist.numNodes());
  for (NodeId id = 0; id < netlist.numNodes(); ++id) {
    const GateNode& g = netlist.node(id);
    h = mix64(h, static_cast<uint64_t>(g.type));
    h = mix64(h, g.fanins.size());
    for (NodeId f : g.fanins) h = mix64(h, f);
  }
  // Source/sink ORDER matters: state bit i and output i are positional in
  // the transition-system view, so permuting them changes query semantics.
  for (NodeId id : netlist.inputs()) h = mix64(h, id);
  h = mix64(h, 0x1d);
  for (NodeId id : netlist.dffs()) h = mix64(h, id);
  h = mix64(h, 0x2d);
  for (NodeId id : netlist.outputs()) h = mix64(h, id);
  return h == 0 ? 1 : h;  // reserve 0 as "no hash"
}

void Netlist::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const GateNode& g = nodes_[id];
    if (g.type == GateType::kDff) {
      PRESAT_CHECK(g.fanins.size() == 1) << "DFF " << g.name << " has no data pin";
    }
    for (NodeId f : g.fanins) PRESAT_CHECK(f < nodes_.size());
  }
  topologicalOrder();  // checks acyclicity
}

}  // namespace presat
