#include "circuit/strash.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "base/log.hpp"
#include "check/audit_netlist.hpp"

namespace presat {

namespace {

// Rewrites the input into a scratch netlist with hashing/folding, tracking
// old->scratch node correspondence, then copies the live cone into the final
// result.
class Sweeper {
 public:
  explicit Sweeper(const Netlist& input) : input_(input) {}

  SweepResult run() {
    map_.assign(input_.numNodes(), kNoNode);
    // Interface nodes are preserved verbatim, in order.
    for (NodeId id : input_.inputs()) map_[id] = scratch_.addInput(input_.name(id));
    for (NodeId id : input_.dffs()) map_[id] = scratch_.addDff(input_.name(id));

    for (NodeId id : input_.topologicalOrder()) {
      if (map_[id] != kNoNode) continue;  // interface node
      map_[id] = rewrite(id);
    }
    for (NodeId dff : input_.dffs()) {
      scratch_.connectDffData(map_[dff], map_[input_.dffData(dff)]);
    }
    for (NodeId out : input_.outputs()) scratch_.markOutput(map_[out]);

    return extractLiveCone();
  }

 private:
  // --- scratch-netlist helpers ---------------------------------------------------

  NodeId constant(bool value) {
    NodeId& slot = value ? const1_ : const0_;
    if (slot == kNoNode) slot = scratch_.addConst(value);
    return slot;
  }
  bool isConst(NodeId n, bool value) const {
    return n != kNoNode &&
           scratch_.type(n) == (value ? GateType::kConst1 : GateType::kConst0);
  }
  bool isAnyConst(NodeId n) const {
    return scratch_.type(n) == GateType::kConst0 || scratch_.type(n) == GateType::kConst1;
  }

  NodeId inverterOf(NodeId n) const {
    auto it = invOf_.find(n);
    return it == invOf_.end() ? kNoNode : it->second;
  }

  NodeId mkNot(NodeId f, const std::string& name = "") {
    if (isAnyConst(f)) return constant(scratch_.type(f) == GateType::kConst0);
    // invOf_ is symmetric: any recorded partner already computes ~f.
    NodeId existing = inverterOf(f);
    if (existing != kNoNode) return existing;
    NodeId n = hashed(GateType::kNot, {f}, name);
    invOf_.emplace(f, n);
    invOf_.emplace(n, f);
    return n;
  }

  // Canonical gate creation with structural hashing.
  NodeId hashed(GateType type, std::vector<NodeId> fanins, const std::string& name) {
    bool commutative = type == GateType::kAnd || type == GateType::kNand ||
                       type == GateType::kOr || type == GateType::kNor ||
                       type == GateType::kXor || type == GateType::kXnor;
    if (commutative) std::sort(fanins.begin(), fanins.end());
    auto key = std::make_pair(static_cast<int>(type), fanins);
    auto it = table_.find(key);
    if (it != table_.end()) return it->second;
    // The name may already be taken by the node another original merged into;
    // drop it in that case (names are a convenience, not an invariant).
    std::string useName = name;
    if (!useName.empty() && scratch_.findByName(useName) != kNoNode) useName.clear();
    NodeId n = scratch_.addGate(type, fanins, useName);
    table_.emplace(std::move(key), n);
    if (type == GateType::kNot) {
      invOf_.emplace(fanins[0], n);
      invOf_.emplace(n, fanins[0]);
    }
    return n;
  }

  // --- per-gate simplification ----------------------------------------------------

  NodeId rewrite(NodeId id) {
    const GateNode& g = input_.node(id);
    const std::string& name = g.name;
    std::vector<NodeId> ins;
    ins.reserve(g.fanins.size());
    for (NodeId f : g.fanins) {
      PRESAT_DCHECK(map_[f] != kNoNode);
      ins.push_back(map_[f]);
    }
    switch (g.type) {
      case GateType::kConst0:
        return constant(false);
      case GateType::kConst1:
        return constant(true);
      case GateType::kBuf:
        return ins[0];
      case GateType::kNot:
        return mkNot(ins[0], name);
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor:
        return rewriteAndOr(g.type, std::move(ins), name);
      case GateType::kXor:
      case GateType::kXnor:
        return rewriteXor(g.type, std::move(ins), name);
      case GateType::kMux:
        return rewriteMux(ins[0], ins[1], ins[2], name);
      default:
        PRESAT_CHECK(false) << "rewrite of non-combinational node";
        return kNoNode;
    }
  }

  NodeId rewriteAndOr(GateType type, std::vector<NodeId> ins, const std::string& name) {
    bool ctrlIn = (type == GateType::kOr || type == GateType::kNor);
    bool inverted = (type == GateType::kNand || type == GateType::kNor);
    std::vector<NodeId> kept;
    for (NodeId f : ins) {
      if (isConst(f, ctrlIn)) return constant(ctrlIn != inverted);  // controlling constant
      if (isConst(f, !ctrlIn)) continue;                            // identity constant
      kept.push_back(f);
    }
    std::sort(kept.begin(), kept.end());
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    // Complementary pair: x and ~x force the controlled value.
    for (NodeId f : kept) {
      NodeId inv = inverterOf(f);
      if (inv != kNoNode && std::binary_search(kept.begin(), kept.end(), inv)) {
        return constant(ctrlIn != inverted);
      }
    }
    if (kept.empty()) return constant(!ctrlIn != inverted);  // identity of the operation
    if (kept.size() == 1) return inverted ? mkNot(kept[0], name) : kept[0];
    GateType base = ctrlIn ? (inverted ? GateType::kNor : GateType::kOr)
                           : (inverted ? GateType::kNand : GateType::kAnd);
    return hashed(base, std::move(kept), name);
  }

  NodeId rewriteXor(GateType type, std::vector<NodeId> ins, const std::string& name) {
    bool phase = (type == GateType::kXnor);
    std::vector<NodeId> kept;
    for (NodeId f : ins) {
      if (isConst(f, true)) {
        phase = !phase;
      } else if (!isConst(f, false)) {
        kept.push_back(f);
      }
    }
    std::sort(kept.begin(), kept.end());
    // x ^ x cancels; x ^ ~x contributes a constant 1.
    std::vector<NodeId> reduced;
    for (size_t i = 0; i < kept.size();) {
      if (i + 1 < kept.size() && kept[i] == kept[i + 1]) {
        i += 2;
        continue;
      }
      reduced.push_back(kept[i]);
      ++i;
    }
    for (size_t i = 0; i < reduced.size();) {
      NodeId inv = inverterOf(reduced[i]);
      auto it = inv == kNoNode
                    ? reduced.end()
                    : std::find(reduced.begin() + static_cast<long>(i) + 1, reduced.end(), inv);
      if (it != reduced.end()) {
        reduced.erase(it);
        reduced.erase(reduced.begin() + static_cast<long>(i));
        phase = !phase;
      } else {
        ++i;
      }
    }
    if (reduced.empty()) return constant(phase);
    if (reduced.size() == 1) return phase ? mkNot(reduced[0], name) : reduced[0];
    return hashed(phase ? GateType::kXnor : GateType::kXor, std::move(reduced), name);
  }

  NodeId rewriteMux(NodeId s, NodeId d0, NodeId d1, const std::string& name) {
    if (isConst(s, false)) return d0;
    if (isConst(s, true)) return d1;
    if (d0 == d1) return d0;
    if (isConst(d0, false) && isConst(d1, true)) return s;
    if (isConst(d0, true) && isConst(d1, false)) return mkNot(s, name);
    if (isConst(d0, false)) return rewriteAndOr(GateType::kAnd, {s, d1}, name);
    if (isConst(d1, false)) return rewriteAndOr(GateType::kAnd, {mkNot(s), d0}, name);
    if (isConst(d0, true)) return rewriteAndOr(GateType::kOr, {mkNot(s), d1}, name);
    if (isConst(d1, true)) return rewriteAndOr(GateType::kOr, {s, d0}, name);
    if (inverterOf(d0) == d1) return rewriteXor(GateType::kXor, {s, d0}, name);
    return hashed(GateType::kMux, {s, d0, d1}, name);
  }

  // --- dead-logic removal -----------------------------------------------------------

  SweepResult extractLiveCone() {
    std::vector<NodeId> roots = scratch_.outputs();
    for (NodeId dff : scratch_.dffs()) roots.push_back(scratch_.dffData(dff));
    std::vector<bool> live(scratch_.numNodes(), false);
    for (NodeId id : scratch_.coneOf(roots)) live[id] = true;

    SweepResult result;
    result.gatesBefore = input_.numGates();
    std::vector<NodeId> toFinal(scratch_.numNodes(), kNoNode);
    // Interface preserved unconditionally (a dangling PI is still a PI).
    for (NodeId id : scratch_.inputs()) toFinal[id] = result.netlist.addInput(scratch_.name(id));
    for (NodeId id : scratch_.dffs()) toFinal[id] = result.netlist.addDff(scratch_.name(id));
    for (NodeId id : scratch_.topologicalOrder()) {
      if (toFinal[id] != kNoNode || !live[id]) continue;
      const GateNode& g = scratch_.node(id);
      if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
        toFinal[id] = result.netlist.addConst(g.type == GateType::kConst1, g.name);
        continue;
      }
      std::vector<NodeId> fanins;
      for (NodeId f : g.fanins) fanins.push_back(toFinal[f]);
      toFinal[id] = result.netlist.addGate(g.type, std::move(fanins), g.name);
    }
    for (NodeId dff : scratch_.dffs()) {
      result.netlist.connectDffData(toFinal[dff], toFinal[scratch_.dffData(dff)]);
    }
    for (NodeId out : scratch_.outputs()) result.netlist.markOutput(toFinal[out]);

    result.nodeMap.assign(input_.numNodes(), kNoNode);
    for (NodeId id = 0; id < input_.numNodes(); ++id) {
      if (map_[id] != kNoNode) result.nodeMap[id] = toFinal[map_[id]];
    }
    result.gatesAfter = result.netlist.numGates();
    result.netlist.validate();
    return result;
  }

  const Netlist& input_;
  Netlist scratch_;
  std::vector<NodeId> map_;
  NodeId const0_ = kNoNode;
  NodeId const1_ = kNoNode;
  std::map<std::pair<int, std::vector<NodeId>>, NodeId> table_;
  std::map<NodeId, NodeId> invOf_;
};

}  // namespace

SweepResult strashSweep(const Netlist& input) {
  SweepResult result = Sweeper(input).run();
  // The sweep's canonicity guarantees (no BUFs, no constant fanins, no
  // structural duplicates, no dangling logic) are what the signature-based
  // memoization downstream relies on — audit them on every sweep.
  PRESAT_AUDIT_CHEAP(
      PRESAT_CHECK_AUDIT(auditNetlist(result.netlist, {.expectStrashed = true})));
  return result;
}

}  // namespace presat
