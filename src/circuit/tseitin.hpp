// Tseitin encoding of a netlist's combinational core into CNF.
//
// Every encoded node gets a CNF variable; gate semantics become the usual
// equivalence clauses. The node→variable map is returned alongside the
// formula so callers (all-SAT engines, preimage) can express targets and
// projections in terms of circuit nodes.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "circuit/netlist.hpp"
#include "cnf/cnf.hpp"

namespace presat {

class CircuitEncoding {
 public:
  Cnf cnf;
  // Per NodeId; kNullVar for nodes outside the encoded cone.
  std::vector<Var> nodeVar;

  bool isEncoded(NodeId id) const { return nodeVar[id] != kNullVar; }
  Var varOf(NodeId id) const;
  Lit litOf(NodeId id, bool value = true) const { return mkLit(varOf(id), !value); }
};

// Encodes the cone of `roots` (every node if `roots` is empty). DFF outputs
// and primary inputs become free variables; constants become unit clauses.
CircuitEncoding encodeCircuit(const Netlist& netlist, const std::vector<NodeId>& roots = {});

}  // namespace presat
