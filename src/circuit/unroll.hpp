// Time-frame expansion: unrolling a sequential netlist into a combinational
// one.
//
// Frame t's combinational logic is copied with its DFF outputs replaced by
// frame t's state nodes: frame 0 state bits become fresh primary inputs, and
// frame t>0 state bits are the frame t-1 next-state roots. The result feeds
// bounded reachability (BMC) queries and, in tests, cross-checks the
// iterated-preimage engines frame by frame.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace presat {

class TransitionSystem;

struct UnrolledCircuit {
  Netlist netlist;  // purely combinational
  // Fresh inputs representing the initial state (one per state bit).
  std::vector<NodeId> initialState;
  // framePrimaryInputs[t][j]: frame-t copy of primary input j (t in [0, frames)).
  std::vector<std::vector<NodeId>> frameInputs;
  // stateAt[t][i]: node carrying state bit i at time t (t in [0, frames]);
  // stateAt[0] == initialState, stateAt[t] = frame t-1 next-state roots.
  std::vector<std::vector<NodeId>> stateAt;
};

// Unrolls `frames` transitions (frames >= 0; 0 yields only the initial-state
// inputs).
UnrolledCircuit unroll(const TransitionSystem& system, int frames);

}  // namespace presat
