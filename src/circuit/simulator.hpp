// 64-way bit-parallel logic simulator.
//
// Each node carries a 64-bit word: bit k is the node's value under pattern k.
// Used by tests (differential checks against the CNF encoding and the BDD
// package) and by the model-lifting heuristics.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace presat {

class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  // Sets the pattern word of a source node (input, DFF output, or constant —
  // constants are overwritten by run()).
  void setSource(NodeId id, uint64_t word);
  // Evaluates all combinational gates in topological order.
  void run();
  uint64_t value(NodeId id) const { return values_[id]; }

  // Single-pattern convenience: evaluates the whole netlist under one
  // assignment of sources (indexed by node id; non-source entries ignored).
  static std::vector<bool> evaluateOnce(const Netlist& netlist,
                                        const std::vector<bool>& sourceValues);

 private:
  const Netlist& netlist_;
  std::vector<NodeId> order_;
  std::vector<uint64_t> values_;
};

}  // namespace presat
