// CNF -> circuit conversion.
//
// Lets the circuit-level engines (success-driven all-SAT, justification
// lifting) run on DIMACS inputs: each CNF variable becomes a primary input,
// each clause an OR gate, and the conjunction an AND root whose value-1
// objective encodes satisfiability.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "cnf/cnf.hpp"

namespace presat {

struct CnfCircuit {
  Netlist netlist;
  // Input node of CNF variable v.
  std::vector<NodeId> varNode;
  // Root AND gate; the formula is satisfied iff this node is 1.
  NodeId root = kNoNode;
};

CnfCircuit cnfToCircuit(const Cnf& cnf);

}  // namespace presat
