// Gate-level netlist for combinational and sequential (DFF-based) circuits.
//
// This is the structural substrate for preimage computation: a sequential
// circuit is a combinational core whose sources are primary inputs and DFF
// outputs (present state) and whose DFF data pins define the next-state
// functions. The ISCAS89 `.bench` dialect maps onto this directly.
//
// Node identifiers are dense indices into the node table; the graph is
// immutable once built except for appending nodes, which keeps every consumer
// (simulators, encoder, all-SAT engines) free of invalidation concerns.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.hpp"

namespace presat {

class AuditResult;
struct NetlistAuditOptions;
enum class NetlistCorruption : int;

using NodeId = uint32_t;
constexpr NodeId kNoNode = static_cast<NodeId>(-1);

enum class GateType : uint8_t {
  kConst0,
  kConst1,
  kInput,  // primary input
  kDff,    // sequential element; node value = present-state output Q,
           // fanin[0] = next-state data D
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,   // n-ary parity
  kXnor,  // n-ary inverted parity
  kMux,   // fanin[0] ? fanin[2] : fanin[1]  (select, data0, data1)
};

const char* gateTypeName(GateType t);
// True for gates whose value is a function of fanins (everything but
// inputs/constants/DFF outputs).
bool isCombinational(GateType t);

struct GateNode {
  GateType type;
  std::vector<NodeId> fanins;
  std::string name;
};

class Netlist {
 public:
  Netlist() = default;

  // --- construction ----------------------------------------------------------
  NodeId addInput(const std::string& name);
  NodeId addConst(bool value, const std::string& name = "");
  // fanin count is validated against the gate type.
  NodeId addGate(GateType type, std::vector<NodeId> fanins, const std::string& name = "");
  // A DFF whose data input can be connected later via connectDffData (the
  // .bench parser needs forward references).
  NodeId addDff(const std::string& name, NodeId data = kNoNode);
  void connectDffData(NodeId dff, NodeId data);
  void markOutput(NodeId node, const std::string& name = "");

  // Convenience constructors for common gates.
  NodeId mkNot(NodeId a, const std::string& name = "") { return addGate(GateType::kNot, {a}, name); }
  NodeId mkAnd(NodeId a, NodeId b, const std::string& name = "") {
    return addGate(GateType::kAnd, {a, b}, name);
  }
  NodeId mkOr(NodeId a, NodeId b, const std::string& name = "") {
    return addGate(GateType::kOr, {a, b}, name);
  }
  NodeId mkXor(NodeId a, NodeId b, const std::string& name = "") {
    return addGate(GateType::kXor, {a, b}, name);
  }
  NodeId mkMux(NodeId sel, NodeId ifFalse, NodeId ifTrue, const std::string& name = "") {
    return addGate(GateType::kMux, {sel, ifFalse, ifTrue}, name);
  }

  // --- inspection --------------------------------------------------------------
  size_t numNodes() const { return nodes_.size(); }
  const GateNode& node(NodeId id) const { return nodes_[id]; }
  GateType type(NodeId id) const { return nodes_[id].type; }
  const std::vector<NodeId>& fanins(NodeId id) const { return nodes_[id].fanins; }
  const std::string& name(NodeId id) const { return nodes_[id].name; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& dffs() const { return dffs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  NodeId dffData(NodeId dff) const;

  size_t numGates() const;  // combinational gates only

  // Node lookup by name; kNoNode if absent.
  NodeId findByName(const std::string& name) const;

  // --- analyses -----------------------------------------------------------------
  // Topological order of the combinational core (sources first). DFF nodes
  // appear as sources; their data fanins are sinks of the order.
  std::vector<NodeId> topologicalOrder() const;
  // Logic level per node (sources are 0).
  std::vector<int> levels() const;
  // Fanout lists per node.
  std::vector<std::vector<NodeId>> fanouts() const;
  // Transitive fanin cone of `roots` (includes roots and sources).
  std::vector<NodeId> coneOf(const std::vector<NodeId>& roots) const;
  // Source nodes (inputs + DFF outputs + constants) in the cone of `roots`.
  std::vector<NodeId> supportOf(const std::vector<NodeId>& roots) const;

  // Validates structural invariants (acyclicity, connected DFF data pins,
  // fanin arities). PRESAT_CHECK-fails with a diagnostic on violation.
  void validate() const;

 private:
  // Deep structural validation (src/check/audit_netlist.cpp) also inspects
  // the name index; the corruption hook needs write access.
  friend AuditResult auditNetlist(const Netlist& netlist, const NetlistAuditOptions& options);
  friend void corruptNetlistForTest(Netlist& netlist, NetlistCorruption kind);

  NodeId addNode(GateNode node);

  std::vector<GateNode> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> dffs_;
  std::vector<NodeId> outputs_;
  std::unordered_map<std::string, NodeId> byName_;
};

// Order-sensitive 64-bit structural fingerprint of a netlist: gate types,
// fanin wiring, input/DFF/output order — everything that determines circuit
// *behavior* under the dense-id node numbering — and nothing else (node names
// are ignored, so a renamed copy of a circuit hashes equal). This is the
// cross-query cache key component of the serve layer: two requests whose
// circuits hash equal (plus equal targets/method/flags) may share a cached
// preimage cover, so the hash must change whenever any function the engines
// see could change.
uint64_t netlistStructuralHash(const Netlist& netlist);

}  // namespace presat
